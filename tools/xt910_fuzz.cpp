/**
 * @file
 * xt910-fuzz — seeded differential fuzzer driver.
 *
 *   xt910-fuzz [options]                  fuzz a batch of programs
 *   xt910-fuzz --replay FILE [FILE...]    re-run saved reproducers
 *
 * Batch mode draws --count random programs (program i uses seed
 * --seed + i), runs each along the three lockstep paths (block-cache
 * ISS, legacy-decode ISS, full timing System) and additionally runs
 * the whole batch on 1 worker and on --jobs workers, requiring
 * bit-identical snapshots everywhere. The first mismatch is minimized
 * with ddmin and dumped as a reproducer under --corpus-dir.
 *
 * Options:
 *   --count N        programs per batch (default 100)
 *   --seed S         base seed (default 1)
 *   --items N        generator items per program (default 48)
 *   --vlen BITS      vector length (default 128)
 *   --jobs N         worker threads (default: XT910_JOBS env, else 2)
 *   --no-shrink      dump the failing program unminimized
 *   --corpus-dir D   where reproducers are written (default fuzz_corpus)
 *   --replay FILE    replay a reproducer (repeatable); golden
 *                    expect-xhash lines are verified when present
 *   --print-hash     with --replay: print each program's guest hash
 *                    (used to mint expect-xhash lines) and exit
 *
 * Every value option also accepts the --opt=value form.
 * Exit codes: 0 ok, 1 mismatch found, 2 usage/file error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/differ.h"
#include "check/progen.h"
#include "check/shrink.h"
#include "common/parallel.h"
#include "common/version.h"

using namespace xt910;
using namespace xt910::check;

namespace
{

void
usage()
{
    std::printf(
        "usage: xt910-fuzz [options]\n"
        "       xt910-fuzz --replay FILE [--replay FILE...]\n"
        "options: --count N  --seed S  --items N  --vlen BITS\n"
        "         --jobs N  --no-shrink  --corpus-dir DIR\n"
        "         --replay FILE  --print-hash\n");
}

/** Write @p prog under @p dir; returns the path (empty on failure). */
std::string
dumpToCorpus(const std::string &dir, const GenProgram &prog)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path =
        dir + "/fuzz_seed" + std::to_string(prog.cfg.seed) + ".repro";
    std::ofstream os(path);
    if (!os)
        return "";
    dumpReproducer(os, prog);
    return os ? path : "";
}

int
replayFiles(const std::vector<std::string> &files, bool printHash)
{
    int rc = 0;
    for (const std::string &file : files) {
        std::ifstream is(file);
        if (!is) {
            std::fprintf(stderr, "xt910-fuzz: cannot open %s\n",
                         file.c_str());
            return 2;
        }
        GenProgram prog;
        std::string err;
        if (!parseReproducer(is, prog, err)) {
            std::fprintf(stderr, "xt910-fuzz: %s: %s\n", file.c_str(),
                         err.c_str());
            return 2;
        }
        if (printHash) {
            ArchSnapshot s = runIss(prog, true);
            std::printf("%s: xhash %llx%s\n", file.c_str(),
                        (unsigned long long)s.guestHash,
                        s.halted ? "" : " (did not halt!)");
            continue;
        }
        DiffResult r = checkProgram(prog);
        if (!r.ok) {
            std::fprintf(stderr, "xt910-fuzz: %s: MISMATCH: %s\n",
                         file.c_str(), r.what.c_str());
            rc = 1;
        } else {
            std::printf("%s: ok\n", file.c_str());
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t count = 100, seed = 1;
    unsigned items = 48, vlen = 128, jobs = 0;
    bool shrink = true, printHash = false;
    std::string corpusDir = "fuzz_corpus";
    std::vector<std::string> replays;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string val;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            val = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        }
        auto need = [&](const char *name) -> std::string {
            if (!val.empty())
                return val;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "xt910-fuzz: %s needs a value\n",
                             name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--count")
            count = std::strtoull(need("--count").c_str(), nullptr, 0);
        else if (arg == "--seed")
            seed = std::strtoull(need("--seed").c_str(), nullptr, 0);
        else if (arg == "--items")
            items = unsigned(std::strtoul(need("--items").c_str(),
                                          nullptr, 0));
        else if (arg == "--vlen")
            vlen = unsigned(std::strtoul(need("--vlen").c_str(),
                                         nullptr, 0));
        else if (arg == "--jobs")
            jobs = unsigned(std::strtoul(need("--jobs").c_str(),
                                         nullptr, 0));
        else if (arg == "--no-shrink")
            shrink = false;
        else if (arg == "--corpus-dir")
            corpusDir = need("--corpus-dir");
        else if (arg == "--replay")
            replays.push_back(need("--replay"));
        else if (arg == "--print-hash")
            printHash = true;
        else if (arg == "--version") {
            std::printf("%s\n", buildInfo("xt910-fuzz").c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "xt910-fuzz: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (!replays.empty())
        return replayFiles(replays, printHash);
    if (count == 0) {
        usage();
        return 2;
    }

    try {
        jobs = resolveJobs(jobs, 2);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "xt910-fuzz: %s\n", e.what());
        return 2;
    }

    // Draw the batch.
    std::vector<GenProgram> progs;
    progs.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        GenConfig cfg;
        cfg.seed = seed + i;
        cfg.numItems = items;
        cfg.vlenBits = vlen;
        progs.push_back(generate(cfg));
    }

    // Three-path differential check per program, fanned out over the
    // worker pool (each check owns all its state, so order is free).
    std::vector<DiffResult> results(progs.size());
    parallelFor(progs.size(), jobs,
                [&](size_t i) { results[i] = checkProgram(progs[i]); });

    size_t firstBad = progs.size();
    for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok) {
            firstBad = i;
            break;
        }
    }

    // Worker-count invisibility: the same batch on 1 worker and on
    // `jobs` workers must snapshot identically, program by program.
    if (firstBad == progs.size()) {
        std::vector<ArchSnapshot> serial = runBatch(progs, 1);
        std::vector<ArchSnapshot> wide =
            runBatch(progs, jobs > 1 ? jobs : 2);
        for (size_t i = 0; i < progs.size(); ++i) {
            if (!(serial[i] == wide[i])) {
                results[i].ok = false;
                results[i].what = "--jobs 1 vs --jobs N: " +
                                  describeDiff(serial[i], wide[i]);
                firstBad = i;
                break;
            }
        }
    }

    if (firstBad == progs.size()) {
        std::printf("xt910-fuzz: %llu programs, 3 paths + jobs pair: "
                    "all identical\n",
                    (unsigned long long)count);
        return 0;
    }

    GenProgram bad = progs[firstBad];
    std::fprintf(stderr, "xt910-fuzz: seed %llu: %s\n",
                 (unsigned long long)bad.cfg.seed,
                 results[firstBad].what.c_str());
    if (shrink) {
        auto stillFails = [](const GenProgram &p) {
            return !checkProgram(p).ok;
        };
        if (stillFails(bad)) { // jobs-pair failures may not reproduce
            GenProgram min = shrinkProgram(bad, stillFails);
            std::fprintf(stderr,
                         "xt910-fuzz: shrank %zu items -> %zu items\n",
                         bad.items.size(), min.items.size());
            bad = min;
        }
    }
    std::string path = dumpToCorpus(corpusDir, bad);
    if (path.empty())
        std::fprintf(stderr, "xt910-fuzz: could not write reproducer\n");
    else
        std::fprintf(stderr, "xt910-fuzz: reproducer written to %s\n",
                     path.c_str());
    return 1;
}
