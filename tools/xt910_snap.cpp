/**
 * @file
 * xt910-snap — snapshot inspection tool.
 *
 *   xt910-snap <snapshot-file>...
 *
 * Prints, per file: the format version, the configuration hash, the
 * instruction count at capture, and the section table (tag, payload
 * size, stored checksum, recomputed-checksum verdict). Exit code 0
 * when every file parses and every checksum verifies, 1 when a file is
 * structurally valid but a checksum fails or the version is unknown,
 * 2 on usage or unreadable/malformed input.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/snapio.h"
#include "common/version.h"
#include "snap/snapshot.h"

using namespace xt910;

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s (snapshot format v%u)\n",
                    buildInfo("xt910-snap").c_str(),
                    snap::formatVersion);
        return 0;
    }
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        std::printf("usage: xt910-snap [--version] <snapshot-file>...\n");
        return argc < 2 ? 2 : 0;
    }

    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        snap::SnapshotInfo info;
        try {
            info = snap::inspectSnapshotFile(path);
        } catch (const SnapError &e) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
            rc = 2;
            continue;
        }
        std::printf("%s:\n", path.c_str());
        std::printf("  format version : %u%s\n", info.version,
                    info.version == snap::formatVersion
                        ? ""
                        : "  (UNSUPPORTED — restore would refuse)");
        std::printf("  config hash    : %016llx\n",
                    static_cast<unsigned long long>(info.configHash));
        std::printf("  insts retired  : %llu\n",
                    static_cast<unsigned long long>(info.instsRetired));
        std::printf("  %-6s %14s %18s %s\n", "tag", "bytes", "checksum",
                    "verify");
        for (const snap::SectionInfo &s : info.sections) {
            std::printf("  %-6s %14llu %018llx %s\n", s.tag.c_str(),
                        static_cast<unsigned long long>(s.size),
                        static_cast<unsigned long long>(s.checksum),
                        s.checksumOk ? "ok" : "CORRUPT");
            if (!s.checksumOk)
                rc = rc < 1 ? 1 : rc;
        }
        if (info.version != snap::formatVersion)
            rc = rc < 1 ? 1 : rc;
    }
    return rc;
}
