/**
 * @file
 * xt910-client — command-line client for the xt910d daemon.
 *
 *   xt910-client [connection options] <command> [command options]
 *
 * Connection:
 *   --host H           daemon host (default 127.0.0.1, numeric or
 *                      "localhost")
 *   --port N           daemon port
 *   --port-stdin       read the daemon's "listening on ADDR:PORT"
 *                      banner from stdin instead (for pipelines that
 *                      launch both ends)
 *   --api-key K        client identity for quota accounting
 *
 * Commands:
 *   submit             submit a job, print its id. Job options:
 *                      --workload NAME | --source FILE (reproducer),
 *                      --preset P --cores N --extended --vector
 *                      --scale N --l2-kib N --dram-latency N
 *                      --no-prefetch --max-insts N --max-cycles N
 *                      --stats-interval N --timeout-secs T --batch
 *                      --sample-interval N --sample-count N
 *                      --sample-warmup N --sample-seed N (sampled
 *                      mode: see `xt910-run --help`; batch-friendly)
 *   status ID          print the job's status document
 *   watch ID           stream the job's JSONL records until it ends
 *                      (--out FILE writes them to a file instead)
 *   stats ID           fetch the final stats JSON (--out FILE)
 *   cancel ID          request cancellation
 *   list               list all jobs
 *   statsz             print service counters
 *   version            print the daemon's build identity
 *   shutdown           ask the daemon to drain and exit
 *   smoke              CI self-test: submit/watch/stats/cache-check/
 *                      shutdown (--workload W --stats-interval N
 *                      --stream-out F --stats-out F)
 *
 * Exit codes: 0 ok, 1 request failed (non-2xx), 2 usage error,
 * 3 transport error, 4 smoke assertion failed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/version.h"
#include "serve/http.h"

using namespace xt910;

namespace
{

struct Conn
{
    std::string host = "127.0.0.1";
    unsigned port = 0;
    std::string apiKey;
};

void
usage()
{
    std::printf(
        "usage: xt910-client [--host H] [--port N | --port-stdin]\n"
        "                    [--api-key K] <command> [options]\n"
        "commands: submit status watch stats cancel list statsz\n"
        "          version shutdown smoke\n");
}

std::vector<std::pair<std::string, std::string>>
baseHeaders(const Conn &c)
{
    std::vector<std::pair<std::string, std::string>> h;
    if (!c.apiKey.empty())
        h.emplace_back("X-Api-Key", c.apiKey);
    return h;
}

/** One request; exits 3 on transport error. Returns the response. */
serve::ClientResponse
request(const Conn &c, const std::string &method,
        const std::string &target, const std::string &body = "")
{
    serve::ClientResponse resp;
    std::string err;
    if (!serve::httpRequest(c.host, uint16_t(c.port), method, target,
                            baseHeaders(c), body, resp, err)) {
        std::fprintf(stderr, "xt910-client: %s\n", err.c_str());
        std::exit(3);
    }
    return resp;
}

/** Print the body; 0 when 2xx, else 1. */
int
finish(const serve::ClientResponse &resp)
{
    if (resp.status >= 200 && resp.status < 300) {
        std::fputs(resp.body.c_str(), stdout);
        return 0;
    }
    std::fprintf(stderr, "HTTP %d: %s", resp.status,
                 resp.body.c_str());
    return 1;
}

/** Parse "listening on ADDR:PORT" from stdin (daemon stdout pipe). */
bool
portFromStdin(unsigned &port)
{
    std::string line;
    while (std::getline(std::cin, line)) {
        size_t at = line.rfind(':');
        if (line.rfind("listening on ", 0) == 0 &&
            at != std::string::npos) {
            port = unsigned(std::atoi(line.c_str() + at + 1));
            return port != 0;
        }
    }
    return false;
}

/** Extract a top-level field from a response document. */
std::string
field(const std::string &doc, const std::string &key)
{
    json::Value v;
    if (!json::parse(doc, v))
        return "";
    const json::Value *f = v.find(key);
    if (!f)
        return "";
    if (f->isString())
        return f->string;
    if (f->isBool())
        return f->boolean ? "true" : "false";
    if (f->isNumber())
        return std::to_string(f->integer);
    return "";
}

struct SubmitArgs
{
    std::string bodyJson;
};

/** Build a POST /v1/jobs body from submit-style CLI options.
 *  Returns false + a message on a bad option. */
bool
parseSubmitArgs(const std::vector<std::string> &args, std::string &body,
                std::string &err)
{
    std::string workload, sourceFile;
    std::ostringstream os;
    std::vector<std::string> fields;
    for (size_t i = 0; i < args.size(); ++i) {
        std::string a = args[i];
        std::string inlineVal;
        bool hasInline = false;
        size_t eq = a.find('=');
        if (a.size() > 1 && a[0] == '-' && eq != std::string::npos) {
            inlineVal = a.substr(eq + 1);
            a.resize(eq);
            hasInline = true;
        }
        auto next = [&]() -> std::string {
            if (hasInline)
                return inlineVal;
            if (i + 1 >= args.size()) {
                err = "option " + a + " needs a value";
                return "";
            }
            return args[++i];
        };
        auto num = [&](const char *name) {
            std::string v = next();
            fields.push_back(std::string("\"") + name +
                             "\": " + (v.empty() ? "0" : v));
        };
        if (a == "--workload")
            workload = next();
        else if (a == "--source")
            sourceFile = next();
        else if (a == "--preset")
            fields.push_back("\"preset\": \"" + json::escape(next()) +
                             "\"");
        else if (a == "--cores")
            num("cores");
        else if (a == "--scale")
            num("scale");
        else if (a == "--l2-kib")
            num("l2_kib");
        else if (a == "--dram-latency")
            num("dram_latency");
        else if (a == "--max-insts")
            num("max_insts");
        else if (a == "--max-cycles")
            num("max_cycles");
        else if (a == "--stats-interval")
            num("stats_interval");
        else if (a == "--sample-interval")
            num("sample_interval");
        else if (a == "--sample-count")
            num("sample_count");
        else if (a == "--sample-warmup")
            num("sample_warmup");
        else if (a == "--sample-seed")
            num("sample_seed");
        else if (a == "--timeout-secs")
            num("timeout_secs");
        else if (a == "--extended")
            fields.push_back("\"extended\": true");
        else if (a == "--vector")
            fields.push_back("\"vector\": true");
        else if (a == "--no-prefetch")
            fields.push_back("\"no_prefetch\": true");
        else if (a == "--batch")
            fields.push_back("\"priority\": \"batch\"");
        else {
            err = "unknown submit option " + a;
            return false;
        }
        if (!err.empty())
            return false;
    }
    if (workload.empty() == sourceFile.empty()) {
        err = "need exactly one of --workload and --source";
        return false;
    }
    if (!workload.empty()) {
        fields.push_back("\"workload\": \"" + json::escape(workload) +
                         "\"");
    } else {
        std::ifstream is(sourceFile, std::ios::binary);
        if (!is) {
            err = "cannot read " + sourceFile;
            return false;
        }
        std::ostringstream ss;
        ss << is.rdbuf();
        fields.push_back("\"source\": \"" + json::escape(ss.str()) +
                         "\"");
    }
    os << "{";
    for (size_t i = 0; i < fields.size(); ++i)
        os << (i ? ", " : "") << fields[i];
    os << "}";
    body = os.str();
    return true;
}

/** Stream a job's JSONL records into @p out until the server ends the
 *  stream. Exits 3 on transport error; returns the HTTP status. */
int
streamTo(const Conn &c, const std::string &id, std::ostream &out)
{
    int status = 0;
    std::string err;
    auto onBody = [&](const char *p, size_t n) {
        out.write(p, std::streamsize(n));
        out.flush();
        return true;
    };
    if (!serve::httpRequestStream(c.host, uint16_t(c.port), "GET",
                                  "/v1/jobs/" + id + "/stream",
                                  baseHeaders(c), "", status, onBody,
                                  err)) {
        std::fprintf(stderr, "xt910-client: %s\n", err.c_str());
        std::exit(3);
    }
    return status;
}

int
smokeFail(const char *what, const std::string &detail = "")
{
    std::fprintf(stderr, "smoke: FAIL: %s%s%s\n", what,
                 detail.empty() ? "" : ": ", detail.c_str());
    return 4;
}

/**
 * The serve.cli_smoke body: drives a freshly started daemon through
 * the full API against real sockets, leaving the streamed JSONL and
 * fetched stats in files for the harness to byte-compare against a
 * direct xt910-run, then asks the daemon to shut down (so the
 * pipeline's daemon side exits 0 too).
 */
int
runSmoke(const Conn &c, const std::vector<std::string> &args)
{
    std::string workload = "crc";
    uint64_t interval = 0;
    std::string streamOut, statsOut;
    for (size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            return i + 1 < args.size() ? args[++i] : "";
        };
        if (args[i] == "--workload")
            workload = next();
        else if (args[i] == "--stats-interval")
            interval = uint64_t(std::atoll(next().c_str()));
        else if (args[i] == "--stream-out")
            streamOut = next();
        else if (args[i] == "--stats-out")
            statsOut = next();
        else
            return smokeFail("unknown option", args[i]);
    }

    if (field(request(c, "GET", "/healthz").body, "ok") != "true")
        return smokeFail("healthz");
    if (field(request(c, "GET", "/v1/version").body, "tool") !=
        "xt910d")
        return smokeFail("version");

    std::string body = "{\"workload\": \"" + json::escape(workload) +
                       "\", \"stats_interval\": " +
                       std::to_string(interval) + "}";
    serve::ClientResponse r = request(c, "POST", "/v1/jobs", body);
    if (r.status != 201)
        return smokeFail("submit status", r.body);
    if (field(r.body, "cached") != "false")
        return smokeFail("first submit must not be cached", r.body);
    const std::string id = field(r.body, "id");
    if (id.empty())
        return smokeFail("submit id", r.body);

    // Stream until completion; every record must be valid JSON.
    std::ostringstream stream;
    if (streamTo(c, id, stream) != 200)
        return smokeFail("stream status");
    std::istringstream lines(stream.str());
    std::string line;
    size_t nLines = 0;
    bool sawSummary = false;
    while (std::getline(lines, line)) {
        ++nLines;
        if (!json::validate(line))
            return smokeFail("stream record is not JSON", line);
        json::Value v;
        if (json::parse(line, v)) {
            if (const json::Value *t = v.find("type"))
                sawSummary |= t->asString() == "summary";
        }
    }
    if (!nLines || !sawSummary)
        return smokeFail("stream missing records/summary");
    if (!streamOut.empty()) {
        std::ofstream os(streamOut, std::ios::binary);
        os << stream.str();
        if (!os)
            return smokeFail("cannot write", streamOut);
    }

    r = request(c, "GET", "/v1/jobs/" + id);
    if (field(r.body, "state") != "done" ||
        field(r.body, "checksum_ok") != "true")
        return smokeFail("job did not finish cleanly", r.body);

    r = request(c, "GET", "/v1/jobs/" + id + "/stats");
    if (r.status != 200)
        return smokeFail("stats fetch", r.body);
    const std::string stats1 = r.body;
    if (!json::validate(stats1))
        return smokeFail("stats not valid JSON");
    if (!statsOut.empty()) {
        std::ofstream os(statsOut, std::ios::binary);
        os << stats1;
        if (!os)
            return smokeFail("cannot write", statsOut);
    }

    // Identical resubmission must be served from the result cache,
    // without simulating, with byte-identical stats.
    r = request(c, "POST", "/v1/jobs", body);
    if (r.status != 201 || field(r.body, "cached") != "true")
        return smokeFail("resubmit must hit the cache", r.body);
    const std::string id2 = field(r.body, "id");
    r = request(c, "GET", "/v1/jobs/" + id2 + "/stats");
    if (r.status != 200 || r.body != stats1)
        return smokeFail("cached stats differ from original");

    // Error paths: bad workload is a 400, unknown job a 404.
    r = request(c, "POST", "/v1/jobs", "{\"workload\": \"nope\"}");
    if (r.status != 400)
        return smokeFail("bad workload should be 400", r.body);
    r = request(c, "GET", "/v1/jobs/zzz");
    if (r.status != 404)
        return smokeFail("unknown job should be 404", r.body);

    r = request(c, "POST", "/v1/admin/shutdown");
    if (r.status != 202)
        return smokeFail("shutdown", r.body);
    std::printf("smoke: ok (%zu stream records)\n", nLines);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Conn c;
    bool portStdin = false;
    int i = 1;
    for (; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--host" && i + 1 < argc)
            c.host = argv[++i];
        else if (a == "--port" && i + 1 < argc)
            c.port = unsigned(std::atoi(argv[++i]));
        else if (a == "--port-stdin")
            portStdin = true;
        else if (a == "--api-key" && i + 1 < argc)
            c.apiKey = argv[++i];
        else if (a == "--version") {
            std::printf("%s\n", buildInfo("xt910-client").c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        } else {
            break;
        }
    }
    if (i >= argc) {
        usage();
        return 2;
    }
    const std::string cmd = argv[i++];
    std::vector<std::string> args(argv + i, argv + argc);

    if (portStdin && !portFromStdin(c.port)) {
        std::fprintf(stderr, "no 'listening on' banner on stdin\n");
        return 3;
    }
    if (!c.port || c.port > 0xffff) {
        std::fprintf(stderr, "need --port or --port-stdin\n");
        return 2;
    }

    if (cmd == "submit") {
        std::string body, err;
        if (!parseSubmitArgs(args, body, err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        return finish(request(c, "POST", "/v1/jobs", body));
    }
    if (cmd == "status" || cmd == "stats" || cmd == "cancel" ||
        cmd == "watch") {
        if (args.empty()) {
            std::fprintf(stderr, "%s needs a job id\n", cmd.c_str());
            return 2;
        }
        const std::string id = args[0];
        if (cmd == "status")
            return finish(request(c, "GET", "/v1/jobs/" + id));
        if (cmd == "cancel")
            return finish(request(c, "DELETE", "/v1/jobs/" + id));
        std::string outPath;
        for (size_t k = 1; k < args.size(); ++k)
            if (args[k] == "--out" && k + 1 < args.size())
                outPath = args[++k];
        if (cmd == "stats") {
            serve::ClientResponse r =
                request(c, "GET", "/v1/jobs/" + id + "/stats");
            if (r.status == 200 && !outPath.empty()) {
                std::ofstream os(outPath, std::ios::binary);
                os << r.body;
                return os ? 0 : 3;
            }
            return finish(r);
        }
        // watch
        if (!outPath.empty()) {
            std::ofstream os(outPath, std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot open %s\n",
                             outPath.c_str());
                return 3;
            }
            return streamTo(c, id, os) == 200 ? 0 : 1;
        }
        return streamTo(c, id, std::cout) == 200 ? 0 : 1;
    }
    if (cmd == "list")
        return finish(request(c, "GET", "/v1/jobs"));
    if (cmd == "statsz")
        return finish(request(c, "GET", "/v1/statsz"));
    if (cmd == "version")
        return finish(request(c, "GET", "/v1/version"));
    if (cmd == "shutdown")
        return finish(request(c, "POST", "/v1/admin/shutdown"));
    if (cmd == "smoke")
        return runSmoke(c, args);

    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    usage();
    return 2;
}
