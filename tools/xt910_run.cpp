/**
 * @file
 * xt910-run — command-line driver for the simulator.
 *
 *   xt910-run [options] <workload> [<workload>...]
 *   xt910-run --list
 *
 * With several workloads the runs execute concurrently on a worker
 * pool (--jobs N / XT910_JOBS, default serial) and a per-workload
 * summary table is printed; results are identical at any job count.
 *
 * Options:
 *   --preset xt910|u74|a73|mcu   core model (default xt910)
 *   --cores N                    SMP width (default 1)
 *   --extended                   custom-ISA + optimized codegen
 *   --vector                     (workloads that support it)
 *   --scale N                    iteration multiplier
 *   --stream-kib N               STREAM array size
 *   --paged                      SV39 translation w/ identity tables
 *   --l2-kib N                   L2 size
 *   --dram-latency N             memory latency in cycles
 *   --no-prefetch                disable the data prefetcher
 *   --stats                      dump full component statistics
 *   --stats-json FILE            machine-readable stats (JSON)
 *   --stats-interval N           with --stats-json: JSONL interval
 *                                samples every N cycles + summary line
 *   --trace-konata FILE          Konata/Kanata pipeline trace
 *   --topdown                    print top-down retire-slot breakdown
 *   --max-cycles N               stop after N cycles (exit code 3)
 *   --max-insts N                stop after N instructions (exit code 3)
 *   --inject N                   fault-injection campaign of N runs
 *   --inject-seed S              campaign RNG seed (default 1)
 *   --inject-kinds a,b,...       restrict fault kinds (see --help)
 *   --jobs N                     worker threads for multi-workload and
 *                                campaign runs (default: XT910_JOBS
 *                                env, else serial)
 *   --checkpoint-every N         snapshot the system every N retired
 *                                instructions (crash-safe write-rename)
 *   --checkpoint-dir D           where checkpoints land (default ".")
 *   --restore FILE               resume from a snapshot file
 *   --sample-interval N          sampled mode: fast-forward in ISS
 *                                mode, measure detailed timing only on
 *                                N-instruction intervals and
 *                                extrapolate with error bars
 *   --sample-count K             measured intervals (default: every
 *                                captured candidate)
 *   --sample-warmup N            detailed warm-up instructions before
 *                                each measured interval
 *   --sample-seed S              0 = evenly spaced intervals, else a
 *                                seeded deterministic random pick
 *   --timeout-secs T             per-job wall-clock budget (farm runs)
 *   --retries R                  attempts after a failed/hung job
 *                                (default 1; retries restore from the
 *                                job's last checkpoint when one exists)
 *   --test-timeout NAME          testing hook: the named workload's
 *                                farm job reports a deadline overrun
 *
 * Every value option also accepts the --opt=value form.
 *
 * Exit codes: 0 ok, 1 checksum mismatch, 2 usage error, 3 run limit
 * hit (instruction or cycle budget exhausted before the workload
 * halted), 4 watchdog fired (the guest made no architectural progress
 * — see the ROB/PC-trace diagnostic on stderr), 5 a farm job failed or
 * timed out after all retries (the other jobs still complete and
 * report).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <vector>

#include "baseline/presets.h"
#include "common/json.h"
#include "common/profile.h"
#include "common/parallel.h"
#include "common/snapio.h"
#include "core/system.h"
#include "fault/campaign.h"
#include "mmu/pagetable.h"
#include "common/version.h"
#include "obs/konata.h"
#include "obs/sampler.h"
#include "sample/sample.h"
#include "serve/report.h"
#include "snap/snapshot.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

using namespace xt910;

namespace
{

void
usage()
{
    std::printf(
        "usage: xt910-run [options] <workload> [<workload>...]\n"
        "       xt910-run --list\n"
        "options: --preset xt910|u74|a73|mcu  --cores N  --extended\n"
        "         --scale N  --stream-kib N  --paged  --l2-kib N\n"
        "         --dram-latency N  --no-prefetch  --stats\n"
        "         --stats-json FILE  --stats-interval N\n"
        "         --trace-konata FILE  --topdown\n"
        "         --max-cycles N  --max-insts N\n"
        "         --inject N  --inject-seed S  --inject-kinds a,b,...\n"
        "         --jobs N (multi-workload / campaign parallelism)\n"
        "         --checkpoint-every N  --checkpoint-dir D\n"
        "         --restore FILE  --timeout-secs T  --retries R\n"
        "         --sample-interval N  --sample-count K\n"
        "         --sample-warmup N  --sample-seed S\n"
        "         --no-block-consume (A/B: per-record timing path)\n"
        "         --profile-hot (hit-rate report; section timers need\n"
        "                        an XT910_PROFILE=ON build)\n"
        "fault kinds: reg freg vreg mem cacheline access mispredict\n");
}

bool
parseKinds(const std::string &csv, std::vector<FaultKind> &out)
{
    std::istringstream is(csv);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok == "reg")
            out.push_back(FaultKind::RegBitFlip);
        else if (tok == "freg")
            out.push_back(FaultKind::FregBitFlip);
        else if (tok == "vreg")
            out.push_back(FaultKind::VregBitFlip);
        else if (tok == "mem")
            out.push_back(FaultKind::MemBitFlip);
        else if (tok == "cacheline")
            out.push_back(FaultKind::CacheLineFlip);
        else if (tok == "access")
            out.push_back(FaultKind::AccessFault);
        else if (tok == "mispredict")
            out.push_back(FaultKind::BranchMispredict);
        else
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads;
    std::string preset = "xt910";
    unsigned cores = 1;
    bool stats = false, paged = false, noPrefetch = false;
    bool noBlockConsume = false;
    WorkloadOptions wo;

    SystemConfig cfg;
    bool l2Set = false, dramSet = false;
    unsigned l2Kib = 0;
    Cycle dramLat = 0;
    uint64_t maxCycles = 0, maxInsts = 0;
    uint64_t injectRuns = 0, injectSeed = 1;
    unsigned jobs = 0;
    std::vector<FaultKind> injectKinds;
    std::string statsJsonPath, konataPath;
    uint64_t statsInterval = 0;
    bool topdown = false;
    uint64_t ckptEvery = 0;
    std::string ckptDir = ".";
    std::string restorePath;
    sample::SampleConfig sampleCfg;
    double timeoutSecs = 0.0;
    unsigned retries = 1;
    std::string testTimeout;

    // --profile-hot: print the hot-path section profile when main
    // returns, whichever path it returns by. Needs an XT910_PROFILE=ON
    // build; otherwise the flag warns and is ignored.
    struct ProfReportGuard
    {
        bool enabled = false;
        ~ProfReportGuard()
        {
#if XT_PROF_ENABLED
            if (enabled)
                xt910::prof::report(std::cerr);
#endif
        }
    } profGuard;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        // Split --opt=value so both argument forms work.
        std::string inlineVal;
        bool hasInline = false;
        if (a.size() > 1 && a[0] == '-') {
            size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        auto next = [&]() -> const char * {
            if (hasInline)
                return inlineVal.c_str();
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--list") {
            for (const Workload &w : allWorkloads())
                std::printf("%-14s (%s)\n", w.name.c_str(),
                            w.suite.c_str());
            return 0;
        } else if (a == "--preset") {
            preset = next();
        } else if (a == "--cores") {
            cores = unsigned(std::atoi(next()));
        } else if (a == "--extended") {
            wo.extended = true;
        } else if (a == "--vector") {
            wo.vector = true;
        } else if (a == "--scale") {
            wo.scale = unsigned(std::atoi(next()));
        } else if (a == "--stream-kib") {
            wo.streamBytes = unsigned(std::atoi(next())) * 1024;
        } else if (a == "--paged") {
            paged = true;
        } else if (a == "--l2-kib") {
            l2Kib = unsigned(std::atoi(next()));
            l2Set = true;
        } else if (a == "--dram-latency") {
            dramLat = Cycle(std::atoll(next()));
            dramSet = true;
        } else if (a == "--no-prefetch") {
            noPrefetch = true;
        } else if (a == "--stats") {
            stats = true;
        } else if (a == "--stats-json") {
            statsJsonPath = next();
        } else if (a == "--stats-interval") {
            statsInterval = uint64_t(std::atoll(next()));
        } else if (a == "--trace-konata") {
            konataPath = next();
        } else if (a == "--topdown") {
            topdown = true;
        } else if (a == "--max-cycles") {
            maxCycles = uint64_t(std::atoll(next()));
        } else if (a == "--max-insts") {
            maxInsts = uint64_t(std::atoll(next()));
        } else if (a == "--inject") {
            injectRuns = uint64_t(std::atoll(next()));
        } else if (a == "--inject-seed") {
            injectSeed = uint64_t(std::atoll(next()));
        } else if (a == "--jobs") {
            jobs = unsigned(std::atoi(next()));
        } else if (a == "--checkpoint-every") {
            ckptEvery = uint64_t(std::atoll(next()));
        } else if (a == "--checkpoint-dir") {
            ckptDir = next();
        } else if (a == "--restore") {
            restorePath = next();
        } else if (a == "--sample-interval") {
            sampleCfg.interval = uint64_t(std::atoll(next()));
        } else if (a == "--sample-count") {
            sampleCfg.count = unsigned(std::atoi(next()));
        } else if (a == "--sample-warmup") {
            sampleCfg.warmup = uint64_t(std::atoll(next()));
        } else if (a == "--sample-seed") {
            sampleCfg.seed = uint64_t(std::atoll(next()));
        } else if (a == "--timeout-secs") {
            timeoutSecs = std::atof(next());
        } else if (a == "--retries") {
            retries = unsigned(std::atoi(next()));
        } else if (a == "--test-timeout") {
            testTimeout = next();
        } else if (a == "--inject-kinds") {
            if (!parseKinds(next(), injectKinds)) {
                std::fprintf(stderr, "bad --inject-kinds\n");
                usage();
                return 2;
            }
        } else if (a == "--no-block-consume") {
            noBlockConsume = true;
        } else if (a == "--profile-hot") {
            profGuard.enabled = true;
            if (!XT_PROF_ENABLED)
                std::fprintf(stderr,
                             "--profile-hot: built without "
                             "XT910_PROFILE, section timers will not "
                             "be collected (the block-consume "
                             "hit-rate report still prints)\n");
        } else if (a == "--version") {
            std::printf("%s\n", buildInfo("xt910-run").c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] != '-') {
            workloads.push_back(a);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    if (workloads.empty()) {
        usage();
        return 2;
    }
    if (statsInterval && statsJsonPath.empty()) {
        std::fprintf(stderr,
                     "--stats-interval requires --stats-json FILE\n");
        return 2;
    }
    if (workloads.size() > 1 &&
        (injectRuns || !statsJsonPath.empty() || !konataPath.empty())) {
        std::fprintf(stderr, "--inject/--stats-json/--trace-konata "
                             "need a single workload\n");
        return 2;
    }
    if (!restorePath.empty() && workloads.size() > 1) {
        std::fprintf(stderr, "--restore needs a single workload\n");
        return 2;
    }
    if ((sampleCfg.count || sampleCfg.warmup || sampleCfg.seed) &&
        !sampleCfg.interval) {
        std::fprintf(stderr, "--sample-count/--sample-warmup/"
                             "--sample-seed need --sample-interval\n");
        return 2;
    }
    if (sampleCfg.interval) {
        if (workloads.size() > 1) {
            std::fprintf(stderr,
                         "--sample-interval needs a single workload\n");
            return 2;
        }
        if (cores != 1) {
            std::fprintf(stderr,
                         "sampled mode requires --cores 1 (functional "
                         "fast-forward and detailed timing interleave "
                         "harts differently)\n");
            return 2;
        }
        if (injectRuns || ckptEvery || !restorePath.empty() ||
            !konataPath.empty() || statsInterval || maxCycles) {
            std::fprintf(
                stderr,
                "--sample-interval is incompatible with --inject, "
                "--checkpoint-every, --restore, --trace-konata, "
                "--stats-interval and --max-cycles\n");
            return 2;
        }
    }
    const std::string workload = workloads[0];

    // Resolve the worker count up front: a malformed XT910_JOBS is a
    // usage error, not something to surface mid-run from deep inside
    // the farm or a campaign.
    unsigned resolvedJobs = 1;
    try {
        resolvedJobs = resolveJobs(jobs);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    CorePreset p = preset == "u74"   ? u74Preset()
                   : preset == "a73" ? a73Preset()
                   : preset == "mcu" ? mcuPreset()
                                     : xt910Preset();
    cfg = p.config;
    cfg.numCores = cores;
    if (l2Set)
        cfg.mem.l2.sizeBytes = l2Kib * 1024;
    if (dramSet)
        cfg.mem.dram.latency = dramLat;
    if (noPrefetch) {
        cfg.core.prefetch.enableL1 = false;
        cfg.core.prefetch.enableL2 = false;
        cfg.core.tlbPrefetch = false;
    }
    constexpr Addr tableBase = 0xc000'0000;
    if (paged) {
        cfg.core.translation = TranslationMode::Paged;
        cfg.core.pageTableRoot = tableBase;
    }

    if (maxCycles)
        cfg.maxCycles = maxCycles;
    if (maxInsts)
        cfg.maxInsts = maxInsts;
    cfg.disableBlockConsume = noBlockConsume;

    auto setupPaging = [&](System &sys, const Program &prog) {
        PageTableBuilder ptb(sys.memory(), tableBase);
        Addr root = ptb.createRoot();
        ptb.identityMap(root, prog.base, 0x100000, PageSize::Page4K);
        // Cover the off-image regions the stream/spec kernels use.
        ptb.identityMap(root, 0x9000'0000, 8ull << 20, PageSize::Page4K);
        ptb.identityMap(root, 0xa000'0000, 4ull << 20, PageSize::Page2M);
        ptb.identityMap(root, 0xb000'0000, 2ull << 20, PageSize::Page2M);
    };

    if (workloads.size() > 1) {
        // Run farm: one independent System per workload, executed on a
        // worker pool. Output order and every number are fixed by the
        // workload list, not by the job count. The farm is hardened: a
        // job that throws or overruns --timeout-secs is retried (from
        // its last checkpoint when --checkpoint-every is on) and, if it
        // still fails, gets a status entry while every other job's row
        // reports normally.
        std::vector<WorkloadBuild> builds;
        for (const std::string &n : workloads)
            builds.push_back(findWorkload(n).build(wo));
        std::vector<RunResult> results(builds.size());
        std::vector<char> oks(builds.size(), 0);
        FarmPolicy pol;
        pol.timeoutSecs = timeoutSecs;
        pol.retries = retries;
        auto ckptPathFor = [&](size_t i) {
            return ckptDir + "/" + workloads[i] + ".ckpt";
        };
        auto reports = runHardened(
            builds.size(), resolvedJobs, pol,
            [&](size_t i, JobContext &ctx) {
                if (workloads[i] == testTimeout)
                    throw FarmTimeout("injected test timeout");
                System sys(cfg);
                if (paged)
                    setupPaging(sys, builds[i].program);
                sys.loadProgram(builds[i].program);
                uint64_t base = 0;
                if (ctx.attempt > 0 && ckptEvery) {
                    // Resume the retry from the crashed attempt's last
                    // checkpoint; fall back to a clean start when none
                    // was written (or it refuses to load).
                    try {
                        base = snap::restoreSnapshotFile(
                            sys, ckptPathFor(i));
                    } catch (const SnapError &) {
                        base = 0;
                    }
                }
                uint64_t lastCkpt = 0;
                if (ckptEvery || pol.timeoutSecs > 0) {
                    sys.stepHook = [&, i, base](uint64_t n, System &s) {
                        if ((n & 4095) == 0)
                            ctx.checkDeadline();
                        if (ckptEvery && n && n % ckptEvery == 0 &&
                            n != lastCkpt) {
                            lastCkpt = n;
                            snap::saveSnapshotFile(s, ckptPathFor(i),
                                                   base + n);
                        }
                    };
                }
                results[i] = sys.run();
                oks[i] = wl::readResult(sys.memory(),
                                        builds[i].program) ==
                         builds[i].expected;
            });
        std::printf("%-14s %12s %12s %6s %9s %9s %8s\n", "workload",
                    "insts", "cycles", "IPC", "MIPS", "checksum",
                    "status");
        int rc = 0;
        for (size_t i = 0; i < builds.size(); ++i) {
            const RunResult &r = results[i];
            const JobReport &jr = reports[i];
            std::printf("%-14s %12llu %12llu %6.3f %9.2f %9s %8s\n",
                        workloads[i].c_str(),
                        static_cast<unsigned long long>(r.insts),
                        static_cast<unsigned long long>(r.cycles),
                        r.ipc(), r.simMips(),
                        oks[i] ? "ok" : "MISMATCH",
                        jobStatusName(jr.status));
            if (jr.status != JobStatus::Ok) {
                std::fprintf(stderr,
                             "job '%s' %s after %u attempt(s): %s\n",
                             workloads[i].c_str(),
                             jobStatusName(jr.status), jr.attempts,
                             jr.error.c_str());
                rc = std::max(rc, 5);
                continue;
            }
            if (r.stop == StopReason::Watchdog)
                rc = std::max(rc, 4);
            else if (r.stop != StopReason::Halted)
                rc = std::max(rc, 3);
            else if (!oks[i])
                rc = std::max(rc, 1);
        }
        return rc;
    }

    WorkloadBuild wb = findWorkload(workload).build(wo);

    if (sampleCfg.interval) {
        // Sampled mode: fast-forward functionally, measure detailed
        // timing only on sampled intervals (sharded over the run
        // farm), extrapolate with error bars. See DESIGN.md "Sampled
        // simulation" for the methodology contract.
        sample::SampleHooks hooks;
        if (paged)
            hooks.setup = [&](System &sys) {
                setupPaging(sys, wb.program);
            };
        hooks.checkResult = [&](System &sys) {
            return wl::readResult(sys.memory(), wb.program) ==
                   wb.expected;
        };
        sample::SampleReport rep;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            rep = sample::runSampled(cfg, wb.program, sampleCfg,
                                     resolvedJobs, hooks);
        } catch (const sample::SampleError &e) {
            std::fprintf(stderr, "sampled run failed: %s\n", e.what());
            return 2;
        }
        const std::chrono::duration<double> el =
            std::chrono::steady_clock::now() - t0;
        if (!statsJsonPath.empty()) {
            std::ostringstream os;
            sample::writeSampleJson(os, workload, rep);
            const std::string doc = os.str();
            try {
                snapWriteFileAtomic(statsJsonPath, doc.data(),
                                    doc.size());
            } catch (const SnapError &e) {
                std::fprintf(stderr, "cannot write %s: %s\n",
                             statsJsonPath.c_str(), e.what());
                return 2;
            }
        }
        std::printf("workload   : %s (%s%s, sampled)\n",
                    workload.c_str(), p.name.c_str(),
                    wo.extended ? ", extended" : "");
        std::printf("%s", sample::summarize(rep).c_str());
        std::printf("host time  : %.3f s (%.2f MIPS end-to-end)\n",
                    el.count(),
                    el.count() > 0
                        ? double(rep.totalInsts) / el.count() / 1e6
                        : 0.0);
        std::printf("checksum   : %s\n",
                    rep.checksumOk ? "ok" : "MISMATCH");
        if (!rep.halted) {
            std::fprintf(stderr,
                         "fast-forward stopped at the instruction "
                         "limit before the workload halted\n");
            return 3;
        }
        return rep.checksumOk ? 0 : 1;
    }

    // Resuming: the instruction budget is a whole-run budget, so the
    // part already retired before the snapshot comes off the top.
    uint64_t baseInsts = 0;
    if (!restorePath.empty()) {
        try {
            baseInsts = snap::inspectSnapshotFile(restorePath)
                            .instsRetired;
        } catch (const SnapError &e) {
            std::fprintf(stderr, "cannot restore %s: %s\n",
                         restorePath.c_str(), e.what());
            return 2;
        }
        cfg.maxInsts =
            cfg.maxInsts > baseInsts ? cfg.maxInsts - baseInsts : 0;
    }

    if (injectRuns) {
        CampaignConfig cc;
        cc.program = wb.program;
        cc.expected = wb.expected;
        cc.runs = injectRuns;
        cc.seed = injectSeed;
        cc.kinds = injectKinds;
        cc.jobs = jobs;
        cc.sys = cfg;
        FaultCampaign campaign(cc);
        campaign.run();
        std::printf("workload   : %s (%s%s)\n", workload.c_str(),
                    p.name.c_str(), wo.extended ? ", extended" : "");
        campaign.report(std::cout);
        if (stats) {
            std::printf("\n");
            campaign.stats.dump(std::cout);
        }
        if (!statsJsonPath.empty()) {
            std::ostringstream os;
            campaign.reportJson(os);
            const std::string doc = os.str();
            try {
                snapWriteFileAtomic(statsJsonPath, doc.data(),
                                    doc.size());
            } catch (const SnapError &e) {
                std::fprintf(stderr, "cannot write %s: %s\n",
                             statsJsonPath.c_str(), e.what());
                return 2;
            }
        }
        return 0;
    }

    System sys(cfg);
    if (paged)
        setupPaging(sys, wb.program);
    sys.loadProgram(wb.program);

    if (!restorePath.empty()) {
        try {
            snap::restoreSnapshotFile(sys, restorePath);
        } catch (const SnapError &e) {
            std::fprintf(stderr, "cannot restore %s: %s\n",
                         restorePath.c_str(), e.what());
            return 2;
        }
    }

    uint64_t lastCkpt = 0;
    const std::string ckptPath = ckptDir + "/" + workload + ".ckpt";
    if (ckptEvery) {
        // Captured from *inside* the run loop (stepHook runs before
        // each functional step): a snapshot taken after run() returned
        // would have finalized top-down accounting baked in, and a
        // resume from it would double-finalize and diverge.
        sys.stepHook = [&](uint64_t n, System &s) {
            if (n && n % ckptEvery == 0 && n != lastCkpt) {
                lastCkpt = n;
                snap::saveSnapshotFile(s, ckptPath, baseInsts + n);
            }
        };
    }

    // The interval sampler streams JSONL records during the run, so it
    // writes to the final path directly (each record is flushed — a
    // crash loses at most the in-progress line). The single-document
    // stats dump instead lands via write-to-temp + atomic rename after
    // the run, so a killed process never leaves a truncated JSON file
    // under the requested name.
    std::ofstream jsonFile;
    std::unique_ptr<obs::IntervalSampler> sampler;
    if (!statsJsonPath.empty() && statsInterval) {
        jsonFile.open(statsJsonPath);
        if (!jsonFile) {
            std::fprintf(stderr, "cannot open %s\n",
                         statsJsonPath.c_str());
            return 2;
        }
        sampler = std::make_unique<obs::IntervalSampler>(
            jsonFile, statsInterval);
        sys.attachSampler(*sampler);
    }
    std::ofstream konataFile;
    std::unique_ptr<obs::KonataTracer> tracer;
    if (!konataPath.empty()) {
        konataFile.open(konataPath);
        if (!konataFile) {
            std::fprintf(stderr, "cannot open %s\n", konataPath.c_str());
            return 2;
        }
        tracer = std::make_unique<obs::KonataTracer>(konataFile);
        for (unsigned c = 0; c < cores; ++c)
            sys.core(c).tracer = tracer.get();
    }

    RunResult r = sys.run();
    if (tracer)
        tracer->finish();

    if (profGuard.enabled) {
        // Block-consume fast-path accounting. Unlike the section
        // timers this needs no special build: the counters are plain
        // and always maintained.
        for (unsigned c = 0; c < cores; ++c) {
            const uint64_t ret = sys.core(c).retired();
            const uint64_t hits = sys.core(c).simpleSlotInsts();
            std::fprintf(
                stderr,
                "block-consume core%u: simple-slot %llu/%llu "
                "(hit rate %.1f%%)\n",
                c, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(ret),
                ret ? 100.0 * double(hits) / double(ret) : 0.0);
        }
    }

    bool ok = wl::readResult(sys.memory(), wb.program) == wb.expected;
    if (!statsJsonPath.empty()) {
        if (statsInterval) {
            // JSONL mode: the sampler already wrote the interval
            // records; append one compact summary line. Composed by
            // the shared report writer so the xt910d stream stays
            // byte-identical to this file.
            serve::writeRunSummaryLine(jsonFile, workload, r, ok, sys);
        } else {
            std::ostringstream os;
            serve::writeRunStatsJson(os, workload, r, ok, sys);
            const std::string doc = os.str();
            try {
                snapWriteFileAtomic(statsJsonPath, doc.data(),
                                    doc.size());
            } catch (const SnapError &e) {
                std::fprintf(stderr, "cannot write %s: %s\n",
                             statsJsonPath.c_str(), e.what());
                return 2;
            }
        }
    }
    std::printf("workload   : %s (%s%s)\n", workload.c_str(),
                p.name.c_str(), wo.extended ? ", extended" : "");
    std::printf("cores      : %u\n", cores);
    std::printf("insts      : %llu\n",
                static_cast<unsigned long long>(r.insts));
    std::printf("cycles     : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("IPC        : %.3f\n", r.ipc());
    std::printf("time @%.1fGHz: %.3f ms\n", p.freqGHz,
                double(r.cycles) / (p.freqGHz * 1e6));
    std::printf("sim speed  : %.2f MIPS (host)\n", r.simMips());
    std::printf("checksum   : %s\n", ok ? "ok" : "MISMATCH");
    if (topdown) {
        for (unsigned c = 0; c < cores; ++c)
            std::printf("topdown c%u : %s\n", c,
                        sys.core(c).topdown.summary().c_str());
    }
    if (stats) {
        std::printf("\n");
        sys.dumpStats(std::cout);
    }
    if (r.stop == StopReason::Watchdog) {
        std::fprintf(stderr, "%s\n", r.diagnostic.c_str());
        return 4;
    }
    if (r.stop == StopReason::InstLimit ||
        r.stop == StopReason::CycleLimit) {
        std::fprintf(stderr, "stopped early (%s):\n%s\n",
                     r.stop == StopReason::InstLimit ? "inst limit"
                                                     : "cycle limit",
                     r.diagnostic.c_str());
        return 3;
    }
    return ok ? 0 : 1;
}
