/**
 * @file
 * xt910d — the simulation-as-a-service daemon. Serves the REST API
 * described in src/serve/api.h over plain HTTP/1.1 on a loopback (by
 * default) socket, simulating submitted jobs on a worker pool.
 *
 *   xt910d [options]
 *
 * Options:
 *   --bind ADDR        bind address (default 127.0.0.1)
 *   --port N           TCP port (default 0 = ephemeral; the actual
 *                      port is printed as "listening on ADDR:PORT")
 *   --jobs N           simulation workers (default: XT910_JOBS env,
 *                      else 1)
 *   --http-threads N   HTTP connection workers (default 4)
 *   --queue-max N      bounded job-queue depth (default 64)
 *   --quota N          per-client live-job quota (default 8)
 *   --cache-dir D      persistent result cache (default: off)
 *   --no-cache         explicit off (reserved; off is the default)
 *   --state-dir D      drain/restore state (default: off). On SIGTERM
 *                      or POST /v1/admin/shutdown the daemon
 *                      checkpoints in-flight jobs here and a later
 *                      xt910d --state-dir D resumes them.
 *   --version          print build info and exit
 *
 * Exit codes: 0 clean shutdown, 2 usage error, 3 bind failure.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <condition_variable>
#include <mutex>

#include "common/parallel.h"
#include "common/version.h"
#include "serve/api.h"
#include "serve/http.h"
#include "serve/jobs.h"

using namespace xt910;

namespace
{

void
usage()
{
    std::printf(
        "usage: xt910d [options]\n"
        "options: --bind ADDR  --port N  --jobs N  --http-threads N\n"
        "         --queue-max N  --quota N  --cache-dir D  --no-cache\n"
        "         --state-dir D  --version\n");
}

std::mutex shutdownMu;
std::condition_variable shutdownCv;
bool shutdownRequested = false;

void
requestShutdown()
{
    {
        std::lock_guard<std::mutex> lk(shutdownMu);
        shutdownRequested = true;
    }
    shutdownCv.notify_all();
}

void
onSignal(int)
{
    // Async-signal-safety: pthread condvar signalling is not strictly
    // async-signal-safe, but this is the established idiom for a
    // single-threaded flag handoff and the alternative (self-pipe)
    // buys nothing for a tool of this size. The flag write is what
    // matters; a lost wakeup is recovered by the next SIGTERM.
    requestShutdown();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bindAddr = "127.0.0.1";
    unsigned port = 0;
    unsigned jobs = 0, httpThreads = 4;
    size_t queueMax = 64, quota = 8;
    std::string cacheDir, stateDir;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string inlineVal;
        bool hasInline = false;
        if (a.size() > 1 && a[0] == '-') {
            size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        auto next = [&]() -> const char * {
            if (hasInline)
                return inlineVal.c_str();
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--bind") {
            bindAddr = next();
        } else if (a == "--port") {
            port = unsigned(std::atoi(next()));
        } else if (a == "--jobs") {
            jobs = unsigned(std::atoi(next()));
        } else if (a == "--http-threads") {
            httpThreads = unsigned(std::atoi(next()));
        } else if (a == "--queue-max") {
            queueMax = size_t(std::atoll(next()));
        } else if (a == "--quota") {
            quota = size_t(std::atoll(next()));
        } else if (a == "--cache-dir") {
            cacheDir = next();
        } else if (a == "--no-cache") {
            cacheDir.clear();
        } else if (a == "--state-dir") {
            stateDir = next();
        } else if (a == "--version") {
            std::printf("%s\n", buildInfo("xt910d").c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    if (port > 0xffff || !queueMax || !quota) {
        std::fprintf(stderr, "bad --port/--queue-max/--quota\n");
        return 2;
    }

    serve::JobManagerConfig jc;
    try {
        jc.simJobs = resolveJobs(jobs);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    jc.queueMax = queueMax;
    jc.clientQuota = quota;
    jc.cacheDir = cacheDir;
    jc.stateDir = stateDir;

    serve::JobManager manager(jc);
    manager.restoreState();

    serve::ApiOptions ao;
    ao.requestShutdown = requestShutdown;

    serve::HttpServer::Options ho;
    ho.bindAddr = bindAddr;
    ho.port = uint16_t(port);
    ho.threads = httpThreads;

    std::unique_ptr<serve::HttpServer> server;
    try {
        server = std::make_unique<serve::HttpServer>(
            ho, serve::makeApiHandler(manager, ao));
    } catch (const serve::ServeError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 3;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    server->start();
    // The one line a supervisor (or the smoke test) needs; stdout may
    // be a pipe, so flush it explicitly.
    std::printf("listening on %s:%u\n", bindAddr.c_str(),
                unsigned(server->port()));
    std::fflush(stdout);

    {
        std::unique_lock<std::mutex> lk(shutdownMu);
        shutdownCv.wait(lk, [] { return shutdownRequested; });
    }

    std::fprintf(stderr, "xt910d: draining...\n");
    server->stop();     // finish in-flight HTTP exchanges first
    manager.drain();    // checkpoint + persist pending jobs
    std::fprintf(stderr, "xt910d: bye\n");
    return 0;
}
