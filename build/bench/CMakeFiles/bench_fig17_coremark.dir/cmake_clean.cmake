file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_coremark.dir/bench_fig17_coremark.cc.o"
  "CMakeFiles/bench_fig17_coremark.dir/bench_fig17_coremark.cc.o.d"
  "bench_fig17_coremark"
  "bench_fig17_coremark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_coremark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
