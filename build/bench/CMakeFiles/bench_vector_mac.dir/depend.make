# Empty dependencies file for bench_vector_mac.
# This may be replaced when dependencies are built.
