file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_mac.dir/bench_vector_mac.cc.o"
  "CMakeFiles/bench_vector_mac.dir/bench_vector_mac.cc.o.d"
  "bench_vector_mac"
  "bench_vector_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
