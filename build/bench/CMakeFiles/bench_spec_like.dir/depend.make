# Empty dependencies file for bench_spec_like.
# This may be replaced when dependencies are built.
