
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_spec_like.cc" "bench/CMakeFiles/bench_spec_like.dir/bench_spec_like.cc.o" "gcc" "bench/CMakeFiles/bench_spec_like.dir/bench_spec_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/xt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/xt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/uncore/CMakeFiles/xt_uncore.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/xt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/xt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/xt_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/xt_func.dir/DependInfo.cmake"
  "/root/repo/build/src/xasm/CMakeFiles/xt_xasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
