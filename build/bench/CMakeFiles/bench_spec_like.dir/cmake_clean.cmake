file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_like.dir/bench_spec_like.cc.o"
  "CMakeFiles/bench_spec_like.dir/bench_spec_like.cc.o.d"
  "bench_spec_like"
  "bench_spec_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
