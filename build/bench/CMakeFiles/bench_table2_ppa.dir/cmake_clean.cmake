file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ppa.dir/bench_table2_ppa.cc.o"
  "CMakeFiles/bench_table2_ppa.dir/bench_table2_ppa.cc.o.d"
  "bench_table2_ppa"
  "bench_table2_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
