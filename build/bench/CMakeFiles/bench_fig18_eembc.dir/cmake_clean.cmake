file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_eembc.dir/bench_fig18_eembc.cc.o"
  "CMakeFiles/bench_fig18_eembc.dir/bench_fig18_eembc.cc.o.d"
  "bench_fig18_eembc"
  "bench_fig18_eembc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_eembc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
