# Empty dependencies file for bench_fig18_eembc.
# This may be replaced when dependencies are built.
