# Empty dependencies file for bench_fig19_nbench.
# This may be replaced when dependencies are built.
