file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_nbench.dir/bench_fig19_nbench.cc.o"
  "CMakeFiles/bench_fig19_nbench.dir/bench_fig19_nbench.cc.o.d"
  "bench_fig19_nbench"
  "bench_fig19_nbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_nbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
