# Empty compiler generated dependencies file for bench_asid_flush.
# This may be replaced when dependencies are built.
