file(REMOVE_RECURSE
  "CMakeFiles/bench_asid_flush.dir/bench_asid_flush.cc.o"
  "CMakeFiles/bench_asid_flush.dir/bench_asid_flush.cc.o.d"
  "bench_asid_flush"
  "bench_asid_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asid_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
