file(REMOVE_RECURSE
  "libxt_power.a"
)
