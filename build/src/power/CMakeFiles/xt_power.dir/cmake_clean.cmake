file(REMOVE_RECURSE
  "CMakeFiles/xt_power.dir/ppa.cc.o"
  "CMakeFiles/xt_power.dir/ppa.cc.o.d"
  "libxt_power.a"
  "libxt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
