# Empty compiler generated dependencies file for xt_power.
# This may be replaced when dependencies are built.
