file(REMOVE_RECURSE
  "CMakeFiles/xt_branch.dir/btb.cc.o"
  "CMakeFiles/xt_branch.dir/btb.cc.o.d"
  "CMakeFiles/xt_branch.dir/direction.cc.o"
  "CMakeFiles/xt_branch.dir/direction.cc.o.d"
  "CMakeFiles/xt_branch.dir/loopbuffer.cc.o"
  "CMakeFiles/xt_branch.dir/loopbuffer.cc.o.d"
  "libxt_branch.a"
  "libxt_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
