# Empty compiler generated dependencies file for xt_branch.
# This may be replaced when dependencies are built.
