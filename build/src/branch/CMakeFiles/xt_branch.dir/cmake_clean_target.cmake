file(REMOVE_RECURSE
  "libxt_branch.a"
)
