# Empty dependencies file for xt_xasm.
# This may be replaced when dependencies are built.
