file(REMOVE_RECURSE
  "libxt_xasm.a"
)
