file(REMOVE_RECURSE
  "CMakeFiles/xt_xasm.dir/assembler.cc.o"
  "CMakeFiles/xt_xasm.dir/assembler.cc.o.d"
  "libxt_xasm.a"
  "libxt_xasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_xasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
