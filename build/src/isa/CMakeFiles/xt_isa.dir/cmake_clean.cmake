file(REMOVE_RECURSE
  "CMakeFiles/xt_isa.dir/disasm.cc.o"
  "CMakeFiles/xt_isa.dir/disasm.cc.o.d"
  "CMakeFiles/xt_isa.dir/encoding.cc.o"
  "CMakeFiles/xt_isa.dir/encoding.cc.o.d"
  "CMakeFiles/xt_isa.dir/opcodes.cc.o"
  "CMakeFiles/xt_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/xt_isa.dir/rvc.cc.o"
  "CMakeFiles/xt_isa.dir/rvc.cc.o.d"
  "libxt_isa.a"
  "libxt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
