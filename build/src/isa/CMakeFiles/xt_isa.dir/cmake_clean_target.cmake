file(REMOVE_RECURSE
  "libxt_isa.a"
)
