# Empty compiler generated dependencies file for xt_isa.
# This may be replaced when dependencies are built.
