file(REMOVE_RECURSE
  "libxt_mmu.a"
)
