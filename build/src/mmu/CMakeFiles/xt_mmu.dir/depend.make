# Empty dependencies file for xt_mmu.
# This may be replaced when dependencies are built.
