file(REMOVE_RECURSE
  "CMakeFiles/xt_mmu.dir/pagetable.cc.o"
  "CMakeFiles/xt_mmu.dir/pagetable.cc.o.d"
  "CMakeFiles/xt_mmu.dir/pmp.cc.o"
  "CMakeFiles/xt_mmu.dir/pmp.cc.o.d"
  "CMakeFiles/xt_mmu.dir/tlb.cc.o"
  "CMakeFiles/xt_mmu.dir/tlb.cc.o.d"
  "libxt_mmu.a"
  "libxt_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
