# Empty compiler generated dependencies file for xt_mem.
# This may be replaced when dependencies are built.
