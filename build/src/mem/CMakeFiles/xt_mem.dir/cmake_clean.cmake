file(REMOVE_RECURSE
  "CMakeFiles/xt_mem.dir/cache.cc.o"
  "CMakeFiles/xt_mem.dir/cache.cc.o.d"
  "CMakeFiles/xt_mem.dir/memsystem.cc.o"
  "CMakeFiles/xt_mem.dir/memsystem.cc.o.d"
  "CMakeFiles/xt_mem.dir/prefetcher.cc.o"
  "CMakeFiles/xt_mem.dir/prefetcher.cc.o.d"
  "libxt_mem.a"
  "libxt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
