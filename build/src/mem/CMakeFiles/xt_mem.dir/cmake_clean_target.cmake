file(REMOVE_RECURSE
  "libxt_mem.a"
)
