file(REMOVE_RECURSE
  "CMakeFiles/xt_uncore.dir/cluster.cc.o"
  "CMakeFiles/xt_uncore.dir/cluster.cc.o.d"
  "CMakeFiles/xt_uncore.dir/plic.cc.o"
  "CMakeFiles/xt_uncore.dir/plic.cc.o.d"
  "libxt_uncore.a"
  "libxt_uncore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
