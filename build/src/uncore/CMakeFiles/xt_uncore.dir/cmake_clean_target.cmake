file(REMOVE_RECURSE
  "libxt_uncore.a"
)
