# Empty compiler generated dependencies file for xt_uncore.
# This may be replaced when dependencies are built.
