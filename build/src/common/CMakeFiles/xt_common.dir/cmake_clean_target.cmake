file(REMOVE_RECURSE
  "libxt_common.a"
)
