# Empty dependencies file for xt_common.
# This may be replaced when dependencies are built.
