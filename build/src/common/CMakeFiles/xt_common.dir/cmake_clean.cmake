file(REMOVE_RECURSE
  "CMakeFiles/xt_common.dir/log.cc.o"
  "CMakeFiles/xt_common.dir/log.cc.o.d"
  "CMakeFiles/xt_common.dir/stats.cc.o"
  "CMakeFiles/xt_common.dir/stats.cc.o.d"
  "CMakeFiles/xt_common.dir/types.cc.o"
  "CMakeFiles/xt_common.dir/types.cc.o.d"
  "libxt_common.a"
  "libxt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
