# Empty dependencies file for xt_workloads.
# This may be replaced when dependencies are built.
