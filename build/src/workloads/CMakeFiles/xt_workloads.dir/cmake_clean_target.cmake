file(REMOVE_RECURSE
  "libxt_workloads.a"
)
