
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ai.cc" "src/workloads/CMakeFiles/xt_workloads.dir/ai.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/ai.cc.o.d"
  "/root/repo/src/workloads/coremark.cc" "src/workloads/CMakeFiles/xt_workloads.dir/coremark.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/coremark.cc.o.d"
  "/root/repo/src/workloads/eembc.cc" "src/workloads/CMakeFiles/xt_workloads.dir/eembc.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/eembc.cc.o.d"
  "/root/repo/src/workloads/nbench.cc" "src/workloads/CMakeFiles/xt_workloads.dir/nbench.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/nbench.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/xt_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/speclike.cc" "src/workloads/CMakeFiles/xt_workloads.dir/speclike.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/speclike.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/workloads/CMakeFiles/xt_workloads.dir/stream.cc.o" "gcc" "src/workloads/CMakeFiles/xt_workloads.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xasm/CMakeFiles/xt_xasm.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/xt_func.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
