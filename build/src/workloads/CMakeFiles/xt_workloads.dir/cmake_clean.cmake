file(REMOVE_RECURSE
  "CMakeFiles/xt_workloads.dir/ai.cc.o"
  "CMakeFiles/xt_workloads.dir/ai.cc.o.d"
  "CMakeFiles/xt_workloads.dir/coremark.cc.o"
  "CMakeFiles/xt_workloads.dir/coremark.cc.o.d"
  "CMakeFiles/xt_workloads.dir/eembc.cc.o"
  "CMakeFiles/xt_workloads.dir/eembc.cc.o.d"
  "CMakeFiles/xt_workloads.dir/nbench.cc.o"
  "CMakeFiles/xt_workloads.dir/nbench.cc.o.d"
  "CMakeFiles/xt_workloads.dir/registry.cc.o"
  "CMakeFiles/xt_workloads.dir/registry.cc.o.d"
  "CMakeFiles/xt_workloads.dir/speclike.cc.o"
  "CMakeFiles/xt_workloads.dir/speclike.cc.o.d"
  "CMakeFiles/xt_workloads.dir/stream.cc.o"
  "CMakeFiles/xt_workloads.dir/stream.cc.o.d"
  "libxt_workloads.a"
  "libxt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
