file(REMOVE_RECURSE
  "CMakeFiles/xt_baseline.dir/presets.cc.o"
  "CMakeFiles/xt_baseline.dir/presets.cc.o.d"
  "libxt_baseline.a"
  "libxt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
