# Empty dependencies file for xt_baseline.
# This may be replaced when dependencies are built.
