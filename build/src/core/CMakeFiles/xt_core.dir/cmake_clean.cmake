file(REMOVE_RECURSE
  "CMakeFiles/xt_core.dir/core.cc.o"
  "CMakeFiles/xt_core.dir/core.cc.o.d"
  "CMakeFiles/xt_core.dir/params.cc.o"
  "CMakeFiles/xt_core.dir/params.cc.o.d"
  "CMakeFiles/xt_core.dir/system.cc.o"
  "CMakeFiles/xt_core.dir/system.cc.o.d"
  "libxt_core.a"
  "libxt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
