# Empty compiler generated dependencies file for xt_core.
# This may be replaced when dependencies are built.
