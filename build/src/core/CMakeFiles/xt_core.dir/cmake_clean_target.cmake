file(REMOVE_RECURSE
  "libxt_core.a"
)
