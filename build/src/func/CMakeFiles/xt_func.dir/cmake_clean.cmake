file(REMOVE_RECURSE
  "CMakeFiles/xt_func.dir/iss.cc.o"
  "CMakeFiles/xt_func.dir/iss.cc.o.d"
  "CMakeFiles/xt_func.dir/memory.cc.o"
  "CMakeFiles/xt_func.dir/memory.cc.o.d"
  "libxt_func.a"
  "libxt_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
