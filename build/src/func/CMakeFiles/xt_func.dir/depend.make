# Empty dependencies file for xt_func.
# This may be replaced when dependencies are built.
