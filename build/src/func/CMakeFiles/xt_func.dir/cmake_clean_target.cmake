file(REMOVE_RECURSE
  "libxt_func.a"
)
