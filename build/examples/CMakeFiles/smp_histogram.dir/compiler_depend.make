# Empty compiler generated dependencies file for smp_histogram.
# This may be replaced when dependencies are built.
