file(REMOVE_RECURSE
  "CMakeFiles/smp_histogram.dir/smp_histogram.cpp.o"
  "CMakeFiles/smp_histogram.dir/smp_histogram.cpp.o.d"
  "smp_histogram"
  "smp_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
