# Empty compiler generated dependencies file for vector_ai.
# This may be replaced when dependencies are built.
