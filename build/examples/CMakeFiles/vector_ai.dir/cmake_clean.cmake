file(REMOVE_RECURSE
  "CMakeFiles/vector_ai.dir/vector_ai.cpp.o"
  "CMakeFiles/vector_ai.dir/vector_ai.cpp.o.d"
  "vector_ai"
  "vector_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
