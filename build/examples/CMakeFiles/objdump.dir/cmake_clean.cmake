file(REMOVE_RECURSE
  "CMakeFiles/objdump.dir/objdump.cpp.o"
  "CMakeFiles/objdump.dir/objdump.cpp.o.d"
  "objdump"
  "objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
