# Empty dependencies file for objdump.
# This may be replaced when dependencies are built.
