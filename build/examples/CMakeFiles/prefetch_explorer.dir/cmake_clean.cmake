file(REMOVE_RECURSE
  "CMakeFiles/prefetch_explorer.dir/prefetch_explorer.cpp.o"
  "CMakeFiles/prefetch_explorer.dir/prefetch_explorer.cpp.o.d"
  "prefetch_explorer"
  "prefetch_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
