# Empty compiler generated dependencies file for prefetch_explorer.
# This may be replaced when dependencies are built.
