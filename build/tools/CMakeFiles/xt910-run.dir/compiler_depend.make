# Empty compiler generated dependencies file for xt910-run.
# This may be replaced when dependencies are built.
