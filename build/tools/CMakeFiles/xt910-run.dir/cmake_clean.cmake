file(REMOVE_RECURSE
  "CMakeFiles/xt910-run.dir/xt910_run.cpp.o"
  "CMakeFiles/xt910-run.dir/xt910_run.cpp.o.d"
  "xt910-run"
  "xt910-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xt910-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
