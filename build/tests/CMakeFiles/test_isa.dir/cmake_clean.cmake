file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_decode.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_decode.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_roundtrip.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_roundtrip.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_rvc.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_rvc.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
