# Empty dependencies file for test_uncore.
# This may be replaced when dependencies are built.
