file(REMOVE_RECURSE
  "CMakeFiles/test_func.dir/func/test_interrupts.cc.o"
  "CMakeFiles/test_func.dir/func/test_interrupts.cc.o.d"
  "CMakeFiles/test_func.dir/func/test_iss.cc.o"
  "CMakeFiles/test_func.dir/func/test_iss.cc.o.d"
  "CMakeFiles/test_func.dir/func/test_iss_coverage.cc.o"
  "CMakeFiles/test_func.dir/func/test_iss_coverage.cc.o.d"
  "CMakeFiles/test_func.dir/func/test_iss_custom.cc.o"
  "CMakeFiles/test_func.dir/func/test_iss_custom.cc.o.d"
  "CMakeFiles/test_func.dir/func/test_iss_vector.cc.o"
  "CMakeFiles/test_func.dir/func/test_iss_vector.cc.o.d"
  "CMakeFiles/test_func.dir/func/test_memory.cc.o"
  "CMakeFiles/test_func.dir/func/test_memory.cc.o.d"
  "test_func"
  "test_func.pdb"
  "test_func[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
