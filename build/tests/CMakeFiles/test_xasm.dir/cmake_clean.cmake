file(REMOVE_RECURSE
  "CMakeFiles/test_xasm.dir/xasm/test_asm_fuzz.cc.o"
  "CMakeFiles/test_xasm.dir/xasm/test_asm_fuzz.cc.o.d"
  "CMakeFiles/test_xasm.dir/xasm/test_assembler.cc.o"
  "CMakeFiles/test_xasm.dir/xasm/test_assembler.cc.o.d"
  "test_xasm"
  "test_xasm.pdb"
  "test_xasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
