# Empty dependencies file for test_xasm.
# This may be replaced when dependencies are built.
