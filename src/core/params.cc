#include "core/params.h"

namespace xt910
{

CoreParams
u74ClassParams()
{
    // An in-order dual-issue application core in the SiFive U74 class:
    // 8-stage pipeline, 2-wide, single-issue LSU, modest predictors.
    CoreParams p;
    p.inOrder = true;
    p.decodeWidth = 2;
    p.renameWidth = 2;
    p.issueWidth = 2;
    p.retireWidth = 2;
    p.frontendStages = 2;
    p.decodeToIssue = 2;
    p.retireStages = 1;
    p.execRedirectPenalty = 5;
    p.ipRedirectBubbles = 1;
    p.ibRedirectBubbles = 2;
    p.robEntries = 16; // non-binding for in-order; kept small
    p.lqEntries = 8;
    p.sqEntries = 8;
    p.lsuDualIssue = false;
    p.pseudoDualStore = false;
    p.memDepPredict = false;
    p.direction.tableBits = 10;
    p.direction.banks = 2;
    p.direction.twoLevelBuf = false;
    p.btb.l0Enabled = false;
    p.btb.l1Sets = 64;
    p.lbuf.enabled = false;
    p.prefetch.enableL1 = true;
    p.prefetch.enableL2 = false;
    p.prefetch.mode = PrefetcherParams::Mode::Global;
    p.prefetch.numStreams = 1;
    p.prefetch.maxDepth = 8;
    p.prefetch.distance = 2;
    p.vecBitsPerCycle = 0; // no vector unit
    return p;
}

CoreParams
a73ClassParams()
{
    // A Cortex-A73-class OoO core: 2-wide decode, ~64-entry window,
    // dual AGU, strong predictors, NEON-style fixed 128-bit SIMD
    // (8x 16-bit MACs per cycle vs XT-910's 16, §X).
    CoreParams p;
    p.decodeWidth = 2;
    p.renameWidth = 2;
    p.issueWidth = 6;
    p.retireWidth = 2;
    p.frontendStages = 3;
    p.execRedirectPenalty = 9;
    p.robEntries = 64;
    p.lqEntries = 16;
    p.sqEntries = 12;
    p.lsuDualIssue = true;
    p.pseudoDualStore = false;
    p.memDepPredict = true;
    p.direction.tableBits = 13;
    p.direction.banks = 4;
    p.btb.l0Entries = 8;
    p.btb.l1Sets = 512;
    p.lbuf.enabled = false;
    p.vecBitsPerCycle = 128; // NEON: half XT-910's MAC throughput
    return p;
}

CoreParams
mcuClassParams()
{
    // A single-issue in-order microcontroller-class point (the low end
    // of Fig. 17's comparison set).
    CoreParams p;
    p.inOrder = true;
    p.decodeWidth = 1;
    p.renameWidth = 1;
    p.issueWidth = 1;
    p.retireWidth = 1;
    p.frontendStages = 1;
    p.decodeToIssue = 1;
    p.retireStages = 1;
    p.execRedirectPenalty = 3;
    p.ipRedirectBubbles = 1;
    p.ibRedirectBubbles = 1;
    p.robEntries = 4;
    p.lqEntries = 2;
    p.sqEntries = 2;
    p.lsuDualIssue = false;
    p.pseudoDualStore = false;
    p.memDepPredict = false;
    p.direction.tableBits = 8;
    p.direction.banks = 1;
    p.direction.twoLevelBuf = false;
    p.btb.l0Enabled = false;
    p.btb.l1Sets = 32;
    p.lbuf.enabled = false;
    p.prefetch.enableL1 = false;
    p.prefetch.enableL2 = false;
    p.vecBitsPerCycle = 0;
    return p;
}

} // namespace xt910
