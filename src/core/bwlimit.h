/**
 * @file
 * A per-cycle bandwidth limiter used to model pipeline-stage widths
 * (decode 3/cycle, rename 4/cycle, issue 8/cycle, ...): schedule()
 * books the earliest cycle at or after the request with spare slots.
 */

#ifndef XT910_CORE_BWLIMIT_H
#define XT910_CORE_BWLIMIT_H

#include <map>
#include <set>

#include "common/snapio.h"
#include "common/types.h"

namespace xt910
{

/** See file comment. */
class BandwidthLimiter
{
  public:
    explicit BandwidthLimiter(unsigned perCycle) : width(perCycle) {}

    /** Book a slot at the earliest cycle >= @p earliest. */
    Cycle
    schedule(Cycle earliest)
    {
        Cycle c = earliest;
        auto it = booked.lower_bound(c);
        while (it != booked.end() && it->first == c &&
               it->second >= width) {
            ++c;
            it = booked.lower_bound(c);
        }
        ++booked[c];
        // Prune ancient entries to bound memory.
        if (booked.size() > 1024)
            booked.erase(booked.begin(),
                         booked.lower_bound(c > 512 ? c - 512 : 0));
        return c;
    }

    unsigned perCycle() const { return width; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(booked.size());
        for (const auto &[cyc, n] : booked) {
            w.u64(cyc);
            w.u32(n);
        }
    }

    void
    snapLoad(SnapReader &r)
    {
        booked.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            Cycle cyc = r.u64();
            booked[cyc] = r.u32();
        }
    }

  private:
    unsigned width;
    std::map<Cycle, unsigned> booked;
};

/**
 * A single-issue execution port with cycle-granular bookings. Unlike a
 * monotonic "free-after" pointer, younger µops may book *earlier* idle
 * cycles than an older µop that issues late — which is exactly what an
 * out-of-order scheduler does with its issue slots.
 */
class PortSchedule
{
  public:
    /** Earliest start >= @p earliest with @p len consecutive free
     *  cycles. Does not book. */
    Cycle
    probe(Cycle earliest, unsigned len = 1) const
    {
        Cycle c = earliest;
        auto it = busy.lower_bound(c);
        while (it != busy.end() && *it < c + len) {
            // Collision: restart just after the conflicting booking.
            c = *it + 1;
            it = busy.lower_bound(c);
        }
        return c;
    }

    /** Book cycles [start, start+len). */
    void
    book(Cycle start, unsigned len = 1)
    {
        for (unsigned i = 0; i < len; ++i)
            busy.insert(start + i);
        // Bound memory: forget bookings far in the past.
        if (busy.size() > 4096) {
            Cycle horizon = start > 2048 ? start - 2048 : 0;
            busy.erase(busy.begin(), busy.lower_bound(horizon));
        }
    }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(busy.size());
        for (Cycle c : busy)
            w.u64(c);
    }

    void
    snapLoad(SnapReader &r)
    {
        busy.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i)
            busy.insert(r.u64());
    }

  private:
    std::set<Cycle> busy;
};

} // namespace xt910

#endif // XT910_CORE_BWLIMIT_H
