/**
 * @file
 * Bandwidth and port schedulers for the timing model's pipeline
 * stages. These are the structures that "jump the clock": instead of
 * walking candidate cycles one by one (the old std::map/std::set
 * limiters — which profiling showed at >90% of System-mode runtime on
 * store-heavy loops), each scheduler computes the next free cycle in
 * O(1) (in-order stage gates) or O(words) (issue/port windows), and
 * exposes a `busyHorizon()` / `nextEventCycle()` hook so callers can
 * detect quiescence (DESIGN.md §3f).
 *
 * Three schedulers model three different hardware disciplines:
 *  - StageGate: an in-order stage of fixed width (decode 3/cycle,
 *    rename 4/cycle, retire 4/cycle). In-order means a younger µop can
 *    never pass through the stage earlier than an older one, so the
 *    whole booking history collapses to {last cycle, slots used}.
 *  - IssueGate: total issue bandwidth (8 µops/cycle) across all pipes.
 *    Issue is out of order — a younger µop may legally claim an issue
 *    slot earlier than an older, stalled µop — so per-cycle counts are
 *    kept over a sliding window.
 *  - PortSchedule: a single execution pipe, one µop per cycle, with
 *    multi-cycle occupancy for unpipelined units. Also out of order;
 *    kept as a sliding bitmap (one bit per cycle).
 *
 * The sliding windows never *forget* a booking the way the old pruned
 * containers did (the prune made ancient cycles look free again, a
 * modeling artifact); requests that fall behind the window floor are
 * clamped up to it instead. See DESIGN.md §3f for the semantics
 * statement and EXPERIMENTS.md for the measured impact.
 */

#ifndef XT910_CORE_BWLIMIT_H
#define XT910_CORE_BWLIMIT_H

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"
#include "common/types.h"

namespace xt910
{

/**
 * In-order pipeline-stage width gate: schedule() books the earliest
 * cycle >= the request that still has a free slot, never earlier than
 * the last booked cycle (program order passes through an in-order
 * stage monotonically). O(1), two words of state.
 */
class StageGate
{
  public:
    explicit StageGate(unsigned perCycle) : width(perCycle) {}

    /** Book a slot at the earliest in-order cycle >= @p earliest. */
    Cycle
    schedule(Cycle earliest)
    {
        if (earliest > last) {
            last = earliest;
            used = 1;
        } else if (used < width) {
            ++used;
        } else {
            ++last;
            used = 1;
        }
        return last;
    }

    unsigned perCycle() const { return width; }

    /** Latest cycle with a booking; the gate is quiescent past it. */
    Cycle busyHorizon() const { return last; }

    /** Earliest cycle the next request could be granted. */
    Cycle nextEventCycle() const { return used < width ? last : last + 1; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(last);
        w.u32(used);
    }

    void
    snapLoad(SnapReader &r)
    {
        last = r.u64();
        used = r.u32();
    }

  private:
    unsigned width;
    Cycle last = 0;     ///< most recent booked cycle
    unsigned used = 0;  ///< slots consumed at `last`
};

/**
 * Out-of-order issue-bandwidth gate: per-cycle booking counts over a
 * sliding window of `window` cycles. Requests below the window floor
 * (i.e. more than ~`lookback` cycles behind the newest booking) are
 * clamped up to the floor; within the window the booking semantics are
 * exactly the tick-every-cycle reference ("earliest cycle >= request
 * with a free slot"), found by a linear scan over dense uint8 counts.
 */
class IssueGate
{
  public:
    static constexpr unsigned window = 4096;
    static constexpr unsigned lookback = window / 2;

    explicit IssueGate(unsigned perCycle) : width(perCycle)
    {
        xt_assert(perCycle > 0 && perCycle < 255,
                  "issue width out of range");
    }

    /** Book a slot at the earliest cycle >= @p earliest (clamped to
     *  the window floor) with spare bandwidth. */
    Cycle
    schedule(Cycle earliest)
    {
        Cycle c = earliest < base ? base : earliest;
        if (c >= base + window)
            slide(c);
        unsigned i = unsigned(c - base);
        while (cnt[i] >= width) {
            ++c;
            if (++i == window) {
                slide(c);
                i = unsigned(c - base);
            }
        }
        ++cnt[i];
        if (c > maxBooked)
            maxBooked = c;
        return c;
    }

    unsigned perCycle() const { return width; }
    Cycle busyHorizon() const { return maxBooked; }
    Cycle nextEventCycle() const { return maxBooked; }
    Cycle windowFloor() const { return base; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(base);
        w.u64(maxBooked);
        for (unsigned i = 0; i < window; ++i)
            w.u8(cnt[i]);
    }

    void
    snapLoad(SnapReader &r)
    {
        base = r.u64();
        maxBooked = r.u64();
        for (unsigned i = 0; i < window; ++i)
            cnt[i] = r.u8();
    }

  private:
    /** Slide the floor so cycle @p c fits, keeping `lookback` cycles
     *  of history. Amortized O(1): a slide of k cycles only happens
     *  after >= k bookings advanced the clock. */
    void
    slide(Cycle c)
    {
        Cycle nb = c > lookback ? c - lookback : 0;
        if (nb <= base)
            return;
        uint64_t shift = nb - base;
        if (shift >= window) {
            cnt.fill(0);
        } else {
            std::copy(cnt.begin() + shift, cnt.end(), cnt.begin());
            std::fill(cnt.end() - ptrdiff_t(shift), cnt.end(), 0);
        }
        base = nb;
    }

    unsigned width;
    Cycle base = 0;      ///< cycle cnt[0] describes
    Cycle maxBooked = 0; ///< latest booked cycle
    std::array<uint8_t, window> cnt{};
};

/**
 * A single-issue execution port with cycle-granular bookings. Unlike a
 * monotonic "free-after" pointer, younger µops may book *earlier* idle
 * cycles than an older µop that issues late — which is exactly what an
 * out-of-order scheduler does with its issue slots. Kept as a sliding
 * bitmap, one bit per cycle; probe() finds a run of @p len free cycles
 * with word-at-a-time scans.
 */
class PortSchedule
{
  public:
    static constexpr unsigned window = 8192; ///< cycles tracked
    static constexpr unsigned words = window / 64;
    static constexpr unsigned lookback = window / 2;

    /** Earliest start >= @p earliest (clamped to the window floor)
     *  with @p len consecutive free cycles. Does not book. May slide
     *  the window forward, hence non-const. */
    Cycle
    probe(Cycle earliest, unsigned len = 1)
    {
        xt_assert(len > 0 && len <= lookback, "port occupancy too long");
        Cycle c = earliest < base ? base : earliest;
        // Busy-run memo: bits are only ever *set* inside the window, so
        // "[busyFrom, busyTo) had no free cycle" can never become false
        // — a probe landing inside that run may start at its end. On a
        // saturated port this skips re-scanning the whole in-flight
        // backlog (~ROB depth) that every consume would otherwise walk.
        if (c >= busyFrom && c < busyTo)
            c = busyTo;
        if (len == 1) {
            // Single-cycle occupancy (every pipelined µop): the next
            // free cycle is the next *clear bit*, found word-at-a-time.
            // The generic restart loop below advances one cycle per
            // conflict, which profiling showed walking the entire
            // port-bound backlog (~ROB depth) per probe on
            // branch-dense code.
            const Cycle scanStart = c;
            for (;;) {
                if (c + 1 > base + window)
                    slide(c + 1);
                uint64_t b = c - base;
                uint64_t m = ~uint64_t(0) << (b & 63);
                for (uint64_t wi = b >> 6; wi < words; ++wi) {
                    uint64_t freeBits = ~bits[wi] & m;
                    if (freeBits) {
                        Cycle r = base + (wi << 6) +
                                  unsigned(__builtin_ctzll(freeBits));
                        // [scanStart, r) is busy; merge into the memo.
                        if (scanStart == busyTo) {
                            busyTo = r;
                        } else if (r > busyTo) {
                            busyFrom = scanStart;
                            busyTo = r;
                        }
                        return r;
                    }
                    m = ~uint64_t(0);
                }
                c = base + window; // whole window busy above c: slide
            }
        }
        for (;;) {
            if (c + len > base + window)
                slide(c + len);
            Cycle conflict;
            if (runFree(c, len, conflict))
                return c;
            c = conflict + 1;
        }
    }

    /** Book cycles [start, start+len). */
    void
    book(Cycle start, unsigned len = 1)
    {
        // Same bound probe() asserts. book() must enforce it too: a
        // longer run that crosses the window top would slide the base
        // *past* `start` (slide keeps only `lookback` of history), the
        // start-base index would wrap negative, and the booking would
        // be silently lost — the bitmap untouched while maxBooked
        // claims the cycles are busy.
        xt_assert(len > 0 && len <= lookback, "port occupancy too long");
        if (start < base)
            start = base;
        if (start + len > base + window)
            slide(start + len);
        uint64_t b = start - base;
        for (uint64_t i = b; i < b + len; ++i)
            bits[i >> 6] |= uint64_t(1) << (i & 63);
        if (start + len - 1 > maxBooked)
            maxBooked = start + len - 1;
    }

    Cycle busyHorizon() const { return maxBooked; }
    Cycle nextEventCycle() const { return maxBooked; }
    Cycle windowFloor() const { return base; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(base);
        w.u64(maxBooked);
        for (unsigned i = 0; i < words; ++i)
            w.u64(bits[i]);
    }

    void
    snapLoad(SnapReader &r)
    {
        base = r.u64();
        maxBooked = r.u64();
        for (unsigned i = 0; i < words; ++i)
            bits[i] = r.u64();
        busyFrom = busyTo = 0; // memo may not describe the new bitmap
    }

  private:
    /** All of [c, c+len) free? If not, @p conflict = last busy cycle
     *  in the range (the probe restart point). */
    bool
    runFree(Cycle c, unsigned len, Cycle &conflict) const
    {
        uint64_t b = c - base;
        uint64_t e = b + len; // exclusive
        bool free = true;
        uint64_t lastSet = 0;
        for (uint64_t wi = b >> 6; wi <= (e - 1) >> 6; ++wi) {
            uint64_t m = ~uint64_t(0);
            if (wi == b >> 6)
                m &= ~uint64_t(0) << (b & 63);
            if (wi == (e - 1) >> 6) {
                unsigned top = unsigned((e - 1) & 63);
                m &= top == 63 ? ~uint64_t(0)
                               : ((uint64_t(1) << (top + 1)) - 1);
            }
            uint64_t hit = bits[wi] & m;
            if (hit) {
                free = false;
                lastSet = (wi << 6) + (63 - unsigned(__builtin_clzll(hit)));
            }
        }
        if (!free)
            conflict = base + lastSet;
        return free;
    }

    /** Slide the floor so cycle range ending at @p end fits, keeping
     *  `lookback` cycles of history. Amortized O(1) per booking. */
    void
    slide(Cycle end)
    {
        Cycle nb = end > lookback ? end - lookback : 0;
        if (nb <= base)
            return;
        uint64_t shift = nb - base;
        if (shift >= window) {
            bits.fill(0);
            base = nb;
            return;
        }
        // Shift the bitmap down by `shift` bits (word+bit granular).
        uint64_t ws = shift >> 6;
        unsigned bs = unsigned(shift & 63);
        for (unsigned i = 0; i < words; ++i) {
            uint64_t lo = i + ws < words ? bits[i + ws] : 0;
            uint64_t hi = i + ws + 1 < words ? bits[i + ws + 1] : 0;
            bits[i] = bs == 0 ? lo : (lo >> bs) | (hi << (64 - bs));
        }
        base = nb;
    }

    Cycle base = 0;
    Cycle maxBooked = 0;
    /**
     * Known-busy run [busyFrom, busyTo): a pure probe memo, valid
     * because booked bits are never cleared inside the window. Not
     * serialized — snapLoad leaves it empty (conservative: probes
     * just re-scan once).
     */
    Cycle busyFrom = 0;
    Cycle busyTo = 0;
    std::array<uint64_t, words> bits{};
};

} // namespace xt910

#endif // XT910_CORE_BWLIMIT_H
