/**
 * @file
 * System: the top-level convenience wrapper coupling the functional
 * simulator (oracle) with one timing core per hart and a shared
 * coherent memory system. This is the main entry point of the public
 * API — examples, tests and benchmarks mostly only need this class.
 *
 *   Assembler a; ... build program ...
 *   System sys(SystemConfig{});
 *   sys.loadProgram(a.assemble());
 *   auto r = sys.run();
 *   std::cout << r.ipc() << "\n";
 */

#ifndef XT910_CORE_SYSTEM_H
#define XT910_CORE_SYSTEM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "core/watchdog.h"
#include "func/iss.h"
#include "mem/memsystem.h"
#include "obs/sampler.h"

namespace xt910
{

/** Whole-system configuration. */
struct SystemConfig
{
    unsigned numCores = 1;
    CoreParams core{};          ///< applied to every core
    MemSystemParams mem{};      ///< numCores is overridden
    IssOptions iss{};           ///< vlen etc.
    uint64_t maxInsts = 2'000'000'000;
    /** Stop once any core's timing model passes this cycle (0 = off). */
    Cycle maxCycles = 0;
    /**
     * Suppress the instruction-limit warning and its diagnostic dump.
     * Bounded sub-runs (sampled-interval measurement) hit the budget
     * by design; the stop reason is still reported as InstLimit.
     * Run-length policy, like maxInsts — excluded from the snapshot
     * config hash.
     */
    bool quietInstLimit = false;
    /**
     * A/B switch for the block-batched timing hand-off (DESIGN.md
     * §3h): when set, run() consumes every record through the
     * per-instruction path even when a whole span could be batched.
     * Scheduling and stats are byte-identical either way (tests
     * assert it); only host speed differs. Host-path policy like
     * maxInsts — excluded from the snapshot config hash.
     */
    bool disableBlockConsume = false;
    WatchdogParams watchdog{};  ///< livelock detection (per hart)
};

/** Why a run stopped. */
enum class StopReason : uint8_t
{
    Halted,     ///< every hart halted architecturally
    InstLimit,  ///< maxInsts reached
    CycleLimit, ///< maxCycles reached
    Watchdog,   ///< a hart made no progress (see diagnostic)
};

/** Result of a run. */
struct RunResult
{
    uint64_t insts = 0;        ///< instructions retired (all cores)
    Cycle cycles = 0;          ///< max cycle count over cores
    std::vector<Cycle> coreCycles;
    std::vector<uint64_t> coreInsts;
    StopReason stop = StopReason::Halted;
    /** Human-readable dump when stop != Halted (ROB head, last PCs). */
    std::string diagnostic;
    /**
     * Host wall-clock time spent inside run(). This is the one
     * non-deterministic field of the result — keep it (and simMips())
     * out of anything compared byte-for-byte across runs.
     */
    double hostSeconds = 0.0;

    double
    ipc() const
    {
        return cycles ? double(insts) / double(cycles) : 0.0;
    }

    /** Host-side simulation speed in millions of guest insts/second. */
    double
    simMips() const
    {
        return hostSeconds > 0 ? double(insts) / hostSeconds / 1e6 : 0.0;
    }
};

/** See file comment. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /** Load a program; every hart starts at its entry. */
    void loadProgram(const Program &p);

    /** Run until all harts halt (or maxInsts); returns timing. */
    RunResult run();

    Iss &iss() { return *issModel; }
    MemSystem &memSystem() { return *memSys; }
    XtCore &core(unsigned i = 0) { return *cores[i]; }
    Memory &memory() { return mem; }
    Watchdog &watchdog(unsigned i = 0) { return watchdogs[i]; }
    const SystemConfig &config() const { return cfg; }

    void dumpStats(std::ostream &os) const;

    /** Dump every stat group as one hierarchical JSON object. */
    void dumpStatsJson(std::ostream &os, bool pretty = true) const;

    /** Visit every StatGroup in the system (cores + memory). */
    void forEachStatGroup(
        const std::function<void(const StatGroup &)> &fn) const;

    /**
     * Register an interval sampler: it learns every stat group now and
     * is ticked from the run loop with the global max cycle. The
     * sampler must outlive the run; its final partial interval is
     * flushed when run() returns.
     */
    void attachSampler(obs::IntervalSampler &s);

    /**
     * Called before every functional step with (instructions retired so
     * far, this system). Fault injectors hang their schedules here.
     */
    std::function<void(uint64_t, System &)> stepHook;

    /**
     * A/B switch for the event-skip batch dispatch in run(): when set,
     * every instruction goes through the full pop/push heap round even
     * if the same hart would be re-picked. Scheduling is identical
     * either way (tests assert it); only host speed differs.
     */
    bool disableFastPath = false;

    /**
     * Event-skip hook (DESIGN.md §3f): latest cycle at which any core
     * or the shared memory system still owns a resource. The whole
     * system is quiescent past this cycle.
     */
    Cycle busyHorizon() const;

  private:
    /** Could anything outside @p hart still unblock it? */
    bool interruptible(unsigned hart) const;
    /** Compose the watchdog/limit diagnostic for @p hart. */
    std::string diagnose(unsigned hart) const;

    /**
     * Feed the pending span records [spanConsumed, upTo) of spanHart
     * through the watchdog and the timing model, preserving the
     * reference loop's per-instruction observe/consume order: if the
     * watchdog fires on record k, records through k are consumed and
     * the rest of the span is abandoned. Returns whether it fired.
     * Also the target of the ISS timingSync hook, so a mid-span
     * rdcycle sees the timing model caught up to its own record.
     */
    bool drainSpan(unsigned upTo);

    /** Records per stepBlock span in the batched hand-off. */
    static constexpr unsigned kSpanInsts = 64;

    SystemConfig cfg;
    Memory mem;
    std::unique_ptr<MemSystem> memSys;
    std::unique_ptr<Iss> issModel;
    std::vector<std::unique_ptr<XtCore>> cores;
    std::vector<Watchdog> watchdogs;
    obs::IntervalSampler *sampler = nullptr;
    /**
     * Cached pointers to each hart's mstatus/mie CSR slots, polled by
     * interruptible() after every instruction. unordered_map nodes are
     * reference-stable, and pre-creating the entries at value 0 matches
     * readCsr's absent-reads-as-zero convention.
     */
    std::vector<const uint64_t *> mstatusSlot, mieSlot;
    /** Harts not yet halted; maintained by run() for interruptible(). */
    unsigned runningHarts = 0;

    // Span-dispatch state (DESIGN.md §3h), live only while run()'s
    // batched path has a stepBlock span in flight.
    std::vector<ExecRecord> spanBuf;
    unsigned spanHart = 0;
    unsigned spanConsumed = 0;
    bool spanActive = false;
};

} // namespace xt910

#endif // XT910_CORE_SYSTEM_H
