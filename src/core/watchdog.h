/**
 * @file
 * Deadlock / livelock watchdog. The simulator is trace-driven, so a
 * guest that spins forever (a mis-handled trap looping on the same
 * faulting PC, a lock that is never released, a handler that mret-s
 * back onto the faulting instruction) would otherwise hang the whole
 * process. The watchdog observes every retired instruction and fires
 * when the hart has made no architectural progress for a configurable
 * window: the PC stays inside a small code window with no store, no
 * trap, no halt and no way for an interrupt or another hart to break
 * the loop. It keeps a ring buffer of recently retired PCs so the
 * abort comes with a usable diagnostic.
 */

#ifndef XT910_CORE_WATCHDOG_H
#define XT910_CORE_WATCHDOG_H

#include <string>
#include <vector>

#include "func/iss.h"

namespace xt910
{

/** Watchdog tuning knobs. */
struct WatchdogParams
{
    bool enabled = true;
    /**
     * Retired instructions confined to one code window, with no other
     * sign of progress, before the watchdog declares a livelock. Large
     * enough that counted delay loops in workloads stay clear.
     */
    uint64_t spinWindowInsts = 100'000;
    /** Code-window radius: PCs further apart than this reset the spin
     *  counter (a real loop nest walks more code than a spin). */
    uint64_t pcWindowBytes = 64;
    /** Retired PCs kept for the diagnostic dump. */
    unsigned traceDepth = 16;
};

/** See file comment. */
class Watchdog
{
  public:
    explicit Watchdog(const WatchdogParams &params) : p(params) {}

    /**
     * Feed one retired instruction. @p interruptible says whether
     * anything outside this hart could still change its state (enabled
     * interrupts pending delivery, other harts running): a spin that
     * can be broken externally is a wait, not a hang.
     */
    void observe(const ExecRecord &rec, bool interruptible);

    bool fired() const { return hasFired; }

    /** Multi-line description of the spin: window, count, last PCs. */
    std::string diagnostic() const;

    /** Last retired PCs, oldest first (for tests / richer dumps). */
    std::vector<Addr> recentPcs() const;

    void reset();

    /** Serialize spin-tracking state and the PC ring buffer. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

  private:
    WatchdogParams p;
    Addr anchorPc = 0;       ///< window reference point
    bool anchorValid = false;
    Addr lastMemAddr = 0;    ///< advancing data accesses are progress
    bool lastMemValid = false;
    uint64_t spinCount = 0;  ///< retires since last sign of progress
    bool hasFired = false;

    std::vector<Addr> ring;  ///< last traceDepth retired PCs
    size_t ringNext = 0;
};

} // namespace xt910

#endif // XT910_CORE_WATCHDOG_H
