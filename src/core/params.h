/**
 * @file
 * Core timing-model parameters. The defaults describe XT-910 as the
 * paper specifies it: 12-stage pipeline, 3-wide decode, 4-wide rename,
 * 8-wide issue, 192-entry ROB, dual-issue out-of-order LSU with pseudo
 * double store, two ALUs (+mul), shared multi-cycle/divide pipe, BJU,
 * two FP/vector pipes, hybrid branch prediction with L0/L1 BTB and a
 * loop buffer, multi-mode multi-stream prefetch, and multi-size TLBs.
 */

#ifndef XT910_CORE_PARAMS_H
#define XT910_CORE_PARAMS_H

#include "branch/btb.h"
#include "branch/direction.h"
#include "branch/loopbuffer.h"
#include "mem/prefetcher.h"
#include "mmu/tlb.h"

namespace xt910
{

/** How virtual addresses are translated by the timing model. */
enum class TranslationMode : uint8_t
{
    Bare,   ///< VA == PA, TLBs bypassed
    Paged,  ///< SV39 via TLBs + hardware PTW on real tables
};

/** See file comment. */
struct CoreParams
{
    // ----------------------------------------------------- frontend
    unsigned fetchBytes = 16;     ///< 128-bit fetch line (§III)
    unsigned fetchMaxInsts = 8;   ///< up to 8 per line (§III)
    unsigned decodeWidth = 3;     ///< ID decodes 3 (§IV)
    unsigned renameWidth = 4;     ///< IR renames up to 4 (§IV)
    unsigned issueWidth = 8;      ///< 8 shared instruction slots (§IV)
    unsigned retireWidth = 4;

    // Pipeline-depth-derived latencies (12 stages: IF..RT2).
    unsigned frontendStages = 3;  ///< IF -> IP -> IB before decode
    unsigned decodeToIssue = 3;   ///< ID, IR, IS
    unsigned retireStages = 2;    ///< RT1, RT2
    /** Fetch-redirect penalty when a branch resolves at execute. */
    unsigned execRedirectPenalty = 8;
    /** Bubbles for a taken jump initiated at the IP stage (§III.A/B). */
    unsigned ipRedirectBubbles = 2;
    /** Bubbles when an L1-BTB correction happens at IB (§III.B). */
    unsigned ibRedirectBubbles = 3;

    // ------------------------------------------------------ windows
    unsigned robEntries = 192;    ///< §IV
    unsigned lqEntries = 32;
    unsigned sqEntries = 24;
    /**
     * Distributed issue queues (§IV: "multiple independent out-of-order
     * issue queues" feeding the 8 shared slots, age-vector scheduled).
     * A µop occupies its class's queue from dispatch until issue.
     */
    unsigned iqAluEntries = 24;
    unsigned iqMemEntries = 16;
    unsigned iqFpEntries = 16;

    // ------------------------------------------------ execution units
    /**
     * In-order issue mode for the comparison cores: µops issue in
     * program order (stall-on-use), bounded by issueWidth.
     */
    bool inOrder = false;

    bool lsuDualIssue = true;     ///< dual-issue OoO LSU (§V.A)
    bool pseudoDualStore = true;  ///< st.addr/st.data split (§V.B)
    bool memDepPredict = true;    ///< speculation-failure tagging (§V.A)
    unsigned storeToLoadForwardLat = 1;
    unsigned orderingFlushPenalty = 12; ///< global flush on violation
    /**
     * Full pipeline flush + refetch from mtvec when an instruction
     * raises a synchronous exception. Traps resolve at retire, one
     * stage deeper than an execute-stage branch redirect.
     */
    unsigned trapFlushPenalty = 14;

    /** Vector datapath: result bits per cycle (2 slices x 128b ops). */
    unsigned vecBitsPerCycle = 256; ///< §VII: 256-bit results/cycle
    unsigned vlenBits = 128;        ///< VLEN = SLEN = 128 recommended

    // ------------------------------------------------- predictors etc
    DirectionParams direction{};
    BtbParams btb{};
    LoopBufferParams lbuf{};
    PrefetcherParams prefetch{};
    TlbParams tlb{};
    bool tlbPrefetch = true;      ///< honour prefetcher TLB requests

    TranslationMode translation = TranslationMode::Bare;
    Addr pageTableRoot = 0;       ///< for TranslationMode::Paged
    Asid asid = 0;
    unsigned ptwCacheLatency = 4; ///< per-level PTW overhead cycles
};

/** An in-order dual-issue configuration ("u74-class" comparison core). */
CoreParams u74ClassParams();

/** A 2-wide OoO configuration standing in for Cortex-A73 (§X). */
CoreParams a73ClassParams();

/** A small in-order single-issue MCU-class point (Fig. 17 low end). */
CoreParams mcuClassParams();

} // namespace xt910

#endif // XT910_CORE_PARAMS_H
