#include "core/system.h"

#include <ostream>

#include "common/log.h"

namespace xt910
{

System::System(const SystemConfig &cfg_) : cfg(cfg_)
{
    MemSystemParams mp = cfg.mem;
    mp.numCores = cfg.numCores;
    memSys = std::make_unique<MemSystem>(mp);
    IssOptions io = cfg.iss;
    io.vlenBits = cfg.core.vlenBits ? cfg.core.vlenBits : io.vlenBits;
    issModel = std::make_unique<Iss>(mem, cfg.numCores, io);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        cores.push_back(
            std::make_unique<XtCore>(c, cfg.core, *memSys, mem));
}

void
System::loadProgram(const Program &p)
{
    issModel->loadProgram(p);
}

RunResult
System::run()
{
    RunResult r;
    r.coreCycles.assign(cfg.numCores, 0);
    r.coreInsts.assign(cfg.numCores, 0);

    uint64_t n = 0;
    while (n < cfg.maxInsts && !issModel->allHalted()) {
        // Step the hart whose timing model is furthest behind so the
        // shared memory system sees accesses roughly in time order.
        unsigned pick = 0;
        bool found = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (issModel->halted(c))
                continue;
            if (!found || cores[c]->cycles() < cores[pick]->cycles()) {
                pick = c;
                found = true;
            }
        }
        if (!found)
            break;
        ExecRecord rec = issModel->step(pick);
        cores[pick]->consume(rec);
        ++n;
    }
    if (n >= cfg.maxInsts)
        xt_warn("run hit the instruction limit (", cfg.maxInsts, ")");

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        r.coreCycles[c] = cores[c]->cycles();
        r.coreInsts[c] = cores[c]->retired();
        r.cycles = std::max(r.cycles, r.coreCycles[c]);
        r.insts += r.coreInsts[c];
    }
    return r;
}

void
System::dumpStats(std::ostream &os) const
{
    for (const auto &c : cores)
        c->dumpStats(os);
    memSys->dumpStats(os);
}

} // namespace xt910
