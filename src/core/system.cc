#include "core/system.h"

#include <ostream>
#include <sstream>

#include "common/log.h"
#include "func/csr.h"

namespace xt910
{

System::System(const SystemConfig &cfg_) : cfg(cfg_)
{
    MemSystemParams mp = cfg.mem;
    mp.numCores = cfg.numCores;
    memSys = std::make_unique<MemSystem>(mp);
    IssOptions io = cfg.iss;
    io.vlenBits = cfg.core.vlenBits ? cfg.core.vlenBits : io.vlenBits;
    issModel = std::make_unique<Iss>(mem, cfg.numCores, io);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        cores.push_back(
            std::make_unique<XtCore>(c, cfg.core, *memSys, mem));
        watchdogs.emplace_back(cfg.watchdog);
    }
}

bool
System::interruptible(unsigned hart) const
{
    // Another running hart can store to memory this hart spins on.
    for (unsigned c = 0; c < cfg.numCores; ++c)
        if (c != hart && !issModel->halted(c))
            return true;
    // An enabled machine interrupt can still fire and redirect the
    // spin to a handler.
    const ArchState &s = issModel->hart(hart);
    auto mstatusIt = s.csrs.find(csr::mstatus);
    auto mieIt = s.csrs.find(csr::mie);
    bool mie = mstatusIt != s.csrs.end() && (mstatusIt->second & 0x8);
    bool armed = mieIt != s.csrs.end() &&
                 (mieIt->second & ((1ull << 7) | (1ull << 3)));
    return cfg.iss.enableClint && mie && armed;
}

std::string
System::diagnose(unsigned hart) const
{
    std::ostringstream os;
    os << "hart " << hart << " at pc 0x" << std::hex
       << issModel->hart(hart).pc << std::dec << ", "
       << issModel->hart(hart).instret << " insts retired, cycle "
       << cores[hart]->cycles() << "\nrob: " << cores[hart]->robOccupancy()
       << " in flight, head retires at cycle "
       << cores[hart]->robHeadRetire() << "\n"
       << watchdogs[hart].diagnostic();
    return os.str();
}

void
System::loadProgram(const Program &p)
{
    issModel->loadProgram(p);
}

RunResult
System::run()
{
    RunResult r;
    r.coreCycles.assign(cfg.numCores, 0);
    r.coreInsts.assign(cfg.numCores, 0);

    uint64_t n = 0;
    while (n < cfg.maxInsts && !issModel->allHalted()) {
        // Step the hart whose timing model is furthest behind so the
        // shared memory system sees accesses roughly in time order.
        unsigned pick = 0;
        bool found = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (issModel->halted(c))
                continue;
            if (!found || cores[c]->cycles() < cores[pick]->cycles()) {
                pick = c;
                found = true;
            }
        }
        if (!found)
            break;
        if (stepHook)
            stepHook(n, *this);
        ExecRecord rec = issModel->step(pick);
        cores[pick]->consume(rec);
        ++n;
        watchdogs[pick].observe(rec, interruptible(pick));
        if (watchdogs[pick].fired()) {
            r.stop = StopReason::Watchdog;
            r.diagnostic = diagnose(pick);
            xt_warn("watchdog fired:\n", r.diagnostic);
            break;
        }
        if (cfg.maxCycles && cores[pick]->cycles() >= cfg.maxCycles) {
            r.stop = StopReason::CycleLimit;
            r.diagnostic = diagnose(pick);
            break;
        }
    }
    if (n >= cfg.maxInsts) {
        r.stop = StopReason::InstLimit;
        r.diagnostic = diagnose(0);
        xt_warn("run hit the instruction limit (", cfg.maxInsts, ")");
    }

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        r.coreCycles[c] = cores[c]->cycles();
        r.coreInsts[c] = cores[c]->retired();
        r.cycles = std::max(r.cycles, r.coreCycles[c]);
        r.insts += r.coreInsts[c];
    }
    return r;
}

void
System::dumpStats(std::ostream &os) const
{
    for (const auto &c : cores)
        c->dumpStats(os);
    memSys->dumpStats(os);
}

} // namespace xt910
