#include "core/system.h"

#include <ostream>
#include <sstream>

#include "common/log.h"
#include "func/csr.h"

namespace xt910
{

System::System(const SystemConfig &cfg_) : cfg(cfg_)
{
    MemSystemParams mp = cfg.mem;
    mp.numCores = cfg.numCores;
    memSys = std::make_unique<MemSystem>(mp);
    IssOptions io = cfg.iss;
    io.vlenBits = cfg.core.vlenBits ? cfg.core.vlenBits : io.vlenBits;
    issModel = std::make_unique<Iss>(mem, cfg.numCores, io);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        cores.push_back(
            std::make_unique<XtCore>(c, cfg.core, *memSys, mem));
        watchdogs.emplace_back(cfg.watchdog);
    }

    // Guest-visible performance counters read straight from the timing
    // model. The ISS runs one instruction ahead of the cores, so a CSR
    // read observes the state after every *prior* instruction retired —
    // exactly what real rdcycle/rdinstret would report.
    issModel->cycleSource = [this](unsigned hart) {
        return cores[hart]->cycles();
    };
    issModel->hpmSource = [this](unsigned hart,
                                 uint64_t evt) -> uint64_t {
        switch (evt) {
          case csr::hpmevent::l1dMiss:
            return memSys->l1d(hart).misses.value();
          case csr::hpmevent::branchMispredict:
            return cores[hart]->branchMispredicts.value() +
                   cores[hart]->targetMispredicts.value();
          case csr::hpmevent::itlbMiss:
            return cores[hart]->itlbUnit().misses.value();
          case csr::hpmevent::dtlbMiss:
            return cores[hart]->dtlbUnit().misses.value();
          case csr::hpmevent::l1iMiss:
            return memSys->l1i(hart).misses.value();
          case csr::hpmevent::l2Miss:
            return memSys->l2(memSys->params().clusterOf(hart))
                .misses.value();
          default:
            return 0;
        }
    };
}

bool
System::interruptible(unsigned hart) const
{
    // Another running hart can store to memory this hart spins on.
    for (unsigned c = 0; c < cfg.numCores; ++c)
        if (c != hart && !issModel->halted(c))
            return true;
    // An enabled machine interrupt can still fire and redirect the
    // spin to a handler.
    const ArchState &s = issModel->hart(hart);
    auto mstatusIt = s.csrs.find(csr::mstatus);
    auto mieIt = s.csrs.find(csr::mie);
    bool mie = mstatusIt != s.csrs.end() && (mstatusIt->second & 0x8);
    bool armed = mieIt != s.csrs.end() &&
                 (mieIt->second & ((1ull << 7) | (1ull << 3)));
    return cfg.iss.enableClint && mie && armed;
}

std::string
System::diagnose(unsigned hart) const
{
    std::ostringstream os;
    os << "hart " << hart << " at pc 0x" << std::hex
       << issModel->hart(hart).pc << std::dec << ", "
       << issModel->hart(hart).instret << " insts retired, cycle "
       << cores[hart]->cycles() << "\nrob: " << cores[hart]->robOccupancy()
       << " in flight, head retires at cycle "
       << cores[hart]->robHeadRetire() << "\n"
       << watchdogs[hart].diagnostic();
    return os.str();
}

void
System::loadProgram(const Program &p)
{
    issModel->loadProgram(p);
}

RunResult
System::run()
{
    RunResult r;
    r.coreCycles.assign(cfg.numCores, 0);
    r.coreInsts.assign(cfg.numCores, 0);

    uint64_t n = 0;
    Cycle sampleCycle = 0;
    while (n < cfg.maxInsts && !issModel->allHalted()) {
        // Step the hart whose timing model is furthest behind so the
        // shared memory system sees accesses roughly in time order.
        unsigned pick = 0;
        bool found = false;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (issModel->halted(c))
                continue;
            if (!found || cores[c]->cycles() < cores[pick]->cycles()) {
                pick = c;
                found = true;
            }
        }
        if (!found)
            break;
        if (stepHook)
            stepHook(n, *this);
        ExecRecord rec = issModel->step(pick);
        cores[pick]->consume(rec);
        ++n;
        if (sampler) {
            sampleCycle = std::max(sampleCycle, cores[pick]->cycles());
            sampler->tick(sampleCycle, n);
        }
        watchdogs[pick].observe(rec, interruptible(pick));
        if (watchdogs[pick].fired()) {
            r.stop = StopReason::Watchdog;
            r.diagnostic = diagnose(pick);
            xt_warn("watchdog fired:\n", r.diagnostic);
            break;
        }
        if (cfg.maxCycles && cores[pick]->cycles() >= cfg.maxCycles) {
            r.stop = StopReason::CycleLimit;
            r.diagnostic = diagnose(pick);
            break;
        }
    }
    if (n >= cfg.maxInsts) {
        r.stop = StopReason::InstLimit;
        r.diagnostic = diagnose(0);
        xt_warn("run hit the instruction limit (", cfg.maxInsts, ")");
    }

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        r.coreCycles[c] = cores[c]->cycles();
        r.coreInsts[c] = cores[c]->retired();
        r.cycles = std::max(r.cycles, r.coreCycles[c]);
        r.insts += r.coreInsts[c];
    }
    for (auto &c : cores)
        c->finishRun();
    if (sampler)
        sampler->finish(r.cycles, n);
    return r;
}

void
System::dumpStats(std::ostream &os) const
{
    std::vector<const StatGroup *> groups;
    forEachStatGroup(
        [&](const StatGroup &g) { groups.push_back(&g); });
    dumpStatsSorted(os, std::move(groups));
}

void
System::dumpStatsJson(std::ostream &os, bool pretty) const
{
    std::vector<const StatGroup *> groups;
    forEachStatGroup(
        [&](const StatGroup &g) { groups.push_back(&g); });
    xt910::dumpStatsJson(os, std::move(groups), pretty);
}

void
System::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn) const
{
    for (const auto &c : cores)
        c->forEachStatGroup(fn);
    memSys->forEachStatGroup(fn);
}

void
System::attachSampler(obs::IntervalSampler &s)
{
    sampler = &s;
    forEachStatGroup([&](const StatGroup &g) { s.addGroup(&g); });
}

} // namespace xt910
