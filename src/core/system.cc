#include "core/system.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/log.h"
#include "func/csr.h"

namespace xt910
{

System::System(const SystemConfig &cfg_) : cfg(cfg_)
{
    MemSystemParams mp = cfg.mem;
    mp.numCores = cfg.numCores;
    memSys = std::make_unique<MemSystem>(mp);
    IssOptions io = cfg.iss;
    io.vlenBits = cfg.core.vlenBits ? cfg.core.vlenBits : io.vlenBits;
    issModel = std::make_unique<Iss>(mem, cfg.numCores, io);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        cores.push_back(
            std::make_unique<XtCore>(c, cfg.core, *memSys, mem));
        watchdogs.emplace_back(cfg.watchdog);
    }

    // Guest-visible performance counters read straight from the timing
    // model. The ISS runs one instruction ahead of the cores, so a CSR
    // read observes the state after every *prior* instruction retired —
    // exactly what real rdcycle/rdinstret would report.
    issModel->cycleSource = [this](unsigned hart) {
        return cores[hart]->cycles();
    };
    issModel->hpmSource = [this](unsigned hart,
                                 uint64_t evt) -> uint64_t {
        switch (evt) {
          case csr::hpmevent::l1dMiss:
            return memSys->l1d(hart).misses.value();
          case csr::hpmevent::branchMispredict:
            return cores[hart]->branchMispredicts.value() +
                   cores[hart]->targetMispredicts.value();
          case csr::hpmevent::itlbMiss:
            return cores[hart]->itlbUnit().misses.value();
          case csr::hpmevent::dtlbMiss:
            return cores[hart]->dtlbUnit().misses.value();
          case csr::hpmevent::l1iMiss:
            return memSys->l1i(hart).misses.value();
          case csr::hpmevent::l2Miss:
            return memSys->l2(memSys->params().clusterOf(hart))
                .misses.value();
          default:
            return 0;
        }
    };

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        ArchState &s = issModel->hart(c);
        mstatusSlot.push_back(&s.csrs[csr::mstatus]);
        mieSlot.push_back(&s.csrs[csr::mie]);
    }

    // Mid-span timing-CSR reads (rdcycle/rdtime/hpmcounters) must see
    // the timing model caught up to the reading instruction, exactly
    // as the per-record loop leaves it: drain the span prefix before
    // the CSR value is served. No-op outside a span.
    issModel->timingSync = [this]() {
        if (spanActive)
            drainSpan(issModel->spanProgress());
    };
}

bool
System::drainSpan(unsigned upTo)
{
    Watchdog &wd = watchdogs[spanHart];
    if (wd.fired())
        return true; // post-fire sync calls consume nothing further
    unsigned limit = upTo;
    bool fired = false;
    for (unsigned i = spanConsumed; i < upTo; ++i) {
        // interruptible() collapses to the record's intEnabled bit
        // here: spans only run when this is the sole runnable hart.
        wd.observe(spanBuf[i], spanBuf[i].intEnabled);
        if (wd.fired()) {
            limit = i + 1; // the firing record still consumes
            fired = true;
            break;
        }
    }
    if (limit > spanConsumed) {
        cores[spanHart]->consumeBlock(spanBuf.data() + spanConsumed,
                                      limit - spanConsumed);
        spanConsumed = limit;
    }
    return fired;
}

bool
System::interruptible(unsigned hart) const
{
    // Another running hart can store to memory this hart spins on.
    unsigned others = runningHarts - (issModel->halted(hart) ? 0u : 1u);
    if (others > 0)
        return true;
    // An enabled machine interrupt can still fire and redirect the
    // spin to a handler. This runs after every instruction, so the CSR
    // slots are cached pointers instead of two hash lookups per poll.
    return cfg.iss.enableClint && (*mstatusSlot[hart] & 0x8) &&
           (*mieSlot[hart] & ((1ull << 7) | (1ull << 3)));
}

std::string
System::diagnose(unsigned hart) const
{
    std::ostringstream os;
    os << "hart " << hart << " at pc 0x" << std::hex
       << issModel->hart(hart).pc << std::dec << ", "
       << issModel->hart(hart).instret << " insts retired, cycle "
       << cores[hart]->cycles() << "\nrob: " << cores[hart]->robOccupancy()
       << " in flight, head retires at cycle "
       << cores[hart]->robHeadRetire() << "\n"
       << watchdogs[hart].diagnostic();
    return os.str();
}

void
System::loadProgram(const Program &p)
{
    issModel->loadProgram(p);
}

RunResult
System::run()
{
    RunResult r;
    r.coreCycles.assign(cfg.numCores, 0);
    r.coreInsts.assign(cfg.numCores, 0);
    const auto hostStart = std::chrono::steady_clock::now();

    uint64_t n = 0;
    Cycle sampleCycle = 0;

    // Step the hart whose timing model is furthest behind so the
    // shared memory system sees accesses roughly in time order. Only
    // the stepped hart's cycle count moves, so instead of re-scanning
    // every hart per instruction, keep the running harts in a min-heap
    // keyed (cycles, index) — the index key reproduces the old scan's
    // lowest-index-among-minima tie-break — and skip the heap entirely
    // for the common single-hart case.
    const bool single = cfg.numCores == 1;
    std::vector<std::pair<Cycle, unsigned>> ready;
    for (unsigned c = 0; c < cfg.numCores; ++c)
        if (!issModel->halted(c))
            ready.emplace_back(cores[c]->cycles(), c);
    auto minFirst = [](const std::pair<Cycle, unsigned> &a,
                       const std::pair<Cycle, unsigned> &b) {
        return a > b;
    };
    std::make_heap(ready.begin(), ready.end(), minFirst);
    runningHarts = unsigned(ready.size());

    // Block-batched hand-off (DESIGN.md §3h): when nothing needs a
    // per-instruction interleave — no step hook, no sampler, no cycle
    // limit, fast paths not disabled for A/B, predecode on — the ISS
    // fills whole record spans that consumeBlock replays in one call.
    // Spans also require a sole runnable hart (checked per pick):
    // with several harts running, span-length ISS run-ahead would
    // reorder cross-hart memory interleaving.
    const bool spansEnabled = !cfg.disableBlockConsume &&
                              !disableFastPath && !stepHook &&
                              !sampler && cfg.maxCycles == 0 &&
                              cfg.iss.blockCache;
    if (spansEnabled)
        spanBuf.resize(kSpanInsts);

    while (n < cfg.maxInsts && !ready.empty()) {
        unsigned pick;
        if (single) {
            pick = 0;
        } else {
            std::pop_heap(ready.begin(), ready.end(), minFirst);
            pick = ready.back().second;
            ready.pop_back();
        }

        // Batch dispatch (event skip, DESIGN.md §3f): keep stepping
        // the picked hart for as long as it would be re-picked anyway.
        // (cycle, index) pair order is exactly the heap's pop order —
        // including the lowest-index-among-minima tie-break — so
        // checking the batch-continue condition against the unpopped
        // heap top gives the same schedule with no heap traffic for
        // consecutive instructions of the laggard hart. Watchdogs, the
        // sampler and the cycle/instruction limits are still evaluated
        // per instruction inside the batch.
        bool stopRun = false;
        bool alive = true;

        if (spansEnabled && (single || ready.empty())) {
            // Span dispatch: every per-instruction concern the batch
            // loop below handles is either compiled into the records
            // (intEnabled for the watchdog), handled by drainSpan
            // (observe/consume order, fire truncation), or served by
            // the timingSync hook (mid-span rdcycle). On a watchdog
            // fire the ISS has run ahead of the timing stop point by
            // up to a span; stats only ever include consumed records.
            while (alive && n < cfg.maxInsts) {
                const unsigned want = unsigned(std::min<uint64_t>(
                    kSpanInsts, cfg.maxInsts - n));
                spanHart = pick;
                spanConsumed = 0;
                spanActive = true;
                const unsigned got =
                    issModel->stepBlock(pick, spanBuf.data(), want);
                const bool fired = drainSpan(got);
                spanActive = false;
                n += spanConsumed;
                if (issModel->halted(pick)) {
                    alive = false;
                    --runningHarts;
                    if (single)
                        ready.clear();
                }
                if (fired) {
                    r.stop = StopReason::Watchdog;
                    r.diagnostic = diagnose(pick);
                    xt_warn("watchdog fired:\n", r.diagnostic);
                    stopRun = true;
                    break;
                }
            }
            if (stopRun)
                break;
            if (alive && !single) {
                ready.emplace_back(cores[pick]->cycles(), pick);
                std::push_heap(ready.begin(), ready.end(), minFirst);
            }
            continue;
        }

        for (;;) {
            if (stepHook)
                stepHook(n, *this);
            ExecRecord rec = issModel->step(pick);
            cores[pick]->consume(rec);
            ++n;
            if (issModel->halted(pick)) {
                alive = false;
                --runningHarts;
                if (single)
                    ready.clear();
            }
            if (sampler) {
                sampleCycle =
                    std::max(sampleCycle, cores[pick]->cycles());
                sampler->tick(sampleCycle, n);
            }
            watchdogs[pick].observe(rec, interruptible(pick));
            if (watchdogs[pick].fired()) {
                r.stop = StopReason::Watchdog;
                r.diagnostic = diagnose(pick);
                xt_warn("watchdog fired:\n", r.diagnostic);
                stopRun = true;
                break;
            }
            if (cfg.maxCycles &&
                cores[pick]->cycles() >= cfg.maxCycles) {
                r.stop = StopReason::CycleLimit;
                r.diagnostic = diagnose(pick);
                stopRun = true;
                break;
            }
            if (!alive || n >= cfg.maxInsts)
                break;
            if (single)
                continue; // sole running hart: always re-picked
            if (disableFastPath)
                break;
            if (ready.empty())
                continue; // every other hart halted: always re-picked
            if (!(std::make_pair(cores[pick]->cycles(), pick) <
                  ready.front()))
                break;
        }
        if (stopRun)
            break;
        if (alive && !single) {
            ready.emplace_back(cores[pick]->cycles(), pick);
            std::push_heap(ready.begin(), ready.end(), minFirst);
        }
    }
    if (n >= cfg.maxInsts) {
        r.stop = StopReason::InstLimit;
        if (!cfg.quietInstLimit) {
            r.diagnostic = diagnose(0);
            xt_warn("run hit the instruction limit (", cfg.maxInsts,
                    ")");
        }
    }

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        r.coreCycles[c] = cores[c]->cycles();
        r.coreInsts[c] = cores[c]->retired();
        r.cycles = std::max(r.cycles, r.coreCycles[c]);
        r.insts += r.coreInsts[c];
    }
    for (auto &c : cores)
        c->finishRun();
    if (sampler)
        sampler->finish(r.cycles, n);
    r.hostSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - hostStart)
                        .count();
    return r;
}

Cycle
System::busyHorizon() const
{
    Cycle h = memSys->busyHorizon();
    for (const auto &c : cores)
        h = std::max(h, c->busyHorizon());
    return h;
}

void
System::dumpStats(std::ostream &os) const
{
    std::vector<const StatGroup *> groups;
    forEachStatGroup(
        [&](const StatGroup &g) { groups.push_back(&g); });
    dumpStatsSorted(os, std::move(groups));
}

void
System::dumpStatsJson(std::ostream &os, bool pretty) const
{
    std::vector<const StatGroup *> groups;
    forEachStatGroup(
        [&](const StatGroup &g) { groups.push_back(&g); });
    xt910::dumpStatsJson(os, std::move(groups), pretty);
}

void
System::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn) const
{
    for (const auto &c : cores)
        c->forEachStatGroup(fn);
    memSys->forEachStatGroup(fn);
}

void
System::attachSampler(obs::IntervalSampler &s)
{
    sampler = &s;
    forEachStatGroup([&](const StatGroup &g) { s.addGroup(&g); });
}

} // namespace xt910
