/**
 * @file
 * Fixed-capacity window containers for the core timing model, all
 * carved from one per-core arena allocation (struct-of-arrays layout)
 * sized from CoreParams. These replace the std::deque / std::multiset
 * window structures: every container here is a flat array with a
 * couple of cursors, so the per-retire bookkeeping is branch-light,
 * allocation-free and cache-dense, and each exposes a horizon for the
 * event-skip quiescence contract (DESIGN.md §3f).
 *
 * Capacity discipline: capacities come from Params (ROB/LQ/SQ/IQ
 * entries) and the call sites guarantee occupancy never exceeds them
 * (the rename stage stalls on a full window before inserting), so the
 * containers xt_assert rather than grow.
 */

#ifndef XT910_CORE_SCHED_H
#define XT910_CORE_SCHED_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/snapio.h"
#include "common/types.h"

namespace xt910
{

/**
 * One bump allocation backing every window container of a core.
 * reserve() once with the total word count, then take() spans. All
 * spans are uint64-typed (Cycle/Addr both are 64-bit); a span stays
 * valid for the arena's lifetime (no rehash/realloc ever).
 */
class CoreArena
{
  public:
    void
    reserve(size_t words)
    {
        storage.assign(words, 0);
        off = 0;
    }

    uint64_t *
    take(size_t n)
    {
        xt_assert(off + n <= storage.size(), "core arena overflow");
        uint64_t *p = storage.data() + off;
        off += n;
        return p;
    }

    size_t capacityWords() const { return storage.size(); }

  private:
    std::vector<uint64_t> storage;
    size_t off = 0;
};

/**
 * Fixed-capacity FIFO ring of cycles — the ROB / load-queue /
 * store-queue retire windows. Entries are retire cycles in
 * program (== monotone) order.
 */
class CycleRing
{
  public:
    void
    bind(uint64_t *storage, uint32_t capacity)
    {
        buf = storage;
        cap = capacity;
        head = 0;
        n = 0;
    }

    bool empty() const { return n == 0; }
    uint32_t size() const { return n; }
    uint32_t capacity() const { return cap; }

    Cycle front() const { return buf[head]; }

    Cycle
    back() const
    {
        uint32_t i = head + n - 1;
        return buf[i >= cap ? i - cap : i];
    }

    void
    pushBack(Cycle c)
    {
        xt_assert(n < cap, "CycleRing overflow");
        uint32_t i = head + n;
        buf[i >= cap ? i - cap : i] = c;
        ++n;
    }

    void
    popFront()
    {
        xt_assert(n > 0, "CycleRing underflow");
        ++head;
        if (head == cap)
            head = 0;
        --n;
    }

    void
    clear()
    {
        head = 0;
        n = 0;
    }

    /** Latest retire cycle in the window (0 when empty). */
    Cycle busyHorizon() const { return empty() ? 0 : back(); }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(n);
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t j = head + i;
            w.u64(buf[j >= cap ? j - cap : j]);
        }
    }

    void
    snapLoad(SnapReader &r)
    {
        clear();
        uint64_t count = r.u64();
        xt_assert(count <= cap, "snapshot CycleRing larger than window");
        for (uint64_t i = 0; i < count; ++i)
            pushBack(r.u64());
    }

  private:
    uint64_t *buf = nullptr;
    uint32_t cap = 0;
    uint32_t head = 0;
    uint32_t n = 0;
};

/**
 * Bounded sorted ring of cycles — issue-queue occupancy. Replaces the
 * earlier binary heap (itself a std::multiset replacement): issue
 * cycles arrive *almost* sorted (a younger µop only books an earlier
 * cycle when it finds a port hole), so keeping the live multiset as a
 * sorted circular buffer makes push an append and pop-min a head
 * increment — no sift, no node allocation — with a short memmove-style
 * shift only on the rare out-of-order insert. Identical multiset
 * semantics; the snapshot byte stream (sorted entries) is unchanged
 * from the heap's canonical form.
 */
class SortedCycleRing
{
  public:
    void
    bind(uint64_t *storage, uint32_t capacity)
    {
        a = storage;
        cap = capacity;
        head = 0;
        n = 0;
        maxSeen = 0;
    }

    bool empty() const { return n == 0; }
    uint32_t size() const { return n; }

    Cycle min() const { return a[head]; }

    void
    push(Cycle c)
    {
        xt_assert(n < cap, "SortedCycleRing overflow");
        // Find the insertion point scanning back from the tail; almost
        // always the first probe (append) wins.
        uint32_t i = n;
        while (i > 0 && at(i - 1) > c) {
            at(i) = at(i - 1);
            --i;
        }
        at(i) = c;
        ++n;
        if (c > maxSeen)
            maxSeen = c;
    }

    void
    pop()
    {
        xt_assert(n > 0, "SortedCycleRing underflow");
        head = head + 1 == cap ? 0 : head + 1;
        --n;
    }

    void
    clear()
    {
        head = 0;
        n = 0;
        maxSeen = 0;
    }

    /**
     * Bulk-expire every entry <= @p when in O(1) when possible: the
     * ring is sorted, so the tail entry <= when proves the whole queue
     * would drain through pop()-the-minimum anyway. Exactly equivalent
     * to popping minima <= when — callers still run that loop for the
     * partial case. No-op (the caller's loop takes over) otherwise.
     */
    void
    dropThrough(Cycle when)
    {
        if (n != 0 && at(n - 1) <= when) {
            head = 0;
            n = 0;
        }
    }

    /** Monotone upper bound on the latest issue cycle ever queued —
     *  conservative but O(1) (live entries alone would forget pops). */
    Cycle busyHorizon() const { return maxSeen; }

    void
    snapSave(SnapWriter &w) const
    {
        // The ring is sorted, so emitting in order reproduces the
        // canonical (sorted) byte stream the heap predecessor wrote.
        w.u64(n);
        for (uint32_t i = 0; i < n; ++i)
            w.u64(at(i));
        w.u64(maxSeen);
    }

    void
    snapLoad(SnapReader &r)
    {
        clear();
        uint64_t count = r.u64();
        xt_assert(count <= cap, "snapshot queue larger than capacity");
        for (uint64_t i = 0; i < count; ++i)
            push(r.u64());
        maxSeen = r.u64();
    }

  private:
    /** The @p i-th smallest live entry (ring-indexed from head). */
    uint64_t &
    at(uint32_t i)
    {
        uint32_t j = head + i;
        return a[j >= cap ? j - cap : j];
    }

    uint64_t
    at(uint32_t i) const
    {
        uint32_t j = head + i;
        return a[j >= cap ? j - cap : j];
    }

    uint64_t *a = nullptr;
    uint32_t cap = 0;
    uint32_t head = 0;
    uint32_t n = 0;
    Cycle maxSeen = 0;
};

/**
 * The store queue kept struct-of-arrays: parallel fixed-capacity rings
 * of pc / address / size / address-ready / data-ready / retire. The
 * hot operation is executeLoad()'s youngest-first overlap scan, which
 * walks the addr/size columns only — dense in two cache lines for the
 * paper's 24-entry queue — and touches the other columns just on a hit.
 * Pushing past capacity drops the oldest entry (stores leave the real
 * SQ at drain; the model keeps the `sqEntries` youngest for forwarding
 * checks, as the deque it replaces did).
 */
class StoreQueueSoa
{
  public:
    void
    bind(CoreArena &arena, uint32_t capacity)
    {
        cap = capacity;
        pcCol = arena.take(capacity);
        addrCol = arena.take(capacity);
        sizeCol = arena.take(capacity);
        addrReadyCol = arena.take(capacity);
        dataReadyCol = arena.take(capacity);
        retireCol = arena.take(capacity);
        head = 0;
        n = 0;
    }

    bool empty() const { return n == 0; }
    uint32_t size() const { return n; }

    void
    push(Addr pc, Addr addr, uint32_t bytes, Cycle addrReady,
         Cycle dataReady, Cycle retire)
    {
        if (n == cap) { // oldest store leaves the forwarding window
            ++head;
            if (head == cap)
                head = 0;
            --n;
        }
        uint32_t i = slot(n);
        pcCol[i] = pc;
        addrCol[i] = addr;
        sizeCol[i] = bytes;
        addrReadyCol[i] = addrReady;
        dataReadyCol[i] = dataReady;
        retireCol[i] = retire;
        ++n;
    }

    /** Physical slot of logical index @p k (0 = oldest). */
    uint32_t
    slot(uint32_t k) const
    {
        uint32_t i = head + k;
        return i >= cap ? i - cap : i;
    }

    Addr addrAt(uint32_t i) const { return addrCol[i]; }
    uint32_t sizeAt(uint32_t i) const { return uint32_t(sizeCol[i]); }
    Cycle addrReadyAt(uint32_t i) const { return addrReadyCol[i]; }
    Cycle dataReadyAt(uint32_t i) const { return dataReadyCol[i]; }
    Cycle retireAt(uint32_t i) const { return retireCol[i]; }

    /** Max address-ready over live entries (dep-predictor blocking). */
    Cycle
    maxAddrReady() const
    {
        Cycle m = 0;
        for (uint32_t k = 0; k < n; ++k) {
            Cycle c = addrReadyCol[slot(k)];
            if (c > m)
                m = c;
        }
        return m;
    }

    void
    clear()
    {
        head = 0;
        n = 0;
    }

    Cycle
    busyHorizon() const
    {
        Cycle m = 0;
        for (uint32_t k = 0; k < n; ++k) {
            uint32_t i = slot(k);
            if (retireCol[i] > m)
                m = retireCol[i];
            if (dataReadyCol[i] > m)
                m = dataReadyCol[i];
        }
        return m;
    }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(n);
        for (uint32_t k = 0; k < n; ++k) {
            uint32_t i = slot(k);
            w.u64(pcCol[i]);
            w.u64(addrCol[i]);
            w.u32(uint32_t(sizeCol[i]));
            w.u64(addrReadyCol[i]);
            w.u64(dataReadyCol[i]);
            w.u64(retireCol[i]);
        }
    }

    void
    snapLoad(SnapReader &r)
    {
        clear();
        uint64_t count = r.u64();
        xt_assert(count <= cap, "snapshot store queue larger than window");
        for (uint64_t k = 0; k < count; ++k) {
            Addr pc = r.u64();
            Addr addr = r.u64();
            uint32_t bytes = r.u32();
            Cycle ar = r.u64();
            Cycle dr = r.u64();
            Cycle rt = r.u64();
            push(pc, addr, bytes, ar, dr, rt);
        }
    }

  private:
    uint64_t *pcCol = nullptr;
    uint64_t *addrCol = nullptr;
    uint64_t *sizeCol = nullptr;
    uint64_t *addrReadyCol = nullptr;
    uint64_t *dataReadyCol = nullptr;
    uint64_t *retireCol = nullptr;
    uint32_t cap = 0;
    uint32_t head = 0;
    uint32_t n = 0;
};

} // namespace xt910

#endif // XT910_CORE_SCHED_H
