/**
 * @file
 * The XT-910 out-of-order core timing model.
 *
 * The model consumes the functional simulator's retired-instruction
 * stream (ExecRecord) in program order and computes, per µop, the cycle
 * of every pipeline milestone — fetch group availability, decode,
 * rename, issue, execute and retire — under the machine's width,
 * window, dependency and memory-system constraints. This
 * "scheduled-trace" style is cycle-approximate: it captures widths,
 * structural hazards, dependency chains, branch-prediction and
 * memory-hierarchy behaviour, while wrong-path work is modelled as
 * redirect penalties rather than functionally executed (see DESIGN.md
 * §6 for the fidelity statement).
 *
 * Hot-path layout: all window state (ROB/LQ/SQ/issue queues/store
 * queue) lives in fixed-capacity rings over one struct-of-arrays
 * arena sized from CoreParams (core/sched.h), and the stage/port
 * schedulers jump the clock in O(1) (core/bwlimit.h). Per-block µop
 * plans cache the decode-derived scheduling metadata so the timing
 * front-end charges a predecoded block's µops without re-deriving
 * per-instruction state (DESIGN.md §3f).
 */

#ifndef XT910_CORE_CORE_H
#define XT910_CORE_CORE_H

#include <functional>
#include <unordered_set>
#include <vector>

#include "branch/btb.h"
#include "branch/direction.h"
#include "branch/loopbuffer.h"
#include "core/bwlimit.h"
#include "core/params.h"
#include "core/sched.h"
#include "func/iss.h"
#include "mem/memsystem.h"
#include "mem/prefetcher.h"
#include "mmu/pagetable.h"
#include "mmu/tlb.h"
#include "obs/konata.h"
#include "obs/topdown.h"

namespace xt910
{

/** See file comment. */
class XtCore : public PrefetchSink
{
  public:
    /**
     * @param coreId  index into @p memSys
     * @param ptMem   memory holding page tables (Paged mode); also the
     *                program memory in the usual single-Memory setup
     */
    XtCore(unsigned coreId, const CoreParams &params, MemSystem &memSys,
           const Memory &ptMem);

    /** Advance the model by one architecturally retired instruction. */
    void consume(const ExecRecord &rec);

    /**
     * Advance the model by a span of @p n architecturally retired
     * instructions (the block-batched hand-off from Iss::stepBlock,
     * DESIGN.md §3h). Schedules every record onto exactly the cycles
     * n consume() calls would — records whose cached plan qualifies
     * for the precomputed "simple slot" go through a straight-line
     * fast path, everything else (memory ops, serializers, traps,
     * vector ops) through the full walk. With a Konata tracer or a
     * traceHook attached the span degrades to per-record consume()
     * calls so trace capture points are untouched.
     */
    void consumeBlock(const ExecRecord *recs, unsigned n);

    /**
     * Block-consume accounting (plain counters, deliberately outside
     * the StatGroup so stats JSON stays byte-identical with the span
     * path on or off): instructions taken by the simple-slot fast
     * path. Hit rate = simpleSlotInsts() / retired().
     */
    uint64_t simpleSlotInsts() const { return nSimpleSlot; }

    /** Cycle the most recently consumed instruction retired. */
    Cycle cycles() const { return lastRetire; }

    uint64_t retired() const { return nRetired; }

    double
    ipc() const
    {
        return lastRetire ? double(nRetired) / double(lastRetire) : 0.0;
    }

    /**
     * Model a context switch: new ASID (TLB kept, tagged), loop buffer
     * flushed (§III.C). With @p flushTlb the TLB is fully flushed
     * (narrow-ASID rollover path of §V.E).
     */
    void contextSwitch(Asid newAsid, bool flushTlb);

    /** PrefetchSink: issue a line prefetch (translates first). */
    bool prefetchLine(Addr vaddr, bool toL1, Cycle when) override;
    /** PrefetchSink: warm the DTLB via a background walk. */
    void prefetchTranslation(Addr vaddr, Cycle when) override;

    // Component access for tests/benches.
    DirectionPredictor &direction() { return dirPred; }
    Btb &btbUnit() { return btb; }
    LoopBuffer &loopBuffer() { return lbuf; }
    StreamPrefetcher &prefetcher() { return pf; }
    Tlb &dtlbUnit() { return dtlb; }
    Tlb &itlbUnit() { return itlb; }
    const CoreParams &params() const { return p; }

    void dumpStats(std::ostream &os) const;

    /** Per-µop pipeline milestones, for tracing and tests. */
    struct UopTrace
    {
        Addr pc;
        Cycle fetchAvail, decode, rename, issue, done, retire;
    };

    /** Optional per-µop trace hook (debug/analysis). */
    std::function<void(const UopTrace &)> traceHook;

    /**
     * Konata pipeline tracer; when null (the default) the per-µop
     * tracing path is a single branch on this pointer.
     */
    obs::KonataTracer *tracer = nullptr;

    /**
     * End-of-run bookkeeping: closes the top-down slot accounting for
     * the final cycle. System::run calls this; direct users of
     * consume() should too before reading topdown stats.
     */
    void finishRun();

    /** Visit every StatGroup this core owns (incl. subcomponents). */
    void forEachStatGroup(
        const std::function<void(const StatGroup &)> &fn) const;

    /**
     * Serialize every piece of timing state: predictors, TLBs, RAS,
     * bandwidth/port bookings, register readiness, frontend cursors,
     * window occupancy (ROB/LQ/SQ/issue queues), store queue, the
     * memory-dependence predictor, retire cursors and the top-down
     * accounting — everything consume() reads or writes, so a restored
     * core schedules the next µop onto identical cycles.
     */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter uops;
    Counter branchMispredicts;
    Counter targetMispredicts;
    Counter takenBubbles;       ///< IP/IB redirect bubbles paid
    Counter l0Redirects;        ///< zero-bubble IF-stage jumps
    Counter orderingViolations; ///< LSU speculation failures (§V.A)
    Counter forwardedLoads;     ///< store-to-load forwards
    Counter blockedLoads;       ///< dep-predictor-delayed loads (§V.A)
    Counter serializations;     ///< CSR/fence pipeline drains
    Counter trapFlushes;        ///< synchronous-exception pipeline flushes
    Counter ptwWalks;
    Counter ptwCycles;

    /** Top-down retire-slot accounting (always on; O(1) per µop). */
    obs::TopDown topdown;

    /**
     * Fault injection: force the next branch/jump consumed to resolve
     * as an execute-stage mispredict (models a corrupted prediction
     * structure).
     */
    void injectMispredict() { forcedMispredict = true; }

    // Watchdog diagnostics.
    size_t robOccupancy() const { return rob.size(); }
    Cycle robHeadRetire() const { return rob.empty() ? 0 : rob.front(); }

    /**
     * Event-skip hook (DESIGN.md §3f): the latest cycle any scheduler,
     * window or in-flight µop of this core still owns. At any cycle
     * past the horizon the core is quiescent — consuming the next
     * instruction would schedule it purely from its fetch availability,
     * with every structural resource free.
     */
    Cycle busyHorizon() const;

    /** Quiescence predicate for the event-skip contract. */
    bool quiescentAt(Cycle c) const { return busyHorizon() <= c; }

  private:
    enum Pipe : uint8_t
    {
        Alu0,
        Alu1,   ///< also the multi-cycle/divide pipe (§II)
        Bju,
        LoadP,
        StAddrP,
        StDataP,
        FpVec0,
        FpVec1,
        NumPipes
    };

    /**
     * Decode-derived scheduling metadata of one static instruction,
     * cached per predecoded-block slot (ExecRecord::planIdx) so the
     * timing front-end charges a block's µops from a flat table
     * instead of re-walking the opcode switches every execution.
     */
    struct UopPlan
    {
        uint8_t valid = 0;
        uint8_t cls = 0;       ///< OpClass
        uint8_t pipeA = 0;
        uint8_t pipeB = 0;
        uint8_t iqGroup = 0;   ///< 0 = ALU, 1 = Mem, 2 = FpVec
        uint8_t flags = 0;     ///< kSerializes | kMac | ...
        uint16_t latency = 0;  ///< defaultLatency(op)
        /** Plan-static pipe occupancy (1 for pipelined units, the
         *  full latency for the unpipelined dividers); 0 = dynamic
         *  (vector ops: depends on the record's vl/sew). */
        uint16_t occ = 1;
    };
    enum PlanFlag : uint8_t
    {
        kSerializes = 1 << 0,
        kMac = 1 << 1,
        kWritesReg = 1 << 2,
        kSplitStore = 1 << 3,
        kLoadNotStore = 1 << 4,
        kScalarStore = 1 << 5,
        kBranchOrJump = 1 << 6,
        /** Single-µop scalar non-memory non-serializing op with
         *  plan-static occupancy: eligible for the simple-slot fast
         *  path in consumeBlock (trap-carrying records still take the
         *  slow path). */
        kSimple = 1 << 7,
    };

    /** Fill @p plan from a decoded instruction (slow path, once per
     *  static instruction per block-cache generation). */
    void buildPlan(const DecodedInst &di, UopPlan &plan) const;
    /** Plan lookup for this record; always returns a valid plan (the
     *  scratch plan is used for records without a block slot). */
    const UopPlan &planFor(const ExecRecord &rec);

    /** Full per-record scheduling walk (consume() minus the plan
     *  lookup); the reference path every record may take. */
    void consumeSlow(const ExecRecord &rec, const UopPlan &plan);
    /** Straight-line schedule for kSimple plans: single µop, no
     *  memory, no serialization, static occupancy. Bit-equivalent to
     *  consumeSlow for every record whose plan carries kSimple (the
     *  fast-path gtests pin this). */
    void consumeSimple(const ExecRecord &rec, const UopPlan &plan);

    /** Frontend: cycle the instruction leaves the IBUF toward decode. */
    Cycle frontend(const ExecRecord &rec);
    /** Branch-prediction outcome applied to subsequent fetch. */
    void predictAndTrain(const ExecRecord &rec, Cycle groupStart,
                         Cycle execDone);
    /** Translate; returns PA and charges TLB/PTW time into @p when. */
    Addr translate(Addr va, bool isFetch, Cycle &when);
    /** Candidate execution pipes for a class (second may equal first). */
    std::pair<Pipe, Pipe> pipesFor(OpClass cls) const;
    Cycle readyOf(RegClass cls, RegIndex r) const;
    void setReady(RegClass cls, RegIndex r, Cycle c);
    /** Load execution incl. forwarding / violation logic. */
    Cycle executeLoad(const ExecRecord &rec, Cycle issue);
    Cycle executeVectorMem(const ExecRecord &rec, Cycle issue,
                           bool isStore, Cycle retireHint);

    unsigned coreId;
    CoreParams p;
    MemSystem &mem;
    const Memory &ptMem;

    DirectionPredictor dirPred;
    Btb btb;
    LoopBuffer lbuf;
    StreamPrefetcher pf;
    Tlb itlb;
    Tlb dtlb;
    ReturnAddressStack ras;
    IndirectPredictor indirect;

    StageGate decodeBw;
    StageGate renameBw;
    IssueGate issueBw;
    StageGate retireBw;

    std::array<PortSchedule, NumPipes> ports{};
    std::array<std::array<Cycle, 32>, 3> regReady{}; // [RegClass][reg]
    /**
     * Accumulator-forwarding readiness: a MAC's destination is usable
     * by a *dependent MAC* one cycle after issue (the accumulate adder
     * forwards within the pipe), while general consumers wait the full
     * latency in regReady.
     */
    std::array<std::array<Cycle, 32>, 3> accReady{};

    /** Raise fetchResume for a speculation flush (mispredict, memory
     *  ordering, trap, vl replay), remembering the cause for the
     *  top-down attribution of the resulting fetch delay. */
    void redirect(Cycle until);

    // Konata capture path. Kept out of line (and the buffers out of
    // consume()'s frame) so the tracing-off hot path pays only the
    // branches on the null tracer pointer — the extra live state would
    // otherwise spill registers in the scheduling loop.
    void traceBegin();
    void traceCapture(unsigned u, unsigned nUops, const ExecRecord &rec,
                      Cycle avail, Cycle decodeC, Cycle renameC,
                      Cycle issueC, Cycle done, Cycle retireC);
    void traceEmit(const ExecRecord &rec, unsigned nUops);
    std::array<obs::UopEvent, 2> traceEv;
    uint64_t traceBm = 0, traceTm = 0, traceOv = 0;

    // Frontend state.
    Addr curWindow = ~Addr(0);
    Cycle curWindowReady = 0;
    unsigned curWindowCount = 0;
    Cycle lastGroupStart = 0;
    Cycle fetchResume = 0;
    Addr prevFetchLine = ~Addr(0);
    /** High-water mark of fetchResume raises caused by flushes. */
    Cycle redirectResume = 0;
    /** Set by frontend(): this µop's fetch was held back by a flush. */
    bool fetchRedirectBound = false;

    /** Arena backing every window container below (core/sched.h). */
    CoreArena arena;

    // Window occupancy (retire cycles of in-flight µops).
    CycleRing rob;
    CycleRing lqRetire;
    CycleRing sqRetireQ;

    /** Issue-queue occupancy: issue cycles of dispatched µops per
     *  queue group (Alu / Mem / FpVec). Entries leave when issued. */
    std::array<SortedCycleRing, 3> iqBusy;
    /** Dispatch gating for a µop entering group @p g at @p when. */
    Cycle iqAdmit(unsigned g, Cycle when, unsigned capacity);

    StoreQueueSoa sq;  ///< recent stores for forwarding checks
    std::unordered_set<Addr> taggedLoads; ///< mem-dep predictor

    // Per-block µop-plan table, keyed by ExecRecord::planIdx and
    // invalidated wholesale when the ISS block-cache generation
    // (ExecRecord::planGen) moves.
    std::vector<UopPlan> planTab;
    uint32_t planGenSeen = 0;
    UopPlan scratchPlan; ///< for records without a block slot

    Cycle lastRetire = 0;
    Cycle lastIssue = 0;       ///< for in-order mode
    Cycle serializeUntil = 0;
    Cycle maxDone = 0;         ///< completion fence for serializing ops
    uint64_t nRetired = 0;
    /** Simple-slot fast-path hits (see simpleSlotInsts()). Not a
     *  stats Counter and not serialized: host-path accounting only. */
    uint64_t nSimpleSlot = 0;

    // vsetvl speculation state (§VII).
    unsigned lastVl = 0;
    bool lastVlValid = false;

    bool forcedMispredict = false; ///< armed by injectMispredict()
};

} // namespace xt910

#endif // XT910_CORE_CORE_H
