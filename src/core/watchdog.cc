#include "core/watchdog.h"

#include <sstream>

#include "common/snapio.h"

namespace xt910
{

void
Watchdog::observe(const ExecRecord &rec, bool interruptible)
{
    if (!p.enabled || hasFired)
        return;

    if (ring.size() < p.traceDepth) {
        ring.push_back(rec.pc);
    } else if (!ring.empty()) {
        ring[ringNext] = rec.pc;
        ringNext = (ringNext + 1) % ring.size();
    }

    // Signs of progress: the hart halted, took a trap (the handler may
    // fix the condition), wrote memory, moved its data accesses, or
    // left the code window entirely.
    bool progress = rec.halted || rec.trap.valid;
    if (rec.di.isStore())
        progress = true;
    if (rec.isMemOp()) {
        if (!lastMemValid || rec.memAddr != lastMemAddr)
            progress = true;
        lastMemAddr = rec.memAddr;
        lastMemValid = true;
    }
    if (!anchorValid) {
        anchorValid = true;
        anchorPc = rec.pc;
    } else {
        uint64_t dist = rec.pc > anchorPc ? rec.pc - anchorPc
                                          : anchorPc - rec.pc;
        if (dist > p.pcWindowBytes)
            progress = true;
    }

    if (progress || interruptible) {
        anchorPc = rec.pc;
        spinCount = 0;
        return;
    }

    if (++spinCount >= p.spinWindowInsts)
        hasFired = true;
}

std::vector<Addr>
Watchdog::recentPcs() const
{
    std::vector<Addr> out;
    out.reserve(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(ringNext + i) % ring.size()]);
    return out;
}

std::string
Watchdog::diagnostic() const
{
    std::ostringstream os;
    os << "watchdog: no progress for " << spinCount
       << " retired instructions inside a " << p.pcWindowBytes
       << "-byte window around pc 0x" << std::hex << anchorPc << std::dec
       << "\nlast " << ring.size() << " retired pcs (oldest first):\n";
    for (Addr pc : recentPcs())
        os << "  0x" << std::hex << pc << std::dec << "\n";
    return os.str();
}

void
Watchdog::reset()
{
    anchorValid = false;
    lastMemValid = false;
    spinCount = 0;
    hasFired = false;
    ring.clear();
    ringNext = 0;
}

void
Watchdog::snapSave(SnapWriter &w) const
{
    w.u64(anchorPc);
    w.b(anchorValid);
    w.u64(lastMemAddr);
    w.b(lastMemValid);
    w.u64(spinCount);
    w.b(hasFired);
    w.u64(ring.size());
    for (Addr a : ring)
        w.u64(a);
    w.u64(ringNext);
}

void
Watchdog::snapLoad(SnapReader &r)
{
    anchorPc = r.u64();
    anchorValid = r.b();
    lastMemAddr = r.u64();
    lastMemValid = r.b();
    spinCount = r.u64();
    hasFired = r.b();
    ring.resize(r.u64());
    for (Addr &a : ring)
        a = r.u64();
    ringNext = r.u64();
    if (ringNext > ring.size())
        throw SnapError("corrupt snapshot: bad watchdog ring cursor");
}

} // namespace xt910
