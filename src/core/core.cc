#include "core/core.h"

#include <algorithm>
#include <ostream>

#include <array>

#include "check/invariants.h"
#include "common/bitutil.h"
#include "common/log.h"
#include "common/profile.h"
#include "common/snapio.h"
#include "isa/disasm.h"

namespace xt910
{

namespace
{

/** Multiply-accumulate ops whose destination is also a source. */
bool
isMacOp(Opcode op)
{
    switch (op) {
      case Opcode::XT_MULA:
      case Opcode::XT_MULS:
      case Opcode::XT_MULAH:
      case Opcode::XT_MULSH:
      case Opcode::VMACC_VV:
      case Opcode::VMACC_VX:
      case Opcode::VMADD_VV:
      case Opcode::VWMACC_VV:
      case Opcode::VFMACC_VV:
      case Opcode::VFMACC_VF:
        return true;
      default:
        return false;
    }
}

/**
 * Classes whose execute stage is consume()'s plain `issue + latency`
 * default arm — no memory system, no vector-length dependence. These
 * are the simple-slot candidates (core.h PlanFlag::kSimple).
 */
bool
simpleClass(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpCvt:
        return true;
      default:
        return false;
    }
}

/** Opcodes with post-retire microarchitectural side effects (the
 *  cache/TLB maintenance switch at the tail of consumeSlow). */
bool
isCacheTlbOp(Opcode op)
{
    switch (op) {
      case Opcode::XT_DCACHE_CALL:
      case Opcode::XT_DCACHE_CIALL:
      case Opcode::XT_ICACHE_IALL:
      case Opcode::XT_TLB_IALL:
      case Opcode::XT_TLB_IASID:
      case Opcode::XT_TLB_BCAST:
      case Opcode::SFENCE_VMA:
        return true;
      default:
        return false;
    }
}

} // namespace

XtCore::XtCore(unsigned coreId_, const CoreParams &params, MemSystem &ms,
               const Memory &ptMem_)
    : stats("core" + std::to_string(coreId_)),
      uops(stats, "uops", "micro-operations processed"),
      branchMispredicts(stats, "branch_mispredicts",
                        "execute-stage branch redirects"),
      targetMispredicts(stats, "target_mispredicts",
                        "BTB/indirect/RAS target corrections"),
      takenBubbles(stats, "taken_bubbles",
                   "IP/IB-stage redirect bubbles paid"),
      l0Redirects(stats, "l0_redirects", "zero-bubble IF-stage jumps"),
      orderingViolations(stats, "ordering_violations",
                         "LSU speculation failures (global flush)"),
      forwardedLoads(stats, "forwarded_loads", "store-to-load forwards"),
      blockedLoads(stats, "blocked_loads",
                   "loads delayed by the dependence predictor"),
      serializations(stats, "serializations", "pipeline drains"),
      trapFlushes(stats, "trap_flushes",
                  "synchronous-exception pipeline flushes"),
      ptwWalks(stats, "ptw_walks", "page-table walks"),
      ptwCycles(stats, "ptw_cycles", "cycles spent walking"),
      topdown("core" + std::to_string(coreId_) + ".topdown",
              params.retireWidth),
      coreId(coreId_),
      p(params),
      mem(ms),
      ptMem(ptMem_),
      dirPred(params.direction, "core" + std::to_string(coreId_) + ".bp"),
      btb(params.btb, "core" + std::to_string(coreId_) + ".btb"),
      lbuf(params.lbuf, "core" + std::to_string(coreId_) + ".lbuf"),
      pf(params.prefetch, "core" + std::to_string(coreId_) + ".pf"),
      itlb(params.tlb, "core" + std::to_string(coreId_) + ".itlb"),
      dtlb(params.tlb, "core" + std::to_string(coreId_) + ".dtlb"),
      decodeBw(params.decodeWidth),
      renameBw(params.renameWidth),
      issueBw(params.issueWidth),
      retireBw(params.retireWidth)
{
    if (p.translation == TranslationMode::Paged)
        xt_assert(p.pageTableRoot != 0,
                  "Paged translation requires a page-table root");

    // One arena holds every window container (struct-of-arrays; see
    // core/sched.h): three retire rings, three issue-queue heaps and
    // the six store-queue columns, all sized from Params.
    xt_assert(p.robEntries > 0 && p.lqEntries > 0 && p.sqEntries > 0 &&
                  p.iqAluEntries > 0 && p.iqMemEntries > 0 &&
                  p.iqFpEntries > 0,
              "window sizes must be non-zero");
    const size_t words = size_t(p.robEntries) + p.lqEntries +
                         p.sqEntries + p.iqAluEntries + p.iqMemEntries +
                         p.iqFpEntries + 6 * size_t(p.sqEntries);
    arena.reserve(words);
    rob.bind(arena.take(p.robEntries), p.robEntries);
    lqRetire.bind(arena.take(p.lqEntries), p.lqEntries);
    sqRetireQ.bind(arena.take(p.sqEntries), p.sqEntries);
    iqBusy[0].bind(arena.take(p.iqAluEntries), p.iqAluEntries);
    iqBusy[1].bind(arena.take(p.iqMemEntries), p.iqMemEntries);
    iqBusy[2].bind(arena.take(p.iqFpEntries), p.iqFpEntries);
    sq.bind(arena, p.sqEntries);
}

void
XtCore::contextSwitch(Asid newAsid, bool flushTlb)
{
    p.asid = newAsid;
    lbuf.flush();
    if (flushTlb) {
        itlb.flushAll();
        dtlb.flushAll();
    }
}

std::pair<XtCore::Pipe, XtCore::Pipe>
XtCore::pipesFor(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
        return {Alu0, Alu1};
      case OpClass::IntDiv:
        // Divide shares the multi-cycle ALU pipe (§II).
        return {Alu1, Alu1};
      case OpClass::Branch:
      case OpClass::Jump:
        return {Bju, Bju};
      case OpClass::Load:
      case OpClass::FpLoad:
      case OpClass::VecLoad:
      case OpClass::Amo:
        return {LoadP, LoadP};
      case OpClass::Store:
      case OpClass::FpStore:
      case OpClass::VecStore:
        return {p.lsuDualIssue ? StAddrP : LoadP,
                p.lsuDualIssue ? StAddrP : LoadP};
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpCvt:
      case OpClass::VecAlu:
      case OpClass::VecMul:
      case OpClass::VecDiv:
        return {FpVec0, FpVec1};
      default:
        return {Alu0, Alu1};
    }
}

void
XtCore::buildPlan(const DecodedInst &di, UopPlan &plan) const
{
    const OpClass cls = di.cls();
    auto [pipeA, pipeB] = pipesFor(cls);
    plan.valid = 1;
    plan.cls = uint8_t(cls);
    plan.pipeA = uint8_t(pipeA);
    plan.pipeB = uint8_t(pipeB);
    plan.iqGroup = pipeA <= Bju ? 0u : pipeA <= StDataP ? 1u : 2u;
    plan.latency = uint16_t(defaultLatency(di.op));
    uint8_t f = 0;
    if (cls == OpClass::Csr || cls == OpClass::System ||
        cls == OpClass::Fence || cls == OpClass::CacheOp)
        f |= kSerializes;
    if (isMacOp(di.op))
        f |= kMac;
    if (di.writesReg())
        f |= kWritesReg;
    const bool scalarStore =
        cls == OpClass::Store || cls == OpClass::FpStore;
    if (scalarStore) {
        f |= kScalarStore;
        if (p.pseudoDualStore)
            f |= kSplitStore;
    }
    if (di.isLoad() && !di.isStore())
        f |= kLoadNotStore;
    if (di.isBranch() || di.isJump())
        f |= kBranchOrJump;

    // Plan-static occupancy, mirroring consumeSlow's occupancy switch:
    // 0 marks the vector classes whose occupancy depends on the
    // record's vl/sew and must stay dynamic.
    if (cls == OpClass::IntDiv || cls == OpClass::FpDiv ||
        cls == OpClass::VecDiv)
        plan.occ = plan.latency;
    else if (cls == OpClass::VecAlu || cls == OpClass::VecMul ||
             cls == OpClass::VecLoad || cls == OpClass::VecStore)
        plan.occ = 0;
    else
        plan.occ = 1;

    if (simpleClass(cls) &&
        !(f & (kSerializes | kScalarStore | kSplitStore)) &&
        !di.isLoad() && !di.isStore() && !isCacheTlbOp(di.op))
        f |= kSimple;
    plan.flags = f;
}

const XtCore::UopPlan &
XtCore::planFor(const ExecRecord &rec)
{
    if (rec.planIdx == ExecRecord::noPlan) {
        // Legacy per-instruction path (block cache off, or trap/fault
        // records): derive the plan on the fly.
        buildPlan(rec.di, scratchPlan);
        return scratchPlan;
    }
    if (rec.planGen != planGenSeen) {
        // The ISS flushed its predecoded blocks: every slot index was
        // reassigned, so the whole table is stale.
        planTab.clear();
        planGenSeen = rec.planGen;
    }
    if (rec.planIdx >= planTab.size())
        planTab.resize(rec.planIdx + 1);
    UopPlan &plan = planTab[rec.planIdx];
    if (!plan.valid)
        buildPlan(rec.di, plan);
    return plan;
}

Cycle
XtCore::readyOf(RegClass cls, RegIndex r) const
{
    if (cls == RegClass::None || r == invalidReg)
        return 0;
    if (cls == RegClass::Int && r == 0)
        return 0;
    return regReady[unsigned(cls)][r & 31];
}

void
XtCore::setReady(RegClass cls, RegIndex r, Cycle c)
{
    if (cls == RegClass::None || r == invalidReg)
        return;
    if (cls == RegClass::Int && r == 0)
        return;
    regReady[unsigned(cls)][r & 31] = c;
}

Cycle
XtCore::iqAdmit(unsigned g, Cycle when, unsigned capacity)
{
    SortedCycleRing &q = iqBusy[g];
    // Entries that issued before `when` have left the queue. In the
    // steady state the whole queue expires at once; dropThrough proves
    // that from its live-max bound and clears in O(1), leaving the pop
    // loop for the partially-expired case.
    q.dropThrough(when);
    while (!q.empty() && q.min() <= when)
        q.pop();
    // Queue full: dispatch waits for the earliest occupant to issue.
    while (q.size() >= capacity) {
        when = q.min() + 1;
        q.pop();
    }
    return when;
}

Addr
XtCore::translate(Addr va, bool isFetch, Cycle &when)
{
    if (p.translation == TranslationMode::Bare)
        return va;
    Tlb &tlb = isFetch ? itlb : dtlb;
    if (auto hit = tlb.lookup(va, p.asid, when)) {
        if (!hit->microHit && hit->jtlbProbes > 1)
            when += hit->jtlbProbes - 1; // serial page-size probes
        return hit->pa;
    }
    // Hardware page-table walk, charged as sequential memory reads.
    ++ptwWalks;
    Cycle start = when;
    WalkResult w = walkSv39(ptMem, p.pageTableRoot, va);
    if (!w.ok)
        xt_fatal("page fault at va 0x", std::hex, va);
    for (unsigned i = 0; i < w.levels; ++i) {
        MemResult r = mem.read(coreId, w.pteAddr[i], when);
        when = r.done + p.ptwCacheLatency;
    }
    tlb.insert(va, w.pa & ~mask(pageShift(w.size)), w.size, p.asid);
    ptwCycles += when - start;
    return w.pa;
}

bool
XtCore::prefetchLine(Addr vaddr, bool toL1, Cycle when)
{
    Addr pa = vaddr;
    if (p.translation == TranslationMode::Paged) {
        auto hit = dtlb.lookup(vaddr, p.asid, when);
        if (!hit)
            return false; // cannot translate; stream stalls (§V.C)
        pa = hit->pa;
    }
    mem.prefetchFill(coreId, pa, toL1, when);
    return true;
}

void
XtCore::prefetchTranslation(Addr vaddr, Cycle when)
{
    if (p.translation != TranslationMode::Paged || !p.tlbPrefetch)
        return;
    if (dtlb.lookup(vaddr, p.asid, when))
        return;
    WalkResult w = walkSv39(ptMem, p.pageTableRoot, vaddr);
    if (!w.ok)
        return;
    ++ptwWalks;
    // Background walk: charges DRAM/L2 bandwidth but stalls nothing.
    Cycle t = when;
    for (unsigned i = 0; i < w.levels; ++i)
        t = mem.read(coreId, w.pteAddr[i], t).done;
    dtlb.insert(vaddr, w.pa & ~mask(pageShift(w.size)), w.size, p.asid);
}

void
XtCore::redirect(Cycle until)
{
    fetchResume = std::max(fetchResume, until);
    redirectResume = std::max(redirectResume, until);
}

Cycle
XtCore::frontend(const ExecRecord &rec)
{
    Addr pc = rec.pc;
    if (lbuf.active(pc)) {
        // Streaming from the loop buffer: no I-cache access, no taken-
        // branch bubble; availability simply tracks the previous group.
        ++lbuf.servedInsts;
    } else {
        Addr window = pc & ~Addr(p.fetchBytes - 1);
        if (window != curWindow || curWindowCount >= p.fetchMaxInsts) {
            Cycle start = std::max(lastGroupStart + 1, fetchResume);
            Cycle t = start;
            Addr pa = translate(pc, true, t);
            MemResult mr = mem.fetch(coreId, pa, t);
            curWindowReady = mr.done + (p.frontendStages - 1);
            curWindow = window;
            curWindowCount = 0;
            lastGroupStart = start;
            // IFU run-ahead: sequential next-line prefetch keeps the
            // IBUF supplied across I-cache misses (§III).
            if (lineAlign(window) != lineAlign(prevFetchLine)) {
                Cycle pt = start;
                Addr seq = lineAlign(pa) + cacheLineBytes;
                mem.prefetchInstLine(coreId, seq, pt);
                mem.prefetchInstLine(coreId, seq + cacheLineBytes, pt);
            }
            prevFetchLine = window;
        }
        ++curWindowCount;
    }
    // For top-down accounting: is this µop's supply gated by a
    // speculation flush (rather than benign fetch latency)?
    fetchRedirectBound = redirectResume != 0 &&
                         fetchResume >= curWindowReady &&
                         fetchResume <= redirectResume;
    return std::max(curWindowReady, fetchResume);
}

void
XtCore::predictAndTrain(const ExecRecord &rec, Cycle groupStart,
                        Cycle execDone)
{
    const DecodedInst &di = rec.di;
    const Addr pc = rec.pc;
    const bool taken = rec.taken;
    const Addr target = rec.nextPc;

    bool dirMispredict = false;
    if (di.isBranch()) {
        dirMispredict = dirPred.update(pc, taken);
        // Without BUF1/BUF2 a branch served right after another pays a
        // one-cycle SRAM re-read bubble (§III.A).
        static_assert(true);
    }
    if (forcedMispredict) {
        // Injected fault: the prediction structures produced garbage
        // for this branch; it resolves as an execute-stage redirect.
        forcedMispredict = false;
        dirMispredict = true;
    }

    const bool loopBranch =
        lbuf.capturing() && pc == lbuf.loopBranch();

    if (!taken) {
        if (dirMispredict) {
            ++branchMispredicts;
            redirect(execDone + p.execRedirectPenalty);
            lbuf.exitLoop();
        } else if (loopBranch) {
            lbuf.exitLoop(); // predicted fall-through ends streaming
        }
        return;
    }

    // ---- taken path ----
    if (di.isCall())
        ras.push(pc + di.len);

    if (dirMispredict) {
        ++branchMispredicts;
        redirect(execDone + p.execRedirectPenalty);
        btb.update(pc, target, BranchKind::Conditional, true);
        if (di.isBranch() && target < pc)
            lbuf.observeBackwardBranch(pc, target,
                                       unsigned((pc - target) / 4 + 1));
        return;
    }

    if (loopBranch && lbuf.active(target)) {
        // Loop-buffer iteration: last and first instruction can even
        // issue together (§III.C) — zero bubble.
        ++lbuf.icacheAccessSaved;
        return;
    }

    unsigned bubbles = 0;
    bool execRedirect = false;

    if (di.isReturn()) {
        Addr pred = ras.pop();
        if (pred != target) {
            execRedirect = true;
            ++targetMispredicts;
        }
        // Correct RAS prediction redirects at IF: no bubble.
    } else if (di.isIndirect()) {
        Addr pred = indirect.predict(pc);
        if (pred == target) {
            bubbles = p.ibRedirectBubbles; // resolved at IB
        } else {
            execRedirect = true;
            ++targetMispredicts;
        }
        indirect.update(pc, target);
    } else {
        // Direct branch/jump: cascaded BTB (§III.B).
        auto l0 = btb.lookupL0(pc, groupStart);
        if (l0 && l0->target == target) {
            ++l0Redirects; // IF-stage jump: bubble eliminated
        } else if (l0) {
            // L0 hit with stale target: corrected right away at IP.
            ++targetMispredicts;
            bubbles = p.ipRedirectBubbles;
        } else {
            auto l1 = btb.lookupL1(pc, groupStart);
            if (l1 && l1->target != target)
                ++targetMispredicts; // corrected at IB (§III.B)
            bubbles = (l1 && l1->target != target)
                          ? p.ibRedirectBubbles
                          : p.ipRedirectBubbles;
        }
    }

    // Back-to-back conditional branches without the two-level buffer
    // pay one extra cycle (§III.A).
    if (di.isBranch() && dirPred.backToBackPenalty() > 0)
        bubbles += dirPred.backToBackPenalty();

    if (execRedirect) {
        redirect(execDone + p.execRedirectPenalty);
    } else if (bubbles > 0) {
        takenBubbles += bubbles;
        fetchResume = std::max(fetchResume, lastGroupStart + 1 + bubbles);
    } else {
        fetchResume = std::max(fetchResume, lastGroupStart + 1);
    }

    BranchKind kind = di.isReturn()     ? BranchKind::Return
                      : di.isIndirect() ? BranchKind::Indirect
                      : di.isCall()     ? BranchKind::Call
                      : di.isBranch()   ? BranchKind::Conditional
                                        : BranchKind::Direct;
    btb.update(pc, target, kind, /*promoteL0=*/bubbles > 0);

    if (di.isBranch() && target < pc)
        lbuf.observeBackwardBranch(pc, target,
                                   unsigned((pc - target) / 4 + 1));
}

Cycle
XtCore::executeLoad(const ExecRecord &rec, Cycle issue)
{
    Cycle ag = issue + 1; // address generation (AG stage, §V.A)
    Addr pa = translate(rec.memAddr, false, ag);

    // Memory-dependence predictor: tagged loads wait for all older
    // store addresses (§V.A "execution is blocked").
    // The empty() guard spares the hash on the (overwhelmingly common)
    // no-violations-yet case — count() on an empty set still hashes.
    const bool tagged = p.memDepPredict && !taggedLoads.empty() &&
                        taggedLoads.count(rec.pc);
    if (tagged) {
        Cycle wait = sq.maxAddrReady();
        if (wait > ag) {
            ++blockedLoads;
            ag = wait;
        }
    }

    // Store queue search, youngest first: the address/size columns are
    // scanned contiguously; the other columns load only on a hit.
    const Addr lo = rec.memAddr;
    const Addr hi = rec.memAddr + rec.memSize;
    for (uint32_t k = sq.size(); k-- > 0;) {
        const uint32_t i = sq.slot(k);
        const Addr sAddr = sq.addrAt(i);
        const uint32_t sSize = sq.sizeAt(i);
        bool overlap = lo < sAddr + sSize && sAddr < hi;
        if (!overlap)
            continue;
        bool contains = sAddr <= lo && hi <= sAddr + sSize;
        const Cycle sAddrReady = sq.addrReadyAt(i);
        if (sAddrReady > ag && !tagged) {
            // The load executed before the older store's address was
            // known: ordering violation -> global flush (§V.A).
            ++orderingViolations;
            if (p.memDepPredict)
                taggedLoads.insert(rec.pc);
            Cycle redo = std::max(sq.dataReadyAt(i), sAddrReady) +
                         p.orderingFlushPenalty;
            redirect(redo);
            return redo + p.storeToLoadForwardLat;
        }
        if (contains) {
            ++forwardedLoads;
            return std::max(ag, sq.dataReadyAt(i)) +
                   p.storeToLoadForwardLat;
        }
        // Partial overlap: wait until the store drains to the cache.
        Cycle drained = std::max(sq.retireAt(i), ag);
        MemResult r = mem.read(coreId, pa, drained);
        pf.observe(rec.memAddr, !r.l1Hit, drained, *this);
        return r.done;
    }

    MemResult r = mem.read(coreId, pa, ag);
    pf.observe(rec.memAddr, !r.l1Hit, ag, *this);
    return r.done;
}

Cycle
XtCore::executeVectorMem(const ExecRecord &rec, Cycle issue, bool isStore,
                         Cycle retireHint)
{
    // Vector load/store: 128 bits per cycle of load/store bandwidth
    // (§VII); unique lines touched go through the cache port.
    const unsigned elemBytes = rec.sew / 8;
    Cycle ag = issue + 1;
    Cycle done = ag;
    Addr prevLine = ~Addr(0);
    unsigned beats = 0;
    for (unsigned i = 0; i < rec.vl && i < 256; ++i) {
        Addr va = rec.memAddr + Addr(int64_t(i) * rec.memStride);
        Addr line = lineAlign(va);
        if (line == prevLine)
            continue;
        prevLine = line;
        Cycle t = ag + beats * (Cycle(elemBytes) * 8 / 128 + 1) / 2;
        Addr pa = translate(va, false, t);
        if (isStore) {
            mem.write(coreId, pa, std::max(t, retireHint));
            pf.observe(va, false, t, *this);
        } else {
            MemResult r = mem.read(coreId, pa, t);
            pf.observe(va, !r.l1Hit, t, *this);
            done = std::max(done, r.done);
        }
        ++beats;
    }
    unsigned occupancy =
        std::max(1u, (rec.vl * rec.sew + 127) / 128); // 128b/cycle
    done = std::max(done, ag + occupancy);
    return done;
}

void
XtCore::consume(const ExecRecord &rec)
{
    consumeSlow(rec, planFor(rec));
}

void
XtCore::consumeBlock(const ExecRecord *recs, unsigned n)
{
    XT_PROF_SCOPE(BlockConsume);
    if (tracer || traceHook) {
        // Trace consumers observe per-record capture points; run the
        // span through the reference path untouched.
        for (unsigned i = 0; i < n; ++i)
            consume(recs[i]);
        return;
    }
    for (unsigned i = 0; i < n; ++i) {
        const ExecRecord &rec = recs[i];
        const UopPlan &plan = planFor(rec);
        if ((plan.flags & kSimple) && !rec.trap.valid) {
            XT_PROF_SCOPE(SimpleSlot);
            consumeSimple(rec, plan);
            ++nSimpleSlot;
        } else {
            XT_PROF_SCOPE(SlowSlot);
            consumeSlow(rec, plan);
        }
    }
}

/**
 * The simple-slot schedule: a kSimple plan guarantees one µop, no
 * memory access, no serialization, no split store, no cache/TLB side
 * effects, plan-static pipe occupancy and the plain `issue + latency`
 * execute arm; the caller guarantees no trap and no trace consumers.
 * Under those facts this is consumeSlow with every dead branch
 * removed — each scheduling step below must stay in lockstep with its
 * slow-path counterpart (tests/core/test_sched.cc pins equivalence).
 */
void
XtCore::consumeSimple(const ExecRecord &rec, const UopPlan &plan)
{
    const DecodedInst &di = rec.di;
    const uint8_t pf_ = plan.flags;

    // Frontend + decode gate.
    const Cycle groupStart = lastGroupStart;
    const Cycle avail = frontend(rec);
    const Cycle decodeC = decodeBw.schedule(avail);

    ++uops;

    // Rename: ROB capacity + width (no LQ/SQ claims for these ops).
    Cycle renameC = decodeC + 1;
    if (rob.size() >= p.robEntries) {
        renameC = std::max(renameC, rob.front());
        rob.popFront();
    }
    renameC = renameBw.schedule(renameC);

    // Source readiness (incl. the MAC accumulator-forward path).
    Cycle srcReady = std::max({readyOf(di.rs1Class, di.rs1),
                               readyOf(di.rs2Class, di.rs2),
                               readyOf(di.rs3Class, di.rs3)});
    if (pf_ & kMac) {
        Cycle acc =
            di.rdClass == RegClass::None || di.rd == invalidReg
                ? 0
                : accReady[unsigned(di.rdClass)][di.rd & 31];
        srcReady = std::max(srcReady, acc);
    }

    // Issue: queue admission, port probe/book, issue width.
    Cycle issueMin = std::max({renameC + 1, srcReady, serializeUntil});
    if (p.inOrder)
        issueMin = std::max(issueMin, lastIssue);
    const unsigned iqGroup = plan.iqGroup;
    const unsigned iqCap = iqGroup == 0   ? p.iqAluEntries
                           : iqGroup == 1 ? p.iqMemEntries
                                          : p.iqFpEntries;
    issueMin = std::max(issueMin, iqAdmit(iqGroup, renameC + 1, iqCap));

    const Pipe pipeA = Pipe(plan.pipeA);
    const Pipe pipeB = Pipe(plan.pipeB);
    const unsigned occupancy = plan.occ;
    Cycle ta = ports[pipeA].probe(issueMin, occupancy);
    // probe() returns >= issueMin and ties pick pipeA, so a first-try
    // hit makes the second probe unreachable.
    Cycle tb = pipeB != pipeA && ta != issueMin
                   ? ports[pipeB].probe(issueMin, occupancy)
                   : ta;
    Pipe pipe = ta <= tb ? pipeA : pipeB;
    Cycle slot = std::min(ta, tb);
    Cycle issueC = issueBw.schedule(slot);
    if (issueC != slot)
        issueC = ports[pipe].probe(issueC, occupancy);
    ports[pipe].book(issueC, occupancy);
    lastIssue = issueC;
    iqBusy[iqGroup].push(issueC);

    // Execute: the default arm only.
    const Cycle done = issueC + plan.latency;

    // Writeback / retirement.
    if (pf_ & kWritesReg) {
        setReady(di.rdClass, di.rd, done);
        accReady[unsigned(di.rdClass)][di.rd & 31] =
            (pf_ & kMac) ? issueC + 1 : done;
    }
    const Cycle retireC =
        retireBw.schedule(std::max(done + p.retireStages, lastRetire));
    lastRetire = retireC;
    XT_INVARIANT(rob.empty() || rob.back() <= retireC,
                 "ROB retire out of order at pc ", std::hex, rec.pc,
                 ": ", std::dec, rob.back(), " > ", retireC);
    rob.pushBack(retireC);
    topdown.onRetire(retireC, done + p.retireStages >= retireC,
                     /*memBound=*/false, fetchRedirectBound);
    maxDone = std::max(maxDone, done);

    if (pf_ & kBranchOrJump)
        predictAndTrain(rec, groupStart, done);

    ++nRetired;
}

void
XtCore::consumeSlow(const ExecRecord &rec, const UopPlan &plan)
{
    const DecodedInst &di = rec.di;
    const OpClass cls = OpClass(plan.cls);
    const uint8_t pf_ = plan.flags;

    // Konata tracing: when off, the hot path pays one (predictable)
    // branch on the null tracer pointer per capture point. Flush
    // causes are inferred from counter deltas across this consume
    // call; see traceEmit().
    if (tracer)
        traceBegin();

    // ------------------------------------------------------ frontend
    Cycle groupStart = lastGroupStart;
    Cycle avail, decodeC;
    {
        XT_PROF_SCOPE(Frontend);
        avail = frontend(rec);
        decodeC = decodeBw.schedule(avail);
    }

    // ------------------------------------------------ µop formation
    const bool isScalarStore = (pf_ & kScalarStore) != 0;
    const bool splitStore = (pf_ & kSplitStore) != 0;
    const unsigned nUops = splitStore ? 2 : 1;

    Cycle instDone = 0;
    Cycle stAddrReady = 0, stDataReady = 0;

    for (unsigned u = 0; u < nUops; ++u) {
        ++uops;
        const bool isStAddr = splitStore && u == 0;
        const bool isStData = splitStore && u == 1;

        // Rename: window capacity + width.
        Cycle renameC;
        {
            XT_PROF_SCOPE(Rename);
            renameC = decodeC + 1;
            if (rob.size() >= p.robEntries) {
                renameC = std::max(renameC, rob.front());
                rob.popFront();
            }
            if (rec.isMemOp() && (pf_ & kLoadNotStore)) {
                if (lqRetire.size() >= p.lqEntries) {
                    renameC = std::max(renameC, lqRetire.front());
                    lqRetire.popFront();
                }
            }
            if (isScalarStore && u == 0) {
                if (sqRetireQ.size() >= p.sqEntries) {
                    renameC = std::max(renameC, sqRetireQ.front());
                    sqRetireQ.popFront();
                }
            }
            renameC = renameBw.schedule(renameC);
        }

        // Source readiness.
        Cycle srcReady = 0;
        if (isStAddr) {
            srcReady = readyOf(di.rs1Class, di.rs1);
            if (isCustom(di.op)) // indexed store: rs2 is the index
                srcReady = std::max(srcReady,
                                    readyOf(di.rs2Class, di.rs2));
        } else if (isStData) {
            RegIndex dataReg = isCustom(di.op) ? di.rs3 : di.rs2;
            RegClass dataCls =
                isCustom(di.op) ? di.rs3Class : di.rs2Class;
            srcReady = readyOf(dataCls, dataReg);
        } else {
            srcReady = std::max({readyOf(di.rs1Class, di.rs1),
                                 readyOf(di.rs2Class, di.rs2),
                                 readyOf(di.rs3Class, di.rs3)});
            // MAC-style ops also read their destination; a chain of
            // dependent MACs forwards inside the accumulate stage, so
            // the rd source uses the accumulator-ready time.
            if (pf_ & kMac) {
                Cycle acc = di.rdClass == RegClass::None ||
                                    di.rd == invalidReg
                                ? 0
                                : accReady[unsigned(di.rdClass)]
                                          [di.rd & 31];
                srcReady = std::max(srcReady, acc);
            }
        }

        // Serializing classes drain the pipeline first.
        const bool serializes = (pf_ & kSerializes) != 0;

        // Pipe occupancy: pipelined units take one slot; the divider
        // is unpipelined; vector ops occupy per their element count.
        unsigned occupancy = 1;
        if (cls == OpClass::IntDiv || cls == OpClass::FpDiv ||
            cls == OpClass::VecDiv) {
            occupancy = plan.latency;
        } else if (cls == OpClass::VecAlu || cls == OpClass::VecMul) {
            unsigned bw = std::max(1u, p.vecBitsPerCycle);
            occupancy = std::max(1u, (rec.vl * rec.sew + bw - 1) / bw);
        } else if (cls == OpClass::VecLoad || cls == OpClass::VecStore) {
            occupancy = std::max(1u, (rec.vl * rec.sew + 127) / 128);
        }

        Pipe pipeA = Pipe(plan.pipeA);
        Pipe pipeB = Pipe(plan.pipeB);
        if (isStData)
            pipeA = pipeB = p.lsuDualIssue ? StDataP : LoadP;

        Cycle issueC;
        {
            XT_PROF_SCOPE(Issue);
            Cycle issueMin =
                std::max({renameC + 1, srcReady, serializeUntil});
            if (serializes)
                issueMin = std::max(issueMin, maxDone);
            if (p.inOrder)
                issueMin = std::max(issueMin, lastIssue);

            // Distributed issue-queue capacity (§IV): dispatch into the
            // class's queue can itself stall when the queue is clogged
            // by long-latency-dependent µops.
            const unsigned iqGroup = plan.iqGroup;
            unsigned iqCap = iqGroup == 0   ? p.iqAluEntries
                             : iqGroup == 1 ? p.iqMemEntries
                                            : p.iqFpEntries;
            Cycle dispatchAt = iqAdmit(iqGroup, renameC + 1, iqCap);
            issueMin = std::max(issueMin, dispatchAt);

            // OoO slot booking: younger µops may claim pipe cycles an
            // older, later-issuing µop left idle.
            Cycle ta = ports[pipeA].probe(issueMin, occupancy);
            // probe() returns >= issueMin and ties pick pipeA, so a
            // first-try hit makes the second probe unreachable.
            Cycle tb = pipeB != pipeA && ta != issueMin
                           ? ports[pipeB].probe(issueMin, occupancy)
                           : ta;
            Pipe pipe = ta <= tb ? pipeA : pipeB;
            Cycle slot = std::min(ta, tb);
            issueC = issueBw.schedule(slot);
            if (issueC != slot)
                issueC = ports[pipe].probe(issueC, occupancy);
            ports[pipe].book(issueC, occupancy);
            lastIssue = issueC;
            iqBusy[iqGroup].push(issueC);
        }

        // Execute.
        Cycle done;
        {
            XT_PROF_SCOPE(Execute);
            switch (cls) {
              case OpClass::Load:
              case OpClass::FpLoad:
                done = executeLoad(rec, issueC);
                break;
              case OpClass::Amo: {
                Cycle ag = issueC + 1;
                Addr pa = translate(rec.memAddr, false, ag);
                done = mem.amo(coreId, pa, ag).done;
                break;
              }
              case OpClass::VecLoad:
                done = executeVectorMem(rec, issueC, false, 0);
                break;
              case OpClass::VecStore:
                done = executeVectorMem(rec, issueC, true,
                                        issueC + 8 + p.retireStages);
                break;
              case OpClass::Store:
              case OpClass::FpStore:
                if (isStAddr) {
                    Cycle ag = issueC + 1;
                    Addr pa = translate(rec.memAddr, false, ag);
                    stAddrReady = ag;
                    done = ag;
                    // §V.B: the early address lets the cache query (and
                    // a write-allocate fill on a miss) start ahead of
                    // the data — the benefit the pseudo double store
                    // buys.
                    if (!mem.l1d(coreId).findLine(pa))
                        mem.prefetchFill(coreId, pa, true, ag);
                    pf.observe(rec.memAddr, false, ag, *this);
                } else if (isStData) {
                    stDataReady = issueC + 1;
                    done = stDataReady;
                } else {
                    // Unsplit store: address generation also waits for
                    // the data operand (the cost §V.B's split removes).
                    Cycle ag = issueC + 1;
                    Addr pa = translate(rec.memAddr, false, ag);
                    stAddrReady = ag;
                    stDataReady = ag;
                    done = ag;
                    if (!mem.l1d(coreId).findLine(pa))
                        mem.prefetchFill(coreId, pa, true, ag);
                    pf.observe(rec.memAddr, false, ag, *this);
                }
                break;
              case OpClass::VecAlu:
              case OpClass::VecMul:
              case OpClass::VecDiv:
                done = issueC + plan.latency + occupancy - 1;
                break;
              default:
                done = issueC + plan.latency;
                break;
            }
        }

        // Writeback / retirement.
        Cycle retireC;
        {
            XT_PROF_SCOPE(Retire);
            if (!isStAddr && !isStData && (pf_ & kWritesReg)) {
                setReady(di.rdClass, di.rd, done);
                accReady[unsigned(di.rdClass)][di.rd & 31] =
                    (pf_ & kMac) ? issueC + 1 : done;
            }

            retireC = retireBw.schedule(
                std::max(done + p.retireStages, lastRetire));
            lastRetire = retireC;
            XT_INVARIANT(rob.empty() || rob.back() <= retireC,
                         "ROB retire out of order at pc ", std::hex,
                         rec.pc, ": ", std::dec, rob.back(), " > ",
                         retireC);
            rob.pushBack(retireC);
            instDone = std::max(instDone, done);

            // Top-down slot accounting: why was the gap (if any)
            // between the previous retire cycle and this one left
            // empty?
            {
                const bool backendBound =
                    done + p.retireStages >= retireC;
                const bool memBound =
                    cls == OpClass::Load || cls == OpClass::FpLoad ||
                    cls == OpClass::Store || cls == OpClass::FpStore ||
                    cls == OpClass::VecLoad ||
                    cls == OpClass::VecStore || cls == OpClass::Amo;
                topdown.onRetire(retireC, backendBound, memBound,
                                 fetchRedirectBound);
            }

            if (di.isLoad() && !di.isStore()) {
                XT_INVARIANT(lqRetire.empty() ||
                                 lqRetire.back() <= retireC,
                             "load queue age order at pc ", std::hex,
                             rec.pc);
                if (lqRetire.size() >= p.lqEntries)
                    lqRetire.popFront(); // faulting-load corner: the
                                         // capacity stall above only
                                         // runs for real memory ops
                lqRetire.pushBack(retireC);
            }

            if (serializes) {
                ++serializations;
                serializeUntil = std::max(serializeUntil, done);
            }
            maxDone = std::max(maxDone, done);
        }

        if (traceHook)
            traceHook(UopTrace{rec.pc, avail, decodeC, renameC, issueC,
                               done, retireC});
        if (tracer)
            traceCapture(u, nUops, rec, avail, decodeC, renameC,
                         issueC, done, retireC);
    }

    // Store completion bookkeeping: drain to cache post-retire (§V.B
    // write buffer), record in SQ for later forwarding checks.
    if (isScalarStore) {
        XT_INVARIANT(sqRetireQ.empty() ||
                         sqRetireQ.back() <= lastRetire,
                     "store queue age order at pc ", std::hex, rec.pc);
        sq.push(rec.pc, rec.memAddr, rec.memSize, stAddrReady,
                std::max(stDataReady, stAddrReady), lastRetire);
        if (sqRetireQ.size() >= p.sqEntries)
            sqRetireQ.popFront(); // mirror of the lq corner above
        sqRetireQ.pushBack(lastRetire);
        Cycle wb = lastRetire + 1;
        Addr pa = rec.memAddr;
        Cycle t = wb;
        pa = translate(rec.memAddr, false, t);
        mem.write(coreId, pa, t);
    }

    // Custom cache/TLB operations take their microarchitectural effect.
    switch (di.op) {
      case Opcode::XT_DCACHE_CALL:
      case Opcode::XT_DCACHE_CIALL:
        mem.invalidateL1D(coreId);
        break;
      case Opcode::XT_ICACHE_IALL:
        mem.invalidateL1I(coreId);
        break;
      case Opcode::XT_TLB_IALL:
        itlb.flushAll();
        dtlb.flushAll();
        break;
      case Opcode::XT_TLB_IASID:
        itlb.flushAsid(p.asid);
        dtlb.flushAsid(p.asid);
        break;
      case Opcode::XT_TLB_BCAST:
      case Opcode::SFENCE_VMA:
        itlb.flushVa(rec.memAddr);
        dtlb.flushVa(rec.memAddr);
        break;
      default:
        break;
    }

    // Vector-configuration speculation: vl changes replay (§VII).
    if (cls == OpClass::VecCfg) {
        static constexpr unsigned vlChangePenalty = 6;
        if (lastVlValid && rec.vl != lastVl)
            redirect(instDone + vlChangePenalty);
        lastVl = rec.vl;
        lastVlValid = true;
    }

    // Branch prediction bookkeeping + redirects for younger fetches.
    if (rec.trap.valid) {
        // A synchronous exception flushes the whole pipeline at retire
        // and refetches from the handler (or stops, if the hart died).
        ++trapFlushes;
        redirect(instDone + p.trapFlushPenalty);
        curWindow = ~Addr(0); // wrong-path fetch group discarded
        lbuf.exitLoop();
    } else if (pf_ & kBranchOrJump) {
        predictAndTrain(rec, groupStart, instDone);
    }

    if (tracer)
        traceEmit(rec, nUops);

    ++nRetired;
}

Cycle
XtCore::busyHorizon() const
{
    Cycle h = std::max({decodeBw.busyHorizon(), renameBw.busyHorizon(),
                        issueBw.busyHorizon(), retireBw.busyHorizon()});
    for (const PortSchedule &port : ports)
        h = std::max(h, port.busyHorizon());
    for (const SortedCycleRing &q : iqBusy)
        h = std::max(h, q.busyHorizon());
    h = std::max({h, rob.busyHorizon(), lqRetire.busyHorizon(),
                  sqRetireQ.busyHorizon(), sq.busyHorizon()});
    for (const auto &cls : regReady)
        for (Cycle c : cls)
            h = std::max(h, c);
    for (const auto &cls : accReady)
        for (Cycle c : cls)
            h = std::max(h, c);
    h = std::max({h, lastRetire, lastIssue, serializeUntil, maxDone,
                  fetchResume, redirectResume, curWindowReady});
    return h;
}

__attribute__((noinline)) void
XtCore::traceBegin()
{
    traceBm = branchMispredicts.value();
    traceTm = targetMispredicts.value();
    traceOv = orderingViolations.value();
}

__attribute__((noinline)) void
XtCore::traceCapture(unsigned u, unsigned nUops, const ExecRecord &rec,
                     Cycle avail, Cycle decodeC, Cycle renameC,
                     Cycle issueC, Cycle done, Cycle retireC)
{
    obs::UopEvent &ev = traceEv[u];
    ev.pc = rec.pc;
    ev.hart = coreId;
    ev.seq = nRetired;
    ev.uop = u;
    ev.nUops = nUops;
    ev.fetch = avail;
    ev.decode = decodeC;
    ev.rename = renameC;
    ev.issue = issueC;
    ev.done = done;
    ev.retire = retireC;
}

__attribute__((noinline)) void
XtCore::traceEmit(const ExecRecord &rec, unsigned nUops)
{
    // The flush cause (if any) is only known after predictAndTrain /
    // trap handling ran; recover it from the counter deltas.
    const char *cause = nullptr;
    if (rec.trap.valid)
        cause = "trap";
    else if (orderingViolations.value() != traceOv)
        cause = "ordering-violation";
    else if (branchMispredicts.value() != traceBm)
        cause = "branch-mispredict";
    else if (targetMispredicts.value() != traceTm)
        cause = "target-redirect";
    for (unsigned u = 0; u < nUops; ++u) {
        traceEv[u].flushCause = cause;
        traceEv[u].disasm = disassemble(rec.di);
        tracer->record(traceEv[u], lastGroupStart);
    }
}

void
XtCore::finishRun()
{
    topdown.finalize();
    XT_INVARIANT(topdown.slotsAccounted() ==
                     uint64_t(topdown.width()) * topdown.cycles(),
                 "top-down slots ", topdown.slotsAccounted(),
                 " != width*cycles ",
                 uint64_t(topdown.width()) * topdown.cycles());
}

void
XtCore::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn) const
{
    fn(stats);
    fn(topdown.stats);
    fn(dirPred.stats);
    fn(btb.stats);
    fn(lbuf.stats);
    fn(pf.stats);
    fn(itlb.stats);
    fn(dtlb.stats);
}

void
XtCore::dumpStats(std::ostream &os) const
{
    stats.dump(os);
    topdown.stats.dump(os);
    dirPred.stats.dump(os);
    btb.stats.dump(os);
    lbuf.stats.dump(os);
    pf.stats.dump(os);
    itlb.stats.dump(os);
    dtlb.stats.dump(os);
}

void
XtCore::snapSave(SnapWriter &w) const
{
    stats.snapSave(w);
    topdown.snapSave(w);
    dirPred.snapSave(w);
    btb.snapSave(w);
    lbuf.snapSave(w);
    pf.snapSave(w);
    itlb.snapSave(w);
    dtlb.snapSave(w);
    ras.snapSave(w);
    indirect.snapSave(w);

    // contextSwitch mutates the params copy's ASID: it is live state.
    w.u16(p.asid);

    decodeBw.snapSave(w);
    renameBw.snapSave(w);
    issueBw.snapSave(w);
    retireBw.snapSave(w);
    for (const PortSchedule &port : ports)
        port.snapSave(w);
    for (const auto &cls : regReady)
        for (Cycle c : cls)
            w.u64(c);
    for (const auto &cls : accReady)
        for (Cycle c : cls)
            w.u64(c);

    w.u64(curWindow);
    w.u64(curWindowReady);
    w.u32(curWindowCount);
    w.u64(lastGroupStart);
    w.u64(fetchResume);
    w.u64(prevFetchLine);
    w.u64(redirectResume);
    w.b(fetchRedirectBound);

    rob.snapSave(w);
    lqRetire.snapSave(w);
    sqRetireQ.snapSave(w);
    for (const SortedCycleRing &iq : iqBusy)
        iq.snapSave(w);

    sq.snapSave(w);

    std::vector<Addr> tagged(taggedLoads.begin(), taggedLoads.end());
    std::sort(tagged.begin(), tagged.end());
    w.u64(tagged.size());
    for (Addr a : tagged)
        w.u64(a);

    w.u64(lastRetire);
    w.u64(lastIssue);
    w.u64(serializeUntil);
    w.u64(maxDone);
    w.u64(nRetired);
    w.u32(lastVl);
    w.b(lastVlValid);
    w.b(forcedMispredict);
}

void
XtCore::snapLoad(SnapReader &r)
{
    stats.snapLoad(r);
    topdown.snapLoad(r);
    dirPred.snapLoad(r);
    btb.snapLoad(r);
    lbuf.snapLoad(r);
    pf.snapLoad(r);
    itlb.snapLoad(r);
    dtlb.snapLoad(r);
    ras.snapLoad(r);
    indirect.snapLoad(r);

    p.asid = r.u16();

    decodeBw.snapLoad(r);
    renameBw.snapLoad(r);
    issueBw.snapLoad(r);
    retireBw.snapLoad(r);
    for (PortSchedule &port : ports)
        port.snapLoad(r);
    for (auto &cls : regReady)
        for (Cycle &c : cls)
            c = r.u64();
    for (auto &cls : accReady)
        for (Cycle &c : cls)
            c = r.u64();

    curWindow = r.u64();
    curWindowReady = r.u64();
    curWindowCount = r.u32();
    lastGroupStart = r.u64();
    fetchResume = r.u64();
    prevFetchLine = r.u64();
    redirectResume = r.u64();
    fetchRedirectBound = r.b();

    rob.snapLoad(r);
    lqRetire.snapLoad(r);
    sqRetireQ.snapLoad(r);
    for (SortedCycleRing &iq : iqBusy)
        iq.snapLoad(r);

    sq.snapLoad(r);

    taggedLoads.clear();
    uint64_t nTagged = r.u64();
    for (uint64_t i = 0; i < nTagged; ++i)
        taggedLoads.insert(r.u64());

    lastRetire = r.u64();
    lastIssue = r.u64();
    serializeUntil = r.u64();
    maxDone = r.u64();
    nRetired = r.u64();
    lastVl = r.u32();
    lastVlValid = r.b();
    forcedMispredict = r.b();

    // The µop-plan table is a derived cache keyed by the ISS's
    // block-cache generation; the restored ISS rebuilds its blocks
    // with fresh slot numbering, so force a rebuild here too.
    planTab.clear();
    planGenSeen = 0;
}

} // namespace xt910
