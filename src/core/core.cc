#include "core/core.h"

#include <algorithm>
#include <ostream>

#include <array>

#include "check/invariants.h"
#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"
#include "isa/disasm.h"

namespace xt910
{

namespace
{

/** Multiply-accumulate ops whose destination is also a source. */
bool
isMacOp(Opcode op)
{
    switch (op) {
      case Opcode::XT_MULA:
      case Opcode::XT_MULS:
      case Opcode::XT_MULAH:
      case Opcode::XT_MULSH:
      case Opcode::VMACC_VV:
      case Opcode::VMACC_VX:
      case Opcode::VMADD_VV:
      case Opcode::VWMACC_VV:
      case Opcode::VFMACC_VV:
      case Opcode::VFMACC_VF:
        return true;
      default:
        return false;
    }
}

} // namespace

XtCore::XtCore(unsigned coreId_, const CoreParams &params, MemSystem &ms,
               const Memory &ptMem_)
    : stats("core" + std::to_string(coreId_)),
      uops(stats, "uops", "micro-operations processed"),
      branchMispredicts(stats, "branch_mispredicts",
                        "execute-stage branch redirects"),
      targetMispredicts(stats, "target_mispredicts",
                        "BTB/indirect/RAS target corrections"),
      takenBubbles(stats, "taken_bubbles",
                   "IP/IB-stage redirect bubbles paid"),
      l0Redirects(stats, "l0_redirects", "zero-bubble IF-stage jumps"),
      orderingViolations(stats, "ordering_violations",
                         "LSU speculation failures (global flush)"),
      forwardedLoads(stats, "forwarded_loads", "store-to-load forwards"),
      blockedLoads(stats, "blocked_loads",
                   "loads delayed by the dependence predictor"),
      serializations(stats, "serializations", "pipeline drains"),
      trapFlushes(stats, "trap_flushes",
                  "synchronous-exception pipeline flushes"),
      ptwWalks(stats, "ptw_walks", "page-table walks"),
      ptwCycles(stats, "ptw_cycles", "cycles spent walking"),
      topdown("core" + std::to_string(coreId_) + ".topdown",
              params.retireWidth),
      coreId(coreId_),
      p(params),
      mem(ms),
      ptMem(ptMem_),
      dirPred(params.direction, "core" + std::to_string(coreId_) + ".bp"),
      btb(params.btb, "core" + std::to_string(coreId_) + ".btb"),
      lbuf(params.lbuf, "core" + std::to_string(coreId_) + ".lbuf"),
      pf(params.prefetch, "core" + std::to_string(coreId_) + ".pf"),
      itlb(params.tlb, "core" + std::to_string(coreId_) + ".itlb"),
      dtlb(params.tlb, "core" + std::to_string(coreId_) + ".dtlb"),
      decodeBw(params.decodeWidth),
      renameBw(params.renameWidth),
      issueBw(params.issueWidth),
      retireBw(params.retireWidth)
{
    if (p.translation == TranslationMode::Paged)
        xt_assert(p.pageTableRoot != 0,
                  "Paged translation requires a page-table root");
}

void
XtCore::contextSwitch(Asid newAsid, bool flushTlb)
{
    p.asid = newAsid;
    lbuf.flush();
    if (flushTlb) {
        itlb.flushAll();
        dtlb.flushAll();
    }
}

std::pair<XtCore::Pipe, XtCore::Pipe>
XtCore::pipesFor(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
        return {Alu0, Alu1};
      case OpClass::IntDiv:
        // Divide shares the multi-cycle ALU pipe (§II).
        return {Alu1, Alu1};
      case OpClass::Branch:
      case OpClass::Jump:
        return {Bju, Bju};
      case OpClass::Load:
      case OpClass::FpLoad:
      case OpClass::VecLoad:
      case OpClass::Amo:
        return {LoadP, LoadP};
      case OpClass::Store:
      case OpClass::FpStore:
      case OpClass::VecStore:
        return {p.lsuDualIssue ? StAddrP : LoadP,
                p.lsuDualIssue ? StAddrP : LoadP};
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpCvt:
      case OpClass::VecAlu:
      case OpClass::VecMul:
      case OpClass::VecDiv:
        return {FpVec0, FpVec1};
      default:
        return {Alu0, Alu1};
    }
}

Cycle
XtCore::readyOf(RegClass cls, RegIndex r) const
{
    if (cls == RegClass::None || r == invalidReg)
        return 0;
    if (cls == RegClass::Int && r == 0)
        return 0;
    return regReady[unsigned(cls)][r & 31];
}

void
XtCore::setReady(RegClass cls, RegIndex r, Cycle c)
{
    if (cls == RegClass::None || r == invalidReg)
        return;
    if (cls == RegClass::Int && r == 0)
        return;
    regReady[unsigned(cls)][r & 31] = c;
}

Cycle
XtCore::iqAdmit(unsigned g, Cycle when, unsigned capacity)
{
    auto &q = iqBusy[g];
    // Entries that issued before `when` have left the queue.
    while (!q.empty() && *q.begin() <= when)
        q.erase(q.begin());
    // Queue full: dispatch waits for the earliest occupant to issue.
    while (q.size() >= capacity) {
        when = *q.begin() + 1;
        q.erase(q.begin());
    }
    return when;
}

Addr
XtCore::translate(Addr va, bool isFetch, Cycle &when)
{
    if (p.translation == TranslationMode::Bare)
        return va;
    Tlb &tlb = isFetch ? itlb : dtlb;
    if (auto hit = tlb.lookup(va, p.asid, when)) {
        if (!hit->microHit && hit->jtlbProbes > 1)
            when += hit->jtlbProbes - 1; // serial page-size probes
        return hit->pa;
    }
    // Hardware page-table walk, charged as sequential memory reads.
    ++ptwWalks;
    Cycle start = when;
    WalkResult w = walkSv39(ptMem, p.pageTableRoot, va);
    if (!w.ok)
        xt_fatal("page fault at va 0x", std::hex, va);
    for (unsigned i = 0; i < w.levels; ++i) {
        MemResult r = mem.read(coreId, w.pteAddr[i], when);
        when = r.done + p.ptwCacheLatency;
    }
    tlb.insert(va, w.pa & ~mask(pageShift(w.size)), w.size, p.asid);
    ptwCycles += when - start;
    return w.pa;
}

bool
XtCore::prefetchLine(Addr vaddr, bool toL1, Cycle when)
{
    Addr pa = vaddr;
    if (p.translation == TranslationMode::Paged) {
        auto hit = dtlb.lookup(vaddr, p.asid, when);
        if (!hit)
            return false; // cannot translate; stream stalls (§V.C)
        pa = hit->pa;
    }
    mem.prefetchFill(coreId, pa, toL1, when);
    return true;
}

void
XtCore::prefetchTranslation(Addr vaddr, Cycle when)
{
    if (p.translation != TranslationMode::Paged || !p.tlbPrefetch)
        return;
    if (dtlb.lookup(vaddr, p.asid, when))
        return;
    WalkResult w = walkSv39(ptMem, p.pageTableRoot, vaddr);
    if (!w.ok)
        return;
    ++ptwWalks;
    // Background walk: charges DRAM/L2 bandwidth but stalls nothing.
    Cycle t = when;
    for (unsigned i = 0; i < w.levels; ++i)
        t = mem.read(coreId, w.pteAddr[i], t).done;
    dtlb.insert(vaddr, w.pa & ~mask(pageShift(w.size)), w.size, p.asid);
}

void
XtCore::redirect(Cycle until)
{
    fetchResume = std::max(fetchResume, until);
    redirectResume = std::max(redirectResume, until);
}

Cycle
XtCore::frontend(const ExecRecord &rec)
{
    Addr pc = rec.pc;
    if (lbuf.active(pc)) {
        // Streaming from the loop buffer: no I-cache access, no taken-
        // branch bubble; availability simply tracks the previous group.
        ++lbuf.servedInsts;
    } else {
        Addr window = pc & ~Addr(p.fetchBytes - 1);
        if (window != curWindow || curWindowCount >= p.fetchMaxInsts) {
            Cycle start = std::max(lastGroupStart + 1, fetchResume);
            Cycle t = start;
            Addr pa = translate(pc, true, t);
            MemResult mr = mem.fetch(coreId, pa, t);
            curWindowReady = mr.done + (p.frontendStages - 1);
            curWindow = window;
            curWindowCount = 0;
            lastGroupStart = start;
            // IFU run-ahead: sequential next-line prefetch keeps the
            // IBUF supplied across I-cache misses (§III).
            if (lineAlign(window) != lineAlign(prevFetchLine)) {
                Cycle pt = start;
                Addr seq = lineAlign(pa) + cacheLineBytes;
                mem.prefetchInstLine(coreId, seq, pt);
                mem.prefetchInstLine(coreId, seq + cacheLineBytes, pt);
            }
            prevFetchLine = window;
        }
        ++curWindowCount;
    }
    // For top-down accounting: is this µop's supply gated by a
    // speculation flush (rather than benign fetch latency)?
    fetchRedirectBound = redirectResume != 0 &&
                         fetchResume >= curWindowReady &&
                         fetchResume <= redirectResume;
    return std::max(curWindowReady, fetchResume);
}

void
XtCore::predictAndTrain(const ExecRecord &rec, Cycle groupStart,
                        Cycle execDone)
{
    const DecodedInst &di = rec.di;
    const Addr pc = rec.pc;
    const bool taken = rec.taken;
    const Addr target = rec.nextPc;

    bool dirMispredict = false;
    if (di.isBranch()) {
        dirMispredict = dirPred.update(pc, taken);
        // Without BUF1/BUF2 a branch served right after another pays a
        // one-cycle SRAM re-read bubble (§III.A).
        static_assert(true);
    }
    if (forcedMispredict) {
        // Injected fault: the prediction structures produced garbage
        // for this branch; it resolves as an execute-stage redirect.
        forcedMispredict = false;
        dirMispredict = true;
    }

    const bool loopBranch =
        lbuf.capturing() && pc == lbuf.loopBranch();

    if (!taken) {
        if (dirMispredict) {
            ++branchMispredicts;
            redirect(execDone + p.execRedirectPenalty);
            lbuf.exitLoop();
        } else if (loopBranch) {
            lbuf.exitLoop(); // predicted fall-through ends streaming
        }
        return;
    }

    // ---- taken path ----
    if (di.isCall())
        ras.push(pc + di.len);

    if (dirMispredict) {
        ++branchMispredicts;
        redirect(execDone + p.execRedirectPenalty);
        btb.update(pc, target, BranchKind::Conditional, true);
        if (di.isBranch() && target < pc)
            lbuf.observeBackwardBranch(pc, target,
                                       unsigned((pc - target) / 4 + 1));
        return;
    }

    if (loopBranch && lbuf.active(target)) {
        // Loop-buffer iteration: last and first instruction can even
        // issue together (§III.C) — zero bubble.
        ++lbuf.icacheAccessSaved;
        return;
    }

    unsigned bubbles = 0;
    bool execRedirect = false;

    if (di.isReturn()) {
        Addr pred = ras.pop();
        if (pred != target) {
            execRedirect = true;
            ++targetMispredicts;
        }
        // Correct RAS prediction redirects at IF: no bubble.
    } else if (di.isIndirect()) {
        Addr pred = indirect.predict(pc);
        if (pred == target) {
            bubbles = p.ibRedirectBubbles; // resolved at IB
        } else {
            execRedirect = true;
            ++targetMispredicts;
        }
        indirect.update(pc, target);
    } else {
        // Direct branch/jump: cascaded BTB (§III.B).
        auto l0 = btb.lookupL0(pc, groupStart);
        if (l0 && l0->target == target) {
            ++l0Redirects; // IF-stage jump: bubble eliminated
        } else if (l0) {
            // L0 hit with stale target: corrected right away at IP.
            ++targetMispredicts;
            bubbles = p.ipRedirectBubbles;
        } else {
            auto l1 = btb.lookupL1(pc, groupStart);
            if (l1 && l1->target != target)
                ++targetMispredicts; // corrected at IB (§III.B)
            bubbles = (l1 && l1->target != target)
                          ? p.ibRedirectBubbles
                          : p.ipRedirectBubbles;
        }
    }

    // Back-to-back conditional branches without the two-level buffer
    // pay one extra cycle (§III.A).
    if (di.isBranch() && dirPred.backToBackPenalty() > 0)
        bubbles += dirPred.backToBackPenalty();

    if (execRedirect) {
        redirect(execDone + p.execRedirectPenalty);
    } else if (bubbles > 0) {
        takenBubbles += bubbles;
        fetchResume = std::max(fetchResume, lastGroupStart + 1 + bubbles);
    } else {
        fetchResume = std::max(fetchResume, lastGroupStart + 1);
    }

    BranchKind kind = di.isReturn()     ? BranchKind::Return
                      : di.isIndirect() ? BranchKind::Indirect
                      : di.isCall()     ? BranchKind::Call
                      : di.isBranch()   ? BranchKind::Conditional
                                        : BranchKind::Direct;
    btb.update(pc, target, kind, /*promoteL0=*/bubbles > 0);

    if (di.isBranch() && target < pc)
        lbuf.observeBackwardBranch(pc, target,
                                   unsigned((pc - target) / 4 + 1));
}

Cycle
XtCore::executeLoad(const ExecRecord &rec, Cycle issue)
{
    Cycle ag = issue + 1; // address generation (AG stage, §V.A)
    Addr pa = translate(rec.memAddr, false, ag);

    // Memory-dependence predictor: tagged loads wait for all older
    // store addresses (§V.A "execution is blocked").
    if (p.memDepPredict && taggedLoads.count(rec.pc)) {
        Cycle wait = 0;
        for (const SqEntry &s : sq)
            wait = std::max(wait, s.addrReady);
        if (wait > ag) {
            ++blockedLoads;
            ag = wait;
        }
    }

    // Store queue search, youngest first.
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &s = *it;
        bool overlap = rec.memAddr < s.addr + s.size &&
                       s.addr < rec.memAddr + rec.memSize;
        if (!overlap)
            continue;
        bool contains = s.addr <= rec.memAddr &&
                        rec.memAddr + rec.memSize <= s.addr + s.size;
        if (s.addrReady > ag && !(p.memDepPredict &&
                                  taggedLoads.count(rec.pc))) {
            // The load executed before the older store's address was
            // known: ordering violation -> global flush (§V.A).
            ++orderingViolations;
            if (p.memDepPredict)
                taggedLoads.insert(rec.pc);
            Cycle redo = std::max(s.dataReady, s.addrReady) +
                         p.orderingFlushPenalty;
            redirect(redo);
            return redo + p.storeToLoadForwardLat;
        }
        if (contains) {
            ++forwardedLoads;
            return std::max(ag, s.dataReady) + p.storeToLoadForwardLat;
        }
        // Partial overlap: wait until the store drains to the cache.
        Cycle drained = std::max(s.retire, ag);
        MemResult r = mem.read(coreId, pa, drained);
        pf.observe(rec.memAddr, !r.l1Hit, drained, *this);
        return r.done;
    }

    MemResult r = mem.read(coreId, pa, ag);
    pf.observe(rec.memAddr, !r.l1Hit, ag, *this);
    return r.done;
}

Cycle
XtCore::executeVectorMem(const ExecRecord &rec, Cycle issue, bool isStore,
                         Cycle retireHint)
{
    // Vector load/store: 128 bits per cycle of load/store bandwidth
    // (§VII); unique lines touched go through the cache port.
    const unsigned elemBytes = rec.sew / 8;
    Cycle ag = issue + 1;
    Cycle done = ag;
    Addr prevLine = ~Addr(0);
    unsigned beats = 0;
    for (unsigned i = 0; i < rec.vl && i < 256; ++i) {
        Addr va = rec.memAddr + Addr(int64_t(i) * rec.memStride);
        Addr line = lineAlign(va);
        if (line == prevLine)
            continue;
        prevLine = line;
        Cycle t = ag + beats * (Cycle(elemBytes) * 8 / 128 + 1) / 2;
        Addr pa = translate(va, false, t);
        if (isStore) {
            mem.write(coreId, pa, std::max(t, retireHint));
            pf.observe(va, false, t, *this);
        } else {
            MemResult r = mem.read(coreId, pa, t);
            pf.observe(va, !r.l1Hit, t, *this);
            done = std::max(done, r.done);
        }
        ++beats;
    }
    unsigned occupancy =
        std::max(1u, (rec.vl * rec.sew + 127) / 128); // 128b/cycle
    done = std::max(done, ag + occupancy);
    return done;
}

void
XtCore::consume(const ExecRecord &rec)
{
    const DecodedInst &di = rec.di;
    const OpClass cls = di.cls();

    // Konata tracing: when off, the hot path pays one (predictable)
    // branch on the null tracer pointer per capture point. Flush
    // causes are inferred from counter deltas across this consume
    // call; see traceEmit().
    if (tracer)
        traceBegin();

    // ------------------------------------------------------ frontend
    Cycle groupStart = lastGroupStart;
    Cycle avail = frontend(rec);
    Cycle decodeC = decodeBw.schedule(avail);

    // ------------------------------------------------ µop formation
    const bool isScalarStore =
        (cls == OpClass::Store || cls == OpClass::FpStore);
    const bool splitStore = isScalarStore && p.pseudoDualStore;
    const unsigned nUops = splitStore ? 2 : 1;

    Cycle instDone = 0;
    Cycle stAddrReady = 0, stDataReady = 0;

    for (unsigned u = 0; u < nUops; ++u) {
        ++uops;
        const bool isStAddr = splitStore && u == 0;
        const bool isStData = splitStore && u == 1;

        // Rename: window capacity + width.
        Cycle renameC = decodeC + 1;
        if (rob.size() >= p.robEntries) {
            renameC = std::max(renameC, rob.front());
            rob.pop_front();
        }
        if (rec.isMemOp() && di.isLoad() && !di.isStore()) {
            if (lqRetire.size() >= p.lqEntries) {
                renameC = std::max(renameC, lqRetire.front());
                lqRetire.pop_front();
            }
        }
        if (isScalarStore && u == 0) {
            if (sqRetireQ.size() >= p.sqEntries) {
                renameC = std::max(renameC, sqRetireQ.front());
                sqRetireQ.pop_front();
            }
        }
        renameC = renameBw.schedule(renameC);

        // Source readiness.
        Cycle srcReady = 0;
        if (isStAddr) {
            srcReady = readyOf(di.rs1Class, di.rs1);
            if (isCustom(di.op)) // indexed store: rs2 is the index
                srcReady = std::max(srcReady,
                                    readyOf(di.rs2Class, di.rs2));
        } else if (isStData) {
            RegIndex dataReg = isCustom(di.op) ? di.rs3 : di.rs2;
            RegClass dataCls =
                isCustom(di.op) ? di.rs3Class : di.rs2Class;
            srcReady = readyOf(dataCls, dataReg);
        } else {
            srcReady = std::max({readyOf(di.rs1Class, di.rs1),
                                 readyOf(di.rs2Class, di.rs2),
                                 readyOf(di.rs3Class, di.rs3)});
            // MAC-style ops also read their destination; a chain of
            // dependent MACs forwards inside the accumulate stage, so
            // the rd source uses the accumulator-ready time.
            if (isMacOp(di.op)) {
                Cycle acc = di.rdClass == RegClass::None ||
                                    di.rd == invalidReg
                                ? 0
                                : accReady[unsigned(di.rdClass)]
                                          [di.rd & 31];
                srcReady = std::max(srcReady, acc);
            }
        }

        // Serializing classes drain the pipeline first.
        const bool serializes = cls == OpClass::Csr ||
                                cls == OpClass::System ||
                                cls == OpClass::Fence ||
                                cls == OpClass::CacheOp;

        // Pipe occupancy: pipelined units take one slot; the divider
        // is unpipelined; vector ops occupy per their element count.
        unsigned occupancy = 1;
        if (cls == OpClass::IntDiv || cls == OpClass::FpDiv ||
            cls == OpClass::VecDiv) {
            occupancy = defaultLatency(di.op);
        } else if (cls == OpClass::VecAlu || cls == OpClass::VecMul) {
            unsigned bw = std::max(1u, p.vecBitsPerCycle);
            occupancy = std::max(1u, (rec.vl * rec.sew + bw - 1) / bw);
        } else if (cls == OpClass::VecLoad || cls == OpClass::VecStore) {
            occupancy = std::max(1u, (rec.vl * rec.sew + 127) / 128);
        }

        auto [pipeA, pipeB] = pipesFor(cls);
        if (isStData)
            pipeA = pipeB = p.lsuDualIssue ? StDataP : LoadP;

        Cycle issueMin =
            std::max({renameC + 1, srcReady, serializeUntil});
        if (serializes)
            issueMin = std::max(issueMin, maxDone);
        if (p.inOrder)
            issueMin = std::max(issueMin, lastIssue);

        // Distributed issue-queue capacity (§IV): dispatch into the
        // class's queue can itself stall when the queue is clogged by
        // long-latency-dependent µops.
        unsigned iqGroup = pipeA <= Bju ? 0u
                           : pipeA <= StDataP ? 1u
                                              : 2u;
        unsigned iqCap = iqGroup == 0   ? p.iqAluEntries
                         : iqGroup == 1 ? p.iqMemEntries
                                        : p.iqFpEntries;
        Cycle dispatchAt = iqAdmit(iqGroup, renameC + 1, iqCap);
        issueMin = std::max(issueMin, dispatchAt);

        // OoO slot booking: younger µops may claim pipe cycles an
        // older, later-issuing µop left idle.
        Cycle ta = ports[pipeA].probe(issueMin, occupancy);
        Cycle tb = pipeB != pipeA ? ports[pipeB].probe(issueMin, occupancy)
                                  : ta;
        Pipe pipe = ta <= tb ? pipeA : pipeB;
        Cycle slot = std::min(ta, tb);
        Cycle issueC = issueBw.schedule(slot);
        if (issueC != slot)
            issueC = ports[pipe].probe(issueC, occupancy);
        ports[pipe].book(issueC, occupancy);
        lastIssue = issueC;
        iqBusy[iqGroup].insert(issueC);

        // Execute.
        Cycle done;
        switch (cls) {
          case OpClass::Load:
          case OpClass::FpLoad:
            done = executeLoad(rec, issueC);
            break;
          case OpClass::Amo: {
            Cycle ag = issueC + 1;
            Addr pa = translate(rec.memAddr, false, ag);
            done = mem.amo(coreId, pa, ag).done;
            break;
          }
          case OpClass::VecLoad:
            done = executeVectorMem(rec, issueC, false, 0);
            break;
          case OpClass::VecStore:
            done = executeVectorMem(rec, issueC, true,
                                    issueC + 8 + p.retireStages);
            break;
          case OpClass::Store:
          case OpClass::FpStore:
            if (isStAddr) {
                Cycle ag = issueC + 1;
                Addr pa = translate(rec.memAddr, false, ag);
                stAddrReady = ag;
                done = ag;
                // §V.B: the early address lets the cache query (and a
                // write-allocate fill on a miss) start ahead of the
                // data — the benefit the pseudo double store buys.
                if (!mem.l1d(coreId).findLine(pa))
                    mem.prefetchFill(coreId, pa, true, ag);
                pf.observe(rec.memAddr, false, ag, *this);
            } else if (isStData) {
                stDataReady = issueC + 1;
                done = stDataReady;
            } else {
                // Unsplit store: address generation also waits for the
                // data operand (the cost §V.B's split removes).
                Cycle ag = issueC + 1;
                Addr pa = translate(rec.memAddr, false, ag);
                stAddrReady = ag;
                stDataReady = ag;
                done = ag;
                if (!mem.l1d(coreId).findLine(pa))
                    mem.prefetchFill(coreId, pa, true, ag);
                pf.observe(rec.memAddr, false, ag, *this);
            }
            break;
          case OpClass::VecAlu:
          case OpClass::VecMul:
          case OpClass::VecDiv:
            done = issueC + defaultLatency(di.op) + occupancy - 1;
            break;
          default:
            done = issueC + defaultLatency(di.op);
            break;
        }

        // Writeback / retirement.
        if (!isStAddr && !isStData && di.writesReg()) {
            setReady(di.rdClass, di.rd, done);
            accReady[unsigned(di.rdClass)][di.rd & 31] =
                isMacOp(di.op) ? issueC + 1 : done;
        }

        Cycle retireC = retireBw.schedule(
            std::max(done + p.retireStages, lastRetire));
        lastRetire = retireC;
        XT_INVARIANT(rob.empty() || rob.back() <= retireC,
                     "ROB retire out of order at pc ", std::hex, rec.pc,
                     ": ", std::dec, rob.back(), " > ", retireC);
        rob.push_back(retireC);
        instDone = std::max(instDone, done);

        // Top-down slot accounting: why was the gap (if any) between
        // the previous retire cycle and this one left empty?
        {
            const bool backendBound =
                done + p.retireStages >= retireC;
            const bool memBound =
                cls == OpClass::Load || cls == OpClass::FpLoad ||
                cls == OpClass::Store || cls == OpClass::FpStore ||
                cls == OpClass::VecLoad || cls == OpClass::VecStore ||
                cls == OpClass::Amo;
            topdown.onRetire(retireC, backendBound, memBound,
                             fetchRedirectBound);
        }

        if (traceHook)
            traceHook(UopTrace{rec.pc, avail, decodeC, renameC, issueC,
                               done, retireC});
        if (tracer)
            traceCapture(u, nUops, rec, avail, decodeC, renameC,
                         issueC, done, retireC);

        if (di.isLoad() && !di.isStore()) {
            XT_INVARIANT(lqRetire.empty() || lqRetire.back() <= retireC,
                         "load queue age order at pc ", std::hex, rec.pc);
            lqRetire.push_back(retireC);
        }

        if (serializes) {
            ++serializations;
            serializeUntil = std::max(serializeUntil, done);
        }
        maxDone = std::max(maxDone, done);
    }

    // Store completion bookkeeping: drain to cache post-retire (§V.B
    // write buffer), record in SQ for later forwarding checks.
    if (isScalarStore) {
        SqEntry e;
        e.pc = rec.pc;
        e.addr = rec.memAddr;
        e.size = rec.memSize;
        e.addrReady = stAddrReady;
        e.dataReady = std::max(stDataReady, stAddrReady);
        e.retire = lastRetire;
        sq.push_back(e);
        if (sq.size() > p.sqEntries)
            sq.pop_front();
        XT_INVARIANT(sqRetireQ.empty() || sqRetireQ.back() <= lastRetire,
                     "store queue age order at pc ", std::hex, rec.pc);
        sqRetireQ.push_back(lastRetire);
        Cycle wb = lastRetire + 1;
        Addr pa = rec.memAddr;
        Cycle t = wb;
        pa = translate(rec.memAddr, false, t);
        mem.write(coreId, pa, t);
    }

    // Custom cache/TLB operations take their microarchitectural effect.
    switch (di.op) {
      case Opcode::XT_DCACHE_CALL:
      case Opcode::XT_DCACHE_CIALL:
        mem.invalidateL1D(coreId);
        break;
      case Opcode::XT_ICACHE_IALL:
        mem.invalidateL1I(coreId);
        break;
      case Opcode::XT_TLB_IALL:
        itlb.flushAll();
        dtlb.flushAll();
        break;
      case Opcode::XT_TLB_IASID:
        itlb.flushAsid(p.asid);
        dtlb.flushAsid(p.asid);
        break;
      case Opcode::XT_TLB_BCAST:
      case Opcode::SFENCE_VMA:
        itlb.flushVa(rec.memAddr);
        dtlb.flushVa(rec.memAddr);
        break;
      default:
        break;
    }

    // Vector-configuration speculation: vl changes replay (§VII).
    if (cls == OpClass::VecCfg) {
        static constexpr unsigned vlChangePenalty = 6;
        if (lastVlValid && rec.vl != lastVl)
            redirect(instDone + vlChangePenalty);
        lastVl = rec.vl;
        lastVlValid = true;
    }

    // Branch prediction bookkeeping + redirects for younger fetches.
    if (rec.trap.valid) {
        // A synchronous exception flushes the whole pipeline at retire
        // and refetches from the handler (or stops, if the hart died).
        ++trapFlushes;
        redirect(instDone + p.trapFlushPenalty);
        curWindow = ~Addr(0); // wrong-path fetch group discarded
        lbuf.exitLoop();
    } else if (di.isBranch() || di.isJump()) {
        predictAndTrain(rec, groupStart, instDone);
    }

    if (tracer)
        traceEmit(rec, nUops);

    ++nRetired;
}

__attribute__((noinline)) void
XtCore::traceBegin()
{
    traceBm = branchMispredicts.value();
    traceTm = targetMispredicts.value();
    traceOv = orderingViolations.value();
}

__attribute__((noinline)) void
XtCore::traceCapture(unsigned u, unsigned nUops, const ExecRecord &rec,
                     Cycle avail, Cycle decodeC, Cycle renameC,
                     Cycle issueC, Cycle done, Cycle retireC)
{
    obs::UopEvent &ev = traceEv[u];
    ev.pc = rec.pc;
    ev.hart = coreId;
    ev.seq = nRetired;
    ev.uop = u;
    ev.nUops = nUops;
    ev.fetch = avail;
    ev.decode = decodeC;
    ev.rename = renameC;
    ev.issue = issueC;
    ev.done = done;
    ev.retire = retireC;
}

__attribute__((noinline)) void
XtCore::traceEmit(const ExecRecord &rec, unsigned nUops)
{
    // The flush cause (if any) is only known after predictAndTrain /
    // trap handling ran; recover it from the counter deltas.
    const char *cause = nullptr;
    if (rec.trap.valid)
        cause = "trap";
    else if (orderingViolations.value() != traceOv)
        cause = "ordering-violation";
    else if (branchMispredicts.value() != traceBm)
        cause = "branch-mispredict";
    else if (targetMispredicts.value() != traceTm)
        cause = "target-redirect";
    for (unsigned u = 0; u < nUops; ++u) {
        traceEv[u].flushCause = cause;
        traceEv[u].disasm = disassemble(rec.di);
        tracer->record(traceEv[u], lastGroupStart);
    }
}

void
XtCore::finishRun()
{
    topdown.finalize();
    XT_INVARIANT(topdown.slotsAccounted() ==
                     uint64_t(topdown.width()) * topdown.cycles(),
                 "top-down slots ", topdown.slotsAccounted(),
                 " != width*cycles ",
                 uint64_t(topdown.width()) * topdown.cycles());
}

void
XtCore::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn) const
{
    fn(stats);
    fn(topdown.stats);
    fn(dirPred.stats);
    fn(btb.stats);
    fn(lbuf.stats);
    fn(pf.stats);
    fn(itlb.stats);
    fn(dtlb.stats);
}

void
XtCore::dumpStats(std::ostream &os) const
{
    stats.dump(os);
    topdown.stats.dump(os);
    dirPred.stats.dump(os);
    btb.stats.dump(os);
    lbuf.stats.dump(os);
    pf.stats.dump(os);
    itlb.stats.dump(os);
    dtlb.stats.dump(os);
}

namespace
{

void
saveCycleDeque(SnapWriter &w, const std::deque<Cycle> &d)
{
    w.u64(d.size());
    for (Cycle c : d)
        w.u64(c);
}

void
loadCycleDeque(SnapReader &r, std::deque<Cycle> &d)
{
    d.clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i)
        d.push_back(r.u64());
}

} // namespace

void
XtCore::snapSave(SnapWriter &w) const
{
    stats.snapSave(w);
    topdown.snapSave(w);
    dirPred.snapSave(w);
    btb.snapSave(w);
    lbuf.snapSave(w);
    pf.snapSave(w);
    itlb.snapSave(w);
    dtlb.snapSave(w);
    ras.snapSave(w);
    indirect.snapSave(w);

    // contextSwitch mutates the params copy's ASID: it is live state.
    w.u16(p.asid);

    decodeBw.snapSave(w);
    renameBw.snapSave(w);
    issueBw.snapSave(w);
    retireBw.snapSave(w);
    for (const PortSchedule &port : ports)
        port.snapSave(w);
    for (const auto &cls : regReady)
        for (Cycle c : cls)
            w.u64(c);
    for (const auto &cls : accReady)
        for (Cycle c : cls)
            w.u64(c);

    w.u64(curWindow);
    w.u64(curWindowReady);
    w.u32(curWindowCount);
    w.u64(lastGroupStart);
    w.u64(fetchResume);
    w.u64(prevFetchLine);
    w.u64(redirectResume);
    w.b(fetchRedirectBound);

    saveCycleDeque(w, rob);
    saveCycleDeque(w, lqRetire);
    saveCycleDeque(w, sqRetireQ);
    for (const auto &iq : iqBusy) {
        w.u64(iq.size());
        for (Cycle c : iq)
            w.u64(c);
    }

    w.u64(sq.size());
    for (const SqEntry &e : sq) {
        w.u64(e.pc);
        w.u64(e.addr);
        w.u32(e.size);
        w.u64(e.addrReady);
        w.u64(e.dataReady);
        w.u64(e.retire);
    }

    std::vector<Addr> tagged(taggedLoads.begin(), taggedLoads.end());
    std::sort(tagged.begin(), tagged.end());
    w.u64(tagged.size());
    for (Addr a : tagged)
        w.u64(a);

    w.u64(lastRetire);
    w.u64(lastIssue);
    w.u64(serializeUntil);
    w.u64(maxDone);
    w.u64(nRetired);
    w.u32(lastVl);
    w.b(lastVlValid);
    w.b(forcedMispredict);
}

void
XtCore::snapLoad(SnapReader &r)
{
    stats.snapLoad(r);
    topdown.snapLoad(r);
    dirPred.snapLoad(r);
    btb.snapLoad(r);
    lbuf.snapLoad(r);
    pf.snapLoad(r);
    itlb.snapLoad(r);
    dtlb.snapLoad(r);
    ras.snapLoad(r);
    indirect.snapLoad(r);

    p.asid = r.u16();

    decodeBw.snapLoad(r);
    renameBw.snapLoad(r);
    issueBw.snapLoad(r);
    retireBw.snapLoad(r);
    for (PortSchedule &port : ports)
        port.snapLoad(r);
    for (auto &cls : regReady)
        for (Cycle &c : cls)
            c = r.u64();
    for (auto &cls : accReady)
        for (Cycle &c : cls)
            c = r.u64();

    curWindow = r.u64();
    curWindowReady = r.u64();
    curWindowCount = r.u32();
    lastGroupStart = r.u64();
    fetchResume = r.u64();
    prevFetchLine = r.u64();
    redirectResume = r.u64();
    fetchRedirectBound = r.b();

    loadCycleDeque(r, rob);
    loadCycleDeque(r, lqRetire);
    loadCycleDeque(r, sqRetireQ);
    for (auto &iq : iqBusy) {
        iq.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i)
            iq.insert(r.u64());
    }

    sq.clear();
    uint64_t nSq = r.u64();
    for (uint64_t i = 0; i < nSq; ++i) {
        SqEntry e;
        e.pc = r.u64();
        e.addr = r.u64();
        e.size = r.u32();
        e.addrReady = r.u64();
        e.dataReady = r.u64();
        e.retire = r.u64();
        sq.push_back(e);
    }

    taggedLoads.clear();
    uint64_t nTagged = r.u64();
    for (uint64_t i = 0; i < nTagged; ++i)
        taggedLoads.insert(r.u64());

    lastRetire = r.u64();
    lastIssue = r.u64();
    serializeUntil = r.u64();
    maxDone = r.u64();
    nRetired = r.u64();
    lastVl = r.u32();
    lastVlValid = r.b();
    forcedMispredict = r.b();
}

} // namespace xt910
