/**
 * @file
 * The macro-assembler: a label-based, type-safe builder API that
 * produces real RV64GCV machine code (plus XT-910 custom extensions)
 * into a flat memory image.
 *
 * Workloads, tests and examples author RISC-V programs through this
 * class; the functional simulator then fetches and decodes the produced
 * bytes exactly as hardware would. An auto-compression pass rewrites
 * eligible instructions to their RVC forms using iterative relaxation,
 * so programs get a realistic compressed-code fetch profile.
 */

#ifndef XT910_XASM_ASSEMBLER_H
#define XT910_XASM_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "isa/vtype.h"
#include "xasm/regs.h"

namespace xt910
{

/** Default load address for assembled programs. */
constexpr Addr defaultCodeBase = 0x8000'0000;

/** The output of Assembler::assemble(): a loadable flat image. */
struct Program
{
    Addr base = 0;                ///< load address of image[0]
    Addr entry = 0;               ///< initial PC
    std::vector<uint8_t> image;   ///< code + data bytes
    std::unordered_map<std::string, Addr> symbols;

    /** Address of @p name; fatal when undefined. */
    Addr symbol(const std::string &name) const;

    Addr end() const { return base + image.size(); }
};

/**
 * Decode a code-only image back to an instruction listing (for tests
 * and the objdump-style example). Stops at the first invalid word or
 * at @p stopAt when nonzero.
 */
std::vector<std::pair<Addr, DecodedInst>>
decodeImage(const Program &p, Addr stopAt = 0);

/** See file comment. */
class Assembler
{
  public:
    struct Options
    {
        bool compress = true;  ///< enable RVC auto-compression
    };

    explicit Assembler(Addr base = defaultCodeBase)
        : Assembler(base, Options{})
    {}
    Assembler(Addr base, Options opts);

    // ----------------------------------------------- labels and data
    /** Define @p name at the current position. */
    void label(const std::string &name);
    /** Pad with zero bytes to an @p bytes boundary. */
    void align(unsigned bytes);
    void byte(uint8_t v);
    void half(uint16_t v);
    void word(uint32_t v);
    void dword(uint64_t v);
    /** Reserve @p n zero bytes. */
    void zero(size_t n);
    /** Emit raw bytes. */
    void bytes(const std::vector<uint8_t> &v);

    // ------------------------------------------------ generic emits
    /** Emit a pre-built instruction. */
    void emit(const DecodedInst &di);
    /** Emit an instruction whose immediate is a label reference. */
    void emitRef(DecodedInst di, const std::string &target);

    // -------------------------------------------------- integer ALU
    void add(XReg rd, XReg rs1, XReg rs2);
    void sub(XReg rd, XReg rs1, XReg rs2);
    void sll(XReg rd, XReg rs1, XReg rs2);
    void slt(XReg rd, XReg rs1, XReg rs2);
    void sltu(XReg rd, XReg rs1, XReg rs2);
    void xor_(XReg rd, XReg rs1, XReg rs2);
    void srl(XReg rd, XReg rs1, XReg rs2);
    void sra(XReg rd, XReg rs1, XReg rs2);
    void or_(XReg rd, XReg rs1, XReg rs2);
    void and_(XReg rd, XReg rs1, XReg rs2);
    void addw(XReg rd, XReg rs1, XReg rs2);
    void subw(XReg rd, XReg rs1, XReg rs2);
    void sllw(XReg rd, XReg rs1, XReg rs2);
    void srlw(XReg rd, XReg rs1, XReg rs2);
    void sraw(XReg rd, XReg rs1, XReg rs2);
    void addi(XReg rd, XReg rs1, int64_t imm);
    void slti(XReg rd, XReg rs1, int64_t imm);
    void sltiu(XReg rd, XReg rs1, int64_t imm);
    void xori(XReg rd, XReg rs1, int64_t imm);
    void ori(XReg rd, XReg rs1, int64_t imm);
    void andi(XReg rd, XReg rs1, int64_t imm);
    void slli(XReg rd, XReg rs1, unsigned sh);
    void srli(XReg rd, XReg rs1, unsigned sh);
    void srai(XReg rd, XReg rs1, unsigned sh);
    void addiw(XReg rd, XReg rs1, int64_t imm);
    void slliw(XReg rd, XReg rs1, unsigned sh);
    void srliw(XReg rd, XReg rs1, unsigned sh);
    void sraiw(XReg rd, XReg rs1, unsigned sh);
    void lui(XReg rd, int64_t immShifted);
    void auipc(XReg rd, int64_t immShifted);

    // ------------------------------------------------------ mul/div
    void mul(XReg rd, XReg rs1, XReg rs2);
    void mulh(XReg rd, XReg rs1, XReg rs2);
    void mulhu(XReg rd, XReg rs1, XReg rs2);
    void mulhsu(XReg rd, XReg rs1, XReg rs2);
    void div(XReg rd, XReg rs1, XReg rs2);
    void divu(XReg rd, XReg rs1, XReg rs2);
    void rem(XReg rd, XReg rs1, XReg rs2);
    void remu(XReg rd, XReg rs1, XReg rs2);
    void mulw(XReg rd, XReg rs1, XReg rs2);
    void divw(XReg rd, XReg rs1, XReg rs2);
    void divuw(XReg rd, XReg rs1, XReg rs2);
    void remw(XReg rd, XReg rs1, XReg rs2);
    void remuw(XReg rd, XReg rs1, XReg rs2);

    // ------------------------------------------------------- memory
    void lb(XReg rd, XReg base, int64_t off);
    void lh(XReg rd, XReg base, int64_t off);
    void lw(XReg rd, XReg base, int64_t off);
    void ld(XReg rd, XReg base, int64_t off);
    void lbu(XReg rd, XReg base, int64_t off);
    void lhu(XReg rd, XReg base, int64_t off);
    void lwu(XReg rd, XReg base, int64_t off);
    void sb(XReg src, XReg base, int64_t off);
    void sh(XReg src, XReg base, int64_t off);
    void sw(XReg src, XReg base, int64_t off);
    void sd(XReg src, XReg base, int64_t off);

    // ------------------------------------------------------ control
    void beq(XReg rs1, XReg rs2, const std::string &target);
    void bne(XReg rs1, XReg rs2, const std::string &target);
    void blt(XReg rs1, XReg rs2, const std::string &target);
    void bge(XReg rs1, XReg rs2, const std::string &target);
    void bltu(XReg rs1, XReg rs2, const std::string &target);
    void bgeu(XReg rs1, XReg rs2, const std::string &target);
    void beqz(XReg rs1, const std::string &target);
    void bnez(XReg rs1, const std::string &target);
    void blez(XReg rs1, const std::string &target);
    void bgez(XReg rs1, const std::string &target);
    void bltz(XReg rs1, const std::string &target);
    void bgtz(XReg rs1, const std::string &target);
    void jal(XReg rd, const std::string &target);
    void j(const std::string &target);
    void jalr(XReg rd, XReg rs1, int64_t off = 0);
    void jr(XReg rs1);
    void call(const std::string &target);
    void ret();

    // --------------------------------------------------- system/CSR
    void ecall();
    void ebreak();
    void fence();
    void fence_i();
    void nop();
    void mret();
    void sret();
    void wfi();
    void sfence_vma(XReg rs1 = reg::zero, XReg rs2 = reg::zero);
    void csrrw(XReg rd, uint32_t csr, XReg rs1);
    void csrrs(XReg rd, uint32_t csr, XReg rs1);
    void csrrc(XReg rd, uint32_t csr, XReg rs1);
    void csrrwi(XReg rd, uint32_t csr, unsigned zimm);
    void csrr(XReg rd, uint32_t csr);
    void csrw(uint32_t csr, XReg rs1);

    // ------------------------------------------------------ atomics
    void lr_w(XReg rd, XReg addr);
    void lr_d(XReg rd, XReg addr);
    void sc_w(XReg rd, XReg src, XReg addr);
    void sc_d(XReg rd, XReg src, XReg addr);
    void amoadd_w(XReg rd, XReg src, XReg addr);
    void amoadd_d(XReg rd, XReg src, XReg addr);
    void amoswap_w(XReg rd, XReg src, XReg addr);
    void amoswap_d(XReg rd, XReg src, XReg addr);
    void amoor_d(XReg rd, XReg src, XReg addr);
    void amoand_d(XReg rd, XReg src, XReg addr);
    void amomax_d(XReg rd, XReg src, XReg addr);

    // ------------------------------------------------ floating point
    void flw(FReg rd, XReg base, int64_t off);
    void fld(FReg rd, XReg base, int64_t off);
    void fsw(FReg src, XReg base, int64_t off);
    void fsd(FReg src, XReg base, int64_t off);
    void fadd_s(FReg rd, FReg rs1, FReg rs2);
    void fsub_s(FReg rd, FReg rs1, FReg rs2);
    void fmul_s(FReg rd, FReg rs1, FReg rs2);
    void fdiv_s(FReg rd, FReg rs1, FReg rs2);
    void fadd_d(FReg rd, FReg rs1, FReg rs2);
    void fsub_d(FReg rd, FReg rs1, FReg rs2);
    void fmul_d(FReg rd, FReg rs1, FReg rs2);
    void fdiv_d(FReg rd, FReg rs1, FReg rs2);
    void fsqrt_d(FReg rd, FReg rs1);
    void fmin_s(FReg rd, FReg rs1, FReg rs2);
    void fmax_s(FReg rd, FReg rs1, FReg rs2);
    void fmin_d(FReg rd, FReg rs1, FReg rs2);
    void fmax_d(FReg rd, FReg rs1, FReg rs2);
    void fsgnj_s(FReg rd, FReg rs1, FReg rs2);
    void fmadd_d(FReg rd, FReg rs1, FReg rs2, FReg rs3);
    void fmsub_d(FReg rd, FReg rs1, FReg rs2, FReg rs3);
    void fnmadd_d(FReg rd, FReg rs1, FReg rs2, FReg rs3);
    void fmadd_s(FReg rd, FReg rs1, FReg rs2, FReg rs3);
    void fsgnj_d(FReg rd, FReg rs1, FReg rs2);
    void fmv_d(FReg rd, FReg rs1);
    void feq_s(XReg rd, FReg rs1, FReg rs2);
    void flt_s(XReg rd, FReg rs1, FReg rs2);
    void fle_s(XReg rd, FReg rs1, FReg rs2);
    void feq_d(XReg rd, FReg rs1, FReg rs2);
    void flt_d(XReg rd, FReg rs1, FReg rs2);
    void fle_d(XReg rd, FReg rs1, FReg rs2);
    void fclass_s(XReg rd, FReg rs1);
    void fclass_d(XReg rd, FReg rs1);
    void fcvt_d_l(FReg rd, XReg rs1);
    void fcvt_l_d(XReg rd, FReg rs1);
    void fcvt_d_w(FReg rd, XReg rs1);
    void fcvt_w_d(XReg rd, FReg rs1);
    void fcvt_wu_d(XReg rd, FReg rs1);
    void fcvt_lu_d(XReg rd, FReg rs1);
    void fcvt_w_s(XReg rd, FReg rs1);
    void fcvt_wu_s(XReg rd, FReg rs1);
    void fcvt_l_s(XReg rd, FReg rs1);
    void fcvt_lu_s(XReg rd, FReg rs1);
    void fcvt_s_w(FReg rd, XReg rs1);
    void fcvt_s_l(FReg rd, XReg rs1);
    void fcvt_s_d(FReg rd, FReg rs1);
    void fcvt_d_s(FReg rd, FReg rs1);
    void fmv_d_x(FReg rd, XReg rs1);
    void fmv_x_d(XReg rd, FReg rs1);
    void fmv_w_x(FReg rd, XReg rs1);
    void fmv_x_w(XReg rd, FReg rs1);

    // -------------------------------------------------------- vector
    void vsetvli(XReg rd, XReg avl, const VType &vt);
    void vsetvl(XReg rd, XReg avl, XReg vtypeReg);
    void vle(VReg vd, XReg base);
    void vse(VReg vs3, XReg base);
    void vlse(VReg vd, XReg base, XReg stride);
    void vsse(VReg vs3, XReg base, XReg stride);
    void vlxe(VReg vd, XReg base, VReg idx);
    void vsxe(VReg vs3, XReg base, VReg idx);
    void vadd_vv(VReg vd, VReg vs2, VReg vs1);
    void vadd_vx(VReg vd, VReg vs2, XReg rs1);
    void vadd_vi(VReg vd, VReg vs2, int64_t imm);
    void vsub_vv(VReg vd, VReg vs2, VReg vs1);
    void vand_vv(VReg vd, VReg vs2, VReg vs1);
    void vor_vv(VReg vd, VReg vs2, VReg vs1);
    void vxor_vv(VReg vd, VReg vs2, VReg vs1);
    void vsll_vi(VReg vd, VReg vs2, unsigned sh);
    void vsrl_vi(VReg vd, VReg vs2, unsigned sh);
    void vsra_vi(VReg vd, VReg vs2, unsigned sh);
    void vmin_vv(VReg vd, VReg vs2, VReg vs1);
    void vmax_vv(VReg vd, VReg vs2, VReg vs1);
    void vmul_vv(VReg vd, VReg vs2, VReg vs1);
    void vmul_vx(VReg vd, VReg vs2, XReg rs1);
    void vmacc_vv(VReg vd, VReg vs1, VReg vs2);
    void vmadd_vv(VReg vd, VReg vs1, VReg vs2);
    void vwmul_vv(VReg vd, VReg vs2, VReg vs1);
    void vwmacc_vv(VReg vd, VReg vs1, VReg vs2);
    void vdiv_vv(VReg vd, VReg vs2, VReg vs1);
    void vredsum_vs(VReg vd, VReg vs2, VReg vs1);
    void vredmax_vs(VReg vd, VReg vs2, VReg vs1);
    void vmseq_vv(VReg vd, VReg vs2, VReg vs1);
    void vmslt_vv(VReg vd, VReg vs2, VReg vs1);
    void vmerge_vvm(VReg vd, VReg vs2, VReg vs1);
    void vmv_v_v(VReg vd, VReg vs1);
    void vmv_v_x(VReg vd, XReg rs1);
    void vmv_v_i(VReg vd, int64_t imm);
    void vmv_x_s(XReg rd, VReg vs2);
    void vmv_s_x(VReg vd, XReg rs1);
    void vslideup_vi(VReg vd, VReg vs2, unsigned off);
    void vslidedown_vi(VReg vd, VReg vs2, unsigned off);
    void vfadd_vv(VReg vd, VReg vs2, VReg vs1);
    void vfsub_vv(VReg vd, VReg vs2, VReg vs1);
    void vfmul_vv(VReg vd, VReg vs2, VReg vs1);
    void vfmacc_vv(VReg vd, VReg vs1, VReg vs2);
    void vfmacc_vf(VReg vd, FReg rs1, VReg vs2);
    void vfdiv_vv(VReg vd, VReg vs2, VReg vs1);
    void vfredsum_vs(VReg vd, VReg vs2, VReg vs1);
    void vfmv_v_f(VReg vd, FReg rs1);
    void vfmv_f_s(FReg rd, VReg vs2);

    // --------------------------------- XT-910 custom extension (§VIII)
    void xt_lrb(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrbu(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrh(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrhu(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrw(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrwu(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lrd(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lurw(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_lurd(XReg rd, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_srb(XReg src, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_srh(XReg src, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_srw(XReg src, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_srd(XReg src, XReg base, XReg idx, unsigned sh2 = 0);
    void xt_addsl(XReg rd, XReg rs1, XReg rs2, unsigned sh2);
    void xt_ext(XReg rd, XReg rs1, unsigned msb, unsigned lsb);
    void xt_extu(XReg rd, XReg rs1, unsigned msb, unsigned lsb);
    void xt_ff0(XReg rd, XReg rs1);
    void xt_ff1(XReg rd, XReg rs1);
    void xt_rev(XReg rd, XReg rs1);
    void xt_tstnbz(XReg rd, XReg rs1);
    void xt_srri(XReg rd, XReg rs1, unsigned sh);
    void xt_mula(XReg rd, XReg rs1, XReg rs2);
    void xt_muls(XReg rd, XReg rs1, XReg rs2);
    void xt_mulah(XReg rd, XReg rs1, XReg rs2);
    void xt_mulsh(XReg rd, XReg rs1, XReg rs2);
    void xt_dcache_call();
    void xt_dcache_ciall();
    void xt_icache_iall();
    void xt_sync();
    void xt_tlb_iall();
    void xt_tlb_iasid(XReg asid);
    void xt_tlb_bcast(XReg va);

    // ------------------------------------------------------- pseudos
    /** Materialize an arbitrary 64-bit constant. */
    void li(XReg rd, int64_t value);
    void mv(XReg rd, XReg rs1);
    void not_(XReg rd, XReg rs1);
    void neg(XReg rd, XReg rs1);
    void seqz(XReg rd, XReg rs1);
    void snez(XReg rd, XReg rs1);
    void sextw(XReg rd, XReg rs1);
    /** Load the address of @p target (auipc + addi pair). */
    void la(XReg rd, const std::string &target);

    // ------------------------------------------------------ assembly
    /** Resolve labels, relax sizes, and produce the final image. */
    Program assemble();

    /** Number of items queued so far (instructions + data blobs). */
    size_t itemCount() const { return items.size(); }

  private:
    enum class RefKind : uint8_t { None, Branch, Jal, LoadAddr };

    struct Item
    {
        enum class Kind : uint8_t { Inst, Label, Data, Align } kind;
        DecodedInst di;
        RefKind ref = RefKind::None;
        std::string target;       // label reference
        std::vector<uint8_t> blob;
        unsigned alignTo = 0;
        std::string name;         // label definition
        unsigned size = 0;        // bytes, after relaxation
    };

    void pushInst(const DecodedInst &di);
    void pushRef(const DecodedInst &di, RefKind ref,
                 const std::string &target);
    void data(const void *p, size_t n);

    DecodedInst mkR(Opcode op, XReg rd, XReg rs1, XReg rs2) const;
    DecodedInst mkI(Opcode op, XReg rd, XReg rs1, int64_t imm) const;
    DecodedInst mkS(Opcode op, XReg src, XReg base, int64_t imm) const;
    DecodedInst mkVvv(Opcode op, VReg vd, VReg vs2, VReg vs1) const;

    Addr base;
    Options opts;
    std::vector<Item> items;
};

} // namespace xt910

#endif // XT910_XASM_ASSEMBLER_H
