/**
 * @file
 * Type-safe register handles for the macro-assembler. Using distinct
 * wrapper types for integer, FP and vector registers turns operand
 * mix-ups into compile errors.
 */

#ifndef XT910_XASM_REGS_H
#define XT910_XASM_REGS_H

#include "common/types.h"

namespace xt910
{

/** An integer (x) register operand. */
struct XReg
{
    RegIndex idx;
    constexpr bool operator==(const XReg &) const = default;
};

/** A floating-point (f) register operand. */
struct FReg
{
    RegIndex idx;
    constexpr bool operator==(const FReg &) const = default;
};

/** A vector (v) register operand. */
struct VReg
{
    RegIndex idx;
    constexpr bool operator==(const VReg &) const = default;
};

/** ABI register names, usable as `reg::a0`, `reg::sp`, `reg::fa0`... */
namespace reg
{

constexpr XReg x(unsigned i) { return XReg{RegIndex(i)}; }
constexpr FReg f(unsigned i) { return FReg{RegIndex(i)}; }
constexpr VReg v(unsigned i) { return VReg{RegIndex(i)}; }

constexpr XReg zero = x(0), ra = x(1), sp = x(2), gp = x(3), tp = x(4);
constexpr XReg t0 = x(5), t1 = x(6), t2 = x(7);
constexpr XReg s0 = x(8), s1 = x(9);
constexpr XReg a0 = x(10), a1 = x(11), a2 = x(12), a3 = x(13);
constexpr XReg a4 = x(14), a5 = x(15), a6 = x(16), a7 = x(17);
constexpr XReg s2 = x(18), s3 = x(19), s4 = x(20), s5 = x(21);
constexpr XReg s6 = x(22), s7 = x(23), s8 = x(24), s9 = x(25);
constexpr XReg s10 = x(26), s11 = x(27);
constexpr XReg t3 = x(28), t4 = x(29), t5 = x(30), t6 = x(31);

constexpr FReg ft0 = f(0), ft1 = f(1), ft2 = f(2), ft3 = f(3);
constexpr FReg ft4 = f(4), ft5 = f(5), ft6 = f(6), ft7 = f(7);
constexpr FReg fs0 = f(8), fs1 = f(9);
constexpr FReg fa0 = f(10), fa1 = f(11), fa2 = f(12), fa3 = f(13);
constexpr FReg fa4 = f(14), fa5 = f(15), fa6 = f(16), fa7 = f(17);
constexpr FReg fs2 = f(18), fs3 = f(19), fs4 = f(20), fs5 = f(21);

constexpr VReg v0 = v(0), v1 = v(1), v2 = v(2), v3 = v(3), v4 = v(4);
constexpr VReg v5 = v(5), v6 = v(6), v7 = v(7), v8 = v(8), v9 = v(9);
constexpr VReg v10 = v(10), v11 = v(11), v12 = v(12), v13 = v(13);
constexpr VReg v14 = v(14), v15 = v(15), v16 = v(16), v17 = v(17);

} // namespace reg

} // namespace xt910

#endif // XT910_XASM_REGS_H
