#include "xasm/assembler.h"

#include <cstring>

#include "common/bitutil.h"
#include "common/log.h"

namespace xt910
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        xt_fatal("undefined symbol: ", name);
    return it->second;
}

std::vector<std::pair<Addr, DecodedInst>>
decodeImage(const Program &p, Addr stopAt)
{
    std::vector<std::pair<Addr, DecodedInst>> out;
    Addr pc = p.base;
    while (pc + 1 < p.end() && (stopAt == 0 || pc < stopAt)) {
        size_t off = pc - p.base;
        uint32_t w = uint32_t(p.image[off]) | (uint32_t(p.image[off + 1]) << 8);
        if ((w & 3) == 3 && off + 3 < p.image.size())
            w |= (uint32_t(p.image[off + 2]) << 16) |
                 (uint32_t(p.image[off + 3]) << 24);
        DecodedInst di = decode(w);
        if (!di.valid())
            break;
        out.emplace_back(pc, di);
        pc += di.len;
    }
    return out;
}

Assembler::Assembler(Addr base_, Options opts_) : base(base_), opts(opts_)
{
    xt_assert(base % 4 == 0, "code base must be 4-byte aligned");
}

// ------------------------------------------------------------ plumbing

void
Assembler::pushInst(const DecodedInst &di)
{
    Item it;
    it.kind = Item::Kind::Inst;
    it.di = di;
    items.push_back(std::move(it));
}

void
Assembler::pushRef(const DecodedInst &di, RefKind ref,
                   const std::string &target)
{
    Item it;
    it.kind = Item::Kind::Inst;
    it.di = di;
    it.ref = ref;
    it.target = target;
    items.push_back(std::move(it));
}

void
Assembler::data(const void *p, size_t n)
{
    Item it;
    it.kind = Item::Kind::Data;
    it.blob.resize(n);
    std::memcpy(it.blob.data(), p, n);
    items.push_back(std::move(it));
}

void
Assembler::label(const std::string &name)
{
    Item it;
    it.kind = Item::Kind::Label;
    it.name = name;
    items.push_back(std::move(it));
}

void
Assembler::align(unsigned bytes)
{
    xt_assert(isPow2(bytes), "alignment must be a power of two");
    Item it;
    it.kind = Item::Kind::Align;
    it.alignTo = bytes;
    items.push_back(std::move(it));
}

void Assembler::byte(uint8_t v) { data(&v, 1); }
void Assembler::half(uint16_t v) { data(&v, 2); }
void Assembler::word(uint32_t v) { data(&v, 4); }
void Assembler::dword(uint64_t v) { data(&v, 8); }

void
Assembler::zero(size_t n)
{
    Item it;
    it.kind = Item::Kind::Data;
    it.blob.assign(n, 0);
    items.push_back(std::move(it));
}

void
Assembler::bytes(const std::vector<uint8_t> &v)
{
    data(v.data(), v.size());
}

void
Assembler::emit(const DecodedInst &di)
{
    pushInst(di);
}

void
Assembler::emitRef(DecodedInst di, const std::string &target)
{
    RefKind k = di.op == Opcode::JAL ? RefKind::Jal : RefKind::Branch;
    pushRef(di, k, target);
}

// ----------------------------------------------------- field builders

DecodedInst
Assembler::mkR(Opcode op, XReg rd, XReg rs1, XReg rs2) const
{
    DecodedInst di;
    di.op = op;
    di.rd = rd.idx;
    di.rs1 = rs1.idx;
    di.rs2 = rs2.idx;
    di.rdClass = di.rs1Class = di.rs2Class = RegClass::Int;
    return di;
}

DecodedInst
Assembler::mkI(Opcode op, XReg rd, XReg rs1, int64_t imm) const
{
    DecodedInst di;
    di.op = op;
    di.rd = rd.idx;
    di.rs1 = rs1.idx;
    di.imm = imm;
    di.rdClass = di.rs1Class = RegClass::Int;
    return di;
}

DecodedInst
Assembler::mkS(Opcode op, XReg src, XReg baseReg, int64_t imm) const
{
    DecodedInst di;
    di.op = op;
    di.rs1 = baseReg.idx;
    di.rs2 = src.idx;
    di.imm = imm;
    di.rs1Class = di.rs2Class = RegClass::Int;
    return di;
}

DecodedInst
Assembler::mkVvv(Opcode op, VReg vd, VReg vs2, VReg vs1) const
{
    DecodedInst di;
    di.op = op;
    di.rd = vd.idx;
    di.rs1 = vs1.idx;
    di.rs2 = vs2.idx;
    di.rdClass = di.rs1Class = di.rs2Class = RegClass::Vec;
    return di;
}

// --------------------------------------------------------- integer ALU

#define XT_R3(NAME, OP)                                                       \
    void Assembler::NAME(XReg rd, XReg rs1, XReg rs2)                         \
    {                                                                         \
        pushInst(mkR(Opcode::OP, rd, rs1, rs2));                              \
    }

XT_R3(add, ADD)
XT_R3(sub, SUB)
XT_R3(sll, SLL)
XT_R3(slt, SLT)
XT_R3(sltu, SLTU)
XT_R3(xor_, XOR)
XT_R3(srl, SRL)
XT_R3(sra, SRA)
XT_R3(or_, OR)
XT_R3(and_, AND)
XT_R3(addw, ADDW)
XT_R3(subw, SUBW)
XT_R3(sllw, SLLW)
XT_R3(srlw, SRLW)
XT_R3(sraw, SRAW)
XT_R3(mul, MUL)
XT_R3(mulh, MULH)
XT_R3(mulhu, MULHU)
XT_R3(mulhsu, MULHSU)
XT_R3(div, DIV)
XT_R3(divu, DIVU)
XT_R3(rem, REM)
XT_R3(remu, REMU)
XT_R3(mulw, MULW)
XT_R3(divw, DIVW)
XT_R3(divuw, DIVUW)
XT_R3(remw, REMW)
XT_R3(remuw, REMUW)
#undef XT_R3

#define XT_I2(NAME, OP)                                                       \
    void Assembler::NAME(XReg rd, XReg rs1, int64_t imm)                      \
    {                                                                         \
        pushInst(mkI(Opcode::OP, rd, rs1, imm));                              \
    }

XT_I2(addi, ADDI)
XT_I2(slti, SLTI)
XT_I2(sltiu, SLTIU)
XT_I2(xori, XORI)
XT_I2(ori, ORI)
XT_I2(andi, ANDI)
XT_I2(addiw, ADDIW)
#undef XT_I2

#define XT_SHIFT(NAME, OP)                                                    \
    void Assembler::NAME(XReg rd, XReg rs1, unsigned sh)                      \
    {                                                                         \
        pushInst(mkI(Opcode::OP, rd, rs1, int64_t(sh)));                      \
    }

XT_SHIFT(slli, SLLI)
XT_SHIFT(srli, SRLI)
XT_SHIFT(srai, SRAI)
XT_SHIFT(slliw, SLLIW)
XT_SHIFT(srliw, SRLIW)
XT_SHIFT(sraiw, SRAIW)
#undef XT_SHIFT

void
Assembler::lui(XReg rd, int64_t immShifted)
{
    DecodedInst di;
    di.op = Opcode::LUI;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    di.imm = immShifted;
    pushInst(di);
}

void
Assembler::auipc(XReg rd, int64_t immShifted)
{
    DecodedInst di;
    di.op = Opcode::AUIPC;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    di.imm = immShifted;
    pushInst(di);
}

// -------------------------------------------------------------- memory

#define XT_LOAD(NAME, OP)                                                     \
    void Assembler::NAME(XReg rd, XReg base_, int64_t off)                    \
    {                                                                         \
        pushInst(mkI(Opcode::OP, rd, base_, off));                            \
    }

XT_LOAD(lb, LB)
XT_LOAD(lh, LH)
XT_LOAD(lw, LW)
XT_LOAD(ld, LD)
XT_LOAD(lbu, LBU)
XT_LOAD(lhu, LHU)
XT_LOAD(lwu, LWU)
#undef XT_LOAD

#define XT_STORE(NAME, OP)                                                    \
    void Assembler::NAME(XReg src, XReg base_, int64_t off)                   \
    {                                                                         \
        pushInst(mkS(Opcode::OP, src, base_, off));                           \
    }

XT_STORE(sb, SB)
XT_STORE(sh, SH)
XT_STORE(sw, SW)
XT_STORE(sd, SD)
#undef XT_STORE

// ------------------------------------------------------------- control

#define XT_BRANCH(NAME, OP)                                                   \
    void Assembler::NAME(XReg rs1, XReg rs2, const std::string &target)       \
    {                                                                         \
        DecodedInst di = mkS(Opcode::OP, rs2, rs1, 0);                        \
        pushRef(di, RefKind::Branch, target);                                 \
    }

XT_BRANCH(beq, BEQ)
XT_BRANCH(bne, BNE)
XT_BRANCH(blt, BLT)
XT_BRANCH(bge, BGE)
XT_BRANCH(bltu, BLTU)
XT_BRANCH(bgeu, BGEU)
#undef XT_BRANCH

void Assembler::beqz(XReg rs1, const std::string &t) { beq(rs1, reg::zero, t); }
void Assembler::bnez(XReg rs1, const std::string &t) { bne(rs1, reg::zero, t); }
void Assembler::blez(XReg rs1, const std::string &t) { bge(reg::zero, rs1, t); }
void Assembler::bgez(XReg rs1, const std::string &t) { bge(rs1, reg::zero, t); }
void Assembler::bltz(XReg rs1, const std::string &t) { blt(rs1, reg::zero, t); }
void Assembler::bgtz(XReg rs1, const std::string &t) { blt(reg::zero, rs1, t); }

void
Assembler::jal(XReg rd, const std::string &target)
{
    DecodedInst di;
    di.op = Opcode::JAL;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    pushRef(di, RefKind::Jal, target);
}

void Assembler::j(const std::string &target) { jal(reg::zero, target); }
void Assembler::call(const std::string &target) { jal(reg::ra, target); }

void
Assembler::jalr(XReg rd, XReg rs1, int64_t off)
{
    pushInst(mkI(Opcode::JALR, rd, rs1, off));
}

void Assembler::jr(XReg rs1) { jalr(reg::zero, rs1, 0); }
void Assembler::ret() { jalr(reg::zero, reg::ra, 0); }

// ----------------------------------------------------------- system/CSR

namespace
{

DecodedInst
bare(Opcode op)
{
    DecodedInst di;
    di.op = op;
    return di;
}

} // namespace

void Assembler::ecall() { pushInst(bare(Opcode::ECALL)); }
void Assembler::ebreak() { pushInst(bare(Opcode::EBREAK)); }
void Assembler::fence() { pushInst(bare(Opcode::FENCE)); }
void Assembler::fence_i() { pushInst(bare(Opcode::FENCE_I)); }
void Assembler::nop() { addi(reg::zero, reg::zero, 0); }
void Assembler::mret() { pushInst(bare(Opcode::MRET)); }
void Assembler::sret() { pushInst(bare(Opcode::SRET)); }
void Assembler::wfi() { pushInst(bare(Opcode::WFI)); }

void
Assembler::sfence_vma(XReg rs1, XReg rs2)
{
    DecodedInst di;
    di.op = Opcode::SFENCE_VMA;
    di.rs1 = rs1.idx;
    di.rs2 = rs2.idx;
    di.rs1Class = di.rs2Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::csrrw(XReg rd, uint32_t csr, XReg rs1)
{
    pushInst(mkI(Opcode::CSRRW, rd, rs1, int64_t(csr)));
}

void
Assembler::csrrs(XReg rd, uint32_t csr, XReg rs1)
{
    pushInst(mkI(Opcode::CSRRS, rd, rs1, int64_t(csr)));
}

void
Assembler::csrrc(XReg rd, uint32_t csr, XReg rs1)
{
    pushInst(mkI(Opcode::CSRRC, rd, rs1, int64_t(csr)));
}

void
Assembler::csrrwi(XReg rd, uint32_t csr, unsigned zimm)
{
    DecodedInst di;
    di.op = Opcode::CSRRWI;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    di.rs1 = RegIndex(zimm & 0x1f);
    di.imm = int64_t(csr);
    pushInst(di);
}

void Assembler::csrr(XReg rd, uint32_t csr) { csrrs(rd, csr, reg::zero); }
void Assembler::csrw(uint32_t csr, XReg rs1) { csrrw(reg::zero, csr, rs1); }

// -------------------------------------------------------------- atomics

void
Assembler::lr_w(XReg rd, XReg addr)
{
    pushInst(mkI(Opcode::LR_W, rd, addr, 0));
}

void
Assembler::lr_d(XReg rd, XReg addr)
{
    pushInst(mkI(Opcode::LR_D, rd, addr, 0));
}

#define XT_AMO(NAME, OP)                                                      \
    void Assembler::NAME(XReg rd, XReg src, XReg addr)                        \
    {                                                                         \
        DecodedInst di = mkR(Opcode::OP, rd, addr, src);                      \
        pushInst(di);                                                         \
    }

XT_AMO(sc_w, SC_W)
XT_AMO(sc_d, SC_D)
XT_AMO(amoadd_w, AMOADD_W)
XT_AMO(amoadd_d, AMOADD_D)
XT_AMO(amoswap_w, AMOSWAP_W)
XT_AMO(amoswap_d, AMOSWAP_D)
XT_AMO(amoor_d, AMOOR_D)
XT_AMO(amoand_d, AMOAND_D)
XT_AMO(amomax_d, AMOMAX_D)
#undef XT_AMO

// -------------------------------------------------------- floating point

void
Assembler::flw(FReg rd, XReg base_, int64_t off)
{
    DecodedInst di = mkI(Opcode::FLW, XReg{rd.idx}, base_, off);
    di.rdClass = RegClass::Fp;
    pushInst(di);
}

void
Assembler::fld(FReg rd, XReg base_, int64_t off)
{
    DecodedInst di = mkI(Opcode::FLD, XReg{rd.idx}, base_, off);
    di.rdClass = RegClass::Fp;
    pushInst(di);
}

void
Assembler::fsw(FReg src, XReg base_, int64_t off)
{
    DecodedInst di = mkS(Opcode::FSW, XReg{src.idx}, base_, off);
    di.rs2Class = RegClass::Fp;
    pushInst(di);
}

void
Assembler::fsd(FReg src, XReg base_, int64_t off)
{
    DecodedInst di = mkS(Opcode::FSD, XReg{src.idx}, base_, off);
    di.rs2Class = RegClass::Fp;
    pushInst(di);
}

namespace
{

DecodedInst
fp3(Opcode op, FReg rd, FReg rs1, FReg rs2)
{
    DecodedInst di;
    di.op = op;
    di.rd = rd.idx;
    di.rs1 = rs1.idx;
    di.rs2 = rs2.idx;
    di.rdClass = di.rs1Class = di.rs2Class = RegClass::Fp;
    return di;
}

} // namespace

#define XT_FP3(NAME, OP)                                                      \
    void Assembler::NAME(FReg rd, FReg rs1, FReg rs2)                         \
    {                                                                         \
        pushInst(fp3(Opcode::OP, rd, rs1, rs2));                              \
    }

XT_FP3(fadd_s, FADD_S)
XT_FP3(fsub_s, FSUB_S)
XT_FP3(fmul_s, FMUL_S)
XT_FP3(fdiv_s, FDIV_S)
XT_FP3(fadd_d, FADD_D)
XT_FP3(fsub_d, FSUB_D)
XT_FP3(fmul_d, FMUL_D)
XT_FP3(fdiv_d, FDIV_D)
XT_FP3(fmin_s, FMIN_S)
XT_FP3(fmax_s, FMAX_S)
XT_FP3(fmin_d, FMIN_D)
XT_FP3(fmax_d, FMAX_D)
XT_FP3(fsgnj_s, FSGNJ_S)
XT_FP3(fsgnj_d, FSGNJ_D)
#undef XT_FP3

void Assembler::fmv_d(FReg rd, FReg rs1) { fsgnj_d(rd, rs1, rs1); }

void
Assembler::fsqrt_d(FReg rd, FReg rs1)
{
    DecodedInst di = fp3(Opcode::FSQRT_D, rd, rs1, FReg{0});
    di.rs2 = invalidReg;
    di.rs2Class = RegClass::None;
    pushInst(di);
}

#define XT_FP4(NAME, OP)                                                      \
    void Assembler::NAME(FReg rd, FReg rs1, FReg rs2, FReg rs3)               \
    {                                                                         \
        DecodedInst di = fp3(Opcode::OP, rd, rs1, rs2);                       \
        di.rs3 = rs3.idx;                                                     \
        di.rs3Class = RegClass::Fp;                                           \
        pushInst(di);                                                         \
    }

XT_FP4(fmadd_d, FMADD_D)
XT_FP4(fmsub_d, FMSUB_D)
XT_FP4(fnmadd_d, FNMADD_D)
XT_FP4(fmadd_s, FMADD_S)
#undef XT_FP4

#define XT_FCMP(NAME, OP)                                                     \
    void Assembler::NAME(XReg rd, FReg rs1, FReg rs2)                         \
    {                                                                         \
        DecodedInst di = fp3(Opcode::OP, FReg{rd.idx}, rs1, rs2);             \
        di.rdClass = RegClass::Int;                                           \
        pushInst(di);                                                         \
    }

XT_FCMP(feq_s, FEQ_S)
XT_FCMP(flt_s, FLT_S)
XT_FCMP(fle_s, FLE_S)
XT_FCMP(feq_d, FEQ_D)
XT_FCMP(flt_d, FLT_D)
XT_FCMP(fle_d, FLE_D)
#undef XT_FCMP

namespace
{

DecodedInst
cvt(Opcode op, RegIndex rd, RegClass rdc, RegIndex rs1, RegClass rs1c)
{
    DecodedInst di;
    di.op = op;
    di.rd = rd;
    di.rdClass = rdc;
    di.rs1 = rs1;
    di.rs1Class = rs1c;
    return di;
}

} // namespace

void
Assembler::fcvt_d_l(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FCVT_D_L, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fcvt_l_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_L_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_d_w(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FCVT_D_W, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fcvt_w_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_W_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_wu_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_WU_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_lu_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_LU_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_w_s(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_W_S, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_wu_s(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_WU_S, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_l_s(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_L_S, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_lu_s(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_LU_S, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_s_w(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FCVT_S_W, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fcvt_s_l(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FCVT_S_L, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fclass_s(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCLASS_S, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fclass_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCLASS_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_s_d(FReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_S_D, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fcvt_d_s(FReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FCVT_D_S, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fmv_d_x(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FMV_D_X, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fmv_x_d(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FMV_X_D, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

void
Assembler::fmv_w_x(FReg rd, XReg rs1)
{
    pushInst(cvt(Opcode::FMV_W_X, rd.idx, RegClass::Fp, rs1.idx,
                 RegClass::Int));
}

void
Assembler::fmv_x_w(XReg rd, FReg rs1)
{
    pushInst(cvt(Opcode::FMV_X_W, rd.idx, RegClass::Int, rs1.idx,
                 RegClass::Fp));
}

// ---------------------------------------------------------------- vector

void
Assembler::vsetvli(XReg rd, XReg avl, const VType &vt)
{
    DecodedInst di = mkI(Opcode::VSETVLI, rd, avl, encodeVtype(vt));
    pushInst(di);
}

void
Assembler::vsetvl(XReg rd, XReg avl, XReg vtypeReg)
{
    pushInst(mkR(Opcode::VSETVL, rd, avl, vtypeReg));
}

void
Assembler::vle(VReg vd, XReg base_)
{
    DecodedInst di;
    di.op = Opcode::VLE_V;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vse(VReg vs3, XReg base_)
{
    DecodedInst di;
    di.op = Opcode::VSE_V;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    di.rs3 = vs3.idx;
    di.rs3Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vlse(VReg vd, XReg base_, XReg stride)
{
    DecodedInst di;
    di.op = Opcode::VLSE_V;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    di.rs2 = stride.idx;
    di.rs2Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vsse(VReg vs3, XReg base_, XReg stride)
{
    DecodedInst di;
    di.op = Opcode::VSSE_V;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    di.rs2 = stride.idx;
    di.rs2Class = RegClass::Int;
    di.rs3 = vs3.idx;
    di.rs3Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vlxe(VReg vd, XReg base_, VReg idx)
{
    DecodedInst di;
    di.op = Opcode::VLXE_V;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    di.rs2 = idx.idx;
    di.rs2Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vsxe(VReg vs3, XReg base_, VReg idx)
{
    DecodedInst di;
    di.op = Opcode::VSXE_V;
    di.rs1 = base_.idx;
    di.rs1Class = RegClass::Int;
    di.rs2 = idx.idx;
    di.rs2Class = RegClass::Vec;
    di.rs3 = vs3.idx;
    di.rs3Class = RegClass::Vec;
    pushInst(di);
}

#define XT_VVV(NAME, OP)                                                      \
    void Assembler::NAME(VReg vd, VReg vs2, VReg vs1)                         \
    {                                                                         \
        pushInst(mkVvv(Opcode::OP, vd, vs2, vs1));                            \
    }

XT_VVV(vadd_vv, VADD_VV)
XT_VVV(vsub_vv, VSUB_VV)
XT_VVV(vand_vv, VAND_VV)
XT_VVV(vor_vv, VOR_VV)
XT_VVV(vxor_vv, VXOR_VV)
XT_VVV(vmin_vv, VMIN_VV)
XT_VVV(vmax_vv, VMAX_VV)
XT_VVV(vmul_vv, VMUL_VV)
XT_VVV(vdiv_vv, VDIV_VV)
XT_VVV(vredsum_vs, VREDSUM_VS)
XT_VVV(vredmax_vs, VREDMAX_VS)
XT_VVV(vmseq_vv, VMSEQ_VV)
XT_VVV(vmslt_vv, VMSLT_VV)
XT_VVV(vwmul_vv, VWMUL_VV)
XT_VVV(vfadd_vv, VFADD_VV)
XT_VVV(vfsub_vv, VFSUB_VV)
XT_VVV(vfmul_vv, VFMUL_VV)
XT_VVV(vfdiv_vv, VFDIV_VV)
XT_VVV(vfredsum_vs, VFREDSUM_VS)
#undef XT_VVV

// MAC-style ops name their operands (vd, vs1, vs2): vd += vs1 * vs2.
void
Assembler::vmacc_vv(VReg vd, VReg vs1, VReg vs2)
{
    pushInst(mkVvv(Opcode::VMACC_VV, vd, vs2, vs1));
}

void
Assembler::vmadd_vv(VReg vd, VReg vs1, VReg vs2)
{
    pushInst(mkVvv(Opcode::VMADD_VV, vd, vs2, vs1));
}

void
Assembler::vwmacc_vv(VReg vd, VReg vs1, VReg vs2)
{
    pushInst(mkVvv(Opcode::VWMACC_VV, vd, vs2, vs1));
}

void
Assembler::vfmacc_vv(VReg vd, VReg vs1, VReg vs2)
{
    pushInst(mkVvv(Opcode::VFMACC_VV, vd, vs2, vs1));
}

void
Assembler::vmerge_vvm(VReg vd, VReg vs2, VReg vs1)
{
    DecodedInst di = mkVvv(Opcode::VMERGE_VVM, vd, vs2, vs1);
    di.vm = false;
    pushInst(di);
}

void
Assembler::vadd_vx(VReg vd, VReg vs2, XReg rs1)
{
    DecodedInst di = mkVvv(Opcode::VADD_VX, vd, vs2, VReg{rs1.idx});
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vmul_vx(VReg vd, VReg vs2, XReg rs1)
{
    DecodedInst di = mkVvv(Opcode::VMUL_VX, vd, vs2, VReg{rs1.idx});
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vadd_vi(VReg vd, VReg vs2, int64_t imm)
{
    DecodedInst di;
    di.op = Opcode::VADD_VI;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs2 = vs2.idx;
    di.rs2Class = RegClass::Vec;
    di.imm = imm;
    pushInst(di);
}

namespace
{

DecodedInst
vi2(Opcode op, VReg vd, VReg vs2, int64_t imm)
{
    DecodedInst di;
    di.op = op;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs2 = vs2.idx;
    di.rs2Class = RegClass::Vec;
    di.imm = imm;
    return di;
}

} // namespace

void
Assembler::vsll_vi(VReg vd, VReg vs2, unsigned sh)
{
    pushInst(vi2(Opcode::VSLL_VI, vd, vs2, int64_t(sh)));
}

void
Assembler::vsrl_vi(VReg vd, VReg vs2, unsigned sh)
{
    pushInst(vi2(Opcode::VSRL_VI, vd, vs2, int64_t(sh)));
}

void
Assembler::vsra_vi(VReg vd, VReg vs2, unsigned sh)
{
    pushInst(vi2(Opcode::VSRA_VI, vd, vs2, int64_t(sh)));
}

void
Assembler::vslideup_vi(VReg vd, VReg vs2, unsigned off)
{
    pushInst(vi2(Opcode::VSLIDEUP_VI, vd, vs2, int64_t(off)));
}

void
Assembler::vslidedown_vi(VReg vd, VReg vs2, unsigned off)
{
    pushInst(vi2(Opcode::VSLIDEDOWN_VI, vd, vs2, int64_t(off)));
}

void
Assembler::vmv_v_v(VReg vd, VReg vs1)
{
    DecodedInst di;
    di.op = Opcode::VMV_V_V;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = vs1.idx;
    di.rs1Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vmv_v_x(VReg vd, XReg rs1)
{
    DecodedInst di;
    di.op = Opcode::VMV_V_X;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = rs1.idx;
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vmv_v_i(VReg vd, int64_t imm)
{
    DecodedInst di;
    di.op = Opcode::VMV_V_I;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.imm = imm;
    pushInst(di);
}

void
Assembler::vmv_x_s(XReg rd, VReg vs2)
{
    DecodedInst di;
    di.op = Opcode::VMV_X_S;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    di.rs2 = vs2.idx;
    di.rs2Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vmv_s_x(VReg vd, XReg rs1)
{
    DecodedInst di;
    di.op = Opcode::VMV_S_X;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = rs1.idx;
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::vfmacc_vf(VReg vd, FReg rs1, VReg vs2)
{
    DecodedInst di;
    di.op = Opcode::VFMACC_VF;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = rs1.idx;
    di.rs1Class = RegClass::Fp;
    di.rs2 = vs2.idx;
    di.rs2Class = RegClass::Vec;
    pushInst(di);
}

void
Assembler::vfmv_v_f(VReg vd, FReg rs1)
{
    DecodedInst di;
    di.op = Opcode::VFMV_V_F;
    di.rd = vd.idx;
    di.rdClass = RegClass::Vec;
    di.rs1 = rs1.idx;
    di.rs1Class = RegClass::Fp;
    pushInst(di);
}

void
Assembler::vfmv_f_s(FReg rd, VReg vs2)
{
    DecodedInst di;
    di.op = Opcode::VFMV_F_S;
    di.rd = rd.idx;
    di.rdClass = RegClass::Fp;
    di.rs2 = vs2.idx;
    di.rs2Class = RegClass::Vec;
    pushInst(di);
}

// --------------------------------------------------------- XT-910 custom

#define XT_IDXLD(NAME, OP)                                                    \
    void Assembler::NAME(XReg rd, XReg base_, XReg idx, unsigned sh2)         \
    {                                                                         \
        DecodedInst di = mkR(Opcode::OP, rd, base_, idx);                     \
        di.shamt2 = uint8_t(sh2);                                             \
        pushInst(di);                                                         \
    }

XT_IDXLD(xt_lrb, XT_LRB)
XT_IDXLD(xt_lrbu, XT_LRBU)
XT_IDXLD(xt_lrh, XT_LRH)
XT_IDXLD(xt_lrhu, XT_LRHU)
XT_IDXLD(xt_lrw, XT_LRW)
XT_IDXLD(xt_lrwu, XT_LRWU)
XT_IDXLD(xt_lrd, XT_LRD)
XT_IDXLD(xt_lurw, XT_LURW)
XT_IDXLD(xt_lurd, XT_LURD)
#undef XT_IDXLD

#define XT_IDXST(NAME, OP)                                                    \
    void Assembler::NAME(XReg src, XReg base_, XReg idx, unsigned sh2)        \
    {                                                                         \
        DecodedInst di;                                                       \
        di.op = Opcode::OP;                                                   \
        di.rs1 = base_.idx;                                                   \
        di.rs2 = idx.idx;                                                     \
        di.rs3 = src.idx;                                                     \
        di.rs1Class = di.rs2Class = di.rs3Class = RegClass::Int;              \
        di.shamt2 = uint8_t(sh2);                                             \
        pushInst(di);                                                         \
    }

XT_IDXST(xt_srb, XT_SRB)
XT_IDXST(xt_srh, XT_SRH)
XT_IDXST(xt_srw, XT_SRW)
XT_IDXST(xt_srd, XT_SRD)
#undef XT_IDXST

void
Assembler::xt_addsl(XReg rd, XReg rs1, XReg rs2, unsigned sh2)
{
    DecodedInst di = mkR(Opcode::XT_ADDSL, rd, rs1, rs2);
    di.shamt2 = uint8_t(sh2);
    pushInst(di);
}

void
Assembler::xt_ext(XReg rd, XReg rs1, unsigned msb, unsigned lsb)
{
    DecodedInst di = mkI(Opcode::XT_EXT, rd, rs1,
                         int64_t((msb << 6) | lsb));
    pushInst(di);
}

void
Assembler::xt_extu(XReg rd, XReg rs1, unsigned msb, unsigned lsb)
{
    DecodedInst di = mkI(Opcode::XT_EXTU, rd, rs1,
                         int64_t((msb << 6) | lsb));
    pushInst(di);
}

#define XT_UNARY(NAME, OP)                                                    \
    void Assembler::NAME(XReg rd, XReg rs1)                                   \
    {                                                                         \
        pushInst(mkI(Opcode::OP, rd, rs1, 0));                                \
    }

XT_UNARY(xt_ff0, XT_FF0)
XT_UNARY(xt_ff1, XT_FF1)
XT_UNARY(xt_rev, XT_REV)
XT_UNARY(xt_tstnbz, XT_TSTNBZ)
#undef XT_UNARY

void
Assembler::xt_srri(XReg rd, XReg rs1, unsigned sh)
{
    pushInst(mkI(Opcode::XT_SRRI, rd, rs1, int64_t(sh)));
}

#define XT_MAC(NAME, OP)                                                      \
    void Assembler::NAME(XReg rd, XReg rs1, XReg rs2)                         \
    {                                                                         \
        pushInst(mkR(Opcode::OP, rd, rs1, rs2));                              \
    }

XT_MAC(xt_mula, XT_MULA)
XT_MAC(xt_muls, XT_MULS)
XT_MAC(xt_mulah, XT_MULAH)
XT_MAC(xt_mulsh, XT_MULSH)
#undef XT_MAC

void Assembler::xt_dcache_call() { pushInst(bare(Opcode::XT_DCACHE_CALL)); }
void Assembler::xt_dcache_ciall() { pushInst(bare(Opcode::XT_DCACHE_CIALL)); }
void Assembler::xt_icache_iall() { pushInst(bare(Opcode::XT_ICACHE_IALL)); }
void Assembler::xt_sync() { pushInst(bare(Opcode::XT_SYNC)); }
void Assembler::xt_tlb_iall() { pushInst(bare(Opcode::XT_TLB_IALL)); }

void
Assembler::xt_tlb_iasid(XReg asid)
{
    DecodedInst di;
    di.op = Opcode::XT_TLB_IASID;
    di.rs1 = asid.idx;
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

void
Assembler::xt_tlb_bcast(XReg va)
{
    DecodedInst di;
    di.op = Opcode::XT_TLB_BCAST;
    di.rs1 = va.idx;
    di.rs1Class = RegClass::Int;
    pushInst(di);
}

// --------------------------------------------------------------- pseudos

void
Assembler::li(XReg rd, int64_t v)
{
    if (v >= -2048 && v <= 2047) {
        addi(rd, reg::zero, v);
        return;
    }
    if (v >= INT32_MIN && v <= INT32_MAX) {
        int64_t lo = sext(uint64_t(v) & 0xfff, 12);
        int64_t hi = int64_t(int32_t(uint32_t(v) - uint32_t(lo)));
        lui(rd, hi);
        if (lo != 0)
            addiw(rd, rd, lo);
        return;
    }
    // 64-bit: materialize the upper part recursively, then shift+or.
    int64_t lo = sext(uint64_t(v) & 0xfff, 12);
    li(rd, (v - lo) >> 12);
    slli(rd, rd, 12);
    if (lo != 0)
        addi(rd, rd, lo);
}

void Assembler::mv(XReg rd, XReg rs1) { addi(rd, rs1, 0); }
void Assembler::not_(XReg rd, XReg rs1) { xori(rd, rs1, -1); }
void Assembler::neg(XReg rd, XReg rs1) { sub(rd, reg::zero, rs1); }
void Assembler::seqz(XReg rd, XReg rs1) { sltiu(rd, rs1, 1); }
void Assembler::snez(XReg rd, XReg rs1) { sltu(rd, reg::zero, rs1); }
void Assembler::sextw(XReg rd, XReg rs1) { addiw(rd, rs1, 0); }

void
Assembler::la(XReg rd, const std::string &target)
{
    DecodedInst di;
    di.op = Opcode::AUIPC;
    di.rd = rd.idx;
    di.rdClass = RegClass::Int;
    pushRef(di, RefKind::LoadAddr, target);
}

// ------------------------------------------------------------- assembly

Program
Assembler::assemble()
{
    using K = Item::Kind;

    // Initial size estimates; instruction sizes only ever grow.
    for (Item &it : items) {
        switch (it.kind) {
          case K::Inst:
            if (it.ref == RefKind::None) {
                it.size =
                    (opts.compress && compressInst(it.di)) ? 2 : 4;
            } else if (it.ref == RefKind::LoadAddr) {
                it.size = 8;
            } else {
                const DecodedInst &di = it.di;
                bool maybe =
                    opts.compress &&
                    ((di.op == Opcode::JAL && di.rd == 0) ||
                     ((di.op == Opcode::BEQ || di.op == Opcode::BNE) &&
                      di.rs2 == 0 && di.rs1 >= 8 && di.rs1 <= 15));
                it.size = maybe ? 2 : 4;
            }
            break;
          case K::Label:
            it.size = 0;
            break;
          case K::Data:
            it.size = unsigned(it.blob.size());
            break;
          case K::Align:
            it.size = 0;
            break;
        }
    }

    std::unordered_map<std::string, Addr> syms;
    for (int iter = 0;; ++iter) {
        if (iter > 64)
            xt_fatal("assembler relaxation did not converge");
        bool changed = false;

        Addr pc = base;
        for (Item &it : items) {
            if (it.kind == K::Align) {
                unsigned pad =
                    unsigned((it.alignTo - pc % it.alignTo) % it.alignTo);
                if (pad != it.size) {
                    it.size = pad;
                    changed = true;
                }
            }
            if (it.kind == K::Label)
                syms[it.name] = pc;
            pc += it.size;
        }

        pc = base;
        for (Item &it : items) {
            if (it.kind == K::Inst && it.ref != RefKind::None) {
                auto s = syms.find(it.target);
                if (s == syms.end())
                    xt_fatal("undefined label: ", it.target);
                int64_t delta = int64_t(s->second) - int64_t(pc);
                if (it.ref == RefKind::Branch) {
                    if (delta < -4096 || delta > 4094)
                        xt_fatal("branch to ", it.target,
                                 " out of range: ", delta);
                    it.di.imm = delta;
                    if (it.size == 2 && !compressInst(it.di)) {
                        it.size = 4;
                        changed = true;
                    }
                } else if (it.ref == RefKind::Jal) {
                    if (delta < -(1 << 20) || delta >= (1 << 20))
                        xt_fatal("jump to ", it.target,
                                 " out of range: ", delta);
                    it.di.imm = delta;
                    if (it.size == 2 && !compressInst(it.di)) {
                        it.size = 4;
                        changed = true;
                    }
                } else { // LoadAddr: fixed 8 bytes
                    it.di.imm = delta;
                }
            }
            pc += it.size;
        }

        if (!changed)
            break;
    }

    // Final emission.
    Program p;
    p.base = base;
    Addr pc = base;
    auto put16 = [&](uint16_t v) {
        p.image.push_back(uint8_t(v));
        p.image.push_back(uint8_t(v >> 8));
    };
    auto put32 = [&](uint32_t v) {
        put16(uint16_t(v));
        put16(uint16_t(v >> 16));
    };
    for (Item &it : items) {
        switch (it.kind) {
          case K::Inst:
            if (it.ref == RefKind::LoadAddr) {
                int64_t delta = it.di.imm;
                int64_t hi = ((delta + 0x800) >> 12) << 12;
                int64_t lo = delta - hi;
                DecodedInst au = it.di;
                au.imm = hi;
                put32(encode(au));
                DecodedInst ad;
                ad.op = Opcode::ADDI;
                ad.rd = it.di.rd;
                ad.rs1 = it.di.rd;
                ad.imm = lo;
                put32(encode(ad));
            } else if (it.size == 2) {
                auto c = compressInst(it.di);
                xt_assert(c.has_value(), "lost compressibility");
                put16(*c);
            } else {
                put32(encode(it.di));
            }
            break;
          case K::Label:
            break;
          case K::Data:
            p.image.insert(p.image.end(), it.blob.begin(),
                           it.blob.end());
            break;
          case K::Align:
            p.image.insert(p.image.end(), it.size, 0);
            break;
        }
        pc += it.size;
    }

    p.symbols = std::move(syms);
    auto e = p.symbols.find("_start");
    p.entry = e != p.symbols.end() ? e->second : base;
    return p;
}

} // namespace xt910
