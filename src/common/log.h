/**
 * @file
 * Minimal gem5-flavoured logging: panic() for model bugs, fatal() for
 * user/configuration errors, warn()/inform() for status messages.
 */

#ifndef XT910_COMMON_LOG_H
#define XT910_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace xt910
{

namespace log_detail
{

/** Format the variadic tail into one string using ostream insertion. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace log_detail

/** Abort: something happened that indicates a bug in the model itself. */
#define xt_panic(...)                                                         \
    ::xt910::log_detail::panicImpl(__FILE__, __LINE__,                        \
                                   ::xt910::log_detail::concat(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user/config error. */
#define xt_fatal(...)                                                         \
    ::xt910::log_detail::fatalImpl(__FILE__, __LINE__,                        \
                                   ::xt910::log_detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable behaviour. */
#define xt_warn(...)                                                          \
    ::xt910::log_detail::warnImpl(::xt910::log_detail::concat(__VA_ARGS__))

/** Informational status message. */
#define xt_inform(...)                                                        \
    ::xt910::log_detail::informImpl(::xt910::log_detail::concat(__VA_ARGS__))

/** Assert that holds in release builds too; panics with a message. */
#define xt_assert(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond))                                                          \
            xt_panic("assertion failed: " #cond " ", __VA_ARGS__);            \
    } while (0)

} // namespace xt910

#endif // XT910_COMMON_LOG_H
