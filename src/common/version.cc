#include "common/version.h"

#ifndef XT910_GIT_DESCRIBE
#define XT910_GIT_DESCRIBE "unknown"
#endif

namespace xt910
{

const char *
gitDescribe()
{
    return XT910_GIT_DESCRIBE;
}

std::string
buildInfo(const std::string &tool)
{
    return tool + " " + XT910_GIT_DESCRIBE + " (result schema v" +
           std::to_string(resultSchemaVersion) + ")";
}

} // namespace xt910
