/**
 * @file
 * Fundamental scalar types and small enums shared by every subsystem.
 */

#ifndef XT910_COMMON_TYPES_H
#define XT910_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace xt910
{

/** A (virtual or physical) memory address. */
using Addr = uint64_t;

/** A simulation cycle number. */
using Cycle = uint64_t;

/** Architectural or physical register index. */
using RegIndex = uint16_t;

/** Invalid/unassigned register index sentinel. */
constexpr RegIndex invalidReg = 0xffff;

/** Address space identifier (the paper widens this to 16 bits, §V.E). */
using Asid = uint16_t;

/** Hart (hardware thread / core) identifier. */
using HartId = uint32_t;

/** Bytes per cache line throughout the model. */
constexpr unsigned cacheLineBytes = 64;

/** Log2 of the cache line size. */
constexpr unsigned cacheLineShift = 6;

/** Align an address down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~Addr(cacheLineBytes - 1);
}

/** RISC-V privilege modes supported by XT-910 (Fig. 1 of the paper). */
enum class PrivMode : uint8_t { User = 0, Supervisor = 1, Machine = 3 };

/**
 * Register file class. XT-910 renames scalar integer, floating point and
 * vector registers independently (§IV).
 */
enum class RegClass : uint8_t { Int, Fp, Vec, None };

/** Human-readable name of a register class. */
const char *regClassName(RegClass rc);

} // namespace xt910

#endif // XT910_COMMON_TYPES_H
