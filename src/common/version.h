/**
 * @file
 * Build identity for the CLI tools and the xt910d service: the git
 * describe string captured at configure time plus the result-schema
 * version. Service logs, the daemon's /v1/version endpoint, and every
 * tool's --version flag report this so a stats artifact can always be
 * traced back to the binary that produced it.
 */

#ifndef XT910_COMMON_VERSION_H
#define XT910_COMMON_VERSION_H

#include <cstdint>
#include <string>

namespace xt910
{

/**
 * Version of the derived-result schema: the config-hash input set
 * (snap::configHash) together with the stats-JSON document layout.
 * It is part of every result-cache key, so bump it whenever either
 * changes incompatibly — stale cache entries then simply stop
 * matching instead of serving wrong bytes.
 */
constexpr uint32_t resultSchemaVersion = 1;

/** `git describe --always --dirty` at configure time ("unknown" when
 *  the build tree had no git metadata). */
const char *gitDescribe();

/** One-line build identity: "<tool> <git> (result schema v1)". */
std::string buildInfo(const std::string &tool);

} // namespace xt910

#endif // XT910_COMMON_VERSION_H
