#include "common/types.h"

namespace xt910
{

const char *
regClassName(RegClass rc)
{
    switch (rc) {
      case RegClass::Int: return "int";
      case RegClass::Fp: return "fp";
      case RegClass::Vec: return "vec";
      case RegClass::None: return "none";
    }
    return "?";
}

} // namespace xt910
