/**
 * @file
 * Deterministic xorshift RNG. No simulation component may use host
 * randomness; everything draws from a seeded Xorshift64 so runs are
 * bit-reproducible.
 */

#ifndef XT910_COMMON_RANDOM_H
#define XT910_COMMON_RANDOM_H

#include <cstdint>

namespace xt910
{

/** Marsaglia xorshift64* generator. */
class Xorshift64
{
  public:
    explicit Xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state;
};

} // namespace xt910

#endif // XT910_COMMON_RANDOM_H
