/**
 * @file
 * Compile-time-gated hot-path section profiling. Built with
 * -DXT910_PROFILE=ON the XT_PROF_SCOPE() markers in the timing model
 * record per-section TSC cycles and call counts; xt910-run
 * --profile-hot prints the report. In default builds every marker
 * compiles to nothing, so the hot path carries zero overhead.
 *
 * The timer is the raw x86 TSC (or steady_clock elsewhere): the
 * sections are µs-scale aggregates for "where do host cycles go in
 * consume()", not a calibrated clock.
 */

#ifndef XT910_COMMON_PROFILE_H
#define XT910_COMMON_PROFILE_H

#include <cstdint>

#ifdef XT910_PROFILE

#include <ostream>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace xt910::prof
{

inline uint64_t
now()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return uint64_t(std::chrono::steady_clock::now()
                        .time_since_epoch()
                        .count());
#endif
}

enum Section : unsigned
{
    Frontend,     ///< fetch/loop-buffer/decode gate
    Rename,       ///< window stalls + rename gate
    Issue,        ///< IQ admit, port probe/book, issue gate
    Execute,      ///< execute switch incl. memory-system calls
    Retire,       ///< retire gate, ROB/top-down bookkeeping
    BlockConsume, ///< whole consumeBlock() spans (contains the two below)
    SimpleSlot,   ///< precomputed single-µop fast path per record
    SlowSlot,     ///< full consume walk per record (contains the five above)
    NumSections
};

struct SectionStats
{
    uint64_t ticks = 0;
    uint64_t calls = 0;
};

inline SectionStats sections[NumSections];

struct Scope
{
    explicit Scope(Section s_) : s(s_), t0(now()) {}
    ~Scope()
    {
        sections[s].ticks += now() - t0;
        ++sections[s].calls;
    }
    Section s;
    uint64_t t0;
};

inline void
report(std::ostream &os)
{
    static const char *names[NumSections] = {
        "frontend",      "rename",     "issue",    "execute", "retire",
        "block-consume", "simple-slot", "slow-slot"};
    // Percentages are over the five disjoint stage sections only: the
    // block-consume/slot sections nest around them (inclusive timing),
    // so adding them in would double-count.
    uint64_t total = 0;
    for (unsigned i = 0; i <= Retire; ++i)
        total += sections[i].ticks;
    os << "hot-path profile (tsc ticks):\n";
    for (unsigned i = 0; i < NumSections; ++i) {
        const SectionStats &ss = sections[i];
        os << "  " << names[i] << ": " << ss.ticks << " ticks, "
           << ss.calls << " calls";
        if (total && i <= Retire)
            os << " (" << (ss.ticks * 1000 / total) / 10.0 << "%)";
        os << "\n";
    }
}

} // namespace xt910::prof

#define XT_PROF_SCOPE(sec) \
    ::xt910::prof::Scope xtProfScope##sec(::xt910::prof::sec)
#define XT_PROF_ENABLED 1

#else // !XT910_PROFILE

#define XT_PROF_SCOPE(sec) \
    do {                   \
    } while (0)
#define XT_PROF_ENABLED 0

#endif // XT910_PROFILE

#endif // XT910_COMMON_PROFILE_H
