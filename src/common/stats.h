/**
 * @file
 * A tiny statistics package: named scalar counters grouped per component,
 * dumpable as a text report. Components own a StatGroup; counters register
 * themselves on construction, so declaring one is a single line.
 */

#ifndef XT910_COMMON_STATS_H
#define XT910_COMMON_STATS_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace xt910
{

class StatGroup;

/** A monotonically increasing (or assignable) scalar statistic. */
class Counter
{
  public:
    /** Register a counter named @p name with description @p desc. */
    Counter(StatGroup &group, std::string name, std::string desc);

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(uint64_t v) { _value += v; return *this; }
    void set(uint64_t v) { _value = v; }
    uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    void reset() { _value = 0; }

  private:
    std::string _name;
    std::string _desc;
    uint64_t _value = 0;
};

/**
 * A named collection of counters. Components embed a StatGroup and
 * declare Counter members initialized from it.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    // Counters hold pointers into this group; neither may be copied/moved.
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Called by Counter's constructor. */
    void add(Counter *c) { _counters.push_back(c); }

    /** Dump "group.counter value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Dump this group as a JSON object of counter values:
     * {"hits": 12, "misses": 3}. No trailing newline.
     */
    void dumpJson(std::ostream &os) const;

    /** Zero every counter in the group. */
    void resetAll();

    const std::string &name() const { return _name; }
    const std::vector<Counter *> &counters() const { return _counters; }

    /** Look up a counter by name; nullptr when absent. */
    const Counter *find(const std::string &name) const;

    /** Serialize every counter (name + value) for a checkpoint. */
    void snapSave(class SnapWriter &w) const;

    /**
     * Restore counter values. The counter list must match the saved
     * one exactly (same names, same registration order) — a mismatch
     * throws SnapError, since it means the snapshot was taken by a
     * different build or configuration.
     */
    void snapLoad(class SnapReader &r);

  private:
    std::string _name;
    std::vector<Counter *> _counters;
};

/**
 * Deterministic multi-group text dump: groups sorted by name (counter
 * order within a group stays registration order, which is stable).
 */
void dumpStatsSorted(std::ostream &os,
                     std::vector<const StatGroup *> groups);

/**
 * Hierarchical JSON dump over many groups. Dotted group names become
 * nested objects ("core0.bp" -> {"core0": {"bp": {...}}}) and counters
 * are the leaves. Groups are sorted by name so output is
 * deterministic. With @p pretty the document is indented; otherwise it
 * is emitted on a single line (JSONL-friendly). No trailing newline.
 */
void dumpStatsJson(std::ostream &os,
                   std::vector<const StatGroup *> groups,
                   bool pretty = true);

} // namespace xt910

#endif // XT910_COMMON_STATS_H
