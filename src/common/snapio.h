/**
 * @file
 * Binary serialization primitives for the snapshot subsystem: a
 * little-endian byte-buffer writer/reader pair with hard bounds
 * checking, the FNV-1a checksum used for per-section integrity, and
 * crash-safe file helpers (atomic write-rename, so a process killed
 * mid-checkpoint never leaves a corrupt snapshot under the final name).
 *
 * Every component that can be checkpointed implements
 *
 *   void snapSave(SnapWriter &w) const;
 *   void snapLoad(SnapReader &r);
 *
 * against these primitives. Errors — truncated input, a geometry or
 * name mismatch against the live configuration — throw SnapError, and
 * restore paths treat any SnapError as "refuse the snapshot", never as
 * partially-applied state.
 */

#ifndef XT910_COMMON_SNAPIO_H
#define XT910_COMMON_SNAPIO_H

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace xt910
{

/** Any malformed-snapshot or config-mismatch condition. */
class SnapError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** FNV-1a over @p n bytes (the per-section checksum). */
inline uint64_t
fnv1a(const void *data, size_t n,
      uint64_t seed = 0xcbf29ce484222325ull)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Word-at-a-time FNV-1a variant: feeds 8-byte little-endian chunks
 * (zero-padded tail) through the same xor/multiply step. Not
 * byte-compatible with fnv1a(), but ~8x fewer sequential multiplies —
 * the byte-serial dependency chain of plain FNV costs several
 * milliseconds per multi-megabyte snapshot section, which dominates
 * sampled-simulation capture. Used for snapshot section checksums
 * (format v3).
 */
inline uint64_t
fnv1aWords(const void *data, size_t n,
           uint64_t seed = 0xcbf29ce484222325ull)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t w;
        std::memcpy(&w, p + i, 8);
        h ^= w;
        h *= 0x100000001b3ull;
    }
    if (i < n) {
        uint64_t w = 0;
        std::memcpy(&w, p + i, n - i);
        h ^= w;
        h *= 0x100000001b3ull;
    }
    // Fold the length in so "abc" and "abc\0" (padded) differ.
    h ^= uint64_t(n);
    h *= 0x100000001b3ull;
    return h;
}

/** Append-only little-endian byte buffer. */
class SnapWriter
{
  public:
    /** Pre-grow for @p n *additional* bytes (snapshot sections know
     *  their payload size up front; this removes the doubling
     *  reallocs on multi-megabyte memory images). */
    void reserve(size_t n) { buf.reserve(buf.size() + n); }

    void
    bytes(const void *data, size_t n)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    void u8(uint8_t v) { buf.push_back(v); }

    void
    u16(uint16_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(uint16_t(v));
        u16(uint16_t(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }

    void i64(int64_t v) { u64(uint64_t(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<uint8_t> &data() const { return buf; }
    size_t size() const { return buf.size(); }

    /** Move the buffer out (the writer is empty afterwards). */
    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    std::vector<uint8_t> buf;
};

/** Bounds-checked reader over a byte span; throws SnapError on
 *  underrun or malformed values — it never reads past the end. */
class SnapReader
{
  public:
    SnapReader(const uint8_t *data, size_t n) : p(data), end(data + n) {}

    void
    bytes(void *out, size_t n)
    {
        need(n);
        std::memcpy(out, p, n);
        p += n;
    }

    uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        return uint16_t(lo | (uint16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }

    int64_t i64() { return int64_t(u64()); }

    bool
    b()
    {
        uint8_t v = u8();
        if (v > 1)
            throw SnapError("corrupt snapshot: bad bool encoding");
        return v != 0;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), size_t(n));
        p += n;
        return s;
    }

    size_t remaining() const { return size_t(end - p); }

    /** Advance past @p n bytes without reading them. */
    void
    skip(size_t n)
    {
        need(n);
        p += n;
    }

    /** Assert the payload was consumed exactly (catches section-layout
     *  drift between writer and reader versions). */
    void
    expectEnd(const char *what)
    {
        if (p != end)
            throw SnapError(std::string("snapshot section '") + what +
                            "' has " + std::to_string(remaining()) +
                            " unconsumed bytes (format mismatch)");
    }

  private:
    void
    need(size_t n)
    {
        if (size_t(end - p) < n)
            throw SnapError("corrupt snapshot: truncated data");
    }

    const uint8_t *p;
    const uint8_t *end;
};

/**
 * Read a whole file; throws SnapError when it cannot be opened or
 * read.
 */
std::vector<uint8_t> snapReadFile(const std::string &path);

/**
 * Crash-safe whole-file write: the bytes land in @p path + ".tmp"
 * first and are moved over @p path with rename(2), which is atomic on
 * POSIX — a reader (or a crash) either sees the complete old file or
 * the complete new one. Throws SnapError on any I/O failure, removing
 * the temporary.
 */
void snapWriteFileAtomic(const std::string &path, const void *data,
                         size_t n);

} // namespace xt910

#endif // XT910_COMMON_SNAPIO_H
