/**
 * @file
 * The run farm: a minimal work-queue thread pool for executing
 * independent simulations concurrently. Every simulated run owns its
 * own System/Iss/MemSystem and draws randomness only from seeded
 * Xorshift64 generators, so results are bitwise-identical regardless
 * of the worker count — parallelism changes wall-clock time, never
 * simulation output. Callers that merge per-run results must do so in
 * submission order (see FaultCampaign) to keep aggregate output
 * deterministic too.
 *
 * Job-count policy, everywhere a farm is used (benches, campaigns,
 * xt910-run): an explicit request (--jobs) wins, then the XT910_JOBS
 * environment variable, then the caller's default.
 */

#ifndef XT910_COMMON_PARALLEL_H
#define XT910_COMMON_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace xt910
{

/** Host parallelism available to the farm (never 0). */
inline unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

/**
 * Resolve a worker count: @p requested when nonzero, else the
 * XT910_JOBS environment variable when set and positive, else
 * @p fallback (itself resolving 0 to hardwareJobs()).
 *
 * A set-but-malformed XT910_JOBS (non-numeric, zero, negative, or
 * trailing garbage) throws std::invalid_argument instead of silently
 * falling back — a typo'd job count must not quietly serialize a
 * campaign. An empty value counts as unset (shells export empty
 * variables all the time).
 */
inline unsigned
resolveJobs(unsigned requested, unsigned fallback = 1)
{
    if (requested)
        return requested;
    const char *env = std::getenv("XT910_JOBS");
    if (env && *env) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        // strtol tolerates leading whitespace and '+'; a worker count
        // must be plain digits, so treat anything else as a typo.
        if (!std::isdigit(static_cast<unsigned char>(*env)) ||
            end == env || *end != '\0' || v <= 0 ||
            v > long(std::numeric_limits<unsigned>::max())) {
            throw std::invalid_argument(
                std::string("XT910_JOBS='") + env +
                "' is not a positive worker count");
        }
        return unsigned(v);
    }
    return fallback ? fallback : hardwareJobs();
}

/**
 * Execute fn(i) for every i in [0, n) on up to @p jobs worker threads.
 * Indices are claimed from a shared atomic counter, so the assignment
 * of index to thread is nondeterministic — @p fn must only write
 * per-index state (its slot of a results vector) or take a lock.
 * With jobs <= 1 (or n <= 1) everything runs inline on the caller's
 * thread in index order. The first exception thrown by any index is
 * rethrown on the caller's thread after all workers join.
 */
template <typename Fn>
void
parallelFor(size_t n, unsigned jobs, Fn &&fn)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    unsigned workers = unsigned(std::min<size_t>(jobs, n));
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errLock;
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

// ---------------------------------------------------------------------
// Hardened farm: per-job wall-clock timeouts, bounded retry with
// exponential backoff, and partial-result salvage. One crashed or hung
// job must never take down a whole campaign — it gets a status entry,
// the other jobs complete normally.
// ---------------------------------------------------------------------

/** Thrown by a job that noticed its deadline passed (cooperative:
 *  worker threads cannot be killed, so jobs poll JobContext). */
class FarmTimeout : public std::runtime_error
{
  public:
    explicit FarmTimeout(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** What became of one farm job, in submission order. */
enum class JobStatus : uint8_t
{
    Ok,       ///< completed (possibly after retries)
    Failed,   ///< exhausted retries on exceptions
    TimedOut, ///< exhausted retries on deadline overruns
};

inline const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "FAILED";
      case JobStatus::TimedOut: return "TIMEOUT";
    }
    return "?";
}

/** Per-job outcome record returned by runHardened. */
struct JobReport
{
    JobStatus status = JobStatus::Ok;
    unsigned attempts = 0;    ///< total attempts made (>= 1)
    std::string error;        ///< last failure's what() ("" when Ok)
};

/** Retry/timeout policy for runHardened. */
struct FarmPolicy
{
    /** Per-attempt wall-clock budget in seconds; 0 disables. */
    double timeoutSecs = 0.0;
    /** Retries after the first failed attempt. */
    unsigned retries = 1;
    /** First retry delay; doubles per subsequent retry. 0 disables. */
    unsigned backoffMs = 50;
};

/**
 * Deadline handle passed to every attempt. Long-running jobs poll
 * expired() (cheaply, e.g. every few thousand simulated instructions)
 * and throw FarmTimeout — or call checkDeadline() which does both.
 */
class JobContext
{
  public:
    JobContext(double timeoutSecs, unsigned attempt_)
        : attempt(attempt_), hasDeadline(timeoutSecs > 0)
    {
        if (hasDeadline)
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(timeoutSecs));
    }

    bool
    expired() const
    {
        return hasDeadline &&
               std::chrono::steady_clock::now() >= deadline;
    }

    void
    checkDeadline() const
    {
        if (expired())
            throw FarmTimeout("job exceeded its wall-clock budget");
    }

    /** Which attempt this is (0 = first try). */
    const unsigned attempt;

  private:
    bool hasDeadline;
    std::chrono::steady_clock::time_point deadline;
};

/**
 * Like parallelFor, but each job is isolated: fn(i, ctx) may throw (or
 * overrun its deadline and throw FarmTimeout via ctx.checkDeadline())
 * without affecting any other index — the failed attempt is retried up
 * to policy.retries times with exponential backoff, and the final
 * outcome lands in the returned report vector (submission order).
 * Unlike parallelFor, exceptions are never rethrown: inspect the
 * reports. @p fn must make each attempt self-contained (rebuild its
 * System, or restore from a checkpoint) since a failed attempt's
 * partial state is abandoned.
 */
template <typename Fn>
std::vector<JobReport>
runHardened(size_t n, unsigned jobs, const FarmPolicy &policy, Fn &&fn)
{
    std::vector<JobReport> reports(n);
    parallelFor(n, jobs, [&](size_t i) {
        JobReport &rep = reports[i];
        for (unsigned attempt = 0;; ++attempt) {
            ++rep.attempts;
            try {
                JobContext ctx(policy.timeoutSecs, attempt);
                fn(i, ctx);
                rep.status = JobStatus::Ok;
                rep.error.clear();
                return;
            } catch (const FarmTimeout &e) {
                rep.status = JobStatus::TimedOut;
                rep.error = e.what();
            } catch (const std::exception &e) {
                rep.status = JobStatus::Failed;
                rep.error = e.what();
            } catch (...) {
                rep.status = JobStatus::Failed;
                rep.error = "unknown exception";
            }
            if (attempt >= policy.retries)
                return;
            if (policy.backoffMs) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    policy.backoffMs << attempt));
            }
        }
    });
    return reports;
}

} // namespace xt910

#endif // XT910_COMMON_PARALLEL_H
