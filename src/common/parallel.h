/**
 * @file
 * The run farm: a minimal work-queue thread pool for executing
 * independent simulations concurrently. Every simulated run owns its
 * own System/Iss/MemSystem and draws randomness only from seeded
 * Xorshift64 generators, so results are bitwise-identical regardless
 * of the worker count — parallelism changes wall-clock time, never
 * simulation output. Callers that merge per-run results must do so in
 * submission order (see FaultCampaign) to keep aggregate output
 * deterministic too.
 *
 * Job-count policy, everywhere a farm is used (benches, campaigns,
 * xt910-run): an explicit request (--jobs) wins, then the XT910_JOBS
 * environment variable, then the caller's default.
 */

#ifndef XT910_COMMON_PARALLEL_H
#define XT910_COMMON_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace xt910
{

/** Host parallelism available to the farm (never 0). */
inline unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

/**
 * Resolve a worker count: @p requested when nonzero, else the
 * XT910_JOBS environment variable when set and positive, else
 * @p fallback (itself resolving 0 to hardwareJobs()).
 */
inline unsigned
resolveJobs(unsigned requested, unsigned fallback = 1)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("XT910_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            return unsigned(v);
    }
    return fallback ? fallback : hardwareJobs();
}

/**
 * Execute fn(i) for every i in [0, n) on up to @p jobs worker threads.
 * Indices are claimed from a shared atomic counter, so the assignment
 * of index to thread is nondeterministic — @p fn must only write
 * per-index state (its slot of a results vector) or take a lock.
 * With jobs <= 1 (or n <= 1) everything runs inline on the caller's
 * thread in index order. The first exception thrown by any index is
 * rethrown on the caller's thread after all workers join.
 */
template <typename Fn>
void
parallelFor(size_t n, unsigned jobs, Fn &&fn)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    unsigned workers = unsigned(std::min<size_t>(jobs, n));
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errLock;
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace xt910

#endif // XT910_COMMON_PARALLEL_H
