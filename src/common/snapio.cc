/** @file See snapio.h. */

#include "common/snapio.h"

#include <cstdio>

namespace xt910
{

std::vector<uint8_t>
snapReadFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapError("cannot open snapshot file: " + path);
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    if (len < 0) {
        std::fclose(f);
        throw SnapError("cannot read snapshot file: " + path);
    }
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> buf(static_cast<size_t>(len), 0);
    size_t got = len ? std::fread(buf.data(), 1, buf.size(), f) : 0;
    std::fclose(f);
    if (got != buf.size())
        throw SnapError("short read on snapshot file: " + path);
    return buf;
}

void
snapWriteFileAtomic(const std::string &path, const void *data, size_t n)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SnapError("cannot create " + tmp);
    size_t put = n ? std::fwrite(data, 1, n, f) : 0;
    bool ok = put == n && std::fflush(f) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SnapError("short write on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapError("cannot rename " + tmp + " to " + path);
    }
}

} // namespace xt910
