/**
 * @file
 * Bit-manipulation helpers used by the encoder, decoder and cache/TLB
 * index math. All helpers are constexpr and branch-free where possible.
 */

#ifndef XT910_COMMON_BITUTIL_H
#define XT910_COMMON_BITUTIL_H

#include <cstdint>

namespace xt910
{

/** Extract bits [hi:lo] (inclusive) of @p val, right-justified. */
constexpr uint64_t
bits(uint64_t val, unsigned hi, unsigned lo)
{
    unsigned nbits = hi - lo + 1;
    uint64_t mask = nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
    return (val >> lo) & mask;
}

/** Extract the single bit @p pos of @p val. */
constexpr uint64_t
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Insert @p field into bits [hi:lo] of @p val and return the result. */
constexpr uint64_t
insertBits(uint64_t val, unsigned hi, unsigned lo, uint64_t field)
{
    unsigned nbits = hi - lo + 1;
    uint64_t mask = nbits >= 64 ? ~0ull : ((1ull << nbits) - 1);
    return (val & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    unsigned shift = 64 - nbits;
    return int64_t(val << shift) >> shift;
}

/** Zero-extend the low @p nbits bits of @p val. */
constexpr uint64_t
zext(uint64_t val, unsigned nbits)
{
    return nbits >= 64 ? val : val & ((1ull << nbits) - 1);
}

/** A mask with the low @p nbits bits set. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ull : (1ull << nbits) - 1;
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 of @p v; log2Floor(0) is undefined (returns 0). */
constexpr unsigned
log2Floor(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceil of log2 of @p v. */
constexpr unsigned
log2Ceil(uint64_t v)
{
    return v <= 1 ? 0 : log2Floor(v - 1) + 1;
}

/** Population count. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned r = 0;
    while (v) {
        v &= v - 1;
        ++r;
    }
    return r;
}

/**
 * Index of the most-significant set bit counting from bit 63 downwards,
 * i.e. the semantics of the XT-910 custom ff1 instruction: the number of
 * leading zero bits. Returns 64 when @p v is zero.
 */
constexpr unsigned
countLeadingZeros(uint64_t v)
{
    if (v == 0)
        return 64;
    unsigned n = 0;
    for (int i = 63; i >= 0 && !((v >> i) & 1); --i)
        ++n;
    return n;
}

/** Count of leading one bits (XT-910 custom ff0 semantics). */
constexpr unsigned
countLeadingOnes(uint64_t v)
{
    return countLeadingZeros(~v);
}

/** Byte-reverse a 64-bit value (XT-910 custom rev semantics). */
constexpr uint64_t
byteSwap64(uint64_t v)
{
    v = ((v & 0x00ff00ff00ff00ffull) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffull);
    v = ((v & 0x0000ffff0000ffffull) << 16) |
        ((v >> 16) & 0x0000ffff0000ffffull);
    return (v << 32) | (v >> 32);
}

} // namespace xt910

#endif // XT910_COMMON_BITUTIL_H
