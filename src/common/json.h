/**
 * @file
 * Minimal JSON helpers for the observability subsystem: string
 * escaping and a strict validating parser. The emitters in the stats
 * backend compose documents by hand (they only need objects of
 * numbers and strings); the validator exists so tests and the CLI
 * smoke check can verify every emitted line is well-formed without an
 * external dependency.
 */

#ifndef XT910_COMMON_JSON_H
#define XT910_COMMON_JSON_H

#include <string>

namespace xt910
{
namespace json
{

/** Escape @p s for embedding inside a JSON string literal (no quotes
 *  added). Control characters become \u00XX sequences. */
std::string escape(const std::string &s);

/**
 * Validate that @p text is exactly one complete JSON value (object,
 * array, string, number, true/false/null) with nothing but whitespace
 * after it. On failure returns false and, when @p err is non-null,
 * stores a short description with the byte offset.
 */
bool validate(const std::string &text, std::string *err = nullptr);

} // namespace json
} // namespace xt910

#endif // XT910_COMMON_JSON_H
