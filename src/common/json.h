/**
 * @file
 * Minimal JSON helpers shared by the observability subsystem and the
 * serving layer: string escaping, a strict validating parser, and a
 * small DOM (json::Value + json::parse) for the few places that must
 * *read* JSON — the xt910d request bodies and its persisted job-state
 * file. The emitters in the stats backend still compose documents by
 * hand; the validator exists so tests and the CLI smoke check can
 * verify every emitted line is well-formed without an external
 * dependency.
 */

#ifndef XT910_COMMON_JSON_H
#define XT910_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xt910
{
namespace json
{

/** Escape @p s for embedding inside a JSON string literal (no quotes
 *  added). Control characters become \u00XX sequences. */
std::string escape(const std::string &s);

/**
 * Validate that @p text is exactly one complete JSON value (object,
 * array, string, number, true/false/null) with nothing but whitespace
 * after it. On failure returns false and, when @p err is non-null,
 * stores a short description with the byte offset.
 */
bool validate(const std::string &text, std::string *err = nullptr);

/**
 * A parsed JSON value. Objects keep member order (so round-trips are
 * stable) and integral numbers that fit int64 are kept exact alongside
 * the double form — instruction budgets and hashes survive parsing.
 */
struct Value
{
    enum class Kind : uint8_t { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;    ///< numeric value, always set for numbers
    int64_t integer = 0;    ///< exact value when isInteger
    bool isInteger = false;
    std::string string;
    std::vector<std::pair<std::string, Value>> members; ///< objects
    std::vector<Value> elements;                        ///< arrays

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNull() const { return kind == Kind::Null; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    // Typed accessors with defaults (wrong kind returns the default).
    bool asBool(bool dflt = false) const;
    uint64_t asU64(uint64_t dflt = 0) const;
    int64_t asI64(int64_t dflt = 0) const;
    double asDouble(double dflt = 0.0) const;
    std::string asString(const std::string &dflt = "") const;
};

/**
 * Parse exactly one JSON value (same grammar the validator accepts,
 * including the trailing-garbage check). \uXXXX escapes are decoded to
 * UTF-8; surrogate pairs are combined. On failure returns false and,
 * when @p err is non-null, stores a description with the byte offset;
 * @p out is unspecified.
 */
bool parse(const std::string &text, Value &out, std::string *err = nullptr);

} // namespace json
} // namespace xt910

#endif // XT910_COMMON_JSON_H
