#include "common/stats.h"

#include <iomanip>

namespace xt910
{

Counter::Counter(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.add(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Counter *c : _counters) {
        os << std::left << std::setw(40) << (_name + "." + c->name())
           << std::right << std::setw(16) << c->value()
           << "  # " << c->desc() << "\n";
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : _counters)
        c->reset();
}

const Counter *
StatGroup::find(const std::string &name) const
{
    for (const Counter *c : _counters)
        if (c->name() == name)
            return c;
    return nullptr;
}

} // namespace xt910
