#include "common/stats.h"

#include <algorithm>
#include <iomanip>
#include <map>

#include "common/json.h"
#include "common/snapio.h"

namespace xt910
{

Counter::Counter(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.add(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Counter *c : _counters) {
        os << std::left << std::setw(40) << (_name + "." + c->name())
           << std::right << std::setw(16) << c->value()
           << "  # " << c->desc() << "\n";
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : _counters)
        c->reset();
}

const Counter *
StatGroup::find(const std::string &name) const
{
    for (const Counter *c : _counters)
        if (c->name() == name)
            return c;
    return nullptr;
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const Counter *c : _counters) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << json::escape(c->name()) << "\": " << c->value();
    }
    os << "}";
}

void
StatGroup::snapSave(SnapWriter &w) const
{
    w.u64(_counters.size());
    for (const Counter *c : _counters) {
        w.str(c->name());
        w.u64(c->value());
    }
}

void
StatGroup::snapLoad(SnapReader &r)
{
    uint64_t n = r.u64();
    if (n != _counters.size())
        throw SnapError("stat group '" + _name + "' has " +
                        std::to_string(_counters.size()) +
                        " counters, snapshot has " + std::to_string(n));
    for (Counter *c : _counters) {
        std::string name = r.str();
        if (name != c->name())
            throw SnapError("stat group '" + _name +
                            "' counter order mismatch: expected '" +
                            c->name() + "', snapshot has '" + name + "'");
        c->set(r.u64());
    }
}

void
dumpStatsSorted(std::ostream &os, std::vector<const StatGroup *> groups)
{
    std::sort(groups.begin(), groups.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    for (const StatGroup *g : groups)
        g->dump(os);
}

namespace
{

/** A node of the dotted-name hierarchy: child nodes plus, when a group
 *  lives exactly at this path, its counters. */
struct JsonNode
{
    std::map<std::string, JsonNode> kids;
    const StatGroup *group = nullptr;
};

void
emitNode(std::ostream &os, const JsonNode &n, bool pretty, unsigned depth)
{
    const std::string pad(pretty ? 2 * (depth + 1) : 0, ' ');
    const std::string close(pretty ? 2 * depth : 0, ' ');
    const char *nl = pretty ? "\n" : "";
    os << "{" << nl;
    bool first = true;
    if (n.group) {
        for (const Counter *c : n.group->counters()) {
            if (!first)
                os << "," << nl;
            first = false;
            os << pad << "\"" << json::escape(c->name())
               << "\": " << c->value();
        }
    }
    for (const auto &[key, kid] : n.kids) {
        if (!first)
            os << "," << nl;
        first = false;
        os << pad << "\"" << json::escape(key) << "\": ";
        emitNode(os, kid, pretty, depth + 1);
    }
    os << nl << close << "}";
}

} // namespace

void
dumpStatsJson(std::ostream &os, std::vector<const StatGroup *> groups,
              bool pretty)
{
    std::sort(groups.begin(), groups.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    JsonNode root;
    for (const StatGroup *g : groups) {
        JsonNode *node = &root;
        const std::string &name = g->name();
        size_t start = 0;
        while (true) {
            size_t dot = name.find('.', start);
            std::string part = name.substr(
                start, dot == std::string::npos ? dot : dot - start);
            node = &node->kids[part];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        node->group = g;
    }
    emitNode(os, root, pretty, 0);
}

} // namespace xt910
