#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace xt910
{
namespace json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

namespace
{

/** Append @p cp to @p out as UTF-8. */
void
appendUtf8(std::string &out, uint32_t cp)
{
    if (cp < 0x80) {
        out += char(cp);
    } else if (cp < 0x800) {
        out += char(0xc0 | (cp >> 6));
        out += char(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
        out += char(0xe0 | (cp >> 12));
        out += char(0x80 | ((cp >> 6) & 0x3f));
        out += char(0x80 | (cp & 0x3f));
    } else {
        out += char(0xf0 | (cp >> 18));
        out += char(0x80 | ((cp >> 12) & 0x3f));
        out += char(0x80 | ((cp >> 6) & 0x3f));
        out += char(0x80 | (cp & 0x3f));
    }
}

/** Recursive-descent validator over a byte range; with a non-null
 *  @p out it additionally builds the DOM as it goes. */
class Parser
{
  public:
    Parser(const std::string &t, std::string *err_, Value *out_ = nullptr)
        : s(t), err(err_), root(out_)
    {}

    bool
    run()
    {
        skipWs();
        if (!value(root))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err)
            *err = std::string(what) + " at offset " +
                   std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    lit(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= s.size() || s[pos] != *p)
                return fail("bad literal");
        return true;
    }

    bool
    string(std::string *out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                char e = s[pos];
                if (e == 'u') {
                    uint32_t cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[pos])))
                            return fail("bad \\u escape");
                        cp = cp * 16 +
                             uint32_t(hexVal(
                                 static_cast<unsigned char>(s[pos])));
                    }
                    // Combine a surrogate pair when one follows.
                    if (cp >= 0xd800 && cp < 0xdc00 &&
                        pos + 6 < s.size() && s[pos + 1] == '\\' &&
                        s[pos + 2] == 'u') {
                        uint32_t lo = 0;
                        bool loOk = true;
                        for (int i = 0; i < 4 && loOk; ++i) {
                            char h = s[pos + 3 + i];
                            if (!std::isxdigit(
                                    static_cast<unsigned char>(h)))
                                loOk = false;
                            else
                                lo = lo * 16 +
                                     uint32_t(hexVal(
                                         static_cast<unsigned char>(h)));
                        }
                        if (loOk && lo >= 0xdc00 && lo < 0xe000) {
                            cp = 0x10000 + ((cp - 0xd800) << 10) +
                                 (lo - 0xdc00);
                            pos += 6;
                        }
                    }
                    if (cp >= 0xd800 && cp < 0xe000)
                        return fail("lone surrogate");
                    if (out)
                        appendUtf8(*out, cp);
                } else if (e == '"' || e == '\\' || e == '/') {
                    if (out)
                        *out += e;
                } else if (e == 'b') {
                    if (out)
                        *out += '\b';
                } else if (e == 'f') {
                    if (out)
                        *out += '\f';
                } else if (e == 'n') {
                    if (out)
                        *out += '\n';
                } else if (e == 'r') {
                    if (out)
                        *out += '\r';
                } else if (e == 't') {
                    if (out)
                        *out += '\t';
                } else {
                    return fail("bad escape");
                }
            } else if (out) {
                *out += char(c);
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number(Value *out)
    {
        size_t start = pos;
        bool integral = true;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return fail("bad number");
        const bool leadingZero = s[pos] == '0';
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        if (leadingZero && pos - start > (s[start] == '-' ? 2u : 1u))
            return fail("leading zero");
        if (pos < s.size() && s[pos] == '.') {
            integral = false;
            ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad fraction");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad exponent");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (out) {
            const std::string text = s.substr(start, pos - start);
            out->kind = Value::Kind::Number;
            out->number = std::strtod(text.c_str(), nullptr);
            if (integral) {
                errno = 0;
                char *end = nullptr;
                long long v = std::strtoll(text.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0') {
                    out->integer = int64_t(v);
                    out->isInteger = true;
                }
            }
        }
        return pos > start;
    }

    bool
    object(Value *out)
    {
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(out ? &key : nullptr))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            Value *slot = nullptr;
            if (out) {
                out->members.emplace_back(std::move(key), Value{});
                slot = &out->members.back().second;
            }
            if (!value(slot))
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Value *out)
    {
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            Value *slot = nullptr;
            if (out) {
                out->elements.emplace_back();
                slot = &out->elements.back();
            }
            if (!value(slot))
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    value(Value *out)
    {
        if (++depth > 128)
            return fail("nesting too deep");
        bool ok;
        if (pos >= s.size()) {
            ok = fail("unexpected end of input");
        } else if (s[pos] == '{') {
            if (out)
                out->kind = Value::Kind::Object;
            ok = object(out);
        } else if (s[pos] == '[') {
            if (out)
                out->kind = Value::Kind::Array;
            ok = array(out);
        } else if (s[pos] == '"') {
            if (out)
                out->kind = Value::Kind::String;
            ok = string(out ? &out->string : nullptr);
        } else if (s[pos] == 't') {
            ok = lit("true");
            if (ok && out) {
                out->kind = Value::Kind::Bool;
                out->boolean = true;
            }
        } else if (s[pos] == 'f') {
            ok = lit("false");
            if (ok && out) {
                out->kind = Value::Kind::Bool;
                out->boolean = false;
            }
        } else if (s[pos] == 'n') {
            ok = lit("null");
            if (ok && out)
                out->kind = Value::Kind::Null;
        } else {
            ok = number(out);
        }
        --depth;
        return ok;
    }

    static int
    hexVal(unsigned char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return c - 'A' + 10;
    }

    const std::string &s;
    std::string *err;
    Value *root;
    size_t pos = 0;
    unsigned depth = 0;
};

} // namespace

bool
validate(const std::string &text, std::string *err)
{
    return Parser(text, err).run();
}

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

bool
Value::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

uint64_t
Value::asU64(uint64_t dflt) const
{
    if (kind != Kind::Number)
        return dflt;
    if (isInteger)
        return integer >= 0 ? uint64_t(integer) : dflt;
    return number >= 0 ? uint64_t(number) : dflt;
}

int64_t
Value::asI64(int64_t dflt) const
{
    if (kind != Kind::Number)
        return dflt;
    return isInteger ? integer : int64_t(number);
}

double
Value::asDouble(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

std::string
Value::asString(const std::string &dflt) const
{
    return kind == Kind::String ? string : dflt;
}

bool
parse(const std::string &text, Value &out, std::string *err)
{
    out = Value{};
    return Parser(text, err, &out).run();
}

} // namespace json
} // namespace xt910
