#include "common/json.h"

#include <cctype>
#include <cstdio>

namespace xt910
{
namespace json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

namespace
{

/** Recursive-descent validator over a byte range. */
class Parser
{
  public:
    Parser(const std::string &t, std::string *err_) : s(t), err(err_) {}

    bool
    run()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err)
            *err = std::string(what) + " at offset " +
                   std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    lit(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= s.size() || s[pos] != *p)
                return fail("bad literal");
        return true;
    }

    bool
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[pos])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return fail("bad number");
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad fraction");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail("bad exponent");
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        return pos > start;
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    value()
    {
        if (++depth > 128)
            return fail("nesting too deep");
        bool ok;
        if (pos >= s.size())
            ok = fail("unexpected end of input");
        else if (s[pos] == '{')
            ok = object();
        else if (s[pos] == '[')
            ok = array();
        else if (s[pos] == '"')
            ok = string();
        else if (s[pos] == 't')
            ok = lit("true");
        else if (s[pos] == 'f')
            ok = lit("false");
        else if (s[pos] == 'n')
            ok = lit("null");
        else
            ok = number();
        --depth;
        return ok;
    }

    const std::string &s;
    std::string *err;
    size_t pos = 0;
    unsigned depth = 0;
};

} // namespace

bool
validate(const std::string &text, std::string *err)
{
    return Parser(text, err).run();
}

} // namespace json
} // namespace xt910
