/**
 * @file
 * Named full-system presets: the XT-910 configuration the paper
 * describes plus the comparison points used in its evaluation section
 * (SiFive-U74-class in-order dual-issue, Cortex-A73-class 2-wide OoO,
 * and an MCU-class point for Fig. 17's low end).
 */

#ifndef XT910_BASELINE_PRESETS_H
#define XT910_BASELINE_PRESETS_H

#include <string>
#include <vector>

#include "core/system.h"

namespace xt910
{

/** A named core+memory configuration with a frequency assumption. */
struct CorePreset
{
    std::string name;
    SystemConfig config;
    double freqGHz;        ///< headline frequency for speed metrics
    bool hasVector;
};

/** XT-910 as configured for the paper's comparisons: 64 KiB L1s, 2 MiB
 *  L2 (matching the A73 comparison setup of §X), VLEN = 128. */
CorePreset xt910Preset();

/** XT-910 without the vector unit (Table II area point). */
CorePreset xt910NoVecPreset();

/** U74-class in-order dual-issue comparison core. */
CorePreset u74Preset();

/** Cortex-A73-class 2-wide OoO comparison core. */
CorePreset a73Preset();

/** Single-issue MCU-class point. */
CorePreset mcuPreset();

/** All presets, Fig.-17 style ordering (slowest first). */
std::vector<CorePreset> allPresets();

} // namespace xt910

#endif // XT910_BASELINE_PRESETS_H
