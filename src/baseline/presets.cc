#include "baseline/presets.h"

namespace xt910
{

namespace
{

MemSystemParams
paperMemParams()
{
    // §X: "XT-910 is configured for the same L1 & L2 cache sizes" as
    // the Kirin-970 A73: 64 KiB L1I + L1D, 2 MiB shared L2.
    MemSystemParams m;
    m.l1i.sizeBytes = 64 * 1024;
    m.l1d.sizeBytes = 64 * 1024;
    m.l2.sizeBytes = 2 * 1024 * 1024;
    return m;
}

} // namespace

CorePreset
xt910Preset()
{
    SystemConfig cfg;
    cfg.core = CoreParams{};
    cfg.mem = paperMemParams();
    return {"xt910", cfg, 2.5, true};
}

CorePreset
xt910NoVecPreset()
{
    CorePreset p = xt910Preset();
    p.name = "xt910-novec";
    p.config.core.vecBitsPerCycle = 0;
    p.hasVector = false;
    return p;
}

CorePreset
u74Preset()
{
    SystemConfig cfg;
    cfg.core = u74ClassParams();
    cfg.mem = paperMemParams();
    cfg.mem.l1i.sizeBytes = 32 * 1024;
    cfg.mem.l1d.sizeBytes = 32 * 1024;
    return {"u74-class", cfg, 1.5, false};
}

CorePreset
a73Preset()
{
    SystemConfig cfg;
    cfg.core = a73ClassParams();
    cfg.mem = paperMemParams();
    return {"a73-class", cfg, 2.4, true};
}

CorePreset
mcuPreset()
{
    SystemConfig cfg;
    cfg.core = mcuClassParams();
    cfg.mem = paperMemParams();
    cfg.mem.l1i.sizeBytes = 16 * 1024;
    cfg.mem.l1d.sizeBytes = 16 * 1024;
    cfg.mem.l2.sizeBytes = 256 * 1024;
    return {"mcu-class", cfg, 1.0, false};
}

std::vector<CorePreset>
allPresets()
{
    return {mcuPreset(), u74Preset(), a73Preset(), xt910Preset()};
}

} // namespace xt910
