/**
 * @file
 * The loop buffer (LBUF, §III.C): a 16-entry buffer that captures small
 * loop bodies. While a loop streams from the LBUF, instruction fetch
 * needs no L1 I-cache access (power), the backward jump inserts no
 * bubble, and the last instruction of iteration i can issue together
 * with the first instruction of iteration i+1 — keeping the IFU at its
 * full 3 instructions/cycle. Forward branches inside the body (if/else)
 * are allowed. A context switch flushes the LBUF.
 */

#ifndef XT910_BRANCH_LOOPBUFFER_H
#define XT910_BRANCH_LOOPBUFFER_H

#include "common/snapio.h"
#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Loop-buffer configuration. */
struct LoopBufferParams
{
    unsigned entries = 16;   ///< instructions held (paper: 16)
    bool enabled = true;     ///< ablation knob
    unsigned trainTrips = 2; ///< backward-jump repeats before capture
};

/** See file comment. */
class LoopBuffer
{
  public:
    LoopBuffer(const LoopBufferParams &p, const std::string &name);

    /**
     * Observe a taken backward branch at @p branchPc jumping to
     * @p target containing @p bodyInsts instructions. Captures the
     * loop once it has repeated trainTrips times and fits.
     */
    void observeBackwardBranch(Addr branchPc, Addr target,
                               unsigned bodyInsts);

    /** True when fetch at @p pc is currently served by the LBUF. */
    bool active(Addr pc) const;

    /** The captured loop's branch pc / target (0 when none). */
    Addr loopBranch() const { return branchPc; }
    Addr loopTarget() const { return target; }

    /** Leaving the loop (fall-through or mispredicted exit). */
    void exitLoop();

    /** Context switch / exception: flush the buffer (§III.C). */
    void flush();

    const LoopBufferParams &params() const { return p; }
    bool capturing() const { return captured; }

    void
    snapSave(SnapWriter &w) const
    {
        w.b(captured);
        w.u64(branchPc);
        w.u64(target);
        w.u64(trainPc);
        w.u32(trainCount);
        stats.snapSave(w);
    }

    void
    snapLoad(SnapReader &r)
    {
        captured = r.b();
        branchPc = r.u64();
        target = r.u64();
        trainPc = r.u64();
        trainCount = r.u32();
        stats.snapLoad(r);
    }

    StatGroup stats;
    Counter captures;          ///< loops captured
    Counter servedInsts;       ///< instructions streamed from LBUF
    Counter icacheAccessSaved; ///< fetch groups that skipped the L1I
    Counter flushesCtr;

  private:
    LoopBufferParams p;
    bool captured = false;
    Addr branchPc = 0;
    Addr target = 0;
    Addr trainPc = 0;
    unsigned trainCount = 0;
};

} // namespace xt910

#endif // XT910_BRANCH_LOOPBUFFER_H
