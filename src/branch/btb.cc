#include "branch/btb.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace xt910
{

Btb::Btb(const BtbParams &p_, const std::string &name)
    : stats(name),
      l0Hits(stats, "l0_hits", "L0 BTB hits (IF-stage redirect)"),
      l1Hits(stats, "l1_hits", "L1 BTB hits"),
      missesCtr(stats, "misses", "BTB misses"),
      l0Mispredicts(stats, "l0_mispredicts",
                    "L0 targets corrected at IP"),
      l1Mispredicts(stats, "l1_mispredicts",
                    "L1 targets corrected at IB"),
      p(p_)
{
    xt_assert(isPow2(p.l1Sets), "L1 BTB sets must be a power of two");
    l0.resize(p.l0Entries);
    l1.resize(size_t(p.l1Sets) * p.l1Ways);
}

std::optional<BtbHit>
Btb::lookupL0(Addr pc, Cycle now)
{
    (void)now;
    if (!p.l0Enabled)
        return std::nullopt;
    for (Entry &e : l0) {
        if (e.valid && e.pc == pc) {
            e.lastUse = ++useClock;
            ++l0Hits;
            return BtbHit{e.target, e.kind, true};
        }
    }
    return std::nullopt;
}

std::optional<BtbHit>
Btb::lookupL1(Addr pc, Cycle now)
{
    (void)now;
    size_t set = (pc >> 1) & (p.l1Sets - 1);
    for (unsigned w = 0; w < p.l1Ways; ++w) {
        Entry &e = l1[set * p.l1Ways + w];
        if (e.valid && e.pc == pc) {
            e.lastUse = ++useClock;
            ++l1Hits;
            return BtbHit{e.target, e.kind, false};
        }
    }
    ++missesCtr;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target, BranchKind kind, bool promoteL0)
{
    ++useClock;
    // L1 fill/update.
    size_t set = (pc >> 1) & (p.l1Sets - 1);
    Entry *dest = nullptr;
    for (unsigned w = 0; w < p.l1Ways; ++w) {
        Entry &e = l1[set * p.l1Ways + w];
        if (e.valid && e.pc == pc) {
            dest = &e;
            break;
        }
        if (!dest && !e.valid)
            dest = &e;
    }
    if (!dest) {
        dest = &l1[set * p.l1Ways];
        for (unsigned w = 1; w < p.l1Ways; ++w)
            if (l1[set * p.l1Ways + w].lastUse < dest->lastUse)
                dest = &l1[set * p.l1Ways + w];
    }
    *dest = Entry{true, pc, target, kind, useClock};

    if (promoteL0 && p.l0Enabled) {
        Entry *d0 = nullptr;
        for (Entry &e : l0) {
            if (e.valid && e.pc == pc) {
                d0 = &e;
                break;
            }
            if (!d0 && !e.valid)
                d0 = &e;
        }
        if (!d0) {
            d0 = &l0[0];
            for (Entry &e : l0)
                if (e.lastUse < d0->lastUse)
                    d0 = &e;
        }
        *d0 = Entry{true, pc, target, kind, useClock};
    }
}

void
Btb::snapSave(SnapWriter &w) const
{
    auto saveVec = [&w](const std::vector<Entry> &v) {
        w.u64(v.size());
        for (const Entry &e : v) {
            w.b(e.valid);
            w.u64(e.pc);
            w.u64(e.target);
            w.u8(uint8_t(e.kind));
            w.u64(e.lastUse);
        }
    };
    saveVec(l0);
    saveVec(l1);
    w.u64(useClock);
    stats.snapSave(w);
}

void
Btb::snapLoad(SnapReader &r)
{
    auto loadVec = [&r](std::vector<Entry> &v) {
        if (r.u64() != v.size())
            throw SnapError("snapshot BTB geometry does not match");
        for (Entry &e : v) {
            e.valid = r.b();
            e.pc = r.u64();
            e.target = r.u64();
            uint8_t k = r.u8();
            if (k > uint8_t(BranchKind::Call))
                throw SnapError("corrupt snapshot: bad branch kind");
            e.kind = BranchKind(k);
            e.lastUse = r.u64();
        }
    };
    loadVec(l0);
    loadVec(l1);
    useClock = r.u64();
    stats.snapLoad(r);
}

} // namespace xt910
