/**
 * @file
 * Branch direction predictor (§III.A): history-based prediction values
 * stored in banked high-density SRAMs, with a dynamic monitoring
 * algorithm selecting among banks, fronted by the two-level prefetch
 * buffer (BUF1/BUF2) that lets conditional branches in adjacent cycles
 * be predicted back-to-back despite the SRAM read latency.
 */

#ifndef XT910_BRANCH_DIRECTION_H
#define XT910_BRANCH_DIRECTION_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Direction-predictor configuration. */
struct DirectionParams
{
    unsigned tableBits = 12;   ///< entries per bank = 2^tableBits
    unsigned banks = 4;        ///< SRAM banks holding prediction values
    unsigned historyBits = 12; ///< global history length
    /**
     * The §III.A two-level prefetch buffer. When disabled, a branch
     * whose prediction is consumed in the cycle right after the
     * previous branch's must stall one cycle for the SRAM read.
     */
    bool twoLevelBuf = true;
};

/** See file comment. */
class DirectionPredictor
{
  public:
    DirectionPredictor(const DirectionParams &p, const std::string &name);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc);

    /** Train with the resolved outcome; returns true on mispredict. */
    bool update(Addr pc, bool taken);

    /**
     * Cycle cost charged by the IFU when this branch is predicted in
     * the cycle immediately after another branch (0 with BUF1/BUF2,
     * 1 without, §III.A).
     */
    unsigned
    backToBackPenalty() const
    {
        return p.twoLevelBuf ? 0 : 1;
    }

    const DirectionParams &params() const { return p; }

    /** Serialize bank counters, monitoring scores and history. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter lookups;
    Counter mispredicts;

  private:
    struct BankEntry
    {
        uint8_t counter = 2; ///< 2-bit, weakly taken
    };

    size_t index(Addr pc, unsigned bank) const;
    unsigned chooseBank(Addr pc) const;

    DirectionParams p;
    /** Per-bank history mask (geometry-derived, not serialized). */
    std::vector<uint64_t> histMask;
    std::vector<std::vector<BankEntry>> banks;
    /** Per-bank success score for the dynamic monitoring algorithm. */
    std::vector<std::vector<uint8_t>> bankScore;
    uint64_t history = 0;
};

} // namespace xt910

#endif // XT910_BRANCH_DIRECTION_H
