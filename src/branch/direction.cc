#include "branch/direction.h"

#include "common/bitutil.h"
#include "common/snapio.h"

namespace xt910
{

DirectionPredictor::DirectionPredictor(const DirectionParams &p_,
                                       const std::string &name)
    : stats(name),
      lookups(stats, "lookups", "direction predictions made"),
      mispredicts(stats, "mispredicts", "direction mispredictions"),
      p(p_)
{
    banks.assign(p.banks,
                 std::vector<BankEntry>(size_t(1) << p.tableBits));
    bankScore.assign(p.banks,
                     std::vector<uint8_t>((size_t(1) << p.tableBits) / 16 +
                                              1,
                                          2));
    // The per-bank history slice is fixed by the geometry; cache the
    // masks so index() — banks+1 calls per update — is division-free.
    histMask.resize(p.banks);
    for (unsigned b = 0; b < p.banks; ++b)
        histMask[b] = mask(p.historyBits * (b + 1) / p.banks);
}

size_t
DirectionPredictor::index(Addr pc, unsigned bank) const
{
    // Each bank hashes pc and a different slice of the history so the
    // banks behave like predictors of different history lengths.
    uint64_t h = history & histMask[bank];
    return size_t(((pc >> 1) ^ h ^ (h << 3)) & mask(p.tableBits));
}

unsigned
DirectionPredictor::chooseBank(Addr pc) const
{
    // Dynamic monitoring: pick the bank with the best recent score for
    // this pc region. Every bank's score table has the same geometry,
    // so the (integer-division) region index is computed once.
    const size_t s = (pc >> 5) % bankScore[0].size();
    unsigned best = 0;
    for (unsigned b = 1; b < p.banks; ++b)
        if (bankScore[b][s] > bankScore[best][s])
            best = b;
    return best;
}

bool
DirectionPredictor::predict(Addr pc)
{
    ++lookups;
    unsigned b = chooseBank(pc);
    return banks[b][index(pc, b)].counter >= 2;
}

bool
DirectionPredictor::update(Addr pc, bool taken)
{
    unsigned chosen = chooseBank(pc);
    bool predicted = banks[chosen][index(pc, chosen)].counter >= 2;
    bool mispredict = predicted != taken;
    if (mispredict)
        ++mispredicts;

    const size_t s = (pc >> 5) % bankScore[0].size();
    for (unsigned b = 0; b < p.banks; ++b) {
        BankEntry &e = banks[b][index(pc, b)];
        bool thisPredicted = e.counter >= 2;
        // Saturating 2-bit counter update.
        if (taken && e.counter < 3)
            ++e.counter;
        else if (!taken && e.counter > 0)
            --e.counter;
        // Score the bank's accuracy for the monitoring algorithm.
        uint8_t &score = bankScore[b][s];
        if (thisPredicted == taken && score < 3)
            ++score;
        else if (thisPredicted != taken && score > 0)
            --score;
    }

    history = ((history << 1) | uint64_t(taken)) & mask(p.historyBits);
    return mispredict;
}

void
DirectionPredictor::snapSave(SnapWriter &w) const
{
    w.u32(unsigned(banks.size()));
    for (const auto &bank : banks) {
        w.u64(bank.size());
        for (const BankEntry &e : bank)
            w.u8(e.counter);
    }
    for (const auto &scores : bankScore) {
        w.u64(scores.size());
        for (uint8_t s : scores)
            w.u8(s);
    }
    w.u64(history);
    stats.snapSave(w);
}

void
DirectionPredictor::snapLoad(SnapReader &r)
{
    if (r.u32() != banks.size())
        throw SnapError("snapshot predictor geometry does not match");
    for (auto &bank : banks) {
        if (r.u64() != bank.size())
            throw SnapError("snapshot predictor geometry does not match");
        for (BankEntry &e : bank)
            e.counter = r.u8();
    }
    for (auto &scores : bankScore) {
        if (r.u64() != scores.size())
            throw SnapError("snapshot predictor geometry does not match");
        for (uint8_t &s : scores)
            s = r.u8();
    }
    history = r.u64();
    stats.snapLoad(r);
}

} // namespace xt910
