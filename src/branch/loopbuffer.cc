#include "branch/loopbuffer.h"

namespace xt910
{

LoopBuffer::LoopBuffer(const LoopBufferParams &p_, const std::string &name)
    : stats(name),
      captures(stats, "captures", "loops captured into the LBUF"),
      servedInsts(stats, "served_insts", "instructions served from LBUF"),
      icacheAccessSaved(stats, "icache_saved",
                        "fetch groups that skipped the L1I"),
      flushesCtr(stats, "flushes", "LBUF flushes (context switches)"),
      p(p_)
{
}

void
LoopBuffer::observeBackwardBranch(Addr bPc, Addr tgt, unsigned bodyInsts)
{
    if (!p.enabled)
        return;
    if (captured && bPc == branchPc && tgt == target)
        return; // already streaming this loop
    if (bodyInsts > p.entries)
        return; // body does not fit
    if (trainPc == bPc) {
        if (++trainCount >= p.trainTrips) {
            captured = true;
            branchPc = bPc;
            target = tgt;
            ++captures;
        }
    } else {
        trainPc = bPc;
        trainCount = 1;
    }
}

bool
LoopBuffer::active(Addr pc) const
{
    return captured && pc >= target && pc <= branchPc;
}

void
LoopBuffer::exitLoop()
{
    captured = false;
    trainPc = 0;
    trainCount = 0;
}

void
LoopBuffer::flush()
{
    ++flushesCtr;
    exitLoop();
}

} // namespace xt910
