/**
 * @file
 * Branch target prediction (§III.B): the cascaded BTB — a 16-entry
 * fully-associative L0 BTB that redirects at the IF stage with zero
 * bubbles, and a >1K-entry set-associative L1 BTB checked at the IB
 * stage — plus the return-address stack and the indirect-branch
 * predictor.
 */

#ifndef XT910_BRANCH_BTB_H
#define XT910_BRANCH_BTB_H

#include <optional>
#include <vector>

#include "common/snapio.h"
#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Kind of control-flow instruction a BTB entry describes. */
enum class BranchKind : uint8_t { Conditional, Direct, Indirect, Return, Call };

/** BTB configuration. */
struct BtbParams
{
    unsigned l0Entries = 16;    ///< fully associative (paper: 16)
    unsigned l1Sets = 256;      ///< 256 sets x 4 ways > 1K entries
    unsigned l1Ways = 4;
    bool l0Enabled = true;      ///< ablation knob
};

/** A predicted target. */
struct BtbHit
{
    Addr target = 0;
    BranchKind kind = BranchKind::Conditional;
    bool fromL0 = false;
};

/** See file comment (L0 + L1 target buffers). */
class Btb
{
  public:
    Btb(const BtbParams &p, const std::string &name);

    /** Look up @p pc in L0 (IF-stage path). */
    std::optional<BtbHit> lookupL0(Addr pc, Cycle now);

    /** Look up @p pc in L1 (IP/IB-stage path). */
    std::optional<BtbHit> lookupL1(Addr pc, Cycle now);

    /**
     * Train both levels with a resolved taken branch. Hot branches
     * that keep paying IP-stage redirect cost get promoted into L0
     * (the paper: L0 captures programs whose bubbles IBUF can't hide).
     */
    void update(Addr pc, Addr target, BranchKind kind, bool promoteL0);

    const BtbParams &params() const { return p; }

    /** Serialize both target buffers, the LRU clock and counters. */
    void snapSave(SnapWriter &w) const;
    void snapLoad(SnapReader &r);

    StatGroup stats;
    Counter l0Hits;
    Counter l1Hits;
    Counter missesCtr;
    Counter l0Mispredicts;  ///< L0 target wrong, fixed at IP (§III.B)
    Counter l1Mispredicts;  ///< L1 target wrong, fixed at IB (§III.B)

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        BranchKind kind = BranchKind::Conditional;
        uint64_t lastUse = 0;
    };

    BtbParams p;
    std::vector<Entry> l0;
    std::vector<Entry> l1;
    uint64_t useClock = 0;
};

/** Return-address stack (§III.B: subroutine return prediction). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16) : stack(depth) {}

    void
    push(Addr returnPc)
    {
        stack[top] = returnPc;
        top = (top + 1) % stack.size();
        if (count < stack.size())
            ++count;
    }

    /** Pop a prediction; 0 when empty. */
    Addr
    pop()
    {
        if (count == 0)
            return 0;
        top = (top + stack.size() - 1) % stack.size();
        --count;
        return stack[top];
    }

    unsigned size() const { return count; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(stack.size());
        for (Addr a : stack)
            w.u64(a);
        w.u32(top);
        w.u32(count);
    }

    void
    snapLoad(SnapReader &r)
    {
        if (r.u64() != stack.size())
            throw SnapError("snapshot RAS depth does not match");
        for (Addr &a : stack)
            a = r.u64();
        top = r.u32();
        count = r.u32();
        if (top >= stack.size() || count > stack.size())
            throw SnapError("corrupt snapshot: bad RAS cursor");
    }

  private:
    std::vector<Addr> stack;
    unsigned top = 0;
    unsigned count = 0;
};

/** Indirect-jump target predictor (§III.B), history-hashed. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(unsigned entries = 256)
        : table(entries)
    {}

    Addr
    predict(Addr pc) const
    {
        const Entry &e = table[index(pc)];
        return e.valid && e.pc == pc ? e.target : 0;
    }

    void
    update(Addr pc, Addr target)
    {
        Entry &e = table[index(pc)];
        e.valid = true;
        e.pc = pc;
        e.target = target;
        history = (history << 4) ^ (target >> 1);
    }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(table.size());
        for (const Entry &e : table) {
            w.b(e.valid);
            w.u64(e.pc);
            w.u64(e.target);
        }
        w.u64(history);
    }

    void
    snapLoad(SnapReader &r)
    {
        if (r.u64() != table.size())
            throw SnapError("snapshot indirect table does not match");
        for (Entry &e : table) {
            e.valid = r.b();
            e.pc = r.u64();
            e.target = r.u64();
        }
        history = r.u64();
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };

    size_t
    index(Addr pc) const
    {
        return ((pc >> 1) ^ history) % table.size();
    }

    std::vector<Entry> table;
    uint64_t history = 0;
};

} // namespace xt910

#endif // XT910_BRANCH_BTB_H
