/**
 * @file
 * The decoded-instruction record shared by the functional simulator,
 * the assembler and the timing models.
 */

#ifndef XT910_ISA_INST_H
#define XT910_ISA_INST_H

#include <cstdint>

#include "common/types.h"
#include "isa/opcodes.h"

namespace xt910
{

/**
 * A fully decoded instruction. Register fields are architectural
 * indices; invalidReg marks an unused slot. For indexed stores
 * (XT_SR*), rs1 is the base, rs2 the index and rs3 the data source.
 */
struct DecodedInst
{
    Opcode op = Opcode::Invalid;
    uint8_t len = 4;          ///< 2 (compressed) or 4 bytes

    RegIndex rd = invalidReg;
    RegIndex rs1 = invalidReg;
    RegIndex rs2 = invalidReg;
    RegIndex rs3 = invalidReg;

    RegClass rdClass = RegClass::None;
    RegClass rs1Class = RegClass::None;
    RegClass rs2Class = RegClass::None;
    RegClass rs3Class = RegClass::None;

    int64_t imm = 0;          ///< sign-extended immediate / CSR number
    uint8_t shamt2 = 0;       ///< 2-bit shift for xt indexed addressing
    bool vm = true;           ///< vector: unmasked when true

    uint32_t raw = 0;         ///< original encoding (expanded if RVC)

    bool valid() const { return op != Opcode::Invalid; }
    OpClass cls() const { return opClass(op); }
    bool isLoad() const { return isMemRead(op); }
    bool isStore() const { return isMemWrite(op); }
    bool isBranch() const { return opClass(op) == OpClass::Branch; }
    bool isJump() const { return opClass(op) == OpClass::Jump; }

    /** True when the instruction writes an architectural register. */
    bool
    writesReg() const
    {
        if (rdClass == RegClass::None)
            return false;
        // x0 writes are architectural no-ops.
        return !(rdClass == RegClass::Int && rd == 0);
    }

    /** True if the instruction is a call (writes the link register). */
    bool
    isCall() const
    {
        return (op == Opcode::JAL || op == Opcode::JALR) &&
               rdClass == RegClass::Int && (rd == 1 || rd == 5);
    }

    /** True if the instruction is a return (jalr through x1/x5). */
    bool
    isReturn() const
    {
        return op == Opcode::JALR && (rs1 == 1 || rs1 == 5) &&
               !(rdClass == RegClass::Int && (rd == 1 || rd == 5));
    }

    /** True for indirect jumps that are not returns. */
    bool
    isIndirect() const
    {
        return op == Opcode::JALR && !isReturn();
    }
};

} // namespace xt910

#endif // XT910_ISA_INST_H
