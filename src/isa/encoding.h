/**
 * @file
 * Instruction encodings. A single table of (opcode, format, match, mask)
 * entries drives both the encoder (used by the macro-assembler) and the
 * decoder, so the two can never disagree.
 *
 * Standard RV64GC encodings follow the ratified ISA manual. The vector
 * encodings follow the 0.7.1-era layout (OP-V major opcode, funct3
 * sub-spaces, funct6 selectors); the XT-910 custom extension uses the
 * custom-0 major opcode (0x0b) with funct3 sub-spaces, mirroring the
 * structure of the real T-Head extensions. Since this repository owns
 * both producer and consumer, internal consistency — enforced by
 * round-trip property tests — is the requirement.
 */

#ifndef XT910_ISA_ENCODING_H
#define XT910_ISA_ENCODING_H

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/inst.h"
#include "isa/opcodes.h"

namespace xt910
{

/** Operand layout of an encoding-table entry. */
enum class EncFormat : uint8_t
{
    R,           ///< rd, rs1, rs2 (integer)
    I,           ///< rd, rs1, imm12
    IShift,      ///< rd, rs1, shamt6
    IShiftW,     ///< rd, rs1, shamt5 (word shifts)
    S,           ///< rs1, rs2 = data, imm12
    B,           ///< rs1, rs2, branch offset
    U,           ///< rd, upper immediate
    J,           ///< rd, jump offset
    Sys,         ///< exact 32-bit match, no operands
    SfenceVma,   ///< rs1, rs2
    CsrR,        ///< rd, rs1, csr in imm
    CsrI,        ///< rd, zimm5 (rs1 slot), csr in imm
    Amo,         ///< rd, rs1, rs2
    AmoLr,       ///< rd, rs1
    FpR,         ///< fp rd/rs1/rs2; rm free
    FpRUnary,    ///< fp rd, rs1 (sqrt); rm free
    FpRF3,       ///< fp rd/rs1/rs2; funct3 fixed
    FpCmp,       ///< int rd, fp rs1/rs2; funct3 fixed
    FpClass,     ///< int rd, fp rs1
    FpR4,        ///< fp rd/rs1/rs2/rs3
    FpCvtToInt,  ///< int rd, fp rs1; rm free
    FpCvtToFp,   ///< fp rd, int rs1; rm free
    FpCvtFp,     ///< fp rd, fp rs1; rm free
    FpMvToInt,   ///< int rd, fp rs1; f3 fixed
    FpMvToFp,    ///< fp rd, int rs1; f3 fixed
    FpLoadF,     ///< fp rd, int rs1, imm12
    FpStoreF,    ///< fp rs2 = data, int rs1, imm12
    VecVV,       ///< vd, vs1, vs2, vm
    VecVVRed,    ///< vd, vs1, vs2 (reduction: vs2 is scalar acc)
    VecVX,       ///< vd, int rs1, vs2, vm
    VecVI,       ///< vd, imm5, vs2, vm
    VecVF,       ///< vd, fp rs1, vs2, vm
    VecMvXS,     ///< int rd, vs2
    VecMvSX,     ///< vd, int rs1
    VecMvFS,     ///< fp rd, vs2
    VecMvVF,     ///< vd, fp rs1
    VecMvVV,     ///< vd, vs1
    VecMvVX,     ///< vd, int rs1
    VecMvVI,     ///< vd, imm5
    VSetVLI,     ///< rd, rs1, zimm11
    VSetVL,      ///< rd, rs1, rs2
    VecLdUnit,   ///< vd, rs1
    VecLdStride, ///< vd, rs1, rs2 (byte stride)
    VecLdIdx,    ///< vd, rs1, vs2 (index vector)
    VecStUnit,   ///< vs3 = data, rs1
    VecStStride, ///< vs3, rs1, rs2
    VecStIdx,    ///< vs3, rs1, vs2
    XtR,         ///< custom R-type (MAC: rd is also a source)
    XtAddSl,     ///< rd, rs1, rs2, shamt2
    XtIdxLd,     ///< rd, rs1 base, rs2 index, shamt2
    XtIdxSt,     ///< rs3 = data (rd slot), rs1 base, rs2 index, shamt2
    XtExt,       ///< rd, rs1, msb/lsb packed in imm
    XtImm6,      ///< rd, rs1, imm6
    XtUnary,     ///< rd, rs1
    XtCacheVA,   ///< rs1 (virtual address)
    XtCacheAll,  ///< no operands
};

/** One row of the master encoding table. */
struct EncEntry
{
    Opcode op;
    EncFormat fmt;
    uint32_t match;
    uint32_t mask;
};

/** The master encoding table (one entry per encodable opcode). */
const std::vector<EncEntry> &encodingTable();

/** Encoding-table entry for @p op; nullptr when the opcode has none. */
const EncEntry *encEntryOf(Opcode op);

/**
 * Encode a decoded instruction back to its 32-bit word.
 * Panics if the opcode has no table entry.
 */
uint32_t encode(const DecodedInst &di);

/** Decode a 32-bit (non-compressed) word. Invalid op on no match. */
DecodedInst decode32(uint32_t word);

/**
 * Decode at an instruction boundary: if the low two bits are not 11 the
 * halfword is expanded from RVC first and the result carries len == 2.
 */
DecodedInst decode(uint32_t word);

/** Expand a 16-bit RVC halfword to its 32-bit equivalent; 0 if illegal. */
uint32_t expandRvc(uint16_t half);

/**
 * Try to compress an instruction to its RVC form. Returns nullopt when
 * no compressed encoding exists for these operands.
 */
std::optional<uint16_t> compressInst(const DecodedInst &di);

} // namespace xt910

#endif // XT910_ISA_ENCODING_H
