/**
 * @file
 * Disassembler: renders a DecodedInst as assembly text for traces,
 * debugging and the profiling example.
 */

#ifndef XT910_ISA_DISASM_H
#define XT910_ISA_DISASM_H

#include <string>

#include "isa/inst.h"

namespace xt910
{

/** ABI name of integer register @p r (x0 -> "zero", x2 -> "sp", ...). */
const char *intRegName(RegIndex r);

/** ABI name of FP register @p r ("ft0", "fa0", ...). */
const char *fpRegName(RegIndex r);

/** Vector register name ("v0".."v31"). */
std::string vecRegName(RegIndex r);

/** Render @p di as assembly text. */
std::string disassemble(const DecodedInst &di);

} // namespace xt910

#endif // XT910_ISA_DISASM_H
