/**
 * @file
 * Vector type (vtype) CSR helpers for the 0.7.1-flavoured V extension:
 * element width (SEW) and register grouping (LMUL), plus the vtypei
 * immediate layout used by vsetvli.
 */

#ifndef XT910_ISA_VTYPE_H
#define XT910_ISA_VTYPE_H

#include <cstdint>

namespace xt910
{

/** Decoded vtype: SEW in bits and LMUL as a small power of two. */
struct VType
{
    unsigned sew = 64;  ///< element width in bits: 8/16/32/64
    unsigned lmul = 1;  ///< register group multiplier: 1/2/4/8
    bool fp = false;    ///< element interpretation hint (model-only)

    bool operator==(const VType &) const = default;
};

/** Pack a VType into the vsetvli immediate (vtype[4:2]=vsew, [1:0]=vlmul). */
constexpr uint32_t
encodeVtype(const VType &vt)
{
    unsigned vsew = vt.sew == 8 ? 0 : vt.sew == 16 ? 1 : vt.sew == 32 ? 2 : 3;
    unsigned vlmul = vt.lmul == 1 ? 0 : vt.lmul == 2 ? 1
                                    : vt.lmul == 4   ? 2
                                                     : 3;
    return (vsew << 2) | vlmul;
}

/** Unpack a vtypei immediate. */
constexpr VType
decodeVtype(uint32_t vtypei)
{
    VType vt;
    vt.sew = 8u << ((vtypei >> 2) & 7);
    vt.lmul = 1u << (vtypei & 3);
    return vt;
}

/**
 * VLMAX for a given configuration: (VLEN / SEW) * LMUL, the paper's
 * recommended configuration being VLEN = SLEN = 128 with two 64-bit
 * slices (§VII).
 */
constexpr unsigned
vlmax(unsigned vlenBits, const VType &vt)
{
    return (vlenBits / vt.sew) * vt.lmul;
}

} // namespace xt910

#endif // XT910_ISA_VTYPE_H
