#include "isa/encoding.h"

#include <array>

#include "common/bitutil.h"
#include "common/log.h"

namespace xt910
{

namespace
{

// Field masks of the base 32-bit encoding.
constexpr uint32_t fOp = 0x0000007f;
constexpr uint32_t fRd = 0x00000f80;
constexpr uint32_t fF3 = 0x00007000;
constexpr uint32_t fRs1 = 0x000f8000;
constexpr uint32_t fRs2 = 0x01f00000;
constexpr uint32_t fF7 = 0xfe000000;
constexpr uint32_t fF6 = 0xfc000000;
constexpr uint32_t fF5 = 0xf8000000;   // AMO funct5 / Xt funct5
constexpr uint32_t fVm = 0x02000000;
constexpr uint32_t fSh2 = 0x06000000;  // Xt indexed-address shift

constexpr uint32_t
opF3(uint32_t op, uint32_t f3)
{
    return (f3 << 12) | op;
}

constexpr uint32_t
opF3F7(uint32_t op, uint32_t f3, uint32_t f7)
{
    return (f7 << 25) | (f3 << 12) | op;
}

constexpr uint32_t
opF3F5(uint32_t op, uint32_t f3, uint32_t f5)
{
    return (f5 << 27) | (f3 << 12) | op;
}

// Vector arithmetic: funct6 at 31:26, vm at 25, funct3 selects sub-space.
// The vm bit is left clear here; entries whose mask pins vm (the vmv
// family) OR it in explicitly via the vmSet argument.
constexpr uint32_t
vArith(uint32_t f3, uint32_t f6, bool vmSet = false)
{
    return (f6 << 26) | (uint32_t(vmSet) << 25) | (f3 << 12) | 0x57;
}

// Vector memory: nf=0, mew=0, mop at 27:26, width=7 (SEW); vm free.
constexpr uint32_t
vMem(uint32_t op, uint32_t mop)
{
    return (mop << 26) | (7u << 12) | op;
}

// funct3 sub-spaces of OP-V.
constexpr uint32_t opIVV = 0, opFVV = 1, opMVV = 2, opIVI = 3;
constexpr uint32_t opIVX = 4, opFVF = 5, opMVX = 6;

constexpr uint32_t mOp = fOp;
constexpr uint32_t mOpF3 = fOp | fF3;
constexpr uint32_t mOpF3F7 = fOp | fF3 | fF7;
constexpr uint32_t mShift64 = fOp | fF3 | fF6;
constexpr uint32_t mAmo = fOp | fF3 | fF5;
constexpr uint32_t mAmoLr = fOp | fF3 | fF5 | fRs2;
constexpr uint32_t mFpR = fOp | fF7;               // rm free
constexpr uint32_t mFpUnary = fOp | fF7 | fRs2;    // rm free
constexpr uint32_t mFpMv = fOp | fF3 | fF7 | fRs2;
constexpr uint32_t mR4 = fOp | 0x06000000;         // fmt bits 26:25
constexpr uint32_t mExact = 0xffffffff;
constexpr uint32_t mVArith = fOp | fF3 | fF6;                 // vm free
constexpr uint32_t mVArithVm = fOp | fF3 | fF6 | fVm;
constexpr uint32_t mVMv = fOp | fF3 | fF6 | fVm | fRs2;       // vs2 fixed
constexpr uint32_t mVMvS = fOp | fF3 | fF6 | fVm | fRs1;      // vs1 fixed
constexpr uint32_t mVMemUnit = fOp | fF3 | 0xfc000000 | fRs2; // lumop fixed
constexpr uint32_t mVMemOther = fOp | fF3 | 0xfc000000;
constexpr uint32_t mXtF5 = fOp | fF3 | fF5;        // shamt2 free
constexpr uint32_t mXtF3 = fOp | fF3;
constexpr uint32_t mXtUnary = fOp | fF3 | fF7 | fRs2;
constexpr uint32_t mXtAll = fOp | fF3 | fF7 | fRs2 | fRs1 | fRd;
constexpr uint32_t mXtVa = fOp | fF3 | fF7 | fRs2 | fRd;
constexpr uint32_t mXtImm6 = fOp | fF3 | fF6;

std::vector<EncEntry>
buildTable()
{
    using F = EncFormat;
    using O = Opcode;
    std::vector<EncEntry> t;
    auto add = [&](O op, F fmt, uint32_t match, uint32_t mask) {
        t.push_back({op, fmt, match, mask});
    };

    // ----------------------------------------------------------- RV64I
    add(O::LUI, F::U, 0x37, mOp);
    add(O::AUIPC, F::U, 0x17, mOp);
    add(O::JAL, F::J, 0x6f, mOp);
    add(O::JALR, F::I, opF3(0x67, 0), mOpF3);
    add(O::BEQ, F::B, opF3(0x63, 0), mOpF3);
    add(O::BNE, F::B, opF3(0x63, 1), mOpF3);
    add(O::BLT, F::B, opF3(0x63, 4), mOpF3);
    add(O::BGE, F::B, opF3(0x63, 5), mOpF3);
    add(O::BLTU, F::B, opF3(0x63, 6), mOpF3);
    add(O::BGEU, F::B, opF3(0x63, 7), mOpF3);
    add(O::LB, F::I, opF3(0x03, 0), mOpF3);
    add(O::LH, F::I, opF3(0x03, 1), mOpF3);
    add(O::LW, F::I, opF3(0x03, 2), mOpF3);
    add(O::LD, F::I, opF3(0x03, 3), mOpF3);
    add(O::LBU, F::I, opF3(0x03, 4), mOpF3);
    add(O::LHU, F::I, opF3(0x03, 5), mOpF3);
    add(O::LWU, F::I, opF3(0x03, 6), mOpF3);
    add(O::SB, F::S, opF3(0x23, 0), mOpF3);
    add(O::SH, F::S, opF3(0x23, 1), mOpF3);
    add(O::SW, F::S, opF3(0x23, 2), mOpF3);
    add(O::SD, F::S, opF3(0x23, 3), mOpF3);
    add(O::ADDI, F::I, opF3(0x13, 0), mOpF3);
    add(O::SLTI, F::I, opF3(0x13, 2), mOpF3);
    add(O::SLTIU, F::I, opF3(0x13, 3), mOpF3);
    add(O::XORI, F::I, opF3(0x13, 4), mOpF3);
    add(O::ORI, F::I, opF3(0x13, 6), mOpF3);
    add(O::ANDI, F::I, opF3(0x13, 7), mOpF3);
    add(O::SLLI, F::IShift, opF3(0x13, 1), mShift64);
    add(O::SRLI, F::IShift, opF3(0x13, 5), mShift64);
    add(O::SRAI, F::IShift, opF3(0x13, 5) | (0x10u << 26), mShift64);
    add(O::ADD, F::R, opF3F7(0x33, 0, 0x00), mOpF3F7);
    add(O::SUB, F::R, opF3F7(0x33, 0, 0x20), mOpF3F7);
    add(O::SLL, F::R, opF3F7(0x33, 1, 0x00), mOpF3F7);
    add(O::SLT, F::R, opF3F7(0x33, 2, 0x00), mOpF3F7);
    add(O::SLTU, F::R, opF3F7(0x33, 3, 0x00), mOpF3F7);
    add(O::XOR, F::R, opF3F7(0x33, 4, 0x00), mOpF3F7);
    add(O::SRL, F::R, opF3F7(0x33, 5, 0x00), mOpF3F7);
    add(O::SRA, F::R, opF3F7(0x33, 5, 0x20), mOpF3F7);
    add(O::OR, F::R, opF3F7(0x33, 6, 0x00), mOpF3F7);
    add(O::AND, F::R, opF3F7(0x33, 7, 0x00), mOpF3F7);
    add(O::ADDIW, F::I, opF3(0x1b, 0), mOpF3);
    add(O::SLLIW, F::IShiftW, opF3F7(0x1b, 1, 0x00), mOpF3F7);
    add(O::SRLIW, F::IShiftW, opF3F7(0x1b, 5, 0x00), mOpF3F7);
    add(O::SRAIW, F::IShiftW, opF3F7(0x1b, 5, 0x20), mOpF3F7);
    add(O::ADDW, F::R, opF3F7(0x3b, 0, 0x00), mOpF3F7);
    add(O::SUBW, F::R, opF3F7(0x3b, 0, 0x20), mOpF3F7);
    add(O::SLLW, F::R, opF3F7(0x3b, 1, 0x00), mOpF3F7);
    add(O::SRLW, F::R, opF3F7(0x3b, 5, 0x00), mOpF3F7);
    add(O::SRAW, F::R, opF3F7(0x3b, 5, 0x20), mOpF3F7);
    add(O::FENCE, F::Sys, opF3(0x0f, 0), mOpF3);
    add(O::FENCE_I, F::Sys, opF3(0x0f, 1), mOpF3);
    add(O::ECALL, F::Sys, 0x00000073, mExact);
    add(O::EBREAK, F::Sys, 0x00100073, mExact);
    add(O::MRET, F::Sys, 0x30200073, mExact);
    add(O::SRET, F::Sys, 0x10200073, mExact);
    add(O::WFI, F::Sys, 0x10500073, mExact);
    add(O::SFENCE_VMA, F::SfenceVma, opF3F7(0x73, 0, 0x09),
        mOpF3F7 | fRd);

    // ----------------------------------------------------------- Zicsr
    add(O::CSRRW, F::CsrR, opF3(0x73, 1), mOpF3);
    add(O::CSRRS, F::CsrR, opF3(0x73, 2), mOpF3);
    add(O::CSRRC, F::CsrR, opF3(0x73, 3), mOpF3);
    add(O::CSRRWI, F::CsrI, opF3(0x73, 5), mOpF3);
    add(O::CSRRSI, F::CsrI, opF3(0x73, 6), mOpF3);
    add(O::CSRRCI, F::CsrI, opF3(0x73, 7), mOpF3);

    // ----------------------------------------------------------- RV64M
    add(O::MUL, F::R, opF3F7(0x33, 0, 0x01), mOpF3F7);
    add(O::MULH, F::R, opF3F7(0x33, 1, 0x01), mOpF3F7);
    add(O::MULHSU, F::R, opF3F7(0x33, 2, 0x01), mOpF3F7);
    add(O::MULHU, F::R, opF3F7(0x33, 3, 0x01), mOpF3F7);
    add(O::DIV, F::R, opF3F7(0x33, 4, 0x01), mOpF3F7);
    add(O::DIVU, F::R, opF3F7(0x33, 5, 0x01), mOpF3F7);
    add(O::REM, F::R, opF3F7(0x33, 6, 0x01), mOpF3F7);
    add(O::REMU, F::R, opF3F7(0x33, 7, 0x01), mOpF3F7);
    add(O::MULW, F::R, opF3F7(0x3b, 0, 0x01), mOpF3F7);
    add(O::DIVW, F::R, opF3F7(0x3b, 4, 0x01), mOpF3F7);
    add(O::DIVUW, F::R, opF3F7(0x3b, 5, 0x01), mOpF3F7);
    add(O::REMW, F::R, opF3F7(0x3b, 6, 0x01), mOpF3F7);
    add(O::REMUW, F::R, opF3F7(0x3b, 7, 0x01), mOpF3F7);

    // ----------------------------------------------------------- RV64A
    add(O::LR_W, F::AmoLr, opF3F5(0x2f, 2, 0x02), mAmoLr);
    add(O::LR_D, F::AmoLr, opF3F5(0x2f, 3, 0x02), mAmoLr);
    add(O::SC_W, F::Amo, opF3F5(0x2f, 2, 0x03), mAmo);
    add(O::SC_D, F::Amo, opF3F5(0x2f, 3, 0x03), mAmo);
    struct AmoRow { O w, d; uint32_t f5; };
    const AmoRow amos[] = {
        {O::AMOSWAP_W, O::AMOSWAP_D, 0x01},
        {O::AMOADD_W, O::AMOADD_D, 0x00},
        {O::AMOXOR_W, O::AMOXOR_D, 0x04},
        {O::AMOAND_W, O::AMOAND_D, 0x0c},
        {O::AMOOR_W, O::AMOOR_D, 0x08},
        {O::AMOMIN_W, O::AMOMIN_D, 0x10},
        {O::AMOMAX_W, O::AMOMAX_D, 0x14},
        {O::AMOMINU_W, O::AMOMINU_D, 0x18},
        {O::AMOMAXU_W, O::AMOMAXU_D, 0x1c},
    };
    for (const auto &a : amos) {
        add(a.w, F::Amo, opF3F5(0x2f, 2, a.f5), mAmo);
        add(a.d, F::Amo, opF3F5(0x2f, 3, a.f5), mAmo);
    }

    // --------------------------------------------------------- RV64F/D
    add(O::FLW, F::FpLoadF, opF3(0x07, 2), mOpF3);
    add(O::FLD, F::FpLoadF, opF3(0x07, 3), mOpF3);
    add(O::FSW, F::FpStoreF, opF3(0x27, 2), mOpF3);
    add(O::FSD, F::FpStoreF, opF3(0x27, 3), mOpF3);
    add(O::FADD_S, F::FpR, 0x53 | (0x00u << 25), mFpR);
    add(O::FADD_D, F::FpR, 0x53 | (0x01u << 25), mFpR);
    add(O::FSUB_S, F::FpR, 0x53 | (0x04u << 25), mFpR);
    add(O::FSUB_D, F::FpR, 0x53 | (0x05u << 25), mFpR);
    add(O::FMUL_S, F::FpR, 0x53 | (0x08u << 25), mFpR);
    add(O::FMUL_D, F::FpR, 0x53 | (0x09u << 25), mFpR);
    add(O::FDIV_S, F::FpR, 0x53 | (0x0cu << 25), mFpR);
    add(O::FDIV_D, F::FpR, 0x53 | (0x0du << 25), mFpR);
    add(O::FSQRT_S, F::FpRUnary, 0x53 | (0x2cu << 25), mFpUnary);
    add(O::FSQRT_D, F::FpRUnary, 0x53 | (0x2du << 25), mFpUnary);
    add(O::FSGNJ_S, F::FpRF3, opF3F7(0x53, 0, 0x10), mOpF3F7);
    add(O::FSGNJN_S, F::FpRF3, opF3F7(0x53, 1, 0x10), mOpF3F7);
    add(O::FSGNJX_S, F::FpRF3, opF3F7(0x53, 2, 0x10), mOpF3F7);
    add(O::FSGNJ_D, F::FpRF3, opF3F7(0x53, 0, 0x11), mOpF3F7);
    add(O::FSGNJN_D, F::FpRF3, opF3F7(0x53, 1, 0x11), mOpF3F7);
    add(O::FSGNJX_D, F::FpRF3, opF3F7(0x53, 2, 0x11), mOpF3F7);
    add(O::FMIN_S, F::FpRF3, opF3F7(0x53, 0, 0x14), mOpF3F7);
    add(O::FMAX_S, F::FpRF3, opF3F7(0x53, 1, 0x14), mOpF3F7);
    add(O::FMIN_D, F::FpRF3, opF3F7(0x53, 0, 0x15), mOpF3F7);
    add(O::FMAX_D, F::FpRF3, opF3F7(0x53, 1, 0x15), mOpF3F7);
    add(O::FEQ_S, F::FpCmp, opF3F7(0x53, 2, 0x50), mOpF3F7);
    add(O::FLT_S, F::FpCmp, opF3F7(0x53, 1, 0x50), mOpF3F7);
    add(O::FLE_S, F::FpCmp, opF3F7(0x53, 0, 0x50), mOpF3F7);
    add(O::FEQ_D, F::FpCmp, opF3F7(0x53, 2, 0x51), mOpF3F7);
    add(O::FLT_D, F::FpCmp, opF3F7(0x53, 1, 0x51), mOpF3F7);
    add(O::FLE_D, F::FpCmp, opF3F7(0x53, 0, 0x51), mOpF3F7);
    add(O::FCLASS_S, F::FpClass, opF3F7(0x53, 1, 0x70), mFpMv);
    add(O::FCLASS_D, F::FpClass, opF3F7(0x53, 1, 0x71), mFpMv);
    add(O::FMADD_S, F::FpR4, 0x43, mR4);
    add(O::FMSUB_S, F::FpR4, 0x47, mR4);
    add(O::FNMSUB_S, F::FpR4, 0x4b, mR4);
    add(O::FNMADD_S, F::FpR4, 0x4f, mR4);
    add(O::FMADD_D, F::FpR4, 0x43 | (1u << 25), mR4);
    add(O::FMSUB_D, F::FpR4, 0x47 | (1u << 25), mR4);
    add(O::FNMSUB_D, F::FpR4, 0x4b | (1u << 25), mR4);
    add(O::FNMADD_D, F::FpR4, 0x4f | (1u << 25), mR4);
    auto cvt = [&](O op, F fmt, uint32_t f7, uint32_t rs2sel) {
        add(op, fmt, (0x53u) | (f7 << 25) | (rs2sel << 20), mFpUnary);
    };
    cvt(O::FCVT_W_S, F::FpCvtToInt, 0x60, 0);
    cvt(O::FCVT_WU_S, F::FpCvtToInt, 0x60, 1);
    cvt(O::FCVT_L_S, F::FpCvtToInt, 0x60, 2);
    cvt(O::FCVT_LU_S, F::FpCvtToInt, 0x60, 3);
    cvt(O::FCVT_S_W, F::FpCvtToFp, 0x68, 0);
    cvt(O::FCVT_S_WU, F::FpCvtToFp, 0x68, 1);
    cvt(O::FCVT_S_L, F::FpCvtToFp, 0x68, 2);
    cvt(O::FCVT_S_LU, F::FpCvtToFp, 0x68, 3);
    cvt(O::FCVT_W_D, F::FpCvtToInt, 0x61, 0);
    cvt(O::FCVT_WU_D, F::FpCvtToInt, 0x61, 1);
    cvt(O::FCVT_L_D, F::FpCvtToInt, 0x61, 2);
    cvt(O::FCVT_LU_D, F::FpCvtToInt, 0x61, 3);
    cvt(O::FCVT_D_W, F::FpCvtToFp, 0x69, 0);
    cvt(O::FCVT_D_WU, F::FpCvtToFp, 0x69, 1);
    cvt(O::FCVT_D_L, F::FpCvtToFp, 0x69, 2);
    cvt(O::FCVT_D_LU, F::FpCvtToFp, 0x69, 3);
    cvt(O::FCVT_S_D, F::FpCvtFp, 0x20, 1);
    cvt(O::FCVT_D_S, F::FpCvtFp, 0x21, 0);
    add(O::FMV_X_W, F::FpMvToInt, opF3F7(0x53, 0, 0x70), mFpMv);
    add(O::FMV_W_X, F::FpMvToFp, opF3F7(0x53, 0, 0x78), mFpMv);
    add(O::FMV_X_D, F::FpMvToInt, opF3F7(0x53, 0, 0x71), mFpMv);
    add(O::FMV_D_X, F::FpMvToFp, opF3F7(0x53, 0, 0x79), mFpMv);

    // -------------------------------------------- V extension (0.7.1)
    add(O::VSETVLI, F::VSetVLI, opF3(0x57, 7), mOpF3 | 0x80000000u);
    add(O::VSETVL, F::VSetVL, opF3F7(0x57, 7, 0x40) | 0x80000000u,
        mOpF3F7);
    add(O::VLE_V, F::VecLdUnit, vMem(0x07, 0), mVMemUnit);
    add(O::VLSE_V, F::VecLdStride, vMem(0x07, 2), mVMemOther);
    add(O::VLXE_V, F::VecLdIdx, vMem(0x07, 3), mVMemOther);
    add(O::VSE_V, F::VecStUnit, vMem(0x27, 0), mVMemUnit);
    add(O::VSSE_V, F::VecStStride, vMem(0x27, 2), mVMemOther);
    add(O::VSXE_V, F::VecStIdx, vMem(0x27, 3), mVMemOther);

    auto vvv = [&](O op, uint32_t f6) {
        add(op, F::VecVV, vArith(opIVV, f6), mVArith);
    };
    auto vvx = [&](O op, uint32_t f6) {
        add(op, F::VecVX, vArith(opIVX, f6), mVArith);
    };
    auto vvi = [&](O op, uint32_t f6) {
        add(op, F::VecVI, vArith(opIVI, f6), mVArith);
    };
    vvv(O::VADD_VV, 0x00);
    vvx(O::VADD_VX, 0x00);
    vvi(O::VADD_VI, 0x00);
    vvv(O::VSUB_VV, 0x02);
    vvx(O::VSUB_VX, 0x02);
    vvx(O::VRSUB_VX, 0x03);
    vvv(O::VMINU_VV, 0x04);
    vvv(O::VMIN_VV, 0x05);
    vvv(O::VMAXU_VV, 0x06);
    vvv(O::VMAX_VV, 0x07);
    vvv(O::VAND_VV, 0x09);
    vvx(O::VAND_VX, 0x09);
    vvv(O::VOR_VV, 0x0a);
    vvx(O::VOR_VX, 0x0a);
    vvv(O::VXOR_VV, 0x0b);
    vvx(O::VXOR_VX, 0x0b);
    vvi(O::VSLIDEUP_VI, 0x0e);
    vvi(O::VSLIDEDOWN_VI, 0x0f);
    vvv(O::VMSEQ_VV, 0x18);
    vvx(O::VMSEQ_VX, 0x18);
    vvv(O::VMSNE_VV, 0x19);
    vvv(O::VMSLTU_VV, 0x1a);
    vvv(O::VMSLT_VV, 0x1b);
    vvx(O::VMSLT_VX, 0x1b);
    vvv(O::VSLL_VV, 0x25);
    vvi(O::VSLL_VI, 0x25);
    vvv(O::VSRL_VV, 0x28);
    vvi(O::VSRL_VI, 0x28);
    vvv(O::VSRA_VV, 0x29);
    vvi(O::VSRA_VI, 0x29);
    // vmerge (vm = 0) / vmv (vm = 1, vs2 = 0) share funct6 0x17.
    add(O::VMERGE_VVM, F::VecVV, vArith(opIVV, 0x17, false), mVArithVm);
    add(O::VMERGE_VXM, F::VecVX, vArith(opIVX, 0x17, false), mVArithVm);
    add(O::VMV_V_V, F::VecMvVV, vArith(opIVV, 0x17, true), mVMv);
    add(O::VMV_V_X, F::VecMvVX, vArith(opIVX, 0x17, true), mVMv);
    add(O::VMV_V_I, F::VecMvVI, vArith(opIVI, 0x17, true), mVMv);
    // OPMVV / OPMVX space.
    add(O::VREDSUM_VS, F::VecVVRed, vArith(opMVV, 0x00), mVArith);
    add(O::VREDMAX_VS, F::VecVVRed, vArith(opMVV, 0x07), mVArith);
    add(O::VMV_X_S, F::VecMvXS, vArith(opMVV, 0x10), mVMvS);
    add(O::VMV_S_X, F::VecMvSX, vArith(opMVX, 0x10), mVMv);
    add(O::VDIVU_VV, F::VecVV, vArith(opMVV, 0x20), mVArith);
    add(O::VDIV_VV, F::VecVV, vArith(opMVV, 0x21), mVArith);
    add(O::VMUL_VV, F::VecVV, vArith(opMVV, 0x25), mVArith);
    add(O::VMUL_VX, F::VecVX, vArith(opMVX, 0x25), mVArith);
    add(O::VMULH_VV, F::VecVV, vArith(opMVV, 0x27), mVArith);
    add(O::VMADD_VV, F::VecVV, vArith(opMVV, 0x29), mVArith);
    add(O::VMACC_VV, F::VecVV, vArith(opMVV, 0x2d), mVArith);
    add(O::VMACC_VX, F::VecVX, vArith(opMVX, 0x2d), mVArith);
    add(O::VWMUL_VV, F::VecVV, vArith(opMVV, 0x3b), mVArith);
    add(O::VWMACC_VV, F::VecVV, vArith(opMVV, 0x3d), mVArith);
    // OPFVV / OPFVF space.
    add(O::VFADD_VV, F::VecVV, vArith(opFVV, 0x00), mVArith);
    add(O::VFADD_VF, F::VecVF, vArith(opFVF, 0x00), mVArith);
    add(O::VFREDSUM_VS, F::VecVVRed, vArith(opFVV, 0x01), mVArith);
    add(O::VFSUB_VV, F::VecVV, vArith(opFVV, 0x02), mVArith);
    add(O::VFMV_F_S, F::VecMvFS, vArith(opFVV, 0x10), mVMvS);
    add(O::VFMV_V_F, F::VecMvVF, vArith(opFVF, 0x17), mVMv);
    add(O::VFDIV_VV, F::VecVV, vArith(opFVV, 0x20), mVArith);
    add(O::VFMUL_VV, F::VecVV, vArith(opFVV, 0x24), mVArith);
    add(O::VFMUL_VF, F::VecVF, vArith(opFVF, 0x24), mVArith);
    add(O::VFMACC_VV, F::VecVV, vArith(opFVV, 0x2c), mVArith);
    add(O::VFMACC_VF, F::VecVF, vArith(opFVF, 0x2c), mVArith);

    // ------------------------------------- XT-910 custom (custom-0)
    const uint32_t xt = 0x0b;
    add(O::XT_ADDSL, F::XtAddSl, opF3(xt, 1), mXtF5);
    add(O::XT_EXT, F::XtExt, opF3(xt, 2), mXtF3);
    add(O::XT_EXTU, F::XtExt, opF3(xt, 3), mXtF3);
    auto idxLd = [&](O op, uint32_t f5) {
        add(op, F::XtIdxLd, opF3F5(xt, 4, f5), mXtF5);
    };
    idxLd(O::XT_LRB, 0x00);
    idxLd(O::XT_LRBU, 0x01);
    idxLd(O::XT_LRH, 0x02);
    idxLd(O::XT_LRHU, 0x03);
    idxLd(O::XT_LRW, 0x04);
    idxLd(O::XT_LRWU, 0x05);
    idxLd(O::XT_LRD, 0x06);
    idxLd(O::XT_LURW, 0x07);
    idxLd(O::XT_LURD, 0x08);
    auto idxSt = [&](O op, uint32_t f5) {
        add(op, F::XtIdxSt, opF3F5(xt, 5, f5), mXtF5);
    };
    idxSt(O::XT_SRB, 0x00);
    idxSt(O::XT_SRH, 0x02);
    idxSt(O::XT_SRW, 0x04);
    idxSt(O::XT_SRD, 0x06);
    auto unary = [&](O op, uint32_t rs2sel) {
        add(op, F::XtUnary, opF3F7(xt, 0, 0x40) | (rs2sel << 20),
            mXtUnary);
    };
    unary(O::XT_FF0, 0);
    unary(O::XT_FF1, 1);
    unary(O::XT_REV, 2);
    unary(O::XT_TSTNBZ, 3);
    add(O::XT_SRRI, F::XtImm6, opF3(xt, 6) | (0x04u << 26), mXtImm6);
    auto mac = [&](O op, uint32_t f7) {
        add(op, F::XtR, opF3F7(xt, 0, f7), mOpF3F7);
    };
    mac(O::XT_MULA, 0x10);
    mac(O::XT_MULS, 0x11);
    mac(O::XT_MULAH, 0x12);
    mac(O::XT_MULSH, 0x13);
    auto cacheAll = [&](O op, uint32_t f7) {
        add(op, F::XtCacheAll, opF3F7(xt, 7, f7), mXtAll);
    };
    cacheAll(O::XT_DCACHE_CALL, 0x01);
    cacheAll(O::XT_DCACHE_CIALL, 0x02);
    cacheAll(O::XT_ICACHE_IALL, 0x03);
    cacheAll(O::XT_SYNC, 0x04);
    cacheAll(O::XT_SYNC_I, 0x05);
    cacheAll(O::XT_TLB_IALL, 0x06);
    auto cacheVa = [&](O op, uint32_t f7) {
        add(op, F::XtCacheVA, opF3F7(xt, 7, f7), mXtVa);
    };
    cacheVa(O::XT_TLB_IASID, 0x07);
    cacheVa(O::XT_DCACHE_CVA, 0x08);
    cacheVa(O::XT_DCACHE_CIVA, 0x09);
    cacheVa(O::XT_TLB_BCAST, 0x0a);

    return t;
}

// ------------------------------------------------ immediate codecs

uint32_t
encImmI(int64_t imm)
{
    return (uint32_t(imm) & 0xfff) << 20;
}

int64_t
decImmI(uint32_t w)
{
    return sext(bits(w, 31, 20), 12);
}

uint32_t
encImmS(int64_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bits(u, 11, 5) << 25) | (bits(u, 4, 0) << 7);
}

int64_t
decImmS(uint32_t w)
{
    return sext((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}

uint32_t
encImmB(int64_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) |
           (bits(u, 4, 1) << 8) | (bit(u, 11) << 7);
}

int64_t
decImmB(uint32_t w)
{
    return sext((bit(w, 31) << 12) | (bit(w, 7) << 11) |
                    (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1),
                13);
}

uint32_t
encImmU(int64_t imm)
{
    return uint32_t(imm) & 0xfffff000;
}

int64_t
decImmU(uint32_t w)
{
    return sext(w & 0xfffff000, 32);
}

uint32_t
encImmJ(int64_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) |
           (bit(u, 11) << 20) | (bits(u, 19, 12) << 12);
}

int64_t
decImmJ(uint32_t w)
{
    return sext((bit(w, 31) << 20) | (bits(w, 19, 12) << 12) |
                    (bit(w, 20) << 11) | (bits(w, 30, 21) << 1),
                21);
}

// --------------------------------------------- field packing tables

uint32_t
rdF(RegIndex r)
{
    return (uint32_t(r) & 0x1f) << 7;
}

uint32_t
rs1F(RegIndex r)
{
    return (uint32_t(r) & 0x1f) << 15;
}

uint32_t
rs2F(RegIndex r)
{
    return (uint32_t(r) & 0x1f) << 20;
}

uint32_t
rs3F(RegIndex r)
{
    return (uint32_t(r) & 0x1f) << 27;
}

/** Validate that @p imm is representable in a @p bits-bit field. */
void
checkImm(int64_t imm, unsigned bits, const DecodedInst &di)
{
    int64_t lo = -(1ll << (bits - 1));
    int64_t hi = (1ll << (bits - 1)) - 1;
    if (imm < lo || imm > hi)
        xt_fatal("immediate ", imm, " out of range for ",
                 mnemonic(di.op), " (", bits, "-bit field)");
}

/** Pack the operand fields of @p di into @p w according to @p fmt. */
uint32_t
packOperands(EncFormat fmt, const DecodedInst &di, uint32_t w)
{
    using F = EncFormat;
    switch (fmt) {
      case F::I:
      case F::FpLoadF:
      case F::S:
      case F::FpStoreF:
        checkImm(di.imm, 12, di);
        break;
      case F::B:
        checkImm(di.imm, 13, di);
        break;
      case F::J:
        checkImm(di.imm, 21, di);
        break;
      case F::U:
        checkImm(di.imm >> 12, 20, di);
        break;
      case F::VecVI:
      case F::VecMvVI:
        checkImm(di.imm, 5, di);
        break;
      default:
        break;
    }
    switch (fmt) {
      case F::R:
      case F::XtR:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2);
      case F::I:
      case F::FpLoadF:
        return w | rdF(di.rd) | rs1F(di.rs1) | encImmI(di.imm);
      case F::IShift:
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0x3f) << 20);
      case F::IShiftW:
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0x1f) << 20);
      case F::S:
      case F::FpStoreF:
        return w | rs1F(di.rs1) | rs2F(di.rs2) | encImmS(di.imm);
      case F::B:
        return w | rs1F(di.rs1) | rs2F(di.rs2) | encImmB(di.imm);
      case F::U:
        return w | rdF(di.rd) | encImmU(di.imm);
      case F::J:
        return w | rdF(di.rd) | encImmJ(di.imm);
      case F::Sys:
        return w;
      case F::SfenceVma:
        return w | rs1F(di.rs1) | rs2F(di.rs2);
      case F::CsrR:
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0xfff) << 20);
      case F::CsrI:
        // rs1 slot carries the 5-bit zimm, stored in di.rs1.
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0xfff) << 20);
      case F::Amo:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2);
      case F::AmoLr:
        return w | rdF(di.rd) | rs1F(di.rs1);
      case F::FpR:
      case F::FpRF3:
      case F::FpCmp:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2);
      case F::FpRUnary:
      case F::FpClass:
      case F::FpCvtToInt:
      case F::FpCvtToFp:
      case F::FpCvtFp:
      case F::FpMvToInt:
      case F::FpMvToFp:
        return w | rdF(di.rd) | rs1F(di.rs1);
      case F::FpR4:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2) |
               rs3F(di.rs3);
      case F::VecVV:
      case F::VecVVRed:
      case F::VecVX:
      case F::VecVF:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2) |
               (di.vm ? fVm : 0);
      case F::VecVI:
        return w | rdF(di.rd) | ((uint32_t(di.imm) & 0x1f) << 15) |
               rs2F(di.rs2) | (di.vm ? fVm : 0);
      case F::VecMvXS:
      case F::VecMvFS:
        return w | rdF(di.rd) | rs2F(di.rs2);
      case F::VecMvSX:
      case F::VecMvVX:
      case F::VecMvVF:
        return w | rdF(di.rd) | rs1F(di.rs1);
      case F::VecMvVV:
        return w | rdF(di.rd) | rs1F(di.rs1);
      case F::VecMvVI:
        return w | rdF(di.rd) | ((uint32_t(di.imm) & 0x1f) << 15);
      case F::VSetVLI:
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0x7ff) << 20);
      case F::VSetVL:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2);
      case F::VecLdUnit:
        return w | rdF(di.rd) | rs1F(di.rs1) | (di.vm ? fVm : 0);
      case F::VecLdStride:
      case F::VecLdIdx:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2) |
               (di.vm ? fVm : 0);
      case F::VecStUnit:
        return w | rdF(di.rs3) | rs1F(di.rs1) | (di.vm ? fVm : 0);
      case F::VecStStride:
      case F::VecStIdx:
        return w | rdF(di.rs3) | rs1F(di.rs1) | rs2F(di.rs2) |
               (di.vm ? fVm : 0);
      case F::XtAddSl:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2) |
               ((uint32_t(di.shamt2) & 3) << 25);
      case F::XtIdxLd:
        return w | rdF(di.rd) | rs1F(di.rs1) | rs2F(di.rs2) |
               ((uint32_t(di.shamt2) & 3) << 25);
      case F::XtIdxSt:
        return w | rdF(di.rs3) | rs1F(di.rs1) | rs2F(di.rs2) |
               ((uint32_t(di.shamt2) & 3) << 25);
      case F::XtExt:
        // imm packs msb<<6 | lsb.
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0xfff) << 20);
      case F::XtImm6:
        return w | rdF(di.rd) | rs1F(di.rs1) |
               ((uint32_t(di.imm) & 0x3f) << 20);
      case F::XtUnary:
        return w | rdF(di.rd) | rs1F(di.rs1);
      case F::XtCacheVA:
        return w | rs1F(di.rs1);
      case F::XtCacheAll:
        return w;
    }
    xt_panic("unhandled encode format");
}

/** Unpack operand fields of @p w into @p di according to @p fmt. */
void
unpackOperands(EncFormat fmt, uint32_t w, DecodedInst &di)
{
    using F = EncFormat;
    using RC = RegClass;
    auto rd = RegIndex(bits(w, 11, 7));
    auto rs1 = RegIndex(bits(w, 19, 15));
    auto rs2 = RegIndex(bits(w, 24, 20));
    auto rs3 = RegIndex(bits(w, 31, 27));
    auto setRd = [&](RC c) { di.rd = rd; di.rdClass = c; };
    auto setRs1 = [&](RC c) { di.rs1 = rs1; di.rs1Class = c; };
    auto setRs2 = [&](RC c) { di.rs2 = rs2; di.rs2Class = c; };

    switch (fmt) {
      case F::R:
      case F::XtR:
        setRd(RC::Int); setRs1(RC::Int); setRs2(RC::Int);
        break;
      case F::I:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = decImmI(w);
        break;
      case F::FpLoadF:
        setRd(RC::Fp); setRs1(RC::Int);
        di.imm = decImmI(w);
        break;
      case F::IShift:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 25, 20));
        break;
      case F::IShiftW:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 24, 20));
        break;
      case F::S:
        setRs1(RC::Int); setRs2(RC::Int);
        di.imm = decImmS(w);
        break;
      case F::FpStoreF:
        setRs1(RC::Int); setRs2(RC::Fp);
        di.imm = decImmS(w);
        break;
      case F::B:
        setRs1(RC::Int); setRs2(RC::Int);
        di.imm = decImmB(w);
        break;
      case F::U:
        setRd(RC::Int);
        di.imm = decImmU(w);
        break;
      case F::J:
        setRd(RC::Int);
        di.imm = decImmJ(w);
        break;
      case F::Sys:
        break;
      case F::SfenceVma:
        setRs1(RC::Int); setRs2(RC::Int);
        break;
      case F::CsrR:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 31, 20));
        break;
      case F::CsrI:
        setRd(RC::Int);
        di.rs1 = rs1; // zimm5, not a register read
        di.imm = int64_t(bits(w, 31, 20));
        break;
      case F::Amo:
        setRd(RC::Int); setRs1(RC::Int); setRs2(RC::Int);
        break;
      case F::AmoLr:
        setRd(RC::Int); setRs1(RC::Int);
        break;
      case F::FpR:
      case F::FpRF3:
        setRd(RC::Fp); setRs1(RC::Fp); setRs2(RC::Fp);
        break;
      case F::FpCmp:
        setRd(RC::Int); setRs1(RC::Fp); setRs2(RC::Fp);
        break;
      case F::FpRUnary:
      case F::FpCvtFp:
        setRd(RC::Fp); setRs1(RC::Fp);
        break;
      case F::FpClass:
      case F::FpCvtToInt:
      case F::FpMvToInt:
        setRd(RC::Int); setRs1(RC::Fp);
        break;
      case F::FpCvtToFp:
      case F::FpMvToFp:
        setRd(RC::Fp); setRs1(RC::Int);
        break;
      case F::FpR4:
        setRd(RC::Fp); setRs1(RC::Fp); setRs2(RC::Fp);
        di.rs3 = rs3;
        di.rs3Class = RC::Fp;
        break;
      case F::VecVV:
      case F::VecVVRed:
        setRd(RC::Vec); setRs1(RC::Vec); setRs2(RC::Vec);
        di.vm = bit(w, 25);
        break;
      case F::VecVX:
        setRd(RC::Vec); setRs1(RC::Int); setRs2(RC::Vec);
        di.vm = bit(w, 25);
        break;
      case F::VecVF:
        setRd(RC::Vec); setRs1(RC::Fp); setRs2(RC::Vec);
        di.vm = bit(w, 25);
        break;
      case F::VecVI:
        setRd(RC::Vec); setRs2(RC::Vec);
        di.imm = sext(bits(w, 19, 15), 5);
        di.vm = bit(w, 25);
        break;
      case F::VecMvXS:
        setRd(RC::Int); setRs2(RC::Vec);
        break;
      case F::VecMvFS:
        setRd(RC::Fp); setRs2(RC::Vec);
        break;
      case F::VecMvSX:
        setRd(RC::Vec); setRs1(RC::Int);
        break;
      case F::VecMvVX:
        setRd(RC::Vec); setRs1(RC::Int);
        break;
      case F::VecMvVF:
        setRd(RC::Vec); setRs1(RC::Fp);
        break;
      case F::VecMvVV:
        setRd(RC::Vec); setRs1(RC::Vec);
        break;
      case F::VecMvVI:
        setRd(RC::Vec);
        di.imm = sext(bits(w, 19, 15), 5);
        break;
      case F::VSetVLI:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 30, 20));
        break;
      case F::VSetVL:
        setRd(RC::Int); setRs1(RC::Int); setRs2(RC::Int);
        break;
      case F::VecLdUnit:
        setRd(RC::Vec); setRs1(RC::Int);
        di.vm = bit(w, 25);
        break;
      case F::VecLdStride:
        setRd(RC::Vec); setRs1(RC::Int); setRs2(RC::Int);
        di.vm = bit(w, 25);
        break;
      case F::VecLdIdx:
        setRd(RC::Vec); setRs1(RC::Int); setRs2(RC::Vec);
        di.vm = bit(w, 25);
        break;
      case F::VecStUnit:
        setRs1(RC::Int);
        di.rs3 = rd;
        di.rs3Class = RC::Vec;
        di.vm = bit(w, 25);
        break;
      case F::VecStStride:
        setRs1(RC::Int); setRs2(RC::Int);
        di.rs3 = rd;
        di.rs3Class = RC::Vec;
        di.vm = bit(w, 25);
        break;
      case F::VecStIdx:
        setRs1(RC::Int); setRs2(RC::Vec);
        di.rs3 = rd;
        di.rs3Class = RC::Vec;
        di.vm = bit(w, 25);
        break;
      case F::XtAddSl:
      case F::XtIdxLd:
        setRd(RC::Int); setRs1(RC::Int); setRs2(RC::Int);
        di.shamt2 = uint8_t(bits(w, 26, 25));
        break;
      case F::XtIdxSt:
        setRs1(RC::Int); setRs2(RC::Int);
        di.rs3 = rd;
        di.rs3Class = RC::Int;
        di.shamt2 = uint8_t(bits(w, 26, 25));
        break;
      case F::XtExt:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 31, 20));
        break;
      case F::XtImm6:
        setRd(RC::Int); setRs1(RC::Int);
        di.imm = int64_t(bits(w, 25, 20));
        break;
      case F::XtUnary:
        setRd(RC::Int); setRs1(RC::Int);
        break;
      case F::XtCacheVA:
        setRs1(RC::Int);
        break;
      case F::XtCacheAll:
        break;
    }
}

/** Per-opcode entry index, built lazily. */
const std::array<int, numOpcodes> &
entryIndex()
{
    static const std::array<int, numOpcodes> idx = [] {
        std::array<int, numOpcodes> a;
        a.fill(-1);
        const auto &tab = encodingTable();
        for (size_t i = 0; i < tab.size(); ++i)
            a[static_cast<unsigned>(tab[i].op)] = int(i);
        return a;
    }();
    return idx;
}

/** Decode buckets by major opcode (low 7 bits). */
const std::array<std::vector<const EncEntry *>, 128> &
decodeBuckets()
{
    static const auto buckets = [] {
        std::array<std::vector<const EncEntry *>, 128> b;
        for (const auto &e : encodingTable())
            b[e.match & 0x7f].push_back(&e);
        return b;
    }();
    return buckets;
}

} // namespace

const std::vector<EncEntry> &
encodingTable()
{
    static const std::vector<EncEntry> table = buildTable();
    return table;
}

const EncEntry *
encEntryOf(Opcode op)
{
    if (op >= Opcode::NumOpcodes)
        return nullptr;
    int idx = entryIndex()[static_cast<unsigned>(op)];
    return idx < 0 ? nullptr : &encodingTable()[size_t(idx)];
}

uint32_t
encode(const DecodedInst &di)
{
    int idx = entryIndex()[static_cast<unsigned>(di.op)];
    xt_assert(idx >= 0, "no encoding for opcode ", mnemonic(di.op));
    const EncEntry &e = encodingTable()[size_t(idx)];
    return packOperands(e.fmt, di, e.match);
}

DecodedInst
decode32(uint32_t word)
{
    DecodedInst di;
    di.raw = word;
    di.len = 4;
    for (const EncEntry *e : decodeBuckets()[word & 0x7f]) {
        if ((word & e->mask) == e->match) {
            di.op = e->op;
            unpackOperands(e->fmt, word, di);
            return di;
        }
    }
    return di; // Invalid
}

DecodedInst
decode(uint32_t word)
{
    if ((word & 3) == 3)
        return decode32(word);
    uint32_t expanded = expandRvc(uint16_t(word & 0xffff));
    if (expanded == 0) {
        DecodedInst di;
        di.raw = word & 0xffff;
        di.len = 2;
        return di; // Invalid
    }
    DecodedInst di = decode32(expanded);
    di.len = 2;
    di.raw = expanded;
    return di;
}

} // namespace xt910
