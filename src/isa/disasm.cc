#include "isa/disasm.h"

#include <sstream>

#include "isa/encoding.h"

namespace xt910
{

const char *
intRegName(RegIndex r)
{
    static const char *names[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    };
    return r < 32 ? names[r] : "x?";
}

const char *
fpRegName(RegIndex r)
{
    static const char *names[32] = {
        "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
        "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
        "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
        "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
    };
    return r < 32 ? names[r] : "f?";
}

std::string
vecRegName(RegIndex r)
{
    return "v" + std::to_string(r);
}

namespace
{

std::string
reg(RegClass cls, RegIndex r)
{
    switch (cls) {
      case RegClass::Int: return intRegName(r);
      case RegClass::Fp: return fpRegName(r);
      case RegClass::Vec: return vecRegName(r);
      default: return "?";
    }
}

} // namespace

std::string
disassemble(const DecodedInst &di)
{
    if (!di.valid())
        return "<invalid>";
    const EncEntry *e = encEntryOf(di.op);
    if (!e)
        return mnemonic(di.op);

    std::ostringstream os;
    os << mnemonic(di.op);
    auto rd = [&] { return reg(di.rdClass, di.rd); };
    auto rs1 = [&] { return reg(di.rs1Class, di.rs1); };
    auto rs2 = [&] { return reg(di.rs2Class, di.rs2); };
    auto rs3 = [&] { return reg(di.rs3Class, di.rs3); };
    auto maskSuffix = [&] { return di.vm ? "" : ", v0.t"; };

    using F = EncFormat;
    switch (e->fmt) {
      case F::R:
      case F::XtR:
      case F::FpR:
      case F::FpRF3:
      case F::FpCmp:
      case F::VSetVL:
        os << " " << rd() << ", " << rs1() << ", " << rs2();
        break;
      case F::I:
        if (opClass(di.op) == OpClass::Load)
            os << " " << rd() << ", " << di.imm << "(" << rs1() << ")";
        else
            os << " " << rd() << ", " << rs1() << ", " << di.imm;
        break;
      case F::IShift:
      case F::IShiftW:
      case F::XtImm6:
        os << " " << rd() << ", " << rs1() << ", " << di.imm;
        break;
      case F::S:
      case F::FpStoreF:
        os << " " << rs2() << ", " << di.imm << "(" << rs1() << ")";
        break;
      case F::FpLoadF:
        os << " " << rd() << ", " << di.imm << "(" << rs1() << ")";
        break;
      case F::B:
        os << " " << rs1() << ", " << rs2() << ", " << di.imm;
        break;
      case F::U:
        os << " " << rd() << ", 0x" << std::hex << (di.imm >> 12);
        break;
      case F::J:
        os << " " << rd() << ", " << di.imm;
        break;
      case F::Sys:
      case F::XtCacheAll:
        break;
      case F::SfenceVma:
        os << " " << rs1() << ", " << rs2();
        break;
      case F::CsrR:
        os << " " << rd() << ", 0x" << std::hex << di.imm << std::dec
           << ", " << rs1();
        break;
      case F::CsrI:
        os << " " << rd() << ", 0x" << std::hex << di.imm << std::dec
           << ", " << unsigned(di.rs1);
        break;
      case F::Amo:
        os << " " << rd() << ", " << rs2() << ", (" << rs1() << ")";
        break;
      case F::AmoLr:
        os << " " << rd() << ", (" << rs1() << ")";
        break;
      case F::FpRUnary:
      case F::FpCvtToInt:
      case F::FpCvtToFp:
      case F::FpCvtFp:
      case F::FpMvToInt:
      case F::FpMvToFp:
      case F::FpClass:
      case F::XtUnary:
        os << " " << rd() << ", " << rs1();
        break;
      case F::FpR4:
        os << " " << rd() << ", " << rs1() << ", " << rs2() << ", "
           << rs3();
        break;
      case F::VecVV:
      case F::VecVVRed:
      case F::VecVX:
      case F::VecVF:
        os << " " << rd() << ", " << rs2() << ", " << rs1()
           << maskSuffix();
        break;
      case F::VecVI:
        os << " " << rd() << ", " << rs2() << ", " << di.imm
           << maskSuffix();
        break;
      case F::VecMvXS:
      case F::VecMvFS:
        os << " " << rd() << ", " << rs2();
        break;
      case F::VecMvSX:
      case F::VecMvVX:
      case F::VecMvVF:
      case F::VecMvVV:
        os << " " << rd() << ", " << rs1();
        break;
      case F::VecMvVI:
        os << " " << rd() << ", " << di.imm;
        break;
      case F::VSetVLI:
        os << " " << rd() << ", " << rs1() << ", 0x" << std::hex
           << di.imm;
        break;
      case F::VecLdUnit:
        os << " " << rd() << ", (" << rs1() << ")" << maskSuffix();
        break;
      case F::VecLdStride:
      case F::VecLdIdx:
        os << " " << rd() << ", (" << rs1() << "), " << rs2()
           << maskSuffix();
        break;
      case F::VecStUnit:
        os << " " << rs3() << ", (" << rs1() << ")" << maskSuffix();
        break;
      case F::VecStStride:
      case F::VecStIdx:
        os << " " << rs3() << ", (" << rs1() << "), " << rs2()
           << maskSuffix();
        break;
      case F::XtAddSl:
        os << " " << rd() << ", " << rs1() << ", " << rs2() << ", "
           << unsigned(di.shamt2);
        break;
      case F::XtIdxLd:
        os << " " << rd() << ", " << rs1() << ", " << rs2() << " << "
           << unsigned(di.shamt2);
        break;
      case F::XtIdxSt:
        os << " " << rs3() << ", " << rs1() << ", " << rs2() << " << "
           << unsigned(di.shamt2);
        break;
      case F::XtExt:
        os << " " << rd() << ", " << rs1() << ", " << (di.imm >> 6)
           << ", " << (di.imm & 0x3f);
        break;
      case F::XtCacheVA:
        os << " (" << rs1() << ")";
        break;
    }
    return os.str();
}

} // namespace xt910
