#include "isa/opcodes.h"

#include <array>

namespace xt910
{

namespace
{

struct OpInfo
{
    const char *mnem;
    OpClass cls;
    uint8_t lat;
};

constexpr std::array<OpInfo, numOpcodes> opTable = {{
#define X(op, mnem, cls, lat) OpInfo{mnem, OpClass::cls, lat},
#include "isa/opcodes.def"
#undef X
}};

} // namespace

const char *
mnemonic(Opcode op)
{
    if (op >= Opcode::NumOpcodes)
        return "<invalid>";
    return opTable[static_cast<unsigned>(op)].mnem;
}

OpClass
opClass(Opcode op)
{
    // Invalid (an illegal instruction flowing through as a trap record)
    // behaves like a single-cycle ALU op in the timing model.
    if (op >= Opcode::NumOpcodes)
        return OpClass::IntAlu;
    return opTable[static_cast<unsigned>(op)].cls;
}

unsigned
defaultLatency(Opcode op)
{
    if (op >= Opcode::NumOpcodes)
        return 1;
    return opTable[static_cast<unsigned>(op)].lat;
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::Branch: return "Branch";
      case OpClass::Jump: return "Jump";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Amo: return "Amo";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::FpCvt: return "FpCvt";
      case OpClass::Csr: return "Csr";
      case OpClass::System: return "System";
      case OpClass::Fence: return "Fence";
      case OpClass::CacheOp: return "CacheOp";
      case OpClass::VecCfg: return "VecCfg";
      case OpClass::VecAlu: return "VecAlu";
      case OpClass::VecMul: return "VecMul";
      case OpClass::VecDiv: return "VecDiv";
      case OpClass::VecLoad: return "VecLoad";
      case OpClass::VecStore: return "VecStore";
      default: return "?";
    }
}

bool
isControlFlow(Opcode op)
{
    OpClass c = opClass(op);
    return c == OpClass::Branch || c == OpClass::Jump;
}

bool
isMemRead(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::Load:
      case OpClass::FpLoad:
      case OpClass::VecLoad:
        return true;
      case OpClass::Amo:
        // SC only writes, but treating it as read+write is harmless.
        return true;
      default:
        return false;
    }
}

bool
isMemWrite(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::Store:
      case OpClass::FpStore:
      case OpClass::VecStore:
        return true;
      case OpClass::Amo:
        return !(op == Opcode::LR_W || op == Opcode::LR_D);
      default:
        return false;
    }
}

bool
isVector(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::VecCfg:
      case OpClass::VecAlu:
      case OpClass::VecMul:
      case OpClass::VecDiv:
      case OpClass::VecLoad:
      case OpClass::VecStore:
        return true;
      default:
        return false;
    }
}

bool
isCustom(Opcode op)
{
    return op >= Opcode::XT_LRB && op <= Opcode::XT_TLB_BCAST;
}

} // namespace xt910
