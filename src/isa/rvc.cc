/**
 * @file
 * RVC (compressed) instruction expansion and compression. Expansion maps
 * a 16-bit halfword to the equivalent 32-bit encoding, which is then run
 * through the ordinary 32-bit decoder; compression is the inverse used
 * by the assembler's auto-compression pass.
 */

#include "common/bitutil.h"
#include "isa/encoding.h"

namespace xt910
{

namespace
{

// Build 32-bit encodings directly (opcode-major constants).
uint32_t
mkR(uint32_t opc, uint32_t f3, uint32_t f7, uint32_t rd, uint32_t rs1,
    uint32_t rs2)
{
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           (rd << 7) | opc;
}

uint32_t
mkI(uint32_t opc, uint32_t f3, uint32_t rd, uint32_t rs1, int32_t imm)
{
    return ((uint32_t(imm) & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) |
           (rd << 7) | opc;
}

uint32_t
mkS(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2, int32_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bits(u, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
           (f3 << 12) | (bits(u, 4, 0) << 7) | opc;
}

uint32_t
mkB(uint32_t opc, uint32_t f3, uint32_t rs1, uint32_t rs2, int32_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (rs2 << 20) |
           (rs1 << 15) | (f3 << 12) | (bits(u, 4, 1) << 8) |
           (bit(u, 11) << 7) | opc;
}

uint32_t
mkJ(uint32_t rd, int32_t imm)
{
    uint32_t u = uint32_t(imm);
    return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) |
           (bit(u, 11) << 20) | (bits(u, 19, 12) << 12) | (rd << 7) |
           0x6f;
}

uint32_t
mkU(uint32_t opc, uint32_t rd, int32_t imm)
{
    return (uint32_t(imm) & 0xfffff000) | (rd << 7) | opc;
}

} // namespace

uint32_t
expandRvc(uint16_t h)
{
    const uint32_t op = h & 3;
    const uint32_t f3 = bits(h, 15, 13);
    const uint32_t rdFull = bits(h, 11, 7);
    const uint32_t rs2Full = bits(h, 6, 2);
    const uint32_t rdP = 8 + bits(h, 4, 2);   // rd'/rs2'
    const uint32_t rs1P = 8 + bits(h, 9, 7);  // rs1'/rd'

    if (op == 0) {
        switch (f3) {
          case 0: { // c.addi4spn
            uint32_t imm = (bits(h, 10, 7) << 6) | (bits(h, 12, 11) << 4) |
                           (bit(h, 5) << 3) | (bit(h, 6) << 2);
            if (imm == 0)
                return 0;
            return mkI(0x13, 0, rdP, 2, int32_t(imm));
          }
          case 1: { // c.fld
            uint32_t imm = (bits(h, 6, 5) << 6) | (bits(h, 12, 10) << 3);
            return mkI(0x07, 3, rdP, rs1P, int32_t(imm));
          }
          case 2: { // c.lw
            uint32_t imm = (bit(h, 5) << 6) | (bits(h, 12, 10) << 3) |
                           (bit(h, 6) << 2);
            return mkI(0x03, 2, rdP, rs1P, int32_t(imm));
          }
          case 3: { // c.ld
            uint32_t imm = (bits(h, 6, 5) << 6) | (bits(h, 12, 10) << 3);
            return mkI(0x03, 3, rdP, rs1P, int32_t(imm));
          }
          case 5: { // c.fsd
            uint32_t imm = (bits(h, 6, 5) << 6) | (bits(h, 12, 10) << 3);
            return mkS(0x27, 3, rs1P, rdP, int32_t(imm));
          }
          case 6: { // c.sw
            uint32_t imm = (bit(h, 5) << 6) | (bits(h, 12, 10) << 3) |
                           (bit(h, 6) << 2);
            return mkS(0x23, 2, rs1P, rdP, int32_t(imm));
          }
          case 7: { // c.sd
            uint32_t imm = (bits(h, 6, 5) << 6) | (bits(h, 12, 10) << 3);
            return mkS(0x23, 3, rs1P, rdP, int32_t(imm));
          }
          default:
            return 0;
        }
    }

    if (op == 1) {
        switch (f3) {
          case 0: { // c.addi / c.nop
            int32_t imm = int32_t(sext((bit(h, 12) << 5) | bits(h, 6, 2), 6));
            return mkI(0x13, 0, rdFull, rdFull, imm);
          }
          case 1: { // c.addiw
            if (rdFull == 0)
                return 0;
            int32_t imm = int32_t(sext((bit(h, 12) << 5) | bits(h, 6, 2), 6));
            return mkI(0x1b, 0, rdFull, rdFull, imm);
          }
          case 2: { // c.li
            int32_t imm = int32_t(sext((bit(h, 12) << 5) | bits(h, 6, 2), 6));
            return mkI(0x13, 0, rdFull, 0, imm);
          }
          case 3: {
            if (rdFull == 2) { // c.addi16sp
                int32_t imm = int32_t(
                    sext((bit(h, 12) << 9) | (bits(h, 4, 3) << 7) |
                             (bit(h, 5) << 6) | (bit(h, 2) << 5) |
                             (bit(h, 6) << 4),
                         10));
                if (imm == 0)
                    return 0;
                return mkI(0x13, 0, 2, 2, imm);
            }
            // c.lui
            int32_t imm = int32_t(
                sext((bit(h, 12) << 17) | (bits(h, 6, 2) << 12), 18));
            if (imm == 0 || rdFull == 0)
                return 0;
            return mkU(0x37, rdFull, imm);
          }
          case 4: {
            uint32_t sub = bits(h, 11, 10);
            if (sub == 0 || sub == 1) { // c.srli / c.srai
                uint32_t shamt = (bit(h, 12) << 5) | bits(h, 6, 2);
                uint32_t f6 = sub == 0 ? 0x00 : 0x10;
                return (f6 << 26) | (shamt << 20) | (rs1P << 15) |
                       (5u << 12) | (rs1P << 7) | 0x13;
            }
            if (sub == 2) { // c.andi
                int32_t imm =
                    int32_t(sext((bit(h, 12) << 5) | bits(h, 6, 2), 6));
                return mkI(0x13, 7, rs1P, rs1P, imm);
            }
            uint32_t sub2 = bits(h, 6, 5);
            if (bit(h, 12) == 0) {
                switch (sub2) {
                  case 0: return mkR(0x33, 0, 0x20, rs1P, rs1P, rdP); // sub
                  case 1: return mkR(0x33, 4, 0x00, rs1P, rs1P, rdP); // xor
                  case 2: return mkR(0x33, 6, 0x00, rs1P, rs1P, rdP); // or
                  case 3: return mkR(0x33, 7, 0x00, rs1P, rs1P, rdP); // and
                }
            } else {
                switch (sub2) {
                  case 0: return mkR(0x3b, 0, 0x20, rs1P, rs1P, rdP); // subw
                  case 1: return mkR(0x3b, 0, 0x00, rs1P, rs1P, rdP); // addw
                  default: return 0;
                }
            }
            return 0;
          }
          case 5: { // c.j
            int32_t imm = int32_t(sext(
                (bit(h, 12) << 11) | (bit(h, 8) << 10) |
                    (bits(h, 10, 9) << 8) | (bit(h, 6) << 7) |
                    (bit(h, 7) << 6) | (bit(h, 2) << 5) |
                    (bit(h, 11) << 4) | (bits(h, 5, 3) << 1),
                12));
            return mkJ(0, imm);
          }
          case 6:
          case 7: { // c.beqz / c.bnez
            int32_t imm = int32_t(
                sext((bit(h, 12) << 8) | (bits(h, 6, 5) << 6) |
                         (bit(h, 2) << 5) | (bits(h, 11, 10) << 3) |
                         (bits(h, 4, 3) << 1),
                     9));
            return mkB(0x63, f3 == 6 ? 0 : 1, rs1P, 0, imm);
          }
        }
        return 0;
    }

    if (op == 2) {
        switch (f3) {
          case 0: { // c.slli
            uint32_t shamt = (bit(h, 12) << 5) | bits(h, 6, 2);
            return (shamt << 20) | (rdFull << 15) | (1u << 12) |
                   (rdFull << 7) | 0x13;
          }
          case 1: { // c.fldsp
            uint32_t imm = (bits(h, 4, 2) << 6) | (bit(h, 12) << 5) |
                           (bits(h, 6, 5) << 3);
            return mkI(0x07, 3, rdFull, 2, int32_t(imm));
          }
          case 2: { // c.lwsp
            if (rdFull == 0)
                return 0;
            uint32_t imm = (bits(h, 3, 2) << 6) | (bit(h, 12) << 5) |
                           (bits(h, 6, 4) << 2);
            return mkI(0x03, 2, rdFull, 2, int32_t(imm));
          }
          case 3: { // c.ldsp
            if (rdFull == 0)
                return 0;
            uint32_t imm = (bits(h, 4, 2) << 6) | (bit(h, 12) << 5) |
                           (bits(h, 6, 5) << 3);
            return mkI(0x03, 3, rdFull, 2, int32_t(imm));
          }
          case 4: {
            if (bit(h, 12) == 0) {
                if (rs2Full == 0) { // c.jr
                    if (rdFull == 0)
                        return 0;
                    return mkI(0x67, 0, 0, rdFull, 0);
                }
                // c.mv: add rd, x0, rs2
                return mkR(0x33, 0, 0x00, rdFull, 0, rs2Full);
            }
            if (rdFull == 0 && rs2Full == 0)
                return 0x00100073; // c.ebreak
            if (rs2Full == 0)      // c.jalr
                return mkI(0x67, 0, 1, rdFull, 0);
            // c.add
            return mkR(0x33, 0, 0x00, rdFull, rdFull, rs2Full);
          }
          case 5: { // c.fsdsp
            uint32_t imm = (bits(h, 9, 7) << 6) | (bits(h, 12, 10) << 3);
            return mkS(0x27, 3, 2, rs2Full, int32_t(imm));
          }
          case 6: { // c.swsp
            uint32_t imm = (bits(h, 8, 7) << 6) | (bits(h, 12, 9) << 2);
            return mkS(0x23, 2, 2, rs2Full, int32_t(imm));
          }
          case 7: { // c.sdsp
            uint32_t imm = (bits(h, 9, 7) << 6) | (bits(h, 12, 10) << 3);
            return mkS(0x23, 3, 2, rs2Full, int32_t(imm));
          }
        }
        return 0;
    }

    return 0;
}

namespace
{

bool
isPrime(RegIndex r)
{
    return r >= 8 && r <= 15;
}

bool
fitsImm6(int64_t v)
{
    return v >= -32 && v <= 31;
}

uint16_t
cr(uint32_t f4, uint32_t rd, uint32_t rs2)
{
    return uint16_t((f4 << 12) | (rd << 7) | (rs2 << 2) | 2);
}

uint16_t
ci(uint32_t f3, uint32_t imm5, uint32_t rd, uint32_t imm40, uint32_t op)
{
    return uint16_t((f3 << 13) | (imm5 << 12) | (rd << 7) | (imm40 << 2) |
                    op);
}

} // namespace

std::optional<uint16_t>
compressInst(const DecodedInst &di)
{
    using O = Opcode;
    const RegIndex rd = di.rd, rs1 = di.rs1, rs2 = di.rs2;
    const int64_t imm = di.imm;

    switch (di.op) {
      case O::ADDI:
        if (rd == rs1 && fitsImm6(imm)) // c.addi (incl. c.nop)
            return ci(0, bit(imm, 5), rd, bits(imm, 4, 0), 1);
        if (rs1 == 0 && rd != 0 && fitsImm6(imm)) // c.li
            return ci(2, bit(imm, 5), rd, bits(imm, 4, 0), 1);
        if (rd == 0 && rs1 == 0 && imm == 0)
            return ci(0, 0, 0, 0, 1); // canonical c.nop
        if (rd == 2 && rs1 == 2 && imm != 0 && imm % 16 == 0 &&
            imm >= -512 && imm <= 496) { // c.addi16sp
            uint32_t lo = (bit(imm, 4) << 4) | (bit(imm, 6) << 3) |
                          (bits(imm, 8, 7) << 1) | bit(imm, 5);
            return ci(3, bit(imm, 9), 2, lo, 1);
        }
        if (isPrime(rd) && rs1 == 2 && imm > 0 && imm % 4 == 0 &&
            imm < 1024) { // c.addi4spn
            uint32_t u = uint32_t(imm);
            return uint16_t((0u << 13) | (bits(u, 5, 4) << 11) |
                            (bits(u, 9, 6) << 7) | (bit(u, 2) << 6) |
                            (bit(u, 3) << 5) | ((rd - 8) << 2) | 0);
        }
        if (rd != 0 && imm == 0) // mv rd, rs1 -> c.mv
            return cr(8, rd, rs1);
        return std::nullopt;
      case O::ADDIW:
        if (rd == rs1 && rd != 0 && fitsImm6(imm))
            return ci(1, bit(imm, 5), rd, bits(imm, 4, 0), 1);
        return std::nullopt;
      case O::LUI: {
        int64_t hi = imm >> 12;
        if (rd != 0 && rd != 2 && hi != 0 && hi >= -32 && hi <= 31)
            return ci(3, bit(hi, 5), rd, bits(hi, 4, 0), 1);
        return std::nullopt;
      }
      case O::LW:
        if (isPrime(rd) && isPrime(rs1) && imm >= 0 && imm < 128 &&
            imm % 4 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((2u << 13) | (bits(u, 5, 3) << 10) |
                            ((rs1 - 8) << 7) | (bit(u, 2) << 6) |
                            (bit(u, 6) << 5) | ((rd - 8) << 2) | 0);
        }
        if (rd != 0 && rs1 == 2 && imm >= 0 && imm < 256 && imm % 4 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((2u << 13) | (bit(u, 5) << 12) | (rd << 7) |
                            (bits(u, 4, 2) << 4) | (bits(u, 7, 6) << 2) |
                            2);
        }
        return std::nullopt;
      case O::LD:
      case O::FLD: {
        bool isFp = di.op == O::FLD;
        uint32_t q0f3 = isFp ? 1u : 3u;
        uint32_t q2f3 = isFp ? 1u : 3u;
        if ((isFp || isPrime(rd)) && (!isFp || isPrime(rd)) &&
            isPrime(rd) && isPrime(rs1) && imm >= 0 && imm < 256 &&
            imm % 8 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((q0f3 << 13) | (bits(u, 5, 3) << 10) |
                            ((rs1 - 8) << 7) | (bits(u, 7, 6) << 5) |
                            ((rd - 8) << 2) | 0);
        }
        if ((isFp || rd != 0) && rs1 == 2 && imm >= 0 && imm < 512 &&
            imm % 8 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t(((q2f3 + 0u) << 13) | (bit(u, 5) << 12) |
                            (rd << 7) | (bits(u, 4, 3) << 5) |
                            (bits(u, 8, 6) << 2) | 2);
        }
        return std::nullopt;
      }
      case O::SW:
        if (isPrime(rs1) && isPrime(rs2) && imm >= 0 && imm < 128 &&
            imm % 4 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((6u << 13) | (bits(u, 5, 3) << 10) |
                            ((rs1 - 8) << 7) | (bit(u, 2) << 6) |
                            (bit(u, 6) << 5) | ((rs2 - 8) << 2) | 0);
        }
        if (rs1 == 2 && imm >= 0 && imm < 256 && imm % 4 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((6u << 13) | (bits(u, 5, 2) << 9) |
                            (bits(u, 7, 6) << 7) | (rs2 << 2) | 2);
        }
        return std::nullopt;
      case O::SD:
      case O::FSD: {
        uint32_t f3q0 = di.op == O::FSD ? 5u : 7u;
        if (isPrime(rs1) && isPrime(rs2) && imm >= 0 && imm < 256 &&
            imm % 8 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((f3q0 << 13) | (bits(u, 5, 3) << 10) |
                            ((rs1 - 8) << 7) | (bits(u, 7, 6) << 5) |
                            ((rs2 - 8) << 2) | 0);
        }
        if (rs1 == 2 && imm >= 0 && imm < 512 && imm % 8 == 0) {
            uint32_t u = uint32_t(imm);
            return uint16_t((f3q0 << 13) | (bits(u, 5, 3) << 10) |
                            (bits(u, 8, 6) << 7) | (rs2 << 2) | 2);
        }
        return std::nullopt;
      }
      case O::SLLI:
        if (rd == rs1 && rd != 0 && imm > 0 && imm < 64)
            return ci(0, bit(imm, 5), rd, bits(imm, 4, 0), 2);
        return std::nullopt;
      case O::SRLI:
      case O::SRAI:
        if (rd == rs1 && isPrime(rd) && imm > 0 && imm < 64) {
            uint32_t sub = di.op == O::SRLI ? 0u : 1u;
            return uint16_t((4u << 13) | (bit(imm, 5) << 12) |
                            (sub << 10) | ((rd - 8) << 7) |
                            (bits(imm, 4, 0) << 2) | 1);
        }
        return std::nullopt;
      case O::ANDI:
        if (rd == rs1 && isPrime(rd) && fitsImm6(imm))
            return uint16_t((4u << 13) | (bit(imm, 5) << 12) |
                            (2u << 10) | ((rd - 8) << 7) |
                            (bits(imm, 4, 0) << 2) | 1);
        return std::nullopt;
      case O::ADD:
        if (rd != 0 && rd == rs1 && rs2 != 0) // c.add
            return cr(9, rd, rs2);
        if (rd != 0 && rs1 == 0 && rs2 != 0) // c.mv
            return cr(8, rd, rs2);
        return std::nullopt;
      case O::SUB:
      case O::XOR:
      case O::OR:
      case O::AND:
      case O::SUBW:
      case O::ADDW: {
        if (rd != rs1 || !isPrime(rd) || !isPrime(rs2))
            return std::nullopt;
        uint32_t hiBit, sub2;
        switch (di.op) {
          case O::SUB: hiBit = 0; sub2 = 0; break;
          case O::XOR: hiBit = 0; sub2 = 1; break;
          case O::OR: hiBit = 0; sub2 = 2; break;
          case O::AND: hiBit = 0; sub2 = 3; break;
          case O::SUBW: hiBit = 1; sub2 = 0; break;
          default: hiBit = 1; sub2 = 1; break; // ADDW
        }
        return uint16_t((4u << 13) | (hiBit << 12) | (3u << 10) |
                        ((rd - 8) << 7) | (sub2 << 5) | ((rs2 - 8) << 2) |
                        1);
      }
      case O::JAL:
        if (rd == 0 && imm >= -2048 && imm <= 2046) {
            uint32_t u = uint32_t(imm);
            return uint16_t((5u << 13) | (bit(u, 11) << 12) |
                            (bit(u, 4) << 11) | (bits(u, 9, 8) << 9) |
                            (bit(u, 10) << 8) | (bit(u, 6) << 7) |
                            (bit(u, 7) << 6) | (bits(u, 3, 1) << 3) |
                            (bit(u, 5) << 2) | 1);
        }
        return std::nullopt;
      case O::JALR:
        if (imm != 0 || rs1 == 0)
            return std::nullopt;
        if (rd == 0) // c.jr
            return cr(8, rs1, 0);
        if (rd == 1) // c.jalr
            return cr(9, rs1, 0);
        return std::nullopt;
      case O::BEQ:
      case O::BNE:
        if (rs2 == 0 && isPrime(rs1) && imm >= -256 && imm <= 254) {
            uint32_t u = uint32_t(imm);
            uint32_t f3 = di.op == O::BEQ ? 6u : 7u;
            return uint16_t((f3 << 13) | (bit(u, 8) << 12) |
                            (bits(u, 4, 3) << 10) | ((rs1 - 8) << 7) |
                            (bits(u, 7, 6) << 5) | (bit(u, 2) << 4) |
                            (bit(u, 1) << 3) | (bit(u, 5) << 2) | 1);
        }
        return std::nullopt;
      case O::EBREAK:
        return uint16_t(0x9002);
      default:
        return std::nullopt;
    }
}

} // namespace xt910
