/**
 * @file
 * Opcode enumeration and static per-opcode metadata generated from
 * opcodes.def (single source of truth shared by the encoder, decoder,
 * functional simulator and timing model).
 */

#ifndef XT910_ISA_OPCODES_H
#define XT910_ISA_OPCODES_H

#include <cstdint>

namespace xt910
{

/** Execution-resource class an instruction is routed to (§IV). */
enum class OpClass : uint8_t
{
    IntAlu,   ///< single-cycle ALU (two pipes)
    IntMul,   ///< integer multiply (shares the ALU pipes)
    IntDiv,   ///< divide (shares the multi-cycle ALU pipe)
    Branch,   ///< conditional branch (BJU pipe)
    Jump,     ///< unconditional jump / call / return (BJU pipe)
    Load,     ///< load pipe of the dual-issue LSU
    Store,    ///< store pipe of the dual-issue LSU
    Amo,      ///< atomic memory operation (LSU, serializing)
    FpAlu,    ///< scalar FP add/compare/sign ops
    FpMul,    ///< scalar FP multiply / fused MAC
    FpDiv,    ///< scalar FP divide / sqrt
    FpCvt,    ///< FP converts and moves
    FpLoad,   ///< FP load (load pipe)
    FpStore,  ///< FP store (store pipe)
    Csr,      ///< CSR access (serializing)
    System,   ///< ecall/ebreak/fences w/ privilege effects
    Fence,    ///< memory ordering fence
    CacheOp,  ///< XT-910 custom cache/TLB maintenance
    VecCfg,   ///< vsetvl/vsetvli
    VecAlu,   ///< vector integer/FP simple ops
    VecMul,   ///< vector multiply / MAC
    VecDiv,   ///< vector divide
    VecLoad,  ///< vector load
    VecStore, ///< vector store
    NumClasses
};

/** One enumerator per semantic operation the model understands. */
enum class Opcode : uint16_t
{
#define X(op, mnem, cls, lat) op,
#include "isa/opcodes.def"
#undef X
    NumOpcodes,
    Invalid = NumOpcodes
};

constexpr unsigned numOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Assembly mnemonic for @p op. */
const char *mnemonic(Opcode op);

/** Execution class for @p op. */
OpClass opClass(Opcode op);

/** Default execute latency (cycles) for @p op; memory ops exclude cache. */
unsigned defaultLatency(Opcode op);

/** Human-readable name of an OpClass. */
const char *opClassName(OpClass cls);

/** True for conditional branches and unconditional jumps. */
bool isControlFlow(Opcode op);

/** True for any instruction that reads memory (incl. AMO, vector). */
bool isMemRead(Opcode op);

/** True for any instruction that writes memory (incl. AMO, vector). */
bool isMemWrite(Opcode op);

/** True for any vector-unit instruction. */
bool isVector(Opcode op);

/** True for XT-910 custom ("xthead") extension instructions. */
bool isCustom(Opcode op);

} // namespace xt910

#endif // XT910_ISA_OPCODES_H
