/**
 * @file
 * Versioned whole-system snapshots: serialize a running System —
 * architectural state (memory image, hart registers/CSRs, CLINT) plus
 * microarchitectural state (caches, directory, TLBs, predictors,
 * timing-core windows, watchdogs) — into a self-describing binary blob
 * and restore it into a freshly constructed System with an identical
 * configuration.
 *
 * File layout (all integers little-endian):
 *
 *   magic            8 bytes  "XT9SNAP\n"
 *   formatVersion    u32      (currently 3)
 *   configHash       u64      FNV-1a over the machine configuration
 *   instsRetired     u64      instructions retired when captured
 *   sectionCount     u32      2 = functional-only (MEMR + ISS; see
 *                             saveSnapshotBytes), else full
 *   section * N:
 *     tag            u32      four ASCII chars ("MEMR", "ISS ", ...)
 *     payloadLen     u64
 *     payload        payloadLen bytes
 *     checksum       u64      word-at-a-time FNV-1a over the payload
 *                             (common/snapio.h fnv1aWords)
 *
 * Restore refuses (throws SnapError) on a bad magic, an unknown format
 * version, a configuration-hash mismatch, a checksum mismatch, or a
 * payload whose layout does not exactly match what the live components
 * expect — it never applies a snapshot partially to a System that will
 * keep running (the System must be treated as dead if restore throws).
 *
 * What is deliberately NOT captured: the ISS's decode/block caches
 * (pure caches of memory contents, rebuilt on demand after restore)
 * and host-side observers (samplers, tracers). A restored run
 * re-decodes but executes and *times* identically: resuming a
 * checkpointed run produces bitwise-identical final stats to the
 * straight-through run.
 */

#ifndef XT910_SNAP_SNAPSHOT_H
#define XT910_SNAP_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"

namespace xt910
{
namespace snap
{

/** Current snapshot format version. Version history:
 *   1  original layout (deque/multiset window serialization).
 *   2  struct-of-arrays core state: ring/heap/gate window formats and
 *      the O(1) stage/port scheduler state (core/sched.h, bwlimit.h).
 *   3  word-at-a-time section checksums (fnv1aWords): the byte-serial
 *      FNV dependency chain dominated snapshot capture once sampled
 *      simulation started taking hundreds of interval snapshots.
 */
constexpr uint32_t formatVersion = 3;

/** The 8-byte file magic. */
extern const char magic[8];

/**
 * FNV-1a over every *machine* configuration field of @p cfg: core
 * widths/latencies, predictor and TLB geometry, cache/DRAM parameters,
 * ISS options and watchdog tuning. Run-length policy (maxInsts,
 * maxCycles) is excluded — resuming under a different instruction
 * budget is exactly the point of checkpointing.
 */
uint64_t configHash(const SystemConfig &cfg);

/**
 * Serialize @p sys. @p instsRetired is the run-loop instruction count
 * at the capture point (stored in the header for resume bookkeeping).
 *
 * With @p functionalOnly the snapshot carries only the architectural
 * sections (MEMR + ISS): restore leaves every timing component —
 * caches, directory, predictors, core windows, watchdogs — at
 * construction state. That is the sampled-simulation capture format:
 * a fast-forwarding System never touches its timing side, so those
 * sections would serialize multi-megabyte construction-state noise on
 * every interval boundary (they were >95% of a small-footprint
 * workload's capture cost).
 */
std::vector<uint8_t> saveSnapshotBytes(System &sys,
                                       uint64_t instsRetired,
                                       bool functionalOnly = false);

/**
 * Restore @p data into @p sys (fresh, same config, program loaded or
 * not — memory is replaced wholesale). Returns the header's
 * instsRetired. Throws SnapError on any mismatch; @p sys must not be
 * used further if this throws.
 */
uint64_t restoreSnapshotBytes(System &sys, const uint8_t *data,
                              size_t n);

/** saveSnapshotBytes + crash-safe atomic write to @p path. */
void saveSnapshotFile(System &sys, const std::string &path,
                      uint64_t instsRetired);

/** Read @p path and restore; returns the header's instsRetired. */
uint64_t restoreSnapshotFile(System &sys, const std::string &path);

/** One section's metadata, as reported by inspectSnapshot. */
struct SectionInfo
{
    std::string tag;       ///< four-character section code
    uint64_t size = 0;     ///< payload bytes
    uint64_t checksum = 0; ///< stored FNV-1a
    bool checksumOk = false;
};

/** Parsed header + section table (for the xt910-snap inspect tool). */
struct SnapshotInfo
{
    uint32_t version = 0;
    uint64_t configHash = 0;
    uint64_t instsRetired = 0;
    std::vector<SectionInfo> sections;
};

/**
 * Parse a snapshot's header and section table without applying it.
 * Verifies the magic and structural integrity (section bounds) and
 * recomputes each section's checksum; throws SnapError only on a file
 * too malformed to walk (bad magic, truncated section table).
 * An unknown version or failed checksum is *reported*, not thrown, so
 * the inspect tool can still print what it found.
 */
SnapshotInfo inspectSnapshot(const uint8_t *data, size_t n);

/** snapReadFile + inspectSnapshot. */
SnapshotInfo inspectSnapshotFile(const std::string &path);

} // namespace snap
} // namespace xt910

#endif // XT910_SNAP_SNAPSHOT_H
