#include "snap/snapshot.h"

#include "common/log.h"
#include "common/snapio.h"

namespace xt910
{
namespace snap
{

const char magic[8] = {'X', 'T', '9', 'S', 'N', 'A', 'P', '\n'};

namespace
{

/** Four-character section codes. */
constexpr uint32_t
tag4(char a, char b, char c, char d)
{
    return uint32_t(uint8_t(a)) | (uint32_t(uint8_t(b)) << 8) |
           (uint32_t(uint8_t(c)) << 16) | (uint32_t(uint8_t(d)) << 24);
}

constexpr uint32_t tagMem = tag4('M', 'E', 'M', 'R');
constexpr uint32_t tagIss = tag4('I', 'S', 'S', ' ');
constexpr uint32_t tagMsys = tag4('M', 'S', 'Y', 'S');
constexpr uint32_t tagCore = tag4('C', 'O', 'R', 'E');
constexpr uint32_t tagWdog = tag4('W', 'D', 'O', 'G');

std::string
tagName(uint32_t t)
{
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
        char c = char(t >> (8 * i));
        s[i] = (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return s;
}

void
hashCache(SnapWriter &w, const CacheParams &c)
{
    w.str(c.name);
    w.u32(c.sizeBytes);
    w.u32(c.assoc);
    w.u32(c.lineBytes);
    w.u32(c.hitLatency);
    w.u32(c.mshrs);
    w.b(c.ecc);
}

void
hashCore(SnapWriter &w, const CoreParams &p)
{
    w.u32(p.fetchBytes);
    w.u32(p.fetchMaxInsts);
    w.u32(p.decodeWidth);
    w.u32(p.renameWidth);
    w.u32(p.issueWidth);
    w.u32(p.retireWidth);
    w.u32(p.frontendStages);
    w.u32(p.decodeToIssue);
    w.u32(p.retireStages);
    w.u32(p.execRedirectPenalty);
    w.u32(p.ipRedirectBubbles);
    w.u32(p.ibRedirectBubbles);
    w.u32(p.robEntries);
    w.u32(p.lqEntries);
    w.u32(p.sqEntries);
    w.u32(p.iqAluEntries);
    w.u32(p.iqMemEntries);
    w.u32(p.iqFpEntries);
    w.b(p.inOrder);
    w.b(p.lsuDualIssue);
    w.b(p.pseudoDualStore);
    w.b(p.memDepPredict);
    w.u32(p.storeToLoadForwardLat);
    w.u32(p.orderingFlushPenalty);
    w.u32(p.trapFlushPenalty);
    w.u32(p.vecBitsPerCycle);
    w.u32(p.vlenBits);
    w.u32(p.direction.tableBits);
    w.u32(p.direction.banks);
    w.u32(p.direction.historyBits);
    w.b(p.direction.twoLevelBuf);
    w.u32(p.btb.l0Entries);
    w.u32(p.btb.l1Sets);
    w.u32(p.btb.l1Ways);
    w.b(p.btb.l0Enabled);
    w.u32(p.lbuf.entries);
    w.b(p.lbuf.enabled);
    w.u32(p.lbuf.trainTrips);
    w.b(p.prefetch.enableL1);
    w.b(p.prefetch.enableL2);
    w.b(p.prefetch.enableTlb);
    w.u8(uint8_t(p.prefetch.mode));
    w.u32(p.prefetch.numStreams);
    w.u32(p.prefetch.maxDepth);
    w.u32(p.prefetch.distance);
    w.u32(p.prefetch.trainConfidence);
    w.u32(p.prefetch.windowBytes);
    w.u32(p.tlb.microEntries);
    w.u32(p.tlb.jtlbSets);
    w.u32(p.tlb.jtlbWays);
    w.b(p.tlbPrefetch);
    w.u8(uint8_t(p.translation));
    w.u64(p.pageTableRoot);
    w.u16(p.asid);
    w.u32(p.ptwCacheLatency);
}

} // namespace

uint64_t
configHash(const SystemConfig &cfg)
{
    // Encode every machine-configuration field (NOT maxInsts/maxCycles:
    // run-length policy, the thing a resume legitimately changes) and
    // hash the encoding.
    SnapWriter w;
    w.u32(cfg.numCores);
    hashCore(w, cfg.core);
    w.u32(cfg.mem.numCores);
    w.u32(cfg.mem.coresPerCluster);
    hashCache(w, cfg.mem.l1i);
    hashCache(w, cfg.mem.l1d);
    hashCache(w, cfg.mem.l2);
    w.u64(cfg.mem.dram.latency);
    w.u64(cfg.mem.dram.cyclesPerLine);
    w.u64(cfg.mem.busLatency);
    w.u64(cfg.mem.c2cLatency);
    w.u64(cfg.mem.ncoreLatency);
    w.b(cfg.mem.snoopFilter);
    w.b(cfg.mem.inclusiveL2);
    w.u32(cfg.iss.vlenBits);
    w.b(cfg.iss.enableCustom);
    w.b(cfg.iss.enableClint);
    w.u64(cfg.iss.stackBase);
    w.b(cfg.iss.strictAlign);
    w.b(cfg.iss.fatalOnUnhandledTrap);
    w.b(cfg.watchdog.enabled);
    w.u64(cfg.watchdog.spinWindowInsts);
    w.u64(cfg.watchdog.pcWindowBytes);
    w.u32(cfg.watchdog.traceDepth);
    return fnv1a(w.data().data(), w.size());
}

namespace
{

void
writeSection(SnapWriter &out, uint32_t tag, const SnapWriter &payload)
{
    out.u32(tag);
    out.u64(payload.size());
    out.reserve(payload.size() + 8);
    out.bytes(payload.data().data(), payload.size());
    // Word-at-a-time FNV (format v3): byte-serial FNV cost several ms
    // per multi-MB section, dominating sampled-mode snapshot capture.
    out.u64(fnv1aWords(payload.data().data(), payload.size()));
}

} // namespace

std::vector<uint8_t>
saveSnapshotBytes(System &sys, uint64_t instsRetired,
                  bool functionalOnly)
{
    const unsigned nCores = sys.config().numCores;

    SnapWriter out;
    out.bytes(magic, sizeof(magic));
    out.u32(formatVersion);
    out.u64(configHash(sys.config()));
    out.u64(instsRetired);
    out.u32(functionalOnly ? 2 : 3 + nCores + 1);

    {
        SnapWriter w;
        sys.memory().snapSave(w);
        writeSection(out, tagMem, w);
    }
    {
        SnapWriter w;
        sys.iss().snapSave(w);
        writeSection(out, tagIss, w);
    }
    if (functionalOnly)
        return out.take();
    {
        SnapWriter w;
        sys.memSystem().snapSave(w);
        writeSection(out, tagMsys, w);
    }
    for (unsigned c = 0; c < nCores; ++c) {
        SnapWriter w;
        w.u32(c);
        sys.core(c).snapSave(w);
        writeSection(out, tagCore, w);
    }
    {
        SnapWriter w;
        w.u32(nCores);
        for (unsigned c = 0; c < nCores; ++c)
            sys.watchdog(c).snapSave(w);
        writeSection(out, tagWdog, w);
    }
    return out.take();
}

namespace
{

struct RawSection
{
    uint32_t tag = 0;
    const uint8_t *payload = nullptr;
    uint64_t len = 0;
    uint64_t checksum = 0;
};

/** Walk the header + section table; bounds-check everything. */
struct ParsedSnapshot
{
    uint32_t version = 0;
    uint64_t cfgHash = 0;
    uint64_t instsRetired = 0;
    std::vector<RawSection> sections;
};

ParsedSnapshot
parse(const uint8_t *data, size_t n)
{
    SnapReader r(data, n);
    char m[8];
    r.bytes(m, sizeof(m));
    if (std::memcmp(m, magic, sizeof(magic)) != 0)
        throw SnapError("not a snapshot file (bad magic)");
    ParsedSnapshot ps;
    ps.version = r.u32();
    ps.cfgHash = r.u64();
    ps.instsRetired = r.u64();
    uint32_t count = r.u32();
    for (uint32_t i = 0; i < count; ++i) {
        RawSection s;
        s.tag = r.u32();
        s.len = r.u64();
        if (s.len > r.remaining())
            throw SnapError("corrupt snapshot: truncated section " +
                            tagName(s.tag));
        s.payload = data + (n - r.remaining());
        r.skip(size_t(s.len));
        s.checksum = r.u64();
        ps.sections.push_back(s);
    }
    r.expectEnd("file");
    return ps;
}

} // namespace

uint64_t
restoreSnapshotBytes(System &sys, const uint8_t *data, size_t n)
{
    ParsedSnapshot ps = parse(data, n);
    if (ps.version != formatVersion)
        throw SnapError("snapshot format version " +
                        std::to_string(ps.version) +
                        " not supported (expected " +
                        std::to_string(formatVersion) + ")");
    uint64_t want = configHash(sys.config());
    if (ps.cfgHash != want)
        throw SnapError(
            "snapshot was taken under a different configuration "
            "(config hash mismatch) — restore refused");

    for (const RawSection &s : ps.sections)
        if (fnv1aWords(s.payload, size_t(s.len)) != s.checksum)
            throw SnapError("corrupt snapshot: checksum mismatch in "
                            "section " + tagName(s.tag));

    // Two sections = functional-only snapshot (see saveSnapshotBytes):
    // every timing component stays at construction state, which is
    // exactly the capture-time state of a fast-forwarding System
    // (pinned by the clean-restore tests in tests/sample).
    const bool functionalOnly = ps.sections.size() == 2;
    const unsigned nCores = sys.config().numCores;
    std::vector<uint32_t> expect{tagMem, tagIss};
    if (!functionalOnly) {
        expect.push_back(tagMsys);
        for (unsigned c = 0; c < nCores; ++c)
            expect.push_back(tagCore);
        expect.push_back(tagWdog);
    }
    if (ps.sections.size() != expect.size())
        throw SnapError("snapshot section count does not match system");
    for (size_t i = 0; i < expect.size(); ++i)
        if (ps.sections[i].tag != expect[i])
            throw SnapError("unexpected snapshot section " +
                            tagName(ps.sections[i].tag) + " (wanted " +
                            tagName(expect[i]) + ")");

    // Memory first: Iss::snapLoad flushes its decode caches against the
    // *restored* memory contents and mutation epoch.
    size_t idx = 0;
    auto reader = [&](const char *what) {
        const RawSection &s = ps.sections[idx++];
        (void)what;
        return SnapReader(s.payload, size_t(s.len));
    };
    {
        SnapReader r = reader("MEMR");
        sys.memory().snapLoad(r);
        r.expectEnd("MEMR");
    }
    {
        SnapReader r = reader("ISS");
        sys.iss().snapLoad(r);
        r.expectEnd("ISS");
    }
    if (functionalOnly)
        return ps.instsRetired;
    {
        SnapReader r = reader("MSYS");
        sys.memSystem().snapLoad(r);
        r.expectEnd("MSYS");
    }
    for (unsigned c = 0; c < nCores; ++c) {
        SnapReader r = reader("CORE");
        if (r.u32() != c)
            throw SnapError("snapshot core sections out of order");
        sys.core(c).snapLoad(r);
        r.expectEnd("CORE");
    }
    {
        SnapReader r = reader("WDOG");
        if (r.u32() != nCores)
            throw SnapError("snapshot watchdog count does not match");
        for (unsigned c = 0; c < nCores; ++c)
            sys.watchdog(c).snapLoad(r);
        r.expectEnd("WDOG");
    }
    return ps.instsRetired;
}

void
saveSnapshotFile(System &sys, const std::string &path,
                 uint64_t instsRetired)
{
    std::vector<uint8_t> bytes = saveSnapshotBytes(sys, instsRetired);
    snapWriteFileAtomic(path, bytes.data(), bytes.size());
}

uint64_t
restoreSnapshotFile(System &sys, const std::string &path)
{
    std::vector<uint8_t> bytes = snapReadFile(path);
    return restoreSnapshotBytes(sys, bytes.data(), bytes.size());
}

SnapshotInfo
inspectSnapshot(const uint8_t *data, size_t n)
{
    ParsedSnapshot ps = parse(data, n);
    SnapshotInfo info;
    info.version = ps.version;
    info.configHash = ps.cfgHash;
    info.instsRetired = ps.instsRetired;
    for (const RawSection &s : ps.sections) {
        SectionInfo si;
        si.tag = tagName(s.tag);
        si.size = s.len;
        si.checksum = s.checksum;
        si.checksumOk = fnv1aWords(s.payload, size_t(s.len)) == s.checksum;
        info.sections.push_back(si);
    }
    return info;
}

SnapshotInfo
inspectSnapshotFile(const std::string &path)
{
    std::vector<uint8_t> bytes = snapReadFile(path);
    return inspectSnapshot(bytes.data(), bytes.size());
}

} // namespace snap
} // namespace xt910
