#include "uncore/cluster.h"

namespace xt910
{

std::string
ClusterTopology::validate() const
{
    if (coresPerCluster != 1 && coresPerCluster != 2 &&
        coresPerCluster != 4)
        return "cores per cluster must be 1, 2 or 4 (Table I)";
    if (clusters < 1 || clusters > 4)
        return "1..4 clusters supported over the Ncore (§VI)";
    if (l1dBytes != 32 * 1024 && l1dBytes != 64 * 1024)
        return "L1D must be 32KB or 64KB (Table I)";
    if (l1iBytes != 32 * 1024 && l1iBytes != 64 * 1024)
        return "L1I must be 32KB or 64KB (Table I)";
    if (l2Bytes < 256 * 1024 || l2Bytes > 8 * 1024 * 1024)
        return "L2 must be 256KB..8MB (Table I)";
    if ((l2Bytes & (l2Bytes - 1)) != 0)
        return "L2 size must be a power of two";
    return "";
}

std::vector<ClusterTopology>
supportedTopologies()
{
    std::vector<ClusterTopology> out;
    for (unsigned cpc : {1u, 2u, 4u})
        for (unsigned cl : {1u, 2u, 4u})
            for (uint32_t l1 : {32u * 1024, 64u * 1024})
                for (uint32_t l2 : {256u * 1024, 2048u * 1024,
                                    8192u * 1024})
                    for (bool vec : {false, true}) {
                        ClusterTopology t;
                        t.coresPerCluster = cpc;
                        t.clusters = cl;
                        t.l1dBytes = l1;
                        t.l1iBytes = l1;
                        t.l2Bytes = l2;
                        t.vectorUnit = vec;
                        out.push_back(t);
                    }
    return out;
}

Cycle
tlbShootdown(const ClusterTopology &topo, ShootdownScheme scheme,
             const ShootdownParams &p, Addr va,
             std::vector<Tlb *> &remoteTlbs)
{
    for (Tlb *t : remoteTlbs)
        t->flushVa(va);

    const unsigned others = topo.totalCores() - 1;
    if (others == 0)
        return 0;

    if (scheme == ShootdownScheme::Ipi) {
        // Initiator software + interrupt delivery; handlers run
        // concurrently but completion is gated by the slowest, and the
        // initiator must collect acknowledgements serially.
        return p.ipiInitiator + p.ipiDeliver + p.ipiHandler +
               Cycle(others) * 8 /* ack collection */;
    }

    // Hardware broadcast: one message per cluster hop, applied by
    // hardware without software intervention (§V.E "the maintenance is
    // performed by hardware without software intervention").
    return p.bcastMessage * topo.clusters + p.bcastApply;
}

} // namespace xt910
