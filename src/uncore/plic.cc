#include "uncore/plic.h"

#include "common/log.h"

namespace xt910
{

Plic::Plic(unsigned numSources, unsigned numContexts)
    : stats("plic"),
      claims(stats, "claims", "interrupts claimed"),
      permissionFiltered(stats, "permission_filtered",
                         "claims blocked by the permission extension"),
      prio(numSources + 1, 0),
      minPriv(numSources + 1, PrivMode::User),
      pending(numSources + 1, false),
      active(numSources + 1, false),
      enabled(numContexts, std::vector<bool>(numSources + 1, false)),
      threshold(numContexts, 0)
{
    xt_assert(numSources >= 1, "PLIC needs at least one source");
}

void
Plic::setPriority(unsigned source, uint32_t priority)
{
    xt_assert(source >= 1 && source < prio.size(), "bad source");
    prio[source] = priority;
}

void
Plic::setMinPrivilege(unsigned source, PrivMode minPriv_)
{
    xt_assert(source >= 1 && source < prio.size(), "bad source");
    minPriv[source] = minPriv_;
}

void
Plic::setEnabled(unsigned context, unsigned source, bool e)
{
    enabled[context][source] = e;
}

void
Plic::setThreshold(unsigned context, uint32_t t)
{
    threshold[context] = t;
}

void
Plic::setPending(unsigned source, bool p)
{
    pending[source] = p;
}

bool
Plic::eligible(unsigned context, unsigned source, PrivMode mode,
               bool countFiltered) const
{
    if (!pending[source] || active[source])
        return false;
    if (!enabled[context][source])
        return false;
    if (prio[source] == 0 || prio[source] <= threshold[context])
        return false;
    if (uint8_t(mode) < uint8_t(minPriv[source])) {
        if (countFiltered)
            ++permissionFiltered;
        return false;
    }
    return true;
}

unsigned
Plic::claim(unsigned context, PrivMode mode)
{
    unsigned best = 0;
    for (unsigned s = 1; s < prio.size(); ++s) {
        if (!eligible(context, s, mode, /*countFiltered=*/true))
            continue;
        if (best == 0 || prio[s] > prio[best])
            best = s;
    }
    if (best != 0) {
        active[best] = true;
        pending[best] = false;
        ++claims;
    }
    return best;
}

void
Plic::complete(unsigned context, unsigned source)
{
    (void)context;
    if (source >= 1 && source < active.size())
        active[source] = false;
}

bool
Plic::pendingFor(unsigned context, PrivMode mode) const
{
    for (unsigned s = 1; s < prio.size(); ++s)
        if (eligible(context, s, mode, /*countFiltered=*/false))
            return true;
    return false;
}

} // namespace xt910
