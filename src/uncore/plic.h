/**
 * @file
 * PLIC-lite: the platform-level interrupt controller XT-910 integrates
 * (§II), with the paper's non-standard extension — permission control
 * on interrupt sources ("there are extensions ... for the interrupt
 * controller to support permission control"): each source carries a
 * minimum privilege level, and contexts below it can neither see nor
 * claim the interrupt.
 */

#ifndef XT910_UNCORE_PLIC_H
#define XT910_UNCORE_PLIC_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** See file comment. */
class Plic
{
  public:
    Plic(unsigned numSources, unsigned numContexts);

    /** Configure a source: priority 0 disables it. */
    void setPriority(unsigned source, uint32_t priority);

    /**
     * XT-910 permission extension: claims from below @p minPriv are
     * filtered (and counted) instead of delivered.
     */
    void setMinPrivilege(unsigned source, PrivMode minPriv);

    /** Per-context enable bit. */
    void setEnabled(unsigned context, unsigned source, bool enabled);

    /** Per-context priority threshold. */
    void setThreshold(unsigned context, uint32_t threshold);

    /** A device raises / lowers its interrupt line. */
    void setPending(unsigned source, bool pending);

    /** Highest-priority claimable source for a context; 0 if none. */
    unsigned claim(unsigned context, PrivMode mode);

    /** Handler completion re-arms the source. */
    void complete(unsigned context, unsigned source);

    /** True when some enabled source is deliverable to the context. */
    bool pendingFor(unsigned context, PrivMode mode) const;

    unsigned numSources() const { return unsigned(prio.size()) - 1; }

    mutable StatGroup stats;
    mutable Counter claims;
    /// claims blocked by the extension
    mutable Counter permissionFiltered;

  private:
    bool eligible(unsigned context, unsigned source, PrivMode mode,
                  bool countFiltered) const;

    // Index 0 is the reserved "no interrupt" source.
    std::vector<uint32_t> prio;
    std::vector<PrivMode> minPriv;
    std::vector<bool> pending;
    std::vector<bool> active;            // claimed, not completed
    std::vector<std::vector<bool>> enabled; // [context][source]
    std::vector<uint32_t> threshold;
};

} // namespace xt910

#endif // XT910_UNCORE_PLIC_H
