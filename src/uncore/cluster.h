/**
 * @file
 * Multi-core/multi-cluster topology (§II Table I, §VI) and the
 * TLB-maintenance broadcast model (§V.E): XT-910 broadcasts TLB
 * maintenance over the coherent interconnect in hardware, replacing
 * the IPI-based software shootdown. This module validates supported
 * configurations and provides a cost model comparing both schemes.
 */

#ifndef XT910_UNCORE_CLUSTER_H
#define XT910_UNCORE_CLUSTER_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mmu/tlb.h"

namespace xt910
{

/** A Table-I system configuration. */
struct ClusterTopology
{
    unsigned coresPerCluster = 4; ///< 1, 2 or 4
    unsigned clusters = 1;        ///< 1..4 over the Ncore (§VI)
    uint32_t l1dBytes = 64 * 1024;
    uint32_t l1iBytes = 64 * 1024;
    uint32_t l2Bytes = 2 * 1024 * 1024;
    bool vectorUnit = true;

    unsigned totalCores() const { return coresPerCluster * clusters; }

    /**
     * Check against Table I's supported values; returns an empty
     * string when valid, otherwise the reason.
     */
    std::string validate() const;
};

/** All Table-I-legal combinations (for the Table I bench). */
std::vector<ClusterTopology> supportedTopologies();

/** How TLB maintenance reaches the other harts (§V.E). */
enum class ShootdownScheme
{
    Ipi,                ///< software IPI + handler on every core
    HardwareBroadcast,  ///< interconnect message parsed by hardware
};

/** Cost parameters for the shootdown comparison. */
struct ShootdownParams
{
    Cycle ipiDeliver = 80;      ///< interrupt delivery latency
    Cycle ipiHandler = 150;     ///< trap + sfence + return, per core
    Cycle ipiInitiator = 100;   ///< sender-side software overhead
    Cycle bcastMessage = 12;    ///< bus message per hop
    Cycle bcastApply = 4;       ///< hardware TLB invalidate
};

/**
 * Model one TLB-maintenance operation across @p topo; invalidates the
 * target VA in the provided remote TLBs and returns the cycles until
 * every core has applied it.
 */
Cycle tlbShootdown(const ClusterTopology &topo, ShootdownScheme scheme,
                   const ShootdownParams &p, Addr va,
                   std::vector<Tlb *> &remoteTlbs);

} // namespace xt910

#endif // XT910_UNCORE_CLUSTER_H
