#include "sample/sample.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/parallel.h"
#include "common/random.h"
#include "snap/snapshot.h"

namespace xt910
{
namespace sample
{

namespace
{

/** Warm-up-aware capture position of interval @p k: the boundary minus
 *  the warm-up budget, clamped to instruction 0 (the earliest
 *  intervals get shorter — but exact — warm-up). */
uint64_t
capturePos(uint64_t k, uint64_t interval, uint64_t warmup)
{
    const uint64_t b = k * interval;
    return b - std::min(warmup, b);
}

/** Counter values at one point of a measurement run. */
struct Probe
{
    Cycle cycles = 0;
    uint64_t retiring = 0, frontendBound = 0, badSpeculation = 0,
             backendMem = 0, backendCore = 0;
    uint64_t l1d = 0, l1i = 0, l2 = 0, br = 0, itlb = 0, dtlb = 0;
};

Probe
readProbe(System &s)
{
    XtCore &core = s.core(0);
    MemSystem &ms = s.memSystem();
    Probe p;
    p.cycles = core.cycles();
    p.retiring = core.topdown.retiring.value();
    p.frontendBound = core.topdown.frontendBound.value();
    p.badSpeculation = core.topdown.badSpeculation.value();
    p.backendMem = core.topdown.backendMem.value();
    p.backendCore = core.topdown.backendCore.value();
    p.l1d = ms.l1d(0).misses.value();
    p.l1i = ms.l1i(0).misses.value();
    p.l2 = ms.l2(ms.params().clusterOf(0)).misses.value();
    p.br = core.branchMispredicts.value() + core.targetMispredicts.value();
    p.itlb = core.itlbUnit().misses.value();
    p.dtlb = core.dtlbUnit().misses.value();
    return p;
}

void
validate(const SystemConfig &cfg, const SampleConfig &sc)
{
    if (sc.interval == 0)
        throw SampleError("sample interval must be > 0");
    if (cfg.numCores != 1)
        throw SampleError(
            "sampled mode requires a single-core configuration "
            "(functional fast-forward and detailed timing interleave "
            "harts differently)");
    if (sc.maxStored < 2)
        throw SampleError("snapshot retention bound must be >= 2");
}

/** Mean-spread error bar around an externally computed point
 *  estimate: 1.96 * s / sqrt(K) over the per-interval values. */
Estimate
estimate(double point, const std::vector<double> &per)
{
    Estimate e;
    e.value = point;
    const size_t k = per.size();
    if (k > 1) {
        double mean = std::accumulate(per.begin(), per.end(), 0.0) /
                      double(k);
        double ss = 0.0;
        for (double v : per)
            ss += (v - mean) * (v - mean);
        e.ci95 = 1.96 * std::sqrt(ss / double(k - 1)) /
                 std::sqrt(double(k));
    }
    return e;
}

/** Fixed-precision float for deterministic JSON output. */
std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

void
figure(std::ostream &os, const char *name, const Estimate &e,
       bool last = false)
{
    os << "\"" << name << "\": [" << fmt(e.value) << ", " << fmt(e.ci95)
       << "]" << (last ? "" : ", ");
}

} // namespace

FastForwardResult
fastForward(const SystemConfig &cfg, const Program &prog,
            const SampleConfig &sc, const SampleHooks &hooks)
{
    validate(cfg, sc);

    System ff(cfg);
    if (hooks.setup)
        hooks.setup(ff);
    ff.loadProgram(prog);
    Iss &iss = ff.iss();

    const uint64_t cap = cfg.maxInsts;
    uint64_t n = 0;
    uint64_t stride = 1; ///< capture every stride-th interval boundary
    uint64_t nextK = 0;  ///< next interval index to capture
    uint64_t nextPos = capturePos(0, sc.interval, sc.warmup);

    FastForwardResult out;
    std::vector<CapturedInterval> &snaps = out.snaps;

    // Functional-only execution via the ISS's batched fast path
    // (Iss::runFast, bit-equivalent to stepping), stopping exactly at
    // each capture position. The abort hook is polled once per chunk.
    while (!iss.halted(0) && n < cap) {
        if (hooks.keepGoing && !hooks.keepGoing(n))
            throw SampleError("sampled run aborted (fast-forward)");
        while (n == nextPos) {
            CapturedInterval ci;
            ci.index = nextK;
            ci.captureAt = n;
            // Early intervals whose warm-up window is clamped to
            // instruction 0 share a capture position; reuse the blob.
            if (!snaps.empty() && snaps.back().captureAt == n)
                ci.bytes = snaps.back().bytes;
            else
                ci.bytes = snap::saveSnapshotBytes(
                    ff, n, /*functionalOnly=*/true);
            snaps.push_back(std::move(ci));
            nextK += stride;
            if (snaps.size() > sc.maxStored) {
                // Adaptive stride: drop every other retained snapshot
                // and capture half as often from here on. The retained
                // set stays evenly spaced over the run so far.
                const uint64_t wider = stride * 2;
                std::vector<CapturedInterval> kept;
                kept.reserve(snaps.size() / 2 + 1);
                for (CapturedInterval &s : snaps)
                    if (s.index % wider == 0)
                        kept.push_back(std::move(s));
                snaps = std::move(kept);
                stride = wider;
                if (nextK % stride)
                    nextK += stride - nextK % stride;
            }
            nextPos = capturePos(nextK, sc.interval, sc.warmup);
        }
        uint64_t until = std::min(cap, std::max(nextPos, n + 1));
        uint64_t chunk = std::min<uint64_t>(until - n, 16384);
        n += iss.runFast(0, chunk);
    }

    out.totalInsts = n;
    out.halted = iss.halted(0);
    out.exitCode = iss.exitCode(0);
    if (hooks.checkResult)
        out.checksumOk = hooks.checkResult(ff);

    // A snapshot whose boundary lies at or past the end of the run has
    // nothing to measure.
    snaps.erase(std::remove_if(snaps.begin(), snaps.end(),
                               [&](const CapturedInterval &s) {
                                   return s.index * sc.interval >= n;
                               }),
                snaps.end());
    return out;
}

IntervalRecord
measureInterval(const SystemConfig &cfg, const CapturedInterval &snap,
                const SampleConfig &sc, uint64_t totalInsts,
                const SampleHooks &hooks)
{
    validate(cfg, sc);
    const uint64_t b = snap.index * sc.interval;
    if (b >= totalInsts)
        throw SampleError("interval starts at/past the end of the run");
    if (snap.captureAt > b)
        throw SampleError("snapshot captured past its boundary");

    const uint64_t warmK = b - snap.captureAt;
    const uint64_t m = std::min(sc.interval, totalInsts - b);

    SystemConfig mc = cfg;
    mc.maxInsts = warmK + m; ///< budget relative to the restore point
    mc.maxCycles = 0;
    mc.quietInstLimit = true; ///< hitting the budget is the plan

    System sys(mc);
    snap::restoreSnapshotBytes(sys, snap.bytes.data(),
                               snap.bytes.size());

    // Stats at the warm-up/measurement boundary. stepHook runs before
    // every functional step with n = instructions already retired (and
    // consumed by the timing core), so n == warmK is exactly the end
    // of warm-up. With warmK == 0 this reads the restored (all-zero)
    // timing state — asserted clean by tests/sample.
    Probe atWarm;
    bool probed = false;
    sys.stepHook = [&](uint64_t n, System &s) {
        if (!probed && n == warmK) {
            atWarm = readProbe(s);
            probed = true;
        }
        if ((n & 4095) == 0 && hooks.keepGoing && !hooks.keepGoing(n))
            throw SampleError("sampled run aborted (measurement)");
    };

    RunResult r = sys.run();
    if (r.stop == StopReason::Watchdog)
        throw SampleError("watchdog fired measuring interval " +
                          std::to_string(snap.index) + ":\n" +
                          r.diagnostic);
    if (!probed || r.insts != warmK + m)
        throw SampleError(
            "interval " + std::to_string(snap.index) +
            " ended early: expected " + std::to_string(warmK + m) +
            " instructions, got " + std::to_string(r.insts));

    const Probe fin = readProbe(sys);

    IntervalRecord rec;
    rec.index = snap.index;
    rec.startInst = b;
    rec.warmupInsts = warmK;
    rec.measuredInsts = m;
    rec.cycles = fin.cycles - atWarm.cycles;
    rec.retiring = fin.retiring - atWarm.retiring;
    rec.frontendBound = fin.frontendBound - atWarm.frontendBound;
    rec.badSpeculation = fin.badSpeculation - atWarm.badSpeculation;
    rec.backendMem = fin.backendMem - atWarm.backendMem;
    rec.backendCore = fin.backendCore - atWarm.backendCore;
    rec.l1dMisses = fin.l1d - atWarm.l1d;
    rec.l1iMisses = fin.l1i - atWarm.l1i;
    rec.l2Misses = fin.l2 - atWarm.l2;
    rec.branchMispredicts = fin.br - atWarm.br;
    rec.itlbMisses = fin.itlb - atWarm.itlb;
    rec.dtlbMisses = fin.dtlb - atWarm.dtlb;
    return rec;
}

namespace
{

/** Deterministic selection of @p want of the @p have candidates:
 *  evenly spaced (seed 0) or seeded Fisher-Yates. Returns sorted
 *  candidate positions. */
std::vector<size_t>
selectIntervals(size_t have, unsigned want, uint64_t seed)
{
    std::vector<size_t> pick;
    if (want == 0 || size_t(want) >= have) {
        pick.resize(have);
        std::iota(pick.begin(), pick.end(), size_t(0));
        return pick;
    }
    if (seed == 0) {
        // Evenly spaced including both ends; floor((j*(have-1))/(w-1))
        // is strictly increasing because have > want.
        pick.reserve(want);
        if (want == 1) {
            pick.push_back(have / 2);
        } else {
            for (unsigned j = 0; j < want; ++j)
                pick.push_back(size_t(uint64_t(j) * (have - 1) /
                                      (want - 1)));
        }
        return pick;
    }
    Xorshift64 rng(seed);
    std::vector<size_t> all(have);
    std::iota(all.begin(), all.end(), size_t(0));
    for (unsigned j = 0; j < want; ++j) {
        const size_t r = j + size_t(rng.below(uint64_t(have - j)));
        std::swap(all[j], all[r]);
    }
    pick.assign(all.begin(), all.begin() + want);
    std::sort(pick.begin(), pick.end());
    return pick;
}

void
aggregate(SampleReport &rep)
{
    const std::vector<IntervalRecord> &iv = rep.intervals;
    const size_t k = iv.size();
    uint64_t sumI = 0, sumC = 0;
    uint64_t td[5] = {0, 0, 0, 0, 0};
    uint64_t miss[6] = {0, 0, 0, 0, 0, 0};
    std::vector<double> cpiPer(k), tdPer[5], missPer[6];
    for (auto &v : tdPer)
        v.resize(k);
    for (auto &v : missPer)
        v.resize(k);
    for (size_t i = 0; i < k; ++i) {
        const IntervalRecord &r = iv[i];
        sumI += r.measuredInsts;
        sumC += r.cycles;
        cpiPer[i] = r.cpi();
        const uint64_t t[5] = {r.retiring, r.frontendBound,
                               r.badSpeculation, r.backendMem,
                               r.backendCore};
        const uint64_t slots = t[0] + t[1] + t[2] + t[3] + t[4];
        for (int j = 0; j < 5; ++j) {
            td[j] += t[j];
            tdPer[j][i] = slots ? double(t[j]) / double(slots) : 0.0;
        }
        const uint64_t ms[6] = {r.l1dMisses,         r.l1iMisses,
                                r.l2Misses,          r.branchMispredicts,
                                r.itlbMisses,        r.dtlbMisses};
        for (int j = 0; j < 6; ++j) {
            miss[j] += ms[j];
            missPer[j][i] = r.measuredInsts
                                ? 1000.0 * double(ms[j]) /
                                      double(r.measuredInsts)
                                : 0.0;
        }
    }
    rep.measuredInsts = sumI;
    rep.measuredCycles = sumC;
    rep.coverage =
        rep.totalInsts ? double(sumI) / double(rep.totalInsts) : 0.0;
    const double cpi = sumI ? double(sumC) / double(sumI) : 0.0;
    rep.cpi = estimate(cpi, cpiPer);
    rep.estCycles = uint64_t(std::llround(cpi * double(rep.totalInsts)));
    const uint64_t slotsAll = td[0] + td[1] + td[2] + td[3] + td[4];
    Estimate *tdOut[5] = {&rep.retiring, &rep.frontendBound,
                          &rep.badSpeculation, &rep.backendMem,
                          &rep.backendCore};
    for (int j = 0; j < 5; ++j)
        *tdOut[j] = estimate(
            slotsAll ? double(td[j]) / double(slotsAll) : 0.0, tdPer[j]);
    Estimate *missOut[6] = {&rep.l1dMpki,    &rep.l1iMpki,
                            &rep.l2Mpki,     &rep.branchMpki,
                            &rep.itlbMpki,   &rep.dtlbMpki};
    for (int j = 0; j < 6; ++j)
        *missOut[j] = estimate(
            sumI ? 1000.0 * double(miss[j]) / double(sumI) : 0.0,
            missPer[j]);
}

} // namespace

SampleReport
runSampled(const SystemConfig &cfg, const Program &prog,
           const SampleConfig &sc, unsigned jobs,
           const SampleHooks &hooks)
{
    FastForwardResult ff = fastForward(cfg, prog, sc, hooks);

    SampleReport rep;
    rep.cfgUsed = sc;
    rep.totalInsts = ff.totalInsts;
    rep.intervalCount =
        ff.totalInsts ? (ff.totalInsts + sc.interval - 1) / sc.interval
                      : 0;
    rep.halted = ff.halted;
    rep.exitCode = ff.exitCode;
    rep.checksumOk = ff.checksumOk;
    if (ff.snaps.empty())
        return rep;

    const std::vector<size_t> pick =
        selectIntervals(ff.snaps.size(), sc.count, sc.seed);

    // One worker per interval snapshot; results land in their slot and
    // are merged in interval order, so the report does not depend on
    // the job count or completion order.
    std::vector<IntervalRecord> recs(pick.size());
    std::vector<std::string> errs(pick.size());
    parallelFor(pick.size(), jobs, [&](size_t i) {
        try {
            recs[i] = measureInterval(cfg, ff.snaps[pick[i]], sc,
                                      ff.totalInsts, hooks);
        } catch (const std::exception &e) {
            errs[i] = e.what();
        }
    });
    for (const std::string &e : errs)
        if (!e.empty())
            throw SampleError(e);

    rep.intervals = std::move(recs);
    aggregate(rep);
    return rep;
}

void
writeSampleJson(std::ostream &os, const std::string &workload,
                const SampleReport &rep)
{
    const SampleConfig &sc = rep.cfgUsed;
    os << "{\n";
    os << "  \"workload\": \"" << workload << "\",\n";
    os << "  \"mode\": \"sampled\",\n";
    os << "  \"sample\": {\"interval\": " << sc.interval
       << ", \"warmup\": " << sc.warmup << ", \"count\": " << sc.count
       << ", \"seed\": " << sc.seed << "},\n";
    os << "  \"run\": {\"total_insts\": " << rep.totalInsts
       << ", \"intervals\": " << rep.intervalCount
       << ", \"measured\": " << rep.intervals.size()
       << ", \"measured_insts\": " << rep.measuredInsts
       << ", \"coverage\": " << fmt(rep.coverage)
       << ", \"halted\": " << (rep.halted ? "true" : "false")
       << ", \"exit_code\": " << rep.exitCode
       << ", \"checksum_ok\": " << (rep.checksumOk ? "true" : "false")
       << "},\n";
    os << "  \"estimate\": {\n";
    os << "    \"cpi\": [" << fmt(rep.cpi.value) << ", "
       << fmt(rep.cpi.ci95) << "],\n";
    os << "    \"est_cycles\": " << rep.estCycles << ",\n";
    os << "    \"topdown\": {";
    figure(os, "retiring", rep.retiring);
    figure(os, "frontend", rep.frontendBound);
    figure(os, "bad_speculation", rep.badSpeculation);
    figure(os, "backend_mem", rep.backendMem);
    figure(os, "backend_core", rep.backendCore, true);
    os << "},\n";
    os << "    \"mpki\": {";
    figure(os, "l1d", rep.l1dMpki);
    figure(os, "l1i", rep.l1iMpki);
    figure(os, "l2", rep.l2Mpki);
    figure(os, "branch_mispredict", rep.branchMpki);
    figure(os, "itlb", rep.itlbMpki);
    figure(os, "dtlb", rep.dtlbMpki, true);
    os << "}\n  },\n";
    os << "  \"intervals\": [\n";
    for (size_t i = 0; i < rep.intervals.size(); ++i) {
        const IntervalRecord &r = rep.intervals[i];
        os << "    {\"index\": " << r.index
           << ", \"start\": " << r.startInst
           << ", \"warmup\": " << r.warmupInsts
           << ", \"insts\": " << r.measuredInsts
           << ", \"cycles\": " << r.cycles << ", \"cpi\": "
           << fmt(r.cpi()) << "}"
           << (i + 1 < rep.intervals.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
writeSampleSummaryLine(std::ostream &os, const std::string &workload,
                       const SampleReport &rep)
{
    os << "{\"workload\": \"" << workload
       << "\", \"mode\": \"sampled\", \"total_insts\": "
       << rep.totalInsts
       << ", \"measured\": " << rep.intervals.size()
       << ", \"coverage\": " << fmt(rep.coverage) << ", \"cpi\": "
       << fmt(rep.cpi.value) << ", \"cpi_ci95\": " << fmt(rep.cpi.ci95)
       << ", \"est_cycles\": " << rep.estCycles
       << ", \"checksum_ok\": " << (rep.checksumOk ? "true" : "false")
       << "}\n";
}

std::string
summarize(const SampleReport &rep)
{
    char buf[512];
    std::ostringstream os;
    std::snprintf(buf, sizeof(buf),
                  "ff insts   : %llu (%llu intervals of %llu)\n",
                  (unsigned long long)rep.totalInsts,
                  (unsigned long long)rep.intervalCount,
                  (unsigned long long)rep.cfgUsed.interval);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "measured   : %zu intervals, %llu insts "
                  "(coverage %.2f%%), warm-up %llu\n",
                  rep.intervals.size(),
                  (unsigned long long)rep.measuredInsts,
                  100.0 * rep.coverage,
                  (unsigned long long)rep.cfgUsed.warmup);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "CPI        : %.3f +/- %.3f (95%% CI)\n",
                  rep.cpi.value, rep.cpi.ci95);
    os << buf;
    std::snprintf(buf, sizeof(buf), "est cycles : %llu\n",
                  (unsigned long long)rep.estCycles);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "topdown    : ret %.1f%% fe %.1f%% bad-spec %.1f%% "
                  "be-mem %.1f%% be-core %.1f%%\n",
                  100.0 * rep.retiring.value,
                  100.0 * rep.frontendBound.value,
                  100.0 * rep.badSpeculation.value,
                  100.0 * rep.backendMem.value,
                  100.0 * rep.backendCore.value);
    os << buf;
    return os.str();
}

} // namespace sample
} // namespace xt910
