/**
 * @file
 * Sampled simulation (ROADMAP item 2): SMARTS/SimPoint-style interval
 * sampling on top of the src/snap checkpoint subsystem. A whole run is
 * covered in two phases:
 *
 *  1. *Fast-forward* — the guest executes purely functionally (ISS
 *     only, 23-60 MIPS; the timing cores never consume a record), and
 *     a versioned in-memory snapshot (snap::saveSnapshotBytes) is
 *     captured just *before* each interval boundary — `warmup`
 *     instructions early, so the detailed phase can warm caches, TLBs
 *     and predictors before measurement starts. Because the boundary
 *     count is unknown until the guest halts, capture runs at an
 *     adaptive stride: every boundary is captured until the retained
 *     set exceeds SampleConfig::maxStored, then every other retained
 *     snapshot is dropped and the stride doubles. The retained set is
 *     always evenly spaced over the run so far.
 *
 *  2. *Measurement* — for each sampled interval, a fresh System is
 *     restored from the interval's snapshot and run in full detail for
 *     warm-up + interval instructions; the stats deltas between the
 *     end of warm-up and the end of the interval are the interval's
 *     measurement. Intervals shard across the run farm
 *     (common/parallel.h, one worker per snapshot) and are merged in
 *     interval order, so the extrapolated report is bitwise-identical
 *     at any job count.
 *
 * Extrapolation uses the ratio-of-sums estimator (CPI = sum cycles /
 * sum insts over the measured units) with a 95% confidence interval
 * from the per-interval spread (1.96 * s / sqrt(K)); the same
 * mean +/- ci95 error bar is attached to every reported figure
 * (top-down slot fractions, miss rates).
 *
 * Methodology caveats (DESIGN.md "Sampled simulation" has the full
 * contract):
 *  - Snapshots from a functional fast-forward carry *cold*
 *    microarchitectural state — the ISS reads memory directly and
 *    never touches the caches — which is exactly why the detailed
 *    warm-up window exists. Warm-up bias is measurable: rerun with a
 *    different --sample-warmup and compare.
 *  - Single-core configurations only. The functional fast-forward
 *    interleaves harts round-robin while detailed timing interleaves
 *    them by cycle order, so a multi-hart memory image at an interval
 *    boundary would not match what a detailed run observes.
 *  - rdcycle/mcycle guest reads return the restored core's local cycle
 *    count, not the extrapolated whole-run cycle — a guest that *times
 *    itself* mid-run sees different values than in a full detailed
 *    run (mtime is instruction-counted and is consistent).
 */

#ifndef XT910_SAMPLE_SAMPLE_H
#define XT910_SAMPLE_SAMPLE_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.h"

namespace xt910
{
namespace sample
{

/** Invalid sampling parameters or a measurement that cannot complete
 *  (watchdog fired inside an interval, snapshot refused). */
class SampleError : public std::runtime_error
{
  public:
    explicit SampleError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Sampling policy. All instruction counts are in retired guest
 *  instructions. */
struct SampleConfig
{
    /** Interval length. Must be > 0 to sample. */
    uint64_t interval = 0;
    /** Measured intervals (0 = every captured candidate). */
    unsigned count = 0;
    /** Detailed warm-up instructions executed before each measured
     *  interval (not counted in the measurement). */
    uint64_t warmup = 0;
    /** 0 = evenly spaced selection; nonzero seeds a deterministic
     *  random pick (common/random.h Xorshift64). */
    uint64_t seed = 0;
    /** Fast-forward snapshot retention bound; capture stride doubles
     *  whenever the retained set would exceed it. */
    unsigned maxStored = 512;
};

/** One candidate interval: its snapshot, captured `warmup`
 *  instructions before the boundary (clamped to instruction 0). */
struct CapturedInterval
{
    uint64_t index = 0;     ///< interval number k (boundary k*interval)
    uint64_t captureAt = 0; ///< insts retired at the capture point
    std::vector<uint8_t> bytes; ///< snap::saveSnapshotBytes blob
};

/** Outcome of the functional fast-forward pass. */
struct FastForwardResult
{
    uint64_t totalInsts = 0; ///< T: whole-run retired instructions
    bool halted = false;     ///< guest halted (vs cfg.maxInsts cap)
    int exitCode = 0;
    bool checksumOk = true;  ///< hooks.checkResult verdict (true if unset)
    std::vector<CapturedInterval> snaps; ///< by index, evenly strided
};

/** Optional environment hooks for runs that need more than
 *  loadProgram (page tables) or that can validate the guest result. */
struct SampleHooks
{
    /** Called on the fresh fast-forward System before loadProgram
     *  (e.g. to build page tables). Measurement Systems restore the
     *  captured memory image wholesale and need no setup. */
    std::function<void(System &)> setup;
    /** Called once at the end of the fast-forward with the halted
     *  System; the verdict lands in FastForwardResult::checksumOk. */
    std::function<bool(System &)> checkResult;
    /**
     * Cooperative abort (xt910d cancel/drain/deadline): polled every
     * few thousand instructions of the fast-forward (once per batched
     * runFast chunk) and of every measurement run, with the
     * instruction count of the current leg. Return
     * false to abort — the pipeline raises SampleError. Must be
     * thread-safe: measurement legs poll from farm workers.
     */
    std::function<bool(uint64_t)> keepGoing;
};

/** Fast-forward @p prog functionally under @p cfg, capturing interval
 *  snapshots per @p sc. Requires cfg.numCores == 1 and sc.interval > 0
 *  (throws SampleError otherwise). */
FastForwardResult fastForward(const SystemConfig &cfg,
                              const Program &prog,
                              const SampleConfig &sc,
                              const SampleHooks &hooks = {});

/** One measured interval: stats deltas over the measured region only
 *  (warm-up excluded). */
struct IntervalRecord
{
    uint64_t index = 0;        ///< interval number k
    uint64_t startInst = 0;    ///< boundary (first measured instruction)
    uint64_t warmupInsts = 0;  ///< detailed warm-up actually executed
    uint64_t measuredInsts = 0;
    Cycle cycles = 0;          ///< core cycles spent in the measured region
    uint64_t retiring = 0, frontendBound = 0, badSpeculation = 0,
             backendMem = 0, backendCore = 0; ///< top-down slot deltas
    uint64_t l1dMisses = 0, l1iMisses = 0, l2Misses = 0;
    uint64_t branchMispredicts = 0; ///< direction + target
    uint64_t itlbMisses = 0, dtlbMisses = 0;

    double
    cpi() const
    {
        return measuredInsts ? double(cycles) / double(measuredInsts)
                             : 0.0;
    }
};

/**
 * Run detailed timing over one captured interval: restore the
 * snapshot into a fresh System, execute warm-up + measured-region
 * instructions, and return the deltas. Pure function of its inputs —
 * safe to run concurrently per interval. @p totalInsts bounds the
 * final (possibly partial) interval. Throws SampleError if the
 * measurement cannot complete (watchdog).
 */
IntervalRecord measureInterval(const SystemConfig &cfg,
                               const CapturedInterval &snap,
                               const SampleConfig &sc,
                               uint64_t totalInsts,
                               const SampleHooks &hooks = {});

/** A reported figure: point estimate with its 95% CI half-width. */
struct Estimate
{
    double value = 0.0;
    double ci95 = 0.0;
};

/** The extrapolated whole-run report. */
struct SampleReport
{
    SampleConfig cfgUsed;      ///< the parameters that produced this
    uint64_t totalInsts = 0;   ///< from the fast-forward
    uint64_t intervalCount = 0; ///< ceil(totalInsts / interval)
    bool halted = false;
    int exitCode = 0;
    bool checksumOk = true;
    std::vector<IntervalRecord> intervals; ///< measured, interval order

    uint64_t measuredInsts = 0; ///< sum over measured intervals
    Cycle measuredCycles = 0;
    double coverage = 0.0;      ///< measuredInsts / totalInsts

    Estimate cpi;               ///< ratio-of-sums + per-interval CI
    uint64_t estCycles = 0;     ///< round(cpi * totalInsts)
    /** Top-down slot fractions (of all slots accounted). */
    Estimate retiring, frontendBound, badSpeculation, backendMem,
        backendCore;
    /** Misses per kilo-instruction over the measured region. */
    Estimate l1dMpki, l1iMpki, l2Mpki, branchMpki, itlbMpki, dtlbMpki;
};

/**
 * The whole pipeline: fast-forward, select sc.count intervals from
 * the captured candidates (evenly spaced, or seeded-random when
 * sc.seed != 0), measure them on @p jobs workers, extrapolate.
 * The report is bitwise-identical at any @p jobs value.
 */
SampleReport runSampled(const SystemConfig &cfg, const Program &prog,
                        const SampleConfig &sc, unsigned jobs,
                        const SampleHooks &hooks = {});

/** The deterministic machine-readable report (the sampled-mode
 *  counterpart of serve::writeRunStatsJson — no host timings). */
void writeSampleJson(std::ostream &os, const std::string &workload,
                     const SampleReport &rep);

/** Compact single-line JSONL summary (the sampled-mode counterpart of
 *  serve::writeRunSummaryLine). */
void writeSampleSummaryLine(std::ostream &os,
                            const std::string &workload,
                            const SampleReport &rep);

/** Multi-line human summary for the CLI. */
std::string summarize(const SampleReport &rep);

} // namespace sample
} // namespace xt910

#endif // XT910_SAMPLE_SAMPLE_H
