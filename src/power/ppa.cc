#include "power/ppa.h"

#include <cmath>

namespace xt910
{

namespace
{

// 12nm-like density constants (calibrated; see header comment).
// Units: mm^2 per kilobit of storage, or mm^2 per logic block.
constexpr double sramMm2PerKb = 0.00009;   // high-density 6T SRAM
constexpr double rfMm2PerKb = 0.0008;      // multi-ported register file
constexpr double flopMm2PerKb = 0.0012;    // pipeline/queue flops
constexpr double logicMm2PerAluLane = 0.03;
constexpr double fpuMm2 = 0.06;            // one FP pipe
constexpr double vecSliceMm2 = 0.048;      // one 64-bit vector slice
constexpr double lsuMm2 = 0.08;
constexpr double frontendMm2 = 0.1;        // fetch/decode/rename logic
constexpr double miscMm2 = 0.045;          // control/debug/PMU/clocking

double
kb(double bits)
{
    return bits / 1024.0 / 8.0 * 8.0; // bits -> Kb
}

} // namespace

const char *
techName(TechNode t)
{
    return t == TechNode::Tsmc12 ? "TSMC 12nm FinFET" : "TSMC 7nm FinFET";
}

const char *
opName(OperatingPoint p)
{
    return p == OperatingPoint::Lvt0v8 ? "LVT cells, 0.8V"
                                       : "30% ULVT cells, 1.0V";
}

PpaResult
estimatePpa(const CoreParams &core, const MemSystemParams &mem,
            TechNode tech, OperatingPoint op)
{
    PpaResult r;

    // --------------------------------------------------------- area
    // L1 caches (tag + data, ~10% tag overhead).
    double l1Kb = double(mem.l1i.sizeBytes + mem.l1d.sizeBytes) * 8.0 *
                  1.1 / 1024.0;
    double area = l1Kb * sramMm2PerKb;

    // Predictor tables + BTBs + TLBs: SRAM-backed.
    double predKb =
        kb(double(core.direction.banks) *
           double(1u << core.direction.tableBits) * 2.0) +
        kb(double(core.btb.l1Sets) * core.btb.l1Ways * 64.0) +
        kb(double(core.tlb.jtlbSets) * core.tlb.jtlbWays * 72.0);
    area += predKb * sramMm2PerKb * 1.2;

    // Windows and register files.
    double robKb = kb(double(core.robEntries) * 96.0);
    double lsqKb = kb(double(core.lqEntries + core.sqEntries) * 120.0);
    area += (robKb + lsqKb) * flopMm2PerKb;
    double rfKb = kb((96.0 + 64.0) * 64.0); // int + fp physical regs
    area += rfKb * rfMm2PerKb;

    // Execution logic.
    area += 2 * logicMm2PerAluLane;         // two ALU pipes + mul/div
    area += 2 * fpuMm2;                     // two scalar FP pipes
    area += lsuMm2 * (core.lsuDualIssue ? 1.5 : 1.0);
    area += frontendMm2 *
            (double(core.decodeWidth) / 3.0 * 0.5 + 0.5);
    area += miscMm2;

    // Vector unit: slices of 64 bits each (§VII).
    double vecArea = 0;
    if (core.vecBitsPerCycle > 0) {
        unsigned slices = std::max(1u, core.vecBitsPerCycle / 128);
        vecArea = vecSliceMm2 * 2 * slices; // 2 pipes per slice
        double vrfKb = kb(32.0 * core.vlenBits);
        vecArea += vrfKb * rfMm2PerKb;
    }
    area += vecArea;

    double techScale = tech == TechNode::Tsmc7 ? 0.55 : 1.0;
    r.coreAreaMm2 = area * techScale;
    r.vecAreaMm2 = vecArea * techScale;
    r.l2AreaMm2 = double(mem.l2.sizeBytes) * 8.0 / 1024.0 * 1.05 *
                  sramMm2PerKb * techScale;

    // ---------------------------------------------------- frequency
    // A 12-stage pipeline at 12nm reaches 2.0 GHz at the LVT/0.8V
    // point and 2.5 GHz with ULVT at 1.0 V (Table II); deeper windows
    // and wider issue erode it gently.
    double base = op == OperatingPoint::Lvt0v8 ? 2.0 : 2.5;
    if (tech == TechNode::Tsmc7)
        base = 2.8; // the paper's 7nm experiment
    double windowPenalty =
        0.05 * std::log2(double(core.robEntries) / 192.0 + 1.0) - 0.05;
    double widthPenalty = 0.03 * (double(core.issueWidth) - 8.0) / 8.0;
    r.freqGHz = base - windowPenalty - widthPenalty;

    // -------------------------------------------------------- power
    // Dynamic energy per cycle scales with active structures; the
    // calibration lands the default config near 100 uW/MHz (Table II
    // footnote c: 32/64KB L1, 256/512KB L2, without VEC).
    double uw = 0;
    uw += l1Kb * 0.02;                       // cache access energy
    uw += (robKb + lsqKb + rfKb) * 0.5;
    uw += double(core.issueWidth) * 2.6;     // scheduling + bypass
    uw += double(core.decodeWidth) * 3.2;    // fetch/decode/rename
    uw += 28.0;                              // clock tree + misc
    if (core.vecBitsPerCycle > 0)
        uw += 24.0 * double(core.vecBitsPerCycle) / 256.0;
    double vScale = op == OperatingPoint::Ulvt1v0 ? 1.5 : 1.0;
    r.dynUwPerMhz = uw * vScale * (tech == TechNode::Tsmc7 ? 0.6 : 1.0);

    r.leakageMw = r.coreAreaMm2 *
                  (op == OperatingPoint::Ulvt1v0 ? 22.0 : 9.0);
    return r;
}

} // namespace xt910
