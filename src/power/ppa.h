/**
 * @file
 * First-order PPA (power/performance/area) model regenerating Table II.
 *
 * This is an analytical structure-based estimate: every sized
 * microarchitectural structure (caches, ROB, register files, predictor
 * tables, TLBs, execution units, the vector unit) contributes area and
 * switching capacitance using per-technology density constants
 * calibrated so the paper's XT-910 configuration lands at its reported
 * numbers (0.8 / 0.6 mm^2 with/without VEC excluding L2, 2.0-2.5 GHz,
 * ~100 uW/MHz, §II Table II). It reproduces the *table* and its
 * parameter sensitivities — it is not a silicon sign-off model.
 */

#ifndef XT910_POWER_PPA_H
#define XT910_POWER_PPA_H

#include "core/params.h"
#include "mem/memsystem.h"

namespace xt910
{

/** Process technology assumptions. */
enum class TechNode
{
    Tsmc12,  ///< the paper's implementation node
    Tsmc7,   ///< the paper's 2.8 GHz experiment (§II)
};

/** Voltage/cell corner (Table II footnotes a/b). */
enum class OperatingPoint
{
    Lvt0v8,   ///< LVT cells + ULVT SRAM at 0.8 V
    Ulvt1v0,  ///< 30% ULVT cells at 1.0 V (voltage boost)
};

/** Modelled PPA outputs for one core. */
struct PpaResult
{
    double coreAreaMm2 = 0;      ///< core area excluding L2
    double vecAreaMm2 = 0;       ///< vector-unit share of the above
    double l2AreaMm2 = 0;        ///< cluster L2 area
    double freqGHz = 0;          ///< achievable clock
    double dynUwPerMhz = 0;      ///< dynamic power per core
    double leakageMw = 0;        ///< static power estimate
};

/** Estimate the PPA of one core (+ cluster L2 reported separately). */
PpaResult estimatePpa(const CoreParams &core, const MemSystemParams &mem,
                      TechNode tech = TechNode::Tsmc12,
                      OperatingPoint op = OperatingPoint::Lvt0v8);

const char *techName(TechNode t);
const char *opName(OperatingPoint p);

} // namespace xt910

#endif // XT910_POWER_PPA_H
