/**
 * @file
 * The functional instruction-set simulator (ISS). It retires
 * instructions architecturally and acts as the run-ahead oracle for the
 * timing models: every step() returns an ExecRecord carrying the PC,
 * decoded instruction, branch outcome and memory address — everything a
 * timing model needs to replay the instruction through its pipeline.
 */

#ifndef XT910_FUNC_ISS_H
#define XT910_FUNC_ISS_H

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "func/clint.h"
#include "func/memory.h"
#include "func/state.h"
#include "func/trap.h"
#include "isa/inst.h"
#include "xasm/assembler.h"

namespace xt910
{

/** One architecturally retired instruction, as seen by a timing model. */
struct ExecRecord
{
    Addr pc = 0;
    DecodedInst di;
    Addr nextPc = 0;
    bool taken = false;   ///< control transferred away from fallthrough
    Addr memAddr = 0;     ///< first byte touched (loads/stores/AMO/vector)
    uint32_t memSize = 0; ///< total bytes touched; 0 if not a memory op
    int64_t memStride = 0;///< element stride for vector accesses
    unsigned vl = 0;      ///< vector length in effect (vector ops)
    unsigned sew = 0;     ///< element width in effect (vector ops)
    bool halted = false;  ///< hart halted after this instruction
    /**
     * Machine interrupts deliverable after this instruction retired
     * (mstatus.MIE set and a timer/software source enabled in mie).
     * Recorded by the ISS so a batched consumer (System's span path)
     * can evaluate the watchdog's "interruptible" input per record
     * without re-reading CSR state the ISS has since run ahead of.
     */
    bool intEnabled = false;
    /**
     * Synchronous exception raised by this instruction. When valid,
     * nextPc already points at the handler (or the hart halted) and the
     * timing core replays the event as a full pipeline flush.
     */
    Trap trap;

    /**
     * Timing-model plan slot: a stable per-generation index of this
     * static instruction in the ISS's predecoded block cache, so the
     * core can cache decode-derived scheduling metadata per slot
     * instead of re-deriving it every execution (noPlan = record did
     * not come from a cached block). planGen is the block-cache
     * generation the index belongs to; a flush bumps it and
     * invalidates every consumer-side table keyed by planIdx.
     */
    static constexpr uint32_t noPlan = ~uint32_t(0);
    uint32_t planIdx = noPlan;
    uint32_t planGen = 0;

    bool isMemOp() const { return memSize != 0; }
};

/** ISS construction options. */
struct IssOptions
{
    unsigned vlenBits = 128;   ///< VLEN (the paper recommends 128, §VII)
    bool enableCustom = true;  ///< non-standard extensions decodable
    bool enableClint = true;   ///< CLINT timer/software interrupts (§II)
    uint64_t stackBase = 0x8800'0000; ///< initial sp (grows down)
    /** Trap on misaligned data accesses (XT-910's LSU handles them). */
    bool strictAlign = false;
    /**
     * Predecoded basic-block fast path: decode straight-line runs once
     * into a flat vector keyed by block-start PC instead of hitting
     * the per-instruction decode hash map. Off = legacy per-PC decode
     * cache (kept for A/B speed measurement, see bench_simspeed).
     */
    bool blockCache = true;
    /**
     * A trap with no mtvec handler installed aborts the simulation
     * (configuration error). Fault-injection campaigns clear this so
     * the hart instead halts with exitCode 128+cause and fatalTrap set.
     */
    bool fatalOnUnhandledTrap = true;
};

/** Block-cache effectiveness/consistency accounting (see Iss). */
struct BlockCacheStats
{
    uint64_t hits = 0;    ///< steps served from a cached block
    uint64_t misses = 0;  ///< steps that had to build a new block
    uint64_t invalidations = 0; ///< stores that hit predecoded code
    uint64_t flushes = 0; ///< whole-cache drops (SMC/fence.i/bound)
};

/** See file comment. */
class Iss
{
  public:
    Iss(Memory &mem, unsigned numHarts = 1, IssOptions opts = IssOptions());

    /** Load @p p and point every hart's PC at its entry. */
    void loadProgram(const Program &p);

    ArchState &hart(unsigned i) { return harts[i]; }
    const ArchState &hart(unsigned i) const { return harts[i]; }
    unsigned numHarts() const { return unsigned(harts.size()); }

    /** Execute one instruction on @p hartId. No-op if halted. */
    ExecRecord step(unsigned hartId = 0);

    /**
     * Execute up to @p maxN instructions on @p hartId, filling
     * @p out[0..result) with the per-instruction ExecRecords — the
     * batched hand-off for System's block-consume path (DESIGN.md
     * §3h). Bit-equivalent to calling step(hartId) that many times
     * (per-instruction CLINT ticks, interrupt polls, flush checks and
     * trap delivery all run inside the batch); stops early only when
     * the hart halts. Returns the number of records filled (0 when
     * the hart was already halted).
     *
     * The ISS runs ahead of the timing model inside a span. Guest
     * reads of timing-backed CSRs (cycle/mcycle/time, hpmcounters)
     * would observe stale model state, so before serving one the ISS
     * invokes timingSync — the span consumer uses it to drain the
     * records produced so far into the timing core first, keeping the
     * read bit-exact with the per-record path. spanProgress() tells
     * the hook how many records of the in-flight batch are complete.
     */
    unsigned stepBlock(unsigned hartId, ExecRecord *out, unsigned maxN);

    /** Records completed so far by an in-flight stepBlock call. */
    uint32_t spanProgress() const { return spanFilled; }

    /** Called before a timing-backed CSR read is served (see
     *  stepBlock). Unset for functional-only / per-record runs. */
    std::function<void()> timingSync;

    /**
     * Run hart 0 (or all harts round-robin) until everything halts or
     * @p maxInsts instructions retire; returns instructions retired.
     */
    uint64_t run(uint64_t maxInsts = 100'000'000);

    /**
     * Execute up to @p maxInsts instructions on one hart without
     * materializing per-instruction ExecRecords. Architecturally
     * bit-equivalent to calling step(hartId) that many times and
     * discarding the records — state, CLINT time base, instret, traps
     * and block-cache stats all advance identically — but meaningfully
     * faster, which makes it the fast-forward engine for sampled
     * simulation (src/sample). Returns the number of instructions
     * actually executed (short only when the hart halts).
     */
    uint64_t runFast(unsigned hartId, uint64_t maxInsts);

    bool halted(unsigned hartId = 0) const { return harts[hartId].halted; }
    bool allHalted() const;
    int exitCode(unsigned hartId = 0) const
    {
        return harts[hartId].exitCode;
    }

    /** Characters written via the write "syscall". */
    const std::string &console() const { return consoleBuf; }

    Memory &memory() { return mem; }
    const IssOptions &options() const { return opts; }
    unsigned vlenBits() const { return opts.vlenBits; }

    /**
     * Decode (with caching) the instruction at @p pc. The result may be
     * Invalid (op == Opcode::Invalid, raw = encoding) — the caller
     * raises an illegal-instruction trap; fetchDecode never aborts.
     */
    const DecodedInst &fetchDecode(Addr pc);

    /** The core-local interruptor (timers + software interrupts). */
    Clint &clint() { return clintDev; }

    /**
     * Tell the decode caches that [addr, addr+len) was written behind
     * the ISS's back (fault injectors corrupting code bytes, debuggers
     * patching memory). The ISS's own stores call this internally, so
     * guest self-modifying code re-decodes correctly even without a
     * fence.i. Cheap when the range does not overlap predecoded code.
     */
    void
    notifyCodeWrite(Addr addr, uint64_t len)
    {
        if (addr < codeHi && addr + len > codeLo)
            noteCodeWriteSlow(addr, len);
    }

    /** Block-cache accounting (hit/miss/invalidate/flush). */
    const BlockCacheStats &blockCacheStats() const { return bcStats; }

    /** Cached basic blocks currently resident (for tests). */
    size_t blockCacheSize() const { return blockCache.size(); }

    /**
     * Fault injection: arm a one-shot access fault — the next data
     * access on @p hartId raises a load/store access fault regardless
     * of its address.
     */
    void injectAccessFault(unsigned hartId = 0)
    {
        armedAccessFault[hartId] = true;
    }

    /** Synchronous traps delivered to a handler on @p hartId. */
    uint64_t trapsTaken(unsigned hartId = 0) const
    {
        return harts[hartId].trapCount;
    }

    /**
     * Serialize the complete architectural state: every hart's
     * registers/CSRs/vector state, the CLINT, the console buffer and
     * armed fault injections. The predecoded block cache and decode
     * cache are deliberately *not* captured — they are pure caches of
     * memory contents and are rebuilt on demand after snapLoad (which
     * flushes them), so a restored run re-decodes but executes
     * identically.
     */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    /**
     * Timing-model cycle source backing cycle/time/mcycle CSR reads.
     * When unset (functional-only runs) those CSRs read the hart's
     * retired-instruction count, which keeps them monotonic and
     * deterministic. System installs a hook returning the hart's
     * timing-core cycle count.
     */
    std::function<uint64_t(unsigned hart)> cycleSource;

    /**
     * Timing-model event source backing mhpmcounter3..8. Called with
     * the hart and the event selector programmed into the matching
     * mhpmevent CSR (csr::hpmevent values); returns the running event
     * count. Unset hook or unknown selector reads zero.
     */
    std::function<uint64_t(unsigned hart, uint64_t event)> hpmSource;

  private:
    ExecRecord execute(ArchState &s, const DecodedInst &di, Addr pc);
    /** Deliver a pending machine interrupt, if enabled. */
    void maybeTakeInterrupt(ArchState &s, unsigned hartId);
    /**
     * Architectural trap entry: write mepc/mcause/mtval, stash MIE into
     * MPIE and the privilege into MPP, raise to M-mode. Returns the
     * handler address from mtvec (honouring vectored mode for
     * interrupts).
     */
    Addr enterTrap(ArchState &s, uint64_t cause, uint64_t tval, Addr epc,
                   bool interrupt);
    /**
     * Route @p rec's raised trap: redirect to the handler, or — with no
     * mtvec installed — abort (fatalOnUnhandledTrap) or halt the hart
     * with fatalTrap set.
     */
    void deliverTrap(ArchState &s, ExecRecord &rec, Addr pc);
    /** Check a data access; raises the trap in @p rec when illegal. */
    bool checkDataAccess(ArchState &s, ExecRecord &rec, Addr a,
                         unsigned size, bool isStore);
    void execVector(ArchState &s, const DecodedInst &di, ExecRecord &rec);
    uint64_t readCsr(ArchState &s, uint32_t num) const;
    unsigned hartOf(const ArchState &s) const
    {
        return unsigned(&s - harts.data());
    }
    void writeCsr(ArchState &s, uint32_t num, uint64_t v);
    void invalidateReservations(Addr addr, const ArchState *except);

    /** One predecoded instruction of a basic block. */
    struct BlockInst
    {
        Addr pc = 0;
        DecodedInst di;
        /** Plan slot stamped into ExecRecord::planIdx (see there). */
        uint32_t planIdx = ExecRecord::noPlan;
    };

    /**
     * A predecoded straight-line run: starts at the mapped PC, ends at
     * the first control-transfer/decode-cache-flushing instruction, an
     * undecodable word, an unfetchable byte, or maxBlockInsts. Blocks
     * are immutable once built; consistency is handled by whole-cache
     * flushes (deferred to the next step() so in-flight references
     * stay valid while the triggering instruction executes).
     */
    struct DecodedBlock
    {
        std::vector<BlockInst> insts;
    };

    /** Per-hart position inside the block being executed. */
    struct BlockCursor
    {
        const DecodedBlock *blk = nullptr;
        unsigned idx = 0;
    };

    /** Find or build the block starting at @p pc; null = fetch fault. */
    const DecodedBlock *lookupBlock(Addr pc);
    /** Decode a fresh block at @p pc into @p b (may come out empty). */
    void buildBlock(Addr pc, DecodedBlock &b);
    /** Decode the (up to) 4 bytes at @p pc; false = unfetchable. */
    bool decodeAt(Addr pc, DecodedInst &di) const;
    /** Drop every cached decode product and reset the cursors. */
    void flushDecoded();
    /** Out-of-line half of notifyCodeWrite (page-precise check). */
    void noteCodeWriteSlow(Addr addr, uint64_t len);
    /** Record that [pc, pc+len) now backs predecoded state. */
    void trackCodeBytes(Addr pc, unsigned len);

    Memory &mem;
    IssOptions opts;
    std::vector<ArchState> harts;
    /** Cached mstatus/mie CSR nodes, one per hart: the interrupt poll
     *  runs before every instruction and two hash lookups per step are
     *  measurable at fast-forward speeds. Node pointers stay valid
     *  because snapLoad zeroes CSR entries in place instead of
     *  clearing the map (same idiom as System's interruptible()). */
    std::vector<uint64_t *> mstatusSlot, mieSlot;
    Clint clintDev;
    std::string consoleBuf;
    std::unordered_map<Addr, DecodedInst> decodeCache;
    std::vector<bool> armedAccessFault; ///< one-shot injected faults

    // ---- predecoded basic-block fast path ----------------------------
    /** Cache growth bound: past this many blocks, flush and rebuild. */
    static constexpr size_t maxBlocks = 1u << 15;
    /** Same bound for the legacy per-PC decode cache. */
    static constexpr size_t maxDecodeEntries = 1u << 17;
    /** Straight-line decode-ahead limit per block. */
    static constexpr unsigned maxBlockInsts = 64;

    std::unordered_map<Addr, DecodedBlock> blockCache;
    std::vector<BlockCursor> cursors;
    BlockCacheStats bcStats;
    /** Build-time scratch (reserved once; see buildBlock). */
    std::vector<BlockInst> scratchInsts;
    /** Next plan slot to hand out (one per predecoded instruction). */
    uint32_t nextPlanIdx = 0;
    /** Block-cache generation for plan-slot invalidation. Starts at 1
     *  so a freshly reset consumer (planGenSeen 0) always rebuilds. */
    uint32_t planGen = 1;
    /** Flush requested by the currently executing instruction (SMC
     *  store, fence.i, icache.iall); applied at the next step() so the
     *  in-flight DecodedInst reference is never freed underneath
     *  execute(). */
    bool pendingFlush = false;
    /** Memory mutation epoch the caches were built against. */
    uint64_t memEpochSeen = 0;
    /** Progress cursor of an in-flight stepBlock (see spanProgress). */
    uint32_t spanFilled = 0;
    /** Byte range + page set backing any predecoded state. The range
     *  check filters stores in two compares; the page set makes the
     *  slow path precise enough that data stores near code do not
     *  thrash the cache. */
    Addr codeLo = ~Addr(0);
    Addr codeHi = 0;
    std::unordered_set<Addr> codePages;
};

} // namespace xt910

#endif // XT910_FUNC_ISS_H
