/**
 * @file
 * Minimal IEEE-754 binary16 conversion helpers. XT-910's vector unit
 * supports half-precision (a differentiator over Cortex-A73 NEON per
 * §X); the functional model converts through float for arithmetic.
 */

#ifndef XT910_FUNC_FP16_H
#define XT910_FUNC_FP16_H

#include <cstdint>
#include <cstring>

namespace xt910
{

/** Convert binary16 bits to float. */
inline float
fp16ToFloat(uint16_t h)
{
    uint32_t sign = (h >> 15) & 1;
    uint32_t exp = (h >> 10) & 0x1f;
    uint32_t frac = h & 0x3ff;
    uint32_t out;
    if (exp == 0) {
        if (frac == 0) {
            out = sign << 31;
        } else {
            // Subnormal: normalize.
            int e = -1;
            do {
                frac <<= 1;
                ++e;
            } while (!(frac & 0x400));
            frac &= 0x3ff;
            out = (sign << 31) | (uint32_t(127 - 15 - e) << 23) |
                  (frac << 13);
        }
    } else if (exp == 0x1f) {
        out = (sign << 31) | 0x7f800000 | (frac << 13);
    } else {
        out = (sign << 31) | ((exp - 15 + 127) << 23) | (frac << 13);
    }
    float f;
    std::memcpy(&f, &out, 4);
    return f;
}

/** Convert float to binary16 bits (round to nearest even). */
inline uint16_t
floatToFp16(float f)
{
    uint32_t x;
    std::memcpy(&x, &f, 4);
    uint32_t sign = (x >> 31) & 1;
    int32_t exp = int32_t((x >> 23) & 0xff) - 127 + 15;
    uint32_t frac = x & 0x7fffff;
    if (((x >> 23) & 0xff) == 0xff) // inf/nan
        return uint16_t((sign << 15) | 0x7c00 | (frac ? 0x200 : 0));
    if (exp >= 0x1f) // overflow -> inf
        return uint16_t((sign << 15) | 0x7c00);
    if (exp <= 0) {
        if (exp < -10)
            return uint16_t(sign << 15); // underflow to zero
        // Subnormal result.
        frac |= 0x800000;
        unsigned shift = unsigned(14 - exp);
        uint32_t half = frac >> shift;
        uint32_t rem = frac & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half;
        return uint16_t((sign << 15) | half);
    }
    // Normal: round mantissa from 23 to 10 bits.
    uint32_t half = frac >> 13;
    uint32_t rem = frac & 0x1fff;
    if (rem > 0x1000 || (rem == 0x1000 && (half & 1)))
        ++half;
    if (half == 0x400) {
        half = 0;
        ++exp;
        if (exp >= 0x1f)
            return uint16_t((sign << 15) | 0x7c00);
    }
    return uint16_t((sign << 15) | (uint32_t(exp) << 10) | half);
}

} // namespace xt910

#endif // XT910_FUNC_FP16_H
