/**
 * @file
 * Synchronous exception (trap) model shared by the functional simulator
 * and the timing cores. XT-910 implements precise machine-mode
 * exceptions (§II): a faulting instruction writes mepc/mcause/mtval and
 * redirects to mtvec without retiring any architectural side effect; the
 * timing model replays the same event as a full pipeline flush.
 */

#ifndef XT910_FUNC_TRAP_H
#define XT910_FUNC_TRAP_H

#include <cstdint>

namespace xt910
{

namespace trap
{

// RISC-V mcause codes for synchronous exceptions (interrupt bit clear).
constexpr uint64_t instAddrMisaligned = 0;
constexpr uint64_t instAccessFault = 1;
constexpr uint64_t illegalInstruction = 2;
constexpr uint64_t breakpoint = 3;
constexpr uint64_t loadAddrMisaligned = 4;
constexpr uint64_t loadAccessFault = 5;
constexpr uint64_t storeAddrMisaligned = 6;
constexpr uint64_t storeAccessFault = 7;
constexpr uint64_t ecallFromU = 8;
constexpr uint64_t ecallFromS = 9;
constexpr uint64_t ecallFromM = 11;

/** Human-readable cause name ("illegal instruction", ...). */
inline const char *
causeName(uint64_t cause)
{
    switch (cause) {
      case instAddrMisaligned: return "instruction address misaligned";
      case instAccessFault: return "instruction access fault";
      case illegalInstruction: return "illegal instruction";
      case breakpoint: return "breakpoint";
      case loadAddrMisaligned: return "load address misaligned";
      case loadAccessFault: return "load access fault";
      case storeAddrMisaligned: return "store address misaligned";
      case storeAccessFault: return "store access fault";
      case ecallFromU: return "ecall from U-mode";
      case ecallFromS: return "ecall from S-mode";
      case ecallFromM: return "ecall from M-mode";
      default: return "unknown cause";
    }
}

} // namespace trap

/**
 * A raised synchronous exception. Carried inside ExecRecord so the
 * timing core can replay the trap as a flush + redirect.
 */
struct Trap
{
    bool valid = false;
    uint64_t cause = 0; ///< mcause value (synchronous: no interrupt bit)
    uint64_t tval = 0;  ///< mtval value (faulting address / encoding)

    explicit operator bool() const { return valid; }
};

/** Build a raised trap. */
inline Trap
makeTrap(uint64_t cause, uint64_t tval)
{
    return Trap{true, cause, tval};
}

} // namespace xt910

#endif // XT910_FUNC_TRAP_H
