/**
 * @file
 * Per-hart architectural state: program counter, the three register
 * files that XT-910 renames independently (integer, FP, vector), the
 * vector configuration, and the small CSR file.
 */

#ifndef XT910_FUNC_STATE_H
#define XT910_FUNC_STATE_H

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "isa/vtype.h"

namespace xt910
{

/** See file comment. */
struct ArchState
{
    /** Widest supported vector register, bytes (VLEN up to 2048). */
    static constexpr unsigned maxVlenBytes = 256;

    Addr pc = 0;
    std::array<uint64_t, 32> x{};
    std::array<uint64_t, 32> f{};  ///< raw FP bits; singles NaN-boxed
    std::array<std::array<uint8_t, maxVlenBytes>, 32> v{};

    // Vector configuration (vsetvl/vsetvli).
    uint64_t vl = 0;
    VType vtype{};

    std::unordered_map<uint32_t, uint64_t> csrs;

    // LR/SC reservation.
    bool resValid = false;
    Addr resAddr = 0;

    bool halted = false;
    int exitCode = 0;
    uint64_t instret = 0;

    /** Current privilege level (trap entry raises to Machine). */
    PrivMode priv = PrivMode::Machine;
    /** Synchronous exceptions delivered to a handler on this hart. */
    uint64_t trapCount = 0;
    /** Hart died on an unhandled trap (mtvec was not installed). */
    bool fatalTrap = false;

    uint64_t
    readX(RegIndex r) const
    {
        return r == 0 ? 0 : x[r];
    }

    void
    writeX(RegIndex r, uint64_t v_)
    {
        if (r != 0)
            x[r] = v_;
    }
};

} // namespace xt910

#endif // XT910_FUNC_STATE_H
