#include "func/memory.h"

#include <algorithm>

#include "common/log.h"
#include "common/snapio.h"
#include "xasm/assembler.h"

namespace xt910
{

uint8_t *
Memory::pageFor(Addr addr)
{
    Addr vpn = addr >> pageShift;
    auto it = pages.find(vpn);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(vpn, std::move(page)).first;
    }
    return it->second->data();
}

const uint8_t *
Memory::pageForRead(Addr addr) const
{
    // Reads of untouched memory return zeroes; allocate lazily so the
    // caller sees a consistent zero-filled page.
    return const_cast<Memory *>(this)->pageFor(addr);
}

bool
Memory::accessOk(Addr addr, unsigned size) const
{
    // Reject accesses past the physical limit, including wraparound.
    if (addr >= physBound || size > physBound - addr)
        return false;
    for (const auto &[base, len] : faultRanges) {
        if (addr < base + len && base < addr + size)
            return false;
    }
    return true;
}

void
Memory::addFaultRange(Addr base, uint64_t size)
{
    if (size != 0) {
        faultRanges.emplace_back(base, size);
        ++mutations;
    }
}

uint64_t
Memory::read(Addr addr, unsigned size) const
{
    xt_assert(size >= 1 && size <= 8, "bad access size ", size);
    uint64_t v = 0;
    readBytes(addr, &v, size);
    return v;
}

void
Memory::write(Addr addr, unsigned size, uint64_t value)
{
    xt_assert(size >= 1 && size <= 8, "bad access size ", size);
    writeBytes(addr, &value, size);
}

void
Memory::readBytes(Addr addr, void *out, size_t n) const
{
    auto *dst = static_cast<uint8_t *>(out);
    while (n > 0) {
        Addr off = addr & (pageSize - 1);
        size_t chunk = std::min<size_t>(n, pageSize - off);
        std::memcpy(dst, pageForRead(addr) + off, chunk);
        addr += chunk;
        dst += chunk;
        n -= chunk;
    }
}

void
Memory::writeBytes(Addr addr, const void *in, size_t n)
{
    auto *src = static_cast<const uint8_t *>(in);
    while (n > 0) {
        Addr off = addr & (pageSize - 1);
        size_t chunk = std::min<size_t>(n, pageSize - off);
        std::memcpy(pageFor(addr) + off, src, chunk);
        addr += chunk;
        src += chunk;
        n -= chunk;
    }
}

void
Memory::loadProgram(const Program &p)
{
    writeBytes(p.base, p.image.data(), p.image.size());
}

void
Memory::snapSave(SnapWriter &w) const
{
    w.u64(physBound);
    w.u64(mutations);
    w.u64(faultRanges.size());
    for (const auto &[base, len] : faultRanges) {
        w.u64(base);
        w.u64(len);
    }
    std::vector<Addr> vpns;
    vpns.reserve(pages.size());
    for (const auto &[vpn, page] : pages)
        vpns.push_back(vpn);
    std::sort(vpns.begin(), vpns.end());
    w.u64(vpns.size());
    // The page image is by far the largest snapshot payload; growing
    // the buffer in one step removes the doubling reallocs that made
    // sampled-mode interval captures memcpy the image several times.
    w.reserve(vpns.size() * (8 + pageSize));
    for (Addr vpn : vpns) {
        w.u64(vpn);
        w.bytes(pages.at(vpn)->data(), pageSize);
    }
}

void
Memory::snapLoad(SnapReader &r)
{
    physBound = r.u64();
    mutations = r.u64();
    faultRanges.clear();
    uint64_t nRanges = r.u64();
    for (uint64_t i = 0; i < nRanges; ++i) {
        Addr base = r.u64();
        uint64_t len = r.u64();
        faultRanges.emplace_back(base, len);
    }
    pages.clear();
    uint64_t nPages = r.u64();
    for (uint64_t i = 0; i < nPages; ++i) {
        Addr vpn = r.u64();
        auto page = std::make_unique<Page>();
        r.bytes(page->data(), pageSize);
        pages.emplace(vpn, std::move(page));
    }
}

} // namespace xt910
