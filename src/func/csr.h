/**
 * @file
 * CSR numbers the model understands. Only the registers the paper's
 * workloads and experiments touch are implemented; everything else
 * reads as zero and ignores writes (with a one-time warning).
 */

#ifndef XT910_FUNC_CSR_H
#define XT910_FUNC_CSR_H

#include <cstdint>

namespace xt910
{
namespace csr
{

constexpr uint32_t mstatus = 0x300;
constexpr uint32_t mtvec = 0x305;
constexpr uint32_t mie = 0x304;
constexpr uint32_t mscratch = 0x340;
constexpr uint32_t mepc = 0x341;
constexpr uint32_t mcause = 0x342;
constexpr uint32_t mtval = 0x343;
constexpr uint32_t mip = 0x344;
constexpr uint32_t satp = 0x180;
constexpr uint32_t mhartid = 0xf14;
constexpr uint32_t cycle = 0xc00;
constexpr uint32_t time = 0xc01;
constexpr uint32_t instret = 0xc02;
// Machine counters and hardware performance monitors. The model
// implements mhpmcounter3..8 (user aliases hpmcounter3..8), each
// selecting an event via the matching mhpmevent register. Counters are
// hardwired to the timing model; guest writes are ignored.
constexpr uint32_t mcycle = 0xb00;
constexpr uint32_t minstret = 0xb02;
constexpr uint32_t mhpmcounter3 = 0xb03; ///< ..mhpmcounter8 = 0xb08
constexpr uint32_t hpmcounter3 = 0xc03;  ///< ..hpmcounter8 = 0xc08
constexpr uint32_t mhpmevent3 = 0x323;   ///< ..mhpmevent8 = 0x328
constexpr unsigned numHpmCounters = 6;

/** Event selector values for mhpmeventN. */
namespace hpmevent
{
constexpr uint64_t none = 0;
constexpr uint64_t l1dMiss = 1;
constexpr uint64_t branchMispredict = 2; ///< direction + target redirects
constexpr uint64_t itlbMiss = 3;
constexpr uint64_t dtlbMiss = 4;
constexpr uint64_t l1iMiss = 5;
constexpr uint64_t l2Miss = 6; ///< cluster L2 misses (cluster-wide)
} // namespace hpmevent
// V-extension 0.7.1 CSRs.
constexpr uint32_t vstart = 0x008;
constexpr uint32_t vl = 0xc20;
constexpr uint32_t vtype = 0xc21;
constexpr uint32_t vlenb = 0xc22;
// XT-910 custom: 16-bit wide ASID lives in a custom context register
// (the paper extends the ASID to 16 bits, §V.E).
constexpr uint32_t xt_asid = 0x7c0;

} // namespace csr
} // namespace xt910

#endif // XT910_FUNC_CSR_H
