/**
 * @file
 * CLINT-lite: the standard RISC-V core-local interruptor XT-910
 * integrates (§II — "standard CLint and PLIC multi-core interrupt
 * controllers, timers"). Memory-mapped at the conventional base:
 *
 *   base + 0x0000 + 4*hart  : msip   (software interrupt / IPI)
 *   base + 0x4000 + 8*hart  : mtimecmp
 *   base + 0xbff8           : mtime (read-only; advances with
 *                             retired instructions in this model)
 *
 * The ISS routes loads/stores in this window here and takes machine
 * timer/software interrupts when mstatus.MIE and the mie bits allow.
 */

#ifndef XT910_FUNC_CLINT_H
#define XT910_FUNC_CLINT_H

#include <vector>

#include "common/snapio.h"
#include "common/types.h"

namespace xt910
{

/** See file comment. */
class Clint
{
  public:
    static constexpr Addr defaultBase = 0x0200'0000;
    static constexpr Addr msipOff = 0x0;
    static constexpr Addr mtimecmpOff = 0x4000;
    static constexpr Addr mtimeOff = 0xbff8;
    static constexpr Addr windowSize = 0xc000;

    explicit Clint(unsigned numHarts, Addr base_ = defaultBase)
        : base(base_), msip(numHarts, 0),
          mtimecmp(numHarts, ~uint64_t(0))
    {}

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + windowSize;
    }

    /** Device read (1..8 bytes). */
    uint64_t
    read(Addr a, unsigned size) const
    {
        uint64_t v = regRead(a & ~Addr(7));
        unsigned shift = unsigned(a & 7) * 8;
        uint64_t maskv = size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
        return (v >> shift) & maskv;
    }

    /** Device write (1..8 bytes). */
    void
    write(Addr a, unsigned size, uint64_t value)
    {
        Addr reg = a & ~Addr(7);
        uint64_t old = regRead(reg);
        unsigned shift = unsigned(a & 7) * 8;
        uint64_t maskv = size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
        uint64_t next =
            (old & ~(maskv << shift)) | ((value & maskv) << shift);
        regWrite(reg, next);
    }

    /** Advance the time base (the ISS ticks once per instruction). */
    void tick(uint64_t n = 1) { mtime += n; }

    bool
    timerPending(unsigned hart) const
    {
        return mtime >= mtimecmp[hart];
    }

    bool softwarePending(unsigned hart) const { return msip[hart] & 1; }
    void clearSoftware(unsigned hart) { msip[hart] = 0; }
    void raiseSoftware(unsigned hart) { msip[hart] = 1; }

    uint64_t time() const { return mtime; }
    Addr baseAddr() const { return base; }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(mtime);
        w.u64(msip.size());
        for (uint32_t v : msip)
            w.u32(v);
        for (uint64_t v : mtimecmp)
            w.u64(v);
    }

    void
    snapLoad(SnapReader &r)
    {
        mtime = r.u64();
        uint64_t n = r.u64();
        if (n != msip.size())
            throw SnapError("clint hart count mismatch");
        for (uint32_t &v : msip)
            v = r.u32();
        for (uint64_t &v : mtimecmp)
            v = r.u64();
    }

  private:
    uint64_t
    regRead(Addr reg) const
    {
        Addr off = reg - base;
        if (off >= mtimecmpOff && off < mtimecmpOff + 8 * msip.size())
            return mtimecmp[(off - mtimecmpOff) / 8];
        if (off == (mtimeOff & ~Addr(7)))
            return mtime;
        if (off < msipOff + 4 * msip.size()) {
            // Two 32-bit msip registers share one 64-bit word.
            unsigned h = unsigned((off - msipOff) / 4);
            uint64_t lo = h < msip.size() ? msip[h] : 0;
            uint64_t hi = h + 1 < msip.size() ? msip[h + 1] : 0;
            return lo | (hi << 32);
        }
        return 0;
    }

    void
    regWrite(Addr reg, uint64_t v)
    {
        Addr off = reg - base;
        if (off >= mtimecmpOff && off < mtimecmpOff + 8 * msip.size()) {
            mtimecmp[(off - mtimecmpOff) / 8] = v;
            return;
        }
        if (off < msipOff + 4 * msip.size()) {
            unsigned h = unsigned((off - msipOff) / 4);
            if (h < msip.size())
                msip[h] = uint32_t(v) & 1;
            if (h + 1 < msip.size())
                msip[h + 1] = uint32_t(v >> 32) & 1;
        }
    }

    Addr base;
    uint64_t mtime = 0;
    std::vector<uint32_t> msip;
    std::vector<uint64_t> mtimecmp;
};

} // namespace xt910

#endif // XT910_FUNC_CLINT_H
