/**
 * @file
 * Sparse simulated physical memory: 4 KiB pages allocated on first
 * touch. Supports unaligned accesses of 1..8 bytes (the XT-910 LSU
 * supports unaligned data access, §II) plus bulk copies for vector
 * memory operations and program loading.
 */

#ifndef XT910_FUNC_MEMORY_H
#define XT910_FUNC_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace xt910
{

struct Program;

/** See file comment. */
class Memory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = 1ull << pageShift;

    /** Default physical address-space bound (1 TiB). */
    static constexpr Addr defaultPhysLimit = 1ull << 40;

    /**
     * True when [addr, addr+size) is a legal physical access: below the
     * physical limit and outside every registered fault range. The ISS
     * consults this before touching memory and raises a precise access
     * fault instead of dereferencing an illegal address.
     */
    bool accessOk(Addr addr, unsigned size) const;

    /** Shrink/grow the modelled physical address space. */
    void
    setPhysLimit(Addr limit)
    {
        physBound = limit;
        ++mutations;
    }
    Addr physLimit() const { return physBound; }

    /**
     * Mark [base, base+size) as access-faulting — an MMIO hole or an
     * injected fault region (FaultInjector uses this).
     */
    void addFaultRange(Addr base, uint64_t size);
    void
    clearFaultRanges()
    {
        faultRanges.clear();
        ++mutations;
    }

    /**
     * Bumped whenever the legality of an access can change (fault
     * ranges, physical limit). Decode caches snapshot this and flush
     * when it moves, so predecoded code never outlives a change to
     * what is fetchable.
     */
    uint64_t mutationEpoch() const { return mutations; }

    /** Read @p size (1..8) bytes at @p addr, little-endian. */
    uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size (1..8) bytes of @p value at @p addr. */
    void write(Addr addr, unsigned size, uint64_t value);

    /** Bulk read. */
    void readBytes(Addr addr, void *out, size_t n) const;

    /** Bulk write. */
    void writeBytes(Addr addr, const void *in, size_t n);

    /** Copy a program image into memory at its base address. */
    void loadProgram(const Program &p);

    /** Typed convenience accessors. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        readBytes(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr addr, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(addr, &v, sizeof(T));
    }

    /** Number of pages currently allocated (for tests). */
    size_t pageCount() const { return pages.size(); }

    /** Serialize the full image: limit, fault ranges, sparse pages
     *  (sorted by address so the byte stream is deterministic). */
    void snapSave(class SnapWriter &w) const;

    /** Replace the entire memory contents with a saved image. */
    void snapLoad(class SnapReader &r);

  private:
    using Page = std::array<uint8_t, pageSize>;

    uint8_t *pageFor(Addr addr);
    const uint8_t *pageForRead(Addr addr) const;

    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    Addr physBound = defaultPhysLimit;
    std::vector<std::pair<Addr, uint64_t>> faultRanges;
    uint64_t mutations = 0;
};

} // namespace xt910

#endif // XT910_FUNC_MEMORY_H
