#include "func/iss.h"

#include <bit>
#include <cmath>
#include <cstring>

#include <algorithm>

#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"
#include "func/csr.h"
#include "func/fp16.h"
#include "isa/disasm.h"

namespace xt910
{

namespace
{

double
bitsToD(uint64_t b)
{
    return std::bit_cast<double>(b);
}

uint64_t
dToBits(double d)
{
    return std::bit_cast<uint64_t>(d);
}

constexpr uint32_t canonicalNanS = 0x7fc00000u;
constexpr uint64_t canonicalNanD = 0x7ff8000000000000ull;

/**
 * NaN-box check on a single-precision register read: a 64-bit F
 * register holds a valid single only when the upper half is all ones;
 * any other pattern architecturally reads as the canonical quiet NaN
 * (RISC-V F spec, "NaN Boxing of Narrower Values").
 */
float
bitsToF(uint64_t b)
{
    if ((b >> 32) != 0xffffffffu)
        return std::bit_cast<float>(canonicalNanS);
    return std::bit_cast<float>(uint32_t(b));
}

uint64_t
fToBits(float f)
{
    return uint64_t(std::bit_cast<uint32_t>(f)) | 0xffffffff00000000ull;
}

/**
 * FMIN/FMAX per the RISC-V F/D spec: a single NaN operand is ignored,
 * both-NaN returns the canonical NaN, and ±0 are ordered by sign
 * (fmin(-0,+0) = -0, fmax(-0,+0) = +0) — none of which std::fmin/fmax
 * guarantee.
 */
template <typename F>
F
fpMinMax(F a, F b, bool isMax)
{
    constexpr bool isF = sizeof(F) == 4;
    if (std::isnan(a) && std::isnan(b))
        return isF ? F(std::bit_cast<float>(canonicalNanS))
                   : F(std::bit_cast<double>(canonicalNanD));
    if (std::isnan(a))
        return b;
    if (std::isnan(b))
        return a;
    if (a == b) {
        // Equal values with distinct encodings are the zeros: min
        // picks the negative one, max the positive one.
        bool pickA = isMax ? !std::signbit(a) : std::signbit(a);
        return pickA ? a : b;
    }
    return (a < b) != isMax ? a : b;
}

/**
 * FCVT.{W,WU,L,LU}.{S,D}: truncate toward zero with the spec's
 * saturation — NaN converts to the type's maximum, out-of-range values
 * clamp, and negative input to an unsigned conversion gives 0. A raw
 * C++ float→int cast is UB on every one of those inputs (flagged by
 * -fsanitize=float-cast-overflow). Float sources widen to double
 * exactly, so the double helpers serve both formats.
 */
int32_t
cvtW(double v)
{
    if (std::isnan(v))
        return INT32_MAX;
    double t = std::trunc(v);
    if (t >= 0x1p31)
        return INT32_MAX;
    if (t < -0x1p31)
        return INT32_MIN;
    return int32_t(t);
}

uint32_t
cvtWu(double v)
{
    if (std::isnan(v))
        return UINT32_MAX;
    double t = std::trunc(v);
    if (t >= 0x1p32)
        return UINT32_MAX;
    if (t < 0)
        return 0;
    return uint32_t(t);
}

int64_t
cvtL(double v)
{
    if (std::isnan(v))
        return INT64_MAX;
    double t = std::trunc(v);
    if (t >= 0x1p63)
        return INT64_MAX;
    if (t < -0x1p63)
        return INT64_MIN;
    return int64_t(t);
}

uint64_t
cvtLu(double v)
{
    if (std::isnan(v))
        return UINT64_MAX;
    double t = std::trunc(v);
    if (t >= 0x1p64)
        return UINT64_MAX;
    if (t < 0)
        return 0;
    return uint64_t(t);
}

/**
 * FCLASS: the 10 one-hot classes, computed on the raw encoding. Going
 * through a float→double widening (as the old implementation did)
 * erases single-precision subnormality and quietens sNaNs, so this
 * classifies the bit pattern directly.
 */
uint64_t
fclassBits(uint64_t b, unsigned expBits, unsigned fracBits)
{
    const uint64_t frac = b & ((1ull << fracBits) - 1);
    const uint64_t exp = (b >> fracBits) & ((1ull << expBits) - 1);
    const bool neg = (b >> (expBits + fracBits)) & 1;
    if (exp == (1ull << expBits) - 1) {
        if (frac == 0)
            return neg ? 1u << 0 : 1u << 7;              // ±inf
        return (frac >> (fracBits - 1)) & 1 ? 1u << 9    // qNaN
                                            : 1u << 8;   // sNaN
    }
    if (exp == 0)
        return frac == 0 ? (neg ? 1u << 3 : 1u << 4)     // ±0
                         : (neg ? 1u << 2 : 1u << 5);    // ±subnormal
    return neg ? 1u << 1 : 1u << 6;                      // ±normal
}

/** Read vector element @p i of the group starting at @p base. */
uint64_t
vGet(const ArchState &s, unsigned base, unsigned i, unsigned sewBits,
     unsigned vlenBits)
{
    unsigned perReg = vlenBits / sewBits;
    unsigned r = base + i / perReg;
    unsigned slot = i % perReg;
    unsigned bytes = sewBits / 8;
    uint64_t v = 0;
    std::memcpy(&v, s.v[r & 31].data() + size_t(slot) * bytes, bytes);
    return v;
}

/** Write vector element @p i of the group starting at @p base. */
void
vSet(ArchState &s, unsigned base, unsigned i, unsigned sewBits,
     unsigned vlenBits, uint64_t val)
{
    unsigned perReg = vlenBits / sewBits;
    unsigned r = base + i / perReg;
    unsigned slot = i % perReg;
    unsigned bytes = sewBits / 8;
    std::memcpy(s.v[r & 31].data() + size_t(slot) * bytes, &val, bytes);
}

/** Mask bit @p i lives in v0 (one bit per element, LSB-first). */
bool
maskBit(const ArchState &s, unsigned i)
{
    return (s.v[0][i / 8] >> (i % 8)) & 1;
}

int64_t
sextSew(uint64_t v, unsigned sewBits)
{
    return sext(v, sewBits);
}

/** Interpret an element as double given SEW (16/32/64). */
double
vElemToF(uint64_t raw, unsigned sewBits)
{
    switch (sewBits) {
      case 16: return double(fp16ToFloat(uint16_t(raw)));
      case 32: return double(std::bit_cast<float>(uint32_t(raw)));
      default: return std::bit_cast<double>(raw);
    }
}

uint64_t
fToVElem(double d, unsigned sewBits)
{
    switch (sewBits) {
      case 16: return floatToFp16(float(d));
      case 32: return std::bit_cast<uint32_t>(float(d));
      default: return std::bit_cast<uint64_t>(d);
    }
}

/** True when decoding must stop after @p di: the instruction can
 *  transfer control, halt the hart, or flush the decode caches. Traps
 *  raised by in-block instructions need no special casing — the
 *  per-step PC match simply misses at the handler and a new block is
 *  looked up there. */
bool
endsBlock(const DecodedInst &di)
{
    if (!di.valid())
        return true;
    OpClass c = opClass(di.op);
    if (c == OpClass::Branch || c == OpClass::Jump)
        return true;
    switch (di.op) {
      case Opcode::ECALL:
      case Opcode::EBREAK:
      case Opcode::MRET:
      case Opcode::SRET:
      case Opcode::FENCE_I:
      case Opcode::XT_ICACHE_IALL:
        return true;
      default:
        return false;
    }
}

} // namespace

Iss::Iss(Memory &mem_, unsigned numHarts, IssOptions opts_)
    : mem(mem_), opts(opts_), harts(numHarts), clintDev(numHarts),
      armedAccessFault(numHarts, false), cursors(numHarts)
{
    xt_assert(isPow2(opts.vlenBits) && opts.vlenBits >= 64 &&
                  opts.vlenBits <= 2048,
              "VLEN must be a power of two in [64, 2048]");
    for (unsigned i = 0; i < numHarts; ++i) {
        harts[i].csrs[csr::mhartid] = i;
        // Give each hart its own 1 MiB stack below stackBase.
        harts[i].x[2] = opts.stackBase - uint64_t(i) * 0x100000;
    }
    for (unsigned i = 0; i < numHarts; ++i) {
        mstatusSlot.push_back(&harts[i].csrs[csr::mstatus]);
        mieSlot.push_back(&harts[i].csrs[csr::mie]);
    }
}

void
Iss::loadProgram(const Program &p)
{
    mem.loadProgram(p);
    flushDecoded();
    for (auto &h : harts) {
        h.pc = p.entry;
        h.halted = false;
        h.instret = 0;
        h.trapCount = 0;
        h.fatalTrap = false;
    }
}

namespace
{

void
saveHart(SnapWriter &w, const ArchState &s)
{
    w.u64(s.pc);
    for (uint64_t v : s.x)
        w.u64(v);
    for (uint64_t v : s.f)
        w.u64(v);
    for (const auto &vreg : s.v)
        w.bytes(vreg.data(), vreg.size());
    w.u64(s.vl);
    w.u32(s.vtype.sew);
    w.u32(s.vtype.lmul);
    w.b(s.vtype.fp);
    // CSR map sorted by number so the byte stream is deterministic.
    std::vector<std::pair<uint32_t, uint64_t>> csrs(s.csrs.begin(),
                                                    s.csrs.end());
    std::sort(csrs.begin(), csrs.end());
    w.u64(csrs.size());
    for (const auto &[num, val] : csrs) {
        w.u32(num);
        w.u64(val);
    }
    w.b(s.resValid);
    w.u64(s.resAddr);
    w.b(s.halted);
    w.i64(s.exitCode);
    w.u64(s.instret);
    w.u8(uint8_t(s.priv));
    w.u64(s.trapCount);
    w.b(s.fatalTrap);
}

void
loadHart(SnapReader &r, ArchState &s)
{
    s.pc = r.u64();
    for (uint64_t &v : s.x)
        v = r.u64();
    for (uint64_t &v : s.f)
        v = r.u64();
    for (auto &vreg : s.v)
        r.bytes(vreg.data(), vreg.size());
    s.vl = r.u64();
    s.vtype.sew = r.u32();
    s.vtype.lmul = r.u32();
    s.vtype.fp = r.b();
    // Zero existing entries instead of clear(): absent CSRs read as
    // zero, and System caches node pointers into this map (mstatus/mie
    // polling) that clear() would dangle — unordered_map nodes are
    // reference-stable only while the key stays present.
    for (auto &kv : s.csrs)
        kv.second = 0;
    uint64_t nCsrs = r.u64();
    for (uint64_t i = 0; i < nCsrs; ++i) {
        uint32_t num = r.u32();
        s.csrs[num] = r.u64();
    }
    s.resValid = r.b();
    s.resAddr = r.u64();
    s.halted = r.b();
    s.exitCode = int(r.i64());
    s.instret = r.u64();
    s.priv = PrivMode(r.u8());
    s.trapCount = r.u64();
    s.fatalTrap = r.b();
}

} // namespace

void
Iss::snapSave(SnapWriter &w) const
{
    w.u32(unsigned(harts.size()));
    for (const ArchState &s : harts)
        saveHart(w, s);
    clintDev.snapSave(w);
    w.str(consoleBuf);
    w.u64(armedAccessFault.size());
    for (bool armed : armedAccessFault)
        w.b(armed);
}

void
Iss::snapLoad(SnapReader &r)
{
    if (r.u32() != harts.size())
        throw SnapError("snapshot hart count does not match system");
    for (ArchState &s : harts)
        loadHart(r, s);
    clintDev.snapLoad(r);
    consoleBuf = r.str();
    if (r.u64() != armedAccessFault.size())
        throw SnapError("snapshot fault-arm count mismatch");
    for (size_t i = 0; i < armedAccessFault.size(); ++i)
        armedAccessFault[i] = r.b();
    // The decode products are caches over (now-replaced) memory
    // contents: drop them all and let execution rebuild. This also
    // resets the per-hart block cursors and resyncs the memory
    // mutation epoch.
    flushDecoded();
}

bool
Iss::allHalted() const
{
    for (const auto &h : harts)
        if (!h.halted)
            return false;
    return true;
}

uint64_t
Iss::run(uint64_t maxInsts)
{
    uint64_t n = 0;
    while (n < maxInsts && !allHalted()) {
        for (unsigned h = 0; h < harts.size(); ++h) {
            if (!harts[h].halted) {
                step(h);
                ++n;
            }
        }
    }
    return n;
}

uint64_t
Iss::runFast(unsigned hartId, uint64_t maxInsts)
{
    ArchState &s = harts[hartId];
    uint64_t done = 0;
    if (!opts.blockCache) {
        // The legacy decode path exists only for A/B measurement; no
        // batched variant.
        while (done < maxInsts && !s.halted) {
            step(hartId);
            ++done;
        }
        return done;
    }
    // Mirror of step()'s block-cache path, minus the per-instruction
    // ExecRecord hand-off: the record is built once per instruction in
    // place (NRVO) and never copied back out. Any behavioural change
    // here must be mirrored in step() — tests/func pins the two paths
    // to bit-identical architectural state.
    while (done < maxInsts && !s.halted) {
        if (opts.enableClint) {
            clintDev.tick();
            maybeTakeInterrupt(s, hartId);
        }
        if (pendingFlush || memEpochSeen != mem.mutationEpoch())
            flushDecoded();
        const Addr pc = s.pc;
        BlockCursor &cur = cursors[hartId];
        const DecodedInst *di = nullptr;
        if (cur.blk && cur.idx < cur.blk->insts.size() &&
            cur.blk->insts[cur.idx].pc == pc) {
            ++bcStats.hits;
            di = &cur.blk->insts[cur.idx].di;
        } else {
            cur.blk = lookupBlock(pc);
            cur.idx = 0;
            if (cur.blk)
                di = &cur.blk->insts[0].di;
        }
        if (di && di->valid()) {
            ExecRecord rec = execute(s, *di, pc);
            ++cur.idx;
            if (rec.trap.valid)
                deliverTrap(s, rec, pc);
            s.pc = rec.nextPc;
        } else {
            ExecRecord rec;
            rec.pc = pc;
            if (!di) {
                rec.nextPc = pc;
                rec.trap = makeTrap(trap::instAccessFault, pc);
            } else {
                rec.di = *di;
                rec.nextPc = pc + di->len;
                rec.trap = makeTrap(trap::illegalInstruction, di->raw);
            }
            deliverTrap(s, rec, pc);
            s.pc = rec.nextPc;
        }
        ++s.instret;
        ++done;
    }
    return done;
}

unsigned
Iss::stepBlock(unsigned hartId, ExecRecord *out, unsigned maxN)
{
    ArchState &s = harts[hartId];
    spanFilled = 0;
    if (!opts.blockCache) {
        // The legacy decode path exists only for A/B measurement; no
        // batched variant.
        if (s.halted || maxN == 0)
            return 0;
        out[0] = step(hartId);
        spanFilled = 1;
        return 1;
    }
    // Mirror of step()'s block-cache path, batched like runFast but
    // keeping the per-instruction ExecRecord hand-off: the CLINT tick,
    // interrupt poll, deferred-flush check and trap delivery all run
    // per instruction inside the batch, so every record comes out
    // bit-identical to a step() loop. Any behavioural change here must
    // be mirrored in step() (tests/func pins the two paths).
    unsigned done = 0;
    while (done < maxN && !s.halted) {
        if (opts.enableClint) {
            clintDev.tick();
            maybeTakeInterrupt(s, hartId);
        }
        if (pendingFlush || memEpochSeen != mem.mutationEpoch())
            flushDecoded();
        const Addr pc = s.pc;
        BlockCursor &cur = cursors[hartId];
        const BlockInst *bi = nullptr;
        if (cur.blk && cur.idx < cur.blk->insts.size() &&
            cur.blk->insts[cur.idx].pc == pc) {
            ++bcStats.hits;
            bi = &cur.blk->insts[cur.idx];
        } else {
            cur.blk = lookupBlock(pc);
            cur.idx = 0;
            if (cur.blk)
                bi = &cur.blk->insts[0];
        }
        ExecRecord &rec = out[done];
        if (!bi) {
            rec = ExecRecord{};
            rec.pc = pc;
            rec.nextPc = pc;
            rec.trap = makeTrap(trap::instAccessFault, pc);
        } else if (!bi->di.valid()) {
            rec = ExecRecord{};
            rec.pc = pc;
            rec.di = bi->di;
            rec.nextPc = pc + bi->di.len;
            rec.trap = makeTrap(trap::illegalInstruction, bi->di.raw);
        } else {
            rec = execute(s, bi->di, pc);
            rec.planIdx = bi->planIdx;
            rec.planGen = planGen;
            ++cur.idx;
        }
        if (rec.trap.valid)
            deliverTrap(s, rec, pc);
        s.pc = rec.nextPc;
        ++s.instret;
        rec.intEnabled =
            opts.enableClint && (*mstatusSlot[hartId] & 0x8) &&
            (*mieSlot[hartId] & ((1ull << 7) | (1ull << 3))) != 0;
        spanFilled = ++done;
    }
    return done;
}

const DecodedInst &
Iss::fetchDecode(Addr pc)
{
    auto it = decodeCache.find(pc);
    if (it != decodeCache.end())
        return it->second;
    if (decodeCache.size() >= maxDecodeEntries)
        decodeCache.clear();
    uint32_t lo = uint32_t(mem.read(pc, 2));
    uint32_t w = lo;
    if ((lo & 3) == 3)
        w |= uint32_t(mem.read(pc + 2, 2)) << 16;
    DecodedInst di = decode(w);
    if (di.valid() && !opts.enableCustom && isCustom(di.op)) {
        // Decodable only with the custom extension: architecturally an
        // illegal instruction on this configuration.
        uint32_t raw = di.raw;
        uint8_t len = di.len;
        di = DecodedInst{};
        di.raw = raw;
        di.len = len;
    }
    trackCodeBytes(pc, di.len);
    return decodeCache.emplace(pc, di).first->second;
}

bool
Iss::decodeAt(Addr pc, DecodedInst &di) const
{
    if (!mem.accessOk(pc, 2))
        return false;
    uint32_t lo = uint32_t(mem.read(pc, 2));
    uint32_t w = lo;
    if ((lo & 3) == 3) {
        if (!mem.accessOk(pc + 2, 2))
            return false;
        w |= uint32_t(mem.read(pc + 2, 2)) << 16;
    }
    di = decode(w);
    if (di.valid() && !opts.enableCustom && isCustom(di.op)) {
        // Custom-extension encodings decode to Invalid (illegal
        // instruction) on configurations without the extension.
        uint32_t raw = di.raw;
        uint8_t len = di.len;
        di = DecodedInst{};
        di.raw = raw;
        di.len = len;
    }
    return true;
}

void
Iss::buildBlock(Addr pc, DecodedBlock &b)
{
    // Decode into a reusable scratch vector, then size the block's own
    // storage exactly. This removes the push_back doubling reallocs
    // (up to 7 per 64-instruction block) that dominated block-build
    // cost on short workloads, where builds don't amortize.
    scratchInsts.clear();
    Addr p = pc;
    for (unsigned i = 0; i < maxBlockInsts; ++i) {
        BlockInst bi;
        bi.pc = p;
        if (!decodeAt(p, bi.di))
            break; // unfetchable: the step() fault path takes over
        bi.planIdx = nextPlanIdx++;
        scratchInsts.push_back(bi);
        trackCodeBytes(p, bi.di.len);
        if (endsBlock(bi.di))
            break;
        p += bi.di.len;
    }
    b.insts.assign(scratchInsts.begin(), scratchInsts.end());
}

const Iss::DecodedBlock *
Iss::lookupBlock(Addr pc)
{
    auto it = blockCache.find(pc);
    if (it != blockCache.end()) {
        ++bcStats.hits;
        return it->second.insts.empty() ? nullptr : &it->second;
    }
    ++bcStats.misses;
    if (blockCache.size() >= maxBlocks)
        flushDecoded();
    // Empty blocks (unfetchable first instruction) are cached too so a
    // hart spinning on a faulting fetch does not rebuild every step.
    DecodedBlock &b = blockCache[pc];
    buildBlock(pc, b);
    return b.insts.empty() ? nullptr : &b;
}

void
Iss::flushDecoded()
{
    blockCache.clear();
    decodeCache.clear();
    codePages.clear();
    codeLo = ~Addr(0);
    codeHi = 0;
    for (auto &c : cursors)
        c = BlockCursor{};
    pendingFlush = false;
    memEpochSeen = mem.mutationEpoch();
    // Plan slots are reassigned from scratch; the generation bump tells
    // consumers (XtCore's µop-plan table) to drop theirs wholesale.
    nextPlanIdx = 0;
    ++planGen;
    ++bcStats.flushes;
}

void
Iss::trackCodeBytes(Addr pc, unsigned len)
{
    codeLo = std::min(codeLo, pc);
    codeHi = std::max(codeHi, pc + len);
    codePages.insert(pc >> Memory::pageShift);
    codePages.insert((pc + len - 1) >> Memory::pageShift);
}

void
Iss::noteCodeWriteSlow(Addr addr, uint64_t len)
{
    Addr first = addr >> Memory::pageShift;
    Addr last = (addr + len - 1) >> Memory::pageShift;
    for (Addr p = first; p <= last; ++p) {
        if (codePages.count(p)) {
            // Deferred: the store may live inside the very block being
            // executed, so the flush waits until the next step().
            pendingFlush = true;
            ++bcStats.invalidations;
            return;
        }
    }
}

uint64_t
Iss::readCsr(ArchState &s, uint32_t num) const
{
    switch (num) {
      case csr::cycle:
      case csr::time:
      case csr::mcycle:
        // Under a timing core the counters expose model cycles; in
        // functional-only runs they fall back to the instruction count
        // so guest code still sees monotonic, deterministic time.
        // Batched runs first let the timing model catch up with the
        // records produced so far (stepBlock span contract).
        if (timingSync)
            timingSync();
        return cycleSource ? cycleSource(hartOf(s)) : s.instret;
      case csr::instret:
      case csr::minstret:
        return s.instret;
      case csr::vl:
        return s.vl;
      case csr::vtype:
        return encodeVtype(s.vtype);
      case csr::vlenb:
        return opts.vlenBits / 8;
      default: {
        unsigned idx = csr::numHpmCounters;
        if (num >= csr::mhpmcounter3 &&
            num < csr::mhpmcounter3 + csr::numHpmCounters)
            idx = num - csr::mhpmcounter3;
        else if (num >= csr::hpmcounter3 &&
                 num < csr::hpmcounter3 + csr::numHpmCounters)
            idx = num - csr::hpmcounter3;
        if (idx < csr::numHpmCounters) {
            auto ev = s.csrs.find(csr::mhpmevent3 + idx);
            if (ev == s.csrs.end() || !ev->second || !hpmSource)
                return 0;
            if (timingSync)
                timingSync();
            return hpmSource(hartOf(s), ev->second);
        }
        auto it = s.csrs.find(num);
        return it == s.csrs.end() ? 0 : it->second;
      }
    }
}

void
Iss::writeCsr(ArchState &s, uint32_t num, uint64_t v)
{
    s.csrs[num] = v;
}

void
Iss::invalidateReservations(Addr addr, const ArchState *except)
{
    // Every store path funnels through here, which makes it the single
    // place to catch self-modifying code overwriting predecoded bytes
    // (8 = the widest scalar store; over-approximating is harmless).
    notifyCodeWrite(addr, 8);
    Addr line = lineAlign(addr);
    for (auto &h : harts) {
        if (&h != except && h.resValid && lineAlign(h.resAddr) == line)
            h.resValid = false;
    }
}

Addr
Iss::enterTrap(ArchState &s, uint64_t cause, uint64_t tval, Addr epc,
               bool interrupt)
{
    writeCsr(s, csr::mepc, epc);
    writeCsr(s, csr::mcause, (interrupt ? (1ull << 63) : 0) | cause);
    writeCsr(s, csr::mtval, tval);
    uint64_t ms = readCsr(s, csr::mstatus);
    // MPIE <- MIE, MIE <- 0, MPP <- current privilege.
    ms = (ms & ~(0x8ull | 0x80ull | 0x1800ull)) | ((ms & 0x8) << 4) |
         (uint64_t(s.priv) << 11);
    writeCsr(s, csr::mstatus, ms);
    s.priv = PrivMode::Machine;
    Addr tvec = readCsr(s, csr::mtvec);
    Addr base = tvec & ~Addr(3);
    // Vectored mode redirects interrupts to base + 4*cause; synchronous
    // exceptions always enter at base.
    if (interrupt && (tvec & 3) == 1)
        return base + 4 * cause;
    return base;
}

void
Iss::deliverTrap(ArchState &s, ExecRecord &rec, Addr pc)
{
    Addr tvec = readCsr(s, csr::mtvec) & ~Addr(3);
    if (tvec == 0) {
        if (opts.fatalOnUnhandledTrap)
            xt_fatal("unhandled ", trap::causeName(rec.trap.cause),
                     " at pc 0x", std::hex, pc, " (mtval 0x",
                     rec.trap.tval, "): no mtvec handler installed");
        xt_warn("unhandled ", trap::causeName(rec.trap.cause),
                " at pc 0x", std::hex, pc, "; halting hart");
        s.halted = true;
        s.fatalTrap = true;
        s.exitCode = 128 + int(rec.trap.cause);
        rec.halted = true;
        rec.nextPc = pc;
        return;
    }
    ++s.trapCount;
    rec.nextPc = enterTrap(s, rec.trap.cause, rec.trap.tval, pc, false);
    rec.taken = true;
}

bool
Iss::checkDataAccess(ArchState &s, ExecRecord &rec, Addr a, unsigned size,
                     bool isStore)
{
    unsigned hartId = unsigned(&s - harts.data());
    if (armedAccessFault[hartId]) {
        armedAccessFault[hartId] = false;
        rec.trap = makeTrap(isStore ? trap::storeAccessFault
                                    : trap::loadAccessFault,
                            a);
        return false;
    }
    if (opts.strictAlign && size > 1 && (a & (size - 1))) {
        rec.trap = makeTrap(isStore ? trap::storeAddrMisaligned
                                    : trap::loadAddrMisaligned,
                            a);
        return false;
    }
    if (opts.enableClint && clintDev.contains(a))
        return true;
    if (!mem.accessOk(a, size)) {
        rec.trap = makeTrap(isStore ? trap::storeAccessFault
                                    : trap::loadAccessFault,
                            a);
        return false;
    }
    return true;
}

void
Iss::maybeTakeInterrupt(ArchState &s, unsigned hartId)
{
    if (!opts.enableClint)
        return;
    // Polled before every instruction: read the cached CSR nodes, not
    // readCsr's hash lookups. Both CSRs read as their raw map value
    // (absent == 0), so the slots are exact.
    if (!(*mstatusSlot[hartId] & 0x8)) // mstatus.MIE
        return;
    uint64_t mieV = *mieSlot[hartId];
    bool timer = (mieV & (1ull << 7)) && clintDev.timerPending(hartId);
    bool soft = (mieV & (1ull << 3)) && clintDev.softwarePending(hartId);
    if (!timer && !soft)
        return;
    s.pc = enterTrap(s, uint64_t(timer ? 7 : 3), 0, s.pc, true);
}

ExecRecord
Iss::step(unsigned hartId)
{
    ArchState &s = harts[hartId];
    ExecRecord rec;
    if (s.halted) {
        rec.halted = true;
        return rec;
    }
    if (opts.enableClint)
        clintDev.tick();
    maybeTakeInterrupt(s, hartId);
    // Apply flushes requested by the previous instruction (SMC store,
    // fence.i) or by out-of-band memory map changes, now that no decoded
    // reference is in flight.
    if (pendingFlush || memEpochSeen != mem.mutationEpoch())
        flushDecoded();
    const Addr pc = s.pc;

    if (opts.blockCache) {
        // Fast path: keep walking the predecoded block as long as the
        // PC follows it. Traps and taken branches simply miss the PC
        // check and fall back to a block lookup at the new target.
        BlockCursor &cur = cursors[hartId];
        const DecodedInst *di = nullptr;
        if (cur.blk && cur.idx < cur.blk->insts.size() &&
            cur.blk->insts[cur.idx].pc == pc) {
            ++bcStats.hits;
            di = &cur.blk->insts[cur.idx].di;
        } else {
            cur.blk = lookupBlock(pc);
            cur.idx = 0;
            if (cur.blk)
                di = &cur.blk->insts[0].di;
        }
        if (!di) {
            rec.pc = pc;
            rec.nextPc = pc;
            rec.trap = makeTrap(trap::instAccessFault, pc);
        } else if (!di->valid()) {
            rec.pc = pc;
            rec.di = *di;
            rec.nextPc = pc + di->len;
            rec.trap = makeTrap(trap::illegalInstruction, di->raw);
        } else {
            rec = execute(s, *di, pc);
            rec.planIdx = cur.blk->insts[cur.idx].planIdx;
            rec.planGen = planGen;
            ++cur.idx;
        }
    } else {
        // Legacy per-PC decode path (kept for A/B speed measurement).
        // Instruction fetch must itself be a legal access.
        bool fetchOk = mem.accessOk(pc, 2);
        if (fetchOk && (uint32_t(mem.read(pc, 2)) & 3) == 3)
            fetchOk = mem.accessOk(pc + 2, 2);
        if (!fetchOk) {
            rec.pc = pc;
            rec.nextPc = pc;
            rec.trap = makeTrap(trap::instAccessFault, pc);
        } else {
            const DecodedInst &di = fetchDecode(pc);
            if (!di.valid()) {
                rec.pc = pc;
                rec.di = di;
                rec.nextPc = pc + di.len;
                rec.trap = makeTrap(trap::illegalInstruction, di.raw);
            } else {
                rec = execute(s, di, pc);
            }
        }
    }
    if (rec.trap.valid)
        deliverTrap(s, rec, pc);
    s.pc = rec.nextPc;
    ++s.instret;
    rec.intEnabled =
        opts.enableClint && (*mstatusSlot[hartId] & 0x8) &&
        (*mieSlot[hartId] & ((1ull << 7) | (1ull << 3))) != 0;
    return rec;
}

ExecRecord
Iss::execute(ArchState &s, const DecodedInst &di, Addr pc)
{
    using O = Opcode;
    ExecRecord rec;
    rec.pc = pc;
    rec.di = di;
    rec.nextPc = pc + di.len;

    const uint64_t rs1 = s.readX(di.rs1 == invalidReg ? 0 : di.rs1 & 31);
    const uint64_t rs2 = s.readX(di.rs2 == invalidReg ? 0 : di.rs2 & 31);
    const int64_t imm = di.imm;
    auto wr = [&](uint64_t v) { s.writeX(di.rd, v); };
    auto wr32 = [&](int64_t v) { s.writeX(di.rd, uint64_t(int32_t(v))); };

    auto doLoad = [&](unsigned size, bool sign) {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = size;
        if (!checkDataAccess(s, rec, a, size, false))
            return;
        uint64_t v = opts.enableClint && clintDev.contains(a)
                         ? clintDev.read(a, size)
                         : mem.read(a, size);
        wr(sign ? uint64_t(sext(v, size * 8)) : v);
    };
    auto doStore = [&](unsigned size) {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = size;
        if (!checkDataAccess(s, rec, a, size, true))
            return;
        if (opts.enableClint && clintDev.contains(a))
            clintDev.write(a, size, rs2);
        else
            mem.write(a, size, rs2);
        invalidateReservations(a, nullptr);
    };
    auto branch = [&](bool cond) {
        if (cond) {
            rec.taken = true;
            rec.nextPc = pc + uint64_t(imm);
        }
    };
    // XT-910 indexed addressing: base + (index << shamt2).
    auto xtAddr = [&](bool unsignedIdx) {
        uint64_t idx = unsignedIdx ? uint64_t(uint32_t(rs2)) : rs2;
        return rs1 + (idx << di.shamt2);
    };
    auto xtLoad = [&](unsigned size, bool sign, bool uidx) {
        Addr a = xtAddr(uidx);
        rec.memAddr = a;
        rec.memSize = size;
        if (!checkDataAccess(s, rec, a, size, false))
            return;
        uint64_t v = mem.read(a, size);
        wr(sign ? uint64_t(sext(v, size * 8)) : v);
    };
    auto xtStore = [&](unsigned size) {
        Addr a = xtAddr(false);
        rec.memAddr = a;
        rec.memSize = size;
        if (!checkDataAccess(s, rec, a, size, true))
            return;
        mem.write(a, size, s.readX(di.rs3 & 31));
        invalidateReservations(a, nullptr);
    };
    // AMOs that fault raise store/AMO access faults per the spec.
    auto amoW = [&](auto fn) {
        Addr a = rs1;
        rec.memAddr = a;
        rec.memSize = 4;
        if (!checkDataAccess(s, rec, a, 4, true))
            return;
        int32_t old = int32_t(mem.read(a, 4));
        mem.write(a, 4, uint64_t(uint32_t(fn(old, int32_t(rs2)))));
        wr(uint64_t(int64_t(old)));
        invalidateReservations(a, nullptr);
    };
    auto amoD = [&](auto fn) {
        Addr a = rs1;
        rec.memAddr = a;
        rec.memSize = 8;
        if (!checkDataAccess(s, rec, a, 8, true))
            return;
        int64_t old = int64_t(mem.read(a, 8));
        mem.write(a, 8, uint64_t(fn(old, int64_t(rs2))));
        wr(uint64_t(old));
        invalidateReservations(a, nullptr);
    };
    auto frd1 = [&] { return bitsToD(s.f[di.rs1 & 31]); };
    auto frd2 = [&] { return bitsToD(s.f[di.rs2 & 31]); };
    auto frd3 = [&] { return bitsToD(s.f[di.rs3 & 31]); };
    auto frs1 = [&] { return bitsToF(s.f[di.rs1 & 31]); };
    auto frs2 = [&] { return bitsToF(s.f[di.rs2 & 31]); };
    auto frs3 = [&] { return bitsToF(s.f[di.rs3 & 31]); };
    auto wfd = [&](double d) { s.f[di.rd & 31] = dToBits(d); };
    auto wfs = [&](float f) { s.f[di.rd & 31] = fToBits(f); };

    switch (di.op) {
      // ------------------------------------------------------ RV64I
      case O::LUI: wr(uint64_t(imm)); break;
      case O::AUIPC: wr(pc + uint64_t(imm)); break;
      case O::JAL:
        wr(pc + di.len);
        rec.taken = true;
        rec.nextPc = pc + uint64_t(imm);
        break;
      case O::JALR:
        wr(pc + di.len);
        rec.taken = true;
        rec.nextPc = (rs1 + uint64_t(imm)) & ~Addr(1);
        break;
      case O::BEQ: branch(rs1 == rs2); break;
      case O::BNE: branch(rs1 != rs2); break;
      case O::BLT: branch(int64_t(rs1) < int64_t(rs2)); break;
      case O::BGE: branch(int64_t(rs1) >= int64_t(rs2)); break;
      case O::BLTU: branch(rs1 < rs2); break;
      case O::BGEU: branch(rs1 >= rs2); break;
      case O::LB: doLoad(1, true); break;
      case O::LH: doLoad(2, true); break;
      case O::LW: doLoad(4, true); break;
      case O::LD: doLoad(8, true); break;
      case O::LBU: doLoad(1, false); break;
      case O::LHU: doLoad(2, false); break;
      case O::LWU: doLoad(4, false); break;
      case O::SB: doStore(1); break;
      case O::SH: doStore(2); break;
      case O::SW: doStore(4); break;
      case O::SD: doStore(8); break;
      case O::ADDI: wr(rs1 + uint64_t(imm)); break;
      case O::SLTI: wr(int64_t(rs1) < imm); break;
      case O::SLTIU: wr(rs1 < uint64_t(imm)); break;
      case O::XORI: wr(rs1 ^ uint64_t(imm)); break;
      case O::ORI: wr(rs1 | uint64_t(imm)); break;
      case O::ANDI: wr(rs1 & uint64_t(imm)); break;
      case O::SLLI: wr(rs1 << (imm & 63)); break;
      case O::SRLI: wr(rs1 >> (imm & 63)); break;
      case O::SRAI: wr(uint64_t(int64_t(rs1) >> (imm & 63))); break;
      case O::ADD: wr(rs1 + rs2); break;
      case O::SUB: wr(rs1 - rs2); break;
      case O::SLL: wr(rs1 << (rs2 & 63)); break;
      case O::SLT: wr(int64_t(rs1) < int64_t(rs2)); break;
      case O::SLTU: wr(rs1 < rs2); break;
      case O::XOR: wr(rs1 ^ rs2); break;
      case O::SRL: wr(rs1 >> (rs2 & 63)); break;
      case O::SRA: wr(uint64_t(int64_t(rs1) >> (rs2 & 63))); break;
      case O::OR: wr(rs1 | rs2); break;
      case O::AND: wr(rs1 & rs2); break;
      case O::ADDIW: wr32(int64_t(rs1) + imm); break;
      case O::SLLIW: wr32(int64_t(uint32_t(rs1) << (imm & 31))); break;
      case O::SRLIW: wr32(int64_t(int32_t(uint32_t(rs1) >> (imm & 31)))); break;
      case O::SRAIW: wr32(int32_t(rs1) >> (imm & 31)); break;
      case O::ADDW: wr32(int64_t(rs1) + int64_t(rs2)); break;
      case O::SUBW: wr32(int64_t(rs1) - int64_t(rs2)); break;
      case O::SLLW: wr32(int64_t(uint32_t(rs1) << (rs2 & 31))); break;
      case O::SRLW: wr32(int64_t(int32_t(uint32_t(rs1) >> (rs2 & 31)))); break;
      case O::SRAW: wr32(int32_t(rs1) >> (rs2 & 31)); break;
      case O::FENCE:
        break;
      case O::FENCE_I:
        // Deferred so the in-flight decoded-instruction reference
        // stays valid while this instruction finishes executing.
        pendingFlush = true;
        break;
      case O::ECALL: {
        uint64_t num = s.readX(17); // a7
        uint64_t a0 = s.readX(10);
        if (num == 93) { // exit
            s.halted = true;
            s.exitCode = int(a0);
            rec.halted = true;
        } else if (num == 64) { // write one char from a0
            consoleBuf.push_back(char(a0));
        } else if (readCsr(s, csr::mtvec) != 0) {
            // A guest trap handler is installed: deliver the
            // environment call to it (cause 8/9/11 by privilege).
            rec.trap = makeTrap(trap::ecallFromU + uint64_t(s.priv), 0);
        } else {
            xt_warn("unhandled ecall ", num, "; ignored");
        }
        break;
      }
      case O::EBREAK:
        s.halted = true;
        rec.halted = true;
        break;
      case O::MRET: {
        rec.taken = true;
        rec.nextPc = readCsr(s, csr::mepc);
        uint64_t ms = readCsr(s, csr::mstatus);
        // Restore MIE from MPIE; set MPIE; drop to the privilege stacked
        // in MPP and reset MPP to the least-privileged mode.
        s.priv = PrivMode((ms >> 11) & 3);
        ms = (ms & ~(0x8ull | 0x1800ull)) | ((ms >> 4) & 0x8);
        ms |= 0x80;
        writeCsr(s, csr::mstatus, ms);
        break;
      }
      case O::SRET:
        rec.taken = true;
        rec.nextPc = readCsr(s, csr::mepc);
        break;
      case O::WFI:
      case O::SFENCE_VMA:
        break;

      // ------------------------------------------------------ Zicsr
      case O::CSRRW:
      case O::CSRRS:
      case O::CSRRC:
      case O::CSRRWI:
      case O::CSRRSI:
      case O::CSRRCI: {
        uint32_t num = uint32_t(imm) & 0xfff;
        uint64_t old = readCsr(s, num);
        uint64_t operand =
            (di.op == O::CSRRWI || di.op == O::CSRRSI ||
             di.op == O::CSRRCI)
                ? uint64_t(di.rs1 & 31)
                : rs1;
        uint64_t next = old;
        if (di.op == O::CSRRW || di.op == O::CSRRWI)
            next = operand;
        else if (di.op == O::CSRRS || di.op == O::CSRRSI)
            next = old | operand;
        else
            next = old & ~operand;
        if (next != old ||
            (di.op == O::CSRRW || di.op == O::CSRRWI))
            writeCsr(s, num, next);
        wr(old);
        break;
      }

      // ------------------------------------------------------ RV64M
      case O::MUL: wr(rs1 * rs2); break;
      case O::MULH:
        wr(uint64_t((__int128(int64_t(rs1)) * __int128(int64_t(rs2))) >> 64));
        break;
      case O::MULHSU:
        wr(uint64_t((__int128(int64_t(rs1)) * __int128(rs2)) >> 64));
        break;
      case O::MULHU:
        using u128 = unsigned __int128;
        wr(uint64_t((u128(rs1) * u128(rs2)) >> 64));
        break;
      case O::DIV: {
        int64_t a = int64_t(rs1), b = int64_t(rs2);
        wr(b == 0 ? ~0ull
                  : (a == INT64_MIN && b == -1) ? uint64_t(a)
                                                : uint64_t(a / b));
        break;
      }
      case O::DIVU: wr(rs2 == 0 ? ~0ull : rs1 / rs2); break;
      case O::REM: {
        int64_t a = int64_t(rs1), b = int64_t(rs2);
        wr(b == 0 ? uint64_t(a)
                  : (a == INT64_MIN && b == -1) ? 0 : uint64_t(a % b));
        break;
      }
      case O::REMU: wr(rs2 == 0 ? rs1 : rs1 % rs2); break;
      case O::MULW: wr32(int64_t(int32_t(rs1)) * int32_t(rs2)); break;
      case O::DIVW: {
        int32_t a = int32_t(rs1), b = int32_t(rs2);
        wr32(b == 0 ? -1 : (a == INT32_MIN && b == -1) ? a : a / b);
        break;
      }
      case O::DIVUW: {
        uint32_t a = uint32_t(rs1), b = uint32_t(rs2);
        wr32(b == 0 ? -1 : int32_t(a / b));
        break;
      }
      case O::REMW: {
        int32_t a = int32_t(rs1), b = int32_t(rs2);
        wr32(b == 0 ? a : (a == INT32_MIN && b == -1) ? 0 : a % b);
        break;
      }
      case O::REMUW: {
        uint32_t a = uint32_t(rs1), b = uint32_t(rs2);
        wr32(b == 0 ? int32_t(a) : int32_t(a % b));
        break;
      }

      // ------------------------------------------------------ RV64A
      case O::LR_W: {
        rec.memAddr = rs1;
        rec.memSize = 4;
        if (!checkDataAccess(s, rec, rs1, 4, false))
            break;
        wr(uint64_t(int64_t(int32_t(mem.read(rs1, 4)))));
        s.resValid = true;
        s.resAddr = rs1;
        break;
      }
      case O::LR_D: {
        rec.memAddr = rs1;
        rec.memSize = 8;
        if (!checkDataAccess(s, rec, rs1, 8, false))
            break;
        wr(mem.read(rs1, 8));
        s.resValid = true;
        s.resAddr = rs1;
        break;
      }
      case O::SC_W:
      case O::SC_D: {
        unsigned size = di.op == O::SC_W ? 4 : 8;
        rec.memAddr = rs1;
        rec.memSize = size;
        if (!checkDataAccess(s, rec, rs1, size, true))
            break;
        bool ok = s.resValid && lineAlign(s.resAddr) == lineAlign(rs1);
        if (ok) {
            mem.write(rs1, size, rs2);
            invalidateReservations(rs1, nullptr);
        }
        s.resValid = false;
        wr(ok ? 0 : 1);
        break;
      }
      case O::AMOSWAP_W: amoW([](int32_t, int32_t b) { return b; }); break;
      case O::AMOADD_W: amoW([](int32_t a, int32_t b) { return a + b; }); break;
      case O::AMOXOR_W: amoW([](int32_t a, int32_t b) { return a ^ b; }); break;
      case O::AMOAND_W: amoW([](int32_t a, int32_t b) { return a & b; }); break;
      case O::AMOOR_W: amoW([](int32_t a, int32_t b) { return a | b; }); break;
      case O::AMOMIN_W: amoW([](int32_t a, int32_t b) { return std::min(a, b); }); break;
      case O::AMOMAX_W: amoW([](int32_t a, int32_t b) { return std::max(a, b); }); break;
      case O::AMOMINU_W:
        amoW([](int32_t a, int32_t b) {
            return int32_t(std::min(uint32_t(a), uint32_t(b)));
        });
        break;
      case O::AMOMAXU_W:
        amoW([](int32_t a, int32_t b) {
            return int32_t(std::max(uint32_t(a), uint32_t(b)));
        });
        break;
      case O::AMOSWAP_D: amoD([](int64_t, int64_t b) { return b; }); break;
      case O::AMOADD_D: amoD([](int64_t a, int64_t b) { return a + b; }); break;
      case O::AMOXOR_D: amoD([](int64_t a, int64_t b) { return a ^ b; }); break;
      case O::AMOAND_D: amoD([](int64_t a, int64_t b) { return a & b; }); break;
      case O::AMOOR_D: amoD([](int64_t a, int64_t b) { return a | b; }); break;
      case O::AMOMIN_D: amoD([](int64_t a, int64_t b) { return std::min(a, b); }); break;
      case O::AMOMAX_D: amoD([](int64_t a, int64_t b) { return std::max(a, b); }); break;
      case O::AMOMINU_D:
        amoD([](int64_t a, int64_t b) {
            return int64_t(std::min(uint64_t(a), uint64_t(b)));
        });
        break;
      case O::AMOMAXU_D:
        amoD([](int64_t a, int64_t b) {
            return int64_t(std::max(uint64_t(a), uint64_t(b)));
        });
        break;

      // ----------------------------------------------------- RV64F/D
      case O::FLW: {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = 4;
        if (!checkDataAccess(s, rec, a, 4, false))
            break;
        s.f[di.rd & 31] = mem.read(a, 4) | 0xffffffff00000000ull;
        break;
      }
      case O::FLD: {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = 8;
        if (!checkDataAccess(s, rec, a, 8, false))
            break;
        s.f[di.rd & 31] = mem.read(a, 8);
        break;
      }
      case O::FSW: {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = 4;
        if (!checkDataAccess(s, rec, a, 4, true))
            break;
        mem.write(a, 4, s.f[di.rs2 & 31]);
        invalidateReservations(a, nullptr);
        break;
      }
      case O::FSD: {
        Addr a = rs1 + uint64_t(imm);
        rec.memAddr = a;
        rec.memSize = 8;
        if (!checkDataAccess(s, rec, a, 8, true))
            break;
        mem.write(a, 8, s.f[di.rs2 & 31]);
        invalidateReservations(a, nullptr);
        break;
      }
      case O::FADD_S: wfs(frs1() + frs2()); break;
      case O::FSUB_S: wfs(frs1() - frs2()); break;
      case O::FMUL_S: wfs(frs1() * frs2()); break;
      case O::FDIV_S: wfs(frs1() / frs2()); break;
      case O::FSQRT_S: wfs(std::sqrt(frs1())); break;
      case O::FMADD_S: wfs(frs1() * frs2() + frs3()); break;
      case O::FMSUB_S: wfs(frs1() * frs2() - frs3()); break;
      case O::FNMSUB_S: wfs(-(frs1() * frs2()) + frs3()); break;
      case O::FNMADD_S: wfs(-(frs1() * frs2()) - frs3()); break;
      case O::FADD_D: wfd(frd1() + frd2()); break;
      case O::FSUB_D: wfd(frd1() - frd2()); break;
      case O::FMUL_D: wfd(frd1() * frd2()); break;
      case O::FDIV_D: wfd(frd1() / frd2()); break;
      case O::FSQRT_D: wfd(std::sqrt(frd1())); break;
      case O::FMADD_D: wfd(frd1() * frd2() + frd3()); break;
      case O::FMSUB_D: wfd(frd1() * frd2() - frd3()); break;
      case O::FNMSUB_D: wfd(-(frd1() * frd2()) + frd3()); break;
      case O::FNMADD_D: wfd(-(frd1() * frd2()) - frd3()); break;
      case O::FSGNJ_S:
        wfs(std::copysign(std::fabs(frs1()), frs2()));
        break;
      case O::FSGNJN_S:
        wfs(std::copysign(std::fabs(frs1()), -frs2()));
        break;
      case O::FSGNJX_S: {
        uint32_t a = std::bit_cast<uint32_t>(frs1());
        uint32_t b = std::bit_cast<uint32_t>(frs2());
        wfs(std::bit_cast<float>(uint32_t(a ^ (b & 0x80000000u))));
        break;
      }
      case O::FSGNJ_D: wfd(std::copysign(std::fabs(frd1()), frd2())); break;
      case O::FSGNJN_D:
        wfd(std::copysign(std::fabs(frd1()), -frd2()));
        break;
      case O::FSGNJX_D: {
        uint64_t a = dToBits(frd1());
        uint64_t b = dToBits(frd2());
        wfd(bitsToD(a ^ (b & 0x8000000000000000ull)));
        break;
      }
      case O::FMIN_S: wfs(fpMinMax(frs1(), frs2(), false)); break;
      case O::FMAX_S: wfs(fpMinMax(frs1(), frs2(), true)); break;
      case O::FMIN_D: wfd(fpMinMax(frd1(), frd2(), false)); break;
      case O::FMAX_D: wfd(fpMinMax(frd1(), frd2(), true)); break;
      case O::FEQ_S: wr(frs1() == frs2()); break;
      case O::FLT_S: wr(frs1() < frs2()); break;
      case O::FLE_S: wr(frs1() <= frs2()); break;
      case O::FEQ_D: wr(frd1() == frd2()); break;
      case O::FLT_D: wr(frd1() < frd2()); break;
      case O::FLE_D: wr(frd1() <= frd2()); break;
      case O::FCLASS_S: {
        // A non-NaN-boxed register reads as the canonical qNaN, which
        // then classifies as such.
        uint64_t b = s.f[di.rs1 & 31];
        uint64_t sb = (b >> 32) == 0xffffffffu ? uint64_t(uint32_t(b))
                                               : canonicalNanS;
        wr(fclassBits(sb, 8, 23));
        break;
      }
      case O::FCLASS_D:
        wr(fclassBits(s.f[di.rs1 & 31], 11, 52));
        break;
      case O::FCVT_W_S: wr32(cvtW(frs1())); break;
      case O::FCVT_WU_S: wr32(int32_t(cvtWu(frs1()))); break;
      case O::FCVT_L_S: wr(uint64_t(cvtL(frs1()))); break;
      case O::FCVT_LU_S: wr(cvtLu(frs1())); break;
      case O::FCVT_S_W: wfs(float(int32_t(rs1))); break;
      case O::FCVT_S_WU: wfs(float(uint32_t(rs1))); break;
      case O::FCVT_S_L: wfs(float(int64_t(rs1))); break;
      case O::FCVT_S_LU: wfs(float(rs1)); break;
      case O::FCVT_W_D: wr32(cvtW(frd1())); break;
      case O::FCVT_WU_D: wr32(int32_t(cvtWu(frd1()))); break;
      case O::FCVT_L_D: wr(uint64_t(cvtL(frd1()))); break;
      case O::FCVT_LU_D: wr(cvtLu(frd1())); break;
      case O::FCVT_D_W: wfd(double(int32_t(rs1))); break;
      case O::FCVT_D_WU: wfd(double(uint32_t(rs1))); break;
      case O::FCVT_D_L: wfd(double(int64_t(rs1))); break;
      case O::FCVT_D_LU: wfd(double(rs1)); break;
      case O::FCVT_S_D: wfs(float(frd1())); break;
      case O::FCVT_D_S: wfd(double(frs1())); break;
      case O::FMV_X_W: wr(uint64_t(int64_t(int32_t(s.f[di.rs1 & 31])))); break;
      case O::FMV_W_X: s.f[di.rd & 31] = rs1 | 0xffffffff00000000ull; break;
      case O::FMV_X_D: wr(s.f[di.rs1 & 31]); break;
      case O::FMV_D_X: s.f[di.rd & 31] = rs1; break;

      // ------------------------------------------- XT custom (§VIII)
      case O::XT_LRB: xtLoad(1, true, false); break;
      case O::XT_LRBU: xtLoad(1, false, false); break;
      case O::XT_LRH: xtLoad(2, true, false); break;
      case O::XT_LRHU: xtLoad(2, false, false); break;
      case O::XT_LRW: xtLoad(4, true, false); break;
      case O::XT_LRWU: xtLoad(4, false, false); break;
      case O::XT_LRD: xtLoad(8, true, false); break;
      case O::XT_LURW: xtLoad(4, true, true); break;
      case O::XT_LURD: xtLoad(8, true, true); break;
      case O::XT_SRB: xtStore(1); break;
      case O::XT_SRH: xtStore(2); break;
      case O::XT_SRW: xtStore(4); break;
      case O::XT_SRD: xtStore(8); break;
      case O::XT_ADDSL: wr(rs1 + (rs2 << di.shamt2)); break;
      case O::XT_EXT: {
        unsigned msb = unsigned(imm) >> 6, lsb = unsigned(imm) & 63;
        wr(uint64_t(sext(bits(rs1, msb, lsb), msb - lsb + 1)));
        break;
      }
      case O::XT_EXTU: {
        unsigned msb = unsigned(imm) >> 6, lsb = unsigned(imm) & 63;
        wr(bits(rs1, msb, lsb));
        break;
      }
      case O::XT_FF0: wr(countLeadingOnes(rs1)); break;
      case O::XT_FF1: wr(countLeadingZeros(rs1)); break;
      case O::XT_REV: wr(byteSwap64(rs1)); break;
      case O::XT_TSTNBZ: {
        uint64_t out = 0;
        for (unsigned i = 0; i < 8; ++i)
            if (((rs1 >> (8 * i)) & 0xff) == 0)
                out |= 0xffull << (8 * i);
        wr(out);
        break;
      }
      case O::XT_SRRI: {
        unsigned sh = unsigned(imm) & 63;
        wr(sh == 0 ? rs1 : (rs1 >> sh) | (rs1 << (64 - sh)));
        break;
      }
      case O::XT_MULA: wr(s.readX(di.rd) + rs1 * rs2); break;
      case O::XT_MULS: wr(s.readX(di.rd) - rs1 * rs2); break;
      case O::XT_MULAH:
        wr(uint64_t(int64_t(s.readX(di.rd)) +
                    int64_t(int16_t(rs1)) * int64_t(int16_t(rs2))));
        break;
      case O::XT_MULSH:
        wr(uint64_t(int64_t(s.readX(di.rd)) -
                    int64_t(int16_t(rs1)) * int64_t(int16_t(rs2))));
        break;
      case O::XT_DCACHE_CALL:
      case O::XT_DCACHE_CIALL:
      case O::XT_DCACHE_CVA:
      case O::XT_DCACHE_CIVA:
      case O::XT_SYNC:
      case O::XT_SYNC_I:
      case O::XT_TLB_IALL:
      case O::XT_TLB_IASID:
      case O::XT_TLB_BCAST:
        // Architecturally invisible in the flat functional model; the
        // timing models give these their cache/TLB semantics.
        break;
      case O::XT_ICACHE_IALL:
        pendingFlush = true;
        break;

      // ------------------------------------------------------ vector
      default:
        if (isVector(di.op)) {
            execVector(s, di, rec);
        } else {
            // Decodable but unimplemented: architecturally an illegal
            // instruction, delivered precisely like any other trap.
            rec.trap = makeTrap(trap::illegalInstruction, di.raw);
        }
        break;
    }

    return rec;
}

void
Iss::execVector(ArchState &s, const DecodedInst &di, ExecRecord &rec)
{
    using O = Opcode;
    const unsigned vlen = opts.vlenBits;
    const uint64_t rs1 = s.readX(di.rs1 == invalidReg ? 0 : di.rs1 & 31);
    const uint64_t rs2x = s.readX(di.rs2 == invalidReg ? 0 : di.rs2 & 31);

    if (di.op == O::VSETVLI || di.op == O::VSETVL) {
        VType vt = di.op == O::VSETVLI
                       ? decodeVtype(uint32_t(di.imm))
                       : decodeVtype(uint32_t(rs2x));
        unsigned max = vlmax(vlen, vt);
        // rs1 == x0 requests VLMAX (0.7.1 semantics).
        uint64_t avl = (di.rs1 & 31) == 0 ? max : rs1;
        s.vtype = vt;
        s.vl = std::min<uint64_t>(avl, max);
        s.writeX(di.rd, s.vl);
        rec.vl = unsigned(s.vl);
        rec.sew = vt.sew;
        return;
    }

    const unsigned sew = s.vtype.sew;
    const unsigned bytes = sew / 8;
    const unsigned vl = unsigned(s.vl);
    rec.vl = vl;
    rec.sew = sew;

    auto active = [&](unsigned i) { return di.vm || maskBit(s, i); };

    switch (di.op) {
      case O::VLE_V:
      case O::VLSE_V:
      case O::VLXE_V: {
        int64_t stride = di.op == O::VLSE_V ? int64_t(rs2x)
                                            : int64_t(bytes);
        rec.memAddr = rs1;
        rec.memSize = vl * bytes;
        rec.memStride = stride;
        for (unsigned i = 0; i < vl; ++i) {
            if (!active(i))
                continue;
            Addr a;
            if (di.op == O::VLXE_V)
                a = rs1 + vGet(s, di.rs2 & 31, i, sew, vlen);
            else
                a = rs1 + uint64_t(stride) * i;
            if (!checkDataAccess(s, rec, a, bytes, false)) {
                // Precise vector trap: vstart names the faulting
                // element; elements before it have retired.
                writeCsr(s, csr::vstart, i);
                break;
            }
            vSet(s, di.rd & 31, i, sew, vlen, mem.read(a, bytes));
        }
        break;
      }
      case O::VSE_V:
      case O::VSSE_V:
      case O::VSXE_V: {
        int64_t stride = di.op == O::VSSE_V ? int64_t(rs2x)
                                            : int64_t(bytes);
        rec.memAddr = rs1;
        rec.memSize = vl * bytes;
        rec.memStride = stride;
        for (unsigned i = 0; i < vl; ++i) {
            if (!active(i))
                continue;
            Addr a;
            if (di.op == O::VSXE_V)
                a = rs1 + vGet(s, di.rs2 & 31, i, sew, vlen);
            else
                a = rs1 + uint64_t(stride) * i;
            if (!checkDataAccess(s, rec, a, bytes, true)) {
                writeCsr(s, csr::vstart, i);
                break;
            }
            mem.write(a, bytes, vGet(s, di.rs3 & 31, i, sew, vlen));
            // Strided/indexed elements can land far from the base the
            // reservation check below sees; flag each one.
            notifyCodeWrite(a, bytes);
        }
        invalidateReservations(rs1, nullptr);
        break;
      }

      case O::VMV_V_V:
        for (unsigned i = 0; i < vl; ++i)
            vSet(s, di.rd & 31, i, sew, vlen,
                 vGet(s, di.rs1 & 31, i, sew, vlen));
        break;
      case O::VMV_V_X:
        for (unsigned i = 0; i < vl; ++i)
            vSet(s, di.rd & 31, i, sew, vlen, rs1);
        break;
      case O::VMV_V_I:
        for (unsigned i = 0; i < vl; ++i)
            vSet(s, di.rd & 31, i, sew, vlen, uint64_t(di.imm));
        break;
      case O::VMV_X_S:
        s.writeX(di.rd, uint64_t(sextSew(vGet(s, di.rs2 & 31, 0, sew, vlen),
                                         sew)));
        break;
      case O::VMV_S_X:
        vSet(s, di.rd & 31, 0, sew, vlen, rs1);
        break;
      case O::VFMV_V_F:
        for (unsigned i = 0; i < vl; ++i)
            vSet(s, di.rd & 31, i, sew, vlen,
                 fToVElem(bitsToD(s.f[di.rs1 & 31]), sew));
        break;
      case O::VFMV_F_S:
        s.f[di.rd & 31] =
            dToBits(vElemToF(vGet(s, di.rs2 & 31, 0, sew, vlen), sew));
        break;

      case O::VSLIDEUP_VI: {
        unsigned off = unsigned(di.imm);
        for (unsigned i = vl; i-- > off;)
            if (active(i))
                vSet(s, di.rd & 31, i, sew, vlen,
                     vGet(s, di.rs2 & 31, i - off, sew, vlen));
        break;
      }
      case O::VSLIDEDOWN_VI: {
        unsigned off = unsigned(di.imm);
        for (unsigned i = 0; i < vl; ++i)
            if (active(i))
                vSet(s, di.rd & 31, i, sew, vlen,
                     i + off < vl ? vGet(s, di.rs2 & 31, i + off, sew, vlen)
                                  : 0);
        break;
      }

      case O::VREDSUM_VS:
      case O::VREDMAX_VS: {
        int64_t acc = sextSew(vGet(s, di.rs1 & 31, 0, sew, vlen), sew);
        for (unsigned i = 0; i < vl; ++i) {
            if (!active(i))
                continue;
            int64_t e = sextSew(vGet(s, di.rs2 & 31, i, sew, vlen), sew);
            acc = di.op == O::VREDSUM_VS ? acc + e : std::max(acc, e);
        }
        vSet(s, di.rd & 31, 0, sew, vlen, uint64_t(acc));
        break;
      }
      case O::VFREDSUM_VS: {
        double acc = vElemToF(vGet(s, di.rs1 & 31, 0, sew, vlen), sew);
        for (unsigned i = 0; i < vl; ++i)
            if (active(i))
                acc += vElemToF(vGet(s, di.rs2 & 31, i, sew, vlen), sew);
        vSet(s, di.rd & 31, 0, sew, vlen, fToVElem(acc, sew));
        break;
      }

      case O::VWMUL_VV:
      case O::VWMACC_VV: {
        // Widening: destination EEW = 2 * SEW.
        unsigned dsew = sew * 2;
        for (unsigned i = 0; i < vl; ++i) {
            if (!active(i))
                continue;
            int64_t a = sextSew(vGet(s, di.rs1 & 31, i, sew, vlen), sew);
            int64_t b = sextSew(vGet(s, di.rs2 & 31, i, sew, vlen), sew);
            int64_t d = a * b;
            if (di.op == O::VWMACC_VV)
                d += sextSew(vGet(s, di.rd & 31, i, dsew, vlen), dsew);
            vSet(s, di.rd & 31, i, dsew, vlen, uint64_t(d));
        }
        break;
      }

      default: {
        // Element-wise integer/FP/compare/merge ops share one loop.
        for (unsigned i = 0; i < vl; ++i) {
            if (!active(i) && di.op != O::VMERGE_VVM &&
                di.op != O::VMERGE_VXM)
                continue;
            uint64_t aRaw = di.rs1Class == RegClass::Vec
                                ? vGet(s, di.rs1 & 31, i, sew, vlen)
                                : rs1;
            uint64_t bRaw = vGet(s, di.rs2 & 31, i, sew, vlen);
            int64_t a = di.rs1Class == RegClass::None
                            ? di.imm
                            : sextSew(aRaw, sew);
            if (di.rs1Class == RegClass::Int)
                a = sextSew(rs1, sew);
            int64_t b = sextSew(bRaw, sew);
            uint64_t au = zext(uint64_t(a), sew);
            uint64_t bu = zext(uint64_t(b), sew);
            uint64_t out = 0;
            bool isCmp = false;
            bool cmp = false;
            switch (di.op) {
              case O::VADD_VV:
              case O::VADD_VX:
              case O::VADD_VI: out = uint64_t(b + a); break;
              case O::VSUB_VV:
              case O::VSUB_VX: out = uint64_t(b - a); break;
              case O::VRSUB_VX: out = uint64_t(a - b); break;
              case O::VAND_VV:
              case O::VAND_VX: out = bu & au; break;
              case O::VOR_VV:
              case O::VOR_VX: out = bu | au; break;
              case O::VXOR_VV:
              case O::VXOR_VX: out = bu ^ au; break;
              case O::VSLL_VV:
              case O::VSLL_VI: out = bu << (au & (sew - 1)); break;
              case O::VSRL_VV:
              case O::VSRL_VI: out = bu >> (au & (sew - 1)); break;
              case O::VSRA_VV:
              case O::VSRA_VI:
                out = uint64_t(b >> (au & (sew - 1)));
                break;
              case O::VMIN_VV: out = uint64_t(std::min(b, a)); break;
              case O::VMAX_VV: out = uint64_t(std::max(b, a)); break;
              case O::VMINU_VV: out = std::min(bu, au); break;
              case O::VMAXU_VV: out = std::max(bu, au); break;
              case O::VMUL_VV:
              case O::VMUL_VX: out = uint64_t(b * a); break;
              case O::VMULH_VV:
                out = uint64_t((__int128(b) * __int128(a)) >> sew);
                break;
              case O::VMACC_VV:
              case O::VMACC_VX:
                out = uint64_t(sextSew(vGet(s, di.rd & 31, i, sew, vlen),
                                       sew) +
                               a * b);
                break;
              case O::VMADD_VV:
                out = uint64_t(a * sextSew(vGet(s, di.rd & 31, i, sew,
                                                vlen),
                                           sew) +
                               b);
                break;
              case O::VDIV_VV:
                out = a == 0 ? ~0ull : uint64_t(b / a);
                break;
              case O::VDIVU_VV:
                out = au == 0 ? ~0ull : bu / au;
                break;
              case O::VMSEQ_VV:
              case O::VMSEQ_VX:
                isCmp = true;
                cmp = b == a;
                break;
              case O::VMSNE_VV:
                isCmp = true;
                cmp = b != a;
                break;
              case O::VMSLT_VV:
              case O::VMSLT_VX:
                isCmp = true;
                cmp = b < a;
                break;
              case O::VMSLTU_VV:
                isCmp = true;
                cmp = bu < au;
                break;
              case O::VMERGE_VVM:
              case O::VMERGE_VXM:
                out = maskBit(s, i) ? uint64_t(a) : bu;
                break;
              case O::VFADD_VV:
              case O::VFADD_VF:
              case O::VFSUB_VV:
              case O::VFMUL_VV:
              case O::VFMUL_VF:
              case O::VFDIV_VV:
              case O::VFMACC_VV:
              case O::VFMACC_VF: {
                double fa = di.rs1Class == RegClass::Fp
                                ? bitsToD(s.f[di.rs1 & 31])
                                : vElemToF(aRaw, sew);
                double fb = vElemToF(bRaw, sew);
                double r = 0;
                switch (di.op) {
                  case O::VFADD_VV:
                  case O::VFADD_VF: r = fb + fa; break;
                  case O::VFSUB_VV: r = fb - fa; break;
                  case O::VFMUL_VV:
                  case O::VFMUL_VF: r = fb * fa; break;
                  case O::VFDIV_VV: r = fb / fa; break;
                  default: // VFMACC: vd += vs1 * vs2
                    r = vElemToF(vGet(s, di.rd & 31, i, sew, vlen), sew) +
                        fa * fb;
                    break;
                }
                out = fToVElem(r, sew);
                break;
              }
              default:
                rec.trap = makeTrap(trap::illegalInstruction, di.raw);
                return;
            }
            if (isCmp) {
                // Compare results write one bit per element into vd.
                uint8_t &byte = s.v[di.rd & 31][i / 8];
                uint8_t bitSel = uint8_t(1u << (i % 8));
                byte = uint8_t(cmp ? (byte | bitSel) : (byte & ~bitSel));
            } else {
                vSet(s, di.rd & 31, i, sew, vlen, out);
            }
        }
        break;
      }
    }
}

} // namespace xt910
