/**
 * @file
 * The XT-910 multi-mode multi-stream data prefetcher (§V.C).
 *
 * Two modes are supported, matching the paper:
 *  - Global mode: one stride detector for a simple continuous stream,
 *    any stride length, prefetch depth up to 64 cache lines.
 *  - Multi-stream mode: up to 8 concurrent streams with independent
 *    strides, depth up to 32 lines each.
 *
 * Operation follows the paper's three steps: (1) stride-length
 * calculation from the load-address stream, (2) prefetch control —
 * confidence evaluation decides whether the detected policy is
 * trustworthy, and the policy sets depth/distance and dynamically
 * starts/stops issuing, (3) execution of the prefetches, backfilling
 * L1 and/or L2. Virtual cross-page prefetch requests the next page's
 * translation ahead of time (TLB prefetch).
 */

#ifndef XT910_MEM_PREFETCHER_H
#define XT910_MEM_PREFETCHER_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Prefetcher configuration (the knobs of Fig. 21's scenarios). */
struct PrefetcherParams
{
    enum class Mode { Global, MultiStream };

    bool enableL1 = true;     ///< backfill into L1 (scenario b+)
    bool enableL2 = true;     ///< backfill into L2 (scenario c+)
    bool enableTlb = true;    ///< cross-page translation prefetch
    Mode mode = Mode::MultiStream;
    unsigned numStreams = 8;  ///< multi-stream table size (paper: 8)
    unsigned maxDepth = 32;   ///< lines ahead (paper: 32 / 64 global)
    unsigned distance = 8;    ///< issue-ahead target in elements
    unsigned trainConfidence = 2;
    unsigned windowBytes = 4096; ///< stream-match window

    bool
    anyEnabled() const
    {
        return enableL1 || enableL2;
    }
};

/**
 * Where prefetches land. Implemented by the core/memory glue: it owns
 * translation (for TLB prefetch) and the cache fill path.
 */
class PrefetchSink
{
  public:
    virtual ~PrefetchSink() = default;

    /**
     * Issue a line prefetch for virtual address @p vaddr.
     * @return true if the prefetch could be translated and issued
     *         (false e.g. on a TLB miss with TLB prefetch disabled).
     */
    virtual bool prefetchLine(Addr vaddr, bool toL1, Cycle when) = 0;

    /** Warm the TLB for @p vaddr (cross-page prefetch). */
    virtual void prefetchTranslation(Addr vaddr, Cycle when) = 0;
};

/** See file comment. */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const PrefetcherParams &p, const std::string &name);

    /**
     * Train on a demand access and possibly issue prefetches.
     * @p vaddr is the demand virtual address, @p miss whether it
     * missed the cache this prefetcher covers.
     */
    void observe(Addr vaddr, bool miss, Cycle when, PrefetchSink &sink);

    const PrefetcherParams &params() const { return p; }

    /** Serialize the stream table, LRU clock and counters. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter issuedL1;
    Counter issuedL2;
    Counter tlbPrefetches;
    Counter streamsTrained;
    Counter droppedUntranslatable;

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastAddr = 0;
        int64_t stride = 0;
        unsigned confidence = 0;
        Addr nextPrefetch = 0;  ///< next address to issue
        uint64_t lastUse = 0;
    };

    void train(Stream &s, Addr vaddr, Cycle when, PrefetchSink &sink);
    void issueAhead(Stream &s, Addr vaddr, Cycle when, PrefetchSink &sink);

    PrefetcherParams p;
    std::vector<Stream> streams;
    uint64_t useClock = 0;
};

} // namespace xt910

#endif // XT910_MEM_PREFETCHER_H
