#include "mem/memsystem.h"

#include <algorithm>
#include <ostream>

#include "check/invariants.h"
#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"

namespace xt910
{

MemSystem::MemSystem(const MemSystemParams &p_)
    : stats("memsys"),
      snoopProbes(stats, "snoop_probes", "coherence probes to L1s"),
      snoopFiltered(stats, "snoop_filtered",
                    "probes avoided by the snoop filter"),
      c2cTransfers(stats, "c2c_transfers", "cache-to-cache transfers"),
      upgrades(stats, "upgrades", "S->M write upgrades"),
      crossCluster(stats, "cross_cluster",
                   "transfers across the Ncore interconnect"),
      mshrStalls(stats, "mshr_stall_cycles",
                 "cycles spent waiting for a free MSHR"),
      p(p_),
      dramModel(p_.dram)
{
    xt_assert(p.numCores >= 1 && p.numCores <= 16,
              "1..16 cores supported (4 clusters x 4 cores)");
    for (unsigned c = 0; c < p.numCores; ++c) {
        CacheParams ip = p.l1i;
        ip.name = "core" + std::to_string(c) + "." + ip.name;
        l1is.push_back(std::make_unique<Cache>(ip));
        CacheParams dp = p.l1d;
        dp.name = "core" + std::to_string(c) + "." + dp.name;
        l1ds.push_back(std::make_unique<Cache>(dp));
        l1dMshrs.emplace_back(p.l1d.mshrs, 0);
        l1iMshrs.emplace_back(p.l1i.mshrs, 0);
    }
    for (unsigned cl = 0; cl < p.numClusters(); ++cl) {
        CacheParams lp = p.l2;
        lp.name = "cluster" + std::to_string(cl) + "." + lp.name;
        l2s.push_back(std::make_unique<Cache>(lp));
        inflight.emplace_back();
        inflightMax.push_back(0);
    }
}

void
MemSystem::dirAdd(Addr line, unsigned core)
{
    directory[line].sharers |= (1u << core);
}

void
MemSystem::dirRemove(Addr line, unsigned core)
{
    auto it = directory.find(line);
    if (it != directory.end()) {
        it->second.sharers &= ~(1u << core);
        if (it->second.sharers == 0)
            directory.erase(it);
    }
}

uint32_t
MemSystem::dirSharers(Addr line) const
{
    auto it = directory.find(line);
    return it == directory.end() ? 0 : it->second.sharers;
}

Cycle
MemSystem::acquireMshr(std::vector<Cycle> &mshrs, Cycle when)
{
    // Pick the MSHR that frees earliest; stall if none is free now.
    Cycle *best = &mshrs[0];
    for (Cycle &m : mshrs)
        if (m < *best)
            best = &m;
    Cycle start = std::max(when, *best);
    mshrStalls += start - when;
    *best = start; // reserved; extended by caller via return slot
    return start;
}

void
MemSystem::fillL1(unsigned core, Addr line, CoherState st, Cycle now,
                  bool isFetch, bool wasPrefetch)
{
    Cache &c = isFetch ? *l1is[core] : *l1ds[core];
    // Every L1 fill must already be backed by the inclusive L2: the
    // miss paths all fill L2 before calling here.
    XT_INVARIANT(!p.inclusiveL2 ||
                     l2s[p.clusterOf(core)]->findLine(line) != nullptr,
                 "L2 inclusion broken: L1 fill of line ", std::hex, line,
                 " with no backing L2 copy (core ", std::dec, core, ")");
    Cache::Victim v = c.insert(line, st, now, wasPrefetch);
    if (!isFetch) {
        dirAdd(line, core);
        if (v.valid)
            dirRemove(v.addr, core);
        // Dirty victims write back into the (inclusive) L2.
        if (v.valid && v.dirty)
            l2s[p.clusterOf(core)]->setState(v.addr, CoherState::Modified);
    }
}

void
MemSystem::fillL2(unsigned cluster, Addr line, Cycle now, bool wasPrefetch)
{
    Cache::Victim v =
        l2s[cluster]->insert(line, CoherState::Exclusive, now, wasPrefetch);
    if (v.valid && v.dirty)
        dramModel.write(now);
    if (v.valid && p.inclusiveL2) {
        // Inclusive L2: evicting a line removes it from the L1s above.
        uint32_t sharers = dirSharers(v.addr);
        for (unsigned c = 0; c < p.numCores; ++c) {
            if (p.clusterOf(c) != cluster)
                continue;
            if (sharers & (1u << c)) {
                l1ds[c]->invalidate(v.addr);
                dirRemove(v.addr, c);
            }
            l1is[c]->invalidate(v.addr);
        }
    }
}

MemResult
MemSystem::serviceMiss(unsigned core, Addr line, Cycle when, bool isWrite,
                       bool isFetch)
{
    MemResult r;
    const unsigned cluster = p.clusterOf(core);
    Cycle t = when + p.busLatency;

    // Merge with an identical in-flight fill.
    auto &fl = inflight[cluster];
    auto inf = fl.find(line);
    if (inf != fl.end() && inf->second >= when) {
        r.done = std::max(inf->second, t);
        r.level = ServiceLevel::Merged;
        return r;
    }

    // Coherence: find other L1 holders (data caches only).
    uint32_t sharers = dirSharers(line) & ~(1u << core);
    if (!p.snoopFilter) {
        // Without a filter every L2 access probes every other L1.
        snoopProbes += p.numCores - 1;
        t += 2; // probe serialization cost
    } else if (sharers == 0) {
        ++snoopFiltered;
    }

    if (sharers != 0) {
        snoopProbes += popCount(sharers);
        bool remote = false;
        for (unsigned c = 0; c < p.numCores; ++c) {
            if (!(sharers & (1u << c)))
                continue;
            if (p.clusterOf(c) != cluster)
                remote = true;
            if (isWrite) {
                l1ds[c]->invalidate(line);
                dirRemove(line, c);
            } else {
                // MOESI: the owner keeps the line in Owned state.
                Cache::Line *l = l1ds[c]->findLine(line);
                if (l && (l->state == CoherState::Modified ||
                          l->state == CoherState::Exclusive))
                    l->state = CoherState::Owned;
            }
        }
        ++c2cTransfers;
        t += p.c2cLatency;
        if (remote) {
            ++crossCluster;
            t += p.ncoreLatency;
        }
        // Data came from a peer cache; ensure L2 has it (inclusive).
        if (!l2s[cluster]->findLine(line))
            fillL2(cluster, line, t);
        else
            l2s[cluster]->touch(line, t);
        fillL1(core, line,
               isWrite ? CoherState::Modified : CoherState::Shared, t,
               isFetch);
        r.done = t;
        r.level = ServiceLevel::Remote;
        return r;
    }

    // L2 lookup.
    Cache &l2c = *l2s[cluster];
    if (Cache::Line *l = l2c.findLine(line)) {
        ++l2c.hits;
        l2c.touch(line, t);
        (void)l;
        t += p.l2.hitLatency;
        if (l2c.resolveError(line))
            t += p.l2.hitLatency; // uncorrectable: re-read from memory
        fillL1(core, line,
               isWrite ? CoherState::Modified : CoherState::Exclusive, t,
               isFetch);
        r.done = t;
        r.level = ServiceLevel::L2;
        r.l2Hit = true;
        return r;
    }
    ++l2c.misses;

    // DRAM.
    Cycle ready = dramModel.read(t + p.l2.hitLatency);
    fl[line] = ready;
    if (ready > inflightMax[cluster])
        inflightMax[cluster] = ready;
    if (fl.size() > 4096) {
        // Lazy cleanup of long-completed fills.
        for (auto it = fl.begin(); it != fl.end();)
            it = it->second < when ? fl.erase(it) : std::next(it);
    }
    fillL2(cluster, line, ready);
    fillL1(core, line,
           isWrite ? CoherState::Modified : CoherState::Exclusive, ready,
           isFetch);
    r.done = ready;
    r.level = ServiceLevel::Dram;
    return r;
}

MemResult
MemSystem::accessL1(unsigned core, Addr pa, Cycle when, bool isWrite,
                    bool isFetch)
{
    Addr line = lineAlign(pa);
    Cache &l1 = isFetch ? *l1is[core] : *l1ds[core];
    MemResult r;

    if (Cache::Line *l = l1.findLine(pa)) {
        // Write to a Shared/Owned line needs an upgrade (invalidate
        // other copies) before it can become Modified.
        if (isWrite && (l->state == CoherState::Shared ||
                        l->state == CoherState::Owned)) {
            ++upgrades;
            uint32_t sharers = dirSharers(line) & ~(1u << core);
            snoopProbes += popCount(sharers);
            for (unsigned c = 0; c < p.numCores; ++c) {
                if (sharers & (1u << c)) {
                    l1ds[c]->invalidate(line);
                    dirRemove(line, c);
                }
            }
            l->state = CoherState::Modified;
            ++l1.hits;
            l1.touchLine(l, when);
            r.done = when + l1.params().hitLatency + p.busLatency;
            r.l1Hit = true;
            r.level = ServiceLevel::L1;
            return r;
        }
        if (isWrite)
            l->state = CoherState::Modified;
        ++l1.hits;
        l1.touchLine(l, when);
        r.done = when + l1.params().hitLatency;
        if (l1.resolveErrorLine(l))
            r.done += 1; // parity re-fetch handling (model: stall)
        r.l1Hit = true;
        r.level = ServiceLevel::L1;
        // The line may still be in flight (fills are installed when the
        // miss is issued, timestamped with their data-ready cycle): the
        // consumer cannot see data before it arrives. The watermark
        // proves most hits past the last outstanding fill, skipping
        // the hash lookup.
        const unsigned cluster = p.clusterOf(core);
        if (when < inflightMax[cluster]) {
            auto &fl = inflight[cluster];
            auto inf = fl.find(line);
            if (inf != fl.end() && inf->second > when) {
                r.done = inf->second + l1.params().hitLatency;
                r.level = ServiceLevel::Merged;
            }
        }
        return r;
    }

    ++l1.misses;
    auto &mshrs = isFetch ? l1iMshrs[core] : l1dMshrs[core];
    Cycle start = acquireMshr(mshrs, when);
    MemResult miss = serviceMiss(core, line, start, isWrite, isFetch);
    // Hold the MSHR until the fill returns.
    for (Cycle &m : mshrs) {
        if (m == start) {
            m = miss.done;
            break;
        }
    }
    miss.done += l1.params().hitLatency; // fill -> data forward
    return miss;
}

MemResult
MemSystem::fetch(unsigned core, Addr pa, Cycle when)
{
    return accessL1(core, pa, when, false, true);
}

MemResult
MemSystem::read(unsigned core, Addr pa, Cycle when)
{
    return accessL1(core, pa, when, false, false);
}

MemResult
MemSystem::write(unsigned core, Addr pa, Cycle when)
{
    return accessL1(core, pa, when, true, false);
}

MemResult
MemSystem::amo(unsigned core, Addr pa, Cycle when)
{
    // Atomic: behaves like a write but with a serialization penalty.
    MemResult r = accessL1(core, pa, when, true, false);
    r.done += 4;
    return r;
}

Cycle
MemSystem::busyHorizon() const
{
    Cycle h = dramModel.busyHorizon();
    for (const auto &mshrs : l1dMshrs)
        for (Cycle c : mshrs)
            h = std::max(h, c);
    for (const auto &mshrs : l1iMshrs)
        for (Cycle c : mshrs)
            h = std::max(h, c);
    for (const auto &fl : inflight)
        for (const auto &[line, ready] : fl)
            h = std::max(h, ready);
    return h;
}

Cycle
MemSystem::prefetchFill(unsigned core, Addr pa, bool toL1, Cycle when)
{
    Addr line = lineAlign(pa);
    const unsigned cluster = p.clusterOf(core);

    // Already covered? Nothing to do.
    if (toL1 && l1ds[core]->findLine(line))
        return when;
    if (!toL1 && l2s[cluster]->findLine(line))
        return when;

    auto &fl = inflight[cluster];
    auto inf = fl.find(line);
    Cycle ready;
    if (inf != fl.end() && inf->second >= when) {
        ready = inf->second;
    } else if (l2s[cluster]->findLine(line)) {
        ready = when + p.busLatency + p.l2.hitLatency;
        l2s[cluster]->touch(line, when);
    } else {
        ready = dramModel.read(when + p.busLatency + p.l2.hitLatency);
        fl[line] = ready;
        if (ready > inflightMax[cluster])
            inflightMax[cluster] = ready;
        fillL2(cluster, line, ready, /*wasPrefetch=*/!toL1);
    }
    if (toL1)
        fillL1(core, line, CoherState::Exclusive, ready, false,
               /*wasPrefetch=*/true);
    return ready;
}

Cycle
MemSystem::prefetchInstLine(unsigned core, Addr pa, Cycle when)
{
    Addr line = lineAlign(pa);
    if (l1is[core]->findLine(line))
        return when;
    const unsigned cluster = p.clusterOf(core);
    auto &fl = inflight[cluster];
    auto inf = fl.find(line);
    Cycle ready;
    if (inf != fl.end() && inf->second >= when) {
        ready = inf->second;
    } else if (l2s[cluster]->findLine(line)) {
        ready = when + p.busLatency + p.l2.hitLatency;
        l2s[cluster]->touch(line, when);
    } else {
        ready = dramModel.read(when + p.busLatency + p.l2.hitLatency);
        fl[line] = ready;
        if (ready > inflightMax[cluster])
            inflightMax[cluster] = ready;
        fillL2(cluster, line, ready);
    }
    l1is[core]->insert(line, CoherState::Shared, ready,
                       /*wasPrefetch=*/true);
    return ready;
}

void
MemSystem::invalidateL1D(unsigned core)
{
    l1ds[core]->forEachLine([&](Addr a) { dirRemove(a, core); });
    l1ds[core]->invalidateAll();
}

void
MemSystem::invalidateL1I(unsigned core)
{
    l1is[core]->invalidateAll();
}

void
MemSystem::dumpStats(std::ostream &os) const
{
    stats.dump(os);
    for (const auto &c : l1is)
        c->stats.dump(os);
    for (const auto &c : l1ds)
        c->stats.dump(os);
    for (const auto &c : l2s)
        c->stats.dump(os);
    dramModel.stats.dump(os);
}

void
MemSystem::forEachStatGroup(
    const std::function<void(const StatGroup &)> &fn) const
{
    fn(stats);
    for (const auto &c : l1is)
        fn(c->stats);
    for (const auto &c : l1ds)
        fn(c->stats);
    for (const auto &c : l2s)
        fn(c->stats);
    fn(dramModel.stats);
}

namespace
{

void
saveCycleMap(SnapWriter &w, const std::unordered_map<Addr, Cycle> &m)
{
    std::vector<std::pair<Addr, Cycle>> v(m.begin(), m.end());
    std::sort(v.begin(), v.end());
    w.u64(v.size());
    for (const auto &[line, cyc] : v) {
        w.u64(line);
        w.u64(cyc);
    }
}

void
loadCycleMap(SnapReader &r, std::unordered_map<Addr, Cycle> &m)
{
    m.clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        Addr line = r.u64();
        m[line] = r.u64();
    }
}

} // namespace

void
MemSystem::snapSave(SnapWriter &w) const
{
    w.u32(p.numCores);
    stats.snapSave(w);
    for (const auto &c : l1is)
        c->snapSave(w);
    for (const auto &c : l1ds)
        c->snapSave(w);
    for (const auto &c : l2s)
        c->snapSave(w);
    dramModel.snapSave(w);

    std::vector<std::pair<Addr, uint32_t>> dir;
    dir.reserve(directory.size());
    for (const auto &[line, e] : directory)
        dir.emplace_back(line, e.sharers);
    std::sort(dir.begin(), dir.end());
    w.u64(dir.size());
    for (const auto &[line, sharers] : dir) {
        w.u64(line);
        w.u32(sharers);
    }

    for (const auto &m : inflight)
        saveCycleMap(w, m);
    for (const auto &v : l1dMshrs) {
        w.u64(v.size());
        for (Cycle c : v)
            w.u64(c);
    }
    for (const auto &v : l1iMshrs) {
        w.u64(v.size());
        for (Cycle c : v)
            w.u64(c);
    }
}

void
MemSystem::snapLoad(SnapReader &r)
{
    if (r.u32() != p.numCores)
        throw SnapError("snapshot core count does not match memsystem");
    stats.snapLoad(r);
    for (const auto &c : l1is)
        c->snapLoad(r);
    for (const auto &c : l1ds)
        c->snapLoad(r);
    for (const auto &c : l2s)
        c->snapLoad(r);
    dramModel.snapLoad(r);

    directory.clear();
    uint64_t nDir = r.u64();
    for (uint64_t i = 0; i < nDir; ++i) {
        Addr line = r.u64();
        directory[line].sharers = r.u32();
    }

    for (auto &m : inflight)
        loadCycleMap(r, m);
    for (unsigned cl = 0; cl < inflight.size(); ++cl) {
        inflightMax[cl] = 0;
        for (const auto &[line, ready] : inflight[cl])
            inflightMax[cl] = std::max(inflightMax[cl], ready);
    }
    for (auto &v : l1dMshrs) {
        if (r.u64() != v.size())
            throw SnapError("snapshot MSHR count does not match");
        for (Cycle &c : v)
            c = r.u64();
    }
    for (auto &v : l1iMshrs) {
        if (r.u64() != v.size())
            throw SnapError("snapshot MSHR count does not match");
        for (Cycle &c : v)
            c = r.u64();
    }
}

} // namespace xt910
