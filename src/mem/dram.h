/**
 * @file
 * First-order DRAM model: fixed access latency plus a line-granular
 * bandwidth constraint. The paper's prefetch experiment (Fig. 21) pins
 * the memory access delay at ~200 CPU cycles by configuring bus + DDR
 * delay; this model exposes exactly those knobs.
 */

#ifndef XT910_MEM_DRAM_H
#define XT910_MEM_DRAM_H

#include <algorithm>

#include "common/snapio.h"
#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** DRAM timing parameters. */
struct DramParams
{
    Cycle latency = 200;       ///< request -> first data (Fig. 21 setup)
    Cycle cyclesPerLine = 4;   ///< minimum gap between line transfers
};

/** See file comment. */
class Dram
{
  public:
    explicit Dram(const DramParams &p = DramParams())
        : stats("dram"),
          reads(stats, "reads", "line reads"),
          writes(stats, "writes", "line writebacks"),
          busyStall(stats, "busy_stall_cycles",
                    "cycles requests waited for bandwidth"),
          params(p)
    {}

    /** A line read starting no earlier than @p when; returns data-ready. */
    Cycle
    read(Cycle when)
    {
        Cycle start = std::max(when, readFree);
        busyStall += start - when;
        readFree = start + params.cyclesPerLine;
        ++reads;
        return start + params.latency;
    }

    /**
     * A line writeback. Posted: writes drain through the controller's
     * write queue on their own bandwidth track and never delay reads
     * (read-priority scheduling, as real DDR controllers do).
     */
    void
    write(Cycle when)
    {
        writeFree = std::max(when, writeFree) + params.cyclesPerLine;
        ++writes;
    }

    const DramParams &dramParams() const { return params; }

    /** Event-skip hook (DESIGN.md §3f): latest cycle either bandwidth
     *  track is still reserved; the controller is quiescent past it. */
    Cycle nextEventCycle() const { return std::max(readFree, writeFree); }
    Cycle busyHorizon() const { return nextEventCycle(); }

    void
    snapSave(SnapWriter &w) const
    {
        w.u64(readFree);
        w.u64(writeFree);
        stats.snapSave(w);
    }

    void
    snapLoad(SnapReader &r)
    {
        readFree = r.u64();
        writeFree = r.u64();
        stats.snapLoad(r);
    }

    StatGroup stats;
    Counter reads;
    Counter writes;
    Counter busyStall;

  private:
    DramParams params;
    Cycle readFree = 0;
    Cycle writeFree = 0;
};

} // namespace xt910

#endif // XT910_MEM_DRAM_H
