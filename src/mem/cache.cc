#include "mem/cache.h"

#include "check/invariants.h"
#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"

namespace xt910
{

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::Invalid: return "I";
      case CoherState::Shared: return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Owned: return "O";
      case CoherState::Modified: return "M";
    }
    return "?";
}

Cache::Cache(const CacheParams &p_)
    : stats(p_.name),
      hits(stats, "hits", "demand hits"),
      misses(stats, "misses", "demand misses"),
      evictions(stats, "evictions", "lines evicted"),
      writebacks(stats, "writebacks", "dirty lines written back"),
      prefetchFills(stats, "prefetch_fills", "lines filled by prefetch"),
      prefetchUseful(stats, "prefetch_useful",
                     "prefetched lines later demanded"),
      invalidations(stats, "invalidations", "coherence invalidations"),
      eccCorrected(stats, "ecc_corrected",
                   "single-bit errors corrected by ECC"),
      eccDetected(stats, "ecc_detected",
                  "errors detected but not correctable"),
      p(p_)
{
    xt_assert(isPow2(p.lineBytes), "line size must be a power of two");
    xt_assert(p.assoc >= 1, "associativity must be >= 1");
    xt_assert(p.sizeBytes % (p.lineBytes * p.assoc) == 0,
              p.name, ": size not divisible by way size");
    sets = p.sizeBytes / (p.lineBytes * p.assoc);
    xt_assert(isPow2(sets), p.name, ": set count must be a power of two");
    lineShift = log2Floor(p.lineBytes);
    setShift = log2Floor(sets);
    lines.resize(size_t(sets) * p.assoc);
}

uint32_t
Cache::setIndex(Addr addr) const
{
    return uint32_t((addr >> lineShift) & (sets - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setShift);
}

Addr
Cache::lineAddr(uint32_t set, const Line &l) const
{
    return (l.tag << (lineShift + setShift)) |
           (Addr(set) << lineShift);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    uint32_t s = setIndex(addr);
    Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < p.assoc; ++w) {
        Line &l = lines[size_t(s) * p.assoc + w];
        if (l.valid() && l.tag == tag)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

void
Cache::touch(Addr addr, Cycle now)
{
    if (Line *l = findLine(addr))
        touchLine(l, now);
}

Cache::Victim
Cache::insert(Addr addr, CoherState st, Cycle now, bool wasPrefetch)
{
    Victim v;
    uint32_t s = setIndex(addr);
    Addr tag = tagOf(addr);

    Line *dest = nullptr;
    for (uint32_t w = 0; w < p.assoc; ++w) {
        Line &l = lines[size_t(s) * p.assoc + w];
        if (l.valid() && l.tag == tag) {
            dest = &l; // refill of an already-present line
            break;
        }
        if (!l.valid() && !dest)
            dest = &l;
    }
    if (!dest) {
        // Evict the least recently used way.
        dest = &lines[size_t(s) * p.assoc];
        for (uint32_t w = 1; w < p.assoc; ++w) {
            Line &l = lines[size_t(s) * p.assoc + w];
            if (l.lastUse < dest->lastUse)
                dest = &l;
        }
        v.valid = true;
        v.addr = lineAddr(s, *dest);
        v.dirty = isDirty(dest->state);
        v.state = dest->state;
        ++evictions;
        if (v.dirty)
            ++writebacks;
    }

    dest->tag = tag;
    dest->state = st;
    dest->lastUse = now;
    dest->prefetched = wasPrefetch;
    if (wasPrefetch)
        ++prefetchFills;
    return v;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *l = findLine(addr)) {
        bool dirty = isDirty(l->state);
        l->state = CoherState::Invalid;
        ++invalidations;
        return dirty;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &l : lines)
        l.state = CoherState::Invalid;
}

void
Cache::setState(Addr addr, CoherState st)
{
    // Invalidation goes through invalidate(), never setState.
    XT_INVARIANT(st != CoherState::Invalid,
                 "setState used to invalidate line ", std::hex, addr);
    if (Line *l = findLine(addr)) {
        // MOESI: a line another agent may hold (S or O) cannot be
        // silently promoted to Exclusive without an invalidation.
        XT_INVARIANT(!(st == CoherState::Exclusive &&
                       (l->state == CoherState::Shared ||
                        l->state == CoherState::Owned)),
                     "illegal MOESI transition ",
                     coherStateName(l->state), "->E on line ", std::hex,
                     addr);
        l->state = st;
    }
}


bool
Cache::injectBitError(Addr addr)
{
    if (Line *l = findLine(addr)) {
        l->bitError = true;
        return true;
    }
    return false;
}

void
Cache::snapSave(SnapWriter &w) const
{
    w.u32(sets);
    w.u32(p.assoc);
    for (const Line &l : lines) {
        w.u64(l.tag);
        w.u8(uint8_t(l.state));
        w.u64(l.lastUse);
        w.b(l.prefetched);
        w.b(l.bitError);
    }
    stats.snapSave(w);
}

void
Cache::snapLoad(SnapReader &r)
{
    if (r.u32() != sets || r.u32() != p.assoc)
        throw SnapError("snapshot cache geometry does not match: " +
                        p.name);
    for (Line &l : lines) {
        l.tag = r.u64();
        uint8_t st = r.u8();
        if (st > uint8_t(CoherState::Modified))
            throw SnapError("corrupt snapshot: bad coherence state");
        l.state = CoherState(st);
        l.lastUse = r.u64();
        l.prefetched = r.b();
        l.bitError = r.b();
    }
    stats.snapLoad(r);
}

bool
Cache::resolveError(Addr addr)
{
    Line *l = findLine(addr);
    return l != nullptr && resolveErrorLine(l);
}

} // namespace xt910
