/**
 * @file
 * Set-associative cache structure model with MOESI line states and LRU
 * replacement. This class models *contents and state only*; timing and
 * coherence policy live in MemSystem so the same structure serves L1I,
 * L1D and the shared inclusive L2 (§II, §VI).
 */

#ifndef XT910_MEM_CACHE_H
#define XT910_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** MOESI coherence states (the paper's L2 supports MOSEI, §VI). */
enum class CoherState : uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

const char *coherStateName(CoherState s);

/** True when the state implies the line may be dirty vs memory. */
constexpr bool
isDirty(CoherState s)
{
    return s == CoherState::Modified || s == CoherState::Owned;
}

/** Cache geometry and behaviour parameters. */
struct CacheParams
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = cacheLineBytes;
    uint32_t hitLatency = 3;   ///< cycles from access to data
    uint32_t mshrs = 8;        ///< outstanding misses supported
    /**
     * SECDED ECC on the data array (Table I: the L2 "supports both ECC
     * and parity check"). With ECC, injected single-bit errors are
     * corrected on access; without it they are only detected (parity).
     */
    bool ecc = false;
};

/** See file comment. */
class Cache
{
  public:
    struct Line
    {
        Addr tag = 0;
        CoherState state = CoherState::Invalid;
        uint64_t lastUse = 0;   ///< LRU timestamp
        bool prefetched = false;///< filled by a prefetch, not yet used
        bool bitError = false;  ///< injected single-bit upset pending
        bool valid() const { return state != CoherState::Invalid; }
    };

    explicit Cache(const CacheParams &p);

    /** Look up @p addr; returns the line or nullptr. No LRU update. */
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /** Record a use of @p addr for replacement (call on hits). */
    void touch(Addr addr, Cycle now);

    /** touch() when the caller already holds the line from findLine()
     *  — the hot L1-hit path pays for one tag lookup, not three. */
    void
    touchLine(Line *l, Cycle now)
    {
        l->lastUse = now;
        if (l->prefetched) {
            l->prefetched = false;
            ++prefetchUseful;
        }
    }

    /** Outcome of an insert: the line that had to leave, if any. */
    struct Victim
    {
        bool valid = false;
        Addr addr = 0;
        bool dirty = false;
        CoherState state = CoherState::Invalid;
    };

    /**
     * Fill @p addr in state @p st, evicting the LRU way if needed.
     * @p wasPrefetch marks prefetch-injected fills for accuracy stats.
     */
    Victim insert(Addr addr, CoherState st, Cycle now,
                  bool wasPrefetch = false);

    /** Drop @p addr if present; returns whether it was dirty. */
    bool invalidate(Addr addr);

    /** Invalidate everything (xt.dcache.ciall / icache.iall). */
    void invalidateAll();

    /** Set the state of a present line (coherence downgrades). */
    void setState(Addr addr, CoherState st);

    /**
     * Fault injection: mark a single-bit upset in @p addr's line. On
     * the next access the error is corrected (ECC) or merely detected
     * (parity), updating the corresponding counters. Returns false
     * when the line is not resident.
     */
    bool injectBitError(Addr addr);

    /** Called by the access path: resolve any pending injected error.
     *  Returns true if the access would deliver corrupted data (i.e.,
     *  a detected-but-uncorrectable parity error). */
    bool resolveError(Addr addr);

    /** resolveError() on a line the caller already holds. The common
     *  no-error case is a single flag test, no tag lookup. */
    bool
    resolveErrorLine(Line *l)
    {
        if (!l->bitError)
            return false;
        l->bitError = false;
        if (p.ecc) {
            ++eccCorrected; // SECDED corrects the single-bit upset
            return false;
        }
        ++eccDetected; // parity: detected, data not recoverable
        return true;
    }

    const CacheParams &params() const { return p; }
    uint32_t numSets() const { return sets; }

    /** Iterate all valid lines (for inclusive back-invalidation). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (uint32_t s = 0; s < sets; ++s)
            for (uint32_t w = 0; w < p.assoc; ++w)
                if (lines[s * p.assoc + w].valid())
                    fn(lineAddr(s, lines[s * p.assoc + w]));
    }

    /** Serialize every line (tag/state/LRU) plus the counters. The
     *  geometry is checked on load: a snapshot taken under different
     *  cache parameters is rejected, not silently reinterpreted. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter writebacks;
    Counter prefetchFills;
    Counter prefetchUseful;
    Counter invalidations;
    Counter eccCorrected;   ///< single-bit errors corrected (ECC)
    Counter eccDetected;    ///< errors detected but not correctable

  private:
    uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(uint32_t set, const Line &l) const;

    CacheParams p;
    uint32_t sets;
    unsigned lineShift;
    unsigned setShift;
    std::vector<Line> lines;
};

} // namespace xt910

#endif // XT910_MEM_CACHE_H
