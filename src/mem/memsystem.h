/**
 * @file
 * The coherent memory hierarchy of an XT-910 system (§II, §VI):
 * per-core L1 instruction and data caches, a shared inclusive L2 per
 * cluster (MOESI), a snoop filter that limits inter-core probes, an
 * Ncore-style interconnect between up to 4 clusters, and a DRAM model.
 *
 * Timing is modelled as completion-cycle arithmetic: each access at
 * cycle T returns the cycle its data is available, advancing internal
 * bandwidth/MSHR availability state. In-flight misses are merged, which
 * is what lets prefetches hide demand latency (Fig. 21).
 */

#ifndef XT910_MEM_MEMSYSTEM_H
#define XT910_MEM_MEMSYSTEM_H

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.h"
#include "mem/dram.h"

namespace xt910
{

/** Memory-system configuration (Table I's cache knobs live here). */
struct MemSystemParams
{
    unsigned numCores = 1;
    unsigned coresPerCluster = 4; ///< paper: up to 4 cores per cluster

    CacheParams l1i{.name = "l1i",
                    .sizeBytes = 64 * 1024,
                    .assoc = 4,
                    .lineBytes = cacheLineBytes,
                    .hitLatency = 2,
                    .mshrs = 4};
    CacheParams l1d{.name = "l1d",
                    .sizeBytes = 64 * 1024,
                    .assoc = 4,
                    .lineBytes = cacheLineBytes,
                    .hitLatency = 3,
                    .mshrs = 8};
    CacheParams l2{.name = "l2",
                   .sizeBytes = 2 * 1024 * 1024,
                   .assoc = 16,
                   .lineBytes = cacheLineBytes,
                   .hitLatency = 14,
                   .mshrs = 16,
                   .ecc = true}; // Table I: L2 has ECC + parity

    DramParams dram{};

    Cycle busLatency = 4;      ///< core <-> cluster L2 transport
    Cycle c2cLatency = 18;     ///< snoop + cache-to-cache transfer
    Cycle ncoreLatency = 30;   ///< cluster <-> cluster via Ncore
    bool snoopFilter = true;   ///< filter probes (§VI)
    bool inclusiveL2 = true;   ///< paper: inclusive shared L2

    unsigned numClusters() const
    {
        return (numCores + coresPerCluster - 1) / coresPerCluster;
    }
    unsigned clusterOf(unsigned core) const
    {
        return core / coresPerCluster;
    }
};

/** Where an access was ultimately serviced. */
enum class ServiceLevel : uint8_t { L1, L2, Remote, Dram, Merged };

/** Result of one access. */
struct MemResult
{
    Cycle done = 0;            ///< data-available cycle
    ServiceLevel level = ServiceLevel::L1;
    bool l1Hit = false;
    bool l2Hit = false;
};

/** See file comment. */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemParams &p);

    /** Instruction fetch of a line through core's L1I. */
    MemResult fetch(unsigned core, Addr pa, Cycle when);

    /** Data read through core's L1D. */
    MemResult read(unsigned core, Addr pa, Cycle when);

    /** Data write (write-allocate, write-back) through core's L1D. */
    MemResult write(unsigned core, Addr pa, Cycle when);

    /** Atomic read-modify-write: serializing read+write. */
    MemResult amo(unsigned core, Addr pa, Cycle when);

    /**
     * Prefetch fill toward core's L1 (toL1) or the cluster L2 only.
     * Returns the fill-complete cycle.
     */
    Cycle prefetchFill(unsigned core, Addr pa, bool toL1, Cycle when);

    /**
     * Instruction-side sequential prefetch: the IFU's run-ahead fill
     * into the L1I (the paper's IBUF keeps fetch ahead even across
     * cache misses, §III). Returns the fill-complete cycle.
     */
    Cycle prefetchInstLine(unsigned core, Addr pa, Cycle when);

    /** xt.dcache.ciall: invalidate the whole L1D of @p core. */
    void invalidateL1D(unsigned core);
    /** xt.icache.iall: invalidate the whole L1I of @p core. */
    void invalidateL1I(unsigned core);

    Cache &l1i(unsigned core) { return *l1is[core]; }
    Cache &l1d(unsigned core) { return *l1ds[core]; }
    Cache &l2(unsigned cluster) { return *l2s[cluster]; }
    Dram &dram() { return dramModel; }
    const MemSystemParams &params() const { return p; }

    /** Dump all component stats. */
    void dumpStats(std::ostream &os) const;

    /** Visit every StatGroup the memory system owns. */
    void forEachStatGroup(
        const std::function<void(const StatGroup &)> &fn) const;

    /** Serialize the whole hierarchy: every cache, the DRAM model, the
     *  coherence directory, in-flight fills and MSHR availability
     *  (sorted maps so the byte stream is deterministic). */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    /**
     * Event-skip hook (DESIGN.md §3f): latest cycle any MSHR, in-flight
     * fill or DRAM bandwidth track is still reserved. The hierarchy is
     * quiescent past this cycle — a request arriving later is limited
     * only by hit/miss latency, never by occupancy.
     */
    Cycle busyHorizon() const;
    Cycle nextEventCycle() const { return busyHorizon(); }

    StatGroup stats;
    Counter snoopProbes;       ///< L1 probes sent for coherence
    Counter snoopFiltered;     ///< probes avoided by the snoop filter
    Counter c2cTransfers;      ///< cache-to-cache data transfers
    Counter upgrades;          ///< S->M write upgrades
    Counter crossCluster;      ///< transfers that crossed the Ncore
    Counter mshrStalls;        ///< cycles lost waiting for an MSHR

  private:
    struct DirEntry
    {
        uint32_t sharers = 0;  ///< bitmask of cores with an L1 copy
    };

    MemResult accessL1(unsigned core, Addr pa, Cycle when, bool isWrite,
                       bool isFetch);
    /** Service a miss from L2/remote/DRAM; returns data-ready cycle. */
    MemResult serviceMiss(unsigned core, Addr line, Cycle when,
                          bool isWrite, bool isFetch);
    Cycle acquireMshr(std::vector<Cycle> &mshrs, Cycle when);
    void fillL1(unsigned core, Addr line, CoherState st, Cycle now,
                bool isFetch, bool wasPrefetch = false);
    void fillL2(unsigned cluster, Addr line, Cycle now,
                bool wasPrefetch = false);
    void dirAdd(Addr line, unsigned core);
    void dirRemove(Addr line, unsigned core);
    uint32_t dirSharers(Addr line) const;

    MemSystemParams p;
    std::vector<std::unique_ptr<Cache>> l1is;
    std::vector<std::unique_ptr<Cache>> l1ds;
    std::vector<std::unique_ptr<Cache>> l2s;
    Dram dramModel;

    std::unordered_map<Addr, DirEntry> directory;
    /** In-flight line fills per cluster: line -> data-ready cycle. */
    std::vector<std::unordered_map<Addr, Cycle>> inflight;
    /**
     * Per-cluster upper bound on any in-flight data-ready cycle. An
     * L1 hit at `when >= inflightMax[cluster]` provably cannot merge
     * with a fill, so the hot hit path skips the hash lookup
     * entirely. Monotone (never lowered when entries complete) —
     * conservative but exact. Derived state: rebuilt on snapLoad,
     * not serialized.
     */
    std::vector<Cycle> inflightMax;
    std::vector<std::vector<Cycle>> l1dMshrs;
    std::vector<std::vector<Cycle>> l1iMshrs;
};

} // namespace xt910

#endif // XT910_MEM_MEMSYSTEM_H
