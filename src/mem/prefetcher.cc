#include "mem/prefetcher.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"
#include "common/snapio.h"

namespace xt910
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherParams &p_,
                                   const std::string &name)
    : stats(name),
      issuedL1(stats, "issued_l1", "prefetches filled toward L1"),
      issuedL2(stats, "issued_l2", "prefetches filled toward L2"),
      tlbPrefetches(stats, "tlb_prefetches",
                    "cross-page translation prefetches"),
      streamsTrained(stats, "streams_trained",
                     "streams that reached confidence"),
      droppedUntranslatable(stats, "dropped_untranslatable",
                            "prefetches dropped for lack of translation"),
      p(p_)
{
    unsigned n = p.mode == PrefetcherParams::Mode::Global ? 1
                                                          : p.numStreams;
    streams.resize(n);
}

void
StreamPrefetcher::observe(Addr vaddr, bool miss, Cycle when,
                          PrefetchSink &sink)
{
    (void)miss;
    if (!p.anyEnabled())
        return;
    ++useClock;

    // Step 1: stream matching / stride calculation.
    Stream *match = nullptr;
    for (Stream &s : streams) {
        if (s.valid &&
            std::llabs(int64_t(vaddr) - int64_t(s.lastAddr)) <=
                int64_t(p.windowBytes)) {
            match = &s;
            break;
        }
    }
    if (!match) {
        // Allocate the LRU stream for a potential new pattern.
        match = &streams[0];
        for (Stream &s : streams) {
            if (!s.valid) {
                match = &s;
                break;
            }
            if (s.lastUse < match->lastUse)
                match = &s;
        }
        match->valid = true;
        match->lastAddr = vaddr;
        match->stride = 0;
        match->confidence = 0;
        match->nextPrefetch = 0;
        match->lastUse = useClock;
        return;
    }
    match->lastUse = useClock;
    train(*match, vaddr, when, sink);
}

void
StreamPrefetcher::train(Stream &s, Addr vaddr, Cycle when,
                        PrefetchSink &sink)
{
    int64_t delta = int64_t(vaddr) - int64_t(s.lastAddr);
    s.lastAddr = vaddr;
    if (delta == 0)
        return;

    // Step 2: prefetch control — confidence evaluation decides whether
    // the current policy is kept, adjusted, or abandoned.
    if (delta == s.stride) {
        if (s.confidence < 8) {
            ++s.confidence;
            if (s.confidence == p.trainConfidence)
                ++streamsTrained;
        }
    } else {
        if (s.confidence > 0) {
            --s.confidence; // policy questioned; stop issuing for now
        } else {
            s.stride = delta; // abandon and relearn
            s.nextPrefetch = 0;
        }
        return;
    }

    if (s.confidence >= p.trainConfidence)
        issueAhead(s, vaddr, when, sink);
}

void
StreamPrefetcher::issueAhead(Stream &s, Addr vaddr, Cycle when,
                             PrefetchSink &sink)
{
    // Step 3: execution. Run the prefetch pointer `distance` cache
    // lines (or stride units, for strides wider than a line) ahead of
    // the demand, bounded by maxDepth of lead.
    if (s.nextPrefetch == 0 ||
        (s.stride > 0 && s.nextPrefetch < vaddr) ||
        (s.stride < 0 && s.nextPrefetch > vaddr))
        s.nextPrefetch = vaddr + uint64_t(s.stride);

    const int64_t unit =
        std::max<int64_t>(std::llabs(s.stride), cacheLineBytes);
    const int64_t leadTarget = int64_t(p.distance) * unit;
    Addr target = s.stride > 0 ? vaddr + Addr(leadTarget)
                               : vaddr - Addr(leadTarget);
    const int64_t maxLeadBytes = int64_t(p.maxDepth) * unit;

    for (unsigned guard = 0; guard < 2 * p.maxDepth; ++guard) {
        int64_t lead = int64_t(s.nextPrefetch) - int64_t(vaddr);
        if (s.stride < 0)
            lead = -lead;
        if (lead > maxLeadBytes)
            break;
        bool pastTarget = s.stride > 0 ? s.nextPrefetch > target
                                       : s.nextPrefetch < target;
        if (pastTarget)
            break;

        Addr line = lineAlign(s.nextPrefetch);

        // Virtual cross-page prefetch: ask for the next page's
        // translation as soon as the stream steps over a boundary.
        if ((line >> 12) != (vaddr >> 12) && p.enableTlb) {
            sink.prefetchTranslation(line, when);
            ++tlbPrefetches;
        }

        bool toL1 = p.enableL1;
        if (sink.prefetchLine(line, toL1, when)) {
            if (toL1)
                ++issuedL1;
            else
                ++issuedL2;
        } else {
            ++droppedUntranslatable;
            // Cannot run past an untranslated page; stall the stream
            // here — the demand stream will re-trigger us later.
            break;
        }
        s.nextPrefetch += uint64_t(s.stride);
    }
}

void
StreamPrefetcher::snapSave(SnapWriter &w) const
{
    w.u64(streams.size());
    for (const Stream &s : streams) {
        w.b(s.valid);
        w.u64(s.lastAddr);
        w.i64(s.stride);
        w.u32(s.confidence);
        w.u64(s.nextPrefetch);
        w.u64(s.lastUse);
    }
    w.u64(useClock);
    stats.snapSave(w);
}

void
StreamPrefetcher::snapLoad(SnapReader &r)
{
    if (r.u64() != streams.size())
        throw SnapError("snapshot prefetcher geometry does not match");
    for (Stream &s : streams) {
        s.valid = r.b();
        s.lastAddr = r.u64();
        s.stride = r.i64();
        s.confidence = r.u32();
        s.nextPrefetch = r.u64();
        s.lastUse = r.u64();
    }
    useClock = r.u64();
    stats.snapLoad(r);
}

} // namespace xt910
