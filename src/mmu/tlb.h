/**
 * @file
 * The XT-910 multi-size multi-level TLB (§V.D): a fully-associative
 * micro-TLB backed by a 4-way set-associative joint TLB (jTLB). Every
 * entry carries a page-size property (4K / 2M / 1G). The jTLB can only
 * be probed with one page-size index at a time, so a lookup tries the
 * 4K index first, then 2M, then 1G — each extra probe costs a cycle,
 * which the lookup result reports.
 */

#ifndef XT910_MMU_TLB_H
#define XT910_MMU_TLB_H

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Supported page sizes, as log2 of bytes. */
enum class PageSize : uint8_t
{
    Page4K = 12,
    Page2M = 21,
    Page1G = 30,
};

constexpr unsigned
pageShift(PageSize s)
{
    return unsigned(s);
}

/** A translation held by the TLB. */
struct TlbEntry
{
    bool valid = false;
    Addr vpn = 0;          ///< virtual page number (at its page size)
    Addr ppn = 0;          ///< physical page number
    PageSize size = PageSize::Page4K;
    Asid asid = 0;
    bool global = false;
    uint64_t lastUse = 0;
};

/** TLB geometry. */
struct TlbParams
{
    unsigned microEntries = 32;
    unsigned jtlbSets = 256;   ///< per-way sets (4K-index space)
    unsigned jtlbWays = 4;     ///< paper: jTLB is 4-way
};

/** Result of a TLB lookup. */
struct TlbLookup
{
    Addr pa = 0;
    PageSize size = PageSize::Page4K;
    bool microHit = false;
    unsigned jtlbProbes = 0;   ///< index types tried (1..3) on jTLB hit
};

/** See file comment. */
class Tlb
{
  public:
    Tlb(const TlbParams &p, const std::string &name);

    /** Translate @p va under @p asid; nullopt on full miss. */
    std::optional<TlbLookup> lookup(Addr va, Asid asid, Cycle now);

    /** Install a translation (fills jTLB; micro refilled on next hit). */
    void insert(Addr va, Addr pa, PageSize size, Asid asid,
                bool global = false);

    /** Drop everything (ASID rollover / xt.tlb.iall / satp swap). */
    void flushAll();

    /** Drop entries belonging to @p asid (xt.tlb.iasid). */
    void flushAsid(Asid asid);

    /** Drop any entry translating @p va (sfence.vma / broadcast). */
    void flushVa(Addr va);

    const TlbParams &params() const { return p; }

    /** Serialize every entry (micro + jTLB), LRU clock and counters. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter microHits;
    Counter jtlbHits;
    Counter misses;
    Counter flushes;      ///< full flushes
    Counter asidFlushes;  ///< per-ASID flushes
    Counter refills;

  private:
    bool match(const TlbEntry &e, Addr va, Asid asid) const;
    void microFill(const TlbEntry &e, Cycle now);
    unsigned jtlbIndex(Addr va, PageSize size) const;

    TlbParams p;
    std::vector<TlbEntry> micro;
    std::vector<TlbEntry> jtlb;   ///< sets x ways
    uint64_t useClock = 0;
};

} // namespace xt910

#endif // XT910_MMU_TLB_H
