#include "mmu/tlb.h"

#include "common/bitutil.h"
#include "common/log.h"
#include "common/snapio.h"

namespace xt910
{

Tlb::Tlb(const TlbParams &p_, const std::string &name)
    : stats(name),
      microHits(stats, "micro_hits", "micro-TLB hits"),
      jtlbHits(stats, "jtlb_hits", "joint-TLB hits"),
      misses(stats, "misses", "full TLB misses (page walk needed)"),
      flushes(stats, "flushes", "full flushes"),
      asidFlushes(stats, "asid_flushes", "per-ASID flushes"),
      refills(stats, "refills", "entries installed"),
      p(p_)
{
    xt_assert(isPow2(p.jtlbSets), "jTLB set count must be a power of 2");
    micro.resize(p.microEntries);
    jtlb.resize(size_t(p.jtlbSets) * p.jtlbWays);
}

bool
Tlb::match(const TlbEntry &e, Addr va, Asid asid) const
{
    if (!e.valid)
        return false;
    if (!e.global && e.asid != asid)
        return false;
    return (va >> pageShift(e.size)) == e.vpn;
}

unsigned
Tlb::jtlbIndex(Addr va, PageSize size) const
{
    return unsigned((va >> pageShift(size)) & (p.jtlbSets - 1));
}

void
Tlb::microFill(const TlbEntry &e, Cycle now)
{
    (void)now;
    TlbEntry *victim = &micro[0];
    for (TlbEntry &m : micro) {
        if (!m.valid) {
            victim = &m;
            break;
        }
        if (m.lastUse < victim->lastUse)
            victim = &m;
    }
    *victim = e;
    victim->lastUse = ++useClock;
}

std::optional<TlbLookup>
Tlb::lookup(Addr va, Asid asid, Cycle now)
{
    ++useClock;
    // Fully-associative micro-TLB: every entry compared against the VA
    // with its own page-size mask (§V.D).
    for (TlbEntry &e : micro) {
        if (match(e, va, asid)) {
            e.lastUse = useClock;
            ++microHits;
            TlbLookup r;
            r.size = e.size;
            r.pa = (e.ppn << pageShift(e.size)) |
                   (va & mask(pageShift(e.size)));
            r.microHit = true;
            return r;
        }
    }

    // jTLB: probed 4K index first, then 2M, then 1G.
    static constexpr PageSize order[3] = {
        PageSize::Page4K, PageSize::Page2M, PageSize::Page1G};
    for (unsigned probe = 0; probe < 3; ++probe) {
        PageSize sz = order[probe];
        unsigned set = jtlbIndex(va, sz);
        for (unsigned w = 0; w < p.jtlbWays; ++w) {
            TlbEntry &e = jtlb[size_t(set) * p.jtlbWays + w];
            if (e.size == sz && match(e, va, asid)) {
                e.lastUse = useClock;
                ++jtlbHits;
                // Hit refills the micro-TLB (paper: "the corresponding
                // entry of jTLB is refilled to micro-TLB on page hit").
                microFill(e, now);
                TlbLookup r;
                r.size = sz;
                r.pa = (e.ppn << pageShift(sz)) |
                       (va & mask(pageShift(sz)));
                r.jtlbProbes = probe + 1;
                return r;
            }
        }
    }

    ++misses;
    return std::nullopt;
}

void
Tlb::insert(Addr va, Addr pa, PageSize size, Asid asid, bool global)
{
    ++refills;
    TlbEntry e;
    e.valid = true;
    e.size = size;
    e.vpn = va >> pageShift(size);
    e.ppn = pa >> pageShift(size);
    e.asid = asid;
    e.global = global;
    e.lastUse = ++useClock;

    unsigned set = jtlbIndex(va, size);
    TlbEntry *victim = &jtlb[size_t(set) * p.jtlbWays];
    for (unsigned w = 0; w < p.jtlbWays; ++w) {
        TlbEntry &cand = jtlb[size_t(set) * p.jtlbWays + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (cand.lastUse < victim->lastUse)
            victim = &cand;
    }
    *victim = e;
    microFill(e, 0);
}

void
Tlb::flushAll()
{
    ++flushes;
    for (TlbEntry &e : micro)
        e.valid = false;
    for (TlbEntry &e : jtlb)
        e.valid = false;
}

void
Tlb::flushAsid(Asid asid)
{
    ++asidFlushes;
    for (TlbEntry &e : micro)
        if (e.asid == asid && !e.global)
            e.valid = false;
    for (TlbEntry &e : jtlb)
        if (e.asid == asid && !e.global)
            e.valid = false;
}

void
Tlb::flushVa(Addr va)
{
    for (TlbEntry &e : micro)
        if (e.valid && (va >> pageShift(e.size)) == e.vpn)
            e.valid = false;
    for (TlbEntry &e : jtlb)
        if (e.valid && (va >> pageShift(e.size)) == e.vpn)
            e.valid = false;
}

namespace
{

void
saveEntries(SnapWriter &w, const std::vector<TlbEntry> &v)
{
    w.u64(v.size());
    for (const TlbEntry &e : v) {
        w.b(e.valid);
        w.u64(e.vpn);
        w.u64(e.ppn);
        w.u8(uint8_t(e.size));
        w.u16(e.asid);
        w.b(e.global);
        w.u64(e.lastUse);
    }
}

void
loadEntries(SnapReader &r, std::vector<TlbEntry> &v)
{
    if (r.u64() != v.size())
        throw SnapError("snapshot TLB geometry does not match");
    for (TlbEntry &e : v) {
        e.valid = r.b();
        e.vpn = r.u64();
        e.ppn = r.u64();
        uint8_t sz = r.u8();
        if (sz != uint8_t(PageSize::Page4K) &&
            sz != uint8_t(PageSize::Page2M) &&
            sz != uint8_t(PageSize::Page1G))
            throw SnapError("corrupt snapshot: bad TLB page size");
        e.size = PageSize(sz);
        e.asid = r.u16();
        e.global = r.b();
        e.lastUse = r.u64();
    }
}

} // namespace

void
Tlb::snapSave(SnapWriter &w) const
{
    saveEntries(w, micro);
    saveEntries(w, jtlb);
    w.u64(useClock);
    stats.snapSave(w);
}

void
Tlb::snapLoad(SnapReader &r)
{
    loadEntries(r, micro);
    loadEntries(r, jtlb);
    useClock = r.u64();
    stats.snapLoad(r);
}

} // namespace xt910
