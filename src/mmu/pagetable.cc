#include "mmu/pagetable.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace xt910
{

namespace
{

constexpr unsigned levelShift[3] = {12, 21, 30}; // VPN[0..2] shifts

unsigned
vpn(Addr va, unsigned level)
{
    return unsigned((va >> levelShift[level]) & 0x1ff);
}

} // namespace

WalkResult
walkSv39(const Memory &mem, Addr root, Addr va)
{
    WalkResult r;
    Addr table = root;
    for (int level = 2; level >= 0; --level) {
        Addr pteAddr = table + Addr(vpn(va, unsigned(level))) * 8;
        uint64_t entry = mem.read(pteAddr, 8);
        r.pteAddr[r.levels] = pteAddr;
        ++r.levels;
        if (!(entry & pte::V))
            return r; // fault
        Addr ppn = bits(entry, 53, 10);
        if (entry & pte::rwx) {
            // Leaf at this level: page size follows the level.
            unsigned shift = levelShift[level];
            r.ok = true;
            r.size = level == 2   ? PageSize::Page1G
                     : level == 1 ? PageSize::Page2M
                                  : PageSize::Page4K;
            r.pa = (ppn << 12 & ~mask(shift)) | (va & mask(shift));
            return r;
        }
        table = ppn << 12;
    }
    return r; // non-leaf at level 0: fault
}

PageTableBuilder::PageTableBuilder(Memory &mem_, Addr tableBase)
    : mem(mem_), base(tableBase), next(tableBase)
{
    xt_assert(tableBase % 4096 == 0, "table base must be page aligned");
}

Addr
PageTableBuilder::allocTable()
{
    Addr t = next;
    next += 4096;
    // Zero the new table.
    static const uint8_t zeros[4096] = {};
    mem.writeBytes(t, zeros, sizeof(zeros));
    return t;
}

Addr
PageTableBuilder::createRoot()
{
    return allocTable();
}

void
PageTableBuilder::map(Addr root, Addr va, Addr pa, PageSize size,
                      uint64_t flags)
{
    unsigned leafLevel = size == PageSize::Page1G   ? 2
                         : size == PageSize::Page2M ? 1
                                                    : 0;
    xt_assert((va & mask(pageShift(size))) == 0, "va not page aligned");
    xt_assert((pa & mask(pageShift(size))) == 0, "pa not page aligned");

    Addr table = root;
    for (int level = 2; level > int(leafLevel); --level) {
        Addr pteAddr = table + Addr(vpn(va, unsigned(level))) * 8;
        uint64_t entry = mem.read(pteAddr, 8);
        if (!(entry & pte::V)) {
            Addr sub = allocTable();
            entry = ((sub >> 12) << 10) | pte::V; // non-leaf pointer
            mem.write(pteAddr, 8, entry);
        } else {
            xt_assert(!(entry & pte::rwx),
                      "remapping across an existing huge-page leaf");
        }
        table = bits(entry, 53, 10) << 12;
    }
    Addr pteAddr = table + Addr(vpn(va, leafLevel)) * 8;
    uint64_t entry = ((pa >> 12) << 10) | flags | pte::V;
    mem.write(pteAddr, 8, entry);
}

void
PageTableBuilder::identityMap(Addr root, Addr start, uint64_t len,
                              PageSize size)
{
    uint64_t step = 1ull << pageShift(size);
    Addr va = start & ~mask(pageShift(size));
    Addr end = start + len;
    for (; va < end; va += step)
        map(root, va, va, size);
}

AsidAllocator::AsidAllocator(unsigned bits_) : bits(bits_)
{
    xt_assert(bits >= 1 && bits <= 16, "ASID width must be 1..16 bits");
}

AsidAllocator::Acquire
AsidAllocator::acquire(uint64_t ctx, Tlb &tlb)
{
    const uint64_t maxAsid = (1ull << bits) - 1;
    auto it = table.find(ctx);
    if (it != table.end() && it->second.first == generation)
        return {it->second.second, false};

    if (nextAsid > maxAsid) {
        // Rollover: hardware ASIDs exhausted. Flush the TLB and start a
        // new generation (the event the 16-bit ASID makes rare, §V.E).
        tlb.flushAll();
        ++rollovers;
        ++generation;
        nextAsid = 1;
    }
    Asid a = Asid(nextAsid++);
    table[ctx] = {generation, a};
    return {a, true};
}

} // namespace xt910
