#include "mmu/pmp.h"

#include "common/log.h"

namespace xt910
{

Pmp::Pmp(unsigned numRegions)
    : stats("pmp"),
      checks(stats, "checks", "PMP permission checks"),
      denials(stats, "denials", "accesses denied"),
      regions(numRegions)
{
    xt_assert(numRegions == 8 || numRegions == 16,
              "XT-910 supports 8 or 16 PMP regions (§II)");
}

void
Pmp::setRegion(unsigned idx, const PmpRegion &r)
{
    xt_assert(idx < regions.size(), "PMP region index out of range");
    xt_assert(!regions[idx].locked, "cannot reprogram a locked region");
    regions[idx] = r;
}

bool
Pmp::inactive() const
{
    for (const PmpRegion &r : regions)
        if (r.size != 0)
            return false;
    return true;
}

bool
Pmp::check(Addr addr, unsigned bytes, PmpAccess acc, PrivMode mode) const
{
    ++checks;
    if (inactive())
        return true;
    for (const PmpRegion &r : regions) {
        if (!r.contains(addr, bytes))
            continue;
        // M-mode bypasses unlocked regions.
        if (mode == PrivMode::Machine && !r.locked)
            return true;
        bool ok = r.allows(acc);
        if (!ok)
            ++denials;
        return ok;
    }
    // No match: M-mode allowed, lower privileges denied.
    if (mode == PrivMode::Machine)
        return true;
    ++denials;
    return false;
}

} // namespace xt910
