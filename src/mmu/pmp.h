/**
 * @file
 * Physical Memory Protection (§II: "XT-910 includes a standard 8-16
 * region PMP"): NAPOT/TOR-style regions with R/W/X permissions checked
 * on every physical access in machine-supervised modes.
 */

#ifndef XT910_MMU_PMP_H
#define XT910_MMU_PMP_H

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{

/** Access kind being checked. */
enum class PmpAccess : uint8_t { Read, Write, Exec };

/** One PMP region. */
struct PmpRegion
{
    Addr base = 0;        ///< inclusive start
    uint64_t size = 0;    ///< bytes (0 = disabled)
    bool r = false, w = false, x = false;
    bool locked = false;  ///< applies to M-mode too

    bool
    contains(Addr a, unsigned bytes) const
    {
        return size != 0 && a >= base && a + bytes <= base + size;
    }

    bool
    allows(PmpAccess acc) const
    {
        switch (acc) {
          case PmpAccess::Read: return r;
          case PmpAccess::Write: return w;
          case PmpAccess::Exec: return x;
        }
        return false;
    }
};

/** The PMP unit: 8 or 16 regions, priority ordered (lowest wins). */
class Pmp
{
  public:
    explicit Pmp(unsigned numRegions = 16);

    /** Program region @p idx. */
    void setRegion(unsigned idx, const PmpRegion &r);

    const PmpRegion &region(unsigned idx) const { return regions[idx]; }
    unsigned numRegions() const { return unsigned(regions.size()); }

    /**
     * Check an access. Matching follows the RISC-V priority rule: the
     * lowest-numbered matching region decides; with no match, M-mode
     * is allowed and S/U modes are denied (when any region is active).
     */
    bool check(Addr addr, unsigned bytes, PmpAccess acc,
               PrivMode mode) const;

    /** True when no region is programmed (PMP effectively off). */
    bool inactive() const;

    mutable StatGroup stats;
    mutable Counter checks;
    mutable Counter denials;

  private:
    std::vector<PmpRegion> regions;
};

} // namespace xt910

#endif // XT910_MMU_PMP_H
