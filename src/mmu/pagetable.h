/**
 * @file
 * SV39 page tables: a hardware page-table walker and an "OS-lite"
 * builder that constructs real three-level tables in simulated memory.
 * XT-910's MMU provides 3 table levels, each mappable as a leaf, to
 * serve Linux's 4 KiB / 2 MiB / 1 GiB huge-page requirements (§V.E).
 */

#ifndef XT910_MMU_PAGETABLE_H
#define XT910_MMU_PAGETABLE_H

#include "func/memory.h"
#include "mmu/tlb.h"

namespace xt910
{

/** SV39 PTE flag bits. */
namespace pte
{
constexpr uint64_t V = 1 << 0;
constexpr uint64_t R = 1 << 1;
constexpr uint64_t W = 1 << 2;
constexpr uint64_t X = 1 << 3;
constexpr uint64_t U = 1 << 4;
constexpr uint64_t G = 1 << 5;
constexpr uint64_t A = 1 << 6;
constexpr uint64_t D = 1 << 7;
constexpr uint64_t rwx = R | W | X;
} // namespace pte

/** Result of a page-table walk. */
struct WalkResult
{
    bool ok = false;
    Addr pa = 0;
    PageSize size = PageSize::Page4K;
    unsigned levels = 0;   ///< memory accesses the walk performed
    Addr pteAddr[3] = {0, 0, 0}; ///< PTE addresses touched, in order
};

/**
 * Walk the SV39 table rooted at physical @p root for @p va.
 * Pure content lookup; the caller charges timing for `levels`
 * accesses.
 */
WalkResult walkSv39(const Memory &mem, Addr root, Addr va);

/** See file comment: builds SV39 tables in simulated memory. */
class PageTableBuilder
{
  public:
    /** Tables are bump-allocated from @p tableBase upward. */
    PageTableBuilder(Memory &mem, Addr tableBase);

    /** Allocate a new (empty) root table; returns its physical addr. */
    Addr createRoot();

    /** Map one page of @p size at @p va -> @p pa (RWX by default). */
    void map(Addr root, Addr va, Addr pa, PageSize size,
             uint64_t flags = pte::rwx | pte::U | pte::A | pte::D);

    /** Identity-map [start, start+len) with pages of @p size. */
    void identityMap(Addr root, Addr start, uint64_t len, PageSize size);

    /** Bytes of table memory consumed so far. */
    uint64_t tableBytes() const { return next - base; }

  private:
    Addr allocTable();

    Memory &mem;
    Addr base;
    Addr next;
};

/**
 * Hardware-ASID allocator modelling the §V.E experiment: with a w-bit
 * ASID, switching among more than 2^w address spaces forces rollover
 * flushes. The 16-bit ASID of XT-910 makes those ~10x rarer than the
 * narrower ASIDs it replaces.
 */
class AsidAllocator
{
  public:
    explicit AsidAllocator(unsigned bits);

    struct Acquire
    {
        Asid asid;
        bool flushed;   ///< TLB had to be flushed (rollover)
    };

    /** Get the hardware ASID for software context @p ctx. */
    Acquire acquire(uint64_t ctx, Tlb &tlb);

    uint64_t flushCount() const { return rollovers; }
    unsigned asidBits() const { return bits; }

  private:
    unsigned bits;
    uint64_t nextAsid = 1;      ///< 0 reserved
    uint64_t generation = 1;
    // ctx -> (generation, asid)
    std::unordered_map<uint64_t, std::pair<uint64_t, Asid>> table;
    uint64_t rollovers = 0;
};

} // namespace xt910

#endif // XT910_MMU_PAGETABLE_H
