/**
 * @file
 * The REST surface of xt910d: translates HTTP requests into JobManager
 * calls and job state into JSON documents. Routes:
 *
 *   GET    /healthz                liveness probe
 *   GET    /v1/version             build identity + schema version
 *   GET    /v1/statsz              service counters
 *   POST   /v1/jobs                submit (JSON JobSpec body)
 *   GET    /v1/jobs                list all jobs
 *   GET    /v1/jobs/<id>           one job's status
 *   GET    /v1/jobs/<id>/stream    chunked JSONL interval stream
 *   GET    /v1/jobs/<id>/stats     final stats document
 *   DELETE /v1/jobs/<id>           cancel
 *   POST   /v1/admin/shutdown      graceful drain (when enabled)
 *
 * Clients identify themselves with the X-Api-Key header (absent =
 * "anonymous"); the key is the quota bucket, not an authentication
 * secret. Admission rejections are 429 with a Retry-After header.
 */

#ifndef XT910_SERVE_API_H
#define XT910_SERVE_API_H

#include <functional>
#include <string>

#include "serve/http.h"
#include "serve/jobs.h"

namespace xt910
{
namespace serve
{

struct ApiOptions
{
    /** Invoked (once) by POST /v1/admin/shutdown; empty = 404. */
    std::function<void()> requestShutdown;
    /** Tool name reported by /v1/version. */
    std::string toolName = "xt910d";
};

/** Build the HttpServer handler for @p jobs. */
HttpHandler makeApiHandler(JobManager &jobs, const ApiOptions &opts);

} // namespace serve
} // namespace xt910

#endif // XT910_SERVE_API_H
