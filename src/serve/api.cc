#include "serve/api.h"

#include <atomic>
#include <memory>

#include "common/json.h"
#include "common/version.h"

namespace xt910
{
namespace serve
{

namespace
{

std::string
errorDoc(const std::string &msg)
{
    return "{\"error\": \"" + json::escape(msg) + "\"}\n";
}

const char *const kJson = "application/json";
const char *const kJsonl = "application/jsonl";

void
respondError(HttpResponseWriter &w, int status, const std::string &msg,
             unsigned retryAfterSecs = 0)
{
    std::vector<std::pair<std::string, std::string>> extra;
    if (retryAfterSecs)
        extra.emplace_back("Retry-After",
                           std::to_string(retryAfterSecs));
    w.respond(status, kJson, errorDoc(msg), extra);
}

void
handleSubmit(JobManager &jobs, const HttpRequest &req,
             HttpResponseWriter &w)
{
    json::Value v;
    std::string err;
    if (!json::parse(req.body, v, &err)) {
        respondError(w, 400, "invalid JSON body: " + err);
        return;
    }
    JobSpec spec;
    if (!JobSpec::fromJson(v, spec, err)) {
        respondError(w, 400, err);
        return;
    }
    // The header is the quota identity; a body-supplied client name is
    // allowed (state-file replay uses it) but the header wins.
    const std::string key = req.header("x-api-key");
    if (!key.empty())
        spec.client = key;

    SubmitResult res = jobs.submit(spec);
    if (!res.ok) {
        respondError(w, res.httpStatus, res.error, res.retryAfterSecs);
        return;
    }
    w.respond(res.httpStatus, kJson,
              "{\"id\": \"" + json::escape(res.id) +
                  "\", \"cached\": " + (res.cached ? "true" : "false") +
                  "}\n",
              {{"Location", "/v1/jobs/" + res.id}});
}

void
handleStream(JobManager &jobs, const std::string &id,
             HttpResponseWriter &w)
{
    // Probe before committing to a chunked head, so an unknown id can
    // still get a clean 404.
    JobInfo info;
    if (!jobs.get(id, info)) {
        respondError(w, 404, "no such job");
        return;
    }
    w.beginChunked(200, kJsonl);
    size_t cursor = 0;
    bool done = false;
    while (!done) {
        std::vector<std::string> lines;
        if (!jobs.readStream(id, cursor, lines, done))
            break;
        for (const std::string &ln : lines)
            if (!w.writeChunk(ln))
                return; // client went away; nothing left to tell it
    }
    w.endChunked();
}

} // namespace

HttpHandler
makeApiHandler(JobManager &jobs, const ApiOptions &opts)
{
    auto shutdownOnce = std::make_shared<std::atomic<bool>>(false);
    return [&jobs, opts, shutdownOnce](const HttpRequest &req,
                                       HttpResponseWriter &w) {
        const std::string &m = req.method;
        const std::string &p = req.path;

        if (p == "/healthz") {
            if (m != "GET")
                return respondError(w, 405, "method not allowed");
            return w.respond(200, kJson, "{\"ok\": true}\n");
        }
        if (p == "/v1/version") {
            if (m != "GET")
                return respondError(w, 405, "method not allowed");
            return w.respond(
                200, kJson,
                "{\"tool\": \"" + json::escape(opts.toolName) +
                    "\", \"git\": \"" + json::escape(gitDescribe()) +
                    "\", \"result_schema\": " +
                    std::to_string(resultSchemaVersion) + "}\n");
        }
        if (p == "/v1/statsz") {
            if (m != "GET")
                return respondError(w, 405, "method not allowed");
            return w.respond(200, kJson, jobs.countersJson() + "\n");
        }
        if (p == "/v1/admin/shutdown") {
            if (m != "POST")
                return respondError(w, 405, "method not allowed");
            if (!opts.requestShutdown)
                return respondError(w, 404, "shutdown not enabled");
            w.respond(202, kJson, "{\"draining\": true}\n");
            if (!shutdownOnce->exchange(true))
                opts.requestShutdown();
            return;
        }
        if (p == "/v1/jobs") {
            if (m == "POST")
                return handleSubmit(jobs, req, w);
            if (m == "GET") {
                std::string doc = "{\"jobs\": [";
                bool first = true;
                for (const JobInfo &j : jobs.list()) {
                    if (!first)
                        doc += ", ";
                    first = false;
                    doc += j.statusJson();
                }
                doc += "]}\n";
                return w.respond(200, kJson, doc);
            }
            return respondError(w, 405, "method not allowed");
        }
        if (p.rfind("/v1/jobs/", 0) == 0) {
            std::string rest = p.substr(9);
            std::string sub;
            size_t slash = rest.find('/');
            if (slash != std::string::npos) {
                sub = rest.substr(slash + 1);
                rest.resize(slash);
            }
            const std::string &id = rest;
            if (id.empty())
                return respondError(w, 404, "no such job");

            if (sub.empty() && m == "GET") {
                JobInfo info;
                if (!jobs.get(id, info))
                    return respondError(w, 404, "no such job");
                return w.respond(200, kJson, info.statusJson() + "\n");
            }
            if (sub.empty() && m == "DELETE") {
                std::string err;
                if (!jobs.cancel(id, err)) {
                    int status = err == "no such job" ? 404 : 409;
                    return respondError(w, status, err);
                }
                return w.respond(202, kJson,
                                 "{\"cancelling\": true}\n");
            }
            if (sub == "stats" && m == "GET") {
                std::string doc;
                if (jobs.stats(id, doc))
                    return w.respond(200, kJson, doc);
                JobInfo info;
                if (!jobs.get(id, info))
                    return respondError(w, 404, "no such job");
                return respondError(w, 409,
                                    std::string("job is ") +
                                        jobStateName(info.state) +
                                        ", stats need state 'done'");
            }
            if (sub == "stream" && m == "GET")
                return handleStream(jobs, id, w);
            return respondError(w, sub.empty() ? 405 : 404,
                                sub.empty() ? "method not allowed"
                                            : "no such resource");
        }
        respondError(w, 404, "no such resource");
    };
}

} // namespace serve
} // namespace xt910
