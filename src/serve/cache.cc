#include "serve/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/snapio.h"
#include "common/version.h"

namespace xt910
{
namespace serve
{

namespace
{

uint64_t
fnvStr(uint64_t h, const std::string &s)
{
    h = fnv1a(s.data(), s.size(), h);
    uint8_t z = 0; // delimit, so ("ab","c") != ("a","bc")
    return fnv1a(&z, 1, h);
}

uint64_t
fnvU64(uint64_t h, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = uint8_t(v >> (8 * i));
    return fnv1a(b, 8, h);
}

} // namespace

uint64_t
workloadHash(const std::string &name, const Program &prog,
             uint64_t expected, const WorkloadOptions &wo)
{
    uint64_t h = fnv1a(nullptr, 0);
    h = fnvStr(h, name);
    h = fnvU64(h, prog.base);
    h = fnvU64(h, prog.entry);
    h = fnv1a(prog.image.data(), prog.image.size(), h);
    h = fnvU64(h, expected);
    h = fnvU64(h, wo.extended ? 1 : 0);
    h = fnvU64(h, wo.vector ? 1 : 0);
    h = fnvU64(h, wo.scale);
    h = fnvU64(h, wo.streamBytes);
    return h;
}

ResultCache::ResultCache(std::string dir_) : dir(std::move(dir_))
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
}

std::string
ResultCache::key(uint64_t workloadHash, uint64_t configHash)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "v%u-%016llx-%016llx",
                  resultSchemaVersion,
                  static_cast<unsigned long long>(workloadHash),
                  static_cast<unsigned long long>(configHash));
    return buf;
}

std::string
ResultCache::path(const std::string &key) const
{
    return dir + "/" + key + ".json";
}

bool
ResultCache::lookup(const std::string &key, std::string &doc) const
{
    if (!enabled())
        return false;
    std::ifstream is(path(key), std::ios::binary);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    std::string bytes = os.str();
    // A torn write can't happen (atomic rename) but a corrupted or
    // hand-edited entry can; validate before serving it as truth.
    if (bytes.empty() || !json::validate(bytes))
        return false;
    doc = std::move(bytes);
    return true;
}

void
ResultCache::store(const std::string &key, const std::string &doc) const
{
    if (!enabled())
        return;
    try {
        snapWriteFileAtomic(path(key), doc.data(), doc.size());
    } catch (const SnapError &) {
        // Cache persistence is best-effort; the job still succeeded.
    }
}

} // namespace serve
} // namespace xt910
