/**
 * @file
 * The canonical machine-readable run reports. xt910-run and the xt910d
 * job runner both compose their stats artifacts through these two
 * functions, which is what makes the service's acceptance property
 * hold by construction: the stats JSON fetched from
 * GET /v1/jobs/<id>/stats is byte-identical to what a direct
 * `xt910-run --stats-json` of the same workload and configuration
 * writes, and the streamed JSONL summary line matches the one
 * xt910-run appends in `--stats-interval` mode.
 *
 * Anything host-dependent (wall-clock, MIPS) is deliberately excluded
 * — these documents are compared byte-for-byte across processes and
 * cached persistently.
 */

#ifndef XT910_SERVE_REPORT_H
#define XT910_SERVE_REPORT_H

#include <iosfwd>
#include <string>

#include "core/system.h"

namespace xt910
{
namespace serve
{

/** The pretty single-document stats JSON (`--stats-json` without
 *  `--stats-interval`). */
void writeRunStatsJson(std::ostream &os, const std::string &workload,
                       const RunResult &r, bool checksumOk,
                       const System &sys);

/** The compact JSONL summary record appended after the interval
 *  stream (`--stats-json` with `--stats-interval`). */
void writeRunSummaryLine(std::ostream &os, const std::string &workload,
                         const RunResult &r, bool checksumOk,
                         const System &sys);

} // namespace serve
} // namespace xt910

#endif // XT910_SERVE_REPORT_H
