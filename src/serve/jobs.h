/**
 * @file
 * The job scheduler behind the xt910d API: a bounded two-level FIFO
 * queue (interactive ahead of batch) feeding a pool of simulation
 * workers, with per-client admission control, a persistent
 * content-addressed result cache consulted at submit time, cooperative
 * cancellation through the run loop's step hook (the same mechanism
 * the hardened farm's deadlines use), and graceful drain: on shutdown
 * every in-flight job checkpoints itself via src/snap and the whole
 * pending set is persisted, so a restarted daemon resumes exactly
 * where the old one stopped.
 *
 * Determinism contract: a job's final stats document is composed by
 * serve::writeRunStatsJson from its own System, so it is byte-equal to
 * a direct `xt910-run --stats-json` of the same workload and
 * configuration; a cache hit returns those identical bytes without
 * running anything.
 */

#ifndef XT910_SERVE_JOBS_H
#define XT910_SERVE_JOBS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "serve/cache.h"

namespace xt910
{
namespace serve
{

/** Lifecycle of a job. */
enum class JobState : uint8_t
{
    Queued,    ///< admitted, waiting for a worker
    Running,   ///< a worker is simulating it
    Done,      ///< finished; stats document available
    Failed,    ///< simulation threw, watchdog fired, or deadline hit
    Cancelled, ///< client cancelled before completion
};

const char *jobStateName(JobState s);

/** Scheduling class: interactive jobs are always dequeued first. */
enum class JobPriority : uint8_t
{
    Interactive = 0,
    Batch = 1,
};

/** Everything a client can specify about a run. */
struct JobSpec
{
    /** Registry workload name; exactly one of workload/source is set. */
    std::string workload;
    /** xtfuzz reproducer text (the textual program format). */
    std::string source;
    std::string preset = "xt910"; ///< xt910|u74|a73|mcu
    unsigned cores = 1;
    bool extended = false;
    bool useVector = false;
    unsigned scale = 1;
    unsigned l2Kib = 0;        ///< 0 = preset default
    unsigned dramLatency = 0;  ///< 0 = preset default
    bool noPrefetch = false;
    uint64_t maxInsts = 0;     ///< 0 = system default
    uint64_t maxCycles = 0;    ///< 0 = unlimited
    uint64_t statsInterval = 0; ///< JSONL sample period (0 = off)
    /** Sampled mode (src/sample) when > 0: functional fast-forward +
     *  detailed timing on sampled intervals of this many instructions.
     *  Requires cores == 1; incompatible with stats_interval and
     *  max_cycles. The stats document is the sampled-mode report
     *  (mode: "sampled"), cached under a key that folds all four
     *  sampling knobs, so it never collides with a full run. */
    uint64_t sampleInterval = 0;
    unsigned sampleCount = 0;  ///< measured intervals (0 = all)
    uint64_t sampleWarmup = 0; ///< detailed warm-up insts per interval
    uint64_t sampleSeed = 0;   ///< 0 = evenly spaced selection
    double timeoutSecs = 0.0;  ///< per-job wall-clock budget (0 = off)
    JobPriority priority = JobPriority::Interactive;
    std::string client = "anonymous"; ///< from the X-Api-Key header

    /** The name runs report (workload, or "xtfuzz-<seed>"). */
    std::string displayName() const;

    /** Serialize for the API echo and the drain state file. */
    std::string toJson() const;

    /**
     * Parse from a request body / state file. Unknown fields and
     * wrong types are errors (a service must not silently ignore a
     * misspelled knob). Does not validate workload existence — the
     * manager does that at submit.
     */
    static bool fromJson(const json::Value &v, JobSpec &out,
                         std::string &err);
};

/** Public snapshot of one job (what GET /v1/jobs/<id> reports). */
struct JobInfo
{
    std::string id;
    JobState state = JobState::Queued;
    std::string name;     ///< spec.displayName()
    std::string client;
    JobPriority priority = JobPriority::Interactive;
    bool cached = false;  ///< served from the result cache
    uint64_t progressInsts = 0;
    uint64_t insts = 0, cycles = 0; ///< final (Done only)
    bool checksumOk = false;
    std::string error;

    /** The status document the API returns. */
    std::string statusJson() const;
};

/** Monotonic service counters (GET /v1/statsz). */
struct ServeCounters
{
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> cacheHits{0};
    std::atomic<uint64_t> simulated{0}; ///< actual System runs
    std::atomic<uint64_t> rejectedQueueFull{0};
    std::atomic<uint64_t> rejectedQuota{0};

    std::string json(size_t queued, size_t running) const;
};

struct JobManagerConfig
{
    unsigned simJobs = 1;     ///< simulation worker threads
    size_t queueMax = 64;     ///< bounded FIFO depth (both classes)
    size_t clientQuota = 8;   ///< queued+running jobs per client
    std::string cacheDir;     ///< "" disables the result cache
    std::string stateDir;     ///< "" disables drain persistence
};

/** Outcome of an admission attempt. */
struct SubmitResult
{
    bool ok = false;
    std::string id;       ///< valid when ok
    bool cached = false;  ///< ok and served from cache (already Done)
    int httpStatus = 500; ///< 201 / 400 / 429
    std::string error;
    unsigned retryAfterSecs = 0; ///< nonzero with 429
};

/** See file comment. */
class JobManager
{
  public:
    explicit JobManager(const JobManagerConfig &cfg);
    ~JobManager(); ///< implies drain() without persistence of runners

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /** Validate, consult the cache, and enqueue (or reject). */
    SubmitResult submit(const JobSpec &spec);

    /** Snapshot a job; false when the id is unknown. */
    bool get(const std::string &id, JobInfo &out) const;

    /** Snapshot every job, submission order. */
    std::vector<JobInfo> list() const;

    /** The final stats document; false unless the job is Done. */
    bool stats(const std::string &id, std::string &doc) const;

    /**
     * Cancel: a queued job is dropped immediately; a running job is
     * interrupted cooperatively at its next step-hook poll. False
     * with @p err when unknown or already finished.
     */
    bool cancel(const std::string &id, std::string &err);

    /**
     * Read the job's JSONL stream from @p cursor on: appends any new
     * complete lines to @p out, advances @p cursor, sets @p done once
     * the stream is complete. Blocks up to ~250 ms waiting for data,
     * so chunked-response writers can loop on it without spinning.
     * False when the id is unknown.
     */
    bool readStream(const std::string &id, size_t &cursor,
                    std::vector<std::string> &out, bool &done) const;

    /**
     * Graceful shutdown: stop dispatching, checkpoint every running
     * job into stateDir via src/snap, persist the pending set + id
     * counter, and join the workers. Queued and checkpointed jobs are
     * re-admitted by a later restoreState() on the same stateDir.
     */
    void drain();

    /** Load a drained state file (if any) and re-enqueue its jobs. */
    void restoreState();

    size_t queueDepth() const;
    size_t runningCount() const;
    const ServeCounters &counters() const { return ctrs; }
    std::string countersJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
    ServeCounters ctrs;
};

} // namespace serve
} // namespace xt910

#endif // XT910_SERVE_JOBS_H
