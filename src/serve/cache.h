/**
 * @file
 * Persistent content-addressed result cache: the bench prewarm memo
 * generalized to disk. A finished job's stats document is stored under
 * a key derived from (result-schema version, workload hash, config
 * hash); a later submission of identical work gets the identical
 * bytes back without re-simulating. Correctness rests on the same
 * determinism contract the snapshot subsystem enforces — equal
 * workload bytes plus equal machine configuration imply an equal
 * stats document — so the key hashes the assembled program image
 * itself (not the workload *name*, whose builder may change) and
 * snap::configHash's machine-configuration digest.
 *
 * Entries are one file per key, written via the crash-safe atomic
 * rename helper; a torn or hand-corrupted entry fails JSON validation
 * on lookup and is treated as a miss.
 */

#ifndef XT910_SERVE_CACHE_H
#define XT910_SERVE_CACHE_H

#include <cstdint>
#include <string>

#include "workloads/workload.h"

namespace xt910
{

struct SystemConfig;

namespace serve
{

/**
 * FNV-1a digest of everything workload-side that determines a run's
 * result: the assembled image bytes, load/entry addresses, the
 * expected checksum, and the build options. @p name participates only
 * through the document it produces (the stats JSON embeds the
 * workload name), so it is hashed too.
 */
uint64_t workloadHash(const std::string &name, const Program &prog,
                      uint64_t expected, const WorkloadOptions &wo);

/** See file comment. */
class ResultCache
{
  public:
    /** @p dir "" disables the cache entirely. Creates @p dir. */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir.empty(); }

    /** Key string: "v<schema>-<workload-hash>-<config-hash>". */
    static std::string key(uint64_t workloadHash, uint64_t configHash);

    /** True + the stored bytes when a valid entry exists. */
    bool lookup(const std::string &key, std::string &doc) const;

    /** Atomically persist @p doc under @p key (no-op when disabled). */
    void store(const std::string &key, const std::string &doc) const;

  private:
    std::string path(const std::string &key) const;

    std::string dir;
};

} // namespace serve
} // namespace xt910

#endif // XT910_SERVE_CACHE_H
