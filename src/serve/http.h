/**
 * @file
 * A from-scratch, dependency-free HTTP/1.1 stack for the simulation
 * service: a blocking accept loop feeding a fixed pool of connection
 * workers (one request per connection, `Connection: close`), plus the
 * small client used by xt910-client and the tests. Only what the
 * xt910d API needs is implemented — request heads with
 * Content-Length bodies in, fixed or chunked (streaming) responses
 * out — but that subset is implemented strictly: bounded header/body
 * sizes, CRLF framing, case-insensitive header keys, and chunked
 * transfer-encoding decode on the client side.
 *
 * Threading model: serveForever() accepts on the caller's thread
 * (poll()ed so stop() can interrupt it) and hands sockets to the
 * worker pool; handlers therefore run concurrently and must be
 * thread-safe. A handler either calls respond() once, or
 * beginChunked() + writeChunk()* + endChunked() to stream.
 */

#ifndef XT910_SERVE_HTTP_H
#define XT910_SERVE_HTTP_H

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xt910
{
namespace serve
{

/** Socket/bind/protocol failures the serving layer cannot recover. */
class ServeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed request. Header keys are lower-cased. */
struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ...
    std::string path;     ///< target before '?', percent-decoded NOT
    std::string query;    ///< raw query string after '?' ("" if none)
    std::map<std::string, std::string> headers;
    std::string body;

    /** Lower-case header lookup; "" when absent. */
    std::string header(const std::string &key) const;
};

/**
 * Parse an HTTP/1.1 request head (everything up to and including the
 * blank line, CRLF line endings). Returns false with @p err set on
 * malformed input. The body is NOT consumed here.
 */
bool parseRequestHead(const std::string &head, HttpRequest &out,
                      std::string &err);

/** Reason phrase for the handful of status codes the API uses. */
const char *statusReason(int status);

/**
 * Response writer handed to the handler. Exactly one of respond() or
 * beginChunked()/writeChunk()/endChunked() must be used. Write
 * failures (client hung up) are sticky and surface as writeChunk()
 * returning false; respond() ignores them (there is nobody to tell).
 */
class HttpResponseWriter
{
  public:
    explicit HttpResponseWriter(int fd) : fd(fd) {}

    /** One-shot response with Content-Length framing. */
    void respond(int status, const std::string &contentType,
                 const std::string &body,
                 const std::vector<std::pair<std::string, std::string>>
                     &extraHeaders = {});

    /** Start a chunked (streaming) response. */
    void beginChunked(int status, const std::string &contentType);

    /** Stream one chunk; false when the client is gone. */
    bool writeChunk(const std::string &data);

    /** Terminate the chunked stream. */
    void endChunked();

    bool responded() const { return headerSent; }

  private:
    bool writeAll(const char *p, size_t n);

    int fd;
    bool headerSent = false;
    bool chunked = false;
    bool broken = false;
};

using HttpHandler =
    std::function<void(const HttpRequest &, HttpResponseWriter &)>;

/** See file comment. */
class HttpServer
{
  public:
    struct Options
    {
        std::string bindAddr = "127.0.0.1";
        uint16_t port = 0;          ///< 0 = ephemeral, see port()
        unsigned threads = 4;       ///< connection workers
        size_t maxHeaderBytes = 64 * 1024;
        size_t maxBodyBytes = 8 * 1024 * 1024;
        /** Per-socket recv timeout, so a stalled client cannot pin a
         *  worker forever. */
        unsigned recvTimeoutSecs = 30;
    };

    /** Binds and listens immediately; throws ServeError on failure. */
    HttpServer(const Options &opts, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** The bound port (resolves an ephemeral request). */
    uint16_t port() const { return boundPort; }

    /** Spawn the accept thread + worker pool. */
    void start();

    /** Stop accepting, drain queued connections, join everything.
     *  Idempotent; safe to call from any thread except a handler. */
    void stop();

  private:
    struct Impl;
    Impl *impl;
    uint16_t boundPort = 0;
};

// ------------------------------------------------------------------
// Client side (xt910-client, tests).
// ------------------------------------------------------------------

/** A complete client-side response. Header keys are lower-cased. */
struct ClientResponse
{
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
};

/**
 * One blocking HTTP/1.1 request. Handles Content-Length, chunked and
 * connection-close body framing. Returns false with @p err on any
 * transport or framing error (a non-2xx status is NOT an error).
 */
bool httpRequest(const std::string &host, uint16_t port,
                 const std::string &method, const std::string &target,
                 const std::vector<std::pair<std::string, std::string>>
                     &headers,
                 const std::string &body, ClientResponse &out,
                 std::string &err);

/**
 * Streaming variant: @p onBody is invoked with decoded body bytes as
 * they arrive (after chunked decode); return false from it to abort
 * the transfer early (not an error). @p status is set from the
 * response head before the first onBody call.
 */
bool httpRequestStream(
    const std::string &host, uint16_t port, const std::string &method,
    const std::string &target,
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &body, int &status,
    const std::function<bool(const char *, size_t)> &onBody,
    std::string &err);

} // namespace serve
} // namespace xt910

#endif // XT910_SERVE_HTTP_H
