#include "serve/report.h"

#include <ostream>

#include "common/json.h"

namespace xt910
{
namespace serve
{

void
writeRunStatsJson(std::ostream &os, const std::string &workload,
                  const RunResult &r, bool checksumOk,
                  const System &sys)
{
    os << "{\n  \"workload\": \"" << json::escape(workload)
       << "\",\n  \"insts\": " << r.insts
       << ",\n  \"cycles\": " << r.cycles
       << ",\n  \"ipc\": " << r.ipc()
       << ",\n  \"checksum_ok\": " << (checksumOk ? "true" : "false")
       << ",\n  \"stats\": ";
    sys.dumpStatsJson(os, true);
    os << "\n}\n";
}

void
writeRunSummaryLine(std::ostream &os, const std::string &workload,
                    const RunResult &r, bool checksumOk,
                    const System &sys)
{
    os << "{\"type\": \"summary\", \"workload\": \""
       << json::escape(workload) << "\", \"insts\": " << r.insts
       << ", \"cycles\": " << r.cycles << ", \"checksum_ok\": "
       << (checksumOk ? "true" : "false") << ", \"stats\": ";
    sys.dumpStatsJson(os, false);
    os << "}\n";
}

} // namespace serve
} // namespace xt910
