#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace xt910
{
namespace serve
{

namespace
{

std::string
lower(std::string s)
{
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Blocking send of the whole buffer; false on any error. */
bool
sendAll(int fd, const char *p, size_t n)
{
    while (n) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w <= 0) {
            if (w < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += size_t(w);
        n -= size_t(w);
    }
    return true;
}

/** Read until @p delim appears in @p buf (more bytes may follow it) or
 *  @p maxBytes is exceeded. Returns the delimiter position, npos on
 *  EOF/overrun/error. */
size_t
readUntil(int fd, std::string &buf, const char *delim, size_t maxBytes)
{
    const size_t dlen = std::strlen(delim);
    for (;;) {
        size_t at = buf.find(delim);
        if (at != std::string::npos)
            return at;
        if (buf.size() > maxBytes)
            return std::string::npos;
        char tmp[4096];
        ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
        if (r <= 0) {
            if (r < 0 && errno == EINTR)
                continue;
            return std::string::npos;
        }
        buf.append(tmp, size_t(r));
        (void)dlen;
    }
}

/** Read exactly @p n more bytes into @p out; false on EOF/error. */
bool
readExact(int fd, std::string &out, size_t n)
{
    while (out.size() < n) {
        char tmp[8192];
        size_t want = std::min(n - out.size(), sizeof(tmp));
        ssize_t r = ::recv(fd, tmp, want, 0);
        if (r <= 0) {
            if (r < 0 && errno == EINTR)
                continue;
            return false;
        }
        out.append(tmp, size_t(r));
    }
    return true;
}

int
connectTo(const std::string &host, uint16_t port, std::string &err)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    std::string h = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
        err = "cannot resolve '" + host + "' (use a numeric address)";
        return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = std::string("connect ") + host + ":" +
              std::to_string(port) + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

std::string
HttpRequest::header(const std::string &key) const
{
    auto it = headers.find(lower(key));
    return it == headers.end() ? "" : it->second;
}

bool
parseRequestHead(const std::string &head, HttpRequest &out,
                 std::string &err)
{
    out = HttpRequest{};
    size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string::npos) {
        err = "missing request line";
        return false;
    }
    const std::string reqLine = head.substr(0, lineEnd);
    size_t sp1 = reqLine.find(' ');
    size_t sp2 = reqLine.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
        err = "malformed request line";
        return false;
    }
    out.method = reqLine.substr(0, sp1);
    std::string target = reqLine.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string proto = reqLine.substr(sp2 + 1);
    if (proto != "HTTP/1.1" && proto != "HTTP/1.0") {
        err = "unsupported protocol '" + proto + "'";
        return false;
    }
    if (out.method.empty() || target.empty() || target[0] != '/') {
        err = "malformed request target";
        return false;
    }
    size_t q = target.find('?');
    if (q != std::string::npos) {
        out.query = target.substr(q + 1);
        target.resize(q);
    }
    out.path = target;

    size_t pos = lineEnd + 2;
    while (pos < head.size()) {
        size_t end = head.find("\r\n", pos);
        if (end == std::string::npos)
            end = head.size();
        if (end == pos)
            break; // blank line
        const std::string line = head.substr(pos, end - pos);
        size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
            err = "malformed header line '" + line + "'";
            return false;
        }
        out.headers[lower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
        pos = end + 2;
    }
    return true;
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
    }
    return "Unknown";
}

bool
HttpResponseWriter::writeAll(const char *p, size_t n)
{
    if (broken)
        return false;
    if (!sendAll(fd, p, n)) {
        broken = true;
        return false;
    }
    return true;
}

void
HttpResponseWriter::respond(
    int status, const std::string &contentType, const std::string &body,
    const std::vector<std::pair<std::string, std::string>> &extraHeaders)
{
    if (headerSent)
        return;
    headerSent = true;
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusReason(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto &h : extraHeaders)
        head += h.first + ": " + h.second + "\r\n";
    head += "Connection: close\r\n\r\n";
    writeAll(head.data(), head.size());
    writeAll(body.data(), body.size());
}

void
HttpResponseWriter::beginChunked(int status,
                                 const std::string &contentType)
{
    if (headerSent)
        return;
    headerSent = true;
    chunked = true;
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusReason(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Transfer-Encoding: chunked\r\n";
    head += "Connection: close\r\n\r\n";
    writeAll(head.data(), head.size());
}

bool
HttpResponseWriter::writeChunk(const std::string &data)
{
    if (!chunked || data.empty())
        return !broken;
    char sz[32];
    std::snprintf(sz, sizeof(sz), "%zx\r\n", data.size());
    if (!writeAll(sz, std::strlen(sz)))
        return false;
    if (!writeAll(data.data(), data.size()))
        return false;
    return writeAll("\r\n", 2);
}

void
HttpResponseWriter::endChunked()
{
    if (chunked)
        writeAll("0\r\n\r\n", 5);
}

// ------------------------------------------------------------------
// Server
// ------------------------------------------------------------------

struct HttpServer::Impl
{
    Options opts;
    HttpHandler handler;
    int listenFd = -1;
    std::atomic<bool> stopping{false};
    bool started = false;

    std::mutex lock;
    std::condition_variable cv;
    std::deque<int> pending;

    std::thread acceptThread;
    std::vector<std::thread> workers;

    void
    acceptLoop()
    {
        while (!stopping.load(std::memory_order_relaxed)) {
            pollfd pfd{listenFd, POLLIN, 0};
            int pr = ::poll(&pfd, 1, 200);
            if (pr <= 0)
                continue;
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                continue;
            {
                std::lock_guard<std::mutex> g(lock);
                pending.push_back(fd);
            }
            cv.notify_one();
        }
    }

    void
    workerLoop()
    {
        for (;;) {
            int fd = -1;
            {
                std::unique_lock<std::mutex> g(lock);
                cv.wait(g, [&] {
                    return stopping.load() || !pending.empty();
                });
                if (!pending.empty()) {
                    fd = pending.front();
                    pending.pop_front();
                } else if (stopping.load()) {
                    return;
                }
            }
            if (fd >= 0)
                handleConnection(fd);
        }
    }

    void
    handleConnection(int fd)
    {
        timeval tv{};
        tv.tv_sec = opts.recvTimeoutSecs;
        setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        HttpResponseWriter w(fd);
        std::string buf;
        size_t headEnd =
            readUntil(fd, buf, "\r\n\r\n", opts.maxHeaderBytes);
        if (headEnd == std::string::npos) {
            if (buf.size() > opts.maxHeaderBytes)
                w.respond(431, "text/plain", "header too large\n");
            ::close(fd);
            return;
        }
        // The delimiter can arrive in the same recv() that blew the
        // budget, so an over-limit head must be refused here too.
        if (headEnd > opts.maxHeaderBytes) {
            w.respond(431, "text/plain", "header too large\n");
            ::close(fd);
            return;
        }
        HttpRequest req;
        std::string err;
        if (!parseRequestHead(buf.substr(0, headEnd + 2), req, err)) {
            w.respond(400, "text/plain", err + "\n");
            ::close(fd);
            return;
        }
        req.body = buf.substr(headEnd + 4);
        const std::string cl = req.header("content-length");
        if (!cl.empty()) {
            char *end = nullptr;
            unsigned long long n = std::strtoull(cl.c_str(), &end, 10);
            if (end == cl.c_str() || *end != '\0') {
                w.respond(400, "text/plain", "bad Content-Length\n");
                ::close(fd);
                return;
            }
            if (n > opts.maxBodyBytes) {
                w.respond(413, "text/plain", "body too large\n");
                ::close(fd);
                return;
            }
            if (!readExact(fd, req.body, size_t(n))) {
                ::close(fd);
                return;
            }
            req.body.resize(size_t(n));
        } else if (!req.body.empty()) {
            // A body without Content-Length is not something the API
            // ever sends; refuse rather than guess at framing.
            w.respond(400, "text/plain",
                      "body requires Content-Length\n");
            ::close(fd);
            return;
        }

        try {
            handler(req, w);
            if (!w.responded())
                w.respond(500, "text/plain", "handler wrote nothing\n");
        } catch (const std::exception &e) {
            if (!w.responded())
                w.respond(500, "text/plain",
                          std::string("internal error: ") + e.what() +
                              "\n");
        }
        ::close(fd);
    }
};

HttpServer::HttpServer(const Options &opts, HttpHandler handler)
    : impl(new Impl{})
{
    impl->opts = opts;
    impl->handler = std::move(handler);

    impl->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl->listenFd < 0) {
        delete impl;
        throw ServeError(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    setsockopt(impl->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    std::string bindAddr =
        opts.bindAddr == "localhost" ? "127.0.0.1" : opts.bindAddr;
    if (inet_pton(AF_INET, bindAddr.c_str(), &addr.sin_addr) != 1) {
        ::close(impl->listenFd);
        delete impl;
        throw ServeError("bad bind address '" + opts.bindAddr + "'");
    }
    if (::bind(impl->listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(impl->listenFd, 64) != 0) {
        std::string what = std::string("bind/listen ") + opts.bindAddr +
                           ":" + std::to_string(opts.port) + ": " +
                           std::strerror(errno);
        ::close(impl->listenFd);
        delete impl;
        throw ServeError(what);
    }
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    getsockname(impl->listenFd, reinterpret_cast<sockaddr *>(&got),
                &len);
    boundPort = ntohs(got.sin_port);
}

HttpServer::~HttpServer()
{
    stop();
    if (impl->listenFd >= 0)
        ::close(impl->listenFd);
    delete impl;
}

void
HttpServer::start()
{
    if (impl->started)
        return;
    impl->started = true;
    impl->acceptThread = std::thread([this] { impl->acceptLoop(); });
    unsigned n = impl->opts.threads ? impl->opts.threads : 1;
    for (unsigned i = 0; i < n; ++i)
        impl->workers.emplace_back([this] { impl->workerLoop(); });
}

void
HttpServer::stop()
{
    if (!impl->started)
        return;
    impl->stopping.store(true);
    if (impl->acceptThread.joinable())
        impl->acceptThread.join();
    // Let workers drain already-accepted connections, then wake them.
    impl->cv.notify_all();
    for (auto &t : impl->workers)
        if (t.joinable())
            t.join();
    impl->workers.clear();
    impl->started = false;
}

// ------------------------------------------------------------------
// Client
// ------------------------------------------------------------------

namespace
{

/** Shared request/response engine behind the two public entry
 *  points. @p onBody receives decoded body bytes; when it returns
 *  false the transfer stops early without error. */
bool
clientRequest(const std::string &host, uint16_t port,
              const std::string &method, const std::string &target,
              const std::vector<std::pair<std::string, std::string>>
                  &headers,
              const std::string &body, int &status,
              std::map<std::string, std::string> *outHeaders,
              const std::function<bool(const char *, size_t)> &onBody,
              std::string &err)
{
    int fd = connectTo(host, port, err);
    if (fd < 0)
        return false;

    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: " + host + ":" + std::to_string(port) + "\r\n";
    for (const auto &h : headers)
        req += h.first + ": " + h.second + "\r\n";
    if (!body.empty() || method == "POST" || method == "PUT")
        req += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    req += "Connection: close\r\n\r\n";
    req += body;
    if (!sendAll(fd, req.data(), req.size())) {
        err = std::string("send: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    std::string buf;
    size_t headEnd = readUntil(fd, buf, "\r\n\r\n", 256 * 1024);
    if (headEnd == std::string::npos) {
        err = "malformed or truncated response head";
        ::close(fd);
        return false;
    }
    const std::string head = buf.substr(0, headEnd + 2);
    size_t lineEnd = head.find("\r\n");
    const std::string statusLine = head.substr(0, lineEnd);
    if (statusLine.size() < 12 ||
        statusLine.compare(0, 5, "HTTP/") != 0) {
        err = "bad status line '" + statusLine + "'";
        ::close(fd);
        return false;
    }
    status = std::atoi(statusLine.c_str() + 9);

    std::map<std::string, std::string> hdrs;
    size_t pos = lineEnd + 2;
    while (pos < head.size()) {
        size_t end = head.find("\r\n", pos);
        if (end == std::string::npos || end == pos)
            break;
        const std::string line = head.substr(pos, end - pos);
        size_t colon = line.find(':');
        if (colon != std::string::npos)
            hdrs[lower(trim(line.substr(0, colon)))] =
                trim(line.substr(colon + 1));
        pos = end + 2;
    }
    if (outHeaders)
        *outHeaders = hdrs;

    std::string rest = buf.substr(headEnd + 4);
    auto feed = [&](const char *p, size_t n) {
        return onBody ? onBody(p, n) : true;
    };

    bool ok = true;
    auto it = hdrs.find("transfer-encoding");
    if (it != hdrs.end() && lower(it->second) == "chunked") {
        // Decode chunks from `rest` + socket.
        std::string acc = std::move(rest);
        for (;;) {
            size_t crlf;
            for (;;) {
                crlf = acc.find("\r\n");
                if (crlf != std::string::npos)
                    break;
                char tmp[4096];
                ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
                if (r <= 0) {
                    if (r < 0 && errno == EINTR)
                        continue;
                    err = "truncated chunked body";
                    ::close(fd);
                    return false;
                }
                acc.append(tmp, size_t(r));
            }
            char *endp = nullptr;
            unsigned long long sz =
                std::strtoull(acc.c_str(), &endp, 16);
            if (endp == acc.c_str()) {
                err = "bad chunk size";
                ok = false;
                break;
            }
            acc.erase(0, crlf + 2);
            if (sz == 0)
                break; // final chunk (ignore trailers)
            while (acc.size() < sz + 2) {
                char tmp[8192];
                ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
                if (r <= 0) {
                    if (r < 0 && errno == EINTR)
                        continue;
                    err = "truncated chunk";
                    ::close(fd);
                    return false;
                }
                acc.append(tmp, size_t(r));
            }
            if (!feed(acc.data(), size_t(sz))) {
                ok = true; // caller aborted on purpose
                break;
            }
            acc.erase(0, size_t(sz) + 2);
        }
    } else if ((it = hdrs.find("content-length")) != hdrs.end()) {
        unsigned long long n =
            std::strtoull(it->second.c_str(), nullptr, 10);
        if (rest.size() > n)
            rest.resize(size_t(n));
        if (!readExact(fd, rest, size_t(n))) {
            err = "truncated body";
            ::close(fd);
            return false;
        }
        feed(rest.data(), rest.size());
    } else {
        // Connection-close framing: read to EOF.
        if (!rest.empty() && !feed(rest.data(), rest.size())) {
            ::close(fd);
            return true;
        }
        for (;;) {
            char tmp[8192];
            ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0)
                break;
            if (!feed(tmp, size_t(r)))
                break;
        }
    }
    ::close(fd);
    return ok;
}

} // namespace

bool
httpRequest(const std::string &host, uint16_t port,
            const std::string &method, const std::string &target,
            const std::vector<std::pair<std::string, std::string>>
                &headers,
            const std::string &body, ClientResponse &out,
            std::string &err)
{
    out = ClientResponse{};
    auto onBody = [&](const char *p, size_t n) {
        out.body.append(p, n);
        return true;
    };
    return clientRequest(host, port, method, target, headers, body,
                         out.status, &out.headers, onBody, err);
}

bool
httpRequestStream(
    const std::string &host, uint16_t port, const std::string &method,
    const std::string &target,
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &body, int &status,
    const std::function<bool(const char *, size_t)> &onBody,
    std::string &err)
{
    return clientRequest(host, port, method, target, headers, body,
                         status, nullptr, onBody, err);
}

} // namespace serve
} // namespace xt910
