#include "serve/jobs.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <thread>

#include "baseline/presets.h"
#include "check/progen.h"
#include "common/parallel.h"
#include "common/snapio.h"
#include "core/system.h"
#include "obs/sampler.h"
#include "sample/sample.h"
#include "serve/report.h"
#include "snap/snapshot.h"
#include "workloads/wl_common.h"
#include "workloads/workload.h"

namespace xt910
{
namespace serve
{

const char *
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

namespace
{

const char *
priorityName(JobPriority p)
{
    return p == JobPriority::Batch ? "batch" : "interactive";
}

/** Thrown out of the step hook on DELETE /v1/jobs/<id>. */
struct JobCancelled
{
};

/** Thrown out of the step hook when the manager is draining. */
struct JobDrained
{
};

} // namespace

std::string
JobSpec::displayName() const
{
    if (!workload.empty())
        return workload;
    // Source jobs are named after the reproducer seed at resolve time;
    // this fallback only shows before resolution.
    return "source";
}

std::string
JobSpec::toJson() const
{
    std::ostringstream os;
    os << "{\"workload\": \"" << json::escape(workload)
       << "\", \"source\": \"" << json::escape(source)
       << "\", \"preset\": \"" << json::escape(preset)
       << "\", \"cores\": " << cores
       << ", \"extended\": " << (extended ? "true" : "false")
       << ", \"vector\": " << (useVector ? "true" : "false")
       << ", \"scale\": " << scale << ", \"l2_kib\": " << l2Kib
       << ", \"dram_latency\": " << dramLatency
       << ", \"no_prefetch\": " << (noPrefetch ? "true" : "false")
       << ", \"max_insts\": " << maxInsts
       << ", \"max_cycles\": " << maxCycles
       << ", \"stats_interval\": " << statsInterval
       << ", \"sample_interval\": " << sampleInterval
       << ", \"sample_count\": " << sampleCount
       << ", \"sample_warmup\": " << sampleWarmup
       << ", \"sample_seed\": " << sampleSeed
       << ", \"timeout_secs\": " << timeoutSecs << ", \"priority\": \""
       << priorityName(priority) << "\", \"client\": \""
       << json::escape(client) << "\"}";
    return os.str();
}

bool
JobSpec::fromJson(const json::Value &v, JobSpec &out, std::string &err)
{
    if (!v.isObject()) {
        err = "job spec must be a JSON object";
        return false;
    }
    out = JobSpec{};
    for (const auto &kv : v.members) {
        const std::string &k = kv.first;
        const json::Value &x = kv.second;
        auto str = [&](std::string &dst) {
            if (!x.isString()) {
                err = "field '" + k + "' must be a string";
                return false;
            }
            dst = x.string;
            return true;
        };
        auto boolean = [&](bool &dst) {
            if (!x.isBool()) {
                err = "field '" + k + "' must be a boolean";
                return false;
            }
            dst = x.boolean;
            return true;
        };
        auto u64 = [&](uint64_t &dst) {
            if (!x.isNumber() || !x.isInteger || x.integer < 0) {
                err = "field '" + k +
                      "' must be a non-negative integer";
                return false;
            }
            dst = uint64_t(x.integer);
            return true;
        };
        auto u32 = [&](unsigned &dst) {
            uint64_t w = 0;
            if (!u64(w))
                return false;
            if (w > 0xffffffffull) {
                err = "field '" + k + "' is out of range";
                return false;
            }
            dst = unsigned(w);
            return true;
        };
        bool ok = true;
        if (k == "workload")
            ok = str(out.workload);
        else if (k == "source")
            ok = str(out.source);
        else if (k == "preset")
            ok = str(out.preset);
        else if (k == "cores")
            ok = u32(out.cores);
        else if (k == "extended")
            ok = boolean(out.extended);
        else if (k == "vector")
            ok = boolean(out.useVector);
        else if (k == "scale")
            ok = u32(out.scale);
        else if (k == "l2_kib")
            ok = u32(out.l2Kib);
        else if (k == "dram_latency")
            ok = u32(out.dramLatency);
        else if (k == "no_prefetch")
            ok = boolean(out.noPrefetch);
        else if (k == "max_insts")
            ok = u64(out.maxInsts);
        else if (k == "max_cycles")
            ok = u64(out.maxCycles);
        else if (k == "stats_interval")
            ok = u64(out.statsInterval);
        else if (k == "sample_interval")
            ok = u64(out.sampleInterval);
        else if (k == "sample_count")
            ok = u32(out.sampleCount);
        else if (k == "sample_warmup")
            ok = u64(out.sampleWarmup);
        else if (k == "sample_seed")
            ok = u64(out.sampleSeed);
        else if (k == "timeout_secs") {
            if (!x.isNumber() || x.number < 0) {
                err = "field 'timeout_secs' must be a non-negative "
                      "number";
                ok = false;
            } else {
                out.timeoutSecs = x.number;
            }
        } else if (k == "priority") {
            std::string p;
            if (!(ok = str(p)))
                ;
            else if (p == "interactive")
                out.priority = JobPriority::Interactive;
            else if (p == "batch")
                out.priority = JobPriority::Batch;
            else {
                err = "priority must be 'interactive' or 'batch'";
                ok = false;
            }
        } else if (k == "client") {
            ok = str(out.client);
        } else {
            err = "unknown field '" + k + "'";
            ok = false;
        }
        if (!ok)
            return false;
    }
    if (out.workload.empty() == out.source.empty()) {
        err = "exactly one of 'workload' and 'source' is required";
        return false;
    }
    return true;
}

std::string
JobInfo::statusJson() const
{
    std::ostringstream os;
    os << "{\"id\": \"" << json::escape(id) << "\", \"state\": \""
       << jobStateName(state) << "\", \"name\": \""
       << json::escape(name) << "\", \"client\": \""
       << json::escape(client) << "\", \"priority\": \""
       << priorityName(priority)
       << "\", \"cached\": " << (cached ? "true" : "false")
       << ", \"progress_insts\": " << progressInsts
       << ", \"insts\": " << insts << ", \"cycles\": " << cycles
       << ", \"checksum_ok\": " << (checksumOk ? "true" : "false")
       << ", \"error\": \"" << json::escape(error) << "\"}";
    return os.str();
}

std::string
ServeCounters::json(size_t queued, size_t running) const
{
    std::ostringstream os;
    os << "{\"submitted\": " << submitted.load()
       << ", \"completed\": " << completed.load()
       << ", \"failed\": " << failed.load()
       << ", \"cancelled\": " << cancelled.load()
       << ", \"cache_hits\": " << cacheHits.load()
       << ", \"simulated\": " << simulated.load()
       << ", \"rejected_queue_full\": " << rejectedQueueFull.load()
       << ", \"rejected_quota\": " << rejectedQuota.load()
       << ", \"queued\": " << queued << ", \"running\": " << running
       << "}";
    return os.str();
}

namespace
{

/** One admitted job: spec + resolved machine inputs + live state. */
struct Job
{
    std::string id;
    JobSpec spec;
    std::string name; ///< workload name or "xtfuzz-<seed>"
    Program program;
    uint64_t expected = 0;
    bool hasExpected = true;
    SystemConfig cfg;
    std::string cacheKey;

    std::atomic<JobState> state{JobState::Queued};
    std::atomic<bool> cancelRequested{false};
    std::atomic<uint64_t> progressInsts{0};
    bool cached = false;

    // Stream + result fields, all guarded by mu. Workers write results
    // before the state store; readers take mu so partially written
    // strings are never observed.
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    std::vector<std::string> lines; ///< complete JSONL lines (with \n)
    bool streamDone = false;
    uint64_t insts = 0;
    Cycle cycles = 0;
    bool checksumOk = false;
    std::string error;
    std::string statsJson;
    std::string ckptPath; ///< resume point (drain or restart)
};

/**
 * std::streambuf that chops the sampler/summary output into complete
 * lines and publishes each to the job's stream buffer as soon as its
 * newline arrives, so GET .../stream observes records live.
 */
class LineSink : public std::streambuf
{
  public:
    explicit LineSink(Job &j_) : j(j_) {}

  protected:
    int
    overflow(int c) override
    {
        if (c == traits_type::eof())
            return c;
        partial.push_back(char(c));
        if (c == '\n') {
            std::lock_guard<std::mutex> lk(j.mu);
            j.lines.push_back(std::move(partial));
            partial.clear();
            j.cv.notify_all();
        }
        return c;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            overflow(traits_type::to_int_type(s[i]));
        return n;
    }

  private:
    Job &j;
    std::string partial;
};

/** Everything resolveSpec derives from a JobSpec. */
struct Resolved
{
    std::string name;
    Program program;
    uint64_t expected = 0;
    bool hasExpected = true;
    SystemConfig cfg;
    uint64_t wlHash = 0;
    uint64_t cfgHash = 0;
};

bool
resolveSpec(const JobSpec &s, Resolved &out, std::string &err)
{
    if (s.workload.empty() == s.source.empty()) {
        err = "exactly one of 'workload' and 'source' is required";
        return false;
    }
    if (s.cores < 1 || s.cores > 64) {
        err = "cores must be between 1 and 64";
        return false;
    }
    if (s.scale < 1) {
        err = "scale must be at least 1";
        return false;
    }
    if (s.sampleInterval) {
        if (s.cores != 1) {
            err = "sampled mode ('sample_interval') requires cores = 1";
            return false;
        }
        if (s.statsInterval) {
            err = "'stats_interval' is incompatible with sampled mode "
                  "(measurement restarts per interval)";
            return false;
        }
        if (s.maxCycles) {
            err = "'max_cycles' is incompatible with sampled mode "
                  "(intervals are instruction-bounded)";
            return false;
        }
    } else if (s.sampleCount || s.sampleWarmup || s.sampleSeed) {
        err = "'sample_count'/'sample_warmup'/'sample_seed' require "
              "'sample_interval'";
        return false;
    }
    CorePreset p;
    if (s.preset == "xt910")
        p = xt910Preset();
    else if (s.preset == "u74")
        p = u74Preset();
    else if (s.preset == "a73")
        p = a73Preset();
    else if (s.preset == "mcu")
        p = mcuPreset();
    else {
        err = "unknown preset '" + s.preset +
              "' (want xt910|u74|a73|mcu)";
        return false;
    }
    out.cfg = p.config;
    out.cfg.numCores = s.cores;
    if (s.l2Kib)
        out.cfg.mem.l2.sizeBytes = uint64_t(s.l2Kib) * 1024;
    if (s.dramLatency)
        out.cfg.mem.dram.latency = s.dramLatency;
    if (s.noPrefetch) {
        out.cfg.core.prefetch.enableL1 = false;
        out.cfg.core.prefetch.enableL2 = false;
        out.cfg.core.tlbPrefetch = false;
    }
    if (s.maxInsts)
        out.cfg.maxInsts = s.maxInsts;
    if (s.maxCycles)
        out.cfg.maxCycles = s.maxCycles;

    WorkloadOptions wo;
    wo.extended = s.extended;
    wo.vector = s.useVector;
    wo.scale = s.scale;

    if (!s.workload.empty()) {
        // findWorkload() is fatal on an unknown name — fine for a CLI,
        // lethal for a daemon. Validate against the registry first.
        const Workload *w = nullptr;
        for (const Workload &cand : allWorkloads())
            if (cand.name == s.workload) {
                w = &cand;
                break;
            }
        if (!w) {
            err = "unknown workload '" + s.workload + "'";
            return false;
        }
        WorkloadBuild wb = w->build(wo);
        out.name = s.workload;
        out.program = wb.program;
        out.expected = wb.expected;
        out.hasExpected = true;
    } else {
        std::istringstream is(s.source);
        check::GenProgram g;
        if (!check::parseReproducer(is, g, err)) {
            err = "bad source: " + err;
            return false;
        }
        out.name = "xtfuzz-" + std::to_string(g.cfg.seed);
        out.program = g.assemble();
        out.expected = g.expectHash;
        out.hasExpected = g.hasExpectHash;
        // The generator's VLEN is part of the program contract; the
        // core parameter wins over IssOptions, keep them in lockstep.
        out.cfg.core.vlenBits = g.cfg.vlenBits;
        out.cfg.iss.vlenBits = g.cfg.vlenBits;
    }

    out.wlHash = workloadHash(out.name, out.program,
                              out.hasExpected ? out.expected : 0, wo);
    // snap::configHash deliberately excludes the run-length budget
    // (resuming under a different budget is the point of snapshots),
    // but budget *does* determine a run's final stats — fold it in.
    uint64_t h = snap::configHash(out.cfg);
    uint64_t tail[2] = {out.cfg.maxInsts, out.cfg.maxCycles};
    out.cfgHash = fnv1a(tail, sizeof(tail), h);
    // A sampled run *estimates* its stats, so its document must never
    // collide with a full run of the same workload+config — nor with a
    // sampled run under different parameters. Fold all four sampling
    // knobs in, but only when sampling is on, so every pre-existing
    // full-run cache key stays byte-identical.
    if (s.sampleInterval) {
        uint64_t stail[4] = {s.sampleInterval, uint64_t(s.sampleCount),
                             s.sampleWarmup, s.sampleSeed};
        out.cfgHash = fnv1a(stail, sizeof(stail), out.cfgHash);
    }
    return true;
}

} // namespace

struct JobManager::Impl
{
    JobManagerConfig cfg;
    ResultCache cache;
    ServeCounters *ctrs = nullptr;

    mutable std::mutex mu; ///< registry + id counter
    std::map<std::string, std::shared_ptr<Job>> byId;
    std::vector<std::shared_ptr<Job>> order;
    uint64_t nextId = 1;

    std::mutex qm; ///< the two priority queues
    std::condition_variable qcv;
    std::deque<std::shared_ptr<Job>> queues[2];
    std::atomic<bool> stopping{false};
    std::atomic<bool> draining{false};
    std::vector<std::thread> workers;
    bool drained = false;

    explicit Impl(const JobManagerConfig &c) : cfg(c), cache(c.cacheDir)
    {
    }

    std::string
    stateFile() const
    {
        return cfg.stateDir + "/state.json";
    }

    std::string
    ckptFile(const std::string &id) const
    {
        return cfg.stateDir + "/" + id + ".ckpt";
    }

    std::string
    freshId()
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "j%06llu",
                      static_cast<unsigned long long>(nextId++));
        return buf;
    }

    void
    enqueue(const std::shared_ptr<Job> &j)
    {
        std::lock_guard<std::mutex> lk(qm);
        queues[size_t(j->spec.priority)].push_back(j);
        qcv.notify_one();
    }

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Job> j;
            {
                std::unique_lock<std::mutex> lk(qm);
                qcv.wait(lk, [&] {
                    return stopping.load() || !queues[0].empty() ||
                           !queues[1].empty();
                });
                if (stopping.load())
                    return;
                std::deque<std::shared_ptr<Job>> &q =
                    !queues[0].empty() ? queues[0] : queues[1];
                j = q.front();
                q.pop_front();
            }
            runJob(*j);
        }
    }

    void
    runJob(Job &j)
    {
        j.state.store(JobState::Running);
        if (j.cancelRequested.load()) {
            finish(j, JobState::Cancelled, "cancelled by client");
            ctrs->cancelled.fetch_add(1);
            return;
        }
        if (j.spec.sampleInterval) {
            runSampledJob(j);
            return;
        }
        try {
            // The budget is a whole-run budget: when resuming from a
            // checkpoint, the part already retired comes off the top of
            // a local copy (the job keeps its original cfg — and cache
            // key — for any later resume).
            SystemConfig cfg = j.cfg;
            uint64_t base = 0;
            std::string ckpt;
            {
                std::lock_guard<std::mutex> lk(j.mu);
                ckpt = j.ckptPath;
            }
            if (!ckpt.empty()) {
                try {
                    base = snap::inspectSnapshotFile(ckpt).instsRetired;
                } catch (const SnapError &) {
                    base = 0;
                    ckpt.clear();
                }
            }
            if (base)
                cfg.maxInsts =
                    cfg.maxInsts > base ? cfg.maxInsts - base : 0;

            System sys(cfg);
            sys.loadProgram(j.program);
            if (!ckpt.empty())
                base = snap::restoreSnapshotFile(sys, ckpt);

            LineSink sink(j);
            std::ostream sinkOs(&sink);
            std::unique_ptr<obs::IntervalSampler> sampler;
            if (j.spec.statsInterval) {
                sampler = std::make_unique<obs::IntervalSampler>(
                    sinkOs, j.spec.statsInterval);
                sys.attachSampler(*sampler);
            }

            const auto start = std::chrono::steady_clock::now();
            sys.stepHook = [&](uint64_t n, System &s) {
                if (n & 1023)
                    return;
                j.progressInsts.store(base + n);
                if (j.cancelRequested.load())
                    throw JobCancelled{};
                if (draining.load()) {
                    if (!this->cfg.stateDir.empty()) {
                        const std::string path = ckptFile(j.id);
                        snap::saveSnapshotFile(s, path, base + n);
                        std::lock_guard<std::mutex> lk(j.mu);
                        j.ckptPath = path;
                    }
                    throw JobDrained{};
                }
                if (j.spec.timeoutSecs > 0) {
                    const std::chrono::duration<double> el =
                        std::chrono::steady_clock::now() - start;
                    if (el.count() > j.spec.timeoutSecs)
                        throw FarmTimeout(
                            "job exceeded its wall-clock budget");
                }
            };

            RunResult r = sys.run();
            ctrs->simulated.fetch_add(1);

            const bool ok =
                !j.hasExpected ||
                wl::readResult(sys.memory(), j.program) == j.expected;

            // The summary line closes the JSONL stream (same record a
            // direct --stats-interval run appends to its file). The
            // sink takes j.mu per line, so it must run unlocked.
            writeRunSummaryLine(sinkOs, j.name, r, ok, sys);
            std::lock_guard<std::mutex> lk(j.mu);
            std::ostringstream doc;
            writeRunStatsJson(doc, j.name, r, ok, sys);
            j.statsJson = doc.str();
            j.insts = r.insts;
            j.cycles = r.cycles;
            j.checksumOk = ok;
            j.progressInsts.store(base + r.insts);
            j.streamDone = true;
            j.cv.notify_all();
            j.state.store(JobState::Done);
            ctrs->completed.fetch_add(1);
            if (!j.cacheKey.empty())
                cache.store(j.cacheKey, j.statsJson);
        } catch (const JobCancelled &) {
            finish(j, JobState::Cancelled, "cancelled by client");
            ctrs->cancelled.fetch_add(1);
        } catch (const JobDrained &) {
            // Back to the queue conceptually: drain() persists every
            // Queued job, and restoreState() in the next process picks
            // it up from the checkpoint just written.
            j.state.store(JobState::Queued);
        } catch (const FarmTimeout &e) {
            finish(j, JobState::Failed, e.what());
            ctrs->failed.fetch_add(1);
        } catch (const std::exception &e) {
            finish(j, JobState::Failed, e.what());
            ctrs->failed.fetch_add(1);
        }
    }

    /**
     * Sampled-mode batch job: the whole src/sample pipeline
     * (fast-forward, interval measurement sharded across the farm,
     * extrapolation) runs as one job. No mid-flight checkpoint exists
     * — an interval shard is not a resume point — so cancel, drain and
     * the wall-clock budget all interrupt through the pipeline's
     * cooperative keepGoing hook; a drained sampled job goes back to
     * Queued whole and restarts from scratch after restore (it is
     * cacheable, so the repeat cost is bounded).
     */
    void
    runSampledJob(Job &j)
    {
        sample::SampleConfig sc;
        sc.interval = j.spec.sampleInterval;
        sc.count = j.spec.sampleCount;
        sc.warmup = j.spec.sampleWarmup;
        sc.seed = j.spec.sampleSeed;

        sample::SampleHooks hooks;
        if (j.hasExpected)
            hooks.checkResult = [&](System &s) {
                return wl::readResult(s.memory(), j.program) ==
                       j.expected;
            };
        const auto start = std::chrono::steady_clock::now();
        std::atomic<bool> timedOut{false};
        hooks.keepGoing = [&](uint64_t n) {
            // Progress is fed from the fast-forward and from every
            // measurement shard; keep it monotonic (the shards report
            // small per-leg counts after the fast-forward's total).
            uint64_t prev = j.progressInsts.load();
            while (n > prev &&
                   !j.progressInsts.compare_exchange_weak(prev, n)) {
            }
            if (j.cancelRequested.load() || draining.load())
                return false;
            if (j.spec.timeoutSecs > 0) {
                const std::chrono::duration<double> el =
                    std::chrono::steady_clock::now() - start;
                if (el.count() > j.spec.timeoutSecs) {
                    timedOut.store(true);
                    return false;
                }
            }
            return true;
        };

        try {
            sample::SampleReport rep = sample::runSampled(
                j.cfg, j.program, sc, cfg.simJobs, hooks);
            ctrs->simulated.fetch_add(1);

            // Same composition order as the full-run path: the summary
            // line closes the JSONL stream unlocked, then the stats
            // document — byte-equal to `xt910-run --sample-*
            // --stats-json` of the same spec — lands under the lock.
            LineSink sink(j);
            std::ostream sinkOs(&sink);
            sample::writeSampleSummaryLine(sinkOs, j.name, rep);
            std::lock_guard<std::mutex> lk(j.mu);
            std::ostringstream doc;
            sample::writeSampleJson(doc, j.name, rep);
            j.statsJson = doc.str();
            j.insts = rep.totalInsts;
            j.cycles = rep.estCycles;
            j.checksumOk = rep.checksumOk;
            j.progressInsts.store(rep.totalInsts);
            j.streamDone = true;
            j.cv.notify_all();
            j.state.store(JobState::Done);
            ctrs->completed.fetch_add(1);
            if (!j.cacheKey.empty())
                cache.store(j.cacheKey, j.statsJson);
        } catch (const sample::SampleError &e) {
            if (j.cancelRequested.load()) {
                finish(j, JobState::Cancelled, "cancelled by client");
                ctrs->cancelled.fetch_add(1);
            } else if (timedOut.load()) {
                finish(j, JobState::Failed,
                       "job exceeded its wall-clock budget");
                ctrs->failed.fetch_add(1);
            } else if (draining.load()) {
                j.state.store(JobState::Queued);
            } else {
                finish(j, JobState::Failed, e.what());
                ctrs->failed.fetch_add(1);
            }
        } catch (const std::exception &e) {
            finish(j, JobState::Failed, e.what());
            ctrs->failed.fetch_add(1);
        }
    }

    void
    finish(Job &j, JobState st, const std::string &error)
    {
        std::lock_guard<std::mutex> lk(j.mu);
        j.error = error;
        j.streamDone = true;
        j.cv.notify_all();
        j.state.store(st);
    }

    JobInfo
    info(const Job &j) const
    {
        JobInfo out;
        out.id = j.id;
        out.state = j.state.load();
        out.name = j.name;
        out.client = j.spec.client;
        out.priority = j.spec.priority;
        out.cached = j.cached;
        out.progressInsts = j.progressInsts.load();
        std::lock_guard<std::mutex> lk(j.mu);
        out.insts = j.insts;
        out.cycles = j.cycles;
        out.checksumOk = j.checksumOk;
        out.error = j.error;
        return out;
    }

    void
    persistState()
    {
        if (cfg.stateDir.empty())
            return;
        std::ostringstream os;
        os << "{\"next_id\": " << nextId << ", \"jobs\": [";
        bool first = true;
        for (const auto &j : order) {
            if (j->state.load() != JobState::Queued)
                continue;
            std::string ckpt;
            {
                std::lock_guard<std::mutex> lk(j->mu);
                ckpt = j->ckptPath;
            }
            if (!first)
                os << ", ";
            first = false;
            os << "{\"id\": \"" << json::escape(j->id)
               << "\", \"ckpt\": \"" << json::escape(ckpt)
               << "\", \"spec\": " << j->spec.toJson() << "}";
        }
        os << "]}";
        const std::string doc = os.str();
        try {
            snapWriteFileAtomic(stateFile(), doc.data(), doc.size());
        } catch (const SnapError &e) {
            std::fprintf(stderr, "serve: cannot persist state: %s\n",
                         e.what());
        }
    }
};

JobManager::JobManager(const JobManagerConfig &cfg)
    : impl(new Impl(cfg))
{
    impl->ctrs = &ctrs;
    if (!cfg.stateDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg.stateDir, ec);
    }
    const unsigned n = cfg.simJobs ? cfg.simJobs : 1;
    for (unsigned i = 0; i < n; ++i)
        impl->workers.emplace_back([this] { impl->workerLoop(); });
}

JobManager::~JobManager()
{
    if (!impl->drained) {
        impl->draining.store(true);
        impl->stopping.store(true);
        impl->qcv.notify_all();
        for (std::thread &t : impl->workers)
            t.join();
        impl->workers.clear();
    }
}

SubmitResult
JobManager::submit(const JobSpec &spec)
{
    SubmitResult res;
    Resolved rv;
    if (!resolveSpec(spec, rv, res.error)) {
        res.httpStatus = 400;
        return res;
    }

    auto j = std::make_shared<Job>();
    j->spec = spec;
    j->name = rv.name;
    j->program = std::move(rv.program);
    j->expected = rv.expected;
    j->hasExpected = rv.hasExpected;
    j->cfg = rv.cfg;
    if (impl->cache.enabled())
        j->cacheKey = ResultCache::key(rv.wlHash, rv.cfgHash);

    // A cache hit is already-finished work: it bypasses quota and
    // queue-depth admission (it consumes no simulation capacity) and
    // the job is born Done with the stored bytes.
    std::string doc;
    if (!j->cacheKey.empty() && impl->cache.lookup(j->cacheKey, doc)) {
        j->cached = true;
        j->statsJson = std::move(doc);
        json::Value v;
        if (json::parse(j->statsJson, v)) {
            if (const json::Value *f = v.find("insts"))
                j->insts = f->asU64();
            if (const json::Value *f = v.find("cycles"))
                j->cycles = f->asU64();
            if (const json::Value *f = v.find("checksum_ok"))
                j->checksumOk = f->asBool();
            // Sampled documents nest their totals ("run"/"estimate").
            if (const json::Value *run = v.find("run")) {
                if (const json::Value *f = run->find("total_insts"))
                    j->insts = f->asU64();
                if (const json::Value *f = run->find("checksum_ok"))
                    j->checksumOk = f->asBool();
            }
            if (const json::Value *est = v.find("estimate"))
                if (const json::Value *f = est->find("est_cycles"))
                    j->cycles = f->asU64();
        }
        j->progressInsts.store(j->insts);
        j->streamDone = true;
        j->state.store(JobState::Done);

        std::lock_guard<std::mutex> lk(impl->mu);
        j->id = impl->freshId();
        impl->byId[j->id] = j;
        impl->order.push_back(j);
        ctrs.submitted.fetch_add(1);
        ctrs.cacheHits.fetch_add(1);
        ctrs.completed.fetch_add(1);
        res.ok = true;
        res.cached = true;
        res.id = j->id;
        res.httpStatus = 201;
        return res;
    }

    {
        std::lock_guard<std::mutex> lk(impl->mu);
        // Admission: per-client quota over live (queued+running) jobs,
        // then the global queue bound.
        size_t live = 0;
        for (const auto &o : impl->order) {
            JobState st = o->state.load();
            if (o->spec.client == spec.client &&
                (st == JobState::Queued || st == JobState::Running))
                ++live;
        }
        if (live >= impl->cfg.clientQuota) {
            ctrs.rejectedQuota.fetch_add(1);
            res.httpStatus = 429;
            res.error = "client quota exceeded (" +
                        std::to_string(impl->cfg.clientQuota) +
                        " live jobs)";
            res.retryAfterSecs = 5;
            return res;
        }
        {
            std::lock_guard<std::mutex> qlk(impl->qm);
            if (impl->queues[0].size() + impl->queues[1].size() >=
                impl->cfg.queueMax) {
                ctrs.rejectedQueueFull.fetch_add(1);
                res.httpStatus = 429;
                res.error = "job queue is full";
                res.retryAfterSecs = 2;
                return res;
            }
        }
        j->id = impl->freshId();
        impl->byId[j->id] = j;
        impl->order.push_back(j);
        ctrs.submitted.fetch_add(1);
    }
    impl->enqueue(j);
    res.ok = true;
    res.id = j->id;
    res.httpStatus = 201;
    return res;
}

bool
JobManager::get(const std::string &id, JobInfo &out) const
{
    std::shared_ptr<Job> j;
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        auto it = impl->byId.find(id);
        if (it == impl->byId.end())
            return false;
        j = it->second;
    }
    out = impl->info(*j);
    return true;
}

std::vector<JobInfo>
JobManager::list() const
{
    std::vector<std::shared_ptr<Job>> jobs;
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        jobs = impl->order;
    }
    std::vector<JobInfo> out;
    out.reserve(jobs.size());
    for (const auto &j : jobs)
        out.push_back(impl->info(*j));
    return out;
}

bool
JobManager::stats(const std::string &id, std::string &doc) const
{
    std::shared_ptr<Job> j;
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        auto it = impl->byId.find(id);
        if (it == impl->byId.end())
            return false;
        j = it->second;
    }
    if (j->state.load() != JobState::Done)
        return false;
    std::lock_guard<std::mutex> lk(j->mu);
    doc = j->statsJson;
    return true;
}

bool
JobManager::cancel(const std::string &id, std::string &err)
{
    std::shared_ptr<Job> j;
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        auto it = impl->byId.find(id);
        if (it == impl->byId.end()) {
            err = "no such job";
            return false;
        }
        j = it->second;
    }
    // Still waiting? Pull it out of the queue and it never runs.
    {
        std::lock_guard<std::mutex> lk(impl->qm);
        for (auto &q : impl->queues) {
            auto it = std::find(q.begin(), q.end(), j);
            if (it != q.end()) {
                q.erase(it);
                impl->finish(*j, JobState::Cancelled,
                             "cancelled by client");
                ctrs.cancelled.fetch_add(1);
                return true;
            }
        }
    }
    switch (j->state.load()) {
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
        err = "job already finished";
        return false;
    default:
        // Running (or about to be): the step hook picks the flag up at
        // its next poll and aborts the simulation.
        j->cancelRequested.store(true);
        return true;
    }
}

bool
JobManager::readStream(const std::string &id, size_t &cursor,
                       std::vector<std::string> &out, bool &done) const
{
    std::shared_ptr<Job> j;
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        auto it = impl->byId.find(id);
        if (it == impl->byId.end())
            return false;
        j = it->second;
    }
    std::unique_lock<std::mutex> lk(j->mu);
    if (cursor >= j->lines.size() && !j->streamDone)
        j->cv.wait_for(lk, std::chrono::milliseconds(250), [&] {
            return cursor < j->lines.size() || j->streamDone;
        });
    for (; cursor < j->lines.size(); ++cursor)
        out.push_back(j->lines[cursor]);
    done = j->streamDone && cursor >= j->lines.size();
    return true;
}

void
JobManager::drain()
{
    if (impl->drained)
        return;
    impl->draining.store(true);
    impl->stopping.store(true);
    impl->qcv.notify_all();
    for (std::thread &t : impl->workers)
        t.join();
    impl->workers.clear();
    std::lock_guard<std::mutex> lk(impl->mu);
    impl->persistState();
    impl->drained = true;
}

void
JobManager::restoreState()
{
    if (impl->cfg.stateDir.empty())
        return;
    const std::string path = impl->stateFile();
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return;
    std::ostringstream buf;
    buf << is.rdbuf();
    is.close();
    std::remove(path.c_str());

    json::Value v;
    std::string err;
    if (!json::parse(buf.str(), v, &err) || !v.isObject()) {
        std::fprintf(stderr, "serve: ignoring bad state file %s: %s\n",
                     path.c_str(), err.c_str());
        return;
    }
    if (const json::Value *n = v.find("next_id")) {
        std::lock_guard<std::mutex> lk(impl->mu);
        impl->nextId = std::max<uint64_t>(impl->nextId, n->asU64());
    }
    const json::Value *jobs = v.find("jobs");
    if (!jobs || !jobs->isArray())
        return;
    for (const json::Value &e : jobs->elements) {
        const json::Value *id = e.find("id");
        const json::Value *spec = e.find("spec");
        if (!id || !id->isString() || !spec)
            continue;
        JobSpec s;
        Resolved rv;
        if (!JobSpec::fromJson(*spec, s, err) ||
            !resolveSpec(s, rv, err)) {
            std::fprintf(stderr,
                         "serve: dropping job %s from state: %s\n",
                         id->string.c_str(), err.c_str());
            continue;
        }
        auto j = std::make_shared<Job>();
        j->id = id->string;
        j->spec = s;
        j->name = rv.name;
        j->program = std::move(rv.program);
        j->expected = rv.expected;
        j->hasExpected = rv.hasExpected;
        j->cfg = rv.cfg;
        if (impl->cache.enabled())
            j->cacheKey = ResultCache::key(rv.wlHash, rv.cfgHash);
        if (const json::Value *c = e.find("ckpt"))
            j->ckptPath = c->asString();
        {
            std::lock_guard<std::mutex> lk(impl->mu);
            if (impl->byId.count(j->id))
                continue;
            impl->byId[j->id] = j;
            impl->order.push_back(j);
        }
        impl->enqueue(j);
    }
}

size_t
JobManager::queueDepth() const
{
    std::lock_guard<std::mutex> lk(impl->qm);
    return impl->queues[0].size() + impl->queues[1].size();
}

size_t
JobManager::runningCount() const
{
    std::lock_guard<std::mutex> lk(impl->mu);
    size_t n = 0;
    for (const auto &j : impl->order)
        if (j->state.load() == JobState::Running)
            ++n;
    return n;
}

std::string
JobManager::countersJson() const
{
    return ctrs.json(queueDepth(), runningCount());
}

} // namespace serve
} // namespace xt910
