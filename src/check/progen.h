/**
 * @file
 * Constrained random-program generation for the differential fuzzer.
 *
 * A generated program is a list of self-contained *items* bracketed by
 * a fixed prologue/epilogue. Every item is valid and terminating in
 * isolation — memory accesses go through the reserved data-base
 * register with bounded offsets, loops count a private scratch
 * register down from a small constant, branches only skip forward
 * within their own item — so the shrinker can drop any subset of items
 * and the remainder is still a legal, halting program.
 *
 * Items carry a stable operation *name* plus raw operand fields; the
 * emitter maps fields into valid ranges. That makes every possible
 * field value legal, keeps reproducer files readable, and means a
 * dumped program re-assembles identically on any future build as long
 * as the op names still exist.
 *
 * The epilogue folds the integer, FP and vector register files, the
 * data region and the scratch CSR into one 64-bit hash and stores it
 * at the "result" symbol, so a single memory word witnesses the whole
 * final architectural state.
 */

#ifndef XT910_CHECK_PROGEN_H
#define XT910_CHECK_PROGEN_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "xasm/assembler.h"

namespace xt910::check
{

/** Generation parameters (all deterministic from the seed). */
struct GenConfig
{
    uint64_t seed = 1;
    unsigned vlenBits = 128;
    unsigned numItems = 48;
    /** Sandboxed read/write data region size, bytes (multiple of 8). */
    uint32_t dataBytes = 4096;
};

/** One generator item: op name + raw operand entropy. */
struct GenItem
{
    std::string op;
    std::array<uint64_t, 4> f{};
};

/** A generated (or replayed) program. */
struct GenProgram
{
    GenConfig cfg;
    std::vector<GenItem> items;
    /** Golden guest hash from a reproducer file (0 when absent). */
    uint64_t expectHash = 0;
    bool hasExpectHash = false;

    /** Prologue + items + epilogue + data, ready to load. */
    Program assemble() const;
};

/** Draw a fresh random program. */
GenProgram generate(const GenConfig &cfg);

/** All operation names the generator can draw from (for tests). */
const std::vector<std::string> &opNames();

/** Serialize @p p as a reproducer ("xtfuzz 1" text format). */
void dumpReproducer(std::ostream &os, const GenProgram &p);

/** Parse a reproducer; false + @p err on malformed input. */
bool parseReproducer(std::istream &is, GenProgram &out, std::string &err);

} // namespace xt910::check

#endif // XT910_CHECK_PROGEN_H
