/**
 * @file
 * Differential lockstep harness: run one generated program along
 * execution paths that must produce bit-identical architectural
 * results, and diff everything observable at the end.
 *
 * Paths compared per program:
 *   A  ISS, predecoded block-cache fast path (the default engine)
 *   B  ISS, legacy per-PC decode cache (blockCache = false)
 *   C  full System run — ISS oracle + timing core + coherent memory
 *   D  full System run with the block-batched consume hand-off
 *      disabled (per-record timing path); besides the architectural
 *      snapshot, C and D must agree on the component-stats JSON
 *      byte-for-byte (DESIGN.md §3h)
 *
 * plus, across a batch, running path A under worker counts 1 and N
 * (the run farm must be invisible in results).
 *
 * A snapshot deliberately excludes anything legitimately
 * timing-dependent: the cycle/time CSRs differ between ISS-only and
 * System runs by design (System installs a cycleSource), so the
 * generator never reads them and the differ never compares them.
 */

#ifndef XT910_CHECK_DIFFER_H
#define XT910_CHECK_DIFFER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/progen.h"

namespace xt910::check
{

/** Everything compared across paths at end of run. */
struct ArchSnapshot
{
    bool ran = false;    ///< program assembled and halted cleanly
    bool halted = false;
    int exitCode = 0;
    Addr pc = 0;
    uint64_t instret = 0;
    uint64_t trapCount = 0;
    std::array<uint64_t, 32> x{};
    std::array<uint64_t, 32> f{};
    std::vector<uint8_t> v;  ///< all 32 vregs, vlenBytes each
    uint64_t vl = 0;
    unsigned vsew = 0, vlmul = 0;
    std::array<uint64_t, 8> csrs{}; ///< whitelisted CSR values
    uint64_t memHash = 0;    ///< FNV over the whole program image range
    uint64_t guestHash = 0;  ///< the epilogue's own fold at "result"

    bool operator==(const ArchSnapshot &) const = default;
};

/** First differing component, as a human-readable string. */
std::string describeDiff(const ArchSnapshot &a, const ArchSnapshot &b);

/** Run @p prog through a pure-ISS engine. */
ArchSnapshot runIss(const GenProgram &prog, bool blockCache);

/**
 * Run @p prog through a full System (timing + memory hierarchy).
 * @p disableBlockConsume selects the per-record timing path (leg D);
 * when @p statsJson is non-null the component-stats dump (without
 * host-dependent fields) is returned through it for cross-leg diffs.
 */
ArchSnapshot runSystem(const GenProgram &prog,
                       bool disableBlockConsume = false,
                       std::string *statsJson = nullptr);

/** Outcome of a differential check. */
struct DiffResult
{
    bool ok = true;
    std::string what; ///< pair + first difference when !ok
};

/**
 * Run all three engine paths on @p prog and diff the snapshots; also
 * checks the reproducer's golden hash when present.
 */
DiffResult checkProgram(const GenProgram &prog);

/** Path-A snapshots for a batch, computed on @p jobs workers. */
std::vector<ArchSnapshot> runBatch(const std::vector<GenProgram> &progs,
                                   unsigned jobs);

/**
 * Checkpoint/restore lockstep check: run @p prog straight through on a
 * full System, then rerun it capturing a whole-system snapshot once
 * @p snapAtInsts instructions have retired, restore that snapshot into
 * a *fresh* System, and run it to completion. The resumed run must
 * match the straight-through run exactly — same ArchSnapshot and a
 * byte-identical component-stats JSON dump — or the snapshot subsystem
 * dropped state somewhere.
 */
DiffResult checkSnapshotResume(const GenProgram &prog,
                               uint64_t snapAtInsts);

} // namespace xt910::check

#endif // XT910_CHECK_DIFFER_H
