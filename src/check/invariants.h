/**
 * @file
 * Compile-time-gated microarchitectural invariant checks. Define
 * XT910_CHECK_INVARIANTS to turn XT_INVARIANT into a hard check that
 * aborts the simulation with a precise message; without the define the
 * macro compiles to nothing, so hot paths carry no cost in normal
 * builds.
 *
 * The invariants asserted around the codebase (grep XT_INVARIANT):
 *  - top-down slot accounting sums to retireWidth x cycles
 *  - ROB entries retire in non-decreasing cycle order
 *  - load-queue and store-queue retirement ages are monotonic
 *  - the shared L2 stays inclusive of every L1 fill
 *  - MOESI lines only make legal state transitions
 *
 * The tier-1 target test_invariants recompiles the core, memory and
 * observability layers with the define on and drives whole programs
 * through System, so a regression that breaks any of these fails CI
 * even though release builds never evaluate the conditions.
 */

#ifndef XT910_CHECK_INVARIANTS_H
#define XT910_CHECK_INVARIANTS_H

#include "common/log.h"

#ifdef XT910_CHECK_INVARIANTS
/** Abort unless @p cond holds; message parts are concat()-style. */
#define XT_INVARIANT(cond, ...)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            xt_panic("invariant violated: " #cond " -- ", __VA_ARGS__);       \
    } while (0)
#else
#define XT_INVARIANT(cond, ...) ((void)0)
#endif

#endif // XT910_CHECK_INVARIANTS_H
