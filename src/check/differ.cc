/** @file See differ.h. */

#include "check/differ.h"

#include <sstream>

#include "common/parallel.h"
#include "common/snapio.h"
#include "core/system.h"
#include "func/csr.h"
#include "func/iss.h"
#include "snap/snapshot.h"

namespace xt910::check
{

namespace
{

constexpr uint64_t kRunLimit = 4'000'000;

/** CSRs compared across paths (timing CSRs intentionally absent). */
constexpr uint32_t kCsrWhitelist[8] = {
    csr::mstatus, csr::mtvec, csr::mie,    csr::mscratch,
    csr::mepc,    csr::mcause, csr::mtval, csr::minstret,
};

uint64_t
csrOrZero(const ArchState &s, uint32_t num)
{
    if (num == csr::minstret)
        return s.instret;
    auto it = s.csrs.find(num);
    return it == s.csrs.end() ? 0 : it->second;
}

/** FNV-1a over the whole loaded image range. */
uint64_t
hashImageRange(const Memory &mem, const Program &p)
{
    uint64_t h = 0xcbf29ce484222325ull;
    std::vector<uint8_t> buf(p.image.size());
    mem.readBytes(p.base, buf.data(), buf.size());
    for (uint8_t b : buf) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

ArchSnapshot
capture(const Iss &iss, const Memory &mem, const Program &p,
        unsigned vlenBits)
{
    const ArchState &s = iss.hart(0);
    ArchSnapshot snap;
    snap.ran = true;
    snap.halted = s.halted;
    snap.exitCode = s.exitCode;
    snap.pc = s.pc;
    snap.instret = s.instret;
    snap.trapCount = s.trapCount;
    snap.x = s.x;
    snap.x[0] = 0;
    snap.f = s.f;
    const unsigned vlenB = vlenBits / 8;
    snap.v.resize(32 * size_t(vlenB));
    for (unsigned r = 0; r < 32; ++r)
        for (unsigned b = 0; b < vlenB; ++b)
            snap.v[r * size_t(vlenB) + b] = s.v[r][b];
    snap.vl = s.vl;
    snap.vsew = s.vtype.sew;
    snap.vlmul = s.vtype.lmul;
    for (unsigned i = 0; i < 8; ++i)
        snap.csrs[i] = csrOrZero(s, kCsrWhitelist[i]);
    snap.memHash = hashImageRange(mem, p);
    snap.guestHash = mem.readT<uint64_t>(p.symbol("result"));
    return snap;
}

IssOptions
issOptions(const GenProgram &prog, bool blockCache)
{
    IssOptions o;
    o.vlenBits = prog.cfg.vlenBits;
    o.blockCache = blockCache;
    return o;
}

} // namespace

std::string
describeDiff(const ArchSnapshot &a, const ArchSnapshot &b)
{
    std::ostringstream os;
    os << std::hex;
    auto field = [&](const char *name, uint64_t va, uint64_t vb) {
        os << name << ": " << va << " != " << vb;
    };
    if (a.ran != b.ran || a.halted != b.halted || a.exitCode != b.exitCode) {
        os << "termination: ran=" << a.ran << "/" << b.ran
           << " halted=" << a.halted << "/" << b.halted
           << " exit=" << a.exitCode << "/" << b.exitCode;
        return os.str();
    }
    if (a.pc != b.pc) { field("pc", a.pc, b.pc); return os.str(); }
    if (a.instret != b.instret) {
        field("instret", a.instret, b.instret);
        return os.str();
    }
    if (a.trapCount != b.trapCount) {
        field("trapCount", a.trapCount, b.trapCount);
        return os.str();
    }
    for (unsigned i = 0; i < 32; ++i)
        if (a.x[i] != b.x[i]) {
            os << "x" << std::dec << i << std::hex;
            field("", a.x[i], b.x[i]);
            return os.str();
        }
    for (unsigned i = 0; i < 32; ++i)
        if (a.f[i] != b.f[i]) {
            os << "f" << std::dec << i << std::hex;
            field("", a.f[i], b.f[i]);
            return os.str();
        }
    if (a.vl != b.vl || a.vsew != b.vsew || a.vlmul != b.vlmul) {
        os << "vtype/vl: vl=" << a.vl << "/" << b.vl << " sew=" << a.vsew
           << "/" << b.vsew << " lmul=" << a.vlmul << "/" << b.vlmul;
        return os.str();
    }
    if (a.v != b.v) {
        for (size_t i = 0; i < a.v.size() && i < b.v.size(); ++i)
            if (a.v[i] != b.v[i]) {
                os << "vreg byte " << std::dec << i << std::hex;
                field("", a.v[i], b.v[i]);
                return os.str();
            }
        os << "vreg size: " << a.v.size() << " != " << b.v.size();
        return os.str();
    }
    for (unsigned i = 0; i < 8; ++i)
        if (a.csrs[i] != b.csrs[i]) {
            os << "csr[" << std::dec << i << "]" << std::hex;
            field("", a.csrs[i], b.csrs[i]);
            return os.str();
        }
    if (a.memHash != b.memHash) {
        field("memHash", a.memHash, b.memHash);
        return os.str();
    }
    if (a.guestHash != b.guestHash) {
        field("guestHash", a.guestHash, b.guestHash);
        return os.str();
    }
    return "identical";
}

ArchSnapshot
runIss(const GenProgram &prog, bool blockCache)
{
    Program p = prog.assemble();
    Memory mem;
    Iss iss(mem, 1, issOptions(prog, blockCache));
    iss.loadProgram(p);
    iss.run(kRunLimit);
    ArchSnapshot snap = capture(iss, mem, p, prog.cfg.vlenBits);
    snap.ran = iss.halted();
    return snap;
}

namespace
{

SystemConfig
systemConfig(const GenProgram &prog)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.iss = issOptions(prog, true);
    // CoreParams carries its own VLEN for the timing model and System
    // prefers it over the IssOptions one — keep them in lockstep.
    cfg.core.vlenBits = prog.cfg.vlenBits;
    cfg.maxInsts = kRunLimit;
    return cfg;
}

} // namespace

ArchSnapshot
runSystem(const GenProgram &prog, bool disableBlockConsume,
          std::string *statsJson)
{
    Program p = prog.assemble();
    SystemConfig cfg = systemConfig(prog);
    cfg.disableBlockConsume = disableBlockConsume;
    System sys(cfg);
    sys.loadProgram(p);
    RunResult r = sys.run();
    ArchSnapshot snap =
        capture(sys.iss(), sys.memory(), p, prog.cfg.vlenBits);
    snap.ran = r.stop == StopReason::Halted;
    if (statsJson) {
        std::ostringstream os;
        sys.dumpStatsJson(os, true);
        *statsJson = os.str();
    }
    return snap;
}

DiffResult
checkProgram(const GenProgram &prog)
{
    DiffResult res;
    ArchSnapshot a = runIss(prog, true);
    if (!a.ran || !a.halted) {
        res.ok = false;
        res.what = "program did not halt on the block-cache ISS path";
        return res;
    }
    ArchSnapshot b = runIss(prog, false);
    if (!(a == b)) {
        res.ok = false;
        res.what = "block-cache vs legacy decode: " + describeDiff(a, b);
        return res;
    }
    std::string statsC, statsD;
    ArchSnapshot c = runSystem(prog, false, &statsC);
    if (!(a == c)) {
        res.ok = false;
        res.what = "ISS-only vs timing System: " + describeDiff(a, c);
        return res;
    }
    ArchSnapshot d = runSystem(prog, true, &statsD);
    if (!(c == d)) {
        res.ok = false;
        res.what = "block-consume vs per-record timing: " +
                   describeDiff(c, d);
        return res;
    }
    if (statsC != statsD) {
        res.ok = false;
        res.what =
            "block-consume vs per-record timing: stats JSON differs";
        return res;
    }
    if (prog.hasExpectHash && a.guestHash != prog.expectHash) {
        std::ostringstream os;
        os << std::hex << "golden hash mismatch: expected "
           << prog.expectHash << ", got " << a.guestHash;
        res.ok = false;
        res.what = os.str();
        return res;
    }
    return res;
}

std::vector<ArchSnapshot>
runBatch(const std::vector<GenProgram> &progs, unsigned jobs)
{
    std::vector<ArchSnapshot> out(progs.size());
    parallelFor(progs.size(), jobs,
                [&](size_t i) { out[i] = runIss(progs[i], true); });
    return out;
}

DiffResult
checkSnapshotResume(const GenProgram &prog, uint64_t snapAtInsts)
{
    Program p = prog.assemble();
    SystemConfig cfg = systemConfig(prog);

    // Straight-through reference run.
    System ref(cfg);
    ref.loadProgram(p);
    RunResult rr = ref.run();
    if (rr.stop != StopReason::Halted)
        return {false, "reference run did not halt"};
    ArchSnapshot want =
        capture(ref.iss(), ref.memory(), p, prog.cfg.vlenBits);
    std::ostringstream wantStats;
    ref.dumpStatsJson(wantStats, true);

    // Second run, snapshotting once snapAtInsts instructions retired.
    // The hook only reads the System, so this run is the reference run.
    std::vector<uint8_t> bytes;
    {
        System sys(cfg);
        sys.loadProgram(p);
        sys.stepHook = [&](uint64_t n, System &s) {
            if (bytes.empty() && n >= snapAtInsts)
                bytes = snap::saveSnapshotBytes(s, n);
        };
        sys.run();
    }
    if (bytes.empty())
        return {false, "snapshot point was never reached"};

    // Restore into a fresh System and finish the run there.
    System res(cfg);
    res.loadProgram(p);
    try {
        snap::restoreSnapshotBytes(res, bytes.data(), bytes.size());
    } catch (const SnapError &e) {
        return {false, std::string("restore refused: ") + e.what()};
    }
    RunResult r2 = res.run();
    if (r2.stop != StopReason::Halted)
        return {false, "resumed run did not halt"};

    ArchSnapshot got =
        capture(res.iss(), res.memory(), p, prog.cfg.vlenBits);
    if (!(want == got))
        return {false, "straight-through vs resumed: " +
                           describeDiff(want, got)};
    std::ostringstream gotStats;
    res.dumpStatsJson(gotStats, true);
    if (wantStats.str() != gotStats.str())
        return {false,
                "resumed stats JSON differs from straight-through run"};
    return {};
}

} // namespace xt910::check
