/** @file See shrink.h. */

#include "check/shrink.h"

#include <algorithm>

namespace xt910::check
{

namespace
{

GenProgram
withoutRange(const GenProgram &p, size_t lo, size_t hi)
{
    GenProgram q;
    q.cfg = p.cfg;
    q.expectHash = p.expectHash;
    q.hasExpectHash = p.hasExpectHash;
    q.items.reserve(p.items.size() - (hi - lo));
    for (size_t i = 0; i < p.items.size(); ++i)
        if (i < lo || i >= hi)
            q.items.push_back(p.items[i]);
    q.cfg.numItems = unsigned(q.items.size());
    return q;
}

} // namespace

GenProgram
shrinkProgram(const GenProgram &prog, const FailPredicate &fails,
              unsigned maxEvals)
{
    GenProgram cur = prog;
    unsigned evals = 0;
    size_t granularity = 2;
    while (cur.items.size() >= 2 && granularity <= cur.items.size() &&
           evals < maxEvals) {
        const size_t n = cur.items.size();
        const size_t chunk = std::max<size_t>(1, n / granularity);
        bool removedAny = false;
        for (size_t lo = 0; lo < n && evals < maxEvals; lo += chunk) {
            size_t hi = std::min(n, lo + chunk);
            GenProgram cand = withoutRange(cur, lo, hi);
            if (cand.items.empty())
                continue;
            ++evals;
            if (fails(cand)) {
                cur = std::move(cand);
                removedAny = true;
                break; // indices shifted; rescan at same granularity
            }
        }
        if (!removedAny) {
            if (chunk == 1)
                break; // 1-minimal
            granularity = std::min(granularity * 2, cur.items.size());
        }
    }
    return cur;
}

} // namespace xt910::check
