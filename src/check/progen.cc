/** @file See progen.h. */

#include "check/progen.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "common/random.h"
#include "func/csr.h"
#include "isa/vtype.h"

namespace xt910::check
{

using namespace reg;

namespace
{

/**
 * Reserved registers the generator never writes:
 *   x0       architectural zero
 *   x2  sp   stack pointer (constant; kept sane for debuggability)
 *   x8  s0   data-region base — every memory item addresses off it
 *   x29 t4 / x30 t5 / x31 t6   item-internal scratch (addresses, loop
 *            counters); items may still *read* them.
 */
constexpr unsigned kWritable[] = {1,  3,  4,  5,  6,  7,  9,  10, 11,
                                  12, 13, 14, 15, 16, 17, 18, 19, 20,
                                  21, 22, 23, 24, 25, 26, 27, 28};

XReg wx(uint64_t v) { return x(kWritable[v % std::size(kWritable)]); }
XReg rx(uint64_t v) { return x(unsigned(v % 32)); }
FReg fr(uint64_t v) { return f(unsigned(v % 32)); }
VReg vr(uint64_t n) { return reg::v(unsigned(n % 8)); }

int64_t imm12(uint64_t v) { return int64_t(v % 4096) - 2048; }
unsigned sh6(uint64_t v) { return unsigned(v % 64); }
unsigned sh5(uint64_t v) { return unsigned(v % 32); }

/** Scalar memory window: direct imm12 offsets off s0, so cap at 2 KiB. */
uint32_t
scalarWindow(const GenConfig &c)
{
    return std::min<uint32_t>(c.dataBytes, 2048);
}

/** Aligned offset into the scalar window for an access of @p size. */
int64_t
offA(uint64_t v, unsigned size, const GenConfig &c)
{
    return int64_t((v % (scalarWindow(c) / size)) * size);
}

/** Aligned offset anywhere in the data region (loaded via li+add). */
int64_t
offWide(uint64_t v, uint32_t reserveTail, const GenConfig &c)
{
    uint32_t slots = (c.dataBytes - reserveTail) / 8;
    return int64_t((v % slots) * 8);
}

std::string
lbl(const char *prefix, size_t idx)
{
    return std::string(prefix) + std::to_string(idx);
}

constexpr unsigned kSews[] = {8, 16, 32, 64};

struct Ctx
{
    size_t idx;
    const GenConfig &cfg;
};

using EmitFn = void (*)(Assembler &, const GenItem &, const Ctx &);

struct OpDef
{
    const char *name;
    EmitFn emit;
};

// Generic emitter shapes, instantiated per opcode below.
#define OP_RRR(NAME, M)                                                       \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(wx(it.f[0]), rx(it.f[1]), rx(it.f[2]));                          \
     }}
#define OP_RRI(NAME, M)                                                       \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(wx(it.f[0]), rx(it.f[1]), imm12(it.f[2]));                       \
     }}
#define OP_SH(NAME, M, SH)                                                    \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(wx(it.f[0]), rx(it.f[1]), SH(it.f[2]));                         \
     }}
#define OP_LOAD(NAME, M, SZ)                                                  \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &c) {                \
         a.M(wx(it.f[0]), s0, offA(it.f[1], SZ, c.cfg));                      \
     }}
#define OP_STORE(NAME, M, SZ)                                                 \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &c) {                \
         a.M(rx(it.f[0]), s0, offA(it.f[1], SZ, c.cfg));                      \
     }}
#define OP_FLOAD(NAME, M, SZ)                                                 \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &c) {                \
         a.M(fr(it.f[0]), s0, offA(it.f[1], SZ, c.cfg));                      \
     }}
#define OP_FFF(NAME, M)                                                       \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(fr(it.f[0]), fr(it.f[1]), fr(it.f[2]));                          \
     }}
#define OP_FF(NAME, M)                                                        \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(fr(it.f[0]), fr(it.f[1]));                                       \
     }}
#define OP_XF(NAME, M)                                                        \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(wx(it.f[0]), fr(it.f[1]));                                       \
     }}
#define OP_FX(NAME, M)                                                        \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(fr(it.f[0]), rx(it.f[1]));                                       \
     }}
#define OP_XFF(NAME, M)                                                       \
    {NAME, [](Assembler &a, const GenItem &it, const Ctx &) {                 \
         a.M(wx(it.f[0]), fr(it.f[1]), fr(it.f[2]));                          \
     }}

const std::vector<OpDef> &
opTable()
{
    static const std::vector<OpDef> t = {
        // Integer register-register.
        OP_RRR("add", add), OP_RRR("sub", sub), OP_RRR("sll", sll),
        OP_RRR("slt", slt), OP_RRR("sltu", sltu), OP_RRR("xor", xor_),
        OP_RRR("srl", srl), OP_RRR("sra", sra), OP_RRR("or", or_),
        OP_RRR("and", and_), OP_RRR("addw", addw), OP_RRR("subw", subw),
        OP_RRR("mul", mul), OP_RRR("mulh", mulh), OP_RRR("mulhu", mulhu),
        OP_RRR("div", div), OP_RRR("divu", divu), OP_RRR("rem", rem),
        OP_RRR("remu", remu), OP_RRR("mulw", mulw), OP_RRR("divw", divw),
        OP_RRR("remw", remw),
        // Integer immediates and constants.
        OP_RRI("addi", addi), OP_RRI("andi", andi), OP_RRI("ori", ori),
        OP_RRI("xori", xori), OP_RRI("slti", slti), OP_RRI("addiw", addiw),
        OP_SH("slli", slli, sh6), OP_SH("srli", srli, sh6),
        OP_SH("srai", srai, sh6), OP_SH("slliw", slliw, sh5),
        {"li",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.li(wx(it.f[0]), int64_t(it.f[1]));
         }},
        // Scalar memory (bounded offsets off the data base s0).
        OP_LOAD("lb", lb, 1), OP_LOAD("lbu", lbu, 1), OP_LOAD("lh", lh, 2),
        OP_LOAD("lhu", lhu, 2), OP_LOAD("lw", lw, 4), OP_LOAD("lwu", lwu, 4),
        OP_LOAD("ld", ld, 8), OP_STORE("sb", sb, 1), OP_STORE("sh", sh, 2),
        OP_STORE("sw", sw, 4), OP_STORE("sd", sd, 8),
        OP_FLOAD("flw", flw, 4), OP_FLOAD("fld", fld, 8),
        OP_FLOAD("fsw", fsw, 4), OP_FLOAD("fsd", fsd, 8),
        // Scalar FP arithmetic.
        OP_FFF("fadd_s", fadd_s), OP_FFF("fsub_s", fsub_s),
        OP_FFF("fmul_s", fmul_s), OP_FFF("fdiv_s", fdiv_s),
        OP_FFF("fadd_d", fadd_d), OP_FFF("fsub_d", fsub_d),
        OP_FFF("fmul_d", fmul_d), OP_FFF("fdiv_d", fdiv_d),
        OP_FF("fsqrt_d", fsqrt_d),
        OP_FFF("fmin_s", fmin_s), OP_FFF("fmax_s", fmax_s),
        OP_FFF("fmin_d", fmin_d), OP_FFF("fmax_d", fmax_d),
        OP_FFF("fsgnj_s", fsgnj_s), OP_FFF("fsgnj_d", fsgnj_d),
        {"fmadd_d",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.fmadd_d(fr(it.f[0]), fr(it.f[1]), fr(it.f[2]), fr(it.f[3]));
         }},
        {"fmsub_d",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.fmsub_d(fr(it.f[0]), fr(it.f[1]), fr(it.f[2]), fr(it.f[3]));
         }},
        // FP moves, conversions, comparisons, classification. fmv_d_x
        // of raw entropy regularly produces non-NaN-boxed singles and
        // signalling NaNs, which is exactly what the NaN-box and
        // canonical-NaN fixes are fuzzed against.
        OP_FX("fmv_d_x", fmv_d_x), OP_FX("fmv_w_x", fmv_w_x),
        OP_XF("fmv_x_d", fmv_x_d), OP_XF("fmv_x_w", fmv_x_w),
        OP_XF("fcvt_w_s", fcvt_w_s), OP_XF("fcvt_wu_s", fcvt_wu_s),
        OP_XF("fcvt_l_s", fcvt_l_s), OP_XF("fcvt_lu_s", fcvt_lu_s),
        OP_XF("fcvt_w_d", fcvt_w_d), OP_XF("fcvt_wu_d", fcvt_wu_d),
        OP_XF("fcvt_l_d", fcvt_l_d), OP_XF("fcvt_lu_d", fcvt_lu_d),
        OP_FX("fcvt_s_w", fcvt_s_w), OP_FX("fcvt_s_l", fcvt_s_l),
        OP_FX("fcvt_d_w", fcvt_d_w), OP_FX("fcvt_d_l", fcvt_d_l),
        OP_FF("fcvt_s_d", fcvt_s_d), OP_FF("fcvt_d_s", fcvt_d_s),
        OP_XF("fclass_s", fclass_s), OP_XF("fclass_d", fclass_d),
        OP_XFF("feq_s", feq_s), OP_XFF("flt_s", flt_s),
        OP_XFF("fle_s", fle_s), OP_XFF("feq_d", feq_d),
        OP_XFF("flt_d", flt_d), OP_XFF("fle_d", fle_d),
        // XT-910 custom scalar extension.
        {"xt_addsl",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.xt_addsl(wx(it.f[0]), rx(it.f[1]), rx(it.f[2]),
                        unsigned(it.f[3] % 4));
         }},
        {"xt_ext",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             unsigned msb = sh6(it.f[2]);
             a.xt_ext(wx(it.f[0]), rx(it.f[1]), msb,
                      unsigned(it.f[3] % (msb + 1)));
         }},
        {"xt_extu",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             unsigned msb = sh6(it.f[2]);
             a.xt_extu(wx(it.f[0]), rx(it.f[1]), msb,
                       unsigned(it.f[3] % (msb + 1)));
         }},
        {"xt_ff0",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.xt_ff0(wx(it.f[0]), rx(it.f[1]));
         }},
        {"xt_ff1",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.xt_ff1(wx(it.f[0]), rx(it.f[1]));
         }},
        {"xt_rev",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.xt_rev(wx(it.f[0]), rx(it.f[1]));
         }},
        {"xt_tstnbz",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.xt_tstnbz(wx(it.f[0]), rx(it.f[1]));
         }},
        OP_SH("xt_srri", xt_srri, sh6),
        OP_RRR("xt_mula", xt_mula), OP_RRR("xt_muls", xt_muls),
        {"xt_lrw",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             unsigned sh2 = unsigned(it.f[3] % 4);
             uint64_t bound = (scalarWindow(c.cfg) - 8) >> sh2;
             a.li(t5, int64_t(it.f[2] % bound));
             a.xt_lrw(wx(it.f[0]), s0, t5, sh2);
         }},
        {"xt_srd",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             uint64_t bound = scalarWindow(c.cfg) / 8;
             a.li(t5, int64_t((it.f[2] % bound)));
             a.xt_srd(rx(it.f[0]), s0, t5, 3);
         }},
        // Atomics on 8-aligned addresses anywhere in the data region.
        {"amo",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             a.li(t5, offWide(it.f[1], 0, c.cfg));
             a.add(t5, t5, s0);
             XReg rd = wx(it.f[2]), rs = rx(it.f[3]);
             switch (it.f[0] % 5) {
               case 0: a.amoadd_d(rd, rs, t5); break;
               case 1: a.amoswap_w(rd, rs, t5); break;
               case 2: a.amoor_d(rd, rs, t5); break;
               case 3: a.amoand_d(rd, rs, t5); break;
               default: a.amomax_d(rd, rs, t5); break;
             }
         }},
        {"lrsc",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             a.li(t5, offWide(it.f[0], 0, c.cfg));
             a.add(t5, t5, s0);
             a.lr_d(wx(it.f[1]), t5);
             a.sc_d(wx(it.f[2]), rx(it.f[3]), t5);
         }},
        // CSR traffic through the benign scratch register.
        {"csr",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             if (it.f[0] % 2)
                 a.csrw(csr::mscratch, rx(it.f[1]));
             else
                 a.csrr(wx(it.f[1]), csr::mscratch);
         }},
        // Decode-cache flush pressure.
        {"fence",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             if (it.f[0] % 2)
                 a.fence_i();
             else
                 a.fence();
         }},
        // Vector config + arithmetic (v0..v7, LMUL=1).
        {"vec_arith",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.li(t6, int64_t(1 + it.f[0] % 32));
             a.vsetvli(t6, t6, VType{kSews[(it.f[0] >> 8) % 4], 1});
             VReg vd = vr(it.f[1]), s2v = vr(it.f[2]), s1v = vr(it.f[3]);
             switch ((it.f[1] >> 16) % 9) {
               case 0: a.vadd_vv(vd, s2v, s1v); break;
               case 1: a.vsub_vv(vd, s2v, s1v); break;
               case 2: a.vand_vv(vd, s2v, s1v); break;
               case 3: a.vor_vv(vd, s2v, s1v); break;
               case 4: a.vxor_vv(vd, s2v, s1v); break;
               case 5: a.vmul_vv(vd, s2v, s1v); break;
               case 6: a.vmin_vv(vd, s2v, s1v); break;
               case 7: a.vmax_vv(vd, s2v, s1v); break;
               default: a.vredsum_vs(vd, s2v, s1v); break;
             }
         }},
        {"vec_mv",
         [](Assembler &a, const GenItem &it, const Ctx &) {
             a.li(t6, int64_t(1 + it.f[0] % 16));
             a.vsetvli(t6, t6, VType{64, 1});
             switch (it.f[0] % 3) {
               case 0: a.vmv_v_x(vr(it.f[1]), rx(it.f[2])); break;
               case 1: a.vmv_x_s(wx(it.f[2]), vr(it.f[1])); break;
               default: a.vmv_s_x(vr(it.f[1]), rx(it.f[2])); break;
             }
         }},
        // Unit-stride vector load/compute/store inside the region.
        {"vec_mem",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             unsigned vlenB = c.cfg.vlenBits / 8;
             a.li(t6, int64_t(1 + it.f[0] % 64));
             a.vsetvli(t6, t6, VType{kSews[(it.f[0] >> 8) % 4], 1});
             a.li(t5, offWide(it.f[1], vlenB, c.cfg));
             a.add(t5, t5, s0);
             a.vle(vr(it.f[2]), t5);
             a.vadd_vv(vr(it.f[3]), vr(it.f[2]), vr(it.f[3]));
             a.vse(vr(it.f[3]), t5);
         }},
        // Forward skip over one filler instruction.
        {"branch",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             std::string skip = lbl("skip_", c.idx);
             XReg r1 = rx(it.f[1]), r2 = rx(it.f[2]);
             switch (it.f[0] % 6) {
               case 0: a.beq(r1, r2, skip); break;
               case 1: a.bne(r1, r2, skip); break;
               case 2: a.blt(r1, r2, skip); break;
               case 3: a.bge(r1, r2, skip); break;
               case 4: a.bltu(r1, r2, skip); break;
               default: a.bgeu(r1, r2, skip); break;
             }
             a.addi(wx(it.f[3]), wx(it.f[3]), 1);
             a.label(skip);
         }},
        // Bounded counted loop on the private counter t6.
        {"loop",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             std::string head = lbl("loop_", c.idx);
             a.li(t6, int64_t(1 + it.f[0] % 7));
             a.label(head);
             a.add(wx(it.f[1]), wx(it.f[1]), rx(it.f[2]));
             a.xor_(wx(it.f[3]), wx(it.f[3]), t6);
             a.addi(t6, t6, -1);
             a.bnez(t6, head);
         }},
        // Store-to-code of the very bytes already there: semantically a
        // no-op, but it forces the decode caches through their
        // self-modifying-code invalidation path on every engine.
        {"smc",
         [](Assembler &a, const GenItem &it, const Ctx &c) {
             std::string tgt = lbl("smc_", c.idx);
             a.la(t5, tgt);
             a.lw(t4, t5, 0);
             a.sw(t4, t5, 0);
             a.label(tgt);
             a.addi(wx(it.f[0]), wx(it.f[0]), 1);
         }},
    };
    return t;
}

#undef OP_RRR
#undef OP_RRI
#undef OP_SH
#undef OP_LOAD
#undef OP_STORE
#undef OP_FLOAD
#undef OP_FFF
#undef OP_FF
#undef OP_XF
#undef OP_FX
#undef OP_XFF

const OpDef *
findOp(const std::string &name)
{
    for (const OpDef &d : opTable())
        if (name == d.name)
            return &d;
    return nullptr;
}

/** Hash-fold constant shared by the guest epilogue and any host code
 *  that wants to predict it. */
constexpr uint64_t kFoldPrime = 0x9e3779b97f4a7c15ull;

} // namespace

const std::vector<std::string> &
opNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const OpDef &d : opTable())
            v.push_back(d.name);
        return v;
    }();
    return names;
}

GenProgram
generate(const GenConfig &cfg)
{
    GenProgram p;
    p.cfg = cfg;
    Xorshift64 rng(cfg.seed);
    const auto &table = opTable();
    p.items.reserve(cfg.numItems);
    for (unsigned i = 0; i < cfg.numItems; ++i) {
        GenItem it;
        it.op = table[rng.below(table.size())].name;
        for (auto &fld : it.f)
            fld = rng.next();
        p.items.push_back(std::move(it));
    }
    return p;
}

Program
GenProgram::assemble() const
{
    xt_assert(cfg.dataBytes >= 2048 && cfg.dataBytes % 8 == 0,
              "fuzz data region must be >= 2 KiB and 8-byte sized");
    const unsigned vlenB = cfg.vlenBits / 8;
    Assembler a;

    // ---- prologue: data base + seeded architectural entropy ---------
    a.la(s0, "data");
    Xorshift64 rng(cfg.seed ^ 0xa5a5a5a5a5a5a5a5ull);
    for (unsigned r : kWritable)
        a.li(x(r), int64_t(rng.next()));
    for (unsigned i = 0; i < 32; ++i) {
        a.li(t6, int64_t(rng.next()));
        a.fmv_d_x(f(i), t6);
    }
    a.li(t6, 0);
    a.vsetvli(t6, zero, VType{64, 1});
    for (unsigned i = 0; i < 8; ++i) {
        a.li(t5, int64_t(rng.next()));
        a.vmv_v_x(reg::v(i), t5);
    }
    a.li(t5, int64_t(rng.next()));
    a.csrw(csr::mscratch, t5);

    // ---- generated body ---------------------------------------------
    for (size_t i = 0; i < items.size(); ++i) {
        const OpDef *d = findOp(items[i].op);
        xt_assert(d, "unknown fuzz op '", items[i].op, "'");
        d->emit(a, items[i], Ctx{i, cfg});
    }

    // ---- epilogue: fold final state into one word at "result" -------
    // Integer registers first (x29/x30 are the fold scratch).
    a.li(t5, 0);
    a.li(t4, int64_t(kFoldPrime));
    for (unsigned r = 1; r < 32; ++r) {
        if (r == 29 || r == 30)
            continue;
        a.xor_(t5, t5, x(r));
        a.mul(t5, t5, t4);
    }
    // FP registers (t6's old value is already folded).
    for (unsigned i = 0; i < 32; ++i) {
        a.fmv_x_d(t6, f(i));
        a.xor_(t5, t5, t6);
        a.mul(t5, t5, t4);
    }
    // The scratch CSR.
    a.csrr(t6, csr::mscratch);
    a.xor_(t5, t5, t6);
    a.mul(t5, t5, t4);
    // Vector registers: dump raw bytes into the vdump area, which the
    // memory fold below then covers.
    a.vsetvli(t6, zero, VType{8, 1}); // vl = VLEN/8 bytes
    a.la(t4, "vdump");
    for (unsigned i = 0; i < 8; ++i) {
        a.vse(reg::v(i), t4);
        a.addi(t4, t4, int64_t(vlenB));
    }
    // Fold the whole data + vdump range, 8 bytes at a time.
    a.li(t2, int64_t(kFoldPrime));
    a.la(t4, "data");
    a.la(t3, "memend");
    a.label("memfold");
    a.ld(t6, t4, 0);
    a.xor_(t5, t5, t6);
    a.mul(t5, t5, t2);
    a.addi(t4, t4, 8);
    a.bltu(t4, t3, "memfold");
    a.la(t4, "result");
    a.sd(t5, t4, 0);
    a.ebreak();

    // ---- data: seeded fill, vector dump area, result word ----------
    a.align(8);
    a.label("data");
    {
        Xorshift64 fill(cfg.seed ^ 0x3c3c3c3c3c3c3c3cull);
        std::vector<uint8_t> bytes(cfg.dataBytes);
        for (uint32_t i = 0; i < cfg.dataBytes; i += 8) {
            uint64_t w = fill.next();
            for (unsigned b = 0; b < 8; ++b)
                bytes[i + b] = uint8_t(w >> (8 * b));
        }
        a.bytes(bytes);
    }
    a.label("vdump");
    a.zero(8 * size_t(vlenB));
    a.label("memend");
    a.label("result");
    a.dword(0);
    return a.assemble();
}

void
dumpReproducer(std::ostream &os, const GenProgram &p)
{
    os << "xtfuzz 1\n";
    os << "seed " << p.cfg.seed << "\n";
    os << "vlen " << p.cfg.vlenBits << "\n";
    os << "databytes " << p.cfg.dataBytes << "\n";
    if (p.hasExpectHash) {
        os << "expect-xhash " << std::hex << p.expectHash << std::dec
           << "\n";
    }
    for (const GenItem &it : p.items) {
        os << "item " << it.op << std::hex;
        for (uint64_t fld : it.f)
            os << " " << fld;
        os << std::dec << "\n";
    }
    os << "end\n";
}

bool
parseReproducer(std::istream &is, GenProgram &out, std::string &err)
{
    out = GenProgram{};
    std::string line;
    if (!std::getline(is, line) || line != "xtfuzz 1") {
        err = "missing 'xtfuzz 1' header";
        return false;
    }
    bool sawEnd = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "seed") {
            ls >> out.cfg.seed;
        } else if (key == "vlen") {
            ls >> out.cfg.vlenBits;
        } else if (key == "databytes") {
            ls >> out.cfg.dataBytes;
        } else if (key == "expect-xhash") {
            ls >> std::hex >> out.expectHash >> std::dec;
            out.hasExpectHash = true;
        } else if (key == "item") {
            GenItem it;
            ls >> it.op;
            for (auto &fld : it.f)
                ls >> std::hex >> fld >> std::dec;
            if (!findOp(it.op)) {
                err = "unknown op '" + it.op + "'";
                return false;
            }
            if (ls.fail()) {
                err = "malformed item line: " + line;
                return false;
            }
            out.items.push_back(std::move(it));
        } else if (key == "end") {
            sawEnd = true;
            break;
        } else {
            err = "unknown directive '" + key + "'";
            return false;
        }
        if (ls.fail()) {
            err = "malformed line: " + line;
            return false;
        }
    }
    if (!sawEnd) {
        err = "missing 'end'";
        return false;
    }
    if (out.cfg.vlenBits < 64 || out.cfg.vlenBits > 2048 ||
        out.cfg.dataBytes < 2048 || out.cfg.dataBytes % 8) {
        err = "config out of range";
        return false;
    }
    out.cfg.numItems = unsigned(out.items.size());
    return true;
}

} // namespace xt910::check
