/**
 * @file
 * Delta-debugging (ddmin) minimizer for failing fuzz programs.
 * Because every generator item is self-contained (see progen.h),
 * removing an arbitrary subset of items always leaves a legal,
 * terminating program — so shrinking is a pure search over item
 * subsets, no re-validation pass needed.
 */

#ifndef XT910_CHECK_SHRINK_H
#define XT910_CHECK_SHRINK_H

#include <functional>

#include "check/progen.h"

namespace xt910::check
{

/** True when @p prog still exhibits the failure being minimized. */
using FailPredicate = std::function<bool(const GenProgram &)>;

/**
 * Minimize @p prog with classic ddmin: repeatedly try dropping chunks
 * of items, keeping any removal after which @p fails still holds.
 * @p maxEvals bounds predicate evaluations so shrinking a slow
 * failure cannot run away. The input is assumed to fail.
 */
GenProgram shrinkProgram(const GenProgram &prog, const FailPredicate &fails,
                         unsigned maxEvals = 400);

} // namespace xt910::check

#endif // XT910_CHECK_SHRINK_H
