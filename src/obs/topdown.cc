#include "obs/topdown.h"

#include <cstdio>

#include "common/snapio.h"

namespace xt910
{
namespace obs
{

TopDown::TopDown(const std::string &statPrefix, unsigned retireWidth_)
    : stats(statPrefix),
      retiring(stats, "slots_retiring", "retire slots used by µops"),
      frontendBound(stats, "slots_frontend",
                    "empty slots: instruction supply late (benign)"),
      badSpeculation(stats, "slots_bad_speculation",
                     "empty slots: fetch held back by a flush"),
      backendMem(stats, "slots_backend_mem",
                 "empty slots: ROB head waiting on memory"),
      backendCore(stats, "slots_backend_core",
                  "empty slots: ROB head waiting on a core unit"),
      retireWidth(retireWidth_),
      usedThisCycle(retireWidth_)
{
}

void
TopDown::chargeIdle(uint64_t idle, bool backendBound, bool memBound,
                    bool badSpecFetch)
{
    // Flush recovery wins: a µop fetched late because of a flush is
    // "backend bound" in the mechanical sense too (its own, shifted,
    // completion sets its retire cycle), but the root cause of the
    // bubble is the speculation failure, so charge it there — as the
    // top-down method does.
    Counter &cause = badSpecFetch ? badSpeculation
                     : backendBound
                         ? (memBound ? backendMem : backendCore)
                         : frontendBound;
    cause += idle;
}

void
TopDown::finalize()
{
    frontendBound += retireWidth - usedThisCycle;
    usedThisCycle = retireWidth;
}

uint64_t
TopDown::slotsAccounted() const
{
    return retiring.value() + frontendBound.value() +
           badSpeculation.value() + backendMem.value() +
           backendCore.value();
}

std::string
TopDown::summary() const
{
    const double total = double(slotsAccounted());
    auto pct = [total](const Counter &c) {
        return total ? 100.0 * double(c.value()) / total : 0.0;
    };
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "retiring %.1f%% | frontend %.1f%% | bad-spec %.1f%% "
                  "| backend-mem %.1f%% | backend-core %.1f%%",
                  pct(retiring), pct(frontendBound),
                  pct(badSpeculation), pct(backendMem),
                  pct(backendCore));
    return buf;
}

void
TopDown::snapSave(SnapWriter &w) const
{
    w.u32(retireWidth);
    w.u64(curCycle);
    w.u32(usedThisCycle);
    stats.snapSave(w);
}

void
TopDown::snapLoad(SnapReader &r)
{
    if (r.u32() != retireWidth)
        throw SnapError("snapshot retire width does not match");
    curCycle = r.u64();
    usedThisCycle = r.u32();
    stats.snapLoad(r);
}

} // namespace obs
} // namespace xt910
