/**
 * @file
 * Top-down retire-slot accounting (after Yasin's top-down method,
 * adapted to a scheduled-trace model). Every retire slot of every
 * cycle is attributed to exactly one of:
 *
 *   retiring      — a µop retired in the slot;
 *   frontend      — the next µop's fetch/decode supply was late for a
 *                   benign reason (I-cache miss, taken-branch bubble);
 *   bad_spec      — the next µop's fetch was held back by a
 *                   speculation flush (branch/target mispredict,
 *                   memory-ordering violation, trap, vl replay);
 *   backend_mem   — the ROB-head µop was still executing and is a
 *                   memory-class op (load/store/AMO/vector memory);
 *   backend_core  — the ROB-head µop was still executing on a
 *                   core-side unit (ALU/FPU latency, dependency
 *                   chains, port conflicts).
 *
 * Invariant (checked by tests): the five counters sum to
 * retireWidth × cycles() once finalize() has charged the tail of the
 * final cycle. The accounting is O(1) per retired µop.
 */

#ifndef XT910_OBS_TOPDOWN_H
#define XT910_OBS_TOPDOWN_H

#include <string>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{
namespace obs
{

/** See file comment. */
class TopDown
{
  public:
    TopDown(const std::string &statPrefix, unsigned retireWidth);

    /**
     * Account one µop retiring at cycle @p c (non-decreasing across
     * calls). The flags describe why the *gap* since the previous
     * retire cycle, if any, existed: @p backendBound when the µop's
     * own completion (done + retire stages) set its retire cycle,
     * @p memBound to split backend stalls, @p badSpecFetch when its
     * fetch was held back by a speculation flush.
     */
    void
    onRetire(Cycle c, bool backendBound, bool memBound,
             bool badSpecFetch)
    {
        // Inline: this runs once per retired µop inside the core's
        // scheduling loop; an out-of-line call costs measurable time.
        if (c > curCycle) {
            uint64_t idle = uint64_t(retireWidth - usedThisCycle) +
                            uint64_t(retireWidth) * (c - curCycle - 1);
            if (idle)
                chargeIdle(idle, backendBound, memBound, badSpecFetch);
            curCycle = c;
            usedThisCycle = 0;
        }
        // The retire bandwidth limiter guarantees <= width per cycle.
        if (usedThisCycle < retireWidth)
            ++usedThisCycle;
        ++retiring;
    }

    /**
     * Charge the unused slots of the final retire cycle (to frontend:
     * no younger instruction exists). Idempotent; call at end of run.
     */
    void finalize();

    /** Cycles covered so far (== last retire cycle seen). */
    Cycle cycles() const { return curCycle; }

    unsigned width() const { return retireWidth; }

    /** Total slots accounted (sum of the five counters). */
    uint64_t slotsAccounted() const;

    /** One-line percentage summary for CLI output. */
    std::string summary() const;

    /** Serialize the slot counters and the current-cycle cursor. */
    void snapSave(class SnapWriter &w) const;
    void snapLoad(class SnapReader &r);

    StatGroup stats;
    Counter retiring;
    Counter frontendBound;
    Counter badSpeculation;
    Counter backendMem;
    Counter backendCore;

  private:
    /** Cold half of onRetire: attribute @p idle empty slots. */
    void chargeIdle(uint64_t idle, bool backendBound, bool memBound,
                    bool badSpecFetch);

    unsigned retireWidth;
    Cycle curCycle = 0;
    /** Slots consumed in curCycle. Initialized "full" so the phantom
     *  cycle 0 (before the first retire) is never charged. */
    unsigned usedThisCycle;
};

} // namespace obs
} // namespace xt910

#endif // XT910_OBS_TOPDOWN_H
