/**
 * @file
 * Pipeline event tracer emitting the Kanata log format understood by
 * the Konata visualizer (https://github.com/shioyadan/Konata).
 *
 * The timing model is a scheduled trace: every µop's full lifecycle
 * (fetch, decode, rename, issue, execute-done, retire) is known the
 * moment it is consumed, but µops are consumed in *retire* order while
 * Kanata wants records in non-decreasing *cycle* order. The tracer
 * therefore buffers events and flushes them once the core guarantees
 * no younger µop can produce an earlier event — the caller passes that
 * watermark (the core's monotonic fetch-group start cycle) with every
 * record. With several cores sharing one tracer the global watermark
 * is the minimum across harts.
 *
 * When tracing is disabled the core-side hook is a single branch on a
 * null KonataTracer pointer; no event objects are ever built.
 */

#ifndef XT910_OBS_KONATA_H
#define XT910_OBS_KONATA_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace xt910
{
namespace obs
{

/** One µop's lifecycle, reported by the core at consume time. */
struct UopEvent
{
    Addr pc = 0;
    unsigned hart = 0;
    uint64_t seq = 0;       ///< architectural instruction index
    unsigned uop = 0;       ///< µop index within the instruction
    unsigned nUops = 1;
    std::string disasm;     ///< rendered assembly for the left pane
    Cycle fetch = 0;        ///< IBUF-exit availability
    Cycle decode = 0;
    Cycle rename = 0;
    Cycle issue = 0;
    Cycle done = 0;         ///< execution complete / writeback
    Cycle retire = 0;
    /** Static string naming the flush this instruction caused
     *  (branch-mispredict, trap, ...); nullptr when none. */
    const char *flushCause = nullptr;
};

/** See file comment. */
class KonataTracer
{
  public:
    explicit KonataTracer(std::ostream &os);
    ~KonataTracer();

    KonataTracer(const KonataTracer &) = delete;
    KonataTracer &operator=(const KonataTracer &) = delete;

    /**
     * Record one µop. @p watermark promises that every event of every
     * future record on this hart lands at cycle >= watermark.
     */
    void record(const UopEvent &e, Cycle watermark);

    /** Emit everything still buffered (end of run). */
    void finish();

    uint64_t uopsRecorded() const { return nUops; }
    /** Events that arrived below an already-emitted cycle (should stay
     *  0; non-zero means a watermark promise was broken and the event
     *  was clamped to keep the output well-formed). */
    uint64_t clampedEvents() const { return nClamped; }

  private:
    struct Ev
    {
        Cycle cycle;
        uint64_t order; ///< insertion sequence, for a stable sort
        std::string text;
    };

    void push(Cycle c, std::string text);
    /** Sort and emit every buffered event with cycle < @p limit. */
    void emitBefore(Cycle limit);
    void emitOne(const Ev &e);

    std::ostream &os;
    std::vector<Ev> buf;
    std::map<unsigned, Cycle> hartWatermark;
    /** Next buffer size that triggers a flush; re-armed after each
     *  flush so a slow watermark never causes per-record resorts. */
    size_t flushAt = 0;
    uint64_t nextOrder = 0;
    uint64_t nextId = 0;
    uint64_t nUops = 0;
    uint64_t nClamped = 0;
    Cycle cursor = 0;
    bool cursorInit = false;
    bool headerDone = false;
    bool finished = false;
};

} // namespace obs
} // namespace xt910

#endif // XT910_OBS_KONATA_H
