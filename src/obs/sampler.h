/**
 * @file
 * Interval statistics sampler: snapshots every registered counter each
 * N cycles and emits one JSON object per interval (JSONL) with the
 * per-interval deltas, so benches can plot IPC / miss-rate time series
 * instead of a single end-of-run scalar.
 *
 * The per-instruction hot-path cost when attached is one compare
 * (cycle vs. next sample point); when not attached the system-side
 * hook is a branch on a null pointer.
 */

#ifndef XT910_OBS_SAMPLER_H
#define XT910_OBS_SAMPLER_H

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xt910
{
namespace obs
{

/** See file comment. */
class IntervalSampler
{
  public:
    /** Emit JSONL to @p os, one record per @p interval cycles. */
    IntervalSampler(std::ostream &os, Cycle interval);

    IntervalSampler(const IntervalSampler &) = delete;
    IntervalSampler &operator=(const IntervalSampler &) = delete;

    /** Register a group to snapshot (before the run starts). */
    void addGroup(const StatGroup *g);

    /** Hot-path hook: sample when @p now crossed the next boundary. */
    void
    tick(Cycle now, uint64_t insts)
    {
        if (now >= nextAt)
            sample(now, insts, false);
    }

    /** Emit the final (possibly partial) interval. */
    void finish(Cycle now, uint64_t insts);

    uint64_t samplesEmitted() const { return nSamples; }

  private:
    void sample(Cycle now, uint64_t insts, bool final);

    std::ostream &os;
    Cycle interval;
    Cycle nextAt;
    Cycle prevCycle = 0;
    uint64_t prevInsts = 0;
    uint64_t nSamples = 0;
    bool finished = false;
    std::vector<const StatGroup *> groups;
    std::vector<uint64_t> prev; ///< flattened counter snapshot
};

} // namespace obs
} // namespace xt910

#endif // XT910_OBS_SAMPLER_H
