#include "obs/konata.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace xt910
{
namespace obs
{

namespace
{

/** Flush the buffer once it holds this many events (amortizes the
 *  sort; the in-flight window is far smaller in practice). */
constexpr size_t flushThreshold = 8192;

} // namespace

KonataTracer::KonataTracer(std::ostream &os_) : os(os_) {}

KonataTracer::~KonataTracer()
{
    finish();
}

void
KonataTracer::push(Cycle c, std::string text)
{
    buf.push_back(Ev{c, nextOrder++, std::move(text)});
}

void
KonataTracer::record(const UopEvent &e, Cycle watermark)
{
    ++nUops;
    const uint64_t id = nextId++;

    // Clamp milestones monotone within the µop so stages never run
    // backwards even if a model quirk reports one out of order.
    const Cycle f = e.fetch;
    const Cycle d = std::max(e.decode, f);
    const Cycle rn = std::max(e.rename, d);
    const Cycle is = std::max(e.issue, rn);
    const Cycle dn = std::max(e.done, is);
    const Cycle rt = std::max(e.retire, dn);

    std::ostringstream lbl;
    lbl << std::hex << e.pc << std::dec << ": " << e.disasm;
    if (e.nUops > 1)
        lbl << " [uop " << e.uop + 1 << "/" << e.nUops << "]";

    {
        std::ostringstream t;
        t << "I\t" << id << "\t" << e.seq << "\t" << e.hart;
        push(f, t.str());
    }
    push(f, "L\t" + std::to_string(id) + "\t0\t" + lbl.str());
    if (e.flushCause)
        push(f, "L\t" + std::to_string(id) + "\t1\tflush: " +
                    e.flushCause);

    const std::string sid = std::to_string(id);
    push(f, "S\t" + sid + "\t0\tF");
    push(d, "E\t" + sid + "\t0\tF");
    push(d, "S\t" + sid + "\t0\tDc");
    push(rn, "E\t" + sid + "\t0\tDc");
    push(rn, "S\t" + sid + "\t0\tRn");
    push(is, "E\t" + sid + "\t0\tRn");
    push(is, "S\t" + sid + "\t0\tEx");
    push(dn, "E\t" + sid + "\t0\tEx");
    push(dn, "S\t" + sid + "\t0\tCm");
    push(rt, "E\t" + sid + "\t0\tCm");
    push(rt, "R\t" + sid + "\t" + std::to_string(e.seq) + "\t0");

    hartWatermark[e.hart] = watermark;
    if (buf.size() >= flushAt) {
        Cycle global = std::numeric_limits<Cycle>::max();
        for (const auto &[hart, wm] : hartWatermark)
            global = std::min(global, wm);
        emitBefore(global);
        // Whatever survived the flush is still in flight; only resort
        // once another batch of events has accumulated on top of it.
        flushAt = buf.size() + flushThreshold;
    }
}

void
KonataTracer::emitOne(const Ev &e)
{
    if (!headerDone) {
        os << "Kanata\t0004\n";
        headerDone = true;
    }
    if (!cursorInit) {
        os << "C=\t" << e.cycle << "\n";
        cursor = e.cycle;
        cursorInit = true;
    } else if (e.cycle > cursor) {
        os << "C\t" << (e.cycle - cursor) << "\n";
        cursor = e.cycle;
    } else if (e.cycle < cursor) {
        ++nClamped; // broken watermark promise; keep output well-formed
    }
    os << e.text << "\n";
}

void
KonataTracer::emitBefore(Cycle limit)
{
    auto mid = std::stable_partition(
        buf.begin(), buf.end(),
        [limit](const Ev &e) { return e.cycle < limit; });
    std::sort(buf.begin(), mid, [](const Ev &a, const Ev &b) {
        return a.cycle != b.cycle ? a.cycle < b.cycle
                                  : a.order < b.order;
    });
    for (auto it = buf.begin(); it != mid; ++it)
        emitOne(*it);
    buf.erase(buf.begin(), mid);
}

void
KonataTracer::finish()
{
    if (finished)
        return;
    finished = true;
    emitBefore(std::numeric_limits<Cycle>::max());
    os.flush();
}

} // namespace obs
} // namespace xt910
