#include "obs/sampler.h"

#include "common/json.h"

namespace xt910
{
namespace obs
{

IntervalSampler::IntervalSampler(std::ostream &os_, Cycle interval_)
    : os(os_), interval(interval_ ? interval_ : 1), nextAt(interval)
{
}

void
IntervalSampler::addGroup(const StatGroup *g)
{
    groups.push_back(g);
    prev.resize(prev.size() + g->counters().size(), 0);
}

void
IntervalSampler::sample(Cycle now, uint64_t insts, bool final)
{
    if (finished)
        return;
    os << "{\"type\": \"" << (final ? "final_interval" : "interval")
       << "\", \"cycle\": " << now << ", \"start_cycle\": " << prevCycle
       << ", \"insts\": " << insts
       << ", \"d_insts\": " << (insts - prevInsts) << ", \"d\": {";
    size_t idx = 0;
    bool first = true;
    for (const StatGroup *g : groups) {
        for (const Counter *c : g->counters()) {
            uint64_t v = c->value();
            if (v != prev[idx]) {
                if (!first)
                    os << ", ";
                first = false;
                os << "\"" << json::escape(g->name()) << "."
                   << json::escape(c->name())
                   << "\": " << (v - prev[idx]);
                prev[idx] = v;
            }
            ++idx;
        }
    }
    os << "}}\n";
    // Flush per record: the JSONL stream is the crash salvage — every
    // completed interval must be on disk before the next one begins,
    // so a killed run leaves a truncation-free prefix behind.
    os.flush();
    ++nSamples;
    prevCycle = now;
    prevInsts = insts;
    nextAt = (now / interval + 1) * interval;
    if (final)
        finished = true;
}

void
IntervalSampler::finish(Cycle now, uint64_t insts)
{
    if (!finished)
        sample(now, insts, true);
    os.flush();
}

} // namespace obs
} // namespace xt910
