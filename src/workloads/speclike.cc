/**
 * @file
 * A SPECInt2006-like large-footprint mix (§X): a multi-megabyte
 * pointer-chase interleaved with hash-table-style scattered updates
 * and a linear scan — "very large programs that frequently incur L2
 * cache misses ... factoring in core performance, cache size, cache
 * miss, DDR latency".
 */

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

WorkloadBuild
buildSpecLikeMix(const WorkloadOptions &o)
{
    // Footprint: chaseN * 8B (default 2 MiB) + tableN * 8B (1 MiB).
    const unsigned chaseN = 256 * 1024;
    const unsigned tableN = 128 * 1024;
    const unsigned steps = 60'000 * o.scale;
    const Addr chaseBase = 0xa000'0000;
    const Addr tableBase = 0xb000'0000;

    Assembler a;
    // Build the chase permutation in code: next[i] = (i*larger prime)
    // % chaseN gives a single full cycle when gcd(prime, chaseN)==1.
    const uint64_t prime = 611953; // odd, not a factor of 2^k
    a.li(s1, int64_t(chaseBase));
    a.li(s2, int64_t(tableBase));
    a.li(t0, 0);
    a.li(t1, int64_t(chaseN));
    a.li(t2, int64_t(prime));
    a.label("init");
    a.mul(t3, t0, t2);
    a.remu(t3, t3, t1);   // successor index... stored at slot i
    a.slli(t4, t0, 3);
    a.add(t4, t4, s1);
    a.sd(t3, t4, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "init");
    // Hot loop: chase + hash update + occasional scan step.
    a.li(a0, 0);
    a.li(s3, 0);           // cur
    a.li(s4, int64_t(steps));
    a.li(s5, 0x9e3779b97f4a7c15ull);
    a.li(s6, int64_t(tableN - 1));
    a.li(s7, 0);           // scan pointer
    a.label("loop");
    a.slli(t0, s3, 3);
    a.add(t0, t0, s1);
    a.ld(s3, t0, 0);       // cur = next[cur]
    // hash-table update: t1 = (cur * golden) & (tableN-1)
    a.mul(t1, s3, s5);
    a.srli(t1, t1, 40);
    a.and_(t1, t1, s6);
    a.slli(t1, t1, 3);
    a.add(t1, t1, s2);
    a.ld(t2, t1, 0);
    a.add(t2, t2, s3);
    a.sd(t2, t1, 0);
    a.add(a0, a0, t2);
    // scan: one sequential element per step
    a.slli(t3, s7, 3);
    a.add(t3, t3, s2);
    a.ld(t4, t3, 0);
    a.xor_(a0, a0, t4);
    a.addi(s7, s7, 1);
    a.and_(s7, s7, s6);
    a.addi(s4, s4, -1);
    a.bnez(s4, "loop");
    epilogue(a);
    resultSlot(a);

    // Host reference.
    std::vector<uint64_t> next(chaseN), table(tableN, 0);
    for (uint64_t i = 0; i < chaseN; ++i)
        next[i] = (i * prime) % chaseN;
    uint64_t acc = 0, cur = 0, scan = 0;
    for (unsigned s = 0; s < steps; ++s) {
        cur = next[cur];
        uint64_t h = ((cur * 0x9e3779b97f4a7c15ull) >> 40) & (tableN - 1);
        table[h] += cur;
        acc += table[h];
        acc ^= table[scan];
        scan = (scan + 1) & (tableN - 1);
    }
    return {a.assemble(), acc, steps};
}

} // namespace xt910
