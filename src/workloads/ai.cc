/**
 * @file
 * AI / domain-specific kernels (§VII, §X): a 16-bit MAC dot product in
 * scalar and vector (vwmacc) forms — the paper's headline vector
 * showcase (16x 16-bit MACs per cycle on XT-910 vs 8x on NEON) — and a
 * blockchain-style hashing kernel exercising the bit-manipulation
 * custom instructions (the Alibaba Cloud FPGA deployment use case).
 */

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

namespace
{

constexpr unsigned macN = 2048;

std::pair<std::vector<int16_t>, std::vector<int16_t>>
macData()
{
    std::vector<int16_t> x(macN), w(macN);
    Xorshift64 rng(6001);
    for (unsigned i = 0; i < macN; ++i) {
        x[i] = int16_t(rng.next() & 0xff) - 128;
        w[i] = int16_t(rng.next() & 0xff) - 128;
    }
    return {x, w};
}

uint64_t
macReference(unsigned iters)
{
    auto [x, w] = macData();
    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t dot = 0;
        for (unsigned i = 0; i < macN; ++i)
            dot += int64_t(x[i]) * int64_t(w[i]);
        acc = acc * 31 + uint64_t(dot);
    }
    return acc;
}

void
emitMacData(Assembler &a)
{
    auto [x, w] = macData();
    a.align(2);
    a.label("x");
    for (int16_t v : x)
        a.half(uint16_t(v));
    a.label("w");
    for (int16_t v : w)
        a.half(uint16_t(v));
    resultSlot(a);
}

} // namespace

WorkloadBuild
buildAiMacScalar(const WorkloadOptions &o)
{
    const unsigned iters = 10 * o.scale;
    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "x");
    a.la(s2, "w");
    a.label("outer");
    a.li(s3, 0);
    a.li(s4, macN);
    a.li(s5, 0); // dot
    a.label("loop");
    if (o.extended) {
        a.xt_lrh(t0, s1, s3, 1);
        a.xt_lrh(t1, s2, s3, 1);
        a.xt_mulah(s5, t0, t1);
    } else {
        a.slli(t2, s3, 1);
        a.add(t3, s1, t2);
        a.lh(t0, t3, 0);
        a.add(t3, s2, t2);
        a.lh(t1, t3, 0);
        a.mul(t4, t0, t1);
        a.add(s5, s5, t4);
    }
    a.addi(s3, s3, 1);
    a.blt(s3, s4, "loop");
    a.slli(t5, a0, 5);
    a.sub(a0, t5, a0);
    a.add(a0, a0, s5);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);
    emitMacData(a);
    return {a.assemble(), macReference(iters), iters};
}

WorkloadBuild
buildAiMacVector(const WorkloadOptions &o)
{
    const unsigned iters = 10 * o.scale;
    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.label("outer");
    a.la(s1, "x");
    a.la(s2, "w");
    a.li(s3, macN);
    // Zero the widening accumulator group (v4..v5 at LMUL=2/SEW=32).
    a.vsetvli(t0, zero, VType{.sew = 32, .lmul = 2});
    a.vmv_v_i(v4, 0);
    a.label("loop");
    a.vsetvli(t0, s3, VType{.sew = 16, .lmul = 1});
    a.vle(v1, s1);
    a.vle(v2, s2);
    a.vwmacc_vv(v4, v1, v2); // 32-bit accumulators across v4..v5
    a.slli(t1, t0, 1);
    a.add(s1, s1, t1);
    a.add(s2, s2, t1);
    a.sub(s3, s3, t0);
    a.bnez(s3, "loop");
    // Reduce the 32-bit accumulators.
    a.vsetvli(t0, zero, VType{.sew = 32, .lmul = 2});
    a.vmv_v_i(v6, 0);
    a.vredsum_vs(v8, v4, v6);
    a.vmv_x_s(t2, v8);
    a.slli(t5, a0, 5);
    a.sub(a0, t5, a0);
    a.add(a0, a0, t2);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);
    emitMacData(a);
    return {a.assemble(), macReference(iters), iters};
}

WorkloadBuild
buildBlockchainHash(const WorkloadOptions &o)
{
    constexpr unsigned blockWords = 8; // 64-byte blocks
    constexpr unsigned blocks = 64;
    const unsigned iters = 8 * o.scale;
    std::vector<uint64_t> data(blockWords * blocks);
    Xorshift64 rng(7007);
    for (auto &d : data)
        d = rng.next();

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "data");
    a.li(s6, 0x9e3779b97f4a7c15ull);
    if (!o.extended) {
        // Loop-invariant byte-reverse masks, hoisted as a compiler
        // would.
        a.li(s9, 0x00ff00ff00ff00ffll);
        a.li(s10, 0x0000ffff0000ffffll);
    }
    a.label("outer");
    a.li(s2, 0); // block index
    a.li(s3, blocks);
    a.label("blkloop");
    // state = block index seed
    a.xor_(s4, s2, s6);
    a.li(t0, 0); // word index
    a.li(t1, blockWords);
    a.slli(t2, s2, 6);
    a.add(t2, t2, s1); // block base
    a.label("mix");
    a.slli(t3, t0, 3);
    a.add(t3, t3, t2);
    a.ld(t4, t3, 0);
    a.xor_(s4, s4, t4);
    a.mul(s4, s4, s6);
    if (o.extended) {
        a.xt_srri(s4, s4, 29);
        a.xt_rev(t5, s4);
    } else {
        a.srli(t5, s4, 29);
        a.slli(s4, s4, 35);
        a.or_(s4, s4, t5);
        // byte reverse ladder (masks hoisted in s9/s10)
        a.srli(t5, s4, 8);
        a.and_(t5, t5, s9);
        a.and_(a3, s4, s9);
        a.slli(a3, a3, 8);
        a.or_(t5, t5, a3);
        a.srli(a3, t5, 16);
        a.and_(a3, a3, s10);
        a.and_(t5, t5, s10);
        a.slli(t5, t5, 16);
        a.or_(t5, t5, a3);
        a.srli(a3, t5, 32);
        a.slli(t5, t5, 32);
        a.or_(t5, t5, a3);
    }
    a.add(s4, s4, t5);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "mix");
    a.add(a0, a0, s4);
    a.slli(t5, a0, 7);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s3, "blkloop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("data");
    for (uint64_t v : data)
        a.dword(v);
    resultSlot(a);

    uint64_t acc = 0;
    const uint64_t golden = 0x9e3779b97f4a7c15ull;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned b = 0; b < blocks; ++b) {
            uint64_t st = uint64_t(b) ^ golden;
            for (unsigned w = 0; w < blockWords; ++w) {
                st ^= data[b * blockWords + w];
                st *= golden;
                st = (st >> 29) | (st << 35);
                st += byteSwap64(st);
            }
            acc += st;
            acc ^= acc << 7;
        }
    }
    return {a.assemble(), acc, uint64_t(iters) * blocks};
}

} // namespace xt910
