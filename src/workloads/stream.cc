/**
 * @file
 * STREAM kernels (Fig. 21): copy, scale, add and triad over arrays
 * sized by WorkloadOptions::streamBytes (choose larger than the L2 to
 * reproduce the memory-bound regime of the paper's prefetch study).
 * Arrays are initialized by code rather than embedded, keeping images
 * small; the checksum samples the destination array.
 */

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

namespace
{

enum class StreamKind { Copy, Scale, Add, Triad };

WorkloadBuild
buildStream(StreamKind kind, const WorkloadOptions &o)
{
    const unsigned n = std::max<unsigned>(1024, o.streamBytes / 8);
    const unsigned iters = 2 * o.scale;

    Assembler a;
    // Arrays live beyond the image: a at A0, b at A0+n*8, c at +2n*8.
    const Addr arrayBase = 0x9000'0000;
    a.li(s1, int64_t(arrayBase));             // a
    a.li(s2, int64_t(arrayBase + 8ull * n));  // b
    a.li(s3, int64_t(arrayBase + 16ull * n)); // c
    a.la(t0, "consts");
    a.fld(fs0, t0, 0);  // 1.0
    a.fld(fs1, t0, 8);  // 2.0
    a.fld(fs2, t0, 16); // 3.0 (scalar)
    a.fld(fs3, t0, 24); // 1e3
    // init: a[i]=1.0 + small ramp, b[i]=2.0, c[i]=0.0
    a.li(t1, 0);
    a.li(t2, int64_t(n));
    a.fmv_d_x(fa3, zero);
    a.label("init");
    a.slli(t3, t1, 3);
    a.add(t4, s1, t3);
    a.fsd(fs0, t4, 0);
    a.add(t4, s2, t3);
    a.fsd(fs1, t4, 0);
    a.add(t4, s3, t3);
    a.fsd(fa3, t4, 0);
    a.addi(t1, t1, 1);
    a.blt(t1, t2, "init");

    a.li(s0, int64_t(iters));
    a.label("outer");
    a.li(t1, 0);
    a.li(t2, int64_t(n));
    a.label("loop");
    a.slli(t3, t1, 3);
    switch (kind) {
      case StreamKind::Copy: // c[i] = a[i]
        a.add(t4, s1, t3);
        a.fld(fa0, t4, 0);
        a.add(t4, s3, t3);
        a.fsd(fa0, t4, 0);
        break;
      case StreamKind::Scale: // b[i] = 3.0 * c[i]
        a.add(t4, s3, t3);
        a.fld(fa0, t4, 0);
        a.fmul_d(fa0, fa0, fs2);
        a.add(t4, s2, t3);
        a.fsd(fa0, t4, 0);
        break;
      case StreamKind::Add: // c[i] = a[i] + b[i]
        a.add(t4, s1, t3);
        a.fld(fa0, t4, 0);
        a.add(t4, s2, t3);
        a.fld(fa1, t4, 0);
        a.fadd_d(fa0, fa0, fa1);
        a.add(t4, s3, t3);
        a.fsd(fa0, t4, 0);
        break;
      case StreamKind::Triad: // a[i] = b[i] + 3.0 * c[i]
        a.add(t4, s2, t3);
        a.fld(fa0, t4, 0);
        a.add(t4, s3, t3);
        a.fld(fa1, t4, 0);
        a.fmul_d(fa1, fa1, fs2);
        a.fadd_d(fa0, fa0, fa1);
        a.add(t4, s1, t3);
        a.fsd(fa0, t4, 0);
        break;
    }
    a.addi(t1, t1, 1);
    a.blt(t1, t2, "loop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    // Checksum: scaled samples of every array.
    a.li(a0, 0);
    for (int arr = 0; arr < 3; ++arr) {
        XReg base = arr == 0 ? s1 : arr == 1 ? s2 : s3;
        for (unsigned k : {0u, n / 2, n - 1}) {
            a.li(t3, int64_t(k) * 8);
            a.add(t4, base, t3);
            a.fld(fa0, t4, 0);
            a.fmul_d(fa0, fa0, fs3);
            a.fcvt_l_d(t0, fa0);
            a.add(a0, a0, t0);
        }
    }
    epilogue(a);

    a.align(8);
    a.label("consts");
    a.dword(std::bit_cast<uint64_t>(1.0));
    a.dword(std::bit_cast<uint64_t>(2.0));
    a.dword(std::bit_cast<uint64_t>(3.0));
    a.dword(std::bit_cast<uint64_t>(1e3));
    resultSlot(a);

    // Host reference. After the runs: values are uniform per array.
    double va = 1.0, vb = 2.0, vc = 0.0;
    for (unsigned it = 0; it < iters; ++it) {
        switch (kind) {
          case StreamKind::Copy: vc = va; break;
          case StreamKind::Scale: vb = 3.0 * vc; break;
          case StreamKind::Add: vc = va + vb; break;
          case StreamKind::Triad: va = vb + 3.0 * vc; break;
        }
    }
    uint64_t acc = 0;
    for (double v : {va, va, va, vb, vb, vb, vc, vc, vc})
        acc += uint64_t(int64_t(v * 1e3));

    return {a.assemble(), acc, uint64_t(iters) * n};
}

} // namespace

WorkloadBuild
buildStreamCopy(const WorkloadOptions &o)
{
    return buildStream(StreamKind::Copy, o);
}

WorkloadBuild
buildStreamScale(const WorkloadOptions &o)
{
    return buildStream(StreamKind::Scale, o);
}

WorkloadBuild
buildStreamAdd(const WorkloadOptions &o)
{
    return buildStream(StreamKind::Add, o);
}

WorkloadBuild
buildStreamTriad(const WorkloadOptions &o)
{
    return buildStream(StreamKind::Triad, o);
}

} // namespace xt910
