/**
 * @file
 * CoreMark-like kernels (§X): linked-list processing (find/scan),
 * matrix manipulation, a token-classifying state machine, and CRC16 —
 * the four algorithm families the paper lists. Native and extended
 * code-generation flavours model the Fig. 20 experiment.
 */

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

// ------------------------------------------------------------- list

WorkloadBuild
buildCoremarkList(const WorkloadOptions &o)
{
    constexpr unsigned nodes = 96;
    const unsigned iters = 40 * o.scale;

    // Host-side data generation (mirrored into the image).
    std::vector<int32_t> value(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        value[i] = int32_t((i * 2654435761u) & 0xffff);
    std::vector<unsigned> perm(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        perm[i] = i;
    Xorshift64 rng(12345);
    for (unsigned i = nodes - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);

    Assembler a;
    a.j("_code");
    a.align(8);
    a.label("headptr");
    a.zero(8); // patched below via node addresses (assembled twice)
    a.label("_code");

    // Register plan: s0 iter counter, s1 head, s2 cur, s3 sum, s4 max,
    // a0 acc.
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    if (o.extended) {
        // Anchor scheme: load the head pointer once, keep it live.
        a.la(t0, "headptr");
        a.ld(s1, t0, 0);
    }
    a.label("outer");
    if (!o.extended) {
        // Native: the global head pointer is re-loaded every pass.
        a.la(t0, "headptr");
        a.ld(s1, t0, 0);
    }
    a.mv(s2, s1);
    a.li(s3, 0);
    a.li(s4, 0);
    a.label("walk");
    a.beqz(s2, "walked");
    a.lw(t1, s2, 0);       // value
    a.add(s3, s3, t1);     // sum += value
    if (!o.extended) {
        // Native: spill the running sum (no dead-store elimination).
        a.la(t2, "spill");
        a.sd(s3, t2, 0);
    }
    a.bge(s4, t1, "nomax");
    a.mv(s4, t1);
    a.label("nomax");
    a.ld(s2, s2, 8);       // next
    a.j("walk");
    a.label("walked");
    // acc = acc*31 + sum + max
    a.slli(t3, a0, 5);
    a.sub(a0, t3, a0);
    a.add(a0, a0, s3);
    a.add(a0, a0, s4);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    // Data: nodes (16B each: {int32 value, pad, int64 next}).
    a.align(8);
    a.label("spill");
    a.dword(0);
    a.label("nodes");
    for (unsigned i = 0; i < nodes; ++i) {
        a.word(uint32_t(value[i]));
        a.word(0);
        a.dword(0); // next; patched after first assemble
    }
    resultSlot(a);

    // Two-phase assembly: resolve node addresses, then patch links.
    Program p = a.assemble();
    Addr base = p.symbol("nodes");
    auto nodeAddr = [&](unsigned idx) { return base + Addr(idx) * 16; };
    auto poke64 = [&](Addr where, uint64_t v) {
        size_t off = where - p.base;
        for (int b = 0; b < 8; ++b)
            p.image[off + b] = uint8_t(v >> (8 * b));
    };
    poke64(p.symbol("headptr"), nodeAddr(perm[0]));
    for (unsigned k = 0; k < nodes; ++k) {
        uint64_t next = k + 1 < nodes ? nodeAddr(perm[k + 1]) : 0;
        poke64(nodeAddr(perm[k]) + 8, next);
    }

    // Host reference.
    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t sum = 0, mx = 0;
        for (unsigned k = 0; k < nodes; ++k) {
            int32_t v = value[perm[k]];
            sum += v;
            if (v > mx)
                mx = v;
        }
        acc = acc * 31 + uint64_t(sum) + uint64_t(mx);
    }
    return {std::move(p), acc, iters};
}

// ------------------------------------------------------------ matrix

WorkloadBuild
buildCoremarkMatrix(const WorkloadOptions &o)
{
    constexpr int n = 12;
    const unsigned iters = 8 * o.scale;

    std::vector<int32_t> A(n * n), B(n * n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
            A[i * n + j] = (i + j * 3) & 0x7f;
            B[i * n + j] = ((i * 5) ^ j) & 0x3f;
        }

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "A");
    a.la(s2, "B");
    a.la(s3, "C");
    a.label("outer");
    a.li(s4, 0); // i
    a.label("iloop");
    a.li(s5, 0); // j
    a.label("jloop");
    a.li(t0, 0); // acc
    a.li(s6, 0); // k
    if (o.extended) {
        // Induction-variable form: walk row of A and column of B with
        // pointer/index increments; indexed loads + fused MAC.
        a.li(t1, n);
        a.mul(t2, s4, t1);   // i*n (once per row element set)
        a.mv(t3, s5);        // B index = k*n + j, start k=0 -> j
        a.label("kloop");
        a.add(t4, t2, s6);   // A index = i*n + k
        a.xt_lrw(t5, s1, t4, 2);
        a.xt_lrw(a1, s2, t3, 2);
        a.xt_mula(t0, t5, a1);
        a.addi(t3, t3, n);
        a.addi(s6, s6, 1);
        a.blt(s6, t1, "kloop");
    } else {
        // Native RV64GC: explicit index arithmetic each iteration
        // (separate address adds, two-instruction multiply-accumulate)
        // but no custom indexed loads or fused MAC.
        a.li(t1, n);
        a.mul(t2, s4, t1);   // i*n
        a.mv(t3, s5);        // B index = k*n + j
        a.label("kloop");
        a.add(t4, t2, s6);   // A index
        a.slli(t4, t4, 2);
        a.add(t4, t4, s1);
        a.lw(t5, t4, 0);     // A[i][k]
        a.slli(t4, t3, 2);
        a.add(t4, t4, s2);
        a.lw(a1, t4, 0);     // B[k][j]
        a.mulw(a2, t5, a1);
        a.addw(t0, t0, a2);
        a.addi(t3, t3, n);
        a.addi(s6, s6, 1);
        a.blt(s6, t1, "kloop");
    }
    // C[i][j] = acc; fold into checksum.
    a.li(t1, n);
    a.mul(t2, s4, t1);
    a.add(t2, t2, s5);
    a.slli(t2, t2, 2);
    a.add(t2, t2, s3);
    a.sw(t0, t2, 0);
    a.sextw(t0, t0);
    a.add(a0, a0, t0);
    a.slli(t4, a0, 1);
    a.xor_(a0, a0, t4);
    a.addi(s5, s5, 1);
    a.li(t1, n);
    a.blt(s5, t1, "jloop");
    a.addi(s4, s4, 1);
    a.blt(s4, t1, "iloop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(4);
    a.label("A");
    for (int32_t v : A)
        a.word(uint32_t(v));
    a.label("B");
    for (int32_t v : B)
        a.word(uint32_t(v));
    a.label("C");
    a.zero(size_t(n) * n * 4);
    resultSlot(a);

    // Host reference.
    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                int32_t s = 0;
                for (int k = 0; k < n; ++k)
                    s = int32_t(s + int32_t(A[i * n + k] * B[k * n + j]));
                acc += uint64_t(int64_t(s));
                acc ^= acc << 1;
            }
        }
    }
    return {a.assemble(), acc, iters};
}

// ------------------------------------------------------ state machine

WorkloadBuild
buildCoremarkState(const WorkloadOptions &o)
{
    constexpr unsigned len = 256;
    const unsigned iters = 30 * o.scale;

    // Generate a stream mixing digits, signs, dots, exponents, junk.
    std::vector<uint8_t> buf(len);
    Xorshift64 rng(777);
    const char pool[] = "0123456789+-.eE, abcxyz";
    for (unsigned i = 0; i < len; ++i)
        buf[i] = uint8_t(pool[rng.below(sizeof(pool) - 1)]);

    // States: 0 start, 1 int, 2 frac, 3 exp, 4 invalid.
    auto hostClassify = [&](uint8_t c, int st) {
        bool digit = c >= '0' && c <= '9';
        switch (st) {
          case 0:
            if (digit || c == '+' || c == '-')
                return 1;
            if (c == '.')
                return 2;
            return 4;
          case 1:
            if (digit)
                return 1;
            if (c == '.')
                return 2;
            if (c == 'e' || c == 'E')
                return 3;
            return c == ',' ? 0 : 4;
          case 2:
            if (digit)
                return 2;
            if (c == 'e' || c == 'E')
                return 3;
            return c == ',' ? 0 : 4;
          case 3:
            if (digit || c == '+' || c == '-')
                return 3;
            return c == ',' ? 0 : 4;
          default:
            return c == ',' ? 0 : 4;
        }
    };

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    if (o.extended)
        a.la(s1, "buf"); // anchored
    a.label("outer");
    if (!o.extended)
        a.la(s1, "buf");
    a.li(s2, 0);            // index
    a.li(s3, 0);            // state
    a.li(s4, len);
    a.label("chloop");
    if (o.extended) {
        a.xt_lrbu(t0, s1, s2, 0);
    } else {
        a.add(t1, s1, s2);
        a.lbu(t0, t1, 0);
    }
    // Classify: t0 = char, s3 = state -> new state in s3.
    // digit check
    a.li(t1, '0');
    a.li(t2, '9');
    a.li(t3, 0);            // digit flag
    a.blt(t0, t1, "notdig");
    a.blt(t2, t0, "notdig");
    a.li(t3, 1);
    a.label("notdig");
    // dispatch on state
    a.beqz(s3, "st0");
    a.li(t4, 1);
    a.beq(s3, t4, "st1");
    a.li(t4, 2);
    a.beq(s3, t4, "st2");
    a.li(t4, 3);
    a.beq(s3, t4, "st3");
    // st4 (invalid): ',' resets
    a.li(t4, ',');
    a.bne(t0, t4, "next");
    a.li(s3, 0);
    a.j("next");
    a.label("st0");
    a.bnez(t3, "toint");
    a.li(t4, '+');
    a.beq(t0, t4, "toint");
    a.li(t4, '-');
    a.beq(t0, t4, "toint");
    a.li(t4, '.');
    a.beq(t0, t4, "tofrac");
    a.li(s3, 4);
    a.j("next");
    a.label("toint");
    a.li(s3, 1);
    a.j("next");
    a.label("tofrac");
    a.li(s3, 2);
    a.j("next");
    a.label("st1");
    a.bnez(t3, "next"); // digit stays int
    a.li(t4, '.');
    a.beq(t0, t4, "tofrac");
    a.li(t4, 'e');
    a.beq(t0, t4, "toexp");
    a.li(t4, 'E');
    a.beq(t0, t4, "toexp");
    a.li(t4, ',');
    a.beq(t0, t4, "tostart");
    a.li(s3, 4);
    a.j("next");
    a.label("st2");
    a.bnez(t3, "next");
    a.li(t4, 'e');
    a.beq(t0, t4, "toexp");
    a.li(t4, 'E');
    a.beq(t0, t4, "toexp");
    a.li(t4, ',');
    a.beq(t0, t4, "tostart");
    a.li(s3, 4);
    a.j("next");
    a.label("st3");
    a.bnez(t3, "next");
    a.li(t4, '+');
    a.beq(t0, t4, "next");
    a.li(t4, '-');
    a.beq(t0, t4, "next");
    a.li(t4, ',');
    a.beq(t0, t4, "tostart");
    a.li(s3, 4);
    a.j("next");
    a.label("toexp");
    a.li(s3, 3);
    a.j("next");
    a.label("tostart");
    a.li(s3, 0);
    a.label("next");
    // acc = acc*5 + state
    a.slli(t5, a0, 2);
    a.add(a0, a0, t5);
    a.add(a0, a0, s3);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "chloop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("buf");
    a.bytes(buf);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int st = 0;
        for (unsigned i = 0; i < len; ++i) {
            st = hostClassify(buf[i], st);
            acc = acc * 5 + uint64_t(st);
        }
    }
    return {a.assemble(), acc, iters};
}

// -------------------------------------------------------------- crc

WorkloadBuild
buildCoremarkCrc(const WorkloadOptions &o)
{
    constexpr unsigned len = 256;
    const unsigned iters = 30 * o.scale;

    std::vector<uint8_t> buf(len);
    Xorshift64 rng(4242);
    for (auto &b : buf)
        b = uint8_t(rng.next());

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "buf");
    a.label("outer");
    a.li(s2, 0);            // index
    a.li(s3, 0xffff);       // crc
    a.li(s4, len);
    a.li(s5, 0x1021);       // poly
    a.label("byteloop");
    a.add(t1, s1, s2);
    a.lbu(t0, t1, 0);
    a.slli(t0, t0, 8);
    a.xor_(s3, s3, t0);
    for (int b = 0; b < 8; ++b) {
        // Branchless (if-converted) form, as optimizing compilers emit:
        // crc = (crc << 1) ^ (poly & -(crc >> 15 & 1)); crc &= 0xffff.
        a.srli(t2, s3, 15);
        a.andi(t2, t2, 1);
        a.neg(t2, t2);
        a.and_(t2, t2, s5);
        a.slli(s3, s3, 1);
        a.xor_(s3, s3, t2);
        if (o.extended) {
            // Single-instruction 16-bit zero extension (§VIII.A).
            a.xt_extu(s3, s3, 15, 0);
        } else {
            // Native: shift pair to zero-extend.
            a.slli(s3, s3, 48);
            a.srli(s3, s3, 48);
        }
    }
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "byteloop");
    // acc = acc*65599 + crc
    a.li(t3, 65599);
    a.mul(a0, a0, t3);
    a.add(a0, a0, s3);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("buf");
    a.bytes(buf);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        uint32_t crc = 0xffff;
        for (unsigned i = 0; i < len; ++i) {
            crc ^= uint32_t(buf[i]) << 8;
            for (int b = 0; b < 8; ++b) {
                bool hi = crc & 0x8000;
                crc <<= 1;
                if (hi)
                    crc ^= 0x1021;
                crc &= 0xffff;
            }
        }
        acc = acc * 65599 + crc;
    }
    return {a.assemble(), acc, iters};
}

} // namespace xt910
