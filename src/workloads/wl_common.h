/**
 * @file
 * Internal helpers shared by the workload builders.
 */

#ifndef XT910_WORKLOADS_WL_COMMON_H
#define XT910_WORKLOADS_WL_COMMON_H

#include "common/bitutil.h"
#include "common/random.h"
#include "func/memory.h"
#include "workloads/workload.h"

namespace xt910
{
namespace wl
{

using namespace reg;

/**
 * Store the checksum (in a0) to the "result" symbol and halt. Must be
 * called before the data section that defines "result".
 */
inline void
epilogue(Assembler &a)
{
    a.la(t6, "result");
    a.sd(a0, t6, 0);
    a.ebreak();
}

/** Reserve the "result" slot (call inside the data section). */
inline void
resultSlot(Assembler &a)
{
    a.align(8);
    a.label("result");
    a.dword(0);
}

/** Read the stored result from a finished run. */
inline uint64_t
readResult(const Memory &m, const Program &p)
{
    return m.read(p.symbol("result"), 8);
}

} // namespace wl
} // namespace xt910

#endif // XT910_WORKLOADS_WL_COMMON_H
