/**
 * @file
 * EEMBC-automotive-like kernels (Fig. 18): eight kernels mirroring the
 * suite's algorithm families — angle-to-time, bit manipulation, CAN
 * frame parsing, integer IDCT, IIR filtering, pointer chasing, road
 * speed calculation and table lookup with interpolation.
 */

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

namespace
{

/** Shared skeleton: outer iteration loop with a folding checksum. */
struct KernelFrame
{
    Assembler a;
    unsigned iters;

    explicit KernelFrame(unsigned it) : iters(it)
    {
        a.li(a0, 0);
        a.li(s0, int64_t(iters));
        a.label("outer");
    }

    void
    finish()
    {
        a.addi(s0, s0, -1);
        a.bnez(s0, "outer");
        epilogue(a);
    }
};

} // namespace

// ----------------------------------------------------------- a2time

WorkloadBuild
buildEembcA2time(const WorkloadOptions &o)
{
    constexpr unsigned teeth = 64;
    const unsigned iters = 60 * o.scale;
    std::vector<int32_t> angle(teeth);
    for (unsigned i = 0; i < teeth; ++i)
        angle[i] = int32_t((i * 360 * 97) % 36000);

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "angle");
    a.li(s2, 0);   // i
    a.li(s3, 0);   // prev
    a.li(s4, teeth);
    a.label("loop");
    if (o.extended) {
        a.xt_lrw(t0, s1, s2, 2);
    } else {
        a.slli(t1, s2, 2);
        a.add(t1, t1, s1);
        a.lw(t0, t1, 0);
    }
    a.sub(t2, t0, s3);       // delta
    a.mv(s3, t0);
    a.li(t3, 157);           // scale factor (2*pi-ish fixed point)
    a.mul(t4, t2, t3);
    a.add(a0, a0, t4);
    a.srai(t5, a0, 9);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "loop");
    f.finish();

    a.align(4);
    a.label("angle");
    for (int32_t v : angle)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t prev = 0;
        for (unsigned i = 0; i < teeth; ++i) {
            int64_t delta = angle[i] - prev;
            prev = angle[i];
            acc += uint64_t(delta * 157);
            acc ^= uint64_t(int64_t(acc) >> 9);
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- bitmnp

WorkloadBuild
buildEembcBitmnp(const WorkloadOptions &o)
{
    constexpr unsigned words = 64;
    const unsigned iters = 40 * o.scale;
    std::vector<uint64_t> data(words);
    Xorshift64 rng(31337);
    for (auto &d : data)
        d = rng.next();

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "data");
    a.li(s2, 0);
    a.li(s4, words);
    if (!o.extended) {
        // Loop-invariant popcount constants, hoisted by the compiler.
        a.li(s7, 0x5555555555555555ll);
        a.li(s8, 0x3333333333333333ll);
        a.li(s9, 0x0f0f0f0f0f0f0f0fll);
        a.li(s10, 0x0101010101010101ll);
    }
    a.label("loop");
    if (o.extended) {
        a.xt_lrd(t0, s1, s2, 3);
        a.xt_rev(t1, t0);     // byte reverse in one instruction
        a.xt_ff1(t2, t0);     // leading-zero count in one instruction
    } else {
        a.slli(t1, s2, 3);
        a.add(t1, t1, s1);
        a.ld(t0, t1, 0);
        // Byte reverse via shift/mask ladder.
        a.li(t3, 0x00ff00ff00ff00ffll);
        a.srli(t1, t0, 8);
        a.and_(t1, t1, t3);
        a.and_(t4, t0, t3);
        a.slli(t4, t4, 8);
        a.or_(t1, t1, t4);
        a.li(t3, 0x0000ffff0000ffffll);
        a.srli(t4, t1, 16);
        a.and_(t4, t4, t3);
        a.and_(t1, t1, t3);
        a.slli(t1, t1, 16);
        a.or_(t1, t1, t4);
        a.srli(t4, t1, 32);
        a.slli(t1, t1, 32);
        a.or_(t1, t1, t4);
        // Branchless leading-zero count: smear then SWAR popcount
        // (the libgcc-style sequence for targets without clz).
        a.mv(t4, t0);
        for (unsigned sh : {1u, 2u, 4u, 8u, 16u, 32u}) {
            a.srli(t5, t4, sh);
            a.or_(t4, t4, t5);
        }
        a.srli(t5, t4, 1);
        a.and_(t5, t5, s7);
        a.sub(t4, t4, t5);
        a.and_(t5, t4, s8);
        a.srli(t4, t4, 2);
        a.and_(t4, t4, s8);
        a.add(t4, t4, t5);
        a.srli(t5, t4, 4);
        a.add(t4, t4, t5);
        a.and_(t4, t4, s9);
        a.mul(t4, t4, s10);
        a.srli(t4, t4, 56);
        a.li(t2, 64);
        a.sub(t2, t2, t4);
    }
    a.add(a0, a0, t1);
    a.slli(t5, t2, 3);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "loop");
    f.finish();

    a.align(8);
    a.label("data");
    for (uint64_t v : data)
        a.dword(v);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < words; ++i) {
            acc += byteSwap64(data[i]);
            acc ^= uint64_t(countLeadingZeros(data[i])) << 3;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- canrdr

WorkloadBuild
buildEembcCanrdr(const WorkloadOptions &o)
{
    constexpr unsigned frames = 48;
    const unsigned iters = 60 * o.scale;
    // Frame: 64-bit word: [63:53] id, [52:49] dlc, [48:0] payload bits.
    std::vector<uint64_t> bus(frames);
    Xorshift64 rng(2020);
    for (auto &w : bus)
        w = rng.next();

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "bus");
    a.li(s2, 0);
    a.li(s4, frames);
    a.li(s5, 0x2a0);  // id filter
    a.label("loop");
    if (o.extended) {
        a.xt_lrd(t0, s1, s2, 3);
        a.xt_extu(t1, t0, 63, 53); // id
        a.xt_extu(t2, t0, 52, 49); // dlc
        a.xt_extu(t3, t0, 31, 0);  // payload low
    } else {
        a.slli(t1, s2, 3);
        a.add(t1, t1, s1);
        a.ld(t0, t1, 0);
        a.srli(t1, t0, 53);        // id
        a.slli(t2, t0, 11);
        a.srli(t2, t2, 60);        // dlc
        a.slli(t3, t0, 32);
        a.srli(t3, t3, 32);        // payload low
    }
    a.and_(t4, t1, s5);
    a.beqz(t4, "skip");
    a.add(a0, a0, t3);
    a.add(a0, a0, t2);
    a.label("skip");
    a.slli(t5, a0, 7);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "loop");
    f.finish();

    a.align(8);
    a.label("bus");
    for (uint64_t v : bus)
        a.dword(v);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < frames; ++i) {
            uint64_t w = bus[i];
            uint64_t id = w >> 53;
            uint64_t dlc = (w >> 49) & 0xf;
            uint64_t pay = w & 0xffffffff;
            if (id & 0x2a0)
                acc += pay + dlc;
            acc ^= acc << 7;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- idctrn

WorkloadBuild
buildEembcIdctrn(const WorkloadOptions &o)
{
    const unsigned iters = 50 * o.scale;
    std::vector<int32_t> blk(64);
    for (int i = 0; i < 64; ++i)
        blk[i] = ((i * 29) % 255) - 128;

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "blk");
    a.li(s2, 0); // row
    a.label("rowloop");
    // Load 4 pairs; butterfly add/sub with shifts (IDCT-style).
    a.slli(t0, s2, 5); // row*8*4 bytes
    a.add(t0, t0, s1);
    for (int k = 0; k < 4; ++k) {
        a.lw(t1, t0, k * 4);
        a.lw(t2, t0, (7 - k) * 4);
        a.add(t3, t1, t2);
        a.sub(t4, t1, t2);
        a.slli(t5, t4, 2);
        a.add(t3, t3, t5);
        a.srai(t3, t3, 1);
        a.sw(t3, t0, k * 4);
        a.add(a0, a0, t3);
    }
    a.slli(t5, a0, 3);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.li(t5, 8);
    a.blt(s2, t5, "rowloop");
    f.finish();

    a.align(4);
    a.label("blk");
    for (int32_t v : blk)
        a.word(uint32_t(v));
    resultSlot(a);

    // Host reference mirrors the in-place row updates across iters.
    std::vector<int64_t> m(64);
    for (int i = 0; i < 64; ++i)
        m[i] = blk[i];
    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (int r = 0; r < 8; ++r) {
            for (int k = 0; k < 4; ++k) {
                int64_t x = int32_t(m[r * 8 + k]);
                int64_t y = int32_t(m[r * 8 + 7 - k]);
                int64_t v = ((x + y) + ((x - y) << 2)) >> 1;
                m[r * 8 + k] = int32_t(v);
                acc += uint64_t(v);
            }
            acc ^= acc << 3;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- iirflt

WorkloadBuild
buildEembcIirflt(const WorkloadOptions &o)
{
    constexpr unsigned samples = 128;
    const unsigned iters = 40 * o.scale;
    std::vector<int32_t> x(samples);
    Xorshift64 rng(99);
    for (auto &v : x)
        v = int32_t(rng.next() & 0xfff) - 2048;

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "x");
    a.li(s2, 0);
    a.li(s3, 0);  // y1
    a.li(s4, 0);  // y2
    a.li(s5, samples);
    a.li(s6, 1967);  // b0
    a.li(s7, -1651); // a1
    a.li(s8, 438);   // a2
    a.label("loop");
    if (o.extended) {
        a.xt_lrw(t0, s1, s2, 2);
        a.mul(t1, t0, s6);
        a.xt_mula(t1, s3, s7);
        a.xt_mula(t1, s4, s8);
    } else {
        a.slli(t1, s2, 2);
        a.add(t1, t1, s1);
        a.lw(t0, t1, 0);
        a.mul(t1, t0, s6);
        a.mul(t2, s3, s7);
        a.add(t1, t1, t2);
        a.mul(t2, s4, s8);
        a.add(t1, t1, t2);
    }
    a.srai(t1, t1, 12);
    a.mv(s4, s3);
    a.mv(s3, t1);
    a.add(a0, a0, t1);
    a.slli(t5, a0, 5);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s5, "loop");
    f.finish();

    a.align(4);
    a.label("x");
    for (int32_t v : x)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t y1 = 0, y2 = 0;
        for (unsigned i = 0; i < samples; ++i) {
            int64_t y = (int64_t(x[i]) * 1967 + y1 * -1651 + y2 * 438) >> 12;
            y2 = y1;
            y1 = y;
            acc += uint64_t(y);
            acc ^= acc << 5;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- pntrch

WorkloadBuild
buildEembcPntrch(const WorkloadOptions &o)
{
    constexpr unsigned n = 512;
    const unsigned iters = 20 * o.scale;
    // A permutation cycle over n slots (single cycle so every slot is
    // visited).
    std::vector<uint32_t> nextIdx(n);
    std::vector<unsigned> order(n);
    for (unsigned i = 0; i < n; ++i)
        order[i] = i;
    Xorshift64 rng(555);
    for (unsigned i = n - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);
    for (unsigned i = 0; i < n; ++i)
        nextIdx[order[i]] = order[(i + 1) % n];

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "tab");
    a.li(s2, 0);       // idx
    a.li(s4, n);
    a.li(s5, 0);       // step counter
    a.label("loop");
    if (o.extended) {
        a.xt_lrwu(s2, s1, s2, 2);
    } else {
        a.slli(t1, s2, 2);
        a.add(t1, t1, s1);
        a.lwu(s2, t1, 0);
    }
    a.add(a0, a0, s2);
    a.addi(s5, s5, 1);
    a.blt(s5, s4, "loop");
    a.slli(t5, a0, 9);
    a.xor_(a0, a0, t5);
    a.li(s5, 0);
    f.finish();

    a.align(4);
    a.label("tab");
    for (uint32_t v : nextIdx)
        a.word(v);
    resultSlot(a);

    uint64_t acc = 0;
    uint32_t idx = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned s = 0; s < n; ++s) {
            idx = nextIdx[idx];
            acc += idx;
        }
        acc ^= acc << 9;
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- rspeed

WorkloadBuild
buildEembcRspeed(const WorkloadOptions &o)
{
    constexpr unsigned pulses = 64;
    const unsigned iters = 40 * o.scale;
    std::vector<int32_t> dt(pulses);
    Xorshift64 rng(808);
    for (auto &v : dt)
        v = int32_t(1000 + rng.below(9000));

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "dt");
    a.li(s2, 0);
    a.li(s4, pulses);
    a.li(s5, 3600000);
    a.label("loop");
    if (o.extended) {
        a.xt_lrw(t0, s1, s2, 2);
    } else {
        a.slli(t1, s2, 2);
        a.add(t1, t1, s1);
        a.lw(t0, t1, 0);
    }
    a.div(t2, s5, t0);   // speed = K / dt
    a.add(a0, a0, t2);
    a.slli(t5, a0, 4);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "loop");
    f.finish();

    a.align(4);
    a.label("dt");
    for (int32_t v : dt)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < pulses; ++i) {
            acc += uint64_t(3600000 / dt[i]);
            acc ^= acc << 4;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- tblook

WorkloadBuild
buildEembcTblook(const WorkloadOptions &o)
{
    constexpr unsigned bins = 16;
    constexpr unsigned queries = 96;
    const unsigned iters = 40 * o.scale;
    // Monotone x table with y values; query interpolation.
    std::vector<int32_t> xs(bins), ys(bins), q(queries);
    for (unsigned i = 0; i < bins; ++i) {
        xs[i] = int32_t(i * 1000);
        ys[i] = int32_t((i * i * 37) % 5000);
    }
    Xorshift64 rng(606);
    for (auto &v : q)
        v = int32_t(rng.below((bins - 1) * 1000));

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "xs");
    a.la(s2, "ys");
    a.la(s3, "q");
    a.li(s4, 0); // query index
    a.li(s5, queries);
    a.label("qloop");
    if (o.extended) {
        a.xt_lrw(t0, s3, s4, 2);
    } else {
        a.slli(t1, s4, 2);
        a.add(t1, t1, s3);
        a.lw(t0, t1, 0);
    }
    // Linear scan for the bin: find largest i with xs[i] <= x.
    a.li(t2, 0); // i
    a.li(t3, bins - 1);
    a.label("scan");
    a.addi(t4, t2, 1);
    a.bge(t4, t3, "found");
    if (o.extended) {
        a.xt_lrw(t5, s1, t4, 2);
    } else {
        a.slli(t5, t4, 2);
        a.add(t5, t5, s1);
        a.lw(t5, t5, 0);
    }
    a.blt(t0, t5, "found");
    a.mv(t2, t4);
    a.j("scan");
    a.label("found");
    // Interpolate: y = y0 + (y1-y0)*(x-x0)/1000
    a.slli(t4, t2, 2);
    a.add(t5, t4, s2);
    a.lw(a1, t5, 0);   // y0
    a.lw(a2, t5, 4);   // y1
    a.add(t5, t4, s1);
    a.lw(a3, t5, 0);   // x0
    a.sub(a2, a2, a1); // dy
    a.sub(t0, t0, a3); // dx
    a.mul(a2, a2, t0);
    a.li(t5, 1000);
    a.div(a2, a2, t5);
    a.add(a1, a1, a2);
    a.add(a0, a0, a1);
    a.slli(t5, a0, 6);
    a.xor_(a0, a0, t5);
    a.addi(s4, s4, 1);
    a.blt(s4, s5, "qloop");
    f.finish();

    a.align(4);
    a.label("xs");
    for (int32_t v : xs)
        a.word(uint32_t(v));
    a.label("ys");
    for (int32_t v : ys)
        a.word(uint32_t(v));
    a.label("q");
    for (int32_t v : q)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned k = 0; k < queries; ++k) {
            int64_t x = q[k];
            unsigned i = 0;
            while (i + 1 < bins - 1 && xs[i + 1] <= x)
                ++i;
            int64_t y = ys[i] + (int64_t(ys[i + 1]) - ys[i]) *
                                    (x - xs[i]) / 1000;
            acc += uint64_t(y);
            acc ^= acc << 6;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- puwmod

WorkloadBuild
buildEembcPuwmod(const WorkloadOptions &o)
{
    // Pulse-width modulation: quantize duty-cycle requests to a timer
    // period with running error diffusion (integer div/mod heavy).
    constexpr unsigned reqs = 64;
    constexpr int32_t period = 1024;
    const unsigned iters = 40 * o.scale;
    std::vector<int32_t> duty(reqs);
    Xorshift64 rng(9090);
    for (auto &d : duty)
        d = int32_t(rng.below(10000)); // permille * 10

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "duty");
    a.li(s2, 0);
    a.li(s4, reqs);
    a.li(s5, period);
    a.li(s6, 10000);
    a.li(s7, 0); // error accumulator
    a.label("loop");
    if (o.extended) {
        a.xt_lrw(t0, s1, s2, 2);
    } else {
        a.slli(t1, s2, 2);
        a.add(t1, t1, s1);
        a.lw(t0, t1, 0);
    }
    // on = (duty*period + err) / 10000 ; err = (duty*period+err) % 10000
    a.mul(t2, t0, s5);
    a.add(t2, t2, s7);
    a.div(t3, t2, s6);   // on-count
    a.rem(s7, t2, s6);   // carried error
    a.sub(t4, s5, t3);   // off-count
    a.add(a0, a0, t3);
    a.slli(t5, t4, 11);
    a.xor_(a0, a0, t5);
    a.addi(s2, s2, 1);
    a.blt(s2, s4, "loop");
    f.finish();

    a.align(4);
    a.label("duty");
    for (int32_t v : duty)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t err = 0;
        for (unsigned i = 0; i < reqs; ++i) {
            int64_t scaled = int64_t(duty[i]) * period + err;
            int64_t on = scaled / 10000;
            err = scaled % 10000;
            int64_t off = period - on;
            acc += uint64_t(on);
            acc ^= uint64_t(off) << 11;
        }
    }
    return {a.assemble(), acc, iters};
}

// ----------------------------------------------------------- ttsprk

WorkloadBuild
buildEembcTtsprk(const WorkloadOptions &o)
{
    // Tooth-to-spark: bilinear interpolation in an rpm x load ignition
    // advance table, then angle arithmetic per tooth event.
    constexpr unsigned rpmBins = 8, loadBins = 8;
    constexpr unsigned events = 64;
    const unsigned iters = 30 * o.scale;
    std::vector<int32_t> tbl(rpmBins * loadBins);
    for (unsigned r = 0; r < rpmBins; ++r)
        for (unsigned l = 0; l < loadBins; ++l)
            tbl[r * loadBins + l] = int32_t(100 + r * 35 + l * 11);
    std::vector<int32_t> rpm(events), load(events);
    Xorshift64 rng(4321);
    for (unsigned i = 0; i < events; ++i) {
        rpm[i] = int32_t(rng.below((rpmBins - 1) * 256));
        load[i] = int32_t(rng.below((loadBins - 1) * 256));
    }

    KernelFrame f(iters);
    Assembler &a = f.a;
    a.la(s1, "tbl");
    a.la(s2, "rpm");
    a.la(s3, "loadv");
    a.li(s4, 0);
    a.li(s5, events);
    a.label("loop");
    if (o.extended) {
        a.xt_lrw(t0, s2, s4, 2); // rpm
        a.xt_lrw(t1, s3, s4, 2); // load
        a.xt_extu(t2, t0, 31, 8); // rpm bin = rpm >> 8
        a.xt_extu(t3, t1, 31, 8); // load bin
    } else {
        a.slli(t2, s4, 2);
        a.add(t0, s2, t2);
        a.lw(t0, t0, 0);
        a.add(t1, s3, t2);
        a.lw(t1, t1, 0);
        a.srli(t2, t0, 8);
        a.srli(t3, t1, 8);
    }
    a.andi(a1, t0, 255); // rpm fraction
    a.andi(a2, t1, 255); // load fraction
    // base index = bin_r * loadBins + bin_l
    a.slli(t4, t2, 3);
    a.add(t4, t4, t3);
    a.slli(t4, t4, 2);
    a.add(t4, t4, s1);
    a.lw(a3, t4, 0);                      // q00
    a.lw(a4, t4, 4);                      // q01
    a.lw(a5, t4, int64_t(loadBins) * 4);  // q10
    a.lw(a6, t4, int64_t(loadBins) * 4 + 4); // q11
    // bilinear: top = q00 + (q01-q00)*fl/256 ; bot = q10 + (q11-q10)*fl/256
    a.sub(t5, a4, a3);
    a.mul(t5, t5, a2);
    a.srai(t5, t5, 8);
    a.add(a3, a3, t5);
    a.sub(t5, a6, a5);
    a.mul(t5, t5, a2);
    a.srai(t5, t5, 8);
    a.add(a5, a5, t5);
    // adv = top + (bot-top)*fr/256
    a.sub(t5, a5, a3);
    a.mul(t5, t5, a1);
    a.srai(t5, t5, 8);
    a.add(a3, a3, t5);
    // spark angle = (720 + tooth*6 - adv) mod 720
    a.li(t5, 6);
    a.mul(t5, s4, t5);
    a.addi(t5, t5, 720);
    a.sub(t5, t5, a3);
    a.li(a4, 720);
    a.rem(t5, t5, a4);
    a.add(a0, a0, t5);
    a.slli(t5, a0, 8);
    a.xor_(a0, a0, t5);
    a.addi(s4, s4, 1);
    a.blt(s4, s5, "loop");
    f.finish();

    a.align(4);
    a.label("tbl");
    for (int32_t v : tbl)
        a.word(uint32_t(v));
    a.label("rpm");
    for (int32_t v : rpm)
        a.word(uint32_t(v));
    a.label("loadv");
    for (int32_t v : load)
        a.word(uint32_t(v));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < events; ++i) {
            int64_t br = rpm[i] >> 8, bl = load[i] >> 8;
            int64_t fr = rpm[i] & 255, fl = load[i] & 255;
            const int32_t *q = &tbl[size_t(br) * loadBins + size_t(bl)];
            int64_t top = q[0] + (((int64_t(q[1]) - q[0]) * fl) >> 8);
            int64_t bot = q[loadBins] +
                          (((int64_t(q[loadBins + 1]) - q[loadBins]) *
                            fl) >> 8);
            int64_t adv = top + (((bot - top) * fr) >> 8);
            int64_t angle = (720 + int64_t(i) * 6 - adv) % 720;
            acc += uint64_t(angle);
            acc ^= acc << 8;
        }
    }
    return {a.assemble(), acc, iters};
}

} // namespace xt910
