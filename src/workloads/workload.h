/**
 * @file
 * Benchmark workloads. Every kernel is authored from scratch against
 * the macro-assembler, mirrors the algorithmic structure of the suite
 * the paper evaluates (CoreMark, EEMBC-auto, NBench, STREAM, a
 * SPEC-like large-footprint mix, plus vector AI and blockchain-style
 * kernels), and is built in two code-generation flavours:
 *
 *  - native:   pure RV64GC with the address-generation and
 *              sign-extension patterns the paper attributes to the
 *              stock compilers (§VIII.A, §IX);
 *  - extended: XT-910 custom instructions (indexed load/store, MAC,
 *              bit ops) plus the co-optimized-compiler behaviours
 *              (induction-variable strength reduction, the anchor
 *              addressing scheme, dead-store elimination).
 *
 * Each build also returns the checksum a correct execution must store
 * at the "result" symbol, computed by a host-side C++ reference — so
 * the ISS functionally validates every kernel in the test suite.
 */

#ifndef XT910_WORKLOADS_WORKLOAD_H
#define XT910_WORKLOADS_WORKLOAD_H

#include <functional>
#include <string>
#include <vector>

#include "xasm/assembler.h"

namespace xt910
{

/** Knobs shared by all workload builders. */
struct WorkloadOptions
{
    bool extended = false;  ///< custom insts + optimized codegen
    unsigned scale = 1;     ///< iteration multiplier
    bool vector = false;    ///< use the V extension where applicable
    unsigned streamBytes = 1 << 20; ///< STREAM array size
};

/** A built workload plus its expected architectural result. */
struct WorkloadBuild
{
    Program program;
    uint64_t expected = 0;  ///< value stored to the "result" symbol
    uint64_t workItems = 0; ///< logical iterations (for per-iter rates)
};

/** A registered benchmark kernel. */
struct Workload
{
    std::string name;
    std::string suite;  ///< coremark / eembc / nbench / stream / spec / ai
    WorkloadBuild (*build)(const WorkloadOptions &);
};

/** All registered kernels. */
const std::vector<Workload> &allWorkloads();

/** Kernels belonging to @p suite. */
std::vector<Workload> workloadsInSuite(const std::string &suite);

/** Find by name; fatal when unknown. */
const Workload &findWorkload(const std::string &name);

// Per-suite builders (registered in allWorkloads, also directly usable).
WorkloadBuild buildCoremarkList(const WorkloadOptions &);
WorkloadBuild buildCoremarkMatrix(const WorkloadOptions &);
WorkloadBuild buildCoremarkState(const WorkloadOptions &);
WorkloadBuild buildCoremarkCrc(const WorkloadOptions &);
WorkloadBuild buildEembcA2time(const WorkloadOptions &);
WorkloadBuild buildEembcBitmnp(const WorkloadOptions &);
WorkloadBuild buildEembcCanrdr(const WorkloadOptions &);
WorkloadBuild buildEembcIdctrn(const WorkloadOptions &);
WorkloadBuild buildEembcIirflt(const WorkloadOptions &);
WorkloadBuild buildEembcPntrch(const WorkloadOptions &);
WorkloadBuild buildEembcRspeed(const WorkloadOptions &);
WorkloadBuild buildEembcTblook(const WorkloadOptions &);
WorkloadBuild buildEembcPuwmod(const WorkloadOptions &);
WorkloadBuild buildEembcTtsprk(const WorkloadOptions &);
WorkloadBuild buildNbenchNumSort(const WorkloadOptions &);
WorkloadBuild buildNbenchStringSort(const WorkloadOptions &);
WorkloadBuild buildNbenchBitfield(const WorkloadOptions &);
WorkloadBuild buildNbenchFpEmu(const WorkloadOptions &);
WorkloadBuild buildNbenchFourier(const WorkloadOptions &);
WorkloadBuild buildNbenchIdea(const WorkloadOptions &);
WorkloadBuild buildNbenchHuffman(const WorkloadOptions &);
WorkloadBuild buildNbenchLu(const WorkloadOptions &);
WorkloadBuild buildNbenchAssignment(const WorkloadOptions &);
WorkloadBuild buildNbenchNeuralNet(const WorkloadOptions &);
WorkloadBuild buildStreamCopy(const WorkloadOptions &);
WorkloadBuild buildStreamScale(const WorkloadOptions &);
WorkloadBuild buildStreamAdd(const WorkloadOptions &);
WorkloadBuild buildStreamTriad(const WorkloadOptions &);
WorkloadBuild buildSpecLikeMix(const WorkloadOptions &);
WorkloadBuild buildAiMacScalar(const WorkloadOptions &);
WorkloadBuild buildAiMacVector(const WorkloadOptions &);
WorkloadBuild buildBlockchainHash(const WorkloadOptions &);

} // namespace xt910

#endif // XT910_WORKLOADS_WORKLOAD_H
