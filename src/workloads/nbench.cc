/**
 * @file
 * NBench-like kernels (Fig. 19): numeric sort, string sort, bitfield
 * manipulation, software floating-point emulation, Fourier series,
 * IDEA-style cipher rounds, Huffman-style bit packing, and LU
 * decomposition.
 */

#include <cmath>

#include "workloads/wl_common.h"

namespace xt910
{

using namespace wl;

// ---------------------------------------------------------- numsort

WorkloadBuild
buildNbenchNumSort(const WorkloadOptions &o)
{
    constexpr unsigned n = 96;
    const unsigned iters = 6 * o.scale;
    static constexpr int gaps[] = {57, 23, 10, 4, 1};

    std::vector<int64_t> pristine(n);
    Xorshift64 rng(1111);
    for (auto &v : pristine)
        v = int64_t(rng.next() & 0xffffff) - 0x800000;

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.label("outer");
    // Re-initialize the work array from the pristine copy.
    a.la(s1, "pristine");
    a.la(s2, "work");
    a.li(t0, 0);
    a.li(t1, n);
    a.label("initloop");
    a.slli(t2, t0, 3);
    a.add(t3, s1, t2);
    a.ld(t4, t3, 0);
    a.add(t3, s2, t2);
    a.sd(t4, t3, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "initloop");
    // Shell sort with a fixed gap schedule.
    for (size_t g = 0; g < sizeof(gaps) / sizeof(gaps[0]); ++g) {
        std::string gs = std::to_string(g);
        int gap = gaps[g];
        a.li(s3, gap);
        a.li(s4, gap);              // i = gap
        a.label("iloop" + gs);
        a.li(t1, n);
        a.bge(s4, t1, "idone" + gs);
        a.slli(t2, s4, 3);
        a.add(t2, t2, s2);
        a.ld(s5, t2, 0);            // v = work[i]
        a.mv(s6, s4);               // j = i
        a.label("jloop" + gs);
        a.blt(s6, s3, "insert" + gs);
        a.sub(t3, s6, s3);          // j - gap
        a.slli(t4, t3, 3);
        a.add(t4, t4, s2);
        a.ld(t5, t4, 0);            // work[j-gap]
        a.bge(s5, t5, "insert" + gs);
        a.slli(t2, s6, 3);
        a.add(t2, t2, s2);
        a.sd(t5, t2, 0);            // work[j] = work[j-gap]
        a.mv(s6, t3);
        a.j("jloop" + gs);
        a.label("insert" + gs);
        a.slli(t2, s6, 3);
        a.add(t2, t2, s2);
        a.sd(s5, t2, 0);
        a.addi(s4, s4, 1);
        a.j("iloop" + gs);
        a.label("idone" + gs);
    }
    // Checksum sampled elements.
    for (unsigned k : {0u, n / 3, n / 2, n - 1}) {
        a.ld(t0, s2, int64_t(k) * 8);
        a.add(a0, a0, t0);
        a.slli(t1, a0, 2);
        a.xor_(a0, a0, t1);
    }
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("pristine");
    for (int64_t v : pristine)
        a.dword(uint64_t(v));
    a.label("work");
    a.zero(n * 8);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        std::vector<int64_t> w = pristine;
        for (int gap : gaps)
            for (unsigned i = unsigned(gap); i < n; ++i) {
                int64_t v = w[i];
                unsigned j = i;
                while (j >= unsigned(gap) && w[j - gap] > v) {
                    w[j] = w[j - gap];
                    j -= unsigned(gap);
                }
                w[j] = v;
            }
        for (unsigned k : {0u, n / 3, n / 2, n - 1}) {
            acc += uint64_t(w[k]);
            acc ^= acc << 2;
        }
    }
    return {a.assemble(), acc, iters};
}

// --------------------------------------------------------- strsort

WorkloadBuild
buildNbenchStringSort(const WorkloadOptions &o)
{
    constexpr unsigned n = 32;
    const unsigned iters = 20 * o.scale;
    std::vector<uint64_t> pristine(n);
    Xorshift64 rng(2222);
    for (auto &v : pristine)
        v = rng.next();

    // Lexicographic byte order == numeric order of byte-swapped keys.
    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.label("outer");
    a.la(s1, "pristine");
    a.la(s2, "work");
    a.li(t0, 0);
    a.li(t1, n);
    a.label("initloop");
    a.slli(t2, t0, 3);
    a.add(t3, s1, t2);
    a.ld(t4, t3, 0);
    a.add(t3, s2, t2);
    a.sd(t4, t3, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "initloop");
    // Insertion sort on byteswapped comparisons.
    auto emitBswap = [&](XReg dst, XReg src) {
        if (o.extended) {
            a.xt_rev(dst, src);
        } else {
            a.li(a6, 0x00ff00ff00ff00ffll);
            a.srli(a4, src, 8);
            a.and_(a4, a4, a6);
            a.and_(dst, src, a6);
            a.slli(dst, dst, 8);
            a.or_(dst, dst, a4);
            a.li(a6, 0x0000ffff0000ffffll);
            a.srli(a4, dst, 16);
            a.and_(a4, a4, a6);
            a.and_(dst, dst, a6);
            a.slli(dst, dst, 16);
            a.or_(dst, dst, a4);
            a.srli(a4, dst, 32);
            a.slli(dst, dst, 32);
            a.or_(dst, dst, a4);
        }
    };
    a.li(s4, 1); // i
    a.label("iloop");
    a.li(t1, n);
    a.bge(s4, t1, "sorted");
    a.slli(t2, s4, 3);
    a.add(t2, t2, s2);
    a.ld(s5, t2, 0);     // v
    emitBswap(s7, s5);   // key(v)
    a.mv(s6, s4);        // j
    a.label("jloop");
    a.beqz(s6, "insert");
    a.addi(t3, s6, -1);
    a.slli(t4, t3, 3);
    a.add(t4, t4, s2);
    a.ld(t5, t4, 0);     // work[j-1]
    emitBswap(s8, t5);
    a.bgeu(s7, s8, "insert");
    a.slli(t2, s6, 3);
    a.add(t2, t2, s2);
    a.sd(t5, t2, 0);
    a.mv(s6, t3);
    a.j("jloop");
    a.label("insert");
    a.slli(t2, s6, 3);
    a.add(t2, t2, s2);
    a.sd(s5, t2, 0);
    a.addi(s4, s4, 1);
    a.j("iloop");
    a.label("sorted");
    for (unsigned k : {0u, n / 2, n - 1}) {
        a.ld(t0, s2, int64_t(k) * 8);
        a.add(a0, a0, t0);
        a.slli(t1, a0, 3);
        a.xor_(a0, a0, t1);
    }
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("pristine");
    for (uint64_t v : pristine)
        a.dword(v);
    a.label("work");
    a.zero(n * 8);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        std::vector<uint64_t> w = pristine;
        for (unsigned i = 1; i < n; ++i) {
            uint64_t v = w[i];
            uint64_t key = byteSwap64(v);
            unsigned j = i;
            while (j > 0 && byteSwap64(w[j - 1]) > key) {
                w[j] = w[j - 1];
                --j;
            }
            w[j] = v;
        }
        for (unsigned k : {0u, n / 2, n - 1}) {
            acc += w[k];
            acc ^= acc << 3;
        }
    }
    return {a.assemble(), acc, iters};
}

// --------------------------------------------------------- bitfield

WorkloadBuild
buildNbenchBitfield(const WorkloadOptions &o)
{
    constexpr unsigned words = 16; // 1024 bits
    constexpr unsigned ops = 64;
    const unsigned iters = 20 * o.scale;

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.label("outer");
    a.la(s1, "bits");
    // Clear the array.
    a.li(t0, 0);
    a.li(t1, words);
    a.label("clr");
    a.slli(t2, t0, 3);
    a.add(t2, t2, s1);
    a.sd(zero, t2, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "clr");
    // Apply the op sequence: per-op {start, len, kind}.
    a.li(s2, 0); // op index
    a.li(s3, ops);
    a.label("oploop");
    // start = (k*37) % 1000 ; len = (k%29)+1 ; kind = k%3
    a.li(t0, 37);
    a.mul(t1, s2, t0);
    a.li(t0, 1000);
    a.remu(t1, t1, t0);  // start
    a.li(t0, 29);
    a.remu(t2, s2, t0);
    a.addi(t2, t2, 1);   // len
    a.li(t0, 3);
    a.remu(t3, s2, t0);  // kind
    // Per-bit loop.
    a.label("bitloop");
    a.beqz(t2, "opdone");
    a.srli(t4, t1, 6);   // word index
    a.andi(t5, t1, 63);  // bit index
    a.li(a1, 1);
    a.sll(a1, a1, t5);   // mask
    a.slli(t4, t4, 3);
    a.add(t4, t4, s1);
    a.ld(a2, t4, 0);
    a.beqz(t3, "opset");
    a.li(a3, 1);
    a.beq(t3, a3, "opclr");
    a.xor_(a2, a2, a1);  // toggle
    a.j("opstore");
    a.label("opset");
    a.or_(a2, a2, a1);
    a.j("opstore");
    a.label("opclr");
    a.not_(a1, a1);
    a.and_(a2, a2, a1);
    a.label("opstore");
    a.sd(a2, t4, 0);
    a.addi(t1, t1, 1);
    a.addi(t2, t2, -1);
    a.j("bitloop");
    a.label("opdone");
    a.addi(s2, s2, 1);
    a.blt(s2, s3, "oploop");
    // Popcount the array.
    a.li(t0, 0);
    a.li(t1, words);
    a.label("pcw");
    a.slli(t2, t0, 3);
    a.add(t2, t2, s1);
    a.ld(t3, t2, 0);
    a.label("pcb");
    a.beqz(t3, "pcnext");
    a.addi(t4, t3, -1);
    a.and_(t3, t3, t4);  // clear lowest set bit
    a.addi(a0, a0, 1);
    a.j("pcb");
    a.label("pcnext");
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "pcw");
    a.slli(t5, a0, 13);
    a.xor_(a0, a0, t5);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("bits");
    a.zero(words * 8);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        std::vector<uint64_t> bitsArr(words, 0);
        for (unsigned k = 0; k < ops; ++k) {
            unsigned start = (k * 37) % 1000;
            unsigned len = (k % 29) + 1;
            unsigned kind = k % 3;
            for (unsigned b = 0; b < len; ++b) {
                unsigned pos = start + b;
                uint64_t maskBit = 1ull << (pos & 63);
                uint64_t &w = bitsArr[pos >> 6];
                if (kind == 0)
                    w |= maskBit;
                else if (kind == 1)
                    w &= ~maskBit;
                else
                    w ^= maskBit;
            }
        }
        for (unsigned w = 0; w < words; ++w)
            acc += popCount(bitsArr[w]);
        acc ^= acc << 13;
    }
    return {a.assemble(), acc, iters};
}

// ------------------------------------------------------------ fpemu

WorkloadBuild
buildNbenchFpEmu(const WorkloadOptions &o)
{
    constexpr unsigned n = 64;
    const unsigned iters = 25 * o.scale;
    // Normal, positive-exponent-safe float bit patterns.
    std::vector<uint32_t> xa(n), xb(n);
    Xorshift64 rng(3333);
    for (unsigned i = 0; i < n; ++i) {
        xa[i] = (uint32_t(rng.below(2)) << 31) |
                (uint32_t(100 + rng.below(56)) << 23) |
                uint32_t(rng.next() & 0x7fffff);
        xb[i] = (uint32_t(rng.below(2)) << 31) |
                (uint32_t(100 + rng.below(56)) << 23) |
                uint32_t(rng.next() & 0x7fffff);
    }

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.label("outer");
    a.la(s1, "xa");
    a.la(s2, "xb");
    a.li(s3, 0);
    a.li(s4, n);
    a.label("loop");
    if (o.extended) {
        a.xt_lrwu(t0, s1, s3, 2);
        a.xt_lrwu(t1, s2, s3, 2);
        a.xor_(t2, t0, t1);
        a.xt_extu(t2, t2, 31, 31);    // sign
        a.xt_extu(t3, t0, 30, 23);    // exp a
        a.xt_extu(t4, t1, 30, 23);    // exp b
        a.xt_extu(t5, t0, 22, 0);     // mant a
        a.xt_extu(a1, t1, 22, 0);     // mant b
    } else {
        a.slli(t2, s3, 2);
        a.add(t0, s1, t2);
        a.lwu(t0, t0, 0);
        a.add(t1, s2, t2);
        a.lwu(t1, t1, 0);
        a.xor_(t2, t0, t1);
        a.srli(t2, t2, 31);           // sign
        a.slli(t3, t0, 33);
        a.srli(t3, t3, 56);           // exp a
        a.slli(t4, t1, 33);
        a.srli(t4, t4, 56);           // exp b
        a.slli(t5, t0, 41);
        a.srli(t5, t5, 41);           // mant a
        a.slli(a1, t1, 41);
        a.srli(a1, a1, 41);           // mant b
    }
    a.li(a2, 0x800000);
    a.or_(t5, t5, a2);
    a.or_(a1, a1, a2);
    a.mul(a3, t5, a1);                // 48-bit product
    a.srli(a3, a3, 23);
    a.add(a4, t3, t4);
    a.addi(a4, a4, -127);
    // Normalize one step if bit 24 set.
    a.srli(a5, a3, 24);
    a.beqz(a5, "norm");
    a.srli(a3, a3, 1);
    a.addi(a4, a4, 1);
    a.label("norm");
    a.li(a5, 0x7fffff);
    a.and_(a3, a3, a5);
    a.andi(a4, a4, 0xff);
    a.slli(t2, t2, 31);
    a.slli(a4, a4, 23);
    a.or_(a3, a3, a4);
    a.or_(a3, a3, t2);
    a.add(a0, a0, a3);
    a.slli(t2, a0, 11);
    a.xor_(a0, a0, t2);
    a.addi(s3, s3, 1);
    a.blt(s3, s4, "loop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(4);
    a.label("xa");
    for (uint32_t v : xa)
        a.word(v);
    a.label("xb");
    for (uint32_t v : xb)
        a.word(v);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < n; ++i) {
            uint64_t x = xa[i], y = xb[i];
            uint64_t sign = ((x ^ y) >> 31) & 1;
            uint64_t ea = (x >> 23) & 0xff, eb = (y >> 23) & 0xff;
            uint64_t ma = (x & 0x7fffff) | 0x800000;
            uint64_t mb = (y & 0x7fffff) | 0x800000;
            uint64_t m = (ma * mb) >> 23;
            uint64_t e = ea + eb - 127;
            if (m >> 24) {
                m >>= 1;
                ++e;
            }
            uint64_t r = (sign << 31) | ((e & 0xff) << 23) |
                         (m & 0x7fffff);
            acc += r;
            acc ^= acc << 11;
        }
    }
    return {a.assemble(), acc, iters};
}

// ---------------------------------------------------------- fourier

WorkloadBuild
buildNbenchFourier(const WorkloadOptions &o)
{
    constexpr unsigned terms = 24;
    const unsigned iters = 30 * o.scale;

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "consts");
    a.fld(fs0, s1, 0);   // 0.1
    a.fld(fs1, s1, 8);   // 1/6
    a.fld(fs2, s1, 16);  // 1/120
    a.fld(fs3, s1, 24);  // 1/5040
    a.fld(fs4, s1, 32);  // 1e6 scale
    a.label("outer");
    a.li(s2, 1);
    a.li(s3, terms + 1);
    a.fmv_d_x(fa5, zero); // coefficient accumulator = 0.0
    a.label("termloop");
    a.fcvt_d_l(fa0, s2);
    a.fmul_d(fa0, fa0, fs0);      // t = k * 0.1
    a.fmul_d(fa1, fa0, fa0);      // t2
    a.fmul_d(fa2, fa1, fa0);      // t3
    a.fmul_d(fa3, fa2, fa1);      // t5
    a.fmul_d(fa4, fa3, fa1);      // t7
    a.fmul_d(fa2, fa2, fs1);      // t3/6
    a.fmul_d(fa3, fa3, fs2);      // t5/120
    a.fmul_d(fa4, fa4, fs3);      // t7/5040
    a.fsub_d(ft0, fa0, fa2);
    a.fadd_d(ft0, ft0, fa3);
    a.fsub_d(ft0, ft0, fa4);      // sin(t) approx
    a.fcvt_d_l(ft1, s2);
    a.fdiv_d(ft0, ft0, ft1);      // sin(t)/k
    a.fadd_d(fa5, fa5, ft0);
    a.addi(s2, s2, 1);
    a.blt(s2, s3, "termloop");
    a.fmul_d(fa5, fa5, fs4);
    a.fcvt_l_d(t0, fa5);
    a.add(a0, a0, t0);
    a.slli(t1, a0, 1);
    a.xor_(a0, a0, t1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("consts");
    a.dword(std::bit_cast<uint64_t>(0.1));
    a.dword(std::bit_cast<uint64_t>(1.0 / 6.0));
    a.dword(std::bit_cast<uint64_t>(1.0 / 120.0));
    a.dword(std::bit_cast<uint64_t>(1.0 / 5040.0));
    a.dword(std::bit_cast<uint64_t>(1e6));
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        double sum = 0.0;
        for (unsigned k = 1; k <= terms; ++k) {
            double t = double(int64_t(k)) * 0.1;
            double t2 = t * t;
            double t3 = t2 * t;
            double t5 = t3 * t2;
            double t7 = t5 * t2;
            double s = t - t3 * (1.0 / 6.0) + t5 * (1.0 / 120.0) -
                       t7 * (1.0 / 5040.0);
            sum += s / double(int64_t(k));
        }
        acc += uint64_t(int64_t(sum * 1e6));
        acc ^= acc << 1;
    }
    return {a.assemble(), acc, iters};
}

// ------------------------------------------------------------- idea

WorkloadBuild
buildNbenchIdea(const WorkloadOptions &o)
{
    constexpr unsigned blocksN = 24;
    const unsigned iters = 25 * o.scale;
    std::vector<uint16_t> blocks(blocksN * 4);
    std::vector<uint16_t> keys(8);
    Xorshift64 rng(4444);
    for (auto &b : blocks)
        b = uint16_t(1 + rng.below(65534));
    for (auto &k : keys)
        k = uint16_t(1 + rng.below(65534));

    // mulmod(a,b) = (a*b) % 65537 (operands kept nonzero).
    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "blocks");
    a.la(s2, "keys");
    a.li(s10, 65537);
    a.label("outer");
    a.li(s3, 0);
    a.li(s4, blocksN);
    a.label("blkloop");
    a.slli(t0, s3, 3);
    a.add(t0, t0, s1);
    a.lhu(s5, t0, 0);
    a.lhu(s6, t0, 2);
    a.lhu(s7, t0, 4);
    a.lhu(s8, t0, 6);
    for (int round = 0; round < 4; ++round) {
        int kbase = round * 2;
        a.lhu(t1, s2, kbase * 2);
        a.lhu(t2, s2, kbase * 2 + 2);
        // x1 = mulmod(x1|1, k1)
        a.ori(t3, s5, 1);
        a.mul(t3, t3, t1);
        a.remu(s5, t3, s10);
        // x2 = (x2 + k2) & 0xffff
        a.add(s6, s6, t2);
        if (o.extended)
            a.xt_extu(s6, s6, 15, 0);
        else {
            a.slli(s6, s6, 48);
            a.srli(s6, s6, 48);
        }
        // x3 ^= x1 ; x4 = mulmod(x4|1, x2|1)
        a.xor_(s7, s7, s5);
        a.ori(t3, s8, 1);
        a.ori(t4, s6, 1);
        a.mul(t3, t3, t4);
        a.remu(s8, t3, s10);
        // rotate block halves
        a.mv(t3, s5);
        a.mv(s5, s7);
        a.mv(s7, t3);
    }
    a.add(a0, a0, s5);
    a.add(a0, a0, s6);
    a.add(a0, a0, s7);
    a.add(a0, a0, s8);
    a.slli(t5, a0, 10);
    a.xor_(a0, a0, t5);
    a.addi(s3, s3, 1);
    a.blt(s3, s4, "blkloop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("blocks");
    for (uint16_t v : blocks)
        a.half(v);
    a.label("keys");
    for (uint16_t v : keys)
        a.half(v);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned b = 0; b < blocksN; ++b) {
            uint64_t x1 = blocks[b * 4 + 0], x2 = blocks[b * 4 + 1];
            uint64_t x3 = blocks[b * 4 + 2], x4 = blocks[b * 4 + 3];
            for (int round = 0; round < 4; ++round) {
                uint64_t k1 = keys[round * 2], k2 = keys[round * 2 + 1];
                x1 = ((x1 | 1) * k1) % 65537;
                x2 = (x2 + k2) & 0xffff;
                x3 ^= x1;
                x4 = ((x4 | 1) * (x2 | 1)) % 65537;
                std::swap(x1, x3);
            }
            acc += x1 + x2 + x3 + x4;
            acc ^= acc << 10;
        }
    }
    return {a.assemble(), acc, iters};
}

// ---------------------------------------------------------- huffman

WorkloadBuild
buildNbenchHuffman(const WorkloadOptions &o)
{
    constexpr unsigned n = 128;
    const unsigned iters = 25 * o.scale;
    std::vector<uint8_t> input(n);
    Xorshift64 rng(5555);
    for (auto &b : input)
        b = uint8_t(rng.below(64)); // 64-symbol alphabet
    // code table: per symbol {len 3..10, code bits}.
    std::vector<uint8_t> clen(64);
    std::vector<uint16_t> cbits(64);
    for (unsigned c = 0; c < 64; ++c) {
        clen[c] = uint8_t(3 + (c & 7));
        cbits[c] = uint16_t((c * 2654435761u) >> (32 - clen[c]));
    }

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "input");
    a.la(s2, "clen");
    a.la(s3, "cbits");
    a.label("outer");
    a.li(s4, 0);   // input index
    a.li(s5, n);
    a.li(s6, 0);   // bit buffer
    a.li(s7, 0);   // bit count
    a.label("symloop");
    if (o.extended) {
        a.xt_lrbu(t0, s1, s4, 0);
        a.xt_lrbu(t1, s2, t0, 0);       // len
        a.xt_lrhu(t2, s3, t0, 1);       // code
    } else {
        a.add(t3, s1, s4);
        a.lbu(t0, t3, 0);
        a.add(t3, s2, t0);
        a.lbu(t1, t3, 0);
        a.slli(t3, t0, 1);
        a.add(t3, t3, s3);
        a.lhu(t2, t3, 0);
    }
    // bitbuf = (bitbuf << len) | code ; bitcnt += len
    a.sll(s6, s6, t1);
    a.or_(s6, s6, t2);
    a.add(s7, s7, t1);
    // Drain full bytes into the checksum.
    a.label("drain");
    a.li(t3, 8);
    a.blt(s7, t3, "nodrain");
    a.addi(s7, s7, -8);
    a.srl(t4, s6, s7);
    a.andi(t4, t4, 0xff);
    a.add(a0, a0, t4);
    a.slli(t5, a0, 5);
    a.xor_(a0, a0, t5);
    a.j("drain");
    a.label("nodrain");
    a.addi(s4, s4, 1);
    a.blt(s4, s5, "symloop");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("input");
    a.bytes(input);
    a.label("clen");
    a.bytes(clen);
    a.align(2);
    a.label("cbits");
    for (uint16_t v : cbits)
        a.half(v);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        uint64_t buf = 0;
        unsigned cnt = 0;
        for (unsigned i = 0; i < n; ++i) {
            uint8_t sym = input[i];
            buf = (buf << clen[sym]) | cbits[sym];
            cnt += clen[sym];
            while (cnt >= 8) {
                cnt -= 8;
                acc += (buf >> cnt) & 0xff;
                acc ^= acc << 5;
            }
        }
    }
    return {a.assemble(), acc, iters};
}

// --------------------------------------------------------------- lu

WorkloadBuild
buildNbenchLu(const WorkloadOptions &o)
{
    constexpr int n = 8;
    const unsigned iters = 15 * o.scale;
    std::vector<double> pristine(n * n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            pristine[i * n + j] =
                i == j ? 20.0 + i : double(((i * j + 3) % 7) - 3);

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "pristine");
    a.la(s2, "work");
    a.la(s3, "scale");
    a.fld(fs4, s3, 0); // 1e3
    a.label("outer");
    // copy pristine -> work
    a.li(t0, 0);
    a.li(t1, n * n);
    a.label("cp");
    a.slli(t2, t0, 3);
    a.add(t3, s1, t2);
    a.ld(t4, t3, 0);
    a.add(t3, s2, t2);
    a.sd(t4, t3, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "cp");
    // LU in place (no pivoting; matrix is diagonally dominant).
    a.li(s4, 0); // k
    a.label("kloop");
    a.li(t0, n);
    a.addi(t1, t0, -1);
    a.bge(s4, t1, "kdone");
    // a[k][k]
    a.li(t2, n);
    a.mul(t3, s4, t2);
    a.add(t3, t3, s4);
    a.slli(t3, t3, 3);
    a.add(t3, t3, s2);
    a.fld(fa0, t3, 0);
    a.addi(s5, s4, 1); // i
    a.label("ikloop");
    a.li(t0, n);
    a.bge(s5, t0, "idone");
    // m = a[i][k] / a[k][k] ; a[i][k] = m
    a.mul(t3, s5, t0);
    a.add(t3, t3, s4);
    a.slli(t3, t3, 3);
    a.add(t3, t3, s2);
    a.fld(fa1, t3, 0);
    a.fdiv_d(fa1, fa1, fa0);
    a.fsd(fa1, t3, 0);
    a.addi(s6, s4, 1); // j
    a.label("jloop");
    a.li(t0, n);
    a.bge(s6, t0, "jdone");
    // a[i][j] -= m * a[k][j]
    a.mul(t3, s4, t0);
    a.add(t3, t3, s6);
    a.slli(t3, t3, 3);
    a.add(t3, t3, s2);
    a.fld(fa2, t3, 0);   // a[k][j]
    a.mul(t3, s5, t0);
    a.add(t3, t3, s6);
    a.slli(t3, t3, 3);
    a.add(t3, t3, s2);
    a.fld(fa3, t3, 0);   // a[i][j]
    a.fmul_d(fa2, fa1, fa2);
    a.fsub_d(fa3, fa3, fa2);
    a.fsd(fa3, t3, 0);
    a.addi(s6, s6, 1);
    a.j("jloop");
    a.label("jdone");
    a.addi(s5, s5, 1);
    a.j("ikloop");
    a.label("idone");
    a.addi(s4, s4, 1);
    a.j("kloop");
    a.label("kdone");
    // checksum: sum of diagonal * 1e3 as integer
    a.fmv_d_x(fa4, zero);
    a.li(t0, 0);
    a.label("diag");
    a.li(t1, n);
    a.bge(t0, t1, "diagdone");
    a.mul(t2, t0, t1);
    a.add(t2, t2, t0);
    a.slli(t2, t2, 3);
    a.add(t2, t2, s2);
    a.fld(fa1, t2, 0);
    a.fadd_d(fa4, fa4, fa1);
    a.addi(t0, t0, 1);
    a.j("diag");
    a.label("diagdone");
    a.fmul_d(fa4, fa4, fs4);
    a.fcvt_l_d(t0, fa4);
    a.add(a0, a0, t0);
    a.slli(t1, a0, 4);
    a.xor_(a0, a0, t1);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(8);
    a.label("scale");
    a.dword(std::bit_cast<uint64_t>(1e3));
    a.label("pristine");
    for (double v : pristine)
        a.dword(std::bit_cast<uint64_t>(v));
    a.label("work");
    a.zero(size_t(n) * n * 8);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        std::vector<double> w = pristine;
        for (int k = 0; k < n - 1; ++k) {
            for (int i = k + 1; i < n; ++i) {
                double m = w[i * n + k] / w[k * n + k];
                w[i * n + k] = m;
                for (int j = k + 1; j < n; ++j)
                    w[i * n + j] -= m * w[k * n + j];
            }
        }
        double d = 0;
        for (int i = 0; i < n; ++i)
            d += w[i * n + i];
        acc += uint64_t(int64_t(d * 1e3));
        acc ^= acc << 4;
    }
    return {a.assemble(), acc, iters};
}


// ------------------------------------------------------- assignment

WorkloadBuild
buildNbenchAssignment(const WorkloadOptions &o)
{
    // Task assignment: the Hungarian algorithm's reduction phases on an
    // 8x8 cost matrix — row-min subtraction, column-min subtraction,
    // and a zero-count greedy pass.
    constexpr int n = 8;
    const unsigned iters = 25 * o.scale;
    std::vector<int32_t> pristine(n * n);
    Xorshift64 rng(7777);
    for (auto &c : pristine)
        c = int32_t(1 + rng.below(99));

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "pristine");
    a.la(s2, "work");
    a.label("outer");
    // copy
    a.li(t0, 0);
    a.li(t1, n * n);
    a.label("cp");
    a.slli(t2, t0, 2);
    a.add(t3, s1, t2);
    a.lw(t4, t3, 0);
    a.add(t3, s2, t2);
    a.sw(t4, t3, 0);
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "cp");
    // Row reduction: each row minus its minimum.
    a.li(s4, 0); // row
    a.label("rloop");
    a.li(t0, n);
    a.bge(s4, t0, "rdone");
    a.slli(t1, s4, 5); // row * n * 4
    a.add(t1, t1, s2);
    a.li(t2, 0x7fffffff);
    for (int j = 0; j < n; ++j) {
        a.lw(t3, t1, j * 4);
        a.bge(t3, t2, std::string("rskip") + std::to_string(j));
        a.mv(t2, t3);
        a.label(std::string("rskip") + std::to_string(j));
    }
    for (int j = 0; j < n; ++j) {
        a.lw(t3, t1, j * 4);
        a.sub(t3, t3, t2);
        a.sw(t3, t1, j * 4);
    }
    a.addi(s4, s4, 1);
    a.j("rloop");
    a.label("rdone");
    // Column reduction.
    a.li(s5, 0); // col
    a.label("cloop");
    a.li(t0, n);
    a.bge(s5, t0, "cdone");
    a.slli(t1, s5, 2);
    a.add(t1, t1, s2);
    a.li(t2, 0x7fffffff);
    for (int i = 0; i < n; ++i) {
        a.lw(t3, t1, i * n * 4);
        a.bge(t3, t2, std::string("cskip") + std::to_string(i));
        a.mv(t2, t3);
        a.label(std::string("cskip") + std::to_string(i));
    }
    for (int i = 0; i < n; ++i) {
        a.lw(t3, t1, i * n * 4);
        a.sub(t3, t3, t2);
        a.sw(t3, t1, i * n * 4);
    }
    a.addi(s5, s5, 1);
    a.j("cloop");
    a.label("cdone");
    // Greedy zero count per row (first zero claims the column).
    a.li(s6, 0);      // claimed-columns bitmask
    a.li(s4, 0);
    a.label("zrow");
    a.li(t0, n);
    a.bge(s4, t0, "zdone");
    a.slli(t1, s4, 5);
    a.add(t1, t1, s2);
    for (int j = 0; j < n; ++j) {
        std::string nxt = std::string("znext") + std::to_string(j);
        a.lw(t3, t1, j * 4);
        a.bnez(t3, nxt);
        a.li(t4, 1 << j);
        a.and_(t5, s6, t4);
        a.bnez(t5, nxt);
        a.or_(s6, s6, t4);
        a.addi(a0, a0, 1);
        a.j("zrowdone");
        a.label(nxt);
    }
    a.label("zrowdone");
    a.addi(s4, s4, 1);
    a.j("zrow");
    a.label("zdone");
    a.slli(t5, s6, 3);
    a.xor_(a0, a0, t5);
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(4);
    a.label("pristine");
    for (int32_t v : pristine)
        a.word(uint32_t(v));
    a.label("work");
    a.zero(size_t(n) * n * 4);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        std::vector<int32_t> w = pristine;
        for (int i = 0; i < n; ++i) {
            int32_t m = 0x7fffffff;
            for (int j = 0; j < n; ++j)
                m = std::min(m, w[i * n + j]);
            for (int j = 0; j < n; ++j)
                w[i * n + j] -= m;
        }
        for (int j = 0; j < n; ++j) {
            int32_t m = 0x7fffffff;
            for (int i = 0; i < n; ++i)
                m = std::min(m, w[i * n + j]);
            for (int i = 0; i < n; ++i)
                w[i * n + j] -= m;
        }
        uint64_t claimed = 0;
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (w[i * n + j] == 0 && !(claimed & (1ull << j))) {
                    claimed |= 1ull << j;
                    ++acc;
                    break;
                }
            }
        }
        acc ^= claimed << 3;
    }
    return {a.assemble(), acc, iters};
}

// ------------------------------------------------------- neural net

WorkloadBuild
buildNbenchNeuralNet(const WorkloadOptions &o)
{
    // Fixed-point MLP forward pass: 16 -> 8 -> 4 with Q8 weights and
    // ReLU activations — matvec + max, the NBench "neural net" shape.
    constexpr int nIn = 16, nHid = 8, nOut = 4;
    const unsigned iters = 25 * o.scale;
    std::vector<int32_t> w1(nHid * nIn), w2(nOut * nHid), x(nIn);
    Xorshift64 rng(8888);
    for (auto &v : w1)
        v = int32_t(rng.next() & 0x1ff) - 256;
    for (auto &v : w2)
        v = int32_t(rng.next() & 0x1ff) - 256;
    for (auto &v : x)
        v = int32_t(rng.next() & 0xff);

    Assembler a;
    a.li(a0, 0);
    a.li(s0, int64_t(iters));
    a.la(s1, "w1");
    a.la(s2, "w2");
    a.la(s3, "x");
    a.la(s4, "hid");
    a.label("outer");
    // Hidden layer.
    a.li(s5, 0); // h
    a.label("hloop");
    a.li(t0, nHid);
    a.bge(s5, t0, "hdone");
    a.li(t1, 0);  // acc
    a.li(t2, 0);  // i
    a.li(t3, nIn);
    a.slli(t4, s5, 6); // h * nIn * 4
    a.add(t4, t4, s1);
    a.label("iloop");
    if (o.extended) {
        a.xt_lrw(t5, t4, t2, 2);
        a.xt_lrw(a1, s3, t2, 2);
        a.xt_mula(t1, t5, a1);
    } else {
        a.slli(a2, t2, 2);
        a.add(t5, t4, a2);
        a.lw(t5, t5, 0);
        a.add(a1, s3, a2);
        a.lw(a1, a1, 0);
        a.mul(a2, t5, a1);
        a.add(t1, t1, a2);
    }
    a.addi(t2, t2, 1);
    a.blt(t2, t3, "iloop");
    a.srai(t1, t1, 8);       // Q8
    a.bgez(t1, "relu1");
    a.li(t1, 0);             // ReLU
    a.label("relu1");
    a.slli(t5, s5, 2);
    a.add(t5, t5, s4);
    a.sw(t1, t5, 0);
    a.addi(s5, s5, 1);
    a.j("hloop");
    a.label("hdone");
    // Output layer.
    a.li(s5, 0);
    a.label("oloop");
    a.li(t0, nOut);
    a.bge(s5, t0, "odone");
    a.li(t1, 0);
    a.li(t2, 0);
    a.li(t3, nHid);
    a.slli(t4, s5, 5); // o * nHid * 4
    a.add(t4, t4, s2);
    a.label("jloop");
    if (o.extended) {
        a.xt_lrw(t5, t4, t2, 2);
        a.xt_lrw(a1, s4, t2, 2);
        a.xt_mula(t1, t5, a1);
    } else {
        a.slli(a2, t2, 2);
        a.add(t5, t4, a2);
        a.lw(t5, t5, 0);
        a.add(a1, s4, a2);
        a.lw(a1, a1, 0);
        a.mul(a2, t5, a1);
        a.add(t1, t1, a2);
    }
    a.addi(t2, t2, 1);
    a.blt(t2, t3, "jloop");
    a.srai(t1, t1, 8);
    a.bgez(t1, "relu2");
    a.li(t1, 0);
    a.label("relu2");
    a.add(a0, a0, t1);
    a.slli(t5, a0, 5);
    a.xor_(a0, a0, t5);
    a.addi(s5, s5, 1);
    a.j("oloop");
    a.label("odone");
    a.addi(s0, s0, -1);
    a.bnez(s0, "outer");
    epilogue(a);

    a.align(4);
    a.label("w1");
    for (int32_t v : w1)
        a.word(uint32_t(v));
    a.label("w2");
    for (int32_t v : w2)
        a.word(uint32_t(v));
    a.label("x");
    for (int32_t v : x)
        a.word(uint32_t(v));
    a.label("hid");
    a.zero(nHid * 4);
    resultSlot(a);

    uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        int64_t hid[nHid];
        for (int h = 0; h < nHid; ++h) {
            int64_t s = 0;
            for (int i = 0; i < nIn; ++i)
                s += int64_t(w1[h * nIn + i]) * x[i];
            s >>= 8;
            hid[h] = s > 0 ? s : 0;
        }
        for (int out = 0; out < nOut; ++out) {
            int64_t s = 0;
            for (int h = 0; h < nHid; ++h)
                s += int64_t(w2[out * nHid + h]) * hid[h];
            s >>= 8;
            if (s < 0)
                s = 0;
            acc += uint64_t(s);
            acc ^= acc << 5;
        }
    }
    return {a.assemble(), acc, iters};
}

} // namespace xt910
