#include "workloads/workload.h"

#include "common/log.h"

namespace xt910
{

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> table = {
        {"list", "coremark", buildCoremarkList},
        {"matrix", "coremark", buildCoremarkMatrix},
        {"state", "coremark", buildCoremarkState},
        {"crc", "coremark", buildCoremarkCrc},
        {"a2time", "eembc", buildEembcA2time},
        {"bitmnp", "eembc", buildEembcBitmnp},
        {"canrdr", "eembc", buildEembcCanrdr},
        {"idctrn", "eembc", buildEembcIdctrn},
        {"iirflt", "eembc", buildEembcIirflt},
        {"pntrch", "eembc", buildEembcPntrch},
        {"rspeed", "eembc", buildEembcRspeed},
        {"tblook", "eembc", buildEembcTblook},
        {"puwmod", "eembc", buildEembcPuwmod},
        {"ttsprk", "eembc", buildEembcTtsprk},
        {"numsort", "nbench", buildNbenchNumSort},
        {"strsort", "nbench", buildNbenchStringSort},
        {"bitfield", "nbench", buildNbenchBitfield},
        {"fpemu", "nbench", buildNbenchFpEmu},
        {"fourier", "nbench", buildNbenchFourier},
        {"idea", "nbench", buildNbenchIdea},
        {"huffman", "nbench", buildNbenchHuffman},
        {"lu", "nbench", buildNbenchLu},
        {"assignment", "nbench", buildNbenchAssignment},
        {"nnet", "nbench", buildNbenchNeuralNet},
        {"stream_copy", "stream", buildStreamCopy},
        {"stream_scale", "stream", buildStreamScale},
        {"stream_add", "stream", buildStreamAdd},
        {"stream_triad", "stream", buildStreamTriad},
        {"spec_mix", "spec", buildSpecLikeMix},
        {"mac_scalar", "ai", buildAiMacScalar},
        {"mac_vector", "ai", buildAiMacVector},
        {"blockchain", "ai", buildBlockchainHash},
    };
    return table;
}

std::vector<Workload>
workloadsInSuite(const std::string &suite)
{
    std::vector<Workload> out;
    for (const Workload &w : allWorkloads())
        if (w.suite == suite)
            out.push_back(w);
    return out;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    xt_fatal("unknown workload: ", name);
}

} // namespace xt910
