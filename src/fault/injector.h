/**
 * @file
 * Fault injection. A FaultInjector arms one planned fault and applies
 * it at a precise retired-instruction count via System::stepHook:
 * single-event upsets in the integer/FP/vector register files, memory
 * and cache-line data corruption, a forced load/store access fault,
 * and a forced branch mispredict (a corrupted prediction structure).
 * Plans are drawn from the deterministic Xorshift64 generator so a
 * campaign is bit-reproducible from its seed.
 */

#ifndef XT910_FAULT_INJECTOR_H
#define XT910_FAULT_INJECTOR_H

#include <string>

#include "common/random.h"
#include "core/system.h"

namespace xt910
{

/** What to corrupt. */
enum class FaultKind : uint8_t
{
    RegBitFlip,      ///< one bit in an integer register
    FregBitFlip,     ///< one bit in an FP register
    VregBitFlip,     ///< one bit in a vector register
    MemBitFlip,      ///< one bit of a memory byte
    CacheLineFlip,   ///< burst corruption across one 64-byte line
    AccessFault,     ///< next data access raises an access fault
    BranchMispredict,///< next branch resolves as an exec-stage redirect
    NumKinds
};

const char *faultKindName(FaultKind k);

/** A fully specified fault: what, where, and when to inject. */
struct FaultPlan
{
    FaultKind kind = FaultKind::RegBitFlip;
    uint64_t atInst = 0; ///< retired-instruction count to fire at
    unsigned hart = 0;
    unsigned reg = 1;    ///< register index (never x0)
    unsigned bit = 0;    ///< bit position within the target
    Addr addr = 0;       ///< target byte (Mem/CacheLine flips)

    std::string describe() const;
};

/**
 * Draw a random plan. Memory faults target [memBase, memBase+memLen);
 * the injection point is uniform in [1, windowInsts].
 */
FaultPlan randomPlan(Xorshift64 &rng, FaultKind kind,
                     uint64_t windowInsts, Addr memBase, uint64_t memLen);

/** See file comment. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan(plan) {}

    /** Install this injector as @p sys's stepHook. */
    void attach(System &sys);

    /** Apply the planned fault to @p sys immediately. */
    void apply(System &sys);

    bool fired() const { return hasFired; }
    const FaultPlan &planned() const { return plan; }

  private:
    FaultPlan plan;
    bool hasFired = false;
};

} // namespace xt910

#endif // XT910_FAULT_INJECTOR_H
