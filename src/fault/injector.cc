#include "fault/injector.h"

#include <sstream>

#include "common/types.h"

namespace xt910
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::RegBitFlip: return "reg-bitflip";
      case FaultKind::FregBitFlip: return "freg-bitflip";
      case FaultKind::VregBitFlip: return "vreg-bitflip";
      case FaultKind::MemBitFlip: return "mem-bitflip";
      case FaultKind::CacheLineFlip: return "cacheline-flip";
      case FaultKind::AccessFault: return "access-fault";
      case FaultKind::BranchMispredict: return "branch-mispredict";
      default: return "?";
    }
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << faultKindName(kind) << " @inst " << atInst << " hart " << hart;
    switch (kind) {
      case FaultKind::RegBitFlip:
        os << " x" << reg << " bit " << bit;
        break;
      case FaultKind::FregBitFlip:
        os << " f" << reg << " bit " << bit;
        break;
      case FaultKind::VregBitFlip:
        os << " v" << reg << " bit " << bit;
        break;
      case FaultKind::MemBitFlip:
      case FaultKind::CacheLineFlip:
        os << " addr 0x" << std::hex << addr << std::dec << " bit "
           << bit;
        break;
      default:
        break;
    }
    return os.str();
}

FaultPlan
randomPlan(Xorshift64 &rng, FaultKind kind, uint64_t windowInsts,
           Addr memBase, uint64_t memLen)
{
    FaultPlan p;
    p.kind = kind;
    p.atInst = rng.range(1, windowInsts ? windowInsts : 1);
    p.reg = unsigned(rng.range(1, 31));
    p.bit = unsigned(rng.below(64));
    p.addr = memBase + (memLen ? rng.below(memLen) : 0);
    return p;
}

void
FaultInjector::attach(System &sys)
{
    sys.stepHook = [this](uint64_t n, System &s) {
        if (!hasFired && n >= plan.atInst) {
            hasFired = true;
            apply(s);
        }
    };
}

void
FaultInjector::apply(System &sys)
{
    ArchState &s = sys.iss().hart(plan.hart);
    switch (plan.kind) {
      case FaultKind::RegBitFlip:
        // x0 is hardwired; plans never target it.
        s.x[plan.reg & 31 ? plan.reg & 31 : 1] ^= 1ull << plan.bit;
        break;
      case FaultKind::FregBitFlip:
        s.f[plan.reg & 31] ^= 1ull << plan.bit;
        break;
      case FaultKind::VregBitFlip:
        s.v[plan.reg & 31][plan.bit / 8 % ArchState::maxVlenBytes] ^=
            uint8_t(1u << (plan.bit % 8));
        break;
      case FaultKind::MemBitFlip: {
        Memory &m = sys.memory();
        m.write(plan.addr, 1,
                m.read(plan.addr, 1) ^ (1ull << (plan.bit % 8)));
        // The flip may land in code the ISS has predecoded.
        sys.iss().notifyCodeWrite(plan.addr, 1);
        break;
      }
      case FaultKind::CacheLineFlip: {
        // Burst upset: the same bit position goes bad in every byte of
        // the 64-byte line (a failing way in a data SRAM).
        Memory &m = sys.memory();
        Addr line = lineAlign(plan.addr);
        for (unsigned i = 0; i < cacheLineBytes; ++i)
            m.write(line + i, 1,
                    m.read(line + i, 1) ^ (1ull << (plan.bit % 8)));
        sys.iss().notifyCodeWrite(line, cacheLineBytes);
        break;
      }
      case FaultKind::AccessFault:
        sys.iss().injectAccessFault(plan.hart);
        break;
      case FaultKind::BranchMispredict:
        sys.core(plan.hart).injectMispredict();
        break;
      default:
        break;
    }
}

} // namespace xt910
