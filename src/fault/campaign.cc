#include "fault/campaign.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"
#include "common/log.h"
#include "common/parallel.h"

namespace xt910
{

namespace
{

const char *
stopName(StopReason s)
{
    switch (s) {
      case StopReason::Halted: return "halted";
      case StopReason::InstLimit: return "inst-limit";
      case StopReason::CycleLimit: return "cycle-limit";
      case StopReason::Watchdog: return "watchdog";
    }
    return "?";
}

} // namespace

FaultCampaign::FaultCampaign(CampaignConfig cfg_)
    : stats("campaign"),
      runs(stats, "runs", "injected runs executed"),
      detected(stats, "detected", "fault raised an architectural trap"),
      masked(stats, "masked", "fault had no architectural effect"),
      silent(stats, "silent", "wrong result with no trap (SDC)"),
      hung(stats, "hung", "watchdog or run limit fired"),
      crashed(stats, "crashed", "hart died on an unhandled trap"),
      lost(stats, "lost", "trial aborted on a host-side error"),
      cfg(std::move(cfg_))
{
    resultAddr = cfg.program.symbol("result");
    if (cfg.kinds.empty()) {
        for (unsigned k = 0; k < unsigned(FaultKind::NumKinds); ++k)
            cfg.kinds.push_back(FaultKind(k));
    }
}

SystemConfig
FaultCampaign::hardenedConfig() const
{
    SystemConfig sc = cfg.sys;
    // Campaign runs must never abort the host process or hang: an
    // unhandled trap halts the hart, the watchdog catches livelocks,
    // and a generous instruction budget bounds everything else.
    sc.iss.fatalOnUnhandledTrap = false;
    sc.watchdog.enabled = true;
    if (goldenInsts_)
        sc.maxInsts = goldenInsts_ * 4 + 100'000;
    return sc;
}

Outcome
FaultCampaign::runOne(const FaultPlan &plan)
{
    return runOneDetailed(plan).outcome;
}

TrialResult
FaultCampaign::runOneDetailed(const FaultPlan &plan)
{
    System sys(hardenedConfig());
    sys.loadProgram(cfg.program);
    FaultInjector inj(plan);
    inj.attach(sys);
    RunResult r = sys.run();

    uint64_t traps = 0;
    bool anyFatal = false;
    for (unsigned h = 0; h < sys.iss().numHarts(); ++h) {
        traps += sys.iss().trapsTaken(h);
        anyFatal |= sys.iss().hart(h).fatalTrap;
    }

    TrialResult t;
    t.stop = r.stop;
    if (r.stop != StopReason::Halted) {
        t.outcome = Outcome::Hung;
        t.diagnostic = r.diagnostic;
        unsigned harts = sys.iss().numHarts();
        for (unsigned h = 0; h < harts; ++h)
            t.robOccupancy.push_back(sys.core(h).robOccupancy());
        // PC trace from the hart that tripped the watchdog; for plain
        // limit overruns hart 0's ring still holds the recent retires.
        unsigned culprit = 0;
        for (unsigned h = 0; h < harts; ++h) {
            if (sys.watchdog(h).fired()) {
                culprit = h;
                break;
            }
        }
        t.recentPcs = sys.watchdog(culprit).recentPcs();
        return t;
    }
    if (anyFatal)
        t.outcome = Outcome::Crashed;
    else if (traps > goldenTraps_)
        t.outcome = Outcome::Detected;
    else if (sys.memory().read(resultAddr, 8) == cfg.expected)
        t.outcome = Outcome::Masked;
    else
        t.outcome = Outcome::Silent;
    return t;
}

void
FaultCampaign::run()
{
    // Golden run: fault-free reference behaviour.
    {
        System sys(hardenedConfig());
        sys.loadProgram(cfg.program);
        RunResult r = sys.run();
        xt_assert(r.stop == StopReason::Halted,
                  "golden run did not halt cleanly");
        uint64_t got = sys.memory().read(resultAddr, 8);
        xt_assert(got == cfg.expected,
                  "golden run checksum mismatch: got ", got,
                  " expected ", cfg.expected);
        goldenInsts_ = r.insts;
        for (unsigned h = 0; h < sys.iss().numHarts(); ++h)
            goldenTraps_ += sys.iss().trapsTaken(h);
    }

    // Draw every plan up front, sequentially: the RNG stream — and so
    // every planned fault — is identical no matter how many worker
    // threads later execute the trials.
    Xorshift64 rng(cfg.seed);
    std::vector<FaultPlan> plans;
    plans.reserve(cfg.runs);
    for (uint64_t i = 0; i < cfg.runs; ++i) {
        FaultKind kind = cfg.kinds[rng.below(cfg.kinds.size())];
        plans.push_back(randomPlan(rng, kind, goldenInsts_,
                                   cfg.program.base,
                                   cfg.program.image.size()));
    }

    // Each trial builds its own System, so trials are independent and
    // can run on the hardened farm: a trial that throws host-side is
    // retried once and then written off as "lost" rather than taking
    // the rest of the campaign with it. Outcomes land in trial order
    // and the counters merge in that order, keeping the report
    // byte-identical at any job count.
    std::vector<TrialResult> results(plans.size());
    auto reports = runHardened(
        plans.size(), resolveJobs(cfg.jobs), FarmPolicy{0.0, 1, 0},
        [&](size_t i, JobContext &) {
            results[i] = runOneDetailed(plans[i]);
        });

    for (size_t i = 0; i < results.size(); ++i) {
        ++runs;
        if (reports[i].status != JobStatus::Ok) {
            ++lost;
            if (lostTrials_.size() < maxDiags)
                lostTrials_.emplace_back(i, reports[i].error);
            continue;
        }
        switch (results[i].outcome) {
          case Outcome::Detected: ++detected; break;
          case Outcome::Masked: ++masked; break;
          case Outcome::Silent: ++silent; break;
          case Outcome::Crashed: ++crashed; break;
          case Outcome::Lost: ++lost; break;
          case Outcome::Hung:
            ++hung;
            if (hungDiags_.size() < maxDiags) {
                HungDiag d;
                d.trial = i;
                d.plan = plans[i].describe();
                d.result = std::move(results[i]);
                hungDiags_.push_back(std::move(d));
            }
            break;
        }
    }
}

void
FaultCampaign::report(std::ostream &os) const
{
    os << "fault-injection campaign: " << runs.value()
       << " runs (golden: " << goldenInsts_ << " insts, "
       << goldenTraps_ << " traps)\n";
    auto line = [&](const Counter &c) {
        double pct = runs.value()
                         ? 100.0 * double(c.value()) / double(runs.value())
                         : 0.0;
        os << "  " << c.name() << ": " << c.value() << " (" << pct
           << "%) — " << c.desc() << "\n";
    };
    line(detected);
    line(crashed);
    line(masked);
    line(silent);
    line(hung);
    line(lost);
    for (const HungDiag &d : hungDiags_) {
        os << "  hung trial " << d.trial << " (" << d.plan << "): "
           << stopName(d.result.stop) << ", rob";
        for (uint64_t occ : d.result.robOccupancy)
            os << " " << occ;
        os << ", last pc ";
        if (d.result.recentPcs.empty()) {
            os << "-";
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%" PRIx64,
                          uint64_t(d.result.recentPcs.back()));
            os << buf;
        }
        os << "\n";
    }
    for (const auto &lt : lostTrials_)
        os << "  lost trial " << lt.first << ": " << lt.second << "\n";
}

void
FaultCampaign::reportJson(std::ostream &os) const
{
    char buf[32];
    os << "{\n  \"campaign\": {\n";
    os << "    \"seed\": " << cfg.seed << ",\n";
    os << "    \"golden_insts\": " << goldenInsts_ << ",\n";
    os << "    \"golden_traps\": " << goldenTraps_ << ",\n";
    auto field = [&](const Counter &c) {
        os << "    \"" << c.name() << "\": " << c.value() << ",\n";
    };
    field(runs);
    field(detected);
    field(crashed);
    field(masked);
    field(silent);
    field(hung);
    field(lost);
    os << "    \"hung_trials\": [";
    for (size_t i = 0; i < hungDiags_.size(); ++i) {
        const HungDiag &d = hungDiags_[i];
        os << (i ? ",\n" : "\n");
        os << "      {\n";
        os << "        \"trial\": " << d.trial << ",\n";
        os << "        \"plan\": \"" << json::escape(d.plan) << "\",\n";
        os << "        \"stop\": \"" << stopName(d.result.stop)
           << "\",\n";
        os << "        \"rob_occupancy\": [";
        for (size_t c = 0; c < d.result.robOccupancy.size(); ++c)
            os << (c ? ", " : "") << d.result.robOccupancy[c];
        os << "],\n";
        os << "        \"recent_pcs\": [";
        for (size_t c = 0; c < d.result.recentPcs.size(); ++c) {
            std::snprintf(buf, sizeof(buf), "0x%" PRIx64,
                          uint64_t(d.result.recentPcs[c]));
            os << (c ? ", " : "") << "\"" << buf << "\"";
        }
        os << "],\n";
        os << "        \"diagnostic\": \""
           << json::escape(d.result.diagnostic) << "\"\n";
        os << "      }";
    }
    os << (hungDiags_.empty() ? "]" : "\n    ]") << ",\n";
    os << "    \"lost_trials\": [";
    for (size_t i = 0; i < lostTrials_.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "      { \"trial\": " << lostTrials_[i].first
           << ", \"error\": \"" << json::escape(lostTrials_[i].second)
           << "\" }";
    }
    os << (lostTrials_.empty() ? "]" : "\n    ]") << "\n";
    os << "  }\n}\n";
}

} // namespace xt910
