#include "fault/campaign.h"

#include "common/log.h"
#include "common/parallel.h"

namespace xt910
{

FaultCampaign::FaultCampaign(CampaignConfig cfg_)
    : stats("campaign"),
      runs(stats, "runs", "injected runs executed"),
      detected(stats, "detected", "fault raised an architectural trap"),
      masked(stats, "masked", "fault had no architectural effect"),
      silent(stats, "silent", "wrong result with no trap (SDC)"),
      hung(stats, "hung", "watchdog or run limit fired"),
      crashed(stats, "crashed", "hart died on an unhandled trap"),
      cfg(std::move(cfg_))
{
    resultAddr = cfg.program.symbol("result");
    if (cfg.kinds.empty()) {
        for (unsigned k = 0; k < unsigned(FaultKind::NumKinds); ++k)
            cfg.kinds.push_back(FaultKind(k));
    }
}

SystemConfig
FaultCampaign::hardenedConfig() const
{
    SystemConfig sc = cfg.sys;
    // Campaign runs must never abort the host process or hang: an
    // unhandled trap halts the hart, the watchdog catches livelocks,
    // and a generous instruction budget bounds everything else.
    sc.iss.fatalOnUnhandledTrap = false;
    sc.watchdog.enabled = true;
    if (goldenInsts_)
        sc.maxInsts = goldenInsts_ * 4 + 100'000;
    return sc;
}

Outcome
FaultCampaign::runOne(const FaultPlan &plan)
{
    System sys(hardenedConfig());
    sys.loadProgram(cfg.program);
    FaultInjector inj(plan);
    inj.attach(sys);
    RunResult r = sys.run();

    uint64_t traps = 0;
    bool anyFatal = false;
    for (unsigned h = 0; h < sys.iss().numHarts(); ++h) {
        traps += sys.iss().trapsTaken(h);
        anyFatal |= sys.iss().hart(h).fatalTrap;
    }

    if (r.stop != StopReason::Halted)
        return Outcome::Hung;
    if (anyFatal)
        return Outcome::Crashed;
    if (traps > goldenTraps_)
        return Outcome::Detected;
    if (sys.memory().read(resultAddr, 8) == cfg.expected)
        return Outcome::Masked;
    return Outcome::Silent;
}

void
FaultCampaign::run()
{
    // Golden run: fault-free reference behaviour.
    {
        System sys(hardenedConfig());
        sys.loadProgram(cfg.program);
        RunResult r = sys.run();
        xt_assert(r.stop == StopReason::Halted,
                  "golden run did not halt cleanly");
        uint64_t got = sys.memory().read(resultAddr, 8);
        xt_assert(got == cfg.expected,
                  "golden run checksum mismatch: got ", got,
                  " expected ", cfg.expected);
        goldenInsts_ = r.insts;
        for (unsigned h = 0; h < sys.iss().numHarts(); ++h)
            goldenTraps_ += sys.iss().trapsTaken(h);
    }

    // Draw every plan up front, sequentially: the RNG stream — and so
    // every planned fault — is identical no matter how many worker
    // threads later execute the trials.
    Xorshift64 rng(cfg.seed);
    std::vector<FaultPlan> plans;
    plans.reserve(cfg.runs);
    for (uint64_t i = 0; i < cfg.runs; ++i) {
        FaultKind kind = cfg.kinds[rng.below(cfg.kinds.size())];
        plans.push_back(randomPlan(rng, kind, goldenInsts_,
                                   cfg.program.base,
                                   cfg.program.image.size()));
    }

    // Each trial builds its own System, so trials are independent and
    // can run on the farm. Outcomes land in trial order and the
    // counters merge in that order, keeping the report byte-identical
    // at any job count.
    std::vector<Outcome> outcomes(plans.size(), Outcome::Masked);
    parallelFor(plans.size(), resolveJobs(cfg.jobs),
                [&](size_t i) { outcomes[i] = runOne(plans[i]); });

    for (Outcome o : outcomes) {
        ++runs;
        switch (o) {
          case Outcome::Detected: ++detected; break;
          case Outcome::Masked: ++masked; break;
          case Outcome::Silent: ++silent; break;
          case Outcome::Hung: ++hung; break;
          case Outcome::Crashed: ++crashed; break;
        }
    }
}

void
FaultCampaign::report(std::ostream &os) const
{
    os << "fault-injection campaign: " << runs.value()
       << " runs (golden: " << goldenInsts_ << " insts, "
       << goldenTraps_ << " traps)\n";
    auto line = [&](const Counter &c) {
        double pct = runs.value()
                         ? 100.0 * double(c.value()) / double(runs.value())
                         : 0.0;
        os << "  " << c.name() << ": " << c.value() << " (" << pct
           << "%) — " << c.desc() << "\n";
    };
    line(detected);
    line(crashed);
    line(masked);
    line(silent);
    line(hung);
}

} // namespace xt910
