/**
 * @file
 * Fault-injection campaign: run a workload once to establish the golden
 * (fault-free) behaviour, then repeatedly with one randomly planned
 * fault per run, and classify each outcome:
 *
 *  - detected: the guest took more synchronous traps than the golden
 *    run, or a hart died on an unhandled trap (the fault was caught
 *    architecturally);
 *  - masked:   the run completed with the correct checksum (the fault
 *    hit dead state);
 *  - silent:   the run completed with a wrong checksum and no trap —
 *    silent data corruption, the outcome fault-tolerance work cares
 *    about most;
 *  - hung:     the watchdog or a cycle/instruction limit fired;
 *  - lost:     the trial itself failed on the host side (an exception
 *    escaped the simulator) — the hardened farm retries it once and
 *    then salvages the campaign, recording the error instead of
 *    aborting the remaining trials.
 *
 * Hung trials additionally record the watchdog's diagnostics (per-core
 * ROB occupancy and the stuck hart's recent PC trace) into the
 * campaign JSON, so hangs are debuggable without a rerun.
 *
 * Every run uses a fresh System with the same configuration; the fault
 * schedule derives deterministically from the campaign seed.
 */

#ifndef XT910_FAULT_CAMPAIGN_H
#define XT910_FAULT_CAMPAIGN_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "fault/injector.h"

namespace xt910
{

/** Campaign configuration. */
struct CampaignConfig
{
    Program program;
    uint64_t expected = 0;   ///< correct value at the "result" symbol
    uint64_t runs = 100;
    uint64_t seed = 1;
    /**
     * Worker threads running trials concurrently (each trial is an
     * independent System). 0 = honour the XT910_JOBS environment
     * variable, serial when unset. Results are bitwise identical at
     * any job count: plans are drawn from the seed before the farm
     * starts and outcome counters merge in trial order.
     */
    unsigned jobs = 0;
    /** Fault kinds to draw from; empty = all kinds. */
    std::vector<FaultKind> kinds;
    SystemConfig sys{};      ///< base config (hardened per run)
};

/** How one injected run ended. */
enum class Outcome : uint8_t
{
    Detected,
    Masked,
    Silent,
    Hung,
    Crashed, ///< hart died on an unhandled trap (counted as detected)
    Lost,    ///< trial aborted on a host-side error (salvaged, not run)
};

/**
 * Full result of one injected run. The diagnostic fields are only
 * populated for Hung outcomes: they capture the watchdog's view of the
 * stuck guest (per-core ROB occupancy, the offending hart's recent PC
 * trace) so a hang in a long campaign is debuggable from the campaign
 * JSON alone, without rerunning the trial.
 */
struct TrialResult
{
    Outcome outcome = Outcome::Masked;
    StopReason stop = StopReason::Halted;
    std::vector<uint64_t> robOccupancy; ///< per core, at stop
    std::vector<Addr> recentPcs;        ///< offending hart, oldest first
    std::string diagnostic;             ///< watchdog/limit description
};

/** Hung-trial diagnostic retained for the campaign report. */
struct HungDiag
{
    uint64_t trial = 0;  ///< index in plan order
    std::string plan;    ///< FaultPlan::describe()
    TrialResult result;
};

/** See file comment. */
class FaultCampaign
{
  public:
    /** Hung/lost diagnostics kept per campaign (oldest trials win). */
    static constexpr size_t maxDiags = 32;

    explicit FaultCampaign(CampaignConfig cfg);

    /** Run the whole campaign (golden + cfg.runs injected runs). */
    void run();

    /** Classify a single plan; used by run() and directly by tests. */
    Outcome runOne(const FaultPlan &plan);

    /** Like runOne but returns hang diagnostics too. */
    TrialResult runOneDetailed(const FaultPlan &plan);

    /** Print the summary table. */
    void report(std::ostream &os) const;

    /**
     * Emit the whole campaign as one JSON object: outcome counters,
     * golden-run reference numbers, and the retained hung/lost trial
     * diagnostics (capped at maxDiags each).
     */
    void reportJson(std::ostream &os) const;

    uint64_t goldenInsts() const { return goldenInsts_; }
    uint64_t goldenTraps() const { return goldenTraps_; }

    /** Diagnostics of hung trials, in trial order (capped). */
    const std::vector<HungDiag> &hungDiags() const { return hungDiags_; }

    StatGroup stats;
    Counter runs;
    Counter detected;
    Counter masked;
    Counter silent;
    Counter hung;
    Counter crashed;
    Counter lost;

  private:
    SystemConfig hardenedConfig() const;

    CampaignConfig cfg;
    Addr resultAddr = 0;
    uint64_t goldenInsts_ = 0;
    uint64_t goldenTraps_ = 0;
    std::vector<HungDiag> hungDiags_;
    /** (trial, error) for trials the farm salvaged (capped). */
    std::vector<std::pair<uint64_t, std::string>> lostTrials_;
};

} // namespace xt910

#endif // XT910_FAULT_CAMPAIGN_H
