/**
 * @file
 * Prefetch explorer (§V.C): sweep the multi-mode multi-stream
 * prefetcher's distance/depth/mode knobs over a STREAM triad and print
 * the cycles + demand-miss table — a workbench for reproducing and
 * extending the Fig. 21 study.
 *
 *   $ ./examples/prefetch_explorer [stream_kib]
 */

#include <cstdlib>
#include <iostream>

#include "baseline/presets.h"
#include "core/system.h"
#include "mmu/pagetable.h"
#include "workloads/workload.h"
#include "workloads/wl_common.h"

using namespace xt910;

namespace
{

constexpr Addr tableBase = 0xc000'0000;

uint64_t
run(const WorkloadBuild &wb, bool l1, bool l2, bool tlb, unsigned dist,
    unsigned depth, PrefetcherParams::Mode mode, uint64_t &misses)
{
    SystemConfig cfg = xt910Preset().config;
    cfg.mem.l2.sizeBytes = 512 * 1024;
    cfg.core.prefetch.enableL1 = l1;
    cfg.core.prefetch.enableL2 = l2;
    cfg.core.prefetch.enableTlb = tlb;
    cfg.core.tlbPrefetch = tlb;
    cfg.core.prefetch.distance = dist;
    cfg.core.prefetch.maxDepth = depth;
    cfg.core.prefetch.mode = mode;
    cfg.core.translation = TranslationMode::Paged;
    cfg.core.pageTableRoot = tableBase;
    System sys(cfg);
    PageTableBuilder ptb(sys.memory(), tableBase);
    Addr root = ptb.createRoot();
    ptb.identityMap(root, wb.program.base, 0x40000, PageSize::Page4K);
    ptb.identityMap(root, 0x9000'0000, 8ull << 20, PageSize::Page4K);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    misses = sys.memSystem().l1d(0).misses.value();
    return r.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned kib = argc > 1 ? unsigned(std::atoi(argv[1])) : 512;
    WorkloadOptions o;
    o.streamBytes = kib * 1024;
    WorkloadBuild wb = findWorkload("stream_triad").build(o);

    std::cout << "STREAM triad, " << kib
              << " KiB arrays, 200-cycle memory, SV39 4K pages\n\n";
    std::cout << "config                         cycles     l1-misses  "
                 "speedup\n";

    uint64_t m0;
    uint64_t base = run(wb, false, false, false, 0, 0,
                        PrefetcherParams::Mode::MultiStream, m0);
    auto row = [&](const char *name, bool l1, bool l2, bool tlb,
                   unsigned d, unsigned dep,
                   PrefetcherParams::Mode mode) {
        uint64_t m;
        uint64_t c = run(wb, l1, l2, tlb, d, dep, mode, m);
        std::printf("%-28s %10llu %12llu %7.2fx\n", name,
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(m),
                    double(base) / double(c));
    };
    std::printf("%-28s %10llu %12llu %7.2fx\n", "off",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(m0), 1.0);
    using M = PrefetcherParams::Mode;
    row("multistream d=4  depth=8", true, false, false, 4, 8,
        M::MultiStream);
    row("multistream d=8  depth=16", true, true, true, 8, 16,
        M::MultiStream);
    row("multistream d=24 depth=48", true, true, true, 24, 48,
        M::MultiStream);
    row("multistream d=24 no-TLB", true, true, false, 24, 48,
        M::MultiStream);
    row("global      d=24 depth=64", true, true, true, 24, 64,
        M::Global);
    return 0;
}
