/**
 * @file
 * Vector-extension example (§VII): an int16 dot product written three
 * ways — scalar RV64GC, scalar with XT-910 MAC instructions, and the
 * 0.7.1 vector form with widening MACs — plus a half-precision vector
 * add, the feature the paper highlights NEON lacks.
 *
 *   $ ./examples/vector_ai
 */

#include <iostream>

#include "baseline/presets.h"
#include "core/system.h"
#include "func/fp16.h"
#include "workloads/workload.h"
#include "workloads/wl_common.h"

using namespace xt910;
using namespace xt910::reg;

namespace
{

struct Run
{
    uint64_t cycles;
    bool correct;
};

Run
runBuild(const WorkloadBuild &wb, const SystemConfig &cfg)
{
    System sys(cfg);
    sys.loadProgram(wb.program);
    RunResult r = sys.run();
    return {r.cycles,
            wl::readResult(sys.memory(), wb.program) == wb.expected};
}

} // namespace

int
main()
{
    SystemConfig xt = xt910Preset().config;

    WorkloadOptions scalarOpts;
    WorkloadOptions macOpts;
    macOpts.extended = true;
    WorkloadOptions vecOpts;

    Run scalar = runBuild(findWorkload("mac_scalar").build(scalarOpts), xt);
    Run mac = runBuild(findWorkload("mac_scalar").build(macOpts), xt);
    Run vec = runBuild(findWorkload("mac_vector").build(vecOpts), xt);

    std::cout << "int16 dot product, 2048 elements x 10 passes\n\n";
    auto row = [&](const char *name, const Run &r) {
        std::cout << "  " << name << ": " << r.cycles << " cycles ("
                  << (r.correct ? "checksum ok" : "CHECKSUM BAD") << "), "
                  << double(scalar.cycles) / double(r.cycles)
                  << "x vs scalar\n";
    };
    row("rv64gc scalar      ", scalar);
    row("xthead mulah scalar", mac);
    row("v-ext vwmacc vector", vec);

    // Half-precision: double each fp16 element of a small buffer.
    std::cout << "\nhalf-precision vector add (SEW=16 FP):\n";
    Assembler a;
    a.la(s0, "h");
    a.li(t0, 8);
    a.vsetvli(t0, t0, VType{.sew = 16, .lmul = 1});
    a.vle(v1, s0);
    a.vfadd_vv(v2, v1, v1);
    a.vse(v2, s0);
    a.ebreak();
    a.align(2);
    a.label("h");
    for (int i = 0; i < 8; ++i)
        a.half(floatToFp16(0.25f * float(i + 1)));
    Program p = a.assemble();
    System sys(xt);
    sys.loadProgram(p);
    sys.run();
    Addr h = p.symbol("h");
    std::cout << "  ";
    for (int i = 0; i < 8; ++i)
        std::cout << fp16ToFloat(uint16_t(sys.memory().read(h + 2 * i, 2)))
                  << " ";
    std::cout << "\n  (inputs were 0.25 .. 2.0; doubled in fp16)\n";
    return scalar.correct && mac.correct && vec.correct ? 0 : 1;
}
