/**
 * @file
 * Objdump-style listing of any registered workload: shows the real
 * machine code the macro-assembler produced (including auto-compressed
 * RVC forms) with the disassembler.
 *
 *   $ ./examples/objdump crc            # native flavour
 *   $ ./examples/objdump crc extended   # with custom instructions
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "isa/disasm.h"
#include "workloads/workload.h"

using namespace xt910;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "crc";
    WorkloadOptions o;
    o.extended = argc > 2 && std::strcmp(argv[2], "extended") == 0;

    WorkloadBuild wb = findWorkload(name).build(o);
    const Program &p = wb.program;

    std::printf("%s (%s): %zu bytes, entry 0x%llx\n\n", name,
                o.extended ? "extended" : "native", p.image.size(),
                static_cast<unsigned long long>(p.entry));

    unsigned compressed = 0, full = 0;
    for (auto &[pc, di] : decodeImage(p)) {
        std::printf("%8llx:  %-8s %s\n",
                    static_cast<unsigned long long>(pc),
                    di.len == 2 ? "(rvc)" : "",
                    disassemble(di).c_str());
        (di.len == 2 ? compressed : full) += 1;
        if (di.op == Opcode::EBREAK)
            break; // data section follows
    }
    std::printf("\n%u instructions: %u compressed, %u full "
                "(%.0f%% code-size saving vs all-32-bit)\n",
                compressed + full, compressed, full,
                100.0 * (1.0 - double(2 * compressed + 4 * full) /
                                   double(4 * (compressed + full))));
    return 0;
}
