/**
 * @file
 * Quickstart: author a small RISC-V program with the macro-assembler,
 * run it on the XT-910 model, and read out results and pipeline stats.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "baseline/presets.h"
#include "core/system.h"

using namespace xt910;
using namespace xt910::reg;

int
main()
{
    // 1. Write a program: sum the first 100,000 integers.
    Assembler a;
    a.li(a0, 0);        // sum
    a.li(a1, 1);        // i
    a.li(a2, 100000);   // limit
    a.label("loop");
    a.add(a0, a0, a1);
    a.addi(a1, a1, 1);
    a.bge(a2, a1, "loop");
    // Return the sum via the exit "syscall" convention.
    a.mv(a1, a0);
    a.li(a7, 93);
    a.ecall();
    Program prog = a.assemble();
    std::cout << "program: " << prog.image.size() << " bytes at 0x"
              << std::hex << prog.base << std::dec << "\n";

    // 2. Build an XT-910 system (paper configuration) and run.
    System sys(xt910Preset().config);
    sys.loadProgram(prog);
    RunResult r = sys.run();

    // 3. Results: architectural state from the ISS, timing from the
    //    core model.
    std::cout << "sum(1..100000) = " << sys.iss().hart(0).x[11] << "\n";
    std::cout << "instructions   = " << r.insts << "\n";
    std::cout << "cycles         = " << r.cycles << "\n";
    std::cout << "IPC            = " << r.ipc() << "\n\n";

    std::cout << "core statistics:\n";
    sys.core().stats.dump(std::cout);
    std::cout << "\nloop buffer (the hot loop streams from the LBUF):\n";
    sys.core().loopBuffer().stats.dump(std::cout);
    return 0;
}
