/**
 * @file
 * SMP example: four cores build a shared histogram of a data buffer
 * using amoadd, exercising the MOESI coherence protocol, the snoop
 * filter, and (with 8 cores) the Ncore cross-cluster path (§VI).
 *
 *   $ ./examples/smp_histogram [num_cores]
 */

#include <cstdlib>
#include <iostream>

#include "core/system.h"

using namespace xt910;
using namespace xt910::reg;

namespace
{

Program
histogramProgram(unsigned numCores, unsigned itemsPerCore)
{
    // Each hart processes a disjoint slice of "data" (its index comes
    // from mhartid) and increments shared "hist" buckets atomically.
    Assembler a;
    a.csrr(t0, 0xf14); // mhartid
    a.li(t1, int64_t(itemsPerCore));
    a.mul(t2, t0, t1); // start index
    a.la(s1, "data");
    a.la(s2, "hist");
    a.li(s3, 0); // processed
    a.label("loop");
    a.add(t3, t2, s3);
    a.add(t4, s1, t3);
    a.lbu(t5, t4, 0);        // value 0..15
    a.andi(t5, t5, 15);
    a.slli(t5, t5, 3);
    a.add(t5, t5, s2);       // &hist[value]
    a.li(t6, 1);
    a.amoadd_d(zero, t6, t5);
    a.addi(s3, s3, 1);
    a.blt(s3, t1, "loop");
    a.ebreak();
    a.align(8);
    a.label("hist");
    a.zero(16 * 8);
    a.label("data");
    for (unsigned i = 0; i < numCores * itemsPerCore; ++i)
        a.byte(uint8_t((i * 2654435761u) >> 13));
    return a.assemble();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
    const unsigned itemsPerCore = 2000;

    SystemConfig cfg;
    cfg.numCores = cores;
    System sys(cfg);
    Program p = histogramProgram(cores, itemsPerCore);
    sys.loadProgram(p);
    RunResult r = sys.run();

    std::cout << cores << "-core histogram of "
              << cores * itemsPerCore << " items\n\n";
    Addr hist = p.symbol("hist");
    uint64_t total = 0;
    for (int b = 0; b < 16; ++b) {
        uint64_t count = sys.memory().read(hist + Addr(b) * 8, 8);
        total += count;
        std::cout << "bucket " << b << ": " << count << "\n";
    }
    std::cout << "total " << total << " (expected "
              << cores * itemsPerCore << ")\n\n";

    std::cout << "cycles (max over cores) = " << r.cycles << "\n";
    for (unsigned c = 0; c < cores; ++c)
        std::cout << "  core " << c << ": " << r.coreCycles[c]
                  << " cycles, " << r.coreInsts[c] << " insts\n";
    std::cout << "\ncoherence activity:\n";
    sys.memSystem().stats.dump(std::cout);
    return total == uint64_t(cores) * itemsPerCore ? 0 : 1;
}
