/**
 * @file
 * Profiler example — the model's counterpart to the XT-910 CDS
 * profiling tool (§IX, Fig. 16): runs any registered workload with the
 * per-µop trace hook attached and reports hot PCs with per-instruction
 * cycle attribution and a pipeline-stall breakdown.
 *
 *   $ ./examples/profiler matrix
 *   $ ./examples/profiler crc extended
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "baseline/presets.h"
#include "core/system.h"
#include "isa/disasm.h"
#include "workloads/workload.h"

using namespace xt910;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "matrix";
    WorkloadOptions o;
    o.extended = argc > 2 && std::strcmp(argv[2], "extended") == 0;
    WorkloadBuild wb = findWorkload(name).build(o);

    System sys(xt910Preset().config);
    sys.loadProgram(wb.program);

    struct PcProf
    {
        uint64_t count = 0;
        uint64_t issueStall = 0;  // rename->issue wait (deps/ports)
        uint64_t memCycles = 0;   // issue->done (latency incl. cache)
    };
    std::map<Addr, PcProf> prof;
    Cycle lastRetire = 0;
    uint64_t totalCycles = 0;

    sys.core().traceHook = [&](const XtCore::UopTrace &t) {
        PcProf &p = prof[t.pc];
        ++p.count;
        p.issueStall += t.issue - t.rename;
        p.memCycles += t.done - t.issue;
        totalCycles += t.retire - lastRetire;
        lastRetire = t.retire;
    };

    auto &iss = sys.iss();
    while (!iss.halted())
        sys.core().consume(iss.step());

    std::printf("%s (%s): %llu instructions, %llu cycles, IPC %.2f\n\n",
                name, o.extended ? "extended" : "native",
                static_cast<unsigned long long>(sys.core().retired()),
                static_cast<unsigned long long>(sys.core().cycles()),
                sys.core().ipc());

    // Rank PCs by execution count x average issue-to-done time.
    std::vector<std::pair<Addr, PcProf>> hot(prof.begin(), prof.end());
    std::sort(hot.begin(), hot.end(), [](auto &a, auto &b) {
        return a.second.issueStall + a.second.memCycles >
               b.second.issueStall + b.second.memCycles;
    });

    std::printf("hot instructions (top 15 by attributed cycles):\n");
    std::printf("%10s %10s %12s %12s  %s\n", "pc", "count",
                "wait-cycles", "exec-cycles", "instruction");
    for (size_t i = 0; i < hot.size() && i < 15; ++i) {
        auto &[pc, p] = hot[i];
        DecodedInst di = sys.iss().fetchDecode(pc);
        std::printf("%10llx %10llu %12llu %12llu  %s\n",
                    static_cast<unsigned long long>(pc),
                    static_cast<unsigned long long>(p.count),
                    static_cast<unsigned long long>(p.issueStall),
                    static_cast<unsigned long long>(p.memCycles),
                    disassemble(di).c_str());
    }

    std::printf("\npipeline component stats:\n");
    sys.core().stats.dump(std::cout);
    return 0;
}
