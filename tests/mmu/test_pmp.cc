/**
 * PMP tests (§II: standard 8-16 region physical memory protection).
 */

#include <gtest/gtest.h>

#include "mmu/pmp.h"

namespace xt910
{

TEST(Pmp, InactiveAllowsEverything)
{
    Pmp pmp(16);
    EXPECT_TRUE(pmp.inactive());
    EXPECT_TRUE(pmp.check(0x1234, 8, PmpAccess::Write, PrivMode::User));
    EXPECT_TRUE(
        pmp.check(0xdead0000, 4, PmpAccess::Exec, PrivMode::Supervisor));
}

TEST(Pmp, RegionPermissionsEnforced)
{
    Pmp pmp(8);
    pmp.setRegion(0, {.base = 0x80000000,
                      .size = 0x1000,
                      .r = true,
                      .w = false,
                      .x = true});
    // Inside the region: R and X allowed, W denied for U/S.
    EXPECT_TRUE(
        pmp.check(0x80000100, 8, PmpAccess::Read, PrivMode::User));
    EXPECT_TRUE(
        pmp.check(0x80000ff8, 8, PmpAccess::Exec, PrivMode::Supervisor));
    EXPECT_FALSE(
        pmp.check(0x80000100, 8, PmpAccess::Write, PrivMode::User));
    EXPECT_GE(pmp.denials.value(), 1u);
}

TEST(Pmp, NoMatchDeniesLowerPrivilege)
{
    Pmp pmp(8);
    pmp.setRegion(0, {.base = 0x1000, .size = 0x1000, .r = true});
    // Outside any region: U/S denied, M allowed.
    EXPECT_FALSE(
        pmp.check(0x9000000, 4, PmpAccess::Read, PrivMode::User));
    EXPECT_TRUE(
        pmp.check(0x9000000, 4, PmpAccess::Read, PrivMode::Machine));
}

TEST(Pmp, MachineBypassesUnlockedButNotLocked)
{
    Pmp pmp(8);
    pmp.setRegion(0, {.base = 0x2000, .size = 0x1000, .r = false,
                      .w = false, .x = false, .locked = false});
    pmp.setRegion(1, {.base = 0x4000, .size = 0x1000, .r = false,
                      .w = false, .x = false, .locked = true});
    EXPECT_TRUE(
        pmp.check(0x2000, 8, PmpAccess::Write, PrivMode::Machine));
    EXPECT_FALSE(
        pmp.check(0x4000, 8, PmpAccess::Write, PrivMode::Machine));
}

TEST(Pmp, PriorityLowestRegionWins)
{
    Pmp pmp(8);
    pmp.setRegion(0, {.base = 0x8000, .size = 0x100, .r = true});
    pmp.setRegion(1, {.base = 0x8000, .size = 0x1000, .r = false,
                      .w = true});
    // Region 0 matches first and allows reads.
    EXPECT_TRUE(pmp.check(0x8010, 4, PmpAccess::Read, PrivMode::User));
    // Beyond region 0 but inside region 1: write allowed, read denied.
    EXPECT_TRUE(pmp.check(0x8200, 4, PmpAccess::Write, PrivMode::User));
    EXPECT_FALSE(pmp.check(0x8200, 4, PmpAccess::Read, PrivMode::User));
}

TEST(Pmp, LockedRegionCannotBeReprogrammed)
{
    Pmp pmp(8);
    pmp.setRegion(2, {.base = 0x1000, .size = 0x1000, .r = true,
                      .locked = true});
    EXPECT_THROW(pmp.setRegion(2, PmpRegion{}), std::logic_error);
}

TEST(Pmp, RegionCountValidated)
{
    EXPECT_THROW(Pmp(12), std::logic_error);
    EXPECT_NO_THROW(Pmp(8));
    EXPECT_NO_THROW(Pmp(16));
}

} // namespace xt910
