/**
 * Multi-size multi-level TLB tests (§V.D): micro/jTLB interplay,
 * page-size probing order, ASID matching and flush operations.
 */

#include <gtest/gtest.h>

#include "mmu/tlb.h"

namespace xt910
{

namespace
{

TlbParams
smallTlb()
{
    TlbParams p;
    p.microEntries = 4;
    p.jtlbSets = 16;
    p.jtlbWays = 4;
    return p;
}

} // namespace

TEST(Tlb, MissThenInsertThenMicroHit)
{
    Tlb t(smallTlb(), "tlb");
    EXPECT_FALSE(t.lookup(0x1234567, 1, 0).has_value());
    EXPECT_EQ(t.misses.value(), 1u);

    t.insert(0x1234000, 0x9876000, PageSize::Page4K, 1);
    auto r = t.lookup(0x1234567, 1, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->pa, 0x9876567u);
    EXPECT_TRUE(r->microHit); // insert fills micro too
    EXPECT_EQ(t.microHits.value(), 1u);
}

TEST(Tlb, JtlbBacksUpMicroCapacity)
{
    Tlb t(smallTlb(), "tlb");
    // Insert more 4K pages than micro entries (4).
    for (Addr i = 0; i < 8; ++i)
        t.insert(0x100000 + i * 0x1000, 0x200000 + i * 0x1000,
                 PageSize::Page4K, 1);
    // The oldest translations fell out of micro but hit in jTLB.
    auto r = t.lookup(0x100123, 1, 10);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->microHit);
    EXPECT_EQ(r->pa, 0x200123u);
    EXPECT_EQ(t.jtlbHits.value(), 1u);
    // The jTLB hit refilled micro: the next lookup hits micro.
    auto r2 = t.lookup(0x100456, 1, 11);
    ASSERT_TRUE(r2.has_value());
    EXPECT_TRUE(r2->microHit);
}

TEST(Tlb, HugePagesTranslate)
{
    Tlb t(smallTlb(), "tlb");
    t.insert(0x40000000, 0x80000000, PageSize::Page1G, 1);
    t.insert(0x00200000, 0x00600000, PageSize::Page2M, 1);
    auto g = t.lookup(0x40123456, 1, 0);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->pa, 0x80123456u);
    EXPECT_EQ(g->size, PageSize::Page1G);
    auto m = t.lookup(0x00212345, 1, 1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pa, 0x00612345u);
    EXPECT_EQ(m->size, PageSize::Page2M);
}

TEST(Tlb, JtlbProbeOrderReportsExtraProbes)
{
    // Force jTLB (not micro) hits by overflowing micro with 4K pages
    // first, then checking probe counts per page size.
    Tlb t(smallTlb(), "tlb");
    t.insert(0x00200000, 0x00600000, PageSize::Page2M, 1);
    t.insert(0x80000000, 0x40000000, PageSize::Page1G, 1);
    for (Addr i = 0; i < 8; ++i)
        t.insert(0x100000 + i * 0x1000, 0x200000 + i * 0x1000,
                 PageSize::Page4K, 1);
    // 2M entry: 4K probe misses, 2M probe hits -> 2 probes.
    auto m = t.lookup(0x00234567, 1, 20);
    ASSERT_TRUE(m.has_value());
    if (!m->microHit)
        EXPECT_EQ(m->jtlbProbes, 2u);
    // 1G entry: 3 probes.
    auto g = t.lookup(0x80345678, 1, 21);
    ASSERT_TRUE(g.has_value());
    if (!g->microHit)
        EXPECT_EQ(g->jtlbProbes, 3u);
}

TEST(Tlb, AsidIsolation)
{
    Tlb t(smallTlb(), "tlb");
    t.insert(0x5000, 0x9000, PageSize::Page4K, /*asid=*/1);
    EXPECT_TRUE(t.lookup(0x5123, 1, 0).has_value());
    EXPECT_FALSE(t.lookup(0x5123, 2, 1).has_value());
}

TEST(Tlb, GlobalPagesIgnoreAsid)
{
    Tlb t(smallTlb(), "tlb");
    t.insert(0x7000, 0xb000, PageSize::Page4K, 1, /*global=*/true);
    EXPECT_TRUE(t.lookup(0x7042, 1, 0).has_value());
    EXPECT_TRUE(t.lookup(0x7042, 99, 1).has_value());
}

TEST(Tlb, FlushVariants)
{
    Tlb t(smallTlb(), "tlb");
    t.insert(0x1000, 0x2000, PageSize::Page4K, 1);
    t.insert(0x3000, 0x4000, PageSize::Page4K, 2);
    t.flushAsid(1);
    EXPECT_FALSE(t.lookup(0x1000, 1, 0).has_value());
    EXPECT_TRUE(t.lookup(0x3000, 2, 1).has_value());

    t.insert(0x1000, 0x2000, PageSize::Page4K, 1);
    t.flushVa(0x1000);
    EXPECT_FALSE(t.lookup(0x1000, 1, 2).has_value());
    EXPECT_TRUE(t.lookup(0x3000, 2, 3).has_value());

    t.flushAll();
    EXPECT_FALSE(t.lookup(0x3000, 2, 4).has_value());
    EXPECT_EQ(t.flushes.value(), 1u);
    EXPECT_EQ(t.asidFlushes.value(), 1u);
}

TEST(Tlb, LruReplacementInJtlbSet)
{
    TlbParams p = smallTlb();
    p.jtlbWays = 2;
    Tlb t(p, "tlb");
    // Three pages mapping to the same jTLB set (stride sets*4K).
    Addr stride = Addr(p.jtlbSets) * 0x1000;
    t.insert(0x0000, 0x10000, PageSize::Page4K, 1);
    t.insert(stride, 0x20000, PageSize::Page4K, 1);
    // Touch the first so the second is LRU.
    t.lookup(0x0000, 1, 5);
    t.insert(2 * stride, 0x30000, PageSize::Page4K, 1);
    // First survives in jTLB; second was evicted (though it may still
    // sit in micro — flush micro effects by checking jtlb via stats).
    EXPECT_TRUE(t.lookup(0x0000, 1, 6).has_value());
    EXPECT_TRUE(t.lookup(2 * stride, 1, 7).has_value());
}

} // namespace xt910
