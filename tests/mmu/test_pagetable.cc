/**
 * SV39 page-table builder + walker tests, including the multi-size
 * leaf levels (4K/2M/1G huge pages, §V.E) and the ASID-rollover
 * experiment infrastructure.
 */

#include <gtest/gtest.h>

#include "mmu/pagetable.h"

namespace xt910
{

TEST(PageTable, Map4KAndWalk)
{
    Memory mem;
    PageTableBuilder b(mem, 0x100000);
    Addr root = b.createRoot();
    b.map(root, 0x0000000080001000ull, 0x0000000090002000ull,
          PageSize::Page4K);
    WalkResult r = walkSv39(mem, root, 0x80001abc);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x90002abcu);
    EXPECT_EQ(r.size, PageSize::Page4K);
    EXPECT_EQ(r.levels, 3u); // full three-level walk
}

TEST(PageTable, UnmappedFaults)
{
    Memory mem;
    PageTableBuilder b(mem, 0x100000);
    Addr root = b.createRoot();
    WalkResult r = walkSv39(mem, root, 0xdead0000);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.levels, 1u); // first-level PTE already invalid
}

TEST(PageTable, HugePageLeaves)
{
    Memory mem;
    PageTableBuilder b(mem, 0x100000);
    Addr root = b.createRoot();
    // 2M page: leaf at level 1 -> 2-level walk.
    b.map(root, 0x00200000, 0x40200000, PageSize::Page2M);
    WalkResult m = walkSv39(mem, root, 0x00234567);
    ASSERT_TRUE(m.ok);
    EXPECT_EQ(m.pa, 0x40234567u);
    EXPECT_EQ(m.size, PageSize::Page2M);
    EXPECT_EQ(m.levels, 2u);
    // 1G page: leaf at level 2 -> 1-level walk.
    b.map(root, 0x40000000, 0x80000000, PageSize::Page1G);
    WalkResult g = walkSv39(mem, root, 0x7fffffff);
    ASSERT_TRUE(g.ok);
    EXPECT_EQ(g.pa, 0xbfffffffu);
    EXPECT_EQ(g.size, PageSize::Page1G);
    EXPECT_EQ(g.levels, 1u);
}

TEST(PageTable, HugePagesCutWalkCostAndTableBytes)
{
    // Mapping 2 MiB with 4K pages costs 512 leaf PTEs across extra
    // tables; a single 2M leaf costs one - the Linux huge-page
    // motivation from §V.E.
    Memory mem4k, mem2m;
    PageTableBuilder b4k(mem4k, 0x100000);
    Addr r4k = b4k.createRoot();
    b4k.identityMap(r4k, 0x40000000, 2 * 1024 * 1024, PageSize::Page4K);

    PageTableBuilder b2m(mem2m, 0x100000);
    Addr r2m = b2m.createRoot();
    b2m.identityMap(r2m, 0x40000000, 2 * 1024 * 1024, PageSize::Page2M);

    EXPECT_GT(b4k.tableBytes(), b2m.tableBytes());
    EXPECT_LT(walkSv39(mem2m, r2m, 0x40001000).levels,
              walkSv39(mem4k, r4k, 0x40001000).levels);
}

TEST(PageTable, IdentityMapCoversRange)
{
    Memory mem;
    PageTableBuilder b(mem, 0x100000);
    Addr root = b.createRoot();
    b.identityMap(root, 0x80000000, 64 * 1024, PageSize::Page4K);
    for (Addr a = 0x80000000; a < 0x80010000; a += 0x1000) {
        WalkResult r = walkSv39(mem, root, a + 0x123);
        ASSERT_TRUE(r.ok) << std::hex << a;
        EXPECT_EQ(r.pa, a + 0x123);
    }
    EXPECT_FALSE(walkSv39(mem, root, 0x80010123).ok);
}

TEST(PageTable, TwoAddressSpaces)
{
    Memory mem;
    PageTableBuilder b(mem, 0x100000);
    Addr r1 = b.createRoot();
    Addr r2 = b.createRoot();
    b.map(r1, 0x1000, 0xa000, PageSize::Page4K);
    b.map(r2, 0x1000, 0xb000, PageSize::Page4K);
    EXPECT_EQ(walkSv39(mem, r1, 0x1500).pa, 0xa500u);
    EXPECT_EQ(walkSv39(mem, r2, 0x1500).pa, 0xb500u);
}

TEST(AsidAlloc, NoFlushWithinCapacity)
{
    Tlb tlb(TlbParams{}, "tlb");
    AsidAllocator alloc(8); // 255 usable ASIDs
    for (uint64_t ctx = 0; ctx < 200; ++ctx)
        alloc.acquire(ctx, tlb);
    EXPECT_EQ(alloc.flushCount(), 0u);
}

TEST(AsidAlloc, RolloverFlushes)
{
    Tlb tlb(TlbParams{}, "tlb");
    AsidAllocator alloc(4); // 15 usable
    for (uint64_t ctx = 0; ctx < 100; ++ctx)
        alloc.acquire(ctx, tlb);
    EXPECT_GT(alloc.flushCount(), 0u);
    EXPECT_EQ(tlb.flushes.value(), alloc.flushCount());
}

TEST(AsidAlloc, ReuseIsStableWithinGeneration)
{
    Tlb tlb(TlbParams{}, "tlb");
    AsidAllocator alloc(8);
    Asid a = alloc.acquire(7, tlb).asid;
    for (uint64_t ctx = 100; ctx < 110; ++ctx)
        alloc.acquire(ctx, tlb);
    EXPECT_EQ(alloc.acquire(7, tlb).asid, a);
    EXPECT_FALSE(alloc.acquire(7, tlb).flushed);
}

TEST(AsidAlloc, WiderAsidFlushesTenTimesLess)
{
    // The paper's §V.E claim: 16-bit ASID cuts context-switch TLB
    // flushes by ~10x vs the narrower alternative. Model a round-robin
    // working set of 512 contexts and count rollover flushes.
    const unsigned switches = 200000;
    const unsigned contexts = 512;
    auto flushesWith = [&](unsigned bits) {
        Tlb tlb(TlbParams{}, "tlb");
        AsidAllocator alloc(bits);
        for (unsigned i = 0; i < switches; ++i)
            alloc.acquire(i % contexts, tlb);
        return alloc.flushCount();
    };
    uint64_t narrow = flushesWith(8);
    uint64_t wide = flushesWith(16);
    EXPECT_GT(narrow, 0u);
    // 512 contexts fit in 16 bits entirely: only the warm-up misses.
    EXPECT_GE(narrow, wide * 10);
}

} // namespace xt910
