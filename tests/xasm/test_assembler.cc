/**
 * Macro-assembler tests: emission, labels, relaxation, compression,
 * pseudo-instruction expansion and image decoding.
 */

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "xasm/assembler.h"

namespace xt910
{

using namespace reg;

TEST(Assembler, SimpleSequenceDecodesBack)
{
    Assembler a(0x80000000, {.compress = false});
    a.addi(a0, zero, 5);
    a.addi(a1, zero, 7);
    a.add(a2, a0, a1);
    a.ebreak();
    Program p = a.assemble();
    EXPECT_EQ(p.image.size(), 16u);

    auto insts = decodeImage(p);
    ASSERT_EQ(insts.size(), 4u);
    EXPECT_EQ(insts[0].second.op, Opcode::ADDI);
    EXPECT_EQ(insts[2].second.op, Opcode::ADD);
    EXPECT_EQ(insts[2].second.rd, 12);
    EXPECT_EQ(insts[3].second.op, Opcode::EBREAK);
}

TEST(Assembler, CompressionShrinksCode)
{
    auto build = [](bool compress) {
        Assembler a(0x80000000, {.compress = compress});
        for (int i = 0; i < 20; ++i) {
            a.addi(a0, a0, 1);
            a.add(a1, a1, a0);
        }
        a.ebreak();
        return a.assemble();
    };
    Program full = build(false);
    Program compact = build(true);
    EXPECT_EQ(full.image.size(), 164u);
    // Every addi/add above is compressible; ebreak too.
    EXPECT_EQ(compact.image.size(), 82u);

    // Both must decode to the same instruction sequence.
    auto fi = decodeImage(full);
    auto ci = decodeImage(compact);
    ASSERT_EQ(fi.size(), ci.size());
    for (size_t i = 0; i < fi.size(); ++i) {
        EXPECT_EQ(fi[i].second.op, ci[i].second.op);
        EXPECT_EQ(fi[i].second.imm, ci[i].second.imm);
    }
}

TEST(Assembler, BackwardBranchTarget)
{
    Assembler a;
    a.li(a0, 10);
    a.label("loop");
    a.addi(a0, a0, -1);
    a.bnez(a0, "loop");
    a.ebreak();
    Program p = a.assemble();
    Addr loop = p.symbol("loop");

    // Find the branch and check its resolved target.
    auto insts = decodeImage(p);
    bool found = false;
    for (auto &[pc, di] : insts) {
        if (di.op == Opcode::BNE) {
            EXPECT_EQ(pc + Addr(di.imm), loop);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Assembler, ForwardBranchAndJump)
{
    Assembler a;
    a.beqz(a0, "skip");
    a.li(a1, 1);
    a.j("end");
    a.label("skip");
    a.li(a1, 2);
    a.label("end");
    a.ebreak();
    Program p = a.assemble();
    auto insts = decodeImage(p);
    ASSERT_GE(insts.size(), 4u);
    EXPECT_EQ(insts[0].first + Addr(insts[0].second.imm),
              p.symbol("skip"));
}

TEST(Assembler, RelaxationGrowsOutOfRangeCompressedBranch)
{
    // A c.beqz reaches +-256B; pad beyond that so relaxation must pick
    // the 4-byte form, and the target must still resolve exactly.
    Assembler a;
    a.beqz(s0, "far"); // s0 is a prime register: starts optimistic 2B
    for (int i = 0; i < 200; ++i)
        a.add(a1, a1, a2); // 2 bytes each compressed -> 400B of padding
    a.label("far");
    a.ebreak();
    Program p = a.assemble();
    auto insts = decodeImage(p);
    ASSERT_FALSE(insts.empty());
    EXPECT_EQ(insts[0].second.op, Opcode::BEQ);
    EXPECT_EQ(insts[0].second.len, 4); // forced to full width
    EXPECT_EQ(insts[0].first + Addr(insts[0].second.imm),
              p.symbol("far"));
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    Assembler a;
    a.j("nowhere");
    EXPECT_THROW(a.assemble(), std::runtime_error);
}

TEST(Assembler, BranchOutOfRangeIsFatal)
{
    Assembler a;
    a.beq(a0, a1, "far");
    a.zero(8192);
    a.label("far");
    EXPECT_THROW(a.assemble(), std::runtime_error);
}

TEST(Assembler, LiExpansions)
{
    struct Case { int64_t v; };
    const int64_t values[] = {
        0, 1, -1, 2047, -2048, 2048, 0x12345, -0x12345,
        0x7fffffff, int64_t(-0x80000000ll), 0x123456789abcdefll,
        int64_t(0xdeadbeefcafebabeull), INT64_MAX, INT64_MIN,
    };
    for (int64_t v : values) {
        Assembler a(0x80000000, {.compress = false});
        a.li(a0, v);
        a.ebreak();
        Program p = a.assemble();
        // Simulate the li sequence by hand-interpreting ALU ops.
        int64_t x10 = 0;
        for (auto &[pc, di] : decodeImage(p)) {
            (void)pc;
            switch (di.op) {
              case Opcode::ADDI:
                x10 = (di.rs1 == 10 ? x10 : 0) + di.imm;
                break;
              case Opcode::ADDIW:
                x10 = int32_t((di.rs1 == 10 ? x10 : 0) + di.imm);
                break;
              case Opcode::LUI:
                x10 = di.imm;
                break;
              case Opcode::SLLI:
                x10 = int64_t(uint64_t(x10) << di.imm);
                break;
              case Opcode::EBREAK:
                break;
              default:
                FAIL() << "unexpected op in li: " << mnemonic(di.op);
            }
        }
        EXPECT_EQ(x10, v) << "li " << v;
    }
}

TEST(Assembler, LaResolvesDataAddress)
{
    Assembler a;
    a.la(a0, "table");
    a.ebreak();
    a.align(8);
    a.label("table");
    a.dword(0x1122334455667788ull);
    Program p = a.assemble();
    Addr table = p.symbol("table");
    auto insts = decodeImage(p, table);
    ASSERT_GE(insts.size(), 2u);
    ASSERT_EQ(insts[0].second.op, Opcode::AUIPC);
    ASSERT_EQ(insts[1].second.op, Opcode::ADDI);
    Addr resolved =
        insts[0].first + Addr(insts[0].second.imm + insts[1].second.imm);
    EXPECT_EQ(resolved, table);
    // And the data bytes are in the image at the symbol.
    size_t off = table - p.base;
    EXPECT_EQ(p.image[off], 0x88);
    EXPECT_EQ(p.image[off + 7], 0x11);
}

TEST(Assembler, AlignmentPadsImage)
{
    Assembler a;
    a.byte(1);
    a.align(8);
    a.label("aligned");
    a.dword(42);
    Program p = a.assemble();
    EXPECT_EQ(p.symbol("aligned") % 8, 0u);
}

TEST(Assembler, EntryDefaultsToBaseOrStart)
{
    Assembler a;
    a.nop();
    Program p = a.assemble();
    EXPECT_EQ(p.entry, p.base);

    Assembler b;
    b.dword(0);
    b.label("_start");
    b.nop();
    Program q = b.assemble();
    EXPECT_EQ(q.entry, q.symbol("_start"));
}

TEST(Assembler, VectorAndCustomOpsEncode)
{
    Assembler a(0x80000000, {.compress = false});
    a.vsetvli(t0, a0, VType{.sew = 32, .lmul = 1});
    a.vle(v1, a1);
    a.vadd_vv(v2, v1, v1);
    a.vse(v2, a2);
    a.xt_lrw(a3, a4, a5, 2);
    a.xt_mula(a6, a3, a3);
    a.ebreak();
    Program p = a.assemble();
    auto insts = decodeImage(p);
    ASSERT_EQ(insts.size(), 7u);
    EXPECT_EQ(insts[0].second.op, Opcode::VSETVLI);
    EXPECT_EQ(decodeVtype(uint32_t(insts[0].second.imm)).sew, 32u);
    EXPECT_EQ(insts[1].second.op, Opcode::VLE_V);
    EXPECT_EQ(insts[2].second.op, Opcode::VADD_VV);
    EXPECT_EQ(insts[3].second.op, Opcode::VSE_V);
    EXPECT_EQ(insts[3].second.rs3, 2);
    EXPECT_EQ(insts[4].second.op, Opcode::XT_LRW);
    EXPECT_EQ(insts[4].second.shamt2, 2);
    EXPECT_EQ(insts[5].second.op, Opcode::XT_MULA);
}

} // namespace xt910
