/**
 * Assembler fuzz properties: random instructions (one per encoding-
 * table entry, operands randomized) pushed through Assembler::emit,
 * assembled into an image, decoded back with decodeImage, and compared
 * field-by-field — exercising emission, layout, compression policy and
 * the decoder as one pipeline.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "func/iss.h"
#include "xasm/assembler.h"

namespace xt910
{

namespace
{

bool
sameFields(const DecodedInst &a, const DecodedInst &b)
{
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
           a.rs2 == b.rs2 && a.rs3 == b.rs3 && a.imm == b.imm &&
           a.shamt2 == b.shamt2 && a.vm == b.vm;
}

std::vector<DecodedInst>
randomInstructions(uint64_t seed, size_t perEntry)
{
    Xorshift64 rng(seed);
    std::vector<DecodedInst> out;
    for (const EncEntry &e : encodingTable()) {
        for (size_t i = 0; i < perEntry; ++i) {
            uint32_t w = e.match | (uint32_t(rng.next()) & ~e.mask);
            DecodedInst di = decode32(w);
            if (di.valid() && di.op == e.op)
                out.push_back(di);
        }
    }
    return out;
}

} // namespace

TEST(AsmFuzz, EmitAssembleDecodeRoundTripUncompressed)
{
    auto insts = randomInstructions(0xabcdef, 4);
    ASSERT_GT(insts.size(), 500u);
    Assembler a(0x80000000, {.compress = false});
    for (const DecodedInst &di : insts)
        a.emit(di);
    a.ebreak();
    Program p = a.assemble();
    auto listing = decodeImage(p);
    ASSERT_EQ(listing.size(), insts.size() + 1);
    for (size_t i = 0; i < insts.size(); ++i) {
        EXPECT_TRUE(sameFields(listing[i].second, insts[i]))
            << i << ": " << mnemonic(insts[i].op) << " vs "
            << mnemonic(listing[i].second.op);
    }
}

TEST(AsmFuzz, EmitAssembleDecodeRoundTripCompressed)
{
    // With compression enabled the byte layout changes but the decoded
    // semantics must be identical.
    auto insts = randomInstructions(0x1337, 4);
    Assembler a(0x80000000, {.compress = true});
    for (const DecodedInst &di : insts)
        a.emit(di);
    a.ebreak();
    Program p = a.assemble();
    auto listing = decodeImage(p);
    ASSERT_EQ(listing.size(), insts.size() + 1);
    unsigned compressed = 0;
    for (size_t i = 0; i < insts.size(); ++i) {
        EXPECT_TRUE(sameFields(listing[i].second, insts[i]))
            << i << ": " << mnemonic(insts[i].op);
        if (listing[i].second.len == 2)
            ++compressed;
    }
    // Random operands rarely meet RVC constraints (rd==rs1, prime
    // registers, small immediates), but compression must engage for
    // the ones that do, and the image must shrink accordingly.
    EXPECT_GT(compressed, 0u);
    EXPECT_EQ(p.image.size(),
              4 * (insts.size() + 1) - 2 * size_t(compressed + 1));
}

TEST(AsmFuzz, InterleavedDataAndCodeKeepAlignment)
{
    Xorshift64 rng(99);
    Assembler a;
    std::vector<std::pair<std::string, uint64_t>> blobs;
    for (int i = 0; i < 32; ++i) {
        a.addi(reg::a0, reg::a0, int64_t(rng.below(32)));
        if (i % 3 == 0) {
            std::string lbl = "d" + std::to_string(i);
            uint64_t v = rng.next();
            a.j("skip" + lbl);
            a.align(8);
            a.label(lbl);
            a.dword(v);
            a.label("skip" + lbl);
            blobs.emplace_back(lbl, v);
        }
    }
    a.ebreak();
    Program p = a.assemble();
    Memory m;
    m.loadProgram(p);
    for (auto &[lbl, v] : blobs) {
        Addr addr = p.symbol(lbl);
        EXPECT_EQ(addr % 8, 0u);
        EXPECT_EQ(m.read(addr, 8), v) << lbl;
    }
}

TEST(AsmFuzz, DenseLabelFieldResolves)
{
    // A chain of forward branches over random-size bodies; every
    // target must land exactly on its label after relaxation.
    Xorshift64 rng(0xfeed);
    Assembler a;
    const int hops = 60;
    for (int i = 0; i < hops; ++i) {
        a.beq(reg::zero, reg::zero, "hop" + std::to_string(i));
        unsigned pad = unsigned(rng.below(12));
        for (unsigned k = 0; k < pad; ++k)
            a.addi(reg::a1, reg::a1, 1); // skipped filler
        a.label("hop" + std::to_string(i));
        a.addi(reg::a0, reg::a0, 1);
    }
    a.ebreak();
    Program p = a.assemble();
    // Execute: every filler is skipped, every hop body runs once.
    Memory m;
    Iss issLike(m); // header available through assembler include chain
    issLike.loadProgram(p);
    issLike.run(100000);
    EXPECT_TRUE(issLike.halted());
    EXPECT_EQ(issLike.hart(0).x[10], uint64_t(hops));
    EXPECT_EQ(issLike.hart(0).x[11], 0u);
}

} // namespace xt910
